module incore

go 1.22
