// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact and reporting its headline metric),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package incore_test

import (
	"testing"

	"incore/internal/core"
	"incore/internal/experiments"
	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/mca"
	"incore/internal/memsim"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// BenchmarkTable1NodeBandwidth regenerates Table I (node comparison with
// measured memory bandwidth).
func BenchmarkTable1NodeBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].MeasuredBWGBs, "GCS-GB/s")
	}
}

// BenchmarkTable2PortModels regenerates Table II (port-model comparison).
func BenchmarkTable2PortModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t.Rows[0].Ports), "GCS-ports")
	}
}

// BenchmarkTable3InstrTPLat regenerates Table III (instruction throughput
// and latency microbenchmarks on the core simulator).
func BenchmarkTable3InstrTPLat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Cells["goldencove"][experiments.IVecFMA].ThroughputElems, "SPR-FMA-elems/cy")
	}
}

// BenchmarkFig2FreqScaling regenerates Fig. 2 (sustained frequency vs.
// active cores).
func BenchmarkFig2FreqScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[1].At(52), "SPR-AVX512-GHz")
	}
}

// BenchmarkFig3RPEValidation regenerates Fig. 3 (the 416-block validation
// of the in-core model against the simulated hardware and the baseline).
func BenchmarkFig3RPEValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.OSACASummary["all"].RightFrac, "OSACA-right-%")
		b.ReportMetric(100*f.MCASummary["all"].RightFrac, "MCA-right-%")
	}
}

// BenchmarkFig4WAEvasion regenerates Fig. 4 (write-allocate evasion
// traffic ratios).
func BenchmarkFig4WAEvasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range f.Series {
			if s.Label == "SPR" {
				b.ReportMetric(s.AtFullSocket(), "SPR-ratio")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md Sec. 5)

// BenchmarkAblationPortBalancing compares the analyzer's optimal
// port-pressure bound against the greedy bound over the full suite
// (design choice #1: why OSACA's balancing matters).
func BenchmarkAblationPortBalancing(b *testing.B) {
	blocks, err := kernels.FullSuite()
	if err != nil {
		b.Fatal(err)
	}
	an := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var optSum, greedySum float64
		for _, tb := range blocks {
			m := uarch.MustGet(tb.Config.Arch)
			res, err := an.Analyze(tb.Block, m)
			if err != nil {
				b.Fatal(err)
			}
			optSum += res.TPBound
			greedySum += res.GreedyTPBound
		}
		b.ReportMetric(greedySum/optSum, "greedy/optimal")
	}
}

// BenchmarkAblationRenaming measures the cost of disabling register
// renaming in the simulated hardware (design choice #2).
func BenchmarkAblationRenaming(b *testing.B) {
	m := uarch.MustGet("goldencove")
	k, err := kernels.ByName("j2d5")
	if err != nil {
		b.Fatal(err)
	}
	blk, err := kernels.Generate(k, kernels.Config{Arch: "goldencove", Compiler: kernels.Clang, Opt: kernels.O3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on, err := sim.Run(blk, m, sim.DefaultConfig(m))
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.DefaultConfig(m)
		cfg.DisableRenaming = true
		off, err := sim.Run(blk, m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(off.CyclesPerIter/on.CyclesPerIter, "norename-slowdown")
	}
}

// BenchmarkAblationSpecI2MThreshold sweeps the SpecI2M engagement
// threshold (design choice #3).
func BenchmarkAblationSpecI2MThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thresh := range []float64{0.4, 0.65, 0.8} {
			cfg := memsim.MustConfigFor("goldencove")
			cfg.SpecI2MThreshold = thresh
			cfg.SpecI2MRampEnd = thresh + 0.25
			sys, err := memsim.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r, err := sys.RunStoreStream(26, 4096, false)
			if err != nil {
				b.Fatal(err)
			}
			if thresh == 0.65 {
				b.ReportMetric(r.WARatio(), "ratio@26c")
			}
		}
	}
}

// BenchmarkAblationNTResidual contrasts SPR's imperfect NT stores with
// Genoa's perfect ones (design choice #4).
func BenchmarkAblationNTResidual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spr := memsim.MustConfigFor("goldencove")
		sysS, err := memsim.NewSystem(spr)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sysS.RunStoreStream(52, 4096, true)
		if err != nil {
			b.Fatal(err)
		}
		gen := memsim.MustConfigFor("zen4")
		sysG, err := memsim.NewSystem(gen)
		if err != nil {
			b.Fatal(err)
		}
		rg, err := sysG.RunStoreStream(96, 4096, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs.WARatio()-rg.WARatio(), "SPR-minus-Genoa")
	}
}

// BenchmarkAblationFrontendWidth sweeps the simulator's issue width for
// high-ILP scalar code on Neoverse V2 (design choice #5).
func BenchmarkAblationFrontendWidth(b *testing.B) {
	m := uarch.MustGet("neoversev2")
	k, err := kernels.ByName("j3d27")
	if err != nil {
		b.Fatal(err)
	}
	blk, err := kernels.Generate(k, kernels.Config{Arch: "neoversev2", Compiler: kernels.GCC, Opt: kernels.O1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c4, c8 float64
		for _, w := range []int{4, 8} {
			cfg := sim.DefaultConfig(m)
			cfg.IssueWidthOverride = w
			r, err := sim.Run(blk, m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if w == 4 {
				c4 = r.CyclesPerIter
			} else {
				c8 = r.CyclesPerIter
			}
		}
		b.ReportMetric(c4/c8, "width4/width8")
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks (library performance)

func BenchmarkAnalyzerSingleBlock(b *testing.B) {
	m := uarch.MustGet("goldencove")
	k, _ := kernels.ByName("striad")
	blk, err := kernels.Generate(k, kernels.Config{Arch: "goldencove", Compiler: kernels.GCC, Opt: kernels.O3})
	if err != nil {
		b.Fatal(err)
	}
	an := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Analyze(blk, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorSingleBlock(b *testing.B) {
	m := uarch.MustGet("goldencove")
	k, _ := kernels.ByName("striad")
	blk, err := kernels.Generate(k, kernels.Config{Arch: "goldencove", Compiler: kernels.GCC, Opt: kernels.O3})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(blk, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCASingleBlock(b *testing.B) {
	m := uarch.MustGet("goldencove")
	k, _ := kernels.ByName("striad")
	blk, err := kernels.Generate(k, kernels.Config{Arch: "goldencove", Compiler: kernels.GCC, Opt: kernels.O3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mca.PredictDefault(blk, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParserX86(b *testing.B) {
	k, _ := kernels.ByName("j3d27")
	blk, err := kernels.Generate(k, kernels.Config{Arch: "goldencove", Compiler: kernels.Clang, Opt: kernels.O3})
	if err != nil {
		b.Fatal(err)
	}
	text := blk.Text()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.ParseBlock("bench", "goldencove", isa.DialectX86, text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		blocks, err := kernels.FullSuite()
		if err != nil {
			b.Fatal(err)
		}
		if len(blocks) != 416 {
			b.Fatal("suite size")
		}
	}
}

func BenchmarkFreqGovernor(b *testing.B) {
	g := freq.MustFor("goldencove")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Curve(isa.ExtAVX512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemsimStoreStream(b *testing.B) {
	cfg := memsim.MustConfigFor("neoversev2")
	sys, err := memsim.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunStoreStream(8, 4096, false); err != nil {
			b.Fatal(err)
		}
	}
}
