// Machine-file round-trip integration test: every built-in model,
// exported to its JSON machine file and loaded back, must be
// indistinguishable from the compiled-in model — equal content
// fingerprint (hence the same bare cache key) and byte-identical
// analyzer reports over the full kernel suite — and the node-level
// models (ECM, frequency governor, Roofline) built from the reloaded
// model must render identically too.
package incore_test

import (
	"bytes"
	"testing"

	"incore/internal/core"
	"incore/internal/ecm"
	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/roofline"
	"incore/internal/uarch"
)

func reload(t *testing.T, m *uarch.Model) *uarch.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: write: %v", m.Key, err)
	}
	loaded, err := uarch.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("%s: read: %v", m.Key, err)
	}
	return loaded
}

func TestRoundTrippedModelsAnalyzeIdentically(t *testing.T) {
	an := core.New()
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		orig := uarch.MustGet(key)
		loaded := reload(t, orig)
		if loaded.Fingerprint() != orig.Fingerprint() {
			t.Errorf("%s: fingerprint changed across round trip", key)
		}
		if loaded.CacheKey() != key {
			t.Errorf("%s: reloaded CacheKey = %q, want bare key", key, loaded.CacheKey())
		}
		checked := 0
		for i := range kernels.Kernels {
			k := &kernels.Kernels[i]
			for _, compiler := range kernels.CompilersFor(key) {
				for _, opt := range []kernels.OptLevel{kernels.O3, kernels.Ofast} {
					b, err := kernels.Generate(k, kernels.Config{Arch: key, Compiler: compiler, Opt: opt})
					if err != nil {
						continue
					}
					want, err := an.Analyze(b, orig)
					if err != nil {
						continue
					}
					got, err := an.Analyze(b, loaded)
					if err != nil {
						t.Fatalf("%s/%s: reloaded model fails: %v", key, k.Name, err)
					}
					if got.Report() != want.Report() {
						t.Fatalf("%s/%s/%v: report differs after round trip", key, k.Name, opt)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no kernels analyzed", key)
		}
	}
}

func TestRoundTrippedModelsPredictNodeLevelIdentically(t *testing.T) {
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		orig := uarch.MustGet(key)
		loaded := reload(t, orig)

		// ECM: identical bandwidths, overlap flags, and rendered report.
		emWant, err := ecm.For(key)
		if err != nil {
			t.Fatal(err)
		}
		emGot, err := ecm.ForModel(loaded)
		if err != nil {
			t.Fatalf("%s: reloaded model has no ECM: %v", key, err)
		}
		if emGot.BW != emWant.BW || emGot.Overlap != emWant.Overlap || emGot.FreqGHz != emWant.FreqGHz {
			t.Errorf("%s: ECM calibration changed: %+v vs %+v", key, emGot, emWant)
		}
		tr := ecm.Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 2}
		if got, want := emGot.Predict(1, 2, tr, ecm.MEM).Report(), emWant.Predict(1, 2, tr, ecm.MEM).Report(); got != want {
			t.Errorf("%s: ECM report differs:\n%s\nvs\n%s", key, got, want)
		}

		// Frequency governor: identical sustained curve for every ISA
		// class the model names.
		gWant, err := freq.For(key)
		if err != nil {
			t.Fatal(err)
		}
		gGot, err := freq.ForModel(loaded)
		if err != nil {
			t.Fatalf("%s: reloaded model has no governor: %v", key, err)
		}
		for name := range loaded.Node.Freq.ActivityFactor {
			ext, err := isa.ParseExt(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := gWant.Curve(ext)
			if err != nil {
				t.Fatal(err)
			}
			got, err := gGot.Curve(ext)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: sustained frequency differs at %d cores: %v vs %v",
						key, name, i+1, got[i], want[i])
				}
			}
		}

		// Roofline: byte-identical render.
		rlWant, err := roofline.For(key)
		if err != nil {
			t.Fatal(err)
		}
		rlGot, err := roofline.ForModel(loaded)
		if err != nil {
			t.Fatalf("%s: reloaded model has no roofline: %v", key, err)
		}
		if rlGot.Render() != rlWant.Render() {
			t.Errorf("%s: roofline differs:\n%s\nvs\n%s", key, rlGot.Render(), rlWant.Render())
		}
	}
}
