// Package sweep is the design-space exploration engine: it expands a base
// machine model and a set of parameter axes into the full cross-product of
// model variants, runs a block set through the analysis pipeline for every
// variant, and reduces the grid to per-variant predictions and Pareto
// fronts (predicted cycles vs. port count, sustained GF/s vs. TDP, ...).
//
// The engine's performance contract is variant-aware incremental
// recompute, built on two identities a model carries:
//
//   - Model.CacheKey names the full modeled scenario. Result cells are
//     memoized and persisted under it, so a sweep is warm-resumable per
//     variant and can never poison the built-in scenario sharing its key.
//   - Model.PortSignature names only the in-core subset. The compiled
//     artifact tier (internal/pipeline) keys descriptor tables, mca
//     schedules, and sim programs on it, so node-only variants (bandwidth,
//     TDP, frequency) reuse every parsed block, depgraph skeleton,
//     descriptor table, and port analysis, and only the cheap
//     ECM/Roofline/frequency projections are recomputed; port-count
//     variants still share skeletons and parsed blocks and recompile only
//     the port-dependent stages.
//
// Everything is deterministic: axes are canonicalized (sorted by
// parameter name, values sorted and deduplicated), the cross-product is
// enumerated in mixed-radix order, and rendering is byte-identical at any
// worker count — the same contract as cmd/repro.
package sweep

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"incore/internal/uarch"
)

// Axis is one swept parameter: the canonical machine-file field name and
// the values to try. Values are float64 on the wire for uniformity;
// integer parameters reject non-integral values.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// ParamValue is one variant's assignment of one axis.
type ParamValue struct {
	Param string  `json:"param"`
	Value float64 `json:"value"`
}

// paramKind classifies how a parameter applies to a model.
type paramKind int

const (
	// kindInt sets an integer Model field.
	kindInt paramKind = iota
	// kindFloat sets a float Model field.
	kindFloat
	// kindPortCount resizes a port mask (see setPortCount).
	kindPortCount
	// kindNode sets a node-section float; requires the base model to
	// carry the corresponding node parameters.
	kindNode
)

// paramDef describes one sweepable parameter.
type paramDef struct {
	kind paramKind
	// node reports whether varying the parameter leaves the port
	// signature unchanged (node/clocking-only parameters).
	node  bool
	apply func(m *uarch.Model, v float64) error
}

// paramDefs is the sweepable-parameter registry, keyed by the canonical
// machine-file field name. Entries and the dialect are deliberately not
// sweepable: a sweep varies the machine around a fixed instruction table.
var paramDefs = map[string]paramDef{
	"issue_width":     {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.IssueWidth = int(v); return nil }},
	"decode_width":    {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.DecodeWidth = int(v); return nil }},
	"retire_width":    {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.RetireWidth = int(v); return nil }},
	"rob_size":        {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.ROBSize = int(v); return nil }},
	"scheduler_size":  {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.SchedSize = int(v); return nil }},
	"phys_vec_regs":   {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.PhysVecRegs = int(v); return nil }},
	"phys_gp_regs":    {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.PhysGPRegs = int(v); return nil }},
	"load_latency":    {kind: kindInt, apply: func(m *uarch.Model, v float64) error { m.LoadLat = int(v); return nil }},
	"load_ports":      {kind: kindPortCount, apply: func(m *uarch.Model, v float64) error { return setPortCount(m, &m.LoadPorts, int(v), "ld") }},
	"store_agu_ports": {kind: kindPortCount, apply: func(m *uarch.Model, v float64) error { return setPortCount(m, &m.StoreAGUPorts, int(v), "sta") }},
	"store_data_ports": {kind: kindPortCount, apply: func(m *uarch.Model, v float64) error {
		return setPortCount(m, &m.StoreDataPorts, int(v), "std")
	}},
	"cores_per_chip": {kind: kindInt, node: true, apply: func(m *uarch.Model, v float64) error { m.CoresPerChip = int(v); return nil }},
	"base_freq_ghz":  {kind: kindFloat, node: true, apply: func(m *uarch.Model, v float64) error { m.BaseFreqGHz = v; return nil }},
	"max_freq_ghz":   {kind: kindFloat, node: true, apply: func(m *uarch.Model, v float64) error { m.MaxFreqGHz = v; return nil }},
	"mem_bandwidth_gbs": {kind: kindNode, node: true, apply: func(m *uarch.Model, v float64) error {
		if m.Node == nil {
			return fmt.Errorf("sweep: model %s carries no node section for mem_bandwidth_gbs", m.Key)
		}
		m.Node.MemBWGBs = v
		return nil
	}},
	"tdp_watts": {kind: kindNode, node: true, apply: func(m *uarch.Model, v float64) error {
		if m.Node == nil || m.Node.Freq == nil {
			return fmt.Errorf("sweep: model %s carries no freq section for tdp_watts", m.Key)
		}
		m.Node.Freq.TDPWatts = v
		return nil
	}},
}

// Params lists the sweepable parameter names, sorted.
func Params() []string {
	out := make([]string, 0, len(paramDefs))
	for p := range paramDefs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// NodeOnly reports whether every axis varies only node/clocking-level
// parameters — the case where all variants share the base model's port
// signature and therefore every compiled artifact.
func NodeOnly(axes []Axis) bool {
	for _, ax := range axes {
		if d, ok := paramDefs[ax.Param]; !ok || !d.node {
			return false
		}
	}
	return true
}

// Canonicalize validates axes and returns the canonical form the engine
// enumerates: axes sorted by parameter name, values sorted ascending and
// deduplicated. Two requests describing the same ranges in any order
// therefore generate identical variants, fingerprints, and cache keys.
func Canonicalize(axes []Axis) ([]Axis, error) {
	out := make([]Axis, 0, len(axes))
	seen := map[string]bool{}
	for _, ax := range axes {
		d, ok := paramDefs[ax.Param]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown parameter %q (known: %v)", ax.Param, Params())
		}
		if seen[ax.Param] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Param)
		}
		seen[ax.Param] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
		vals := append([]float64(nil), ax.Values...)
		sort.Float64s(vals)
		dedup := vals[:1]
		for _, v := range vals[1:] {
			if v != dedup[len(dedup)-1] {
				dedup = append(dedup, v)
			}
		}
		for _, v := range dedup {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("sweep: axis %q: value %v out of range (must be finite and positive)", ax.Param, v)
			}
			if d.kind != kindFloat && d.kind != kindNode && v != math.Trunc(v) {
				return nil, fmt.Errorf("sweep: axis %q: value %v must be an integer", ax.Param, v)
			}
			if d.kind == kindPortCount && v > 32 {
				return nil, fmt.Errorf("sweep: axis %q: value %v exceeds the 32-port model limit", ax.Param, v)
			}
		}
		out = append(out, Axis{Param: ax.Param, Values: dedup})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Param < out[j].Param })
	return out, nil
}

// Count returns the cross-product size of the (not necessarily
// canonicalized) axes, saturating at math.MaxInt on overflow. Callers
// enforce their variant caps against it before any model is cloned.
func Count(axes []Axis) int {
	n := 1
	for _, ax := range axes {
		v := len(ax.Values)
		if v == 0 {
			continue
		}
		if n > math.MaxInt/v {
			return math.MaxInt
		}
		n *= v
	}
	return n
}

// Variant is one generated model of the design space.
type Variant struct {
	// Index is the variant's position in the canonical mixed-radix
	// enumeration (last canonical axis fastest).
	Index int
	// Params is the full assignment, sorted by parameter name.
	Params []ParamValue
	// Model is the generated, reindexed model. It keeps the base model's
	// key — its cache identity is key@fingerprint — and is deliberately
	// not registered: all analysis entry points take the model directly,
	// and registering same-key-different-content models would conflict.
	Model *uarch.Model
}

// Variants expands the cross-product of the axes over the base model.
// The enumeration is deterministic: axes are canonicalized first, and
// variant i takes the mixed-radix digits of i over the canonical axis
// order. A parameter combination the model rejects (e.g. a ROB smaller
// than the issue width) fails the whole expansion — sweeps are grids, not
// best-effort samples, so a hole would silently skew every front.
func Variants(base *uarch.Model, axes []Axis) ([]Variant, error) {
	canon, err := Canonicalize(axes)
	if err != nil {
		return nil, err
	}
	n := Count(canon)
	out := make([]Variant, 0, n)
	for i := 0; i < n; i++ {
		v := Variant{Index: i, Params: make([]ParamValue, len(canon))}
		rem := i
		for a := len(canon) - 1; a >= 0; a-- {
			ax := canon[a]
			v.Params[a] = ParamValue{Param: ax.Param, Value: ax.Values[rem%len(ax.Values)]}
			rem /= len(ax.Values)
		}
		m, err := applyParams(base, v.Params)
		if err != nil {
			return nil, fmt.Errorf("sweep: variant %d (%s): %w", i, FormatParams(v.Params), err)
		}
		v.Model = m
		out = append(out, v)
	}
	return out, nil
}

// FormatParams renders an assignment as "a=1,b=2.5" (params are already
// in canonical order).
func FormatParams(ps []ParamValue) string {
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += ","
		}
		s += p.Param + "=" + strconv.FormatFloat(p.Value, 'g', -1, 64)
	}
	return s
}

// applyParams clones the base model, applies the assignment, and
// reindexes the clone (rebuilding its lookup tables, fingerprint, and
// port signature). The clone is deep where mutation reaches — the port
// list and the node section — and shares the immutable rest (entries,
// maps rebuilt by Reindex).
func applyParams(base *uarch.Model, ps []ParamValue) (*uarch.Model, error) {
	m := cloneForMutation(base)
	for _, p := range ps {
		if err := paramDefs[p.Param].apply(m, p.Value); err != nil {
			return nil, err
		}
	}
	if err := m.Reindex(); err != nil {
		return nil, err
	}
	return m, nil
}

// cloneForMutation copies a model deeply enough that applying any
// parameter never writes through to the base: the port list (port-count
// growth appends) and the node section (bandwidth/TDP set scalars) get
// fresh copies; the entry table is shared read-only.
func cloneForMutation(base *uarch.Model) *uarch.Model {
	m := *base
	m.Ports = append([]string(nil), base.Ports...)
	if np := base.Node; np != nil {
		nc := *np
		if np.ECM != nil {
			ec := *np.ECM
			nc.ECM = &ec
		}
		if np.Freq != nil {
			fc := *np.Freq
			nc.Freq = &fc
		}
		m.Node = &nc
	}
	if base.Unknown != nil {
		uc := *base.Unknown
		m.Unknown = &uc
	}
	return &m
}

// setPortCount resizes a port mask to count ports. Shrinking drops the
// highest-indexed ports from the mask; growing appends fresh dedicated
// ports to the model's port list (named "<class>#<index>") and adds them
// to the mask — modeling "add a load port" rather than overloading an
// existing ALU port with a second duty.
func setPortCount(m *uarch.Model, mask *uarch.PortMask, count int, class string) error {
	if count < 1 {
		return fmt.Errorf("sweep: port count %d must be at least 1", count)
	}
	for mask.Count() > count {
		// Clear the highest set bit.
		hi := -1
		for _, i := range mask.Indices() {
			hi = i
		}
		*mask &^= 1 << uint(hi)
	}
	for mask.Count() < count {
		if len(m.Ports) >= 32 {
			return fmt.Errorf("sweep: growing %s ports past the 32-port model limit", class)
		}
		m.Ports = append(m.Ports, fmt.Sprintf("%s#%d", class, len(m.Ports)))
		*mask |= 1 << uint(len(m.Ports)-1)
	}
	return nil
}
