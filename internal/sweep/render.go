package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Render formats the sweep result as a deterministic text report: the
// variant grid in enumeration order, then the Pareto fronts. Floats use
// the shortest round-trippable representation, so equal results are
// byte-identical across runs, worker counts, and platforms — the
// property the CI sweep gate pins.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep: base %s (%s)\n", r.Base, r.BaseCacheKey)
	for _, ax := range r.Axes {
		vals := make([]string, len(ax.Values))
		for i, v := range ax.Values {
			vals[i] = g(v)
		}
		fmt.Fprintf(&sb, "axis %s: %s\n", ax.Param, strings.Join(vals, " "))
	}
	fmt.Fprintf(&sb, "blocks: %d  variants: %d  distinct port signatures: %d\n",
		len(r.Blocks), len(r.Variants), r.DistinctSignatures)
	sb.WriteString("\n")
	for i := range r.Variants {
		v := &r.Variants[i]
		fmt.Fprintf(&sb, "variant %4d  %-40s  portsig %s  cycles %s",
			v.Index, FormatParams(v.Params), v.PortSignature, g(v.TotalCycles))
		if v.ECMMemCycles > 0 {
			fmt.Fprintf(&sb, "  ecm-mem %s", g(v.ECMMemCycles))
		}
		if v.SustainedGFlops > 0 {
			fmt.Fprintf(&sb, "  sustained %s GHz / %s GF/s", g(v.SustainedGHz), g(v.SustainedGFlops))
		}
		sb.WriteString("\n")
	}
	for _, f := range r.Fronts {
		fmt.Fprintf(&sb, "\npareto %s (%s vs %s%s):\n", f.Name, f.PerfMetric, f.CostParam,
			map[bool]string{true: ", maximizing"}[f.MaximizePerf])
		for _, p := range f.Points {
			fmt.Fprintf(&sb, "  %s=%s  %s=%s  (variant %d)\n",
				f.CostParam, g(p.Cost), f.PerfMetric, g(p.Perf), p.Variant)
		}
	}
	return sb.String()
}

// g is the deterministic float format shared by the whole report.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
