package sweep

import (
	"fmt"
	"sort"
	"sync/atomic"

	"incore/internal/core"
	"incore/internal/ecm"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/pipeline"
	"incore/internal/roofline"
	"incore/internal/uarch"
)

// Block is one unit of swept work: a parsed block plus the optional
// kernel provenance that enables the memory-level (ECM) projection.
type Block struct {
	Name string
	B    *isa.Block
	// ElemsPerIter is the number of scalar elements one loop iteration
	// processes (0 disables the ECM projection for this block).
	ElemsPerIter int
	// Kernel, when known, supplies the data-traffic pattern for the ECM
	// projection; nil disables it for this block.
	Kernel *kernels.Kernel
}

// SuiteBlocks generates the kernel validation suite for one architecture
// as sweep work. Blocks are routed through the compiled-artifact parse
// cache (pipeline.ParseRequestBlock), so the suite's duplicate bodies
// collapse to one parsed block each and the tier's counters account the
// parse work exactly once per unique body.
func SuiteBlocks(arch string) ([]Block, error) {
	suite, err := kernels.Suite(arch)
	if err != nil {
		return nil, err
	}
	out := make([]Block, 0, len(suite))
	for _, tb := range suite {
		b, err := pipeline.ParseRequestBlock(tb.Block.Name, tb.Block.Arch, tb.Block.Dialect, tb.Block.Text())
		if err != nil {
			return nil, err
		}
		out = append(out, Block{Name: b.Name, B: b, ElemsPerIter: tb.ElemsPerIter, Kernel: tb.Kernel})
	}
	return out, nil
}

// Options configures a sweep run.
type Options struct {
	// Analyzer defaults to core.New().
	Analyzer *core.Analyzer
	// MaxVariants rejects cross-products above the cap before any model
	// is cloned (0 = no cap here; servers enforce their own).
	MaxVariants int
}

// ErrTooLarge is returned when a requested cross-product exceeds the
// caller's variant cap.
type ErrTooLarge struct {
	Variants, Max int
}

// Error implements error.
func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("sweep: cross-product of %d variants exceeds the cap of %d", e.Variants, e.Max)
}

// VariantResult is one variant's row of the sweep grid.
type VariantResult struct {
	Index int `json:"index"`
	// Params is the variant's full assignment in canonical axis order.
	Params []ParamValue `json:"params"`
	// CacheKey is the store identity of the variant's results
	// (key@fingerprint); PortSignature is the artifact-sharing identity,
	// truncated to 12 hex digits for display.
	CacheKey      string `json:"cache_key"`
	PortSignature string `json:"port_signature"`
	// Predictions lists the in-core lower-bound cycles per iteration,
	// aligned with Result.Blocks; TotalCycles is their sum — the
	// scalar in-core performance figure the per-axis fronts minimize.
	Predictions []float64 `json:"predictions"`
	TotalCycles float64   `json:"total_cycles"`
	// ECMMemCycles sums the memory-resident ECM prediction (cycles per
	// iteration) over the blocks with kernel provenance; 0 when the
	// model carries no ECM calibration.
	ECMMemCycles float64 `json:"ecm_mem_cycles,omitempty"`
	// SustainedGHz / SustainedGFlops are the frequency-governor and
	// Roofline projections (0 when the model carries no freq section).
	SustainedGHz    float64 `json:"sustained_ghz,omitempty"`
	SustainedGFlops float64 `json:"sustained_gflops,omitempty"`
	// Warm / Cold count this variant's result cells by provenance:
	// warm cells were served from the memo/store tiers.
	Warm int `json:"warm"`
	Cold int `json:"cold"`
}

// Result is one sweep's full outcome.
type Result struct {
	// Base and BaseCacheKey identify the unmodified starting model.
	Base         string `json:"base"`
	BaseCacheKey string `json:"base_cache_key"`
	// Axes is the canonical (sorted, deduplicated) axis set.
	Axes []Axis `json:"axes"`
	// Blocks lists the swept block names in input order.
	Blocks   []string        `json:"blocks"`
	Variants []VariantResult `json:"variants"`
	// Fronts are the Pareto fronts (see pareto.go).
	Fronts []Front `json:"pareto"`
	// DistinctSignatures counts distinct port signatures across the
	// variants — the number of times the port-dependent compile stages
	// ran per block; Variants-DistinctSignatures variants shared them.
	DistinctSignatures int `json:"distinct_port_signatures"`
	// Warm / Cold aggregate the per-variant cell provenance.
	Warm int `json:"warm"`
	Cold int `json:"cold"`
}

// Stats is the process-wide sweep accounting exposed on /metrics.
type Stats struct {
	// Sweeps counts completed sweep runs; Variants the models they
	// generated; SharedSignature the variants that reused another
	// variant's port signature (and therefore its compiled artifacts).
	Sweeps          uint64 `json:"sweeps"`
	Variants        uint64 `json:"variants"`
	SharedSignature uint64 `json:"shared_signature"`
	// CellsWarm / CellsCold count result cells by provenance.
	CellsWarm uint64 `json:"cells_warm"`
	CellsCold uint64 `json:"cells_cold"`
	// RejectedTooLarge counts sweeps refused by a variant cap.
	RejectedTooLarge uint64 `json:"rejected_too_large"`
}

var stats struct {
	sweeps, variants, shared atomic.Uint64
	cellsWarm, cellsCold     atomic.Uint64
	rejected                 atomic.Uint64
}

// GlobalStats snapshots the process-wide sweep accounting.
func GlobalStats() Stats {
	return Stats{
		Sweeps:           stats.sweeps.Load(),
		Variants:         stats.variants.Load(),
		SharedSignature:  stats.shared.Load(),
		CellsWarm:        stats.cellsWarm.Load(),
		CellsCold:        stats.cellsCold.Load(),
		RejectedTooLarge: stats.rejected.Load(),
	}
}

// CountRejected records a sweep refused by a variant cap (callers that
// enforce caps before reaching Run, e.g. the serve tier).
func CountRejected() { stats.rejected.Add(1) }

// Run executes the sweep: expand the cross-product, analyze every
// (variant, block) cell through the memoized arena path, project
// node-level metrics, and reduce to Pareto fronts. Variants fan out over
// the default pipeline pool; output is deterministic at any worker count
// (Map preserves order, and cell values are content-addressed).
func Run(base *uarch.Model, axes []Axis, blocks []Block, opt Options) (*Result, error) {
	canon, err := Canonicalize(axes)
	if err != nil {
		return nil, err
	}
	if n := Count(canon); opt.MaxVariants > 0 && n > opt.MaxVariants {
		stats.rejected.Add(1)
		return nil, &ErrTooLarge{Variants: n, Max: opt.MaxVariants}
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("sweep: no blocks to sweep")
	}
	variants, err := Variants(base, canon)
	if err != nil {
		return nil, err
	}
	an := opt.Analyzer
	if an == nil {
		an = core.New()
	}

	res := &Result{
		Base:         base.Key,
		BaseCacheKey: base.CacheKey(),
		Axes:         canon,
		Blocks:       make([]string, len(blocks)),
	}
	for i, b := range blocks {
		res.Blocks[i] = b.Name
	}

	rows, err := pipeline.MapN(pipeline.Default(), len(variants), func(i int) (VariantResult, error) {
		return runVariant(an, &variants[i], blocks)
	})
	if err != nil {
		return nil, err
	}
	res.Variants = rows

	sigs := map[string]bool{}
	for i := range rows {
		res.Warm += rows[i].Warm
		res.Cold += rows[i].Cold
		sigs[variants[i].Model.PortSignature()] = true
	}
	res.DistinctSignatures = len(sigs)
	res.Fronts = fronts(res)

	stats.sweeps.Add(1)
	stats.variants.Add(uint64(len(rows)))
	stats.shared.Add(uint64(len(rows) - len(sigs)))
	stats.cellsWarm.Add(uint64(res.Warm))
	stats.cellsCold.Add(uint64(res.Cold))
	return res, nil
}

// runVariant analyzes every block for one variant and projects its
// node-level metrics. Each call owns its InternalArena: the arena is
// single-goroutine state, and one variant's blocks run serially within
// the pool worker.
func runVariant(an *core.Analyzer, v *Variant, blocks []Block) (VariantResult, error) {
	m := v.Model
	row := VariantResult{
		Index:         v.Index,
		Params:        v.Params,
		CacheKey:      m.CacheKey(),
		PortSignature: m.PortSignature()[:12],
		Predictions:   make([]float64, len(blocks)),
	}
	ar := &pipeline.InternalArena{}
	var em *ecm.Model
	if m.Node != nil && m.Node.ECM != nil {
		if e, err := ecm.ForModel(m); err == nil {
			em = e
		}
	}
	for i, blk := range blocks {
		cell, warm, err := pipeline.AnalyzeCellWarm(an, blk.B, m, ar)
		if err != nil {
			return VariantResult{}, fmt.Errorf("sweep: variant %d (%s), block %s: %w",
				v.Index, FormatParams(v.Params), blk.Name, err)
		}
		if warm {
			row.Warm++
		} else {
			row.Cold++
		}
		row.Predictions[i] = cell.Prediction
		row.TotalCycles += cell.Prediction
		if em != nil && blk.Kernel != nil && blk.ElemsPerIter > 0 {
			scale := 8.0 / float64(blk.ElemsPerIter)
			tr := ecm.TrafficForKernel(blk.Kernel, ecm.WAFactorFor(m.Key, true))
			er := em.Predict(cell.TOLIt*scale, cell.TnOLIt*scale, tr, ecm.MEM)
			row.ECMMemCycles += er.CyclesPerIt(blk.ElemsPerIter)
		}
	}
	if rf, err := roofline.ForModel(m); err == nil {
		for _, c := range rf.Ceilings {
			if c.Sustained {
				row.SustainedGFlops = c.GFlops
				if m.CoresPerChip > 0 && m.Node.FlopsPerCycle > 0 {
					row.SustainedGHz = c.GFlops / float64(m.CoresPerChip) / float64(m.Node.FlopsPerCycle)
				}
			}
		}
	}
	return row, nil
}

// axisValue returns a variant's value on the named axis.
func axisValue(ps []ParamValue, param string) (float64, bool) {
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Param >= param })
	if i < len(ps) && ps[i].Param == param {
		return ps[i].Value, true
	}
	return 0, false
}
