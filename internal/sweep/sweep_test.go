package sweep

import (
	"errors"
	"math"
	"strings"
	"testing"

	"incore/internal/kernels"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

func testBlocks(t *testing.T, arch string) []Block {
	t.Helper()
	var out []Block
	for _, name := range []string{"striad", "sum"} {
		k, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := kernels.Config{Arch: arch, Compiler: kernels.GCC, Opt: kernels.O3}
		b, err := kernels.Generate(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Block{Name: b.Name, B: b, ElemsPerIter: kernels.ElemsPerIter(k, cfg), Kernel: k})
	}
	return out
}

func TestCanonicalizeOrderIndependence(t *testing.T) {
	a := []Axis{
		{Param: "tdp_watts", Values: []float64{300, 200, 300, 250}},
		{Param: "mem_bandwidth_gbs", Values: []float64{100, 50}},
	}
	b := []Axis{
		{Param: "mem_bandwidth_gbs", Values: []float64{50, 100}},
		{Param: "tdp_watts", Values: []float64{250, 300, 200}},
	}
	ca, err := Canonicalize(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonicalize(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca) != len(cb) {
		t.Fatalf("canonical lengths differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Param != cb[i].Param {
			t.Fatalf("axis %d: %s vs %s", i, ca[i].Param, cb[i].Param)
		}
		if len(ca[i].Values) != len(cb[i].Values) {
			t.Fatalf("axis %s: value counts differ", ca[i].Param)
		}
		for j := range ca[i].Values {
			if ca[i].Values[j] != cb[i].Values[j] {
				t.Fatalf("axis %s value %d: %v vs %v", ca[i].Param, j, ca[i].Values[j], cb[i].Values[j])
			}
		}
	}
	if n := Count(ca); n != 6 {
		t.Fatalf("Count = %d, want 6 (dedup dropped a duplicate)", n)
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		axes []Axis
	}{
		{"unknown param", []Axis{{Param: "magic", Values: []float64{1}}}},
		{"duplicate axis", []Axis{{Param: "rob_size", Values: []float64{64}}, {Param: "rob_size", Values: []float64{128}}}},
		{"empty values", []Axis{{Param: "rob_size", Values: nil}}},
		{"non-integer int", []Axis{{Param: "rob_size", Values: []float64{64.5}}}},
		{"non-positive", []Axis{{Param: "tdp_watts", Values: []float64{0}}}},
		{"nan", []Axis{{Param: "tdp_watts", Values: []float64{math.NaN()}}}},
		{"port overflow", []Axis{{Param: "load_ports", Values: []float64{40}}}},
	}
	for _, tc := range cases {
		if _, err := Canonicalize(tc.axes); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestVariantDeterminism pins the generation contract: identical ranges,
// regardless of axis or value ordering, produce identical variants —
// same fingerprints, same cache keys, same enumeration order.
func TestVariantDeterminism(t *testing.T) {
	base := uarch.MustGet("goldencove")
	a := []Axis{
		{Param: "mem_bandwidth_gbs", Values: []float64{120, 80}},
		{Param: "tdp_watts", Values: []float64{350, 250}},
	}
	b := []Axis{
		{Param: "tdp_watts", Values: []float64{250, 350}},
		{Param: "mem_bandwidth_gbs", Values: []float64{80, 120, 80}},
	}
	va, err := Variants(base, a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := Variants(base, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 4 || len(vb) != 4 {
		t.Fatalf("variant counts: %d, %d, want 4", len(va), len(vb))
	}
	for i := range va {
		if va[i].Model.Fingerprint() != vb[i].Model.Fingerprint() {
			t.Fatalf("variant %d: fingerprints differ across orderings", i)
		}
		if va[i].Model.CacheKey() != vb[i].Model.CacheKey() {
			t.Fatalf("variant %d: cache keys differ across orderings", i)
		}
		if FormatParams(va[i].Params) != FormatParams(vb[i].Params) {
			t.Fatalf("variant %d: params differ: %s vs %s", i,
				FormatParams(va[i].Params), FormatParams(vb[i].Params))
		}
	}
}

// TestNodeOnlyVariantsSharePortSignature is the artifact-sharing
// foundation: variants that differ only in node/clocking parameters keep
// the base model's port signature (so the compiled tier serves them the
// same descriptor tables, schedules, and programs) while their full
// fingerprints — and therefore their result cache keys — all differ.
func TestNodeOnlyVariantsSharePortSignature(t *testing.T) {
	base := uarch.MustGet("goldencove")
	axes := []Axis{
		{Param: "mem_bandwidth_gbs", Values: []float64{60, 90, 120}},
		{Param: "tdp_watts", Values: []float64{200, 350}},
		{Param: "max_freq_ghz", Values: []float64{3.0, 3.8}},
	}
	if !NodeOnly(axes) {
		t.Fatal("axes should classify as node-only")
	}
	vs, err := Variants(base, axes)
	if err != nil {
		t.Fatal(err)
	}
	fps := map[string]bool{}
	for _, v := range vs {
		if got := v.Model.PortSignature(); got != base.PortSignature() {
			t.Fatalf("variant %d (%s): port signature %s != base %s",
				v.Index, FormatParams(v.Params), got[:12], base.PortSignature()[:12])
		}
		if v.Model.Fingerprint() == base.Fingerprint() {
			t.Fatalf("variant %d: fingerprint identical to base", v.Index)
		}
		fps[v.Model.Fingerprint()] = true
	}
	if len(fps) != len(vs) {
		t.Fatalf("%d distinct fingerprints for %d variants", len(fps), len(vs))
	}
}

func TestPortCountVariantsChangeSignature(t *testing.T) {
	base := uarch.MustGet("goldencove")
	baseFP := base.Fingerprint()
	axes := []Axis{{Param: "load_ports", Values: []float64{1, 2, 3, 4}}}
	if NodeOnly(axes) {
		t.Fatal("port axes must not classify as node-only")
	}
	vs, err := Variants(base, axes)
	if err != nil {
		t.Fatal(err)
	}
	sigs := map[string]bool{}
	for _, v := range vs {
		sigs[v.Model.PortSignature()] = true
		if got := v.Model.LoadPorts.Count(); got != int(v.Params[0].Value) {
			t.Fatalf("variant %d: load port count %d, want %v", v.Index, got, v.Params[0].Value)
		}
	}
	if len(sigs) != len(vs) {
		t.Fatalf("%d distinct signatures for %d port-count variants", len(sigs), len(vs))
	}
	// The base model must be untouched by variant generation.
	if base.Fingerprint() != baseFP {
		t.Fatal("variant generation mutated the base model")
	}
	if base.Ports[len(base.Ports)-1] == "ld#12" {
		t.Fatal("variant generation grew the base model's port list")
	}
}

// TestRunDeterministicAcrossWorkers pins the sweep-level contract: the
// rendered report is byte-identical at any worker count, and re-running
// in-process is all-warm.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := uarch.MustGet("goldencove")
	blocks := testBlocks(t, "goldencove")
	axes := []Axis{
		{Param: "mem_bandwidth_gbs", Values: []float64{60, 120}},
		{Param: "tdp_watts", Values: []float64{200, 350}},
	}
	prev := pipeline.SetDefaultWorkers(1)
	defer pipeline.SetDefaultWorkers(prev)

	r1, err := Run(base, axes, blocks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipeline.SetDefaultWorkers(8)
	r8, err := Run(base, axes, blocks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Fatal("render differs between -j1 and -j8")
	}
	if r1.Cold == 0 {
		t.Fatal("first run computed nothing")
	}
	if r8.Cold != 0 || r8.Warm != r1.Warm+r1.Cold {
		t.Fatalf("second run: %d warm / %d cold, want %d warm / 0 cold",
			r8.Warm, r8.Cold, r1.Warm+r1.Cold)
	}
	if r1.DistinctSignatures != 1 {
		t.Fatalf("node-only sweep: %d distinct signatures, want 1", r1.DistinctSignatures)
	}
	if len(r1.Fronts) == 0 {
		t.Fatal("no Pareto fronts")
	}
	for _, f := range r1.Fronts {
		if f.Name == "sustained_gflops_vs_tdp_watts" {
			if len(f.Points) == 0 {
				t.Fatal("empty GF/s-vs-TDP front")
			}
			// Higher TDP must never appear with lower-or-equal GF/s.
			for i := 1; i < len(f.Points); i++ {
				if f.Points[i].Perf <= f.Points[i-1].Perf {
					t.Fatalf("front %s not strictly improving: %+v", f.Name, f.Points)
				}
			}
		}
	}
}

func TestRunRejectsTooLarge(t *testing.T) {
	base := uarch.MustGet("goldencove")
	blocks := testBlocks(t, "goldencove")
	axes := []Axis{{Param: "tdp_watts", Values: []float64{1, 2, 3, 4, 5}}}
	_, err := Run(base, axes, blocks, Options{MaxVariants: 4})
	var tooLarge *ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if tooLarge.Variants != 5 || tooLarge.Max != 4 {
		t.Fatalf("ErrTooLarge = %+v", tooLarge)
	}
}

func TestCountSaturates(t *testing.T) {
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	axes := []Axis{
		{Param: "rob_size", Values: vals},
		{Param: "scheduler_size", Values: vals},
		{Param: "tdp_watts", Values: vals},
		{Param: "mem_bandwidth_gbs", Values: vals},
	}
	if n := Count(axes); n != math.MaxInt {
		t.Fatalf("Count = %d, want saturation at MaxInt", n)
	}
}

func TestRenderStable(t *testing.T) {
	base := uarch.MustGet("zen4")
	blocks := testBlocks(t, "zen4")
	axes := []Axis{{Param: "rob_size", Values: []float64{64, 320}}}
	r, err := Run(base, axes, blocks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "axis rob_size: 64 320") {
		t.Fatalf("render missing axis line:\n%s", out)
	}
	if !strings.Contains(out, "pareto total_cycles_vs_rob_size") {
		t.Fatalf("render missing front:\n%s", out)
	}
	if r.DistinctSignatures != 2 {
		t.Fatalf("rob_size sweep: %d distinct signatures, want 2", r.DistinctSignatures)
	}
}
