package sweep

import "sort"

// Front is one Pareto front of the swept design space: the variants not
// dominated on the (Cost, Perf) plane. Cost is always minimized; Perf
// direction depends on the front (cycles are minimized, GF/s maximized).
type Front struct {
	// Name identifies the front ("total_cycles_vs_load_ports",
	// "sustained_gflops_vs_tdp_watts").
	Name string `json:"name"`
	// CostParam is the swept parameter on the cost axis; PerfMetric
	// names the performance axis; MaximizePerf its direction.
	CostParam    string  `json:"cost_param"`
	PerfMetric   string  `json:"perf_metric"`
	MaximizePerf bool    `json:"maximize_perf,omitempty"`
	Points       []Point `json:"points"`
}

// Point is one non-dominated variant.
type Point struct {
	Variant int     `json:"variant"`
	Cost    float64 `json:"cost"`
	Perf    float64 `json:"perf"`
}

// fronts derives the sweep's Pareto fronts: per axis, predicted total
// in-core cycles vs. the axis value (hardware cost); plus, when the
// models carry a frequency governor, sustained GF/s vs. TDP.
func fronts(res *Result) []Front {
	var out []Front
	for _, ax := range res.Axes {
		if len(ax.Values) < 2 {
			continue
		}
		f := Front{
			Name:       "total_cycles_vs_" + ax.Param,
			CostParam:  ax.Param,
			PerfMetric: "total_cycles",
		}
		f.Points = pareto(res.Variants, func(v *VariantResult) (float64, float64, bool) {
			c, ok := axisValue(v.Params, ax.Param)
			return c, v.TotalCycles, ok
		}, false)
		out = append(out, f)

		if ax.Param == "tdp_watts" {
			g := Front{
				Name:         "sustained_gflops_vs_tdp_watts",
				CostParam:    "tdp_watts",
				PerfMetric:   "sustained_gflops",
				MaximizePerf: true,
			}
			g.Points = pareto(res.Variants, func(v *VariantResult) (float64, float64, bool) {
				c, ok := axisValue(v.Params, "tdp_watts")
				return c, v.SustainedGFlops, ok && v.SustainedGFlops > 0
			}, true)
			if len(g.Points) > 0 {
				out = append(out, g)
			}
		}
	}
	return out
}

// pareto filters the variants to the non-dominated set on (cost, perf):
// a point survives if no other point is at least as good on both axes
// and strictly better on one. The result is sorted by ascending cost
// (ties broken by perf, then variant index), which — combined with the
// canonical variant enumeration — makes fronts byte-identical across
// runs and worker counts.
func pareto(vs []VariantResult, metric func(*VariantResult) (cost, perf float64, ok bool), maximize bool) []Point {
	pts := make([]Point, 0, len(vs))
	for i := range vs {
		c, p, ok := metric(&vs[i])
		if !ok {
			continue
		}
		if maximize {
			p = -p
		}
		pts = append(pts, Point{Variant: vs[i].Index, Cost: c, Perf: p})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		if pts[i].Perf != pts[j].Perf {
			return pts[i].Perf < pts[j].Perf
		}
		return pts[i].Variant < pts[j].Variant
	})
	// After the sort, a point is dominated exactly when some earlier
	// point has perf <= its perf (earlier means cost <=; equal-cost
	// equal-perf duplicates keep only the first).
	front := pts[:0]
	best := 0.0
	haveBest := false
	for _, p := range pts {
		if haveBest && p.Perf >= best {
			continue
		}
		front = append(front, p)
		best, haveBest = p.Perf, true
	}
	if maximize {
		for i := range front {
			front[i].Perf = -front[i].Perf
		}
	}
	return append([]Point(nil), front...)
}
