package memsim

// WAPolicyKind selects the write-miss handling of a system.
type WAPolicyKind int

// Write-allocate policies of the three systems.
const (
	// PolicyAlwaysAllocate is classic write-allocate (Zen 4 with
	// standard stores: the only WA evasion on Genoa is NT stores).
	PolicyAlwaysAllocate WAPolicyKind = iota
	// PolicyAutoClaim is the automatic cache-line claim of Arm cores
	// (Grace): full-line streaming overwrites claim lines without
	// reading them.
	PolicyAutoClaim
	// PolicySpecI2M is Intel's speculative I2M conversion: RFOs become
	// ownership-only requests once the memory interface nears
	// saturation, for a bounded share of misses.
	PolicySpecI2M
)

// String names the policy.
func (k WAPolicyKind) String() string {
	switch k {
	case PolicyAlwaysAllocate:
		return "always-allocate"
	case PolicyAutoClaim:
		return "auto-claim"
	case PolicySpecI2M:
		return "specI2M"
	default:
		return "unknown"
	}
}

// streamDetector recognizes sequential full-line write streams (the
// trigger for automatic cache-line claim on Neoverse cores).
type streamDetector struct {
	lastLine    LineAddr
	consecutive int
	// TrainLen is the number of consecutive lines required before the
	// detector engages.
	TrainLen int
}

// Observe feeds one written line address and reports whether the detector
// is (now) in streaming mode.
func (d *streamDetector) Observe(a LineAddr) bool {
	if d.TrainLen <= 0 {
		d.TrainLen = 8
	}
	if d.consecutive > 0 && a == d.lastLine+1 {
		d.consecutive++
	} else {
		d.consecutive = 1
	}
	d.lastLine = a
	return d.consecutive > d.TrainLen
}

// Streaming reports the current state without observing a new address.
func (d *streamDetector) Streaming() bool {
	return d.consecutive > d.TrainLen
}

// specI2MState tracks the deterministic fractional conversion of RFOs to
// I2M requests per memory controller.
type specI2MState struct {
	// Threshold is the utilization at which conversion begins; MaxShare
	// is the asymptotic fraction of converted RFOs (paper: SpecI2M
	// reduces write-allocate traffic by at most ~25%, and only near
	// saturation).
	Threshold float64
	MaxShare  float64
	// RampEnd is the utilization at which MaxShare is reached.
	RampEnd float64
	acc     float64
}

// Convert reports whether the next RFO should be converted to I2M given
// the controller utilization. Conversion is deterministic: the share
// accumulates fractionally, so exactly share(util) of requests convert.
func (s *specI2MState) Convert(util float64) bool {
	share := s.share(util)
	if share <= 0 {
		return false
	}
	s.acc += share
	if s.acc >= 1 {
		s.acc--
		return true
	}
	return false
}

func (s *specI2MState) share(util float64) float64 {
	if util < s.Threshold {
		return 0
	}
	if s.RampEnd <= s.Threshold {
		return s.MaxShare
	}
	f := (util - s.Threshold) / (s.RampEnd - s.Threshold)
	if f > 1 {
		f = 1
	}
	return f * s.MaxShare
}
