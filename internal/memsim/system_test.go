package memsim

import (
	"math"
	"testing"
)

func sys(t *testing.T, key string) *System {
	t.Helper()
	cfg, err := ConfigFor(key)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const testLines = 4096

func TestConfigForAllNodes(t *testing.T) {
	for _, key := range []string{"neoversev2", "goldencove", "zen4"} {
		cfg, err := ConfigFor(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if cfg.Cores <= 0 || cfg.DomainGBs <= 0 || cfg.CoreGBs <= 0 {
			t.Errorf("%s config incomplete: %+v", key, cfg)
		}
	}
	if _, err := ConfigFor("unknown"); err == nil {
		t.Error("unknown node must error")
	}
}

func TestGraceAutoClaimPerfectEvasion(t *testing.T) {
	s := sys(t, "neoversev2")
	for _, cores := range []int{1, 8, 72} {
		r, err := s.RunStoreStream(cores, testLines, false)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := r.WARatio(); ratio > 1.05 {
			t.Errorf("Grace at %d cores: ratio %.3f, want ~1.0 (paper Fig. 4)", cores, ratio)
		}
	}
}

func TestGenoaFullWATraffic(t *testing.T) {
	s := sys(t, "zen4")
	for _, cores := range []int{1, 48, 96} {
		r, err := s.RunStoreStream(cores, testLines, false)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := r.WARatio(); math.Abs(ratio-2.0) > 0.05 {
			t.Errorf("Genoa at %d cores: ratio %.3f, want 2.0", cores, ratio)
		}
	}
}

func TestGenoaNTStoresPerfect(t *testing.T) {
	s := sys(t, "zen4")
	r, err := s.RunStoreStream(96, testLines, true)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := r.WARatio(); math.Abs(ratio-1.0) > 0.02 {
		t.Errorf("Genoa NT ratio = %.3f, want 1.0", ratio)
	}
}

func TestSPRSpecI2MGatedBySaturation(t *testing.T) {
	s := sys(t, "goldencove")
	low, err := s.RunStoreStream(2, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := low.WARatio(); math.Abs(ratio-2.0) > 0.05 {
		t.Errorf("SPR at 2 cores: ratio %.3f, want 2.0 (SpecI2M must not engage)", ratio)
	}
	high, err := s.RunStoreStream(52, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := high.WARatio(); math.Abs(ratio-1.75) > 0.05 {
		t.Errorf("SPR at 52 cores: ratio %.3f, want ~1.75 (25%% reduction cap)", ratio)
	}
}

func TestSPRNTResidual(t *testing.T) {
	s := sys(t, "goldencove")
	small, err := s.RunStoreStream(2, testLines, true)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := small.WARatio(); math.Abs(ratio-1.0) > 0.02 {
		t.Errorf("SPR NT at 2 cores: ratio %.3f, want 1.0", ratio)
	}
	big, err := s.RunStoreStream(52, testLines, true)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := big.WARatio(); math.Abs(ratio-1.10) > 0.03 {
		t.Errorf("SPR NT at 52 cores: ratio %.3f, want ~1.10 (residual RFOs)", ratio)
	}
}

func TestTriadTrafficAccounting(t *testing.T) {
	s := sys(t, "zen4")
	r, err := s.RunTriad(4, testLines, true)
	if err != nil {
		t.Fatal(err)
	}
	// Per line: 2 loads + 1 NT store; loaded = 2x stored.
	if r.LoadedBytes != 2*r.StoredBytes {
		t.Errorf("loaded %d, stored %d: want 2:1", r.LoadedBytes, r.StoredBytes)
	}
	// NT: traffic equals useful bytes.
	traffic := r.MemReadBytes + r.MemWriteBytes
	useful := r.LoadedBytes + r.StoredBytes
	if math.Abs(float64(traffic)/float64(useful)-1.0) > 0.02 {
		t.Errorf("NT triad traffic %d vs useful %d", traffic, useful)
	}
	// With standard stores the WA read adds a third of the loads again.
	r2, err := s.RunTriad(4, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	traffic2 := r2.MemReadBytes + r2.MemWriteBytes
	if !(traffic2 > traffic) {
		t.Error("standard stores must add write-allocate traffic")
	}
}

func TestCopyWorkload(t *testing.T) {
	s := sys(t, "zen4")
	r, err := s.RunCopy(2, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.LoadedBytes != r.StoredBytes {
		t.Errorf("copy: loaded %d != stored %d", r.LoadedBytes, r.StoredBytes)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// At full socket the achieved traffic bandwidth approaches the
	// configured controller capacity.
	cfg := MustConfigFor("zen4")
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunStoreStream(96, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	cap := cfg.DomainGBs * float64(cfg.Domains)
	if got := r.TrafficGBs(); got < 0.9*cap || got > 1.05*cap {
		t.Errorf("saturated traffic %.1f GB/s, capacity %.1f", got, cap)
	}
}

func TestSingleCoreBelowSaturation(t *testing.T) {
	cfg := MustConfigFor("zen4")
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunStoreStream(1, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	// One core generates CoreGBs of stores -> 2x traffic with WA.
	want := 2 * cfg.CoreGBs
	if got := r.TrafficGBs(); math.Abs(got-want) > 0.2*want {
		t.Errorf("single-core traffic %.1f GB/s, want ~%.1f", got, want)
	}
}

func TestRunValidation(t *testing.T) {
	s := sys(t, "zen4")
	if _, err := s.RunStoreStream(0, testLines, false); err == nil {
		t.Error("zero cores must error")
	}
	if _, err := s.RunStoreStream(200, testLines, false); err == nil {
		t.Error("too many cores must error")
	}
	if _, err := s.RunStoreStream(1, 0, false); err == nil {
		t.Error("zero lines must error")
	}
}

func TestSystemReuse(t *testing.T) {
	// Back-to-back runs on one system must be independent (reset).
	s := sys(t, "zen4")
	a, err := s.RunStoreStream(4, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunStoreStream(4, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.WARatio() != b.WARatio() {
		t.Errorf("runs not reproducible: %.4f vs %.4f", a.WARatio(), b.WARatio())
	}
}

func TestWACurveAndDefaultCounts(t *testing.T) {
	counts := DefaultCounts(52)
	if counts[0] != 1 || counts[len(counts)-1] != 52 {
		t.Errorf("DefaultCounts bounds: %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Errorf("DefaultCounts not strictly increasing: %v", counts)
		}
	}
	curve, err := WACurve("neoversev2", false, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Errorf("curve size = %d", len(curve))
	}
}

func TestPlacementCompactVsScatter(t *testing.T) {
	cfg := MustConfigFor("goldencove")
	cfg.Placement = PlacementCompact
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With compact placement, 13 cores land on one domain and saturate
	// it -> SpecI2M engages earlier than with scatter.
	r, err := s.RunStoreStream(13, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	compact13 := r.WARatio()

	cfg2 := MustConfigFor("goldencove")
	s2, err := NewSystem(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.RunStoreStream(13, testLines, false)
	if err != nil {
		t.Fatal(err)
	}
	scatter13 := r2.WARatio()
	if !(compact13 < scatter13) {
		t.Errorf("compact placement must engage SpecI2M earlier: compact %.3f vs scatter %.3f",
			compact13, scatter13)
	}
}
