package memsim

import (
	"testing"
	"testing/quick"
)

func testCache() *Cache {
	return NewCache(CacheConfig{SizeBytes: 4096, Ways: 4, LineBytes: 64})
}

func TestCacheConfigSets(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 4096, Ways: 4, LineBytes: 64}
	if cfg.Sets() != 16 {
		t.Errorf("Sets = %d, want 16", cfg.Sets())
	}
	if (CacheConfig{}).Sets() != 0 {
		t.Error("zero config must have no sets")
	}
	tiny := CacheConfig{SizeBytes: 64, Ways: 4, LineBytes: 64}
	if tiny.Sets() != 1 {
		t.Errorf("tiny cache must clamp to 1 set, got %d", tiny.Sets())
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := testCache()
	if c.Lookup(100, false) {
		t.Error("cold cache must miss")
	}
	c.Insert(100, false)
	if !c.Lookup(100, false) {
		t.Error("inserted line must hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheWriteMarksDirty(t *testing.T) {
	c := testCache()
	c.Insert(5, false)
	c.Lookup(5, true) // write hit -> dirty
	var flushed []LineAddr
	c.FlushDirty(func(a LineAddr) { flushed = append(flushed, a) })
	if len(flushed) != 1 || flushed[0] != 5 {
		t.Errorf("flushed = %v", flushed)
	}
	// Second flush: clean.
	flushed = nil
	c.FlushDirty(func(a LineAddr) { flushed = append(flushed, a) })
	if len(flushed) != 0 {
		t.Error("flush must clean lines")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := testCache() // 16 sets, 4 ways
	// Fill one set (addresses congruent mod 16).
	for i := 0; i < 4; i++ {
		c.Insert(LineAddr(i*16), false)
	}
	// Touch line 0 to make it MRU.
	c.Lookup(0, false)
	// Insert a 5th line: the LRU victim must be line 16 (not 0).
	victim, evicted, _ := c.Insert(4*16, false)
	if !evicted {
		t.Fatal("expected an eviction")
	}
	if victim == 0 {
		t.Error("MRU line must not be evicted")
	}
	if victim != 16 {
		t.Errorf("victim = %d, want 16 (LRU)", victim)
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := testCache()
	for i := 0; i < 4; i++ {
		c.Insert(LineAddr(i*16), true)
	}
	_, evicted, dirty := c.Insert(4*16, false)
	if !evicted || !dirty {
		t.Error("evicting a dirty line must report dirty")
	}
	if c.DirtyEvictons != 1 {
		t.Errorf("DirtyEvictons = %d", c.DirtyEvictons)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := testCache()
	c.Insert(7, true)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Error("invalidate must report presence and dirtiness")
	}
	if c.Lookup(7, false) {
		t.Error("invalidated line must miss")
	}
	present, _ = c.Invalidate(7)
	if present {
		t.Error("double invalidate must report absence")
	}
}

// TestCacheCapacityProperty: inserting W distinct lines mapping to one set
// keeps at most `ways` resident.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(n uint8) bool {
		c := testCache()
		count := int(n%32) + 1
		for i := 0; i < count; i++ {
			c.Insert(LineAddr(i*16), false) // all in set 0
		}
		resident := 0
		for i := 0; i < count; i++ {
			if c.Lookup(LineAddr(i*16), false) {
				resident++
			}
		}
		return resident <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamDetector(t *testing.T) {
	var d streamDetector
	d.TrainLen = 4
	for i := 0; i < 4; i++ {
		if d.Observe(LineAddr(i)) {
			t.Errorf("detector engaged during training at line %d", i)
		}
	}
	if !d.Observe(4) {
		t.Error("detector must engage after TrainLen consecutive lines")
	}
	if !d.Streaming() {
		t.Error("Streaming() must report the engaged state")
	}
	// A jump resets it.
	if d.Observe(100) {
		t.Error("non-sequential write must reset the detector")
	}
	if d.Streaming() {
		t.Error("detector must be reset")
	}
}

func TestSpecI2MStateRamp(t *testing.T) {
	s := specI2MState{Threshold: 0.6, MaxShare: 0.25, RampEnd: 0.9}
	// Below threshold: never converts.
	for i := 0; i < 100; i++ {
		if s.Convert(0.5) {
			t.Fatal("conversion below threshold")
		}
	}
	// At saturation: exactly 25% convert.
	conv := 0
	for i := 0; i < 1000; i++ {
		if s.Convert(1.0) {
			conv++
		}
	}
	if conv < 240 || conv > 260 {
		t.Errorf("conversion share at saturation = %d/1000, want ~250", conv)
	}
	// Mid-ramp: between 0 and 25%.
	s2 := specI2MState{Threshold: 0.6, MaxShare: 0.25, RampEnd: 0.9}
	conv = 0
	for i := 0; i < 1000; i++ {
		if s2.Convert(0.75) {
			conv++
		}
	}
	if conv < 100 || conv > 150 {
		t.Errorf("mid-ramp conversion = %d/1000, want ~125", conv)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[WAPolicyKind]string{
		PolicyAlwaysAllocate: "always-allocate",
		PolicyAutoClaim:      "auto-claim",
		PolicySpecI2M:        "specI2M",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
