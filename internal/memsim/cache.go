// Package memsim simulates the memory hierarchy of the three test systems
// at cache-line granularity: per-core L1/L2, a shared L3, and per-NUMA-
// domain memory controllers with bounded bandwidth. Its purpose is the
// paper's write-allocate (WA) evasion study (Fig. 4) and the node
// bandwidth measurements (Table I): it accounts every byte that crosses
// the memory interface, under four write-miss policies:
//
//   - always-allocate (classic write-allocate: read-for-ownership, then
//     eventual writeback — 2 bytes of traffic per byte stored),
//   - automatic cache-line claim (Neoverse V2 / Grace: a streaming
//     detector recognizes full-line overwrites and claims lines without
//     reading them),
//   - SpecI2M (Intel Ice Lake+/SPR: the controller converts RFOs to I2M
//     ownership requests, but only once the memory interface is close to
//     saturation, and only for a bounded share of misses),
//   - non-temporal stores (write-combining buffers that bypass the cache
//     hierarchy; perfect on Zen 4, with a residual RFO fraction on SPR).
package memsim

// LineAddr is a cache-line-granular address.
type LineAddr uint64

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int64
	Ways      int
	LineBytes int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int {
	if c.Ways <= 0 || c.LineBytes <= 0 {
		return 0
	}
	s := c.SizeBytes / int64(c.Ways) / int64(c.LineBytes)
	if s < 1 {
		return 1
	}
	return int(s)
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set sequence number; larger = more recently used.
	lru uint64
}

// Cache is a set-associative write-back cache with LRU replacement.
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	nsets uint64
	clock uint64

	// Stats.
	Hits, Misses  int64
	Evictions     int64
	DirtyEvictons int64
}

// NewCache builds an empty cache.
func NewCache(cfg CacheConfig) *Cache {
	n := cfg.Sets()
	sets := make([][]cacheLine, n)
	backing := make([]cacheLine, n*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, nsets: uint64(n)}
}

func (c *Cache) setIndex(a LineAddr) uint64 { return uint64(a) % c.nsets }
func (c *Cache) tag(a LineAddr) uint64      { return uint64(a) / c.nsets }

// Lookup probes the cache; on a hit it updates LRU state and, for writes,
// the dirty bit.
func (c *Cache) Lookup(a LineAddr, write bool) bool {
	set := c.sets[c.setIndex(a)]
	tag := c.tag(a)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.clock++
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert allocates a line (marking it dirty for writes) and returns the
// evicted victim, if any. evictedDirty reports whether the victim needs a
// writeback.
func (c *Cache) Insert(a LineAddr, dirty bool) (victim LineAddr, evicted, evictedDirty bool) {
	si := c.setIndex(a)
	set := c.sets[si]
	tag := c.tag(a)
	c.clock++
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			set[i] = cacheLine{tag: tag, valid: true, dirty: dirty, lru: c.clock}
			return 0, false, false
		}
	}
	// Evict LRU.
	v := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[v].lru {
			v = i
		}
	}
	victimAddr := LineAddr(set[v].tag*c.nsets + si)
	wasDirty := set[v].dirty
	set[v] = cacheLine{tag: tag, valid: true, dirty: dirty, lru: c.clock}
	c.Evictions++
	if wasDirty {
		c.DirtyEvictons++
	}
	return victimAddr, true, wasDirty
}

// Invalidate drops a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(a LineAddr) (present, dirty bool) {
	set := c.sets[c.setIndex(a)]
	tag := c.tag(a)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = cacheLine{}
			return true, d
		}
	}
	return false, false
}

// FlushDirty visits every dirty line, invokes fn, and marks it clean.
func (c *Cache) FlushDirty(fn func(LineAddr)) {
	for si := range c.sets {
		for i := range c.sets[si] {
			l := &c.sets[si][i]
			if l.valid && l.dirty {
				fn(LineAddr(l.tag*c.nsets + uint64(si)))
				l.dirty = false
			}
		}
	}
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }
