package memsim

import (
	"fmt"

	"incore/internal/nodes"
)

// CacheScale divides the real cache sizes in the default configs so the
// simulator's memory footprint stays small. The benchmark working sets
// are scaled by the same factor (the paper uses a 40 GB set; we keep
// working set >> cache capacity, which is all the traffic ratios depend
// on).
const CacheScale = 256

// DefaultStoreLinesPerCore is the per-core working-set size for the
// store benchmark in cache lines (1 MiB per core at 64 B lines — two
// orders of magnitude above the scaled cache capacity).
const DefaultStoreLinesPerCore = 16384

// ConfigFor returns the calibrated memory-system config for one of the
// paper's nodes. The WA policy and its parameters encode the paper's
// Sec. III findings:
//
//   - Grace (neoversev2): automatic cache-line claim — the only system
//     that fully evades write-allocates with standard stores;
//   - SPR (goldencove): SpecI2M — converts at most ~25% of RFOs, and
//     only when the memory interface approaches saturation; NT stores
//     keep a ~10% residual RFO share except at very small core counts;
//   - Genoa (zen4): no automatic evasion; NT stores work perfectly.
func ConfigFor(key string) (Config, error) {
	n, err := nodes.Get(key)
	if err != nil {
		return Config{}, err
	}
	measuredGBs := n.TheoreticalBandwidthGBs() * n.StreamEfficiency
	cfg := Config{
		Key:     key,
		Cores:   n.Cores,
		Domains: n.CCNUMADomains,
		L1:      CacheConfig{SizeBytes: n.L1Bytes / CacheScale, Ways: 8, LineBytes: n.CacheLineBytes},
		L2:      CacheConfig{SizeBytes: n.L2Bytes / CacheScale, Ways: 8, LineBytes: n.CacheLineBytes},
		L3: CacheConfig{
			SizeBytes: n.L3Bytes / CacheScale / int64(n.CCNUMADomains),
			Ways:      16, LineBytes: n.CacheLineBytes,
		},
		LineBytes:     n.CacheLineBytes,
		DomainGBs:     measuredGBs / float64(n.CCNUMADomains),
		MLP:           16,
		QueueCapBytes: 1 << 16,
		Placement:     PlacementScatter,
	}
	switch key {
	case "neoversev2":
		cfg.Policy = PolicyAutoClaim
		cfg.DetectorTrainLen = 8
		cfg.CoreGBs = 8
	case "goldencove":
		cfg.Policy = PolicySpecI2M
		cfg.SpecI2MThreshold = 0.65
		cfg.SpecI2MRampEnd = 0.90
		cfg.SpecI2MMaxShare = 0.25
		cfg.NTResidualRFO = 0.10
		cfg.NTResidualMinCores = 4
		cfg.CoreGBs = 5
	case "zen4":
		cfg.Policy = PolicyAlwaysAllocate
		cfg.CoreGBs = 5.5
	default:
		return Config{}, fmt.Errorf("memsim: no calibration for %q", key)
	}
	return cfg, nil
}

// MustConfigFor panics on unknown keys.
func MustConfigFor(key string) Config {
	cfg, err := ConfigFor(key)
	if err != nil {
		panic(err)
	}
	return cfg
}

// WACurve runs the store benchmark across core counts and returns the
// traffic ratio per active core count (Fig. 4 series). Core counts are
// swept in steps to keep runtime bounded: 1,2,4,... plus the full socket.
func WACurve(key string, nt bool, counts []int) (map[int]float64, error) {
	cfg, err := ConfigFor(key)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(counts))
	for _, n := range counts {
		r, err := sys.RunStoreStream(n, DefaultStoreLinesPerCore, nt)
		if err != nil {
			return nil, err
		}
		out[n] = r.WARatio()
	}
	return out, nil
}

// DefaultCounts returns a sensible sweep of core counts for a node.
func DefaultCounts(cores int) []int {
	var out []int
	for n := 1; n < cores; n *= 2 {
		out = append(out, n)
	}
	// Denser sampling in the upper half, where SpecI2M engages.
	for _, f := range []float64{0.375, 0.5, 0.625, 0.75, 0.875} {
		n := int(f * float64(cores))
		if n >= 1 {
			out = append(out, n)
		}
	}
	out = append(out, cores)
	seen := map[int]bool{}
	var uniq []int
	for _, n := range out {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	// Insertion sort (tiny slice).
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && uniq[j] < uniq[j-1]; j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	return uniq
}
