package memsim

import (
	"fmt"
	"math"
)

// TickSeconds is the simulation time step (10 ns).
const TickSeconds = 10e-9

// Config describes one simulated node's memory system.
type Config struct {
	Key     string
	Cores   int
	Domains int
	// Placement selects how active cores map to NUMA domains.
	Placement Placement

	L1, L2 CacheConfig // per core
	L3     CacheConfig // per domain slice
	// LineBytes is the cache-line size.
	LineBytes int

	// DomainGBs is each memory controller's sustained capacity.
	DomainGBs float64
	// CoreGBs is the per-core stored-byte generation rate for a
	// store-only stream (the core-side limit).
	CoreGBs float64
	// MLP is the per-core outstanding-read limit.
	MLP int
	// QueueCapBytes bounds each controller queue (back-pressure).
	QueueCapBytes int64

	Policy WAPolicyKind
	// DetectorTrainLen configures the auto-claim streaming detector.
	DetectorTrainLen int
	// SpecI2M parameters (used when Policy == PolicySpecI2M).
	SpecI2MThreshold float64
	SpecI2MMaxShare  float64
	SpecI2MRampEnd   float64
	// NTResidualRFO is the fraction of non-temporal store lines that
	// still perform an RFO (SPR's imperfect NT stores); it applies only
	// when more than NTResidualMinCores cores are active.
	NTResidualRFO      float64
	NTResidualMinCores int
}

// Placement maps active cores to domains.
type Placement int

// Placement policies.
const (
	// PlacementScatter distributes active cores round-robin across
	// domains (OpenMP "spread", the paper's SNC-mode default).
	PlacementScatter Placement = iota
	// PlacementCompact fills one domain before the next.
	PlacementCompact
)

type request struct {
	core   int
	bytes  int
	isRead bool
}

type controller struct {
	bytesPerTick float64
	budget       float64
	queue        []request
	queuedBytes  int64
	util         float64 // EMA of served/capacity
	i2m          specI2MState

	ReadBytes, WriteBytes int64
}

func (c *controller) enqueue(r request) {
	c.queue = append(c.queue, r)
	c.queuedBytes += int64(r.bytes)
}

// serve advances one tick, returning per-core completed read counts.
func (c *controller) serve(completed []int) {
	c.budget += c.bytesPerTick
	served := 0.0
	for len(c.queue) > 0 && c.budget >= float64(c.queue[0].bytes) {
		r := c.queue[0]
		c.queue = c.queue[1:]
		c.queuedBytes -= int64(r.bytes)
		c.budget -= float64(r.bytes)
		served += float64(r.bytes)
		if r.isRead {
			c.ReadBytes += int64(r.bytes)
			completed[r.core]++
		} else {
			c.WriteBytes += int64(r.bytes)
		}
	}
	if c.budget > c.bytesPerTick {
		// Idle capacity does not bank beyond one tick.
		c.budget = c.bytesPerTick
	}
	const alpha = 0.02
	c.util = (1-alpha)*c.util + alpha*math.Min(1, served/c.bytesPerTick)
}

type simCore struct {
	id       int
	domain   int
	l1, l2   *Cache
	detector streamDetector

	outstanding int
	issueAcc    float64

	// Workload cursor.
	next, end LineAddr
	strides   []workStream
	cursor    int64
	done      bool

	nt          bool
	ntResidAcc  float64
	storedBytes int64
	loadedBytes int64
}

// workStream is one array stream of a workload: a base address and
// whether it is written.
type workStream struct {
	base  LineAddr
	write bool
	nt    bool
}

// System is a multi-core memory-hierarchy simulator.
type System struct {
	cfg   Config
	cores []*simCore
	l3    []*Cache
	ctrl  []*controller
	ticks int64
}

// NewSystem builds a system from a config.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cores <= 0 || cfg.Domains <= 0 {
		return nil, fmt.Errorf("memsim: bad config: cores=%d domains=%d", cfg.Cores, cfg.Domains)
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	s := &System{cfg: cfg}
	for d := 0; d < cfg.Domains; d++ {
		s.l3 = append(s.l3, NewCache(cfg.L3))
		ctl := &controller{bytesPerTick: cfg.DomainGBs * TickSeconds * 1e9}
		ctl.i2m = specI2MState{Threshold: cfg.SpecI2MThreshold, MaxShare: cfg.SpecI2MMaxShare, RampEnd: cfg.SpecI2MRampEnd}
		s.ctrl = append(s.ctrl, ctl)
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &simCore{
			id: i,
			l1: NewCache(cfg.L1),
			l2: NewCache(cfg.L2),
		}
		c.detector.TrainLen = cfg.DetectorTrainLen
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// domainOf maps the i-th *active* core to its NUMA domain.
func (s *System) domainOf(activeIdx, activeTotal int) int {
	if s.cfg.Placement == PlacementCompact {
		per := (s.cfg.Cores + s.cfg.Domains - 1) / s.cfg.Domains
		return (activeIdx / per) % s.cfg.Domains
	}
	return activeIdx % s.cfg.Domains
}

// TrafficResult summarises one workload run.
type TrafficResult struct {
	MemReadBytes, MemWriteBytes int64
	StoredBytes, LoadedBytes    int64
	Ticks                       int64
	ActiveCores                 int
}

// WARatio is the paper's Fig. 4 metric: actual memory traffic divided by
// the stored data volume (1.0 = perfect WA evasion, 2.0 = full WA).
func (r TrafficResult) WARatio() float64 {
	if r.StoredBytes == 0 {
		return 0
	}
	return float64(r.MemReadBytes+r.MemWriteBytes) / float64(r.StoredBytes)
}

// TrafficGBs is the achieved memory-interface bandwidth.
func (r TrafficResult) TrafficGBs() float64 {
	t := float64(r.Ticks) * TickSeconds
	if t <= 0 {
		return 0
	}
	return float64(r.MemReadBytes+r.MemWriteBytes) / t / 1e9
}

// UsefulGBs is the application-visible bandwidth (loaded+stored bytes per
// second), the STREAM convention.
func (r TrafficResult) UsefulGBs() float64 {
	t := float64(r.Ticks) * TickSeconds
	if t <= 0 {
		return 0
	}
	return float64(r.LoadedBytes+r.StoredBytes) / t / 1e9
}

// RunStoreStream runs the paper's store-only (array initialization)
// benchmark on `active` cores, each writing linesPerCore sequential cache
// lines, with standard (nt=false) or non-temporal (nt=true) stores.
func (s *System) RunStoreStream(active, linesPerCore int, nt bool) (TrafficResult, error) {
	streams := []workStream{{base: 0, write: true, nt: nt}}
	return s.run(active, linesPerCore, streams)
}

// RunTriad runs a STREAM-triad-shaped workload (two load streams, one
// store stream) of linesPerCore lines per stream per core.
func (s *System) RunTriad(active, linesPerCore int, ntStores bool) (TrafficResult, error) {
	streams := []workStream{
		{base: 1 << 30, write: false},
		{base: 2 << 30, write: false},
		{base: 0, write: true, nt: ntStores},
	}
	return s.run(active, linesPerCore, streams)
}

// RunCopy runs a copy workload (one load stream, one store stream).
func (s *System) RunCopy(active, linesPerCore int, ntStores bool) (TrafficResult, error) {
	streams := []workStream{
		{base: 1 << 30, write: false},
		{base: 0, write: true, nt: ntStores},
	}
	return s.run(active, linesPerCore, streams)
}

func (s *System) run(active, linesPerCore int, streams []workStream) (TrafficResult, error) {
	if active <= 0 || active > s.cfg.Cores {
		return TrafficResult{}, fmt.Errorf("memsim: %s: active cores %d out of range 1..%d", s.cfg.Key, active, s.cfg.Cores)
	}
	if linesPerCore <= 0 {
		return TrafficResult{}, fmt.Errorf("memsim: linesPerCore must be positive")
	}
	s.reset()
	// Per-core disjoint address regions, 1 GiB apart per core per stream.
	lineShift := uint(6)
	regionLines := LineAddr(1 << (30 - lineShift))
	act := s.cores[:active]
	for i, c := range act {
		c.domain = s.domainOf(i, active)
		c.strides = make([]workStream, len(streams))
		for j, st := range streams {
			c.strides[j] = workStream{
				base:  st.base/64 + LineAddr(i)*regionLines*8,
				write: st.write,
				nt:    st.nt,
			}
		}
		c.cursor = 0
		c.done = false
	}

	// Issue rate: CoreGBs of *stored* bytes per second translates into
	// iterations/tick; each iteration touches len(streams) lines.
	linesPerTickStored := s.cfg.CoreGBs * TickSeconds * 1e9 / float64(s.cfg.LineBytes)

	completed := make([]int, s.cfg.Cores)
	var res TrafficResult
	res.ActiveCores = active

	maxTicks := int64(200_000_000)
	flushed := false
	for tick := int64(0); ; tick++ {
		if tick > maxTicks {
			return TrafficResult{}, fmt.Errorf("memsim: %s: run did not converge within %d ticks", s.cfg.Key, maxTicks)
		}
		allDone := true
		for _, c := range act {
			if c.done {
				continue
			}
			allDone = false
			c.issueAcc += linesPerTickStored
			for c.issueAcc >= 1 && !c.done {
				if c.outstanding >= s.cfg.MLP {
					break
				}
				if s.ctrl[c.domain].queuedBytes > s.cfg.QueueCapBytes {
					break
				}
				s.issueIteration(c, active)
				c.issueAcc--
				if c.cursor >= int64(linesPerCore) {
					c.done = true
				}
			}
		}
		if allDone && !flushed {
			// Trailing writebacks: dirty lines still in the caches
			// drain through the controllers like any other traffic.
			for _, c := range act {
				ctl := s.ctrl[c.domain]
				flush := func(a LineAddr) {
					ctl.enqueue(request{core: c.id, bytes: s.cfg.LineBytes})
				}
				c.l1.FlushDirty(flush)
				c.l2.FlushDirty(flush)
			}
			for d, l3 := range s.l3 {
				ctl := s.ctrl[d]
				l3.FlushDirty(func(a LineAddr) {
					ctl.enqueue(request{core: 0, bytes: s.cfg.LineBytes})
				})
			}
			flushed = true
		}
		for _, ctl := range s.ctrl {
			ctl.serve(completed)
		}
		for i, c := range act {
			if completed[i] > 0 {
				c.outstanding -= completed[i]
				completed[i] = 0
			}
		}
		if allDone && flushed {
			empty := true
			for _, ctl := range s.ctrl {
				if len(ctl.queue) > 0 {
					empty = false
				}
			}
			if empty {
				s.ticks = tick
				break
			}
		}
	}

	for _, ctl := range s.ctrl {
		res.MemReadBytes += ctl.ReadBytes
		res.MemWriteBytes += ctl.WriteBytes
	}
	for _, c := range act {
		res.StoredBytes += c.storedBytes
		res.LoadedBytes += c.loadedBytes
	}
	res.Ticks = s.ticks
	return res, nil
}

// issueIteration performs one iteration (one line per stream) for a core.
func (s *System) issueIteration(c *simCore, active int) {
	lb := int64(s.cfg.LineBytes)
	for _, st := range c.strides {
		addr := st.base + LineAddr(c.cursor)
		switch {
		case st.write && st.nt:
			s.ntStore(c, active)
			c.storedBytes += lb
		case st.write:
			s.store(c, addr)
			c.storedBytes += lb
		default:
			s.load(c, addr)
			c.loadedBytes += lb
		}
	}
	c.cursor++
}

// store handles a standard full-line store.
func (s *System) store(c *simCore, a LineAddr) {
	streaming := false
	if s.cfg.Policy == PolicyAutoClaim {
		streaming = c.detector.Observe(a)
	}
	if c.l1.Lookup(a, true) {
		return
	}
	if c.l2.Lookup(a, true) {
		s.insertL1(c, a, true)
		return
	}
	l3 := s.l3[c.domain]
	if l3.Lookup(a, true) {
		s.insertL1(c, a, true)
		return
	}
	ctl := s.ctrl[c.domain]
	needRead := true
	switch s.cfg.Policy {
	case PolicyAutoClaim:
		needRead = !streaming
	case PolicySpecI2M:
		if ctl.i2m.Convert(ctl.util) {
			needRead = false
		}
	}
	if needRead {
		ctl.enqueue(request{core: c.id, bytes: s.cfg.LineBytes, isRead: true})
		c.outstanding++
	}
	s.insertL1(c, a, true)
}

// load handles a full-line read.
func (s *System) load(c *simCore, a LineAddr) {
	if c.l1.Lookup(a, false) {
		return
	}
	if c.l2.Lookup(a, false) {
		s.insertL1(c, a, false)
		return
	}
	if s.l3[c.domain].Lookup(a, false) {
		s.insertL1(c, a, false)
		return
	}
	ctl := s.ctrl[c.domain]
	ctl.enqueue(request{core: c.id, bytes: s.cfg.LineBytes, isRead: true})
	c.outstanding++
	s.insertL1(c, a, false)
}

// ntStore handles a non-temporal full-line store through write-combining
// buffers: the line bypasses the cache hierarchy entirely.
func (s *System) ntStore(c *simCore, active int) {
	ctl := s.ctrl[c.domain]
	ctl.enqueue(request{core: c.id, bytes: s.cfg.LineBytes, isRead: false})
	if s.cfg.NTResidualRFO > 0 && active > s.cfg.NTResidualMinCores {
		c.ntResidAcc += s.cfg.NTResidualRFO
		if c.ntResidAcc >= 1 {
			c.ntResidAcc--
			ctl.enqueue(request{core: c.id, bytes: s.cfg.LineBytes, isRead: true})
			c.outstanding++
		}
	}
}

// insertL1 allocates into L1, cascading victims down the hierarchy.
func (s *System) insertL1(c *simCore, a LineAddr, dirty bool) {
	victim, evicted, vdirty := c.l1.Insert(a, dirty)
	if !evicted {
		return
	}
	if !vdirty {
		return
	}
	v2, e2, d2 := c.l2.Insert(victim, true)
	if !e2 || !d2 {
		return
	}
	v3, e3, d3 := s.l3[c.domain].Insert(v2, true)
	if e3 && d3 {
		s.ctrl[c.domain].enqueue(request{core: c.id, bytes: s.cfg.LineBytes, isRead: false})
		_ = v3
	}
}

// reset clears all state for a fresh run.
func (s *System) reset() {
	for i := range s.cores {
		c := s.cores[i]
		c.l1 = NewCache(s.cfg.L1)
		c.l2 = NewCache(s.cfg.L2)
		c.detector = streamDetector{TrainLen: s.cfg.DetectorTrainLen}
		c.outstanding = 0
		c.issueAcc = 0
		c.cursor = 0
		c.done = true
		c.nt = false
		c.ntResidAcc = 0
		c.storedBytes = 0
		c.loadedBytes = 0
	}
	for d := range s.l3 {
		s.l3[d] = NewCache(s.cfg.L3)
		s.ctrl[d] = &controller{
			bytesPerTick: s.cfg.DomainGBs * TickSeconds * 1e9,
			i2m:          specI2MState{Threshold: s.cfg.SpecI2MThreshold, MaxShare: s.cfg.SpecI2MMaxShare, RampEnd: s.cfg.SpecI2MRampEnd},
		}
	}
	s.ticks = 0
}

// Utilization returns each domain controller's utilization EMA (tests).
func (s *System) Utilization() []float64 {
	out := make([]float64, len(s.ctrl))
	for i, c := range s.ctrl {
		out[i] = c.util
	}
	return out
}
