package core

import (
	"bytes"
	"reflect"
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

const encodeTestLoop = `
.L0:
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jb .L0
`

func analyzeTriad(t *testing.T) (*Result, *isa.Block, *uarch.Model) {
	t.Helper()
	m, err := uarch.Get("goldencove")
	if err != nil {
		t.Fatalf("uarch.Get: %v", err)
	}
	b, err := isa.ParseBlock("triad", m.Key, m.Dialect, encodeTestLoop)
	if err != nil {
		t.Fatalf("ParseBlock: %v", err)
	}
	r, err := New().Analyze(b, m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return r, b, m
}

func TestStableRoundTrip(t *testing.T) {
	r, b, m := analyzeTriad(t)
	data, err := r.MarshalStable()
	if err != nil {
		t.Fatalf("MarshalStable: %v", err)
	}
	got, err := UnmarshalStable(data, b, m)
	if err != nil {
		t.Fatalf("UnmarshalStable: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, r)
	}
	// The rendered report — what experiments and the HTTP API emit — must
	// be byte-identical, or warm runs would not reproduce cold output.
	if got.Report() != r.Report() {
		t.Errorf("round-tripped report differs:\n%s\nvs\n%s", got.Report(), r.Report())
	}
}

func TestMarshalStableDeterministic(t *testing.T) {
	r, _, _ := analyzeTriad(t)
	a, err := r.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("encoding not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestUnmarshalStableRejectsGarbage(t *testing.T) {
	_, b, m := analyzeTriad(t)
	if _, err := UnmarshalStable([]byte("{truncated"), b, m); err == nil {
		t.Fatal("UnmarshalStable accepted corrupt input")
	}
}
