package core

import (
	"testing"

	"incore/internal/depgraph"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

// TestAnalyzeCompiledMatchesAnalyze pins the compiled path's equivalence
// contract suite-wide: analyses assembled from a prebuilt skeleton and
// descriptor table render the same report bytes as the direct path, both
// through the escaping entry (AnalyzeCompiled) and the arena entry
// (AnalyzeArena) — including one arena reused across blocks and models,
// which is exactly how the pipeline's internal path drives it.
func TestAnalyzeCompiledMatchesAnalyze(t *testing.T) {
	an := New()
	ar := &ResultArena{}
	for _, arch := range []string{"goldencove", "zen4", "neoversev2"} {
		m := uarch.MustGet(arch)
		for ki := range kernels.Kernels {
			k := &kernels.Kernels[ki]
			b, err := kernels.Generate(k, kernels.Config{
				Arch: arch, Compiler: kernels.CompilersFor(arch)[0], Opt: kernels.Ofast,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := an.Analyze(b, m)
			if err != nil {
				t.Fatal(err)
			}
			sk, err := depgraph.NewSkeleton(b, an.Opt)
			if err != nil {
				t.Fatal(err)
			}
			descs, err := sk.ResolveDescs(m, an.Opt.DegradeUnknown)
			if err != nil {
				t.Fatal(err)
			}

			got, err := an.AnalyzeCompiled(b, m, sk, descs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Report() != want.Report() {
				t.Errorf("%s/%s: AnalyzeCompiled report diverges from Analyze", arch, k.Name)
			}

			// nil descs resolve inside the call.
			gotNil, err := an.AnalyzeCompiled(b, m, sk, nil)
			if err != nil {
				t.Fatal(err)
			}
			if gotNil.Report() != want.Report() {
				t.Errorf("%s/%s: AnalyzeCompiled(nil descs) diverges", arch, k.Name)
			}

			arRes, err := an.AnalyzeArena(b, m, sk, descs, ar)
			if err != nil {
				t.Fatal(err)
			}
			// The arena result must be consumed before the arena's next
			// use; Report() renders it to an independent string here.
			if arRes.Report() != want.Report() {
				t.Errorf("%s/%s: AnalyzeArena report diverges from Analyze", arch, k.Name)
			}
		}
	}
}

// TestArenaResultInvalidatedByReuse documents (positively) the arena
// contract: the next analysis overwrites the previous arena Result in
// place — same pointer, new content.
func TestArenaResultInvalidatedByReuse(t *testing.T) {
	an := New()
	m := uarch.MustGet("zen4")
	mk := func(name string) (*depgraph.Skeleton, []uarch.Desc, *Result) {
		k, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := kernels.Generate(k, kernels.Config{Arch: "zen4", Compiler: kernels.CompilersFor("zen4")[0], Opt: kernels.O3})
		if err != nil {
			t.Fatal(err)
		}
		sk, err := depgraph.NewSkeleton(b, an.Opt)
		if err != nil {
			t.Fatal(err)
		}
		descs, err := sk.ResolveDescs(m, an.Opt.DegradeUnknown)
		if err != nil {
			t.Fatal(err)
		}
		want, err := an.Analyze(b, m)
		if err != nil {
			t.Fatal(err)
		}
		return sk, descs, want
	}
	sk1, d1, want1 := mk("striad")
	sk2, d2, want2 := mk("sum")

	ar := &ResultArena{}
	r1, err := an.AnalyzeArena(sk1.Block(), m, sk1, d1, ar)
	if err != nil {
		t.Fatal(err)
	}
	p1 := r1.Prediction
	r2, err := an.AnalyzeArena(sk2.Block(), m, sk2, d2, ar)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("arena must return its own Result struct every call")
	}
	if r2.Prediction != want2.Prediction {
		t.Errorf("second analysis prediction %f; want %f", r2.Prediction, want2.Prediction)
	}
	if p1 != want1.Prediction {
		t.Errorf("first analysis prediction %f; want %f", p1, want1.Prediction)
	}
}
