package core

import (
	"fmt"
	"strings"
)

// Report renders an OSACA-style text report of the analysis: one line per
// instruction with µ-op count, latency and per-port pressure, followed by
// the combined bounds and the binding constraint.
func (r *Result) Report() string {
	var sb strings.Builder
	m := r.Model
	fmt.Fprintf(&sb, "In-core analysis: %s on %s (%s)\n", r.Block.Name, m.Name, m.CPU)
	onCP := map[int]bool{}
	for _, i := range r.CPPath {
		onCP[i] = true
	}
	onLCD := map[int]bool{}
	for _, i := range r.LCD.Path {
		onLCD[i] = true
	}
	fmt.Fprintf(&sb, "%-4s %-2s %-2s %-38s %5s %4s %5s", "idx", "CP", "LC", "instruction", "uops", "lat", "tp")
	for _, p := range m.Ports {
		fmt.Fprintf(&sb, " %5s", p)
	}
	sb.WriteByte('\n')
	for _, ir := range r.Instrs {
		text := ir.Text
		if len(text) > 38 {
			text = text[:35] + "..."
		}
		cp, lc := "", ""
		if onCP[ir.Index] {
			cp = "X"
		}
		if onLCD[ir.Index] {
			lc = "X"
		}
		fmt.Fprintf(&sb, "%-4d %-2s %-2s %-38s %5d %4d %5.2f", ir.Index, cp, lc, text, ir.Uops, ir.TotalLat, ir.Throughput)
		for p := range m.Ports {
			v := 0.0
			if p < len(ir.PortLoads) {
				v = ir.PortLoads[p]
			}
			if v < 0.005 {
				fmt.Fprintf(&sb, " %5s", "")
			} else {
				fmt.Fprintf(&sb, " %5.2f", v)
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-60s", "port pressure (cycles/iteration):")
	for p := range m.Ports {
		fmt.Fprintf(&sb, " %5.2f", r.PortPressure[p])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "throughput bound : %7.2f cy/it (optimal balancing; greedy would give %.2f)\n", r.TPBound, r.GreedyTPBound)
	fmt.Fprintf(&sb, "issue bound      : %7.2f cy/it (%d µ-ops / issue width %d)\n", r.IssueBound, r.TotalUops, m.IssueWidth)
	fmt.Fprintf(&sb, "critical path    : %7.2f cy\n", r.CriticalPath)
	fmt.Fprintf(&sb, "loop-carried dep : %7.2f cy/it", r.LCD.Cycles)
	if len(r.LCD.Path) > 0 {
		fmt.Fprintf(&sb, " (via instrs %v)", r.LCD.Path)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "prediction       : %7.2f cy/it  [%s bound]\n", r.Prediction, r.Bound)
	// The coverage footer appears only on degraded analyses, so fully
	// covered reports (the entire generated suite) stay byte-identical.
	if !r.Coverage.Full() {
		c := r.Coverage
		fmt.Fprintf(&sb, "coverage         : %7.1f%% of %d instrs (%d exact, %d fallback, %d unknown)\n",
			100*c.Fraction(), c.Total(), c.Exact, c.Fallback, c.Unknown)
		fmt.Fprintf(&sb, "unknown          : %s  [conservative default descriptors; bounds are degraded]\n",
			strings.Join(c.UnknownMnemonics, ", "))
	}
	return sb.String()
}
