package core_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/uarch"
)

// Hang-freedom: hostile shapes the serve tier may receive must complete
// within a bounded wall-clock budget (generous enough for -race and slow
// CI machines) — the point is "terminates promptly", not a perf SLO.
func analyzeWithin(t *testing.T, d time.Duration, b *isa.Block, m *uarch.Model) *core.Result {
	t.Helper()
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := core.New().Analyze(b, m)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("analyze: %v", o.err)
		}
		return o.res
	case <-time.After(d):
		t.Fatalf("analysis of %d instrs did not finish within %s", b.Len(), d)
		return nil
	}
}

// A 10⁵-instruction streaming block (realistic shape: O(1) loop-carried
// edges) must analyze within the budget.
func TestHugeStreamingBlockTerminates(t *testing.T) {
	const n = 100_000
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	for i := 0; i < n-3; i++ {
		fmt.Fprintf(&sb, "\tvaddpd %%ymm1, %%ymm2, %%ymm%d\n", 3+i%13)
	}
	sb.WriteString("\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjne .L0\n")
	m := uarch.MustGet("goldencove")
	b, err := isa.ParseBlock("huge", m.Key, m.Dialect, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != n {
		t.Fatalf("built %d instrs, want %d", b.Len(), n)
	}
	r := analyzeWithin(t, 2*time.Minute, b, m)
	if r.Coverage.Total() != n {
		t.Fatalf("coverage accounts %d of %d", r.Coverage.Total(), n)
	}
}

// Degenerate operands: a long fully serial divide chain (every instr
// reads and writes the same register) maximizes dependency-path work.
func TestDegenerateSerialChainTerminates(t *testing.T) {
	const n = 5_000
	src := ".L0:\n" + strings.Repeat("\tvdivsd %xmm0, %xmm0, %xmm0\n", n) + "\tjne .L0\n"
	m := uarch.MustGet("goldencove")
	b, err := isa.ParseBlock("serial", m.Key, m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeWithin(t, 2*time.Minute, b, m)
	if r.LCD.Cycles <= 0 {
		t.Fatalf("serial chain found no loop-carried dependency")
	}
}

// The same register touched through memory with degenerate addressing:
// every instruction loads and stores the same address region, stressing
// the memory-carried dependency window.
func TestDegenerateMemoryAliasingTerminates(t *testing.T) {
	// Loop-carried search is superlinear in aliasing memory edges, so
	// this count is deliberately modest; it is exactly the shape the
	// serve tier's instruction cap and analysis deadline exist for.
	const n = 600
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	for i := 0; i < n; i++ {
		sb.WriteString("\tvmovsd (%rsi), %xmm0\n\tvmovsd %xmm0, (%rsi)\n")
	}
	sb.WriteString("\tjne .L0\n")
	m := uarch.MustGet("zen4")
	b, err := isa.ParseBlock("alias", m.Key, m.Dialect, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	analyzeWithin(t, 2*time.Minute, b, m)
}

// Empty and comment-only input must be rejected cleanly (no instructions
// to analyze), never hang or panic.
func TestEmptyAndCommentOnlyInput(t *testing.T) {
	m := uarch.MustGet("goldencove")
	for _, src := range []string{"", "\n\n\n", "# just a comment\n# another\n", ".text\n.globl f\n"} {
		b, err := isa.ParseBlock("empty", m.Key, m.Dialect, src)
		if err == nil {
			// Parser may hand back an instruction-free block; Analyze
			// must reject it with a validation error, not crash.
			if _, aerr := core.New().Analyze(b, m); aerr == nil {
				t.Fatalf("analysis of %q succeeded with nothing to analyze", src)
			}
		}
	}
}

// A block that is pure unknowns must still produce a well-formed, fully
// degraded analysis on every model.
func TestAllUnknownBlockAnalyzes(t *testing.T) {
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		m := uarch.MustGet(key)
		src := "\tmadeup1 %xmm0, %xmm1\n\tmadeup2 %xmm1, %xmm2\n"
		if m.Dialect == isa.DialectAArch64 {
			src = "\tmadeup1 d0, d1\n\tmadeup2 d1, d2\n"
		}
		b, err := isa.ParseBlock("unknowns", m.Key, m.Dialect, src)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.New().Analyze(b, m)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if r.Coverage.Unknown != 2 || r.Coverage.Full() {
			t.Fatalf("%s: coverage = %+v, want 2 unknown", key, r.Coverage)
		}
		if r.Coverage.Fraction() != 0 {
			t.Fatalf("%s: fraction = %v, want 0", key, r.Coverage.Fraction())
		}
		rep := r.Report()
		if !strings.Contains(rep, "coverage         :") || !strings.Contains(rep, "madeup1, madeup2") {
			t.Fatalf("%s: report missing degradation footer:\n%s", key, rep)
		}
	}
}

// Fully covered analyses must not mention coverage at all — that is the
// byte-identity guarantee for the generated suite.
func TestFullCoverageReportHasNoFooter(t *testing.T) {
	m := uarch.MustGet("goldencove")
	b, err := isa.ParseBlock("clean", m.Key, m.Dialect, "\tvaddpd %ymm1, %ymm2, %ymm3\n\taddq $8, %rax\n")
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New().Analyze(b, m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Coverage.Full() {
		t.Fatalf("expected full coverage, got %+v", r.Coverage)
	}
	if rep := r.Report(); strings.Contains(rep, "coverage") || strings.Contains(rep, "unknown") {
		t.Fatalf("full-coverage report leaks degradation lines:\n%s", rep)
	}
}

// Strict mode (DegradeUnknown off) must preserve the historical
// error-on-unknown contract.
func TestStrictModeStillRejects(t *testing.T) {
	m := uarch.MustGet("goldencove")
	b, err := isa.ParseBlock("strict", m.Key, m.Dialect, "\tvpmaddubsw %ymm1, %ymm2, %ymm3\n")
	if err != nil {
		t.Fatal(err)
	}
	an := core.New()
	an.Opt.DegradeUnknown = false
	if _, err := an.Analyze(b, m); err == nil {
		t.Fatalf("strict analysis accepted an unknown mnemonic")
	}
}
