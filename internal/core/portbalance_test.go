package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"incore/internal/uarch"
)

func TestOptimalPortBoundSimple(t *testing.T) {
	// Two jobs on the same single port: bound = sum.
	jobs := []balanceJob{
		{Mask: 0b1, Cycles: 1},
		{Mask: 0b1, Cycles: 2},
	}
	if got := OptimalPortBound(jobs, 2); got != 3 {
		t.Errorf("single-port bound = %f, want 3", got)
	}
	// Two jobs, two ports each: perfectly splittable.
	jobs = []balanceJob{
		{Mask: 0b11, Cycles: 1},
		{Mask: 0b11, Cycles: 1},
	}
	if got := OptimalPortBound(jobs, 2); got != 1 {
		t.Errorf("two-port bound = %f, want 1", got)
	}
}

func TestOptimalPortBoundRestrictedSubset(t *testing.T) {
	// Job A can only use port 0 (2 cycles); job B can use ports 0-1
	// (2 cycles). Optimum: A on 0, B on 1 -> max load 2.
	jobs := []balanceJob{
		{Mask: 0b01, Cycles: 2},
		{Mask: 0b11, Cycles: 2},
	}
	if got := OptimalPortBound(jobs, 2); got != 2 {
		t.Errorf("restricted bound = %f, want 2", got)
	}
	// Add another port-0-only job: demand{0} = 4 -> bound 4? No:
	// B moves entirely to port 1: loads 4 and 2 -> max 4.
	jobs = append(jobs, balanceJob{Mask: 0b01, Cycles: 2})
	if got := OptimalPortBound(jobs, 2); got != 4 {
		t.Errorf("restricted bound = %f, want 4", got)
	}
}

func TestOptimalPortBoundHalfSplit(t *testing.T) {
	// Three 1-cycle jobs over 2 ports: 1.5.
	jobs := []balanceJob{
		{Mask: 0b11, Cycles: 1}, {Mask: 0b11, Cycles: 1}, {Mask: 0b11, Cycles: 1},
	}
	if got := OptimalPortBound(jobs, 2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("bound = %f, want 1.5", got)
	}
}

func TestOptimalPortBoundEmpty(t *testing.T) {
	if OptimalPortBound(nil, 2) != 0 {
		t.Error("empty job set must have zero bound")
	}
	if OptimalPortBound([]balanceJob{{Mask: 0, Cycles: 5}}, 2) != 0 {
		t.Error("jobs with empty masks are ignored")
	}
}

// bruteForceBound computes the optimum by discretizing each job into small
// chips assigned greedily over all permutations — for tiny instances it
// converges to the LP optimum via the subset formula independently
// recomputed here with explicit subsets of ports.
func bruteForceBound(jobs []balanceJob, nPorts int) float64 {
	best := 0.0
	for s := 1; s < 1<<uint(nPorts); s++ {
		var demand float64
		for _, j := range jobs {
			if int(j.Mask)&^s == 0 {
				demand += j.Cycles
			}
		}
		cnt := 0
		for i := 0; i < nPorts; i++ {
			if s&(1<<uint(i)) != 0 {
				cnt++
			}
		}
		if v := demand / float64(cnt); v > best {
			best = v
		}
	}
	return best
}

// TestOptimalPortBoundAgainstSubsetFormula property-tests the union-of-
// masks optimization against the exhaustive subset enumeration.
func TestOptimalPortBoundAgainstSubsetFormula(t *testing.T) {
	const nPorts = 5
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		nJobs := 1 + rng.Intn(8)
		jobs := make([]balanceJob, nJobs)
		for i := range jobs {
			mask := uarch.PortMask(1 + rng.Intn((1<<nPorts)-1))
			jobs[i] = balanceJob{Mask: mask, Cycles: float64(1+rng.Intn(8)) / 2}
		}
		got := OptimalPortBound(jobs, nPorts)
		want := bruteForceBound(jobs, nPorts)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: got %f, want %f (jobs %+v)", trial, got, want, jobs)
		}
	}
}

// TestHeuristicNeverBeatsOptimal: the heuristic's max load must be >= the
// exact bound (it is a feasible assignment).
func TestHeuristicNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nJobs := 1 + rng.Intn(10)
		jobs := make([]balanceJob, nJobs)
		for i := range jobs {
			jobs[i] = balanceJob{
				Mask:   uarch.PortMask(1 + rng.Intn(255)),
				Cycles: float64(1+rng.Intn(6)) / 2,
			}
		}
		opt := OptimalPortBound(jobs, 8)
		loads := HeuristicAssignment(jobs, 8)
		maxLoad := 0.0
		sumLoad := 0.0
		for _, l := range loads {
			maxLoad = math.Max(maxLoad, l)
			sumLoad += l
		}
		if maxLoad < opt-1e-6 {
			t.Fatalf("heuristic (%f) beats optimal (%f)?!", maxLoad, opt)
		}
		// Work conservation: total load equals total cycles.
		var total float64
		for _, j := range jobs {
			total += j.Cycles
		}
		if math.Abs(sumLoad-total) > 1e-6 {
			t.Fatalf("heuristic lost work: %f vs %f", sumLoad, total)
		}
	}
}

// TestGreedyNeverBeatsOptimal: greedy is also feasible.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		jobs := make([]balanceJob, 0, len(seeds))
		for _, s := range seeds {
			mask := uarch.PortMask(1 + s%7)
			jobs = append(jobs, balanceJob{Mask: mask, Cycles: 1 + float64(s%4)})
		}
		return GreedyPortBound(jobs, 3) >= OptimalPortBound(jobs, 3)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedyWorseOnAsymmetricMasks(t *testing.T) {
	// The ablation scenario (DESIGN.md #1): restricted job arrives after
	// greedy already used its only port.
	jobs := []balanceJob{
		{Mask: 0b11, Cycles: 1}, // greedy puts this on port 0
		{Mask: 0b01, Cycles: 1}, // now must stack on port 0
	}
	greedy := GreedyPortBound(jobs, 2)
	opt := OptimalPortBound(jobs, 2)
	if !(greedy > opt) {
		t.Errorf("expected greedy (%f) > optimal (%f) for asymmetric masks", greedy, opt)
	}
}
