package core

import (
	"sync"

	"incore/internal/depgraph"
	"incore/internal/uarch"
)

// Scratch holds every reusable buffer one analysis needs — the dependency
// graph arenas plus the port-balancer's flat job/share/load arrays — so a
// steady stream of analyses does O(1) heap work after warmup: only the
// returned Result (which escapes into caches and reports) is freshly
// allocated.
//
// The zero value is ready to use. A Scratch serves one goroutine at a
// time; Analyzer.Analyze draws from an internal sync.Pool, which is what
// makes concurrent callers (pipeline jobs, /v1/analyze and /v1/batch
// requests) share scratch safely. Results never alias scratch memory, so
// recycling a Scratch cannot corrupt previously returned analyses.
type Scratch struct {
	dg depgraph.Scratch

	// jobs is the block's full µ-op job list; jobSpan[i]..jobSpan[i+1]
	// is instruction i's slice of it, replacing the per-instruction
	// re-balancing job slices of the pre-arena implementation.
	jobs    []balanceJob
	jobSpan []int32

	// Flat balancer state: ports holds every job's candidate port
	// indices back to back (portSpan[j]..portSpan[j+1] is job j's span),
	// shares the per-candidate cycle split aligned with ports.
	ports    []int32
	portSpan []int32
	shares   []float64
	loads    []float64

	// Distinct-mask aggregation for OptimalPortBound (the former work
	// map), plus an epoch-stamped direct-index table for union dedup
	// (the former seen map): seen[u] == epoch marks union u visited in
	// the current call, so reuse never requires zeroing the table.
	masks []uarch.PortMask
	works []float64
	seen  []uint32
	epoch uint32
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// grow returns s resized to length n, preserving existing contents (and
// backing capacity) wherever possible; callers reinitialize the prefix
// they use. Same contract as depgraph's growOuter, so arena code ports
// between the packages without changing reuse semantics.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]T, n-cap(s))...)
}
