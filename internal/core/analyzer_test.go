package core

import (
	"strings"
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

func analyze(t *testing.T, arch, src string) *Result {
	t.Helper()
	m := uarch.MustGet(arch)
	b, err := isa.ParseBlock("t", arch, m.Dialect, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := New().Analyze(b, m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func TestThroughputBoundVectorAdd(t *testing.T) {
	// Two independent 512-bit adds per iteration on GLC: ports 0/5 ->
	// 1 cycle bound.
	res := analyze(t, "goldencove", `
	vaddpd %zmm1, %zmm2, %zmm3
	vaddpd %zmm4, %zmm5, %zmm6
	decq %rcx
	jne .L0
`)
	if res.TPBound != 1.0 {
		t.Errorf("TP bound = %f, want 1.0", res.TPBound)
	}
}

func TestIssueBound(t *testing.T) {
	// 8 single-µ-op instructions on GLC (issue width 6) -> 8/6.
	res := analyze(t, "goldencove", `
	movq %rax, %rbx
	movq %rbx, %rcx
	movq %rcx, %rdx
	movq %rdx, %rsi
	movq %rsi, %rdi
	movq %rdi, %r8
	movq %r8, %r9
	movq %r9, %r10
`)
	want := 8.0 / 6.0
	if res.IssueBound < want-1e-9 || res.IssueBound > want+1e-9 {
		t.Errorf("issue bound = %f, want %f", res.IssueBound, want)
	}
}

func TestLCDBoundDominates(t *testing.T) {
	// Serial divide chain: LCD must dominate the prediction.
	res := analyze(t, "zen4", `
	vdivsd %xmm1, %xmm0, %xmm0
	decq %rcx
	jne .L0
`)
	if res.Bound != "lcd" {
		t.Errorf("bound = %q, want lcd", res.Bound)
	}
	if res.Prediction != 13 {
		t.Errorf("prediction = %f, want 13 (divsd latency)", res.Prediction)
	}
}

func TestPredictionIsMaxOfBounds(t *testing.T) {
	res := analyze(t, "neoversev2", `
	fadd v0.2d, v1.2d, v2.2d
	subs x4, x4, #1
	b.ne .L0
`)
	for _, b := range []float64{res.TPBound, res.IssueBound, res.LCD.Cycles} {
		if res.Prediction < b-1e-9 {
			t.Errorf("prediction %f below bound %f", res.Prediction, b)
		}
	}
}

func TestGreedyBoundAtLeastOptimal(t *testing.T) {
	res := analyze(t, "goldencove", `
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`)
	if res.GreedyTPBound < res.TPBound-1e-9 {
		t.Errorf("greedy bound %f below optimal %f", res.GreedyTPBound, res.TPBound)
	}
}

func TestReportRendering(t *testing.T) {
	res := analyze(t, "goldencove", `
	vaddpd %zmm1, %zmm2, %zmm3
	decq %rcx
	jne .L0
`)
	rep := res.Report()
	for _, want := range []string{"Golden Cove", "throughput bound", "issue bound",
		"loop-carried dep", "prediction", "vaddpd"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCyclesPerElement(t *testing.T) {
	v, err := CyclesPerElement(8, 4)
	if err != nil || v != 2 {
		t.Errorf("CyclesPerElement = %f, %v", v, err)
	}
	if _, err := CyclesPerElement(8, 0); err == nil {
		t.Error("zero elements must error")
	}
}

func TestAnalyzeInvalidBlock(t *testing.T) {
	m := uarch.MustGet("zen4")
	if _, err := New().Analyze(&isa.Block{Name: "empty"}, m); err == nil {
		t.Error("empty block must fail")
	}
}

func TestPredictConvenience(t *testing.T) {
	m := uarch.MustGet("goldencove")
	b, err := isa.ParseBlock("t", "goldencove", m.Dialect, "\tvaddpd %zmm1, %zmm2, %zmm3\n\tjne .L0\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New().Predict(b, m)
	if err != nil || p <= 0 {
		t.Errorf("Predict = %f, %v", p, err)
	}
}

func TestPortPressureSumsToWork(t *testing.T) {
	res := analyze(t, "zen4", `
	vaddpd %ymm1, %ymm2, %ymm3
	vmulpd %ymm1, %ymm2, %ymm4
	decq %rcx
	jne .L0
`)
	var sum float64
	for _, v := range res.PortPressure {
		sum += v
	}
	if sum < 3.9 || sum > 4.1 { // 4 µ-ops x 1 cycle
		t.Errorf("total port pressure = %f, want ~4", sum)
	}
}
