package core

import (
	"sort"

	"incore/internal/uarch"
)

// Coverage summarizes how a block's instructions resolved against the
// machine model's tables — the analyzer's honesty report for input from
// outside the curated suite. Exact instructions hit a table entry under
// their precise operand signature; Fallback instructions resolved through
// the folded signature/width chain (the mnemonic is modeled, the exact
// operand shape is not); Unknown instructions are outside the table and
// received the model's synthesized conservative descriptor.
//
// An analysis with Unknown > 0 is a *degraded* analysis: its bounds are
// still well-defined, but rest on the unknown-instruction policy rather
// than measured tables. The text report surfaces the coverage footer only
// in that case, so fully covered analyses (the whole generated suite)
// render byte-identically to earlier versions.
type Coverage struct {
	Exact    int `json:"exact"`
	Fallback int `json:"fallback"`
	Unknown  int `json:"unknown"`
	// UnknownMnemonics lists the distinct unmodeled mnemonics, sorted.
	UnknownMnemonics []string `json:"unknown_mnemonics,omitempty"`
}

// Total returns the number of instructions accounted.
func (c Coverage) Total() int { return c.Exact + c.Fallback + c.Unknown }

// Fraction returns the covered share (exact + fallback) in [0, 1];
// a zero-instruction coverage counts as fully covered.
func (c Coverage) Fraction() float64 {
	t := c.Total()
	if t == 0 {
		return 1
	}
	return float64(c.Exact+c.Fallback) / float64(t)
}

// Full reports whether every instruction resolved against the table.
func (c Coverage) Full() bool { return c.Unknown == 0 }

// add accounts one resolved instruction.
func (c *Coverage) add(mnemonic string, k uarch.MatchKind) {
	switch k {
	case uarch.MatchExact:
		c.Exact++
	case uarch.MatchFallback:
		c.Fallback++
	case uarch.MatchUnknown:
		c.Unknown++
		c.AddUnknownMnemonic(mnemonic)
	}
}

// AddUnknownMnemonic records a distinct unmodeled mnemonic without
// touching the counts; aggregators (internal/corpus) use it to merge
// coverage across blocks. The list stays sorted and deduplicated.
func (c *Coverage) AddUnknownMnemonic(mnemonic string) {
	for _, m := range c.UnknownMnemonics {
		if m == mnemonic {
			return
		}
	}
	c.UnknownMnemonics = append(c.UnknownMnemonics, mnemonic)
	sort.Strings(c.UnknownMnemonics)
}
