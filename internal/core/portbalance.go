package core

import (
	"math"
	"math/bits"

	"incore/internal/uarch"
)

// balanceJob is one µ-op's worth of port work: Cycles of occupancy that may
// be split arbitrarily across the ports in Mask.
type balanceJob struct {
	Mask   uarch.PortMask
	Cycles float64
}

// OptimalPortBound computes the exact minimum achievable maximum port load
// (in cycles) for a set of splittable µ-ops with port restrictions over a
// machine with nPorts ports.
//
// For splittable jobs under restricted assignment the optimum equals
//
//	max over port sets S of  demand(S) / |S|
//
// where demand(S) is the total work of jobs whose candidate set is
// contained in S, and the maximizing S can be chosen as a union of job
// candidate sets. The number of distinct candidate sets in a real machine
// model is small, so enumerating all unions is cheap and exact.
func OptimalPortBound(jobs []balanceJob, nPorts int) float64 {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return s.optimalBound(jobs, nPorts)
}

// optimalBound is OptimalPortBound on this scratch's arenas.
func (s *Scratch) optimalBound(jobs []balanceJob, nPorts int) float64 {
	// Aggregate work per distinct mask, in job order. Real models carry
	// ~10 distinct masks, so a linear scan beats hashing.
	s.masks, s.works = s.masks[:0], s.works[:0]
	var union uarch.PortMask
	for _, j := range jobs {
		if j.Mask == 0 || j.Cycles <= 0 {
			continue
		}
		union |= j.Mask
		found := false
		for i, m := range s.masks {
			if m == j.Mask {
				s.works[i] += j.Cycles
				found = true
				break
			}
		}
		if !found {
			s.masks = append(s.masks, j.Mask)
			s.works = append(s.works, j.Cycles)
		}
	}
	if len(s.masks) == 0 {
		return 0
	}
	best := 0.0
	n := len(s.masks)
	if n > 20 {
		// Defensive fallback: proportional heuristic (not expected with
		// realistic models, which have ~10 distinct masks).
		for _, l := range s.heuristicInto(jobs, nPorts) {
			best = math.Max(best, l)
		}
		return best
	}
	// Dedup visited unions with an epoch-stamped direct-index table when
	// the union fits one (any real model: ≤ 12 ports). Without the
	// table, duplicate unions are merely recomputed — same maximum.
	useSeen := union < 1<<16
	if useSeen {
		if need := int(union) + 1; len(s.seen) < need {
			s.seen = append(s.seen, make([]uint32, need-len(s.seen))...)
		}
		s.epoch++
		if s.epoch == 0 { // wrapped: stale stamps could collide, rewash
			clear(s.seen)
			s.epoch = 1
		}
	}
	for set := 1; set < 1<<uint(n); set++ {
		var u uarch.PortMask
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) != 0 {
				u |= s.masks[i]
			}
		}
		if useSeen {
			if s.seen[u] == s.epoch {
				continue
			}
			s.seen[u] = s.epoch
		}
		demand := 0.0
		for i, m := range s.masks {
			if m&^u == 0 {
				demand += s.works[i]
			}
		}
		if v := demand / float64(u.Count()); v > best {
			best = v
		}
	}
	return best
}

// HeuristicAssignment distributes µ-op cycles across ports with an
// iterative proportional water-filling heuristic and returns the per-port
// load vector. It is used for the per-port pressure *report*; the bound
// itself comes from OptimalPortBound. nPorts caps the port index range.
func HeuristicAssignment(jobs []balanceJob, nPorts int) []float64 {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	loads := s.heuristicInto(jobs, nPorts)
	out := make([]float64, len(loads))
	copy(out, loads)
	return out
}

// heuristicInto is HeuristicAssignment on this scratch's arenas; the
// returned slice is s.loads and valid until the scratch's next use.
//
// The splits live in one flat shares array (portSpan[j]..portSpan[j+1] is
// job j's span over ports) instead of a jagged per-job matrix, and the
// iteration stops early at a fixed point: when a full pass leaves every
// share bitwise unchanged, each remaining pass would start from the same
// shares and run the identical float sequence, so the final loads are
// bit-for-bit those of the fixed 64-pass reference.
func (s *Scratch) heuristicInto(jobs []balanceJob, nPorts int) []float64 {
	s.loads = grow(s.loads, nPorts)
	loads := s.loads
	s.ports, s.shares = s.ports[:0], s.shares[:0]
	s.portSpan = append(s.portSpan[:0], 0)
	for _, job := range jobs {
		for v := job.Mask; v != 0; v &= v - 1 {
			s.ports = append(s.ports, int32(bits.TrailingZeros32(uint32(v))))
		}
		s.portSpan = append(s.portSpan, int32(len(s.ports)))
	}
	for j, job := range jobs {
		np := int(s.portSpan[j+1] - s.portSpan[j])
		for k := 0; k < np; k++ {
			s.shares = append(s.shares, job.Cycles/float64(np))
		}
	}
	const iters = 64
	for it := 0; it < iters; it++ {
		for i := range loads {
			loads[i] = 0
		}
		for j := range jobs {
			for k := s.portSpan[j]; k < s.portSpan[j+1]; k++ {
				loads[s.ports[k]] += s.shares[k]
			}
		}
		// Rebalance each job toward less-loaded ports.
		changed := false
		for j := range jobs {
			lo, hi := s.portSpan[j], s.portSpan[j+1]
			if hi-lo <= 1 {
				continue
			}
			// Remove this job's contribution.
			for k := lo; k < hi; k++ {
				loads[s.ports[k]] -= s.shares[k]
			}
			// Redistribute: weight inversely with residual load. A mask
			// has at most 32 ports, so the weights fit a stack array.
			var weights [32]float64
			sum := 0.0
			for k := lo; k < hi; k++ {
				w := 1.0 / (loads[s.ports[k]] + 0.05)
				weights[k-lo] = w
				sum += w
			}
			for k := lo; k < hi; k++ {
				share := jobs[j].Cycles * weights[k-lo] / sum
				if share != s.shares[k] {
					changed = true
				}
				s.shares[k] = share
				loads[s.ports[k]] += share
			}
		}
		if !changed {
			break
		}
	}
	return loads
}

// GreedyPortBound assigns each µ-op entirely to the currently
// least-loaded candidate port in instruction order (no splitting, no
// lookahead) and returns the resulting maximum port load. This mirrors
// what a naive scheduler model (and the hardware's oldest-first pickers)
// achieves and is exposed for the ablation study of the port-balancing
// design choice (DESIGN.md #1).
func GreedyPortBound(jobs []balanceJob, nPorts int) float64 {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return s.greedyBound(jobs, nPorts)
}

// greedyBound is GreedyPortBound on this scratch's arenas.
func (s *Scratch) greedyBound(jobs []balanceJob, nPorts int) float64 {
	s.loads = grow(s.loads, nPorts)
	loads := s.loads
	for i := range loads {
		loads[i] = 0
	}
	for _, job := range jobs {
		bestPort, bestLoad := -1, math.Inf(1)
		for v := job.Mask; v != 0; v &= v - 1 {
			p := bits.TrailingZeros32(uint32(v))
			if loads[p] < bestLoad {
				bestPort, bestLoad = p, loads[p]
			}
		}
		if bestPort >= 0 {
			loads[bestPort] += job.Cycles
		}
	}
	max := 0.0
	for _, l := range loads {
		max = math.Max(max, l)
	}
	return max
}
