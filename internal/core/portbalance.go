package core

import (
	"math"

	"incore/internal/uarch"
)

// balanceJob is one µ-op's worth of port work: Cycles of occupancy that may
// be split arbitrarily across the ports in Mask.
type balanceJob struct {
	Mask   uarch.PortMask
	Cycles float64
}

// OptimalPortBound computes the exact minimum achievable maximum port load
// (in cycles) for a set of splittable µ-ops with port restrictions.
//
// For splittable jobs under restricted assignment the optimum equals
//
//	max over port sets S of  demand(S) / |S|
//
// where demand(S) is the total work of jobs whose candidate set is
// contained in S, and the maximizing S can be chosen as a union of job
// candidate sets. The number of distinct candidate sets in a real machine
// model is small, so enumerating all unions is cheap and exact.
func OptimalPortBound(jobs []balanceJob) float64 {
	// Collect distinct masks and aggregate their work.
	work := map[uarch.PortMask]float64{}
	for _, j := range jobs {
		if j.Mask == 0 || j.Cycles <= 0 {
			continue
		}
		work[j.Mask] += j.Cycles
	}
	if len(work) == 0 {
		return 0
	}
	masks := make([]uarch.PortMask, 0, len(work))
	for m := range work {
		masks = append(masks, m)
	}
	// Enumerate unions of subsets of distinct masks.
	seen := map[uarch.PortMask]bool{}
	best := 0.0
	n := len(masks)
	if n > 20 {
		// Defensive fallback: proportional heuristic (not expected with
		// realistic models, which have ~10 distinct masks).
		loads := HeuristicAssignment(jobs, 32)
		for _, l := range loads {
			best = math.Max(best, l)
		}
		return best
	}
	for bits := 1; bits < 1<<uint(n); bits++ {
		var s uarch.PortMask
		for i := 0; i < n; i++ {
			if bits&(1<<uint(i)) != 0 {
				s |= masks[i]
			}
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		demand := 0.0
		for m, c := range work {
			if m&^s == 0 {
				demand += c
			}
		}
		if v := demand / float64(s.Count()); v > best {
			best = v
		}
	}
	return best
}

// HeuristicAssignment distributes µ-op cycles across ports with an
// iterative proportional water-filling heuristic and returns the per-port
// load vector. It is used for the per-port pressure *report*; the bound
// itself comes from OptimalPortBound. nPorts caps the port index range.
func HeuristicAssignment(jobs []balanceJob, nPorts int) []float64 {
	loads := make([]float64, nPorts)
	// shares[j][p]: current split of job j.
	shares := make([][]float64, len(jobs))
	for j, job := range jobs {
		ports := job.Mask.Indices()
		shares[j] = make([]float64, len(ports))
		for k := range ports {
			shares[j][k] = job.Cycles / float64(len(ports))
		}
	}
	const iters = 64
	for it := 0; it < iters; it++ {
		for i := range loads {
			loads[i] = 0
		}
		for j, job := range jobs {
			for k, p := range job.Mask.Indices() {
				loads[p] += shares[j][k]
			}
		}
		// Rebalance each job toward less-loaded ports.
		for j, job := range jobs {
			ports := job.Mask.Indices()
			if len(ports) <= 1 {
				continue
			}
			// Remove this job's contribution.
			for k, p := range ports {
				loads[p] -= shares[j][k]
			}
			// Redistribute: weight inversely with residual load.
			weights := make([]float64, len(ports))
			sum := 0.0
			for k, p := range ports {
				w := 1.0 / (loads[p] + 0.05)
				weights[k] = w
				sum += w
			}
			for k, p := range ports {
				shares[j][k] = job.Cycles * weights[k] / sum
				loads[p] += shares[j][k]
			}
		}
	}
	return loads
}

// GreedyPortBound assigns each µ-op entirely to the currently
// least-loaded candidate port in instruction order (no splitting, no
// lookahead) and returns the resulting maximum port load. This mirrors
// what a naive scheduler model (and the hardware's oldest-first pickers)
// achieves and is exposed for the ablation study of the port-balancing
// design choice (DESIGN.md #1).
func GreedyPortBound(jobs []balanceJob, nPorts int) float64 {
	loads := make([]float64, nPorts)
	for _, job := range jobs {
		bestPort, bestLoad := -1, math.Inf(1)
		for _, p := range job.Mask.Indices() {
			if loads[p] < bestLoad {
				bestPort, bestLoad = p, loads[p]
			}
		}
		if bestPort >= 0 {
			loads[bestPort] += job.Cycles
		}
	}
	max := 0.0
	for _, l := range loads {
		max = math.Max(max, l)
	}
	return max
}
