package core_test

// Race coverage for the pooled analyzer scratch: many goroutines
// analyzing different blocks at once must each get exactly the result a
// serial run produces — pooled arenas may never leak one analysis's
// state into another. Run under -race by the CI test job.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

// hammerCases builds one block per (arch, kernel) pair.
func hammerCases(t testing.TB) ([]*isa.Block, []*uarch.Model) {
	t.Helper()
	var blocks []*isa.Block
	var models []*uarch.Model
	for _, arch := range []string{"goldencove", "neoversev2", "zen4"} {
		m := uarch.MustGet(arch)
		for i := range kernels.Kernels {
			k := &kernels.Kernels[i]
			b, err := kernels.Generate(k, kernels.Config{Arch: arch, Compiler: kernels.GCC, Opt: kernels.O3})
			if err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, b)
			models = append(models, m)
		}
	}
	return blocks, models
}

func TestConcurrentAnalyzeMatchesSerial(t *testing.T) {
	blocks, models := hammerCases(t)
	an := core.New()

	want := make([]*core.Result, len(blocks))
	for i := range blocks {
		r, err := an.Analyze(blocks[i], models[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Stagger start offsets so goroutines collide on
				// different blocks most of the time.
				for off := 0; off < len(blocks); off++ {
					i := (off + w*3) % len(blocks)
					got, err := an.Analyze(blocks[i], models[i])
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, want[i]) {
						errs <- fmt.Errorf("block %s/%s: concurrent result differs from serial",
							models[i].Key, blocks[i].Name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
