package core_test

import (
	"bytes"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/uarch"
)

// End-to-end fuzz targets for the whole analyzer front end: raw source →
// parse → Analyze (degraded mode) → report render → stable-encode round
// trip, per dialect across all three built-in models. The invariants:
//
//   - nothing panics on arbitrary input;
//   - any block the parser accepts analyzes without error (unknown
//     mnemonics degrade, they do not reject);
//   - the coverage triple accounts every instruction;
//   - a MarshalStable → UnmarshalStable round trip renders a
//     byte-identical report (the warm-store determinism contract).
//
// Blocks beyond fuzzMaxInstrs are skipped for throughput; hang-freedom
// on oversized blocks is pinned separately in analyzer_hostile_test.go.
const fuzzMaxInstrs = 512

func fuzzAnalyzeModels(t *testing.T, src string, d isa.Dialect, keys []string) {
	an := core.New()
	for _, key := range keys {
		m, err := uarch.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		b, err := isa.ParseMarkedBlock("fuzz", m.Key, d, src)
		if err != nil {
			continue // rejected input is fine; panics are not
		}
		if b.Len() == 0 || b.Len() > fuzzMaxInstrs {
			continue
		}
		r, err := an.Analyze(b, m)
		if err != nil {
			t.Fatalf("%s: degraded analysis rejected a parsed block: %v\n%s", key, err, src)
		}
		if got, want := r.Coverage.Total(), b.Len(); got != want {
			t.Fatalf("%s: coverage accounts %d of %d instructions", key, got, want)
		}
		if r.Prediction < 0 {
			t.Fatalf("%s: negative prediction %v", key, r.Prediction)
		}
		rep := r.Report()
		if rep == "" {
			t.Fatalf("%s: empty report", key)
		}
		data, err := r.MarshalStable()
		if err != nil {
			t.Fatalf("%s: encode: %v", key, err)
		}
		r2, err := core.UnmarshalStable(data, b, m)
		if err != nil {
			t.Fatalf("%s: decode: %v", key, err)
		}
		if rep2 := r2.Report(); rep2 != rep {
			t.Fatalf("%s: warm decode changed the report:\n--- cold ---\n%s\n--- warm ---\n%s", key, rep, rep2)
		}
		data2, err := r2.MarshalStable()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", key, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("%s: encode → decode → encode is not a fixed point", key)
		}
	}
}

func FuzzAnalyzeX86(f *testing.F) {
	seeds := []string{
		".L0:\n\tvmovupd (%rsi,%rax,8), %zmm0\n\tvfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0\n\tvmovupd %zmm0, (%rdi,%rax,8)\n\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjne .L0\n",
		"\tvaddsd (%rsi,%rax,8), %xmm0, %xmm0\n\tincq %rax\n",
		// Unknown mnemonics must degrade, not reject.
		"\tvpmaddubsw %ymm1, %ymm2, %ymm3\n\tvpmaddwd %ymm3, %ymm4, %ymm5\n",
		"\ttotallymadeup %xmm0, %xmm1\n",
		// Degenerate but parseable shapes.
		"\tvdivsd %xmm0, %xmm0, %xmm0\n\tvdivsd %xmm0, %xmm0, %xmm0\n",
		"# comment only\n",
		"# OSACA-BEGIN\n\taddq $1, %rax\n# OSACA-END\n\tgarbage outside region (((\n",
		"\tvgatherqpd (%rsi,%zmm1,8), %zmm0 {%k1}\n",
		"\tvmovntpd %zmm0, (%rdi)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fuzzAnalyzeModels(t, src, isa.DialectX86, []string{"goldencove", "zen4"})
	})
}

func FuzzAnalyzeAArch64(f *testing.F) {
	seeds := []string{
		".L0:\n\tldr q0, [x1]\n\tldr q1, [x2]\n\tfmla v0.2d, v1.2d, v15.2d\n\tstr q0, [x0]\n\tadd x1, x1, #16\n\tcmp x1, x4\n\tb.ne .L0\n",
		"\tld1d { z0.d }, p0/z, [x1, x3, lsl #3]\n\tfmla z0.d, p0/m, z1.d, z15.d\n",
		// Unknown mnemonics must degrade, not reject.
		"\tsha256h q0, q1, v2.4s\n",
		"\tmadeupop v0.2d, v1.2d\n",
		"\tfdiv d0, d0, d0\n\tfdiv d0, d0, d0\n",
		"// comment only\n",
		"\tldr d0, [x1, #8]!\n\tstr q0, [x0], #16\n",
		"\twhilelo p0.d, x3, x4\n\tb.first .L0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fuzzAnalyzeModels(t, src, isa.DialectAArch64, []string{"neoversev2"})
	})
}
