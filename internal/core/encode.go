package core

import (
	"encoding/json"
	"fmt"

	"incore/internal/depgraph"
	"incore/internal/isa"
	"incore/internal/uarch"
)

// ResultSchemaVersion identifies the stable wire encoding of Result.
// Persistence layers (internal/store via internal/pipeline) stamp stored
// entries with it; bump it whenever resultWire changes shape or meaning
// so stale cached analyses self-evict instead of decoding wrongly.
//
// v2 (deliberate bump): Result carries the Coverage report and
// InstrReport the per-instruction match kind. Stores written by v1
// builds self-evict on first read and are recomputed and overwritten —
// a one-time full cold pass, never a wrong decode.
const ResultSchemaVersion = 2

// resultWire mirrors Result minus the Block and Model pointers, which are
// identity, not content: the cache key already pins their content, and the
// decoder reattaches the caller's instances. Field names are part of the
// schema — renaming one is a ResultSchemaVersion bump.
type resultWire struct {
	PortPressure  []float64          `json:"port_pressure"`
	TPBound       float64            `json:"tp_bound"`
	GreedyTPBound float64            `json:"greedy_tp_bound"`
	IssueBound    float64            `json:"issue_bound"`
	CriticalPath  float64            `json:"critical_path"`
	CPPath        []int              `json:"cp_path"`
	LCD           depgraph.LCDResult `json:"lcd"`
	Prediction    float64            `json:"prediction"`
	Bound         string             `json:"bound"`
	Instrs        []InstrReport      `json:"instrs"`
	TotalUops     int                `json:"total_uops"`
	Coverage      Coverage           `json:"coverage"`
}

// MarshalStable encodes the analysis into its stable wire form. The
// encoding is deterministic (fixed field order, shortest round-tripping
// float representation), so equal Results produce equal bytes, and
// float64 values survive a round trip bit-exactly — a warm decode renders
// byte-identical reports.
func (r *Result) MarshalStable() ([]byte, error) {
	return json.Marshal(resultWire{
		PortPressure:  r.PortPressure,
		TPBound:       r.TPBound,
		GreedyTPBound: r.GreedyTPBound,
		IssueBound:    r.IssueBound,
		CriticalPath:  r.CriticalPath,
		CPPath:        r.CPPath,
		LCD:           r.LCD,
		Prediction:    r.Prediction,
		Bound:         r.Bound,
		Instrs:        r.Instrs,
		TotalUops:     r.TotalUops,
		Coverage:      r.Coverage,
	})
}

// UnmarshalStable decodes a MarshalStable payload, reattaching the block
// and machine model the caller analyzed. b and m must carry the same
// content the encoded analysis was computed from (the persistence layers
// guarantee this by keying entries on that content).
func UnmarshalStable(data []byte, b *isa.Block, m *uarch.Model) (*Result, error) {
	var w resultWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decoding stored result: %w", err)
	}
	return &Result{
		Block:         b,
		Model:         m,
		PortPressure:  w.PortPressure,
		TPBound:       w.TPBound,
		GreedyTPBound: w.GreedyTPBound,
		IssueBound:    w.IssueBound,
		CriticalPath:  w.CriticalPath,
		CPPath:        w.CPPath,
		LCD:           w.LCD,
		Prediction:    w.Prediction,
		Bound:         w.Bound,
		Instrs:        w.Instrs,
		TotalUops:     w.TotalUops,
		Coverage:      w.Coverage,
	}, nil
}
