package core_test

// Golden results for the analyzer front-end, captured from the
// pre-arena implementation (per-call maps and jagged slices, fixed
// 64-iteration balancer). The pooled-scratch/fixed-point rewrite must
// reproduce every value bit-for-bit: floats are serialized in hex ('x')
// form, so any rounding difference — not just a modeling difference —
// fails the test. The full text report is pinned too, which keeps
// cmd/osaca and /v1/analyze output byte-identical by transitivity.
//
// Regenerate (only when the analyzer's *intended* semantics change):
//
//	go test ./internal/core -run TestGoldenAnalyzer -update

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"incore/internal/core"
	"incore/internal/depgraph"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

var update = flag.Bool("update", false, "rewrite the analyzer golden file")

var goldenArchs = []string{"goldencove", "neoversev2", "zen4"}

// optVariants are the analyzer-option corners: the default (ideal
// renaming, one-cache-line memory window), false dependencies on (WAW/WAR
// edges), and memory-carried detection off.
func optVariants() map[string]depgraph.Options {
	falsedeps := depgraph.DefaultOptions()
	falsedeps.IncludeFalseDeps = true
	nomem := depgraph.DefaultOptions()
	nomem.MemCarriedWindow = 0
	return map[string]depgraph.Options{
		"default":   depgraph.DefaultOptions(),
		"falsedeps": falsedeps,
		"nomem":     nomem,
	}
}

// edgeKernels get the full option-variant treatment; every kernel gets at
// least the default options. gs2d5 carries store-forwarding chains (the
// memory-edge paths), j3d27 the widest dependency fan-in.
var edgeKernels = map[string]bool{"striad": true, "gs2d5": true, "j3d27": true}

func goldenBlock(t testing.TB, name, arch string, c kernels.Compiler, o kernels.OptLevel) *isa.Block {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.Generate(k, kernels.Config{Arch: arch, Compiler: c, Opt: o})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

type goldenCase struct {
	name string
	arch string
	blk  *isa.Block
	opt  depgraph.Options
}

func goldenCases(t testing.TB) []goldenCase {
	var cases []goldenCase
	for _, arch := range goldenArchs {
		second := kernels.Clang
		if arch == "neoversev2" {
			second = kernels.ArmClang
		}
		for i := range kernels.Kernels {
			kn := kernels.Kernels[i].Name
			for _, v := range []struct {
				c kernels.Compiler
				o kernels.OptLevel
			}{{kernels.GCC, kernels.O3}, {second, kernels.Ofast}} {
				blk := goldenBlock(t, kn, arch, v.c, v.o)
				cases = append(cases, goldenCase{
					name: fmt.Sprintf("%s/%s/default", arch, blk.Name),
					arch: arch, blk: blk, opt: depgraph.DefaultOptions(),
				})
			}
			if edgeKernels[kn] {
				blk := goldenBlock(t, kn, arch, kernels.GCC, kernels.O3)
				variants := optVariants()
				for _, vn := range []string{"falsedeps", "nomem"} {
					cases = append(cases, goldenCase{
						name: fmt.Sprintf("%s/%s/%s", arch, blk.Name, vn),
						arch: arch, blk: blk, opt: variants[vn],
					})
				}
			}
		}
	}
	return cases
}

// goldenResult is the exact-bits serialization of a core.Result.
type goldenResult struct {
	TPBound       string   `json:"tp_bound"`
	GreedyTPBound string   `json:"greedy_tp_bound"`
	IssueBound    string   `json:"issue_bound"`
	CriticalPath  string   `json:"critical_path"`
	LCDCycles     string   `json:"lcd_cycles"`
	Prediction    string   `json:"prediction"`
	Bound         string   `json:"bound"`
	TotalUops     int      `json:"total_uops"`
	CPPath        []int    `json:"cp_path"`
	LCDPath       []int    `json:"lcd_path"`
	PortPressure  []string `json:"port_pressure"`
	// InstrLoadsSHA256 pins every instruction's per-port load vector
	// bit-for-bit (sha256 over the hex-float serialization) without
	// storing the full matrix; ReportSHA256 does the same for the
	// rendered text report, which cmd/osaca and /v1/analyze serve
	// verbatim.
	InstrLoadsSHA256 string `json:"instr_loads_sha256"`
	ReportSHA256     string `json:"report_sha256"`
}

func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func hexAll(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = hexF(v)
	}
	return out
}

func toGolden(r *core.Result) goldenResult {
	g := goldenResult{
		TPBound:       hexF(r.TPBound),
		GreedyTPBound: hexF(r.GreedyTPBound),
		IssueBound:    hexF(r.IssueBound),
		CriticalPath:  hexF(r.CriticalPath),
		LCDCycles:     hexF(r.LCD.Cycles),
		Prediction:    hexF(r.Prediction),
		Bound:         r.Bound,
		TotalUops:     r.TotalUops,
		CPPath:        r.CPPath,
		LCDPath:       r.LCD.Path,
		PortPressure:  hexAll(r.PortPressure),
		ReportSHA256:  fmt.Sprintf("%x", sha256.Sum256([]byte(r.Report()))),
	}
	h := sha256.New()
	for i := range r.Instrs {
		for _, v := range r.Instrs[i].PortLoads {
			fmt.Fprintf(h, "%s,", hexF(v))
		}
		fmt.Fprint(h, ";")
	}
	g.InstrLoadsSHA256 = fmt.Sprintf("%x", h.Sum(nil))
	return g
}

const goldenPath = "testdata/golden_core.json"

func TestGoldenAnalyzer(t *testing.T) {
	cases := goldenCases(t)
	got := make(map[string]goldenResult, len(cases))
	for _, c := range cases {
		m := uarch.MustGet(c.arch)
		an := core.New()
		an.Opt = c.opt
		r, err := an.Analyze(c.blk, m)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got[c.name] = toGolden(r)
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden results to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, test generated %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: case no longer generated", name)
			continue
		}
		wj, _ := json.Marshal(w)
		gj, _ := json.Marshal(g)
		if string(wj) != string(gj) {
			t.Errorf("%s: analysis differs from golden\n got: %s\nwant: %s", name, gj, wj)
		}
	}
}
