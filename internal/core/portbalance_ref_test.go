package core

// The pre-arena port-balancing implementations, kept verbatim as
// unexported references: the flat-scratch, fixed-point-exiting rewrites
// must reproduce them bit for bit on arbitrary job sets, not just on the
// kernels the golden file pins. The references allocate per call and run
// all 64 balancer passes unconditionally — that is the point: the
// fixed-point early exit is only sound if stopping at an unchanged pass
// yields the exact bits of running every remaining pass.

import (
	"math"
	"math/rand"
	"testing"

	"incore/internal/uarch"
)

// referenceOptimalPortBound is the pre-rewrite OptimalPortBound
// (map-based scratch; the >20-mask fallback kept its hardcoded 32-port
// cap, see TestOptimalFallbackUsesModelPortCount for why that was a bug).
func referenceOptimalPortBound(jobs []balanceJob) float64 {
	work := map[uarch.PortMask]float64{}
	for _, j := range jobs {
		if j.Mask == 0 || j.Cycles <= 0 {
			continue
		}
		work[j.Mask] += j.Cycles
	}
	if len(work) == 0 {
		return 0
	}
	masks := make([]uarch.PortMask, 0, len(work))
	for m := range work {
		masks = append(masks, m)
	}
	seen := map[uarch.PortMask]bool{}
	best := 0.0
	n := len(masks)
	if n > 20 {
		loads := referenceHeuristicAssignment(jobs, 32)
		for _, l := range loads {
			best = math.Max(best, l)
		}
		return best
	}
	for bits := 1; bits < 1<<uint(n); bits++ {
		var s uarch.PortMask
		for i := 0; i < n; i++ {
			if bits&(1<<uint(i)) != 0 {
				s |= masks[i]
			}
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		demand := 0.0
		for m, c := range work {
			if m&^s == 0 {
				demand += c
			}
		}
		if v := demand / float64(s.Count()); v > best {
			best = v
		}
	}
	return best
}

// referenceHeuristicAssignment is the pre-rewrite HeuristicAssignment
// (jagged shares matrix, fresh allocations, fixed 64 passes).
func referenceHeuristicAssignment(jobs []balanceJob, nPorts int) []float64 {
	loads := make([]float64, nPorts)
	shares := make([][]float64, len(jobs))
	for j, job := range jobs {
		ports := job.Mask.Indices()
		shares[j] = make([]float64, len(ports))
		for k := range ports {
			shares[j][k] = job.Cycles / float64(len(ports))
		}
	}
	const iters = 64
	for it := 0; it < iters; it++ {
		for i := range loads {
			loads[i] = 0
		}
		for j, job := range jobs {
			for k, p := range job.Mask.Indices() {
				loads[p] += shares[j][k]
			}
		}
		for j, job := range jobs {
			ports := job.Mask.Indices()
			if len(ports) <= 1 {
				continue
			}
			for k, p := range ports {
				loads[p] -= shares[j][k]
			}
			weights := make([]float64, len(ports))
			sum := 0.0
			for k, p := range ports {
				w := 1.0 / (loads[p] + 0.05)
				weights[k] = w
				sum += w
			}
			for k, p := range ports {
				shares[j][k] = job.Cycles * weights[k] / sum
				loads[p] += shares[j][k]
			}
		}
	}
	return loads
}

// randomJobs draws a job set over nPorts ports. With dyadicOnly, cycle
// counts are small dyadic fractions like the machine models use — sums
// of those are exact, which matters because the *reference*
// OptimalPortBound accumulates demand in random map-iteration order and
// is only bit-deterministic when addition cannot round. Without it,
// awkward values (1/3) are mixed in.
func randomJobs(rng *rand.Rand, nPorts int, dyadicOnly bool) []balanceJob {
	nJobs := rng.Intn(24)
	jobs := make([]balanceJob, nJobs)
	full := uarch.PortMask(1<<uint(nPorts) - 1)
	for i := range jobs {
		mask := uarch.PortMask(rng.Intn(int(full) + 1)) // may be 0
		var cycles float64
		switch rng.Intn(6) {
		case 0:
			cycles = 0 // degenerate
		case 1:
			if dyadicOnly {
				cycles = 0.5
			} else {
				cycles = 1.0 / 3.0 // non-dyadic
			}
		default:
			cycles = float64(1+rng.Intn(12)) / 4.0 // dyadic
		}
		jobs[i] = balanceJob{Mask: mask, Cycles: cycles}
	}
	return jobs
}

// TestHeuristicBitIdenticalToReference: the flat fixed-point balancer
// must match the 64-pass jagged reference bit for bit.
func TestHeuristicBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20240719))
	for trial := 0; trial < 1200; trial++ {
		nPorts := 1 + rng.Intn(12)
		// The heuristic reference iterates in job order (deterministic),
		// so bit-identity must hold even for non-dyadic cycle counts.
		jobs := randomJobs(rng, nPorts, false)
		got := HeuristicAssignment(jobs, nPorts)
		want := referenceHeuristicAssignment(jobs, nPorts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(want))
		}
		for p := range want {
			if math.Float64bits(got[p]) != math.Float64bits(want[p]) {
				t.Fatalf("trial %d: port %d load %x differs from reference %x (jobs %+v)",
					trial, p, got[p], want[p], jobs)
			}
		}
	}
}

// TestOptimalBitIdenticalToReference: the linear-scan/epoch-table bound
// must match the map-based reference bit for bit on exactly-summable
// (dyadic) inputs — all any real machine model produces. The reference
// sums demand in random map order, so it is itself only deterministic
// when addition cannot round; the rewrite's first-seen order makes the
// bound deterministic for every input.
func TestOptimalBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20240720))
	for trial := 0; trial < 1200; trial++ {
		nPorts := 1 + rng.Intn(12)
		jobs := randomJobs(rng, nPorts, true)
		got := OptimalPortBound(jobs, nPorts)
		want := referenceOptimalPortBound(jobs)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: bound %x differs from reference %x (jobs %+v)",
				trial, got, want, jobs)
		}
	}
}

// TestOptimalCloseToReferenceNonDyadic: for cycle counts whose sums can
// round (not produced by the real models), the rewrite must still agree
// with the reference to within summation-order noise.
func TestOptimalCloseToReferenceNonDyadic(t *testing.T) {
	rng := rand.New(rand.NewSource(20240721))
	for trial := 0; trial < 600; trial++ {
		nPorts := 1 + rng.Intn(12)
		jobs := randomJobs(rng, nPorts, false)
		got := OptimalPortBound(jobs, nPorts)
		want := referenceOptimalPortBound(jobs)
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: bound %g vs reference %g (diff %g)", trial, got, want, diff)
		}
	}
}

// TestScratchReuseIsStateless: results must not depend on what a pooled
// scratch previously computed.
func TestScratchReuseIsStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := &Scratch{}
	for trial := 0; trial < 500; trial++ {
		nPorts := 1 + rng.Intn(10)
		jobs := randomJobs(rng, nPorts, false)
		fresh := &Scratch{}
		a := append([]float64(nil), s.heuristicInto(jobs, nPorts)...)
		b := fresh.heuristicInto(jobs, nPorts)
		for p := range b {
			if math.Float64bits(a[p]) != math.Float64bits(b[p]) {
				t.Fatalf("trial %d: reused scratch diverges from fresh scratch at port %d", trial, p)
			}
		}
		if ab, bb := s.optimalBound(jobs, nPorts), fresh.optimalBound(jobs, nPorts); math.Float64bits(ab) != math.Float64bits(bb) {
			t.Fatalf("trial %d: reused scratch bound %x != fresh %x", trial, ab, bb)
		}
		if ag, bg := s.greedyBound(jobs, nPorts), fresh.greedyBound(jobs, nPorts); math.Float64bits(ag) != math.Float64bits(bg) {
			t.Fatalf("trial %d: reused scratch greedy %x != fresh %x", trial, ag, bg)
		}
	}
}

// TestOptimalFallbackUsesModelPortCount pins the satellite fix: with more
// than 20 distinct masks the defensive fallback must cap the heuristic at
// the model's real port count instead of the historical hardcoded 32.
// The max-load outcome is unchanged (ports beyond the model never carry
// load), so this guards the contract, not a numeric delta.
func TestOptimalFallbackUsesModelPortCount(t *testing.T) {
	// 21 distinct masks over 5 ports forces the fallback.
	var jobs []balanceJob
	for m := uarch.PortMask(1); m <= 21; m++ {
		jobs = append(jobs, balanceJob{Mask: m, Cycles: 1})
	}
	got := OptimalPortBound(jobs, 5)
	want := referenceOptimalPortBound(jobs)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("fallback bound %x differs from reference %x", got, want)
	}
	// A 5-port heuristic must also agree with the historical 32-port cap.
	a, b := HeuristicAssignment(jobs, 5), referenceHeuristicAssignment(jobs, 32)
	for p := range a {
		if math.Float64bits(a[p]) != math.Float64bits(b[p]) {
			t.Fatalf("port %d: 5-port load differs from 32-port reference", p)
		}
	}
	for _, l := range b[5:] {
		if l != 0 {
			t.Fatal("reference put load on a port the model does not have")
		}
	}
}
