package core

import (
	"incore/internal/depgraph"
	"incore/internal/isa"
	"incore/internal/uarch"
)

// ResultArena owns every backing array an arena-returned analysis writes:
// the Result struct itself, the per-instruction reports, a flat port-load
// matrix, the path buffers, and a per-block cache of rendered instruction
// text. With a warm arena and prebuilt artifacts (skeleton + descriptors),
// AnalyzeArena performs zero heap allocations per call — the internal-path
// counterpart of the ~26–30 allocs/op the escaping Result costs.
//
// The arena's Result is INVALID after the arena's next use: callers must
// consume it (or copy what they keep) before analyzing again, must not
// share it across goroutines, and must never hand it to a cache or the
// persistent store. Use Analyzer.Analyze for results that escape.
type ResultArena struct {
	s   Scratch
	res Result

	instrs       []InstrReport
	portLoads    []float64 // flat len(Instrs)×nPorts backing
	portPressure []float64
	cpPath       []int
	lcdPath      []int

	// texts caches Instruction.String() per block pointer: generated
	// blocks render text on every String call, so re-rendering only when
	// the block changes is what amortizes Text to zero on repeat analyses.
	texts      []string
	textsBlock *isa.Block
}

// text returns the cached rendering of b's instruction i, rebuilding the
// cache when the arena last served a different block.
func (ar *ResultArena) text(b *isa.Block, i int) string {
	if ar.textsBlock != b {
		ar.texts = ar.texts[:0]
		for j := range b.Instrs {
			ar.texts = append(ar.texts, b.Instrs[j].String())
		}
		ar.textsBlock = b
	}
	return ar.texts[i]
}

// AnalyzeCompiled is Analyze against prebuilt compiled artifacts: sk holds
// the block's model-independent dependency structure and descs the
// instructions resolved against m (nil descs resolve here). The Result is
// freshly allocated and byte-identical to Analyze's for the same inputs —
// callers (internal/pipeline) may memoize and persist it interchangeably.
func (a *Analyzer) AnalyzeCompiled(b *isa.Block, m *uarch.Model, sk *depgraph.Skeleton, descs []uarch.Desc) (*Result, error) {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return a.analyzeCompiled(b, m, sk, descs, s, nil)
}

// AnalyzeArena is AnalyzeCompiled returning an arena-owned Result — the
// zero-allocation internal path. See ResultArena for the (strict) validity
// contract. The arena embeds its own scratch, so a ResultArena is also a
// single-goroutine resource.
func (a *Analyzer) AnalyzeArena(b *isa.Block, m *uarch.Model, sk *depgraph.Skeleton, descs []uarch.Desc, ar *ResultArena) (*Result, error) {
	return a.analyzeCompiled(b, m, sk, descs, &ar.s, ar)
}

func (a *Analyzer) analyzeCompiled(b *isa.Block, m *uarch.Model, sk *depgraph.Skeleton, descs []uarch.Desc, s *Scratch, ar *ResultArena) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if descs == nil {
		var err error
		descs, err = sk.ResolveDescs(m, a.Opt.DegradeUnknown)
		if err != nil {
			return nil, err
		}
	}
	g := sk.Instantiate(b, m, descs, a.Opt, &s.dg)
	return finishResult(b, m, g, s, ar)
}
