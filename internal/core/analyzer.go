// Package core implements the paper's primary contribution: an OSACA-style
// in-core performance model. Given an assembly block and a machine model
// it computes
//
//   - the optimal port-pressure throughput bound (perfectly balanced
//     µ-op-to-port assignment),
//   - the frontend issue bound,
//   - the critical path through one iteration, and
//   - the longest loop-carried dependency (LCD) chain,
//
// and combines them into an optimistic lower-bound runtime prediction in
// cycles per block iteration: max(port bound, issue bound, LCD).
//
// The prediction is a *lower bound* by construction: a real out-of-order
// core cannot beat perfect port balancing, cannot exceed its issue width,
// and cannot overtake true dataflow. (Two deliberate exceptions where real
// hardware can beat the tables are reproduced and discussed in the paper:
// FMA accumulator forwarding on Neoverse V2 and the Zen 4 divider early
// exit; see internal/sim.)
package core

import (
	"fmt"
	"math"

	"incore/internal/depgraph"
	"incore/internal/isa"
	"incore/internal/uarch"
)

// InstrReport is the per-instruction line of an analysis report.
type InstrReport struct {
	Index    int
	Text     string
	Uops     int
	Lat      int
	TotalLat int
	// Throughput is the instruction's isolated reciprocal throughput.
	Throughput float64
	// PortLoads is the heuristic per-port share of this instruction
	// (cycles), aligned with Model.Ports.
	PortLoads []float64
	// Match records how the instruction resolved against the model's
	// tables: "" (exact entry; omitted on the wire), "fallback" (folded
	// signature/width chain), or "unknown" (synthesized conservative
	// descriptor — see Result.Coverage).
	Match string `json:"match,omitempty"`
}

// Result is a complete in-core analysis of one block.
type Result struct {
	Block *isa.Block
	Model *uarch.Model

	// PortPressure is the heuristic per-port load (cycles/iteration).
	PortPressure []float64
	// TPBound is the exact optimal max-port-load bound.
	TPBound float64
	// GreedyTPBound is the bound a greedy (non-balancing) scheduler
	// achieves; exposed for the ablation study.
	GreedyTPBound float64
	// IssueBound is total µ-ops / issue width.
	IssueBound float64
	// CriticalPath is the longest dataflow path through one iteration;
	// CPPath lists the instruction indices on it in program order.
	CriticalPath float64
	CPPath       []int
	// LCD is the dominant loop-carried dependency chain.
	LCD depgraph.LCDResult
	// Prediction is the lower-bound cycles per iteration.
	Prediction float64
	// Bound names the binding constraint ("port", "issue", "lcd").
	Bound string

	Instrs []InstrReport
	// TotalUops counts µ-ops per iteration.
	TotalUops int
	// Coverage accounts how instructions resolved against the model
	// (exact / fallback / unknown); Unknown > 0 marks a degraded
	// analysis over synthesized descriptors.
	Coverage Coverage
}

// Analyzer holds analysis options.
type Analyzer struct {
	// Opt controls dependency-graph construction.
	Opt depgraph.Options
}

// New returns an analyzer with OSACA-like defaults (ideal renaming,
// memory-carried dependencies within one cache line) plus graceful
// degradation: instructions outside the model's table resolve to its
// synthesized conservative descriptor and are accounted in
// Result.Coverage instead of rejecting the whole block. Set
// Opt.DegradeUnknown = false for the strict error-on-unknown behavior.
func New() *Analyzer {
	opt := depgraph.DefaultOptions()
	opt.DegradeUnknown = true
	return &Analyzer{Opt: opt}
}

// Fingerprint returns a stable content key for the analyzer's options.
// Two analyzers with equal fingerprints produce identical Results for the
// same (block, model) input; memoization layers (internal/pipeline) key
// cached analyses on it.
func (a *Analyzer) Fingerprint() string {
	return fmt.Sprintf("falsedeps=%t|memwin=%d|stfwd=%d|degrade=%t",
		a.Opt.IncludeFalseDeps, a.Opt.MemCarriedWindow, a.Opt.StoreForwardLat, a.Opt.DegradeUnknown)
}

// Analyze runs the in-core model for block b on machine model m. Scratch
// memory is drawn from an internal pool, so concurrent callers (pipeline
// jobs, served requests) are safe and a steady stream of analyses does
// O(1) heap work after warmup beyond the returned Result itself.
func (a *Analyzer) Analyze(b *isa.Block, m *uarch.Model) (*Result, error) {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return a.AnalyzeScratch(b, m, s)
}

// AnalyzeScratch is Analyze with caller-provided scratch memory (nil
// falls back to fresh scratch). The Result never aliases s, so s may be
// reused immediately; s must not be shared between goroutines.
func (a *Analyzer) AnalyzeScratch(b *isa.Block, m *uarch.Model, s *Scratch) (*Result, error) {
	if s == nil {
		s = &Scratch{}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	g, err := depgraph.NewScratch(b, m, a.Opt, &s.dg)
	if err != nil {
		return nil, err
	}
	return finishResult(b, m, g, s, nil)
}

// finishResult builds the Result from an instantiated dependency graph —
// the back half of every analysis entry point. With ar == nil the Result
// and everything it references are freshly allocated (safe to memoize and
// persist); with an arena the Result reuses ar's backing arrays and is
// only valid until ar's next use.
func finishResult(b *isa.Block, m *uarch.Model, g *depgraph.Graph, s *Scratch, ar *ResultArena) (*Result, error) {
	var res *Result
	if ar != nil {
		res = &ar.res
		*res = Result{Block: b, Model: m}
	} else {
		res = &Result{Block: b, Model: m}
	}
	nPorts := len(m.Ports)
	s.jobs = s.jobs[:0]
	s.jobSpan = append(s.jobSpan[:0], 0)
	if ar != nil {
		res.Instrs = ar.instrs[:0]
	} else {
		res.Instrs = make([]InstrReport, 0, len(b.Instrs))
	}
	for i := range b.Instrs {
		d := g.Nodes[i].Desc
		ir := InstrReport{
			Index:      i,
			Uops:       d.UopCount(),
			Lat:        d.Lat,
			TotalLat:   d.TotalLat,
			Throughput: d.ThroughputCycles(),
		}
		if ar != nil {
			ir.Text = ar.text(b, i)
		} else {
			ir.Text = b.Instrs[i].String()
		}
		if d.Match != uarch.MatchExact {
			ir.Match = d.Match.String()
		}
		res.Coverage.add(b.Instrs[i].Mnemonic, d.Match)
		for _, u := range d.Uops {
			s.jobs = append(s.jobs, balanceJob{Mask: u.Ports, Cycles: u.Cycles})
		}
		s.jobSpan = append(s.jobSpan, int32(len(s.jobs)))
		res.TotalUops += d.UopCount()
		res.Instrs = append(res.Instrs, ir)
	}
	if ar != nil {
		ar.instrs = res.Instrs
	}
	// Per-instruction pressure over the instruction's span of the shared
	// job array; only the Result's own copy is freshly allocated (from
	// the arena's flat backing when one is supplied).
	if ar != nil {
		need := len(res.Instrs) * nPorts
		ar.portLoads = grow(ar.portLoads, need)
	}
	for i := range res.Instrs {
		loads := s.heuristicInto(s.jobs[s.jobSpan[i]:s.jobSpan[i+1]], nPorts)
		if ar != nil {
			dst := ar.portLoads[i*nPorts : (i+1)*nPorts : (i+1)*nPorts]
			copy(dst, loads)
			res.Instrs[i].PortLoads = dst
		} else {
			res.Instrs[i].PortLoads = append([]float64(nil), loads...)
		}
	}

	if ar != nil {
		ar.portPressure = grow(ar.portPressure, nPorts)
		copy(ar.portPressure, s.heuristicInto(s.jobs, nPorts))
		res.PortPressure = ar.portPressure[:nPorts]
	} else {
		res.PortPressure = append([]float64(nil), s.heuristicInto(s.jobs, nPorts)...)
	}
	res.TPBound = s.optimalBound(s.jobs, nPorts)
	res.GreedyTPBound = s.greedyBound(s.jobs, nPorts)
	res.IssueBound = float64(res.TotalUops) / float64(m.IssueWidth)
	if ar != nil {
		res.CriticalPath, res.CPPath = g.CriticalPathDetailAppend(ar.cpPath)
		ar.cpPath = res.CPPath
		res.LCD = g.LoopCarriedAppend(-1, ar.lcdPath)
		if res.LCD.Path != nil {
			ar.lcdPath = res.LCD.Path
		}
	} else {
		res.CriticalPath, res.CPPath = g.CriticalPathDetail()
		res.LCD = g.LoopCarried(-1)
	}

	res.Prediction = math.Max(res.TPBound, res.IssueBound)
	res.Bound = "port"
	if res.IssueBound > res.TPBound {
		res.Bound = "issue"
	}
	if res.LCD.Cycles > res.Prediction {
		res.Prediction = res.LCD.Cycles
		res.Bound = "lcd"
	}
	return res, nil
}

// Predict is a convenience wrapper returning only the predicted cycles per
// iteration.
func (a *Analyzer) Predict(b *isa.Block, m *uarch.Model) (float64, error) {
	r, err := a.Analyze(b, m)
	if err != nil {
		return 0, err
	}
	return r.Prediction, nil
}

// CyclesPerElement converts a per-iteration prediction into cycles per
// scalar element given how many elements one block iteration processes.
func CyclesPerElement(cyclesPerIter float64, elemsPerIter int) (float64, error) {
	if elemsPerIter <= 0 {
		return 0, fmt.Errorf("core: elemsPerIter must be positive, got %d", elemsPerIter)
	}
	return cyclesPerIter / float64(elemsPerIter), nil
}
