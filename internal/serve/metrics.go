package serve

import (
	"fmt"
	"net/http"
	"strings"

	"incore/internal/pipeline"
	"incore/internal/remotestore"
	"incore/internal/sweep"
	"incore/internal/uarch"
)

// GET /metrics renders the same accounting /healthz reports as JSON in
// the Prometheus text exposition format, so the serving tier drops into
// standard scrape-based monitoring without a sidecar translating the
// health document. The mapping is mechanical: every counter in the
// health document appears as an incore_* series; tiers that are not
// attached (store, remote) simply emit no series, mirroring the omitted
// JSON sections.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	gauge("incore_models", "Registered machine models.", int64(len(uarch.Keys())))

	cache := pipeline.Shared().Stats()
	counter("incore_cache_hits_total", "Memo cache hits.", cache.Hits)
	counter("incore_cache_misses_total", "Memo cache misses.", cache.Misses)
	gauge("incore_cache_entries", "Memo cache population.", int64(cache.Entries))

	comp := pipeline.CompiledArtifacts().Stats()
	gauge("incore_compiled_programs", "Cached simulator programs.", comp.Programs)
	gauge("incore_compiled_blocks", "Cached parsed blocks.", comp.Blocks)
	gauge("incore_compiled_skeletons", "Cached dependence skeletons.", comp.Skeletons)
	gauge("incore_compiled_descs", "Cached descriptor tables.", comp.Descs)
	gauge("incore_compiled_mca", "Cached mca schedules.", comp.MCA)
	counter("incore_compiled_compiles_total", "Artifact compilations.", comp.Compiles)
	counter("incore_compiled_hits_total", "Artifact cache hits.", comp.Hits)
	counter("incore_compiled_attaches_total", "Waiters attached to in-flight compilations.", comp.Attaches)
	gauge("incore_compiled_bytes_estimated", "Estimated retained artifact bytes.", comp.BytesEstimated)

	jobs := s.jobs.Stats()
	gauge("incore_jobs", "Retained job records.", int64(jobs.Jobs))
	gauge("incore_jobs_depth", "Job items awaiting a worker.", int64(jobs.Depth))
	gauge("incore_jobs_pending", "Jobs in state pending.", int64(jobs.Pending))
	gauge("incore_jobs_running", "Jobs in state running.", int64(jobs.Running))
	gauge("incore_jobs_completed", "Jobs in state completed.", int64(jobs.Completed))
	gauge("incore_jobs_cancelled", "Jobs in state cancelled.", int64(jobs.Cancelled))
	counter("incore_jobs_evicted_total", "Job records self-evicted on load.", jobs.Evicted)
	counter("incore_jobs_persist_errors_total", "Surrendered job checkpoints.", jobs.PersistErrors)
	counter("incore_jobs_persist_retried_total", "Retried job checkpoint writes.", jobs.PersistRetried)

	sw := sweep.GlobalStats()
	counter("incore_sweep_sweeps_total", "Completed sweep runs.", sw.Sweeps)
	counter("incore_sweep_variants_total", "Sweep variants generated.", sw.Variants)
	counter("incore_sweep_shared_signature_total", "Variants reusing another variant's port signature.", sw.SharedSignature)
	counter("incore_sweep_cells_warm_total", "Sweep result cells served from cache tiers.", sw.CellsWarm)
	counter("incore_sweep_cells_cold_total", "Sweep result cells computed fresh.", sw.CellsCold)
	counter("incore_sweep_rejected_too_large_total", "Sweeps refused by the variant cap.", sw.RejectedTooLarge)

	if st := pipeline.PersistentStore(); st != nil {
		ss := st.Stats()
		counter("incore_store_mem_hits_total", "Store in-memory tier hits.", ss.MemHits)
		counter("incore_store_disk_hits_total", "Store disk tier hits.", ss.DiskHits)
		counter("incore_store_remote_hits_total", "Store remote tier hits.", ss.RemoteHits)
		counter("incore_store_remote_rejects_total", "Remote payloads refused by validation.", ss.RemoteRejects)
		counter("incore_store_misses_total", "Store cold lookups.", ss.Misses)
		counter("incore_store_evictions_total", "Stale or damaged disk entries evicted.", ss.Evictions)
		counter("incore_store_put_errors_total", "Failed store writes.", ss.PutErrors)
		gauge("incore_store_mem_entries", "Store in-memory tier population.", int64(ss.MemEntries))
		if rc, ok := st.Remote().(*remotestore.Client); ok {
			rs := rc.Stats()
			counter("incore_remote_gets_total", "Remote peer lookups.", rs.Gets)
			counter("incore_remote_hits_total", "Remote peer hits.", rs.Hits)
			counter("incore_remote_misses_total", "Remote peer healthy misses.", rs.Misses)
			counter("incore_remote_errors_total", "Remote lookups that exhausted retries.", rs.Errors)
			counter("incore_remote_verify_failures_total", "Remote entries discarded by verification.", rs.VerifyFailures)
			counter("incore_remote_retries_total", "Extra remote GET attempts.", rs.Retries)
			counter("incore_remote_short_circuits_total", "Operations answered locally by the open breaker.", rs.ShortCircuits)
			counter("incore_remote_puts_total", "Write-behind successes.", rs.Puts)
			counter("incore_remote_put_errors_total", "Write-behind failures.", rs.PutErrors)
			counter("incore_remote_puts_dropped_total", "Write-behind entries dropped.", rs.PutsDropped)
			counter("incore_remote_breaker_trips_total", "Breaker transitions to open.", rs.BreakerTrips)
			fmt.Fprintf(&b, "# HELP incore_remote_breaker_state Circuit-breaker state (1 on the active state).\n# TYPE incore_remote_breaker_state gauge\n")
			for _, state := range []remotestore.BreakerState{remotestore.BreakerClosed, remotestore.BreakerOpen, remotestore.BreakerHalfOpen} {
				v := 0
				if rs.Breaker == state {
					v = 1
				}
				fmt.Fprintf(&b, "incore_remote_breaker_state{state=%q} %d\n", string(state), v)
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
