package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"incore/internal/faultinject"
	"incore/internal/pipeline"
	"incore/internal/remotestore"
	"incore/internal/store"
)

// This file is the fault-tolerance acceptance suite: a peer replica is
// degraded (deterministic fault injection) or killed outright (SIGKILL,
// not graceful shutdown) and the serving replica must keep answering
// every request with byte-identical output — the remote tier may only
// ever change where a result comes from, never what it is.

// TestMain doubles as the peer-replica helper process: when re-executed
// with SERVE_PEER_HELPER=1, the test binary becomes a real serve server
// with its own store (attached in its own process, so the parent's
// pipeline globals are untouched), prints its address, and serves until
// killed — the only honest way to test SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("SERVE_PEER_HELPER") == "1" {
		runPeerHelper()
		return
	}
	os.Exit(m.Run())
}

func runPeerHelper() {
	dir := os.Getenv("SERVE_PEER_DIR")
	if dir == "" {
		fmt.Fprintln(os.Stderr, "helper: SERVE_PEER_DIR not set")
		os.Exit(1)
	}
	if _, err := pipeline.AttachStore(dir); err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	api, err := NewWithOptions(Options{JobWorkers: -1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("HELPER_ADDR=%s\n", ln.Addr())
	os.Stdout.Sync()
	// Serve until SIGKILLed by the parent; no graceful path exists on
	// purpose.
	http.Serve(ln, api.Handler())
}

// startPeerProcess launches the helper and returns its base URL and the
// process handle (for the SIGKILL).
func startPeerProcess(t *testing.T, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SERVE_PEER_HELPER=1", "SERVE_PEER_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "HELPER_ADDR="); ok {
			return "http://" + addr, cmd
		}
	}
	t.Fatal("helper exited without printing HELPER_ADDR")
	return "", nil
}

// batchBody builds a /v1/batch body over distinct single-block requests.
func batchBody(t *testing.T, asms ...string) []byte {
	t.Helper()
	var req BatchRequest
	for i, asm := range asms {
		req.Requests = append(req.Requests, AnalyzeRequest{
			Arch: "zen4", Asm: asm, Name: fmt.Sprintf("blk%d", i),
		})
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// postBatch posts one batch and returns status + body bytes.
func postBatch(t *testing.T, baseURL string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("batch request failed outright: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading batch response: %v", err)
	}
	return resp.StatusCode, out
}

// asmBlock renders a distinct small loop; different offsets give
// different cache keys, forcing cold lookups on demand.
func asmBlock(off int) string {
	return fmt.Sprintf(".L0:\n\taddq $%d, %%rax\n\tcmpq %%rbx, %%rax\n\tjb .L0\n", off)
}

// TestPeerSIGKILLMidSuite is the PR's acceptance test: the remote peer
// is SIGKILLed (not gracefully stopped) while requests are in flight.
// Every in-flight and subsequent request must succeed with byte-identical
// output, the circuit breaker must open within its configured threshold,
// and /healthz must show the closed→open transition.
func TestPeerSIGKILLMidSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real peer process")
	}
	peerURL, peerCmd := startPeerProcess(t, t.TempDir())

	// The serving replica: fresh local tiers, remote tier pointed at the
	// live peer. Tight client budgets keep the degraded window short.
	st := withPeerStore(t, t.TempDir())
	rc, err := remotestore.New(remotestore.Options{
		BaseURL:          peerURL,
		Schema:           pipeline.StoreSchema(),
		Timeout:          500 * time.Millisecond,
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute, // stays open for the assertions
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)
	st.SetRemote(rc)
	ts := newTestServer(t)

	// Baseline A: computed locally pre-kill (and write-behind replicated
	// to the peer). Re-request must be byte-identical — sanity for the
	// comparisons below.
	bodyA := batchBody(t, asmBlock(1), asmBlock(2), asmBlock(3))
	status, wantA := postBatch(t, ts.URL, bodyA)
	if status != http.StatusOK {
		t.Fatalf("baseline batch status = %d: %s", status, wantA)
	}
	if s2, got := postBatch(t, ts.URL, bodyA); s2 != http.StatusOK || !bytes.Equal(got, wantA) {
		t.Fatalf("pre-kill re-request drifted (status %d)", s2)
	}

	// Expected outputs for the post-kill sets come from the healthy peer
	// replica itself: both replicas run the same code under the same
	// determinism contract, so any byte difference after the kill is a
	// real corruption, not an artifact of asking a different server.
	bodyB := batchBody(t, asmBlock(10), asmBlock(11), asmBlock(12))
	bodyD := batchBody(t, asmBlock(20), asmBlock(21), asmBlock(22), asmBlock(23))
	if s, b := postBatch(t, peerURL, bodyB); s != http.StatusOK {
		t.Fatalf("peer baseline B = %d: %s", s, b)
	}
	_, wantB := postBatch(t, peerURL, bodyB)
	if s, b := postBatch(t, peerURL, bodyD); s != http.StatusOK {
		t.Fatalf("peer baseline D = %d: %s", s, b)
	}
	_, wantD := postBatch(t, peerURL, bodyD)

	// Kill the peer with requests in flight: the D requests race the
	// SIGKILL, so some see a healthy peer, some a dying one, some a dead
	// one — all must succeed with the exact expected bytes.
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, got := postBatch(t, ts.URL, bodyD)
			if s != http.StatusOK {
				errs <- fmt.Sprintf("in-flight batch status %d", s)
			} else if !bytes.Equal(got, wantD) {
				errs <- "in-flight batch bytes differ from healthy baseline"
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := peerCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Subsequent cold requests (set B) force remote consults against the
	// dead peer: every one must still succeed byte-identically while the
	// failures count toward the breaker threshold.
	if s, got := postBatch(t, ts.URL, bodyB); s != http.StatusOK || !bytes.Equal(got, wantB) {
		t.Fatalf("post-kill cold batch: status %d, identical=%v", s, bytes.Equal(got, wantB))
	}

	// The breaker must open within the configured threshold. Keep
	// driving distinct cold lookups until /healthz reports the
	// transition; with threshold 3 and 3 cold items per batch, one or
	// two batches suffice.
	deadline := time.Now().Add(15 * time.Second)
	off := 100
	var health HealthResponse
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if health.Remote == nil {
			t.Fatal("healthz lost the remote block")
		}
		if health.Remote.Breaker == remotestore.BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", health.Remote)
		}
		if s, _ := postBatch(t, ts.URL, batchBody(t, asmBlock(off))); s != http.StatusOK {
			t.Fatalf("request during degradation failed: %d", s)
		}
		off++
	}
	if health.Remote.BreakerTrips == 0 || health.Remote.Errors == 0 {
		t.Fatalf("healthz transition accounting = %+v", health.Remote)
	}

	// With the breaker open, everything keeps working: warm requests are
	// byte-identical, cold requests compute locally, and the dead peer
	// costs nothing (short-circuits, no per-request timeout).
	if s, got := postBatch(t, ts.URL, bodyA); s != http.StatusOK || !bytes.Equal(got, wantA) {
		t.Fatalf("warm batch after breaker open: status %d, identical=%v", s, bytes.Equal(got, wantA))
	}
	start := time.Now()
	if s, _ := postBatch(t, ts.URL, batchBody(t, asmBlock(999))); s != http.StatusOK {
		t.Fatalf("cold batch after breaker open failed: %d", s)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("open breaker did not short-circuit: cold batch took %s", d)
	}
}

// standInPeer backs the real peer handlers with a local store directly —
// same code path as a replica, no pipeline globals — so the fault-rate
// suite can run peer and replica in one process.
func standInPeer(t *testing.T, dir string) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Schema: pipeline.StoreSchema()})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/{hash}", func(w http.ResponseWriter, r *http.Request) {
		servePeerGet(st, w, r)
	})
	mux.HandleFunc("PUT /v1/store/{hash}", func(w http.ResponseWriter, r *http.Request) {
		servePeerPut(st, DefaultMaxBodyBytes, w, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, st
}

// TestFaultRatesByteIdentical runs the replica against a peer behind
// deterministic fault injection at 0%, 30%, and 100% fault rates. At
// every rate, every request must return 200 with bytes identical to the
// healthy baseline — fault injection may only move work between tiers.
func TestFaultRatesByteIdentical(t *testing.T) {
	peer, peerStore := standInPeer(t, t.TempDir())
	body := batchBody(t, asmBlock(31), asmBlock(32), asmBlock(33), asmBlock(34))

	// Healthy baseline: fresh local tiers, clean client; the run also
	// write-behind-populates the peer store so later rates have remote
	// entries to fetch (or fail to fetch).
	st0 := withPeerStore(t, t.TempDir())
	rc0, err := remotestore.New(remotestore.Options{BaseURL: peer.URL, Schema: pipeline.StoreSchema()})
	if err != nil {
		t.Fatal(err)
	}
	st0.SetRemote(rc0)
	ts0 := newTestServer(t)
	status, want := postBatch(t, ts0.URL, body)
	if status != http.StatusOK {
		t.Fatalf("baseline status = %d: %s", status, want)
	}
	if !rc0.Flush(5 * time.Second) {
		t.Fatal("baseline write-behind never drained")
	}
	rc0.Close()
	if peerStore.Stats().MemEntries == 0 {
		t.Fatal("peer store empty after write-behind")
	}

	for _, rate := range []float64{0, 0.3, 1.0} {
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			st := withPeerStore(t, t.TempDir())
			fi := faultinject.New(nil, faultinject.Config{Rate: rate, Seed: 42, MaxDelay: 5 * time.Millisecond})
			rc, err := remotestore.New(remotestore.Options{
				BaseURL:         peer.URL,
				Schema:          pipeline.StoreSchema(),
				Transport:       fi,
				Timeout:         time.Second,
				Retries:         2,
				BackoffBase:     time.Millisecond,
				BreakerCooldown: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(rc.Close)
			st.SetRemote(rc)
			ts := newTestServer(t)

			// Several passes: the first is cold (remote consults under
			// fault), the rest warm — every response byte-identical.
			for pass := 0; pass < 3; pass++ {
				s, got := postBatch(t, ts.URL, body)
				if s != http.StatusOK {
					t.Fatalf("rate %v pass %d: status %d", rate, pass, s)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("rate %v pass %d: bytes differ from healthy baseline", rate, pass)
				}
			}
			cs := rc.Stats()
			sst := st.Stats()
			t.Logf("rate %v: client %+v, store remote_hits=%d remote_rejects=%d, faults %+v",
				rate, cs, sst.RemoteHits, sst.RemoteRejects, fi.Stats())
			if rate == 0 {
				if cs.Errors != 0 || sst.RemoteHits == 0 {
					t.Errorf("rate 0: want clean remote hits, got client %+v store %+v", cs, sst)
				}
			}
			if sst.RemoteRejects != 0 {
				t.Errorf("rate %v: %d remote payloads passed client verification but failed decode",
					rate, sst.RemoteRejects)
			}
		})
	}
}
