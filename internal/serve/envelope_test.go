package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestErrorEnvelopeTable pins the full code⇄status contract with live
// requests: every machine code is produced by a real handler path and
// must arrive with exactly its documented HTTP status, inside the
// unified envelope, carrying a request ID. analysis_timeout is pinned
// by TestAnalysisDeadlineReturns503 (it needs a pathological block) and
// registry_full would need 1024 registrations, so its mapping is pinned
// statically below.
func TestErrorEnvelopeTable(t *testing.T) {
	// The body cap must admit a full machine file (the conflict case
	// posts one) while staying cheap to overflow with a plain string.
	ts := newServerWith(t, Options{MaxBodyBytes: 4 << 20, MaxBlockInstrs: 4, JobWorkers: -1, MaxJobs: 1, MaxSweepVariants: 4})

	do := func(method, path, body string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Occupy the single job slot so a second distinct job trips the cap.
	if resp, body := do("POST", "/v1/jobs", `{"requests":[{"arch":"zen4","asm":"\taddq $1, %rax\n"}]}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("priming job submit = %d %s", resp.StatusCode, body)
	}
	// Occupy a registry key with known content so conflicting content 409s.
	wire := machineJSON(t, customModel(t, "envelope-conflict"))
	if resp, body := do("POST", "/v1/models", string(wire)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("priming model registration = %d %s", resp.StatusCode, body)
	}
	conflict := customModel(t, "envelope-conflict")
	conflict.ROBSize++
	if err := conflict.Reindex(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name         string
		method, path string
		body         string
		status       int
		code         ErrorCode
	}{
		{"malformed body", "POST", "/v1/analyze", `{garbage`, 400, CodeInvalidRequest},
		{"missing asm", "POST", "/v1/analyze", `{"arch":"zen4"}`, 400, CodeInvalidRequest},
		{"bad limit param", "GET", "/v1/models?limit=-1", "", 400, CodeInvalidRequest},
		{"unknown arch on analyze", "POST", "/v1/analyze", `{"arch":"m99","asm":"\tnop\n"}`, 400, CodeModelNotFound},
		{"unknown model export", "GET", "/v1/models/m99", "", 404, CodeModelNotFound},
		{"oversized body", "POST", "/v1/analyze", `{"arch":"zen4","asm":"` + strings.Repeat("A", 4<<20) + `"}`, 413, CodeBodyTooLarge},
		{"oversized block", "POST", "/v1/analyze", `{"arch":"zen4","asm":"` + strings.Repeat(`\taddq $1, %rax\n`, 5) + `"}`, 413, CodeBlockTooLarge},
		{"model conflict", "POST", "/v1/models", string(machineJSON(t, conflict)), 409, CodeModelConflict},
		{"oversized sweep", "POST", "/v1/sweep", `{"arch":"zen4","axes":[{"param":"tdp_watts","values":[1,2,3,4,5]}]}`, 413, CodeSweepTooLarge},
		{"bad sweep param", "POST", "/v1/sweep", `{"arch":"zen4","axes":[{"param":"magic","values":[1]}]}`, 400, CodeInvalidRequest},
		{"unknown job", "GET", "/v1/jobs/feed", "", 404, CodeJobNotFound},
		{"job cap", "POST", "/v1/jobs", `{"requests":[{"arch":"zen4","asm":"\taddq $2, %rax\n"}]}`, 507, CodeQueueFull},
		{"bad store hash", "GET", "/v1/store/not-a-hash", "", 400, CodeInvalidRequest},
		// This test server runs without a persistent store, so a
		// well-formed peer fetch is answered 503 store_unavailable.
		{"store unavailable", "GET", "/v1/store/" + strings.Repeat("a", 64), "", 503, CodeStoreUnavailable},
		{"store unavailable put", "PUT", "/v1/store/" + strings.Repeat("a", 64), "{}", 503, CodeStoreUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := do(tc.method, tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.status, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("response is not the unified envelope: %s (%v)", body, err)
			}
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q; body %s", env.Error.Code, tc.code, body)
			}
			if env.Error.Message == "" {
				t.Fatalf("empty message: %s", body)
			}
			if env.Error.RequestID == "" || env.Error.RequestID != resp.Header.Get("X-Request-Id") {
				t.Fatalf("request_id %q does not match X-Request-Id %q",
					env.Error.RequestID, resp.Header.Get("X-Request-Id"))
			}
		})
	}

	// Codes no cheap live request against this server can produce keep
	// their pinned statuses via classify — the same mapping writeError
	// uses. (store_entry_not_found is exercised live with an attached
	// store by TestPeerStoreGetEnvelope, internal by
	// TestRecoverMiddleware.)
	for _, tc := range []struct {
		err    error
		status int
		code   ErrorCode
	}{
		{apiErrorf(CodeAnalysisTimeout, http.StatusServiceUnavailable, "x"), 503, CodeAnalysisTimeout},
		{apiErrorf(CodeRegistryFull, http.StatusInsufficientStorage, "x"), 507, CodeRegistryFull},
		{apiErrorf(CodeStoreEntryNotFound, http.StatusNotFound, "x"), 404, CodeStoreEntryNotFound},
		{apiErrorf(CodeInternal, http.StatusInternalServerError, "x"), 500, CodeInternal},
	} {
		if status, code := classify(tc.err); status != tc.status || code != tc.code {
			t.Errorf("classify(%s) = %d/%s, want %d/%s", tc.code, status, code, tc.status, tc.code)
		}
	}
}

// TestRequestIDEcho pins the middleware: a well-formed client ID is
// echoed verbatim, a hostile one is replaced, and an absent one is
// generated — on success responses too, not only errors.
func TestRequestIDEcho(t *testing.T) {
	ts := newTestServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-42.alpha_7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-42.alpha_7" {
		t.Errorf("well-formed ID not echoed: %q", got)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "evil\tid with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.ContainsAny(got, " \t") {
		t.Errorf("hostile ID echoed or missing: %q", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("no generated ID on a bare request")
	}
}

// TestModelsPagination pins limit/offset/arch behavior of GET /v1/models.
func TestModelsPagination(t *testing.T) {
	ts := newTestServer(t)
	get := func(path string) ModelList {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		var list ModelList
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return list
	}

	all := get("/v1/models")
	if all.Total < 2 || len(all.Models) != all.Total {
		t.Fatalf("unpaginated listing = %d models, total %d", len(all.Models), all.Total)
	}

	page := get("/v1/models?limit=1&offset=1")
	if len(page.Models) != 1 || page.Total != all.Total {
		t.Fatalf("page = %d models, total %d (want 1, %d)", len(page.Models), page.Total, all.Total)
	}
	if page.Models[0].Key != all.Models[1].Key {
		t.Errorf("offset=1 returned %s, want %s", page.Models[0].Key, all.Models[1].Key)
	}

	// Offset past the end: empty page, total intact.
	tail := get("/v1/models?offset=10000")
	if len(tail.Models) != 0 || tail.Total != all.Total {
		t.Fatalf("past-the-end page = %+v", tail)
	}

	// Dialect-family filter and exact-key filter.
	x86 := get("/v1/models?arch=x86")
	if x86.Total == 0 || x86.Total == all.Total {
		t.Fatalf("x86 filter total = %d of %d", x86.Total, all.Total)
	}
	for _, m := range x86.Models {
		if m.Dialect != "x86" {
			t.Errorf("x86 filter leaked %s (%s)", m.Key, m.Dialect)
		}
	}
	one := get("/v1/models?arch=goldencove")
	if one.Total != 1 || one.Models[0].Key != "goldencove" {
		t.Fatalf("key filter = %+v", one)
	}

	// Filter + pagination compose: total counts matches, not the page.
	fp := get("/v1/models?arch=x86&limit=1")
	if len(fp.Models) != 1 || fp.Total != x86.Total {
		t.Fatalf("filtered page = %d models, total %d (want 1, %d)", len(fp.Models), fp.Total, x86.Total)
	}
}
