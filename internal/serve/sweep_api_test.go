package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"incore/internal/sweep"
)

const sweepAsm = "\tvmovapd (%rdi,%rax,8), %ymm0\n\tvaddpd (%rsi,%rax,8), %ymm0, %ymm0\n\tvmovapd %ymm0, (%rdx,%rax,8)\n\taddq $4, %rax\n\tcmpq %rcx, %rax\n\tjb .L1\n"

// TestSweepEndpoint pins POST /v1/sweep: explicit blocks, a node-only
// axis pair, the full result shape, and the artifact-sharing observable
// (one distinct port signature across all variants).
func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t)
	req := SweepRequest{
		Arch: "zen4",
		Axes: []SweepAxis{
			{Param: "mem_bandwidth_gbs", Values: []float64{60, 120}},
			{Param: "tdp_watts", Values: []float64{200, 280}},
		},
		Blocks: []SweepBlock{{Name: "vadd", Asm: sweepAsm}},
	}
	resp, body := post(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var res sweep.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding result: %v\n%s", err, body)
	}
	if res.Base != "zen4" || res.BaseCacheKey != "zen4" {
		t.Errorf("base = %s (%s), want zen4", res.Base, res.BaseCacheKey)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("%d variants, want 4", len(res.Variants))
	}
	if res.DistinctSignatures != 1 {
		t.Errorf("node-only sweep: %d distinct signatures, want 1", res.DistinctSignatures)
	}
	for _, v := range res.Variants {
		if v.TotalCycles <= 0 || len(v.Predictions) != 1 {
			t.Errorf("variant %d: implausible row %+v", v.Index, v)
		}
		if !strings.HasPrefix(v.CacheKey, "zen4@") {
			t.Errorf("variant %d: cache key %q does not carry a fingerprint", v.Index, v.CacheKey)
		}
	}
	if len(res.Fronts) == 0 {
		t.Error("no Pareto fronts in response")
	}

	// An identical sweep re-served is all-warm: the rows were stored.
	resp, body = post(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second sweep status = %d: %s", resp.StatusCode, body)
	}
	var res2 sweep.Result
	if err := json.Unmarshal(body, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Cold != 0 || res2.Warm != res.Warm+res.Cold {
		t.Errorf("second sweep: %d warm / %d cold, want %d warm / 0 cold",
			res2.Warm, res2.Cold, res.Warm+res.Cold)
	}
}

// TestSweepEndpointDefaultsToSuite: omitting blocks sweeps the kernel
// validation suite of the model's architecture.
func TestSweepEndpointDefaultsToSuite(t *testing.T) {
	ts := newTestServer(t)
	req := SweepRequest{
		Arch: "goldencove",
		Axes: []SweepAxis{{Param: "mem_bandwidth_gbs", Values: []float64{100, 200}}},
	}
	resp, body := post(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var res sweep.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) < 13 {
		t.Errorf("suite sweep covered %d blocks, want the full suite", len(res.Blocks))
	}
	if len(res.Variants) != 2 {
		t.Errorf("%d variants, want 2", len(res.Variants))
	}
}

// TestSweepEndpointCustomModelNeedsBlocks: a custom machine has no
// kernel suite, so a block-less sweep is a clear client error.
func TestSweepEndpointCustomModelNeedsBlocks(t *testing.T) {
	ts := newTestServer(t)
	m := customModel(t, "sweep-custom")
	resp, body := post(t, ts, "/v1/sweep", map[string]any{
		"machine": json.RawMessage(machineJSON(t, m)),
		"axes":    []SweepAxis{{Param: "rob_size", Values: []float64{64, 128}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
}

// TestMetricsEndpoint pins /metrics: Prometheus text format carrying the
// health counters, including the sweep tier's.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Generate some traffic so counters are live.
	if resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "zen4", Asm: sweepAsm}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		"incore_models ",
		"incore_cache_misses_total ",
		"incore_compiled_programs ",
		"incore_compiled_compiles_total ",
		"incore_jobs_depth ",
		"incore_sweep_sweeps_total ",
		"incore_sweep_rejected_too_large_total ",
		"# TYPE incore_cache_hits_total counter",
		"# TYPE incore_jobs_depth gauge",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
	// This test server has no persistent store attached: no store series.
	if strings.Contains(text, "incore_store_") {
		t.Error("store series rendered without an attached store")
	}
}
