package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"incore/internal/pipeline"
	"incore/internal/store"
)

// Request-ID middleware: every request gets an ID — the client's
// X-Request-Id when it sends a well-formed one, a generated one
// otherwise — echoed on the response header, injected into the error
// envelope, and stamped on the access-log line. A job submitted under
// one request ID can be traced from submission through every poll to
// the log, end to end.

type ctxKey int

const requestIDKey ctxKey = 0

// maxRequestIDLen bounds an accepted client request ID; anything longer
// (or containing bytes outside the log-safe set) is replaced, not
// echoed — a header is hostile input like any other.
const maxRequestIDLen = 64

// requestIDFrom returns the request's ID, or "" outside a request.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts IDs built from log- and header-safe bytes.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// newRequestID generates a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the access log and
// whether anything was written yet (the recover middleware may only
// send its envelope on a still-pristine response).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// withRecover converts a handler panic into a 500 internal envelope
// with the stack in the log, so one poisoned request cannot take the
// connection (or, under some panics, the process's goroutine budget)
// down with it. http.ErrAbortHandler keeps its net/http meaning.
// Runs inside withRequestID, so the envelope carries the request ID.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			logger := s.accessLog
			if logger == nil {
				logger = log.Default()
			}
			logger.Printf("panic serving %s %s rid=%s: %v\n%s",
				r.Method, r.URL.Path, requestIDFrom(r.Context()), p, debug.Stack())
			if !sw.wrote {
				writeError(sw, r, apiErrorf(CodeInternal, http.StatusInternalServerError,
					"internal server error"))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// withRequestID wraps the route table with ID assignment and, when an
// access logger is configured, one line per request: method, path,
// status, duration, request ID, and the persistent store's warm/cold
// lookup delta over the request window (approximate under concurrent
// traffic, exact when requests are serialized — see store.Stats.Sub).
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		if s.accessLog == nil {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		var before store.Stats
		st := pipeline.PersistentStore()
		if st != nil {
			before = st.Stats()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		var warm, cold, remote uint64
		if st != nil {
			d := st.Stats().Sub(before)
			warm, cold, remote = d.Warm(), d.Misses, d.RemoteHits
		}
		s.accessLog.Printf("%s %s status=%d dur=%s rid=%s warm=%d cold=%d remote=%d",
			r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond), id, warm, cold, remote)
	})
}
