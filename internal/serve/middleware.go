package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"incore/internal/pipeline"
	"incore/internal/store"
)

// Request-ID middleware: every request gets an ID — the client's
// X-Request-Id when it sends a well-formed one, a generated one
// otherwise — echoed on the response header, injected into the error
// envelope, and stamped on the access-log line. A job submitted under
// one request ID can be traced from submission through every poll to
// the log, end to end.

type ctxKey int

const requestIDKey ctxKey = 0

// maxRequestIDLen bounds an accepted client request ID; anything longer
// (or containing bytes outside the log-safe set) is replaced, not
// echoed — a header is hostile input like any other.
const maxRequestIDLen = 64

// requestIDFrom returns the request's ID, or "" outside a request.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts IDs built from log- and header-safe bytes.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// newRequestID generates a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withRequestID wraps the route table with ID assignment and, when an
// access logger is configured, one line per request: method, path,
// status, duration, request ID, and the persistent store's warm/cold
// lookup delta over the request window (approximate under concurrent
// traffic, exact when requests are serialized — see store.Stats.Sub).
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		if s.accessLog == nil {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		var before store.Stats
		st := pipeline.PersistentStore()
		if st != nil {
			before = st.Stats()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		var warm, cold uint64
		if st != nil {
			d := st.Stats().Sub(before)
			warm, cold = d.Warm(), d.Misses
		}
		s.accessLog.Printf("%s %s status=%d dur=%s rid=%s warm=%d cold=%d",
			r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond), id, warm, cold)
	})
}
