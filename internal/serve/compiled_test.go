package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"incore/internal/pipeline"
)

// TestHealthzReportsCompiledTier pins the compiled-artifact accounting on
// /healthz: after two analyze requests with identical text under
// different names, the block parse cache holds one entry and the second
// request registered as a warm artifact lookup.
func TestHealthzReportsCompiledTier(t *testing.T) {
	ts := newServerWith(t, Options{JobWorkers: -1})
	before := pipeline.CompiledArtifacts().Stats()

	// Unique text so the shared process-wide cache is cold for this key.
	asm := ".LHZ0:\n\taddq $24, %rax\n\taddq $24, %rbx\n\tcmpq %rcx, %rax\n\tjb .LHZ0\n"
	post := func(name string) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"arch": "zen4", "name": name, "asm": asm})
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %s: status %d", name, resp.StatusCode)
		}
	}
	post("first")
	post("second")

	var h HealthResponse
	getJSON(t, ts, "/healthz", &h)
	if grew := h.Compiled.Blocks - before.Blocks; grew != 1 {
		t.Errorf("parsed-block entries grew by %d; want 1 (two names, one text)", grew)
	}
	if h.Compiled.Hits+h.Compiled.Attaches <= before.Hits+before.Attaches {
		t.Error("second identical request did not register as a warm artifact lookup")
	}
	if h.Compiled.Compiles <= before.Compiles {
		t.Error("cold request did not register a compile")
	}
	if h.Compiled.BytesEstimated <= before.BytesEstimated {
		t.Error("cached block did not add to the byte estimate")
	}
}

// TestAnalyzeNamesIndependentOfParseCache pins that the parse cache never
// leaks one request's name into another's response.
func TestAnalyzeNamesIndependentOfParseCache(t *testing.T) {
	ts := newServerWith(t, Options{JobWorkers: -1})
	asm := ".LNM0:\n\tsubq $16, %rax\n\tcmpq %rbx, %rax\n\tja .LNM0\n"
	for _, name := range []string{"wanted-one", "wanted-two", "wanted-one"} {
		body, _ := json.Marshal(map[string]string{"arch": "goldencove", "name": name, "asm": asm})
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ar AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %s: status %d", name, resp.StatusCode)
		}
		if ar.Name != name {
			t.Errorf("response name = %q; want %q (parse cache must not leak names)", ar.Name, name)
		}
	}
}
