package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"incore/internal/pipeline"
	"incore/internal/sweep"
	"incore/internal/uarch"
)

// DefaultMaxSweepVariants bounds one sweep request's cross-product. A
// sweep is the API's most expensive verb — every variant re-runs every
// block — so the cap is enforced on the *declared* product before a
// single model is cloned: a hostile request costs arithmetic, not
// memory. Over-cap requests get 413 sweep_too_large.
const DefaultMaxSweepVariants = 4096

// SweepRequest asks for a design-space sweep: a base machine model, a
// set of parameter axes, and optionally explicit blocks to sweep
// (defaulting to the architecture's kernel validation suite).
type SweepRequest struct {
	// Arch / Machine select the base model exactly as in AnalyzeRequest:
	// a registered key, or an inline machine file used for this request
	// only.
	Arch    string          `json:"arch,omitempty"`
	Machine json.RawMessage `json:"machine,omitempty"`
	// Axes declares the swept parameters (see sweep.Params for the
	// vocabulary). Order and duplicate values are irrelevant: axes are
	// canonicalized, so equal ranges always produce the identical
	// variant grid — and identical cache keys.
	Axes []SweepAxis `json:"axes"`
	// Blocks optionally restricts the sweep to explicit assembly blocks.
	// Empty means the full kernel validation suite for the model's
	// architecture (built-in models only; custom machines must send
	// blocks).
	Blocks []SweepBlock `json:"blocks,omitempty"`
}

// SweepAxis is one swept parameter range on the wire.
type SweepAxis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// SweepBlock is one explicit block to sweep.
type SweepBlock struct {
	Name string `json:"name,omitempty"`
	Asm  string `json:"asm"`
}

// handleSweep runs POST /v1/sweep. The response body is the sweep.Result
// JSON: the canonical axes, one row per variant (predictions, cache key,
// port signature, warm/cold provenance), and the derived Pareto fronts.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	m, err := s.resolveModel(&AnalyzeRequest{Arch: req.Arch, Machine: req.Machine})
	if err != nil {
		writeError(w, r, err)
		return
	}
	axes := make([]sweep.Axis, len(req.Axes))
	for i, a := range req.Axes {
		axes[i] = sweep.Axis{Param: a.Param, Values: a.Values}
	}
	canon, err := sweep.Canonicalize(axes)
	if err != nil {
		writeError(w, r, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err))
		return
	}
	// Enforce the cap on the declared product before any cloning; the
	// request has cost nothing yet beyond parsing its own body.
	if max := s.opt.MaxSweepVariants; max > 0 {
		if n := sweep.Count(canon); n > max {
			sweep.CountRejected()
			writeError(w, r, apiErrorf(CodeSweepTooLarge, http.StatusRequestEntityTooLarge,
				"sweep cross-product of %d variants exceeds the cap of %d", n, max))
			return
		}
	}
	blocks, err := s.sweepBlocks(m, req.Blocks)
	if err != nil {
		writeError(w, r, err)
		return
	}
	res, err := sweep.Run(m, canon, blocks, sweep.Options{Analyzer: s.an})
	if err != nil {
		writeError(w, r, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// sweepBlocks resolves a sweep request's work set: explicit blocks parse
// through the shared artifact cache under the instruction cap, an empty
// list selects the architecture's kernel validation suite.
func (s *Server) sweepBlocks(m *uarch.Model, reqBlocks []SweepBlock) ([]sweep.Block, error) {
	if len(reqBlocks) == 0 {
		blocks, err := sweep.SuiteBlocks(m.Key)
		if err != nil {
			return nil, apiErrorf(CodeInvalidRequest, http.StatusBadRequest,
				"no kernel suite for model %q (%v); send explicit blocks", m.Key, err)
		}
		return blocks, nil
	}
	out := make([]sweep.Block, 0, len(reqBlocks))
	for i, sb := range reqBlocks {
		if sb.Asm == "" {
			return nil, apiErrorf(CodeInvalidRequest, http.StatusBadRequest, "block %d: missing asm", i)
		}
		name := sb.Name
		if name == "" {
			name = fmt.Sprintf("block%d", i)
		}
		b, err := pipeline.ParseRequestBlock(name, m.Key, m.Dialect, sb.Asm)
		if err != nil {
			return nil, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err)
		}
		if n := len(b.Instrs); n > s.opt.MaxBlockInstrs {
			return nil, apiErrorf(CodeBlockTooLarge, http.StatusRequestEntityTooLarge,
				"block %q has %d instructions, limit is %d", name, n, s.opt.MaxBlockInstrs)
		}
		out = append(out, sweep.Block{Name: name, B: b})
	}
	return out, nil
}
