package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incore/internal/pipeline"
	"incore/internal/remotestore"
	"incore/internal/store"
)

// withPeerStore swaps in a fresh memo cache and a persistent store over
// dir for the duration of the test, so the peer-store handlers (which
// read the pipeline's process-global store) see an isolated one.
func withPeerStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Schema: pipeline.StoreSchema()})
	if err != nil {
		t.Fatal(err)
	}
	oldC, oldSt := pipeline.SwapTiers(pipeline.NewCache(), st)
	t.Cleanup(func() { pipeline.SwapTiers(oldC, oldSt) })
	return st
}

// TestPeerStoreRoundTrip drives the peer endpoints with the real
// remotestore client: a PUT through the handler lands in the local
// store, a GET serves it back verified, and a GET for an absent hash is
// an authoritative 404 that costs the client no retries.
func TestPeerStoreRoundTrip(t *testing.T) {
	st := withPeerStore(t, t.TempDir())
	ts := newTestServer(t)

	c, err := remotestore.New(remotestore.Options{
		BaseURL: ts.URL, Schema: pipeline.StoreSchema(), Retries: -1, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key, payload := "analyze\x00zen4\x00some-block", []byte(`{"prediction":2.5}`)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty peer")
	}
	c.Put(key, payload)
	if !c.Flush(2 * time.Second) {
		t.Fatal("write-behind queue never drained")
	}
	// The PUT landed locally on the peer (PutLocal: no re-forwarding).
	if got, ok := st.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("peer store after PUT = %q, %v", got, ok)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	cs := c.Stats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Errors != 0 || cs.Retries != 0 {
		t.Fatalf("client stats = %+v; want one verified hit, one clean miss", cs)
	}
}

// TestPeerStoreGetEnvelope pins GET error shapes: a malformed hash is
// 400, an absent entry is 404 store_entry_not_found — both in the
// unified envelope.
func TestPeerStoreGetEnvelope(t *testing.T) {
	withPeerStore(t, t.TempDir())
	ts := newTestServer(t)

	for _, tc := range []struct {
		path   string
		status int
		code   ErrorCode
	}{
		{"/v1/store/nothex", http.StatusBadRequest, CodeInvalidRequest},
		{"/v1/store/" + strings.Repeat("a", 64), http.StatusNotFound, CodeStoreEntryNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("GET %s status = %d, want %d; body %s", tc.path, resp.StatusCode, tc.status, body)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != tc.code {
			t.Fatalf("GET %s envelope = %s (err %v), want code %s", tc.path, body, err, tc.code)
		}
		if env.Error.RequestID == "" {
			t.Fatalf("GET %s envelope missing request_id: %s", tc.path, body)
		}
	}
}

// TestPeerStorePutRejectsDamage: a write whose body fails the verify
// chain — wrong address, corrupted payload, garbage — is a 400 and
// never lands in the store.
func TestPeerStorePutRejectsDamage(t *testing.T) {
	st := withPeerStore(t, t.TempDir())
	ts := newTestServer(t)

	key, payload := "k", []byte("payload bytes")
	good, err := remotestore.EncodeEntry(pipeline.StoreSchema(), key, payload)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Clone(good)
	at := bytes.Index(corrupted, []byte(`"payload":"`)) + len(`"payload":"`)
	corrupted[at] ^= 0x01

	hash := remotestore.KeyHash(key)
	cases := map[string]struct {
		hash string
		body []byte
	}{
		"wrong address":     {remotestore.KeyHash("other"), good},
		"corrupted payload": {hash, corrupted},
		"truncated":         {hash, good[:len(good)/2]},
		"garbage":           {hash, []byte("not an envelope")},
		"wrong schema":      {hash, mustEncodeEntry(t, pipeline.StoreSchema()+1, key, payload)},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/store/"+tc.hash, bytes.NewReader(tc.body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
			}
		})
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("a damaged PUT landed in the store")
	}
	if _, ok := st.Get("other"); ok {
		t.Fatal("a mis-addressed PUT landed in the store")
	}
	// A clean PUT still works after the hostile ones.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/store/"+hash, bytes.NewReader(good))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("clean PUT status = %d, want 204", resp.StatusCode)
	}
	if got, ok := st.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("store after clean PUT = %q, %v", got, ok)
	}
}

func mustEncodeEntry(t *testing.T, schema int, key string, payload []byte) []byte {
	t.Helper()
	b, err := remotestore.EncodeEntry(schema, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecoverMiddleware pins the panic contract: a panicking handler
// yields a 500 internal envelope with the request ID, the stack reaches
// the log, and the server keeps serving.
func TestRecoverMiddleware(t *testing.T) {
	var logBuf bytes.Buffer
	s, err := NewWithOptions(Options{JobWorkers: -1, AccessLog: log.New(&logBuf, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	ts := httptest.NewServer(s.withRequestID(s.withRecover(mux)))
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest("GET", ts.URL+"/boom", nil)
	req.Header.Set("X-Request-Id", "trace-boom")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("panic response is not the envelope: %s (%v)", body, err)
	}
	if env.Error.Code != CodeInternal || env.Error.RequestID != "trace-boom" {
		t.Fatalf("envelope = %+v", env.Error)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "handler exploded") || !strings.Contains(logged, "trace-boom") {
		t.Fatalf("panic not logged with request ID: %q", logged)
	}
	if !strings.Contains(logged, "peerstore_test") && !strings.Contains(logged, "goroutine") {
		t.Fatalf("no stack in the panic log: %q", logged)
	}

	// The server is still alive for the next request.
	resp2, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second panic status = %d", resp2.StatusCode)
	}
}

// TestHealthzReportsRemoteTier: with a remotestore client attached to
// the store, /healthz carries the remote block including breaker state.
func TestHealthzReportsRemoteTier(t *testing.T) {
	st := withPeerStore(t, t.TempDir())

	// Peer that is simply another healthy server-less endpoint: a second
	// store would be overkill — an always-404 peer exercises the stats
	// path just as well.
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"store_entry_not_found"}}`, http.StatusNotFound)
	}))
	t.Cleanup(peer.Close)
	rc, err := remotestore.New(remotestore.Options{BaseURL: peer.URL, Schema: pipeline.StoreSchema(), Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)
	st.SetRemote(rc)

	ts := newTestServer(t)
	// One remote-tier miss so the counters are non-trivial.
	st.Get("never-stored")

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Remote == nil {
		t.Fatal("healthz missing remote block with a peer attached")
	}
	if health.Remote.Breaker != remotestore.BreakerClosed || health.Remote.Misses != 1 {
		t.Fatalf("remote block = %+v; want closed breaker, one miss", health.Remote)
	}
	if health.Store == nil || health.Store.Misses != 1 {
		t.Fatalf("store block = %+v", health.Store)
	}
}
