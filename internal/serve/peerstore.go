package serve

import (
	"io"
	"net/http"

	"incore/internal/pipeline"
	"incore/internal/remotestore"
	"incore/internal/store"
)

// Peer store endpoints: the server side of the remote cache tier.
//
//	GET /v1/store/{hash}  fetch one entry        → wire envelope (200)
//	PUT /v1/store/{hash}  write-behind one entry → 204
//
// {hash} is the lowercase hex SHA-256 of the store key (the content
// address remotestore.Client computes). Entries travel as the
// self-verifying wire envelope (remotestore.EncodeEntry): version,
// schema stamp, the full key, and the payload next to its own SHA-256.
// Both directions verify before trusting — the GET side lets the client
// discard damage, and the PUT handler re-derives the address and the
// payload hash from the body so a corrupt or mis-addressed upload can
// never land in the local store.
//
// A miss is 404 store_entry_not_found: an authoritative, healthy
// answer, not a failure (peers must not retry it or count it against
// the circuit breaker). A server running without -cache-dir answers
// 503 store_unavailable.

// handlePeerGet serves one store entry by content address from the
// pipeline's store; servePeerGet carries the logic so tests can back
// the endpoint with an arbitrary store.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	servePeerGet(pipeline.PersistentStore(), w, r)
}

func servePeerGet(st *store.Store, w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !remotestore.ValidHash(hash) {
		writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest,
			"invalid store hash %q: want 64 lowercase hex chars", hash))
		return
	}
	if st == nil {
		writeError(w, r, apiErrorf(CodeStoreUnavailable, http.StatusServiceUnavailable,
			"this server runs without a persistent store"))
		return
	}
	key, payload, ok := st.GetByHash(hash)
	if !ok {
		writeError(w, r, apiErrorf(CodeStoreEntryNotFound, http.StatusNotFound,
			"no store entry for %s", hash))
		return
	}
	body, err := remotestore.EncodeEntry(pipeline.StoreSchema(), key, payload)
	if err != nil {
		writeError(w, r, wrapAPIError(CodeInternal, http.StatusInternalServerError, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handlePeerPut accepts one write-behind entry. The body must be a wire
// envelope whose derived address matches {hash} and whose payload
// matches its embedded hash — anything else is a 400, never a write.
// Accepted entries land in the local tiers only (PutLocal): forwarding
// them back out the remote tier would ping-pong entries between peers.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	servePeerPut(pipeline.PersistentStore(), s.opt.MaxBodyBytes, w, r)
}

func servePeerPut(st *store.Store, maxBody int64, w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !remotestore.ValidHash(hash) {
		writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest,
			"invalid store hash %q: want 64 lowercase hex chars", hash))
		return
	}
	if st == nil {
		writeError(w, r, apiErrorf(CodeStoreUnavailable, http.StatusServiceUnavailable,
			"this server runs without a persistent store"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeError(w, r, err)
		return
	}
	key, payload, err := remotestore.DecodeVerify(body, hash, pipeline.StoreSchema())
	if err != nil {
		writeError(w, r, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err))
		return
	}
	st.PutLocal(key, payload)
	w.WriteHeader(http.StatusNoContent)
}
