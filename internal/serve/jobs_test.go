package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"incore/internal/jobqueue"
)

// newJobServer builds a Server (not just its httptest wrapper) so tests
// can close it explicitly to simulate shutdown/restart over one JobsDir.
func newJobServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	api, err := NewWithOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(api.Close)
	return api, ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return resp
}

// pollJob polls GET /v1/jobs/{id} until the job reaches want.
func pollJob(t *testing.T, ts *httptest.Server, id string, want jobqueue.JobState) jobqueue.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view jobqueue.JobView
		resp := getJSON(t, ts, "/v1/jobs/"+id, &view)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if view.State == want {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s: %+v", id, view.State, want, view)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// jobBatch builds a batch whose blocks are unique to tag, so nothing in
// the process-wide memo cache from other tests can satisfy them.
func jobBatch(tag string, n int) BatchRequest {
	reqs := make([]AnalyzeRequest, n)
	for i := range reqs {
		reqs[i] = AnalyzeRequest{
			Arch: "goldencove",
			Asm:  fmt.Sprintf(".L0:\n\taddq $%s%d, %%rax\n\tcmpq %%rbx, %%rax\n\tjb .L0\n", tag, i),
			Name: fmt.Sprintf("job-%s-%d", tag, i),
		}
	}
	return BatchRequest{Requests: reqs}
}

func TestJobSubmitPollDedupe(t *testing.T) {
	_, ts := newJobServer(t, Options{JobsDir: t.TempDir(), JobWorkers: 2})
	tag := fmt.Sprintf("%d", time.Now().UnixNano())
	batch := jobBatch(tag, 3)

	resp, body := post(t, ts, "/v1/jobs", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || !sub.Created || sub.Total != 3 {
		t.Fatalf("submit response = %+v", sub)
	}

	done := pollJob(t, ts, sub.ID, jobqueue.StateCompleted)
	if done.Completed != 3 || done.Failed != 0 {
		t.Fatalf("job = %+v", done)
	}
	for i, it := range done.Items {
		var ar AnalyzeResponse
		if err := json.Unmarshal(it.Result, &ar); err != nil {
			t.Fatalf("item %d result: %v", i, err)
		}
		if ar.Name != batch.Requests[i].Name || ar.Prediction <= 0 {
			t.Fatalf("item %d analysis = %+v", i, ar)
		}
	}

	// Resubmitting identical content: 200, created=false, same ID.
	resp2, body2 := post(t, ts, "/v1/jobs", batch)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dedupe status = %d, body %s", resp2.StatusCode, body2)
	}
	var sub2 JobSubmitResponse
	if err := json.Unmarshal(body2, &sub2); err != nil {
		t.Fatal(err)
	}
	if sub2.Created || sub2.ID != sub.ID {
		t.Fatalf("dedupe response = %+v, want created=false id=%s", sub2, sub.ID)
	}

	// The listing carries it; a state filter narrows.
	var list JobListResponse
	getJSON(t, ts, "/v1/jobs", &list)
	if list.Total != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("listing = %+v", list)
	}
	getJSON(t, ts, "/v1/jobs?state=pending", &list)
	if list.Total != 0 {
		t.Fatalf("pending filter = %+v", list)
	}
}

func TestJobItemErrorIsolation(t *testing.T) {
	_, ts := newJobServer(t, Options{JobsDir: t.TempDir(), JobWorkers: 2})
	tag := fmt.Sprintf("%d", time.Now().UnixNano())
	batch := jobBatch(tag, 2)
	batch.Requests = append(batch.Requests, AnalyzeRequest{Arch: "nosucharch", Asm: "\tnop\n"})

	_, body := post(t, ts, "/v1/jobs", batch)
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, ts, sub.ID, jobqueue.StateCompleted)
	if done.Completed != 2 || done.Failed != 1 {
		t.Fatalf("job = %+v, want 2 done / 1 failed", done)
	}
	bad := done.Items[2]
	if bad.State != jobqueue.ItemError || bad.Code != string(CodeModelNotFound) {
		t.Fatalf("failed item = %+v, want error with code %s", bad, CodeModelNotFound)
	}
}

func TestJobCancel(t *testing.T) {
	// Negative JobWorkers: a submit-only server, so items stay pending
	// and cancellation is deterministic.
	_, ts := newJobServer(t, Options{JobsDir: t.TempDir(), JobWorkers: -1})
	tag := fmt.Sprintf("%d", time.Now().UnixNano())

	_, body := post(t, ts, "/v1/jobs", jobBatch(tag, 3))
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Status != jobqueue.StatePending {
		t.Fatalf("submit status = %s, want pending", sub.Status)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view jobqueue.JobView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d err = %v", resp.StatusCode, err)
	}
	if view.State != jobqueue.StateCancelled || view.Cancelled != 3 {
		t.Fatalf("cancelled job = %+v", view)
	}

	// Cancelling a job that does not exist is a 404 with the job code.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeJobNotFound {
		t.Fatalf("missing-job cancel = %d %+v (err %v)", resp.StatusCode, env, err)
	}
}

// TestJobRestartResume is the tentpole contract end to end at package
// level: a job checkpointed as pending by one server completes on a
// fresh server over the same JobsDir, and items whose analyses are
// already in the process-wide cache land warm — zero recomputation.
func TestJobRestartResume(t *testing.T) {
	jobsDir := t.TempDir()
	tag := fmt.Sprintf("%d", time.Now().UnixNano())
	batch := jobBatch(tag, 4)

	// Warm the cache: run the same blocks through an unrelated
	// memory-only server first (this is "the work the killed server had
	// already stored").
	_, warmTS := newJobServer(t, Options{JobWorkers: -1})
	if resp, body := post(t, warmTS, "/v1/batch", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup batch = %d %s", resp.StatusCode, body)
	}

	// Server one: accept the job, never run it, shut down. This is the
	// restart-resume worst case — every item still pending at the kill.
	api1, ts1 := newJobServer(t, Options{JobsDir: jobsDir, JobWorkers: -1})
	_, body := post(t, ts1, "/v1/jobs", batch)
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	api1.Close()
	ts1.Close()

	// Server two: same JobsDir, workers on. The job resumes without
	// resubmission and every item is answered from cache.
	_, ts2 := newJobServer(t, Options{JobsDir: jobsDir, JobWorkers: 2})
	done := pollJob(t, ts2, sub.ID, jobqueue.StateCompleted)
	if done.Completed != 4 || done.Failed != 0 {
		t.Fatalf("resumed job = %+v", done)
	}
	if done.Warm != 4 || done.Cold != 0 {
		t.Fatalf("resume accounting = warm %d / cold %d, want 4/0 (stored items must not recompute)", done.Warm, done.Cold)
	}
	for i, it := range done.Items {
		if !it.Warm {
			t.Errorf("item %d recomputed on resume", i)
		}
	}

	// The queue depth surfaced in /healthz is drained.
	var h HealthResponse
	getJSON(t, ts2, "/healthz", &h)
	if h.Jobs.Depth != 0 || h.Jobs.Completed < 1 {
		t.Fatalf("healthz jobs = %+v", h.Jobs)
	}
}

func TestJobQueueFullAndBadRequests(t *testing.T) {
	_, ts := newJobServer(t, Options{JobsDir: t.TempDir(), JobWorkers: -1, MaxJobs: 1})
	tag := fmt.Sprintf("%d", time.Now().UnixNano())

	if resp, body := post(t, ts, "/v1/jobs", jobBatch(tag+"a", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d %s", resp.StatusCode, body)
	}
	resp, body := post(t, ts, "/v1/jobs", jobBatch(tag+"b", 1))
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInsufficientStorage || env.Error.Code != CodeQueueFull {
		t.Fatalf("over-cap submit = %d %+v", resp.StatusCode, env)
	}

	// An empty job is invalid, not accepted-and-instantly-complete.
	resp, body = post(t, ts, "/v1/jobs", BatchRequest{})
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != CodeInvalidRequest {
		t.Fatalf("empty submit = %d %+v", resp.StatusCode, env)
	}

	// Unknown state filter on the listing.
	r, err := http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter = %d", r.StatusCode)
	}

	// Polling an unknown job is a 404 with job_not_found.
	r, err = http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(r.Body).Decode(&env)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusNotFound || env.Error.Code != CodeJobNotFound {
		t.Fatalf("unknown job poll = %d %+v (err %v)", r.StatusCode, env, err)
	}
}

// TestJobHammer drives concurrent submits, polls, and cancels through
// the HTTP surface; run under -race by the CI test job.
func TestJobHammer(t *testing.T) {
	_, ts := newJobServer(t, Options{JobsDir: t.TempDir(), JobWorkers: 4})
	tag := fmt.Sprintf("%d", time.Now().UnixNano())

	const workers = 8
	var wg sync.WaitGroup
	ids := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := jobBatch(fmt.Sprintf("%s-%d", tag, w), 2)
			for i := 0; i < 6; i++ {
				resp, body := post(t, ts, "/v1/jobs", batch)
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					t.Errorf("submit status = %d: %s", resp.StatusCode, body)
					return
				}
				var sub JobSubmitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					t.Error(err)
					return
				}
				ids[w] = sub.ID
				r, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
				if err != nil {
					t.Error(err)
					return
				}
				r.Body.Close()
				if w%3 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
					if cr, err := http.DefaultClient.Do(req); err == nil {
						cr.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every surviving (uncancelled) job drains to a terminal state.
	for w, id := range ids {
		if w%3 == 0 {
			continue
		}
		pollJob(t, ts, id, jobqueue.StateCompleted)
	}
}
