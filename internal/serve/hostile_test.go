package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Hostile-input behavior of the serve tier: body caps reject before
// parsing, instruction caps reject before analysis, the analysis
// deadline releases the worker with a 503, and degraded (unknown
// mnemonic) blocks flow through /v1/analyze and /v1/batch with per-item
// isolation intact.

func newServerWith(t *testing.T, opt Options) *httptest.Server {
	t.Helper()
	api, err := NewWithOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestBodySizeCapRejectsWith413(t *testing.T) {
	ts := newServerWith(t, Options{MaxBodyBytes: 1 << 10})
	// An over-limit body must bounce with 413 without being parsed.
	big := `{"arch":"goldencove","asm":"` + strings.Repeat("A", 1<<12) + `"}`
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	// An in-limit body on the same server still works.
	resp2, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "goldencove", Asm: "\taddq $8, %rax\n"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-limit request failed: %d %s", resp2.StatusCode, body)
	}
}

func TestBodySizeCapAppliesToModelRegistration(t *testing.T) {
	ts := newServerWith(t, Options{MaxBodyBytes: 1 << 10})
	resp, err := http.Post(ts.URL+"/v1/models", "application/json",
		strings.NewReader(`{"key":"`+strings.Repeat("k", 1<<12)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestInstructionCapRejectsWith413(t *testing.T) {
	ts := newServerWith(t, Options{MaxBlockInstrs: 8})
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		sb.WriteString("\taddq $1, %rax\n")
	}
	resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "goldencove", Asm: sb.String()})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body: %s", resp.StatusCode, body)
	}
	var eb errorEnvelope
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error.Message, "limit is 8") {
		t.Fatalf("error body = %s", body)
	}
	if eb.Error.Code != CodeBlockTooLarge {
		t.Fatalf("error code = %q, want %q", eb.Error.Code, CodeBlockTooLarge)
	}
	// Exactly at the cap passes.
	resp2, body2 := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "goldencove",
		Asm: strings.Repeat("\taddq $1, %rax\n", 8)})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("at-cap request failed: %d %s", resp2.StatusCode, body2)
	}
}

func TestAnalysisDeadlineReturns503(t *testing.T) {
	// A short deadline with a block slow enough that analysis cannot
	// meet it: many instructions aliasing one address make the
	// loop-carried search superlinear — exactly the pathological shape
	// the deadline exists for. Trivial follow-up requests finish far
	// inside the same deadline, which is what proves the worker was
	// released rather than wedged.
	// 1700 aliasing pairs analyze in high hundreds of milliseconds even on
	// a fast machine — far past the 50ms deadline — while the abandoned
	// background computation still drains within ~a second.
	ts := newServerWith(t, Options{AnalysisTimeout: 50 * time.Millisecond})
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	// A unique immediate keeps the block out of the process-wide memo:
	// the abandoned background computation from a previous run (-count>1)
	// would otherwise serve an instant — and legitimate — cache hit.
	fmt.Fprintf(&sb, "\taddq $%d, %%rax\n", time.Now().UnixNano())
	for i := 0; i < 1700; i++ {
		sb.WriteString("\tvmovsd (%rsi), %xmm0\n\tvmovsd %xmm0, (%rsi)\n")
	}
	sb.WriteString("\tjne .L0\n")
	resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "goldencove", Asm: sb.String()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body: %.200s", resp.StatusCode, body)
	}
	var eb errorEnvelope
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error.Message, "deadline") {
		t.Fatalf("error body = %s", body)
	}
	if eb.Error.Code != CodeAnalysisTimeout {
		t.Fatalf("error code = %q, want %q", eb.Error.Code, CodeAnalysisTimeout)
	}
	// The worker is released, not wedged: a trivial request on the same
	// server answers inside the same deadline.
	resp2, body2 := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "goldencove",
		Asm: "\taddq $1, %rax\n"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("server did not recover after a deadline rejection: %d %s", resp2.StatusCode, body2)
	}
}

func TestDegradedCoverageThroughAnalyze(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{
		Arch: "goldencove",
		Asm:  "\tvmovupd (%rsi), %ymm1\n\tvpmaddubsw %ymm1, %ymm2, %ymm3\n\taddq $4, %rax\n",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	c := ar.Coverage
	if c.Unknown != 1 || c.Exact+c.Fallback != 2 {
		t.Fatalf("coverage = %+v, want 2 covered + 1 unknown", c)
	}
	if len(c.UnknownMnemonics) != 1 || c.UnknownMnemonics[0] != "vpmaddubsw" {
		t.Fatalf("unknown mnemonics = %v", c.UnknownMnemonics)
	}
	if want := 2.0 / 3.0; c.Fraction != want {
		t.Fatalf("fraction = %v, want %v", c.Fraction, want)
	}
	if !strings.Contains(ar.Report, "coverage         :") || !strings.Contains(ar.Report, "vpmaddubsw") {
		t.Fatalf("report missing degradation footer:\n%s", ar.Report)
	}
}

func TestFullCoverageResponseOmitsFooter(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{
		Arch: "goldencove", Asm: "\tvaddpd %ymm1, %ymm2, %ymm3\n",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Coverage.Unknown != 0 || ar.Coverage.Fraction != 1 {
		t.Fatalf("coverage = %+v, want full", ar.Coverage)
	}
	if strings.Contains(ar.Report, "coverage         :") {
		t.Fatalf("full-coverage report carries the degradation footer:\n%s", ar.Report)
	}
}

// Concurrent hammer: many goroutines push mixed batches (clean blocks,
// degraded blocks, outright garbage) through /v1/batch; every response
// must preserve order and per-item isolation, and degraded items must
// carry their coverage.
func TestConcurrentDegradedBatchHammer(t *testing.T) {
	ts := newTestServer(t)
	reqs := []AnalyzeRequest{
		{Arch: "goldencove", Asm: "\tvaddpd %ymm1, %ymm2, %ymm3\n", Name: "clean"},
		{Arch: "goldencove", Asm: "\tvpmaddubsw %ymm1, %ymm2, %ymm3\n", Name: "degraded"},
		{Arch: "goldencove", Asm: "not assembly ((((", Name: "broken"},
		{Arch: "neoversev2", Asm: "\tsha256h q0, q1, v2.4s\n\tfadd d0, d0, d1\n", Name: "degraded-arm"},
		{Arch: "nosucharch", Asm: "\tnop\n", Name: "badarch"},
	}
	const workers = 16
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				resp, body := post(t, ts, "/v1/batch", BatchRequest{Requests: reqs})
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				var br BatchResponse
				if err := json.Unmarshal(body, &br); err != nil {
					errc <- err
					return
				}
				if len(br.Results) != len(reqs) {
					errc <- fmt.Errorf("got %d results, want %d", len(br.Results), len(reqs))
					return
				}
				for i, item := range br.Results {
					name := reqs[i].Name
					wantErr := name == "broken" || name == "badarch"
					if wantErr {
						if item.Error == "" || item.Result != nil {
							errc <- fmt.Errorf("item %s: expected isolated error, got %+v", name, item)
							return
						}
						continue
					}
					if item.Error != "" || item.Result == nil {
						errc <- fmt.Errorf("item %s: unexpected error %q", name, item.Error)
						return
					}
					wantUnknown := strings.HasPrefix(name, "degraded")
					if got := item.Result.Coverage.Unknown > 0; got != wantUnknown {
						errc <- fmt.Errorf("item %s: unknown>0 = %v, want %v", name, got, wantUnknown)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
