package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"incore/internal/jobqueue"
	"incore/internal/pipeline"
)

// The durable async job surface: /v1/batch's submit→wait→answer becomes
// submit→poll, so a suite-sized batch neither holds a connection open
// for the whole run nor dies with the process. Jobs carry the same item
// schema as /v1/batch and route each item through the same bounded
// analysis path (body/instruction caps, analysis deadline, pipeline
// memo + persistent store), so a served job, an interactive batch, and
// batch reproduction share one cache and one determinism contract —
// and a job resumed after a restart finds its already-stored items
// warm instead of recomputing them.

// jobsPayloadVersion stamps persisted job records. It covers the
// request and result encodings embedded in a record (AnalyzeRequest and
// AnalyzeResponse JSON); pipeline.StoreSchema() is folded in below so
// an analyzer-visible schema bump self-evicts stale job records exactly
// like stale store entries.
const jobsPayloadVersion = 1

// jobsSchema is the record schema the serve tier stamps job files with.
func jobsSchema() int {
	return jobsPayloadVersion*100000 + pipeline.StoreSchema()
}

// maxJobItems bounds one job's item count; the request body cap already
// bounds total bytes, this bounds per-item bookkeeping.
const maxJobItems = 4096

// JobSubmitResponse is the 202 (created) or 200 (deduplicated) answer
// to POST /v1/jobs.
type JobSubmitResponse struct {
	// ID is content-derived (SHA-256 of the canonical request items):
	// submitting the same batch twice returns the same ID.
	ID     string            `json:"id"`
	Status jobqueue.JobState `json:"status"`
	Total  int               `json:"total"`
	// Created is false when an identical job already existed and the
	// submission deduplicated onto it.
	Created bool `json:"created"`
}

// JobListResponse is the answer to GET /v1/jobs.
type JobListResponse struct {
	Jobs  []jobqueue.JobView `json:"jobs"`
	Total int                `json:"total"`
}

// handleSubmitJob enqueues a batch for asynchronous execution. Items
// are canonicalized through their decoded form, so two submissions that
// differ only in JSON whitespace or key order dedupe onto one job.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest, "job has no requests"))
		return
	}
	if len(req.Requests) > maxJobItems {
		writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest,
			"job has %d items, limit is %d", len(req.Requests), maxJobItems))
		return
	}
	items := make([]json.RawMessage, len(req.Requests))
	for i := range req.Requests {
		data, err := json.Marshal(req.Requests[i])
		if err != nil {
			writeError(w, r, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err))
			return
		}
		items[i] = data
	}
	view, created, err := s.jobs.Submit(items)
	if err != nil {
		switch {
		case errors.Is(err, jobqueue.ErrQueueFull):
			writeError(w, r, wrapAPIError(CodeQueueFull, http.StatusInsufficientStorage, err))
		case errors.Is(err, jobqueue.ErrClosed):
			writeError(w, r, wrapAPIError(CodeQueueFull, http.StatusServiceUnavailable, err))
		default:
			writeError(w, r, err)
		}
		return
	}
	status := http.StatusAccepted
	if !created {
		status = http.StatusOK
	}
	writeJSON(w, status, JobSubmitResponse{ID: view.ID, Status: view.State, Total: view.Total, Created: created})
}

// handleGetJob reports one job's status and its per-item results as
// they land — a poller sees completed counts and the results array grow
// while the job runs.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, r, apiErrorf(CodeJobNotFound, http.StatusNotFound, "no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleListJobs lists job summaries in submission order, optionally
// filtered by derived state.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	state := jobqueue.JobState(r.URL.Query().Get("state"))
	switch state {
	case "", jobqueue.StatePending, jobqueue.StateRunning, jobqueue.StateCompleted, jobqueue.StateCancelled:
	default:
		writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest,
			"unknown state %q (want pending|running|completed|cancelled)", string(state)))
		return
	}
	views := s.jobs.List(state)
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: views, Total: len(views)})
}

// handleCancelJob cancels a job's pending items; running items finish
// and record their outcome, finished jobs are returned unchanged.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobqueue.ErrNotFound):
		writeError(w, r, wrapAPIError(CodeJobNotFound, http.StatusNotFound, err))
		return
	case errors.Is(err, jobqueue.ErrClosed):
		writeError(w, r, wrapAPIError(CodeQueueFull, http.StatusServiceUnavailable, err))
		return
	case err != nil:
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// runJobItem is the queue's Runner: decode the persisted canonical
// request and route it through exactly the bounded analysis path
// /v1/analyze uses. The warm flag comes from the pipeline's
// resume-accounting hook — true when the memo tier or the persistent
// store answered without a fresh computation — which is what makes a
// resumed job's accounting prove that nothing already stored was
// recomputed.
func (s *Server) runJobItem(raw json.RawMessage) (json.RawMessage, bool, error) {
	var req AnalyzeRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, false, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err)
	}
	resp, warm, err := s.analyzeTracked(req)
	if err != nil {
		return nil, warm, err
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return nil, warm, err
	}
	return data, warm, nil
}
