package serve

// Race coverage for served analyses: concurrent /v1/analyze requests —
// a mix of distinct blocks (each drawing pooled analyzer scratch) and
// repeats (hitting the shared memo tier) — must all return exactly the
// serial answer. Run under -race by the CI test job.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"incore/internal/kernels"
	"incore/internal/uarch"
)

// postAny is a goroutine-safe POST helper (the shared post helper calls
// t.Fatal, which must not run off the test goroutine).
func postAny(url string, body any) (*http.Response, []byte) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func TestConcurrentAnalyzeRequests(t *testing.T) {
	type caseT struct {
		req  AnalyzeRequest
		want AnalyzeResponse
	}
	var cases []caseT
	srv := New()
	for _, arch := range []string{"goldencove", "neoversev2", "zen4"} {
		m := uarch.MustGet(arch)
		for i := range kernels.Kernels {
			b, err := kernels.Generate(&kernels.Kernels[i], kernels.Config{Arch: arch, Compiler: kernels.GCC, Opt: kernels.O3})
			if err != nil {
				t.Fatal(err)
			}
			req := AnalyzeRequest{Arch: m.Key, Asm: b.Text(), Name: b.Name}
			want, err := srv.analyze(req)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, caseT{req: req, want: *want})
		}
	}

	ts := newTestServer(t)
	const workers = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for off := 0; off < len(cases); off++ {
					c := cases[(off+w*5)%len(cases)]
					resp, body := postAny(ts.URL+"/v1/analyze", c.req)
					if resp == nil || resp.StatusCode != http.StatusOK {
						errs <- "non-200 response for " + c.req.Name
						return
					}
					var got AnalyzeResponse
					if err := json.Unmarshal(body, &got); err != nil {
						errs <- "bad response body for " + c.req.Name
						return
					}
					if got.Report != c.want.Report || got.Prediction != c.want.Prediction ||
						got.Bound != c.want.Bound || got.TPBound != c.want.TPBound {
						errs <- "concurrent response differs from serial for " + c.req.Arch + "/" + c.req.Name
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
