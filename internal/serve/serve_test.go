package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	api := New()
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestAnalyzeMatchesOsaca round-trips a suite kernel through the HTTP API
// and checks the service returns exactly what cmd/osaca computes for the
// same input: core.New().Analyze on the parsed block — same prediction,
// same bounds, same rendered report.
func TestAnalyzeMatchesOsaca(t *testing.T) {
	m := uarch.MustGet("goldencove")
	k, err := kernels.ByName("striad")
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.Generate(k, kernels.Config{Arch: m.Key, Compiler: kernels.CompilersFor(m.Key)[0], Opt: kernels.Ofast})
	if err != nil {
		t.Fatal(err)
	}
	asm := b.Text()

	// What cmd/osaca prints: parse the source, analyze directly.
	direct, err := isa.ParseMarkedBlock(b.Name, m.Key, m.Dialect, asm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.New().Analyze(direct, m)
	if err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t)
	resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: m.Key, Asm: asm, Name: b.Name})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got AnalyzeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if got.Prediction != want.Prediction || got.Bound != want.Bound {
		t.Errorf("prediction = %.4f [%s]; osaca gives %.4f [%s]",
			got.Prediction, got.Bound, want.Prediction, want.Bound)
	}
	if got.TPBound != want.TPBound || got.IssueBound != want.IssueBound || got.LCDCycles != want.LCD.Cycles {
		t.Errorf("bounds = tp %.4f issue %.4f lcd %.4f; want tp %.4f issue %.4f lcd %.4f",
			got.TPBound, got.IssueBound, got.LCDCycles, want.TPBound, want.IssueBound, want.LCD.Cycles)
	}
	if got.Report != want.Report() {
		t.Errorf("report differs from osaca's:\n--- serve:\n%s\n--- osaca:\n%s", got.Report, want.Report())
	}
}

// TestAnalyzeHonorsMarkers sends a listing with surrounding boilerplate
// and OSACA markers: only the marked region is analyzed.
func TestAnalyzeHonorsMarkers(t *testing.T) {
	asm := `
	pushq %rbp
	# OSACA-BEGIN
.L0:
	addq $8, %rax
	cmpq %rbx, %rax
	jb .L0
	# OSACA-END
	popq %rbp
`
	ts := newTestServer(t)
	resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Arch: "goldencove", Asm: asm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got AnalyzeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got.Report, "pushq") || !strings.Contains(got.Report, "addq") {
		t.Errorf("marked region not honored; report:\n%s", got.Report)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ts := newTestServer(t)
	for name, tc := range map[string]struct {
		req  AnalyzeRequest
		code ErrorCode
	}{
		"unknownArch": {AnalyzeRequest{Arch: "m1", Asm: "\taddq $8, %rax\n"}, CodeModelNotFound},
		"missingArch": {AnalyzeRequest{Asm: "\taddq $8, %rax\n"}, CodeInvalidRequest},
		"missingAsm":  {AnalyzeRequest{Arch: "zen4"}, CodeInvalidRequest},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/analyze", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
			}
			var e errorEnvelope
			if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
				t.Fatalf("error body %s (err %v)", body, err)
			}
			if e.Error.Code != tc.code {
				t.Fatalf("error code = %q, want %q (body %s)", e.Error.Code, tc.code, body)
			}
			if e.Error.RequestID == "" {
				t.Fatalf("error envelope missing request_id: %s", body)
			}
		})
	}

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
}

// TestBatchMixedResults checks order preservation and per-item failure
// isolation: a bad item reports its error without vetoing the good ones.
func TestBatchMixedResults(t *testing.T) {
	loop := "\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjb .L0\n"
	ts := newTestServer(t)
	resp, body := post(t, ts, "/v1/batch", BatchRequest{Requests: []AnalyzeRequest{
		{Arch: "goldencove", Asm: ".L0:\n" + loop, Name: "good-1"},
		{Arch: "not-a-uarch", Asm: loop},
		{Arch: "goldencove", Asm: ".L0:\n" + loop, Name: "good-2"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(got.Results))
	}
	if got.Results[0].Result == nil || got.Results[0].Result.Name != "good-1" ||
		got.Results[2].Result == nil || got.Results[2].Result.Name != "good-2" {
		t.Errorf("good items missing or misordered: %+v", got.Results)
	}
	if got.Results[1].Error == "" || got.Results[1].Result != nil {
		t.Errorf("bad item must carry an error: %+v", got.Results[1])
	}
	// Identical content under different names: same analysis.
	if a, b := got.Results[0].Result, got.Results[2].Result; a.Prediction != b.Prediction || a.Bound != b.Bound {
		t.Errorf("identical blocks diverged: %+v vs %+v", a, b)
	}
}

func TestModels(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list ModelList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != len(uarch.Keys()) || list.Total != len(uarch.Keys()) {
		t.Fatalf("got %d models (total %d), want %d", len(list.Models), list.Total, len(uarch.Keys()))
	}
	seen := map[string]ModelInfo{}
	for _, mi := range list.Models {
		seen[mi.Key] = mi
	}
	if mi, ok := seen["neoversev2"]; !ok || mi.Dialect != "aarch64" || mi.IssueWidth <= 0 || len(mi.Ports) == 0 {
		t.Errorf("neoversev2 entry wrong or missing: %+v", mi)
	}
	if mi, ok := seen["goldencove"]; !ok || mi.Dialect != "x86" {
		t.Errorf("goldencove entry wrong or missing: %+v", mi)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Models != len(uarch.Keys()) {
		t.Errorf("health = %+v", h)
	}
}

// TestMethodNotAllowed pins the route table: wrong-method requests are
// rejected, not silently routed.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze status = %d, want 405", resp.StatusCode)
	}
}
