// Package serve exposes the in-core analyzer as an HTTP JSON API — the
// interactive, OSACA-style "analyze this block on this uarch" service the
// paper's tooling offers, grown to production shape: requests route
// through the same pipeline memo cache and persistent result store as
// batch reproduction (cmd/repro), so served traffic and reproduction
// share one cache and one determinism contract. Analyzing a block over
// HTTP returns exactly what cmd/osaca prints for the same input.
//
// Endpoints (see API.md for the full request/response contract):
//
//	POST   /v1/analyze       one assembly block         → AnalyzeResponse
//	POST   /v1/batch         many blocks in one call    → BatchResponse
//	POST   /v1/sweep         design-space sweep         → sweep.Result
//	POST   /v1/jobs          enqueue a durable batch    → JobSubmitResponse (202)
//	GET    /v1/jobs/{id}     poll status + results      → jobqueue.JobView
//	GET    /v1/jobs          list jobs (?state=)        → JobListResponse
//	DELETE /v1/jobs/{id}     cancel pending items       → jobqueue.JobView
//	GET    /v1/models        models (?limit/offset/arch)→ ModelList
//	POST   /v1/models        register a machine file    → ModelRegistered
//	GET    /v1/models/{key}  export one machine file    → machine-file JSON
//	GET    /v1/store/{hash}  peer-store fetch           → wire envelope
//	PUT    /v1/store/{hash}  peer-store write-behind    → 204
//	GET    /healthz          liveness + accounting      → HealthResponse
//	GET    /metrics          same accounting, Prometheus text format
//
// Every response echoes an X-Request-Id (client-supplied or generated),
// and every non-2xx response carries the unified error envelope
// {"error":{"code","message","request_id"}} — see errors.go.
//
// Machine models are content-addressed: every model has a fingerprint
// (sha256 of its canonical machine file) and results are cached under
// its uarch.Model.CacheKey, so a registered or inline custom machine can
// never collide with a built-in — or another custom machine — in the
// shared memo cache and persistent store. Analyze/batch requests may
// carry an inline "machine" object instead of naming a registered arch.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/jobqueue"
	"incore/internal/pipeline"
	"incore/internal/remotestore"
	"incore/internal/store"
	"incore/internal/uarch"
)

// Default hostile-input limits; see Options.
const (
	// DefaultMaxBodyBytes bounds a request body; an assembly listing is
	// small, and a bound keeps a malformed client from holding memory
	// hostage. Over-limit bodies are rejected with 413 before parsing.
	DefaultMaxBodyBytes = 4 << 20
	// DefaultMaxBlockInstrs bounds one parsed block. The analyzer is
	// near-linear on realistic code, but adversarial blocks can drive
	// its loop-carried-dependency search superlinear; capping the input
	// keeps the worst case small enough for the analysis deadline.
	DefaultMaxBlockInstrs = 1 << 16
	// DefaultAnalysisTimeout bounds one analysis. Any suite block
	// analyzes in well under a second; a request that cannot finish in
	// this budget is pathological, and the worker is released with a 503
	// rather than wedged.
	DefaultAnalysisTimeout = 30 * time.Second
)

// AnalyzeRequest asks for an in-core analysis of one assembly block.
type AnalyzeRequest struct {
	// Arch selects a registered machine model key (GET /v1/models).
	Arch string `json:"arch,omitempty"`
	// Machine optionally carries an inline JSON machine file to analyze
	// against instead of a registered model. The inline model is used
	// for this request only (it is not registered) and its results are
	// cached under its content fingerprint, so it cannot collide with a
	// registered model sharing its key. When both Arch and Machine are
	// given, Arch must match the machine file's key.
	Machine json.RawMessage `json:"machine,omitempty"`
	// Asm is the assembly listing, in the model's dialect.
	// OSACA/LLVM-MCA/IACA region markers are honored when present.
	Asm string `json:"asm"`
	// Name labels the block in the rendered report. Optional; it does
	// not affect the analysis or its cache key.
	Name string `json:"name,omitempty"`
}

// AnalyzeResponse is the analysis outcome for one block.
type AnalyzeResponse struct {
	Name string `json:"name"`
	Arch string `json:"arch"`
	// Prediction is the lower-bound cycles per block iteration;
	// Bound names the binding constraint ("port", "issue", "lcd").
	Prediction    float64 `json:"prediction"`
	Bound         string  `json:"bound"`
	TPBound       float64 `json:"tp_bound"`
	GreedyTPBound float64 `json:"greedy_tp_bound"`
	IssueBound    float64 `json:"issue_bound"`
	CriticalPath  float64 `json:"critical_path"`
	LCDCycles     float64 `json:"lcd_cycles"`
	LCDPath       []int   `json:"lcd_path,omitempty"`
	TotalUops     int     `json:"total_uops"`
	// Coverage reports how the block's instructions resolved against
	// the model; Unknown > 0 marks a degraded analysis (unmodeled
	// mnemonics received conservative synthesized descriptors instead
	// of rejecting the block).
	Coverage CoverageInfo `json:"coverage"`
	// Report is the OSACA-style text report, identical to cmd/osaca's
	// output for the same block and model.
	Report string `json:"report"`
}

// CoverageInfo is the wire form of core.Coverage plus its derived
// covered fraction.
type CoverageInfo struct {
	Exact            int      `json:"exact"`
	Fallback         int      `json:"fallback"`
	Unknown          int      `json:"unknown"`
	Fraction         float64  `json:"fraction"`
	UnknownMnemonics []string `json:"unknown_mnemonics,omitempty"`
}

func coverageInfo(c core.Coverage) CoverageInfo {
	return CoverageInfo{
		Exact: c.Exact, Fallback: c.Fallback, Unknown: c.Unknown,
		Fraction: c.Fraction(), UnknownMnemonics: c.UnknownMnemonics,
	}
}

// BatchRequest carries many analyze requests; results come back in
// request order, each independently succeeding or failing.
type BatchRequest struct {
	Requests []AnalyzeRequest `json:"requests"`
}

// BatchItem is one batch result: exactly one of Result or Error is set.
// Code carries the machine error code (same vocabulary as the top-level
// error envelope) when Error is set.
type BatchItem struct {
	Result *AnalyzeResponse `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
	Code   string           `json:"code,omitempty"`
}

// BatchResponse is the ordered outcome of a batch call.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// ModelInfo describes one registered machine model.
type ModelInfo struct {
	Key        string   `json:"key"`
	Name       string   `json:"name"`
	CPU        string   `json:"cpu"`
	Vendor     string   `json:"vendor"`
	Dialect    string   `json:"dialect"`
	Ports      []string `json:"ports"`
	IssueWidth int      `json:"issue_width"`
	// Fingerprint is the sha256 of the model's canonical machine file;
	// CacheKey is the identity results are cached under (bare key for
	// unmodified built-ins, key@fingerprint otherwise).
	Fingerprint string `json:"fingerprint"`
	CacheKey    string `json:"cache_key"`
	// HasNodeParams reports whether the model carries the node-level
	// section (ECM / frequency / roofline calibration).
	HasNodeParams bool `json:"has_node_params"`
}

// ModelRegistered is the response to POST /v1/models.
type ModelRegistered struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
	CacheKey    string `json:"cache_key"`
	// Created is false when the identical model was already registered
	// (registration is idempotent on content).
	Created bool `json:"created"`
}

// ModelList is the paginated answer to GET /v1/models: the requested
// page plus the total match count before pagination.
type ModelList struct {
	Models []ModelInfo `json:"models"`
	Total  int         `json:"total"`
}

// HealthResponse reports liveness plus the accounting that serves as
// the performance observable (hit counts and queue depths, not
// wall-clock).
type HealthResponse struct {
	Status string         `json:"status"`
	Models int            `json:"models"`
	Cache  pipeline.Stats `json:"cache"`
	Store  *store.Stats   `json:"store,omitempty"`
	// Remote reports the peer-store tier when one is attached: hit,
	// miss, and error counts plus the circuit-breaker state — the
	// observable for the degradation contract (a dead peer shows up
	// here as breaker "open", not as failing requests).
	Remote *remotestore.Stats `json:"remote,omitempty"`
	// Jobs reports the job queue: backlog depth and per-state job
	// counts next to the store accounting.
	Jobs jobqueue.Stats `json:"jobs"`
	// Compiled reports the compiled-artifact tier: programs, parsed
	// blocks, and depgraph skeletons cached for the process lifetime,
	// with hit/attach/compile counts and an estimated byte footprint.
	Compiled pipeline.ArtifactStats `json:"compiled"`
}

// maxInlineModels bounds the parsed-inline-machine cache; above it the
// cache resets rather than grows (entries are cheap to rebuild).
const maxInlineModels = 128

// maxRegisteredModels bounds how many models POST /v1/models will grow
// the process-global registry to. Registrations are permanent for the
// process lifetime (a key, once taken, must keep meaning one scenario),
// so unlike the inline cache they cannot be evicted — the endpoint
// refuses new keys beyond the cap instead of letting an unauthenticated
// client grow the registry without bound. Inline "machine" objects are
// unaffected.
const maxRegisteredModels = 1024

// Options bound what one request may cost the server and configure the
// job queue. Zero values mean the package defaults; AnalysisTimeout < 0
// disables the deadline.
type Options struct {
	// MaxBodyBytes caps a request body; over-limit bodies are rejected
	// with 413 before any parsing.
	MaxBodyBytes int64
	// MaxBlockInstrs caps one parsed block's instruction count; larger
	// blocks are rejected with 413.
	MaxBlockInstrs int
	// AnalysisTimeout bounds one block's analysis. A request exceeding
	// it gets a 503 and its worker is released; the abandoned
	// computation finishes at most once (memo singleflight) and is
	// discarded. Job items run under the same deadline.
	AnalysisTimeout time.Duration
	// JobsDir is the durable root for /v1/jobs records; empty keeps the
	// queue in memory (the endpoints work, jobs die with the process).
	JobsDir string
	// JobWorkers sets how many queue workers drain job items
	// (0 selects GOMAXPROCS; negative starts none, for submit-only
	// tests).
	JobWorkers int
	// MaxJobs bounds retained job records (0 selects the jobqueue
	// default); submissions beyond it are refused with 507.
	MaxJobs int
	// MaxSweepVariants caps one sweep request's declared cross-product
	// (0 selects DefaultMaxSweepVariants; negative disables the cap).
	// Over-cap sweeps are refused with 413 sweep_too_large before any
	// variant model is built.
	MaxSweepVariants int
	// AccessLog, when non-nil, receives one line per request: method,
	// path, status, duration, request ID, and the store warm/cold delta.
	AccessLog *log.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.MaxBlockInstrs == 0 {
		o.MaxBlockInstrs = DefaultMaxBlockInstrs
	}
	if o.AnalysisTimeout == 0 {
		o.AnalysisTimeout = DefaultAnalysisTimeout
	}
	if o.MaxSweepVariants == 0 {
		o.MaxSweepVariants = DefaultMaxSweepVariants
	}
	return o
}

// Server handles analysis requests with one analyzer configuration.
type Server struct {
	an        *core.Analyzer
	opt       Options
	jobs      *jobqueue.Queue
	accessLog *log.Logger

	// inlineMu guards inline, a cache of parsed inline machine files
	// keyed by the sha256 of their raw JSON, so repeated requests
	// carrying the same custom machine skip re-parsing and re-indexing
	// the model on every call.
	inlineMu sync.Mutex
	inline   map[[sha256.Size]byte]*uarch.Model
}

// New returns a server with OSACA-like analyzer defaults — the same
// configuration cmd/osaca and the experiment runners use, so all three
// share cache entries — default hostile-input limits, and a memory-only
// job queue.
func New() *Server {
	s, err := NewWithOptions(Options{})
	if err != nil {
		// Unreachable: only opening a durable queue directory can fail,
		// and the zero Options select a memory-only queue.
		panic(err)
	}
	return s
}

// NewWithOptions is New with explicit limits and job-queue
// configuration. The error is non-nil only when a durable JobsDir
// cannot be opened. Callers own the returned server's lifecycle: Close
// stops the queue workers and checkpoints in-flight jobs.
func NewWithOptions(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	q, err := jobqueue.Open(jobqueue.Options{Dir: opt.JobsDir, Schema: jobsSchema(), MaxJobs: opt.MaxJobs})
	if err != nil {
		return nil, err
	}
	s := &Server{
		an:        core.New(),
		opt:       opt,
		jobs:      q,
		accessLog: opt.AccessLog,
		inline:    make(map[[sha256.Size]byte]*uarch.Model),
	}
	workers := opt.JobWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 0 {
		q.Start(workers, s.runJobItem)
	}
	return s, nil
}

// Close stops the job-queue workers, waits for in-flight items, and
// checkpoints every job so a later server over the same JobsDir resumes
// where this one stopped. Idempotent.
func (s *Server) Close() { s.jobs.Close() }

// JobStats exposes the queue accounting (for /healthz and tests).
func (s *Server) JobStats() jobqueue.Stats { return s.jobs.Stats() }

// Handler returns the route table wrapped in the request-ID middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models", s.handleRegisterModel)
	mux.HandleFunc("GET /v1/models/{key}", s.handleExportModel)
	mux.HandleFunc("GET /v1/store/{hash}", s.handlePeerGet)
	mux.HandleFunc("PUT /v1/store/{hash}", s.handlePeerPut)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.withRequestID(s.withRecover(mux))
}

// inlineModel parses (or recalls) an inline machine file. Models land in
// a small content-keyed cache: two requests with byte-identical machine
// objects share one parsed *uarch.Model, and — because pipeline keys use
// CacheKey — one set of cached results.
func (s *Server) inlineModel(raw json.RawMessage) (*uarch.Model, error) {
	h := sha256.Sum256(raw)
	s.inlineMu.Lock()
	m, ok := s.inline[h]
	s.inlineMu.Unlock()
	if ok {
		return m, nil
	}
	m, err := uarch.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	s.inlineMu.Lock()
	if len(s.inline) >= maxInlineModels {
		s.inline = make(map[[sha256.Size]byte]*uarch.Model)
	}
	// On a racing double parse the last writer wins; both models carry
	// identical content and CacheKey, so either is fine to serve.
	s.inline[h] = m
	s.inlineMu.Unlock()
	return m, nil
}

// resolveModel picks the machine model for one request: an inline
// machine file if present, a registered key otherwise.
func (s *Server) resolveModel(req *AnalyzeRequest) (*uarch.Model, error) {
	if len(req.Machine) == 0 {
		if req.Arch == "" {
			return nil, apiErrorf(CodeInvalidRequest, http.StatusBadRequest, "missing arch")
		}
		m, err := uarch.Get(req.Arch)
		if err != nil {
			// 400, not 404: the resource here is the analysis, and it
			// failed because the request named a model that does not
			// exist — same status as before the envelope redesign.
			return nil, wrapAPIError(CodeModelNotFound, http.StatusBadRequest, err)
		}
		return m, nil
	}
	m, err := s.inlineModel(req.Machine)
	if err != nil {
		return nil, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err)
	}
	if req.Arch != "" && req.Arch != m.Key {
		return nil, apiErrorf(CodeInvalidRequest, http.StatusBadRequest,
			"arch %q does not match inline machine key %q", req.Arch, m.Key)
	}
	return m, nil
}

// analyze runs one request through the memoized pipeline path. Memo
// misses compute on pooled core.Scratch arenas (core.Analyze draws from
// an internal sync.Pool), so any number of concurrent requests share
// scratch safely without per-request allocation storms.
func (s *Server) analyze(req AnalyzeRequest) (*AnalyzeResponse, error) {
	resp, _, err := s.analyzeTracked(req)
	return resp, err
}

// analyzeTracked is analyze reporting cache provenance: warm is true
// when the answer came from the memo tier or the persistent store
// without a fresh computation. The job queue records the flag per item,
// which is how a resumed job proves its already-stored items were not
// recomputed.
func (s *Server) analyzeTracked(req AnalyzeRequest) (*AnalyzeResponse, bool, error) {
	if req.Asm == "" {
		return nil, false, apiErrorf(CodeInvalidRequest, http.StatusBadRequest, "missing asm")
	}
	m, err := s.resolveModel(&req)
	if err != nil {
		return nil, false, err
	}
	name := req.Name
	if name == "" {
		name = "block"
	}
	// The parse rides the process-wide artifact cache: repeated requests
	// carrying the same listing for the same (arch, dialect) share one
	// parsed block — and, through content keys, one skeleton and one set
	// of memoized results downstream. The returned block is shared; the
	// request pipeline treats blocks as immutable already.
	b, err := pipeline.ParseRequestBlock(name, m.Key, m.Dialect, req.Asm)
	if err != nil {
		return nil, false, wrapAPIError(CodeInvalidRequest, http.StatusBadRequest, err)
	}
	if n := len(b.Instrs); n > s.opt.MaxBlockInstrs {
		return nil, false, apiErrorf(CodeBlockTooLarge, http.StatusRequestEntityTooLarge,
			"block has %d instructions, limit is %d", n, s.opt.MaxBlockInstrs)
	}
	res, warm, err := s.analyzeBounded(b, m)
	if err != nil {
		return nil, false, err
	}
	// The memoized Result may carry the block of an earlier requester
	// with identical content but a different name; render the report
	// against a shallow copy holding this request's block so the label
	// always matches the request.
	labeled := *res
	labeled.Block = b
	return &AnalyzeResponse{
		Name:          name,
		Arch:          m.Key,
		Prediction:    res.Prediction,
		Bound:         res.Bound,
		TPBound:       res.TPBound,
		GreedyTPBound: res.GreedyTPBound,
		IssueBound:    res.IssueBound,
		CriticalPath:  res.CriticalPath,
		LCDCycles:     res.LCD.Cycles,
		LCDPath:       res.LCD.Path,
		TotalUops:     res.TotalUops,
		Coverage:      coverageInfo(res.Coverage),
		Report:        labeled.Report(),
	}, warm, nil
}

// analyzeBounded runs the memoized analysis under the configured
// deadline. On timeout the handler's worker is released with a 503 while
// the abandoned computation runs to completion in its goroutine exactly
// once — the pipeline memo's singleflight guarantees concurrent and
// later requests for the same key attach to that one computation rather
// than piling up fresh ones — and its result is discarded here.
func (s *Server) analyzeBounded(b *isa.Block, m *uarch.Model) (*core.Result, bool, error) {
	if s.opt.AnalysisTimeout < 0 {
		return pipeline.AnalyzeWarm(s.an, b, m)
	}
	type outcome struct {
		res  *core.Result
		warm bool
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		res, warm, err := pipeline.AnalyzeWarm(s.an, b, m)
		done <- outcome{res, warm, err}
	}()
	t := time.NewTimer(s.opt.AnalysisTimeout)
	defer t.Stop()
	select {
	case o := <-done:
		return o.res, o.warm, o.err
	case <-t.C:
		return nil, false, apiErrorf(CodeAnalysisTimeout, http.StatusServiceUnavailable,
			"analysis exceeded the %s deadline", s.opt.AnalysisTimeout)
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	resp, err := s.analyze(req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	// One pipeline map over the shared pool: batch items parallelize
	// exactly like experiment jobs, deduplicate through the same memo
	// tier, and come back in request order. Item failures are data, not
	// a map error, so one bad block cannot veto its neighbors.
	items, _ := pipeline.Map(pipeline.Default(), req.Requests, func(ar AnalyzeRequest) (BatchItem, error) {
		resp, err := s.analyze(ar)
		if err != nil {
			_, code := classify(err)
			return BatchItem{Error: err.Error(), Code: string(code)}, nil
		}
		return BatchItem{Result: resp}, nil
	})
	writeJSON(w, http.StatusOK, BatchResponse{Results: items})
}

// dialectName renders a model's dialect for the wire.
func dialectName(m *uarch.Model) string {
	if m.Dialect == isa.DialectAArch64 {
		return "aarch64"
	}
	return "x86"
}

// handleModels lists registered models with offset/limit pagination and
// an optional arch filter matching either a model key or a dialect
// family ("x86", "aarch64"). Total counts matches before pagination, so
// a client can page without a second count request.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, offset := -1, 0
	var err error
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest, "invalid limit %q", v))
			return
		}
	}
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			writeError(w, r, apiErrorf(CodeInvalidRequest, http.StatusBadRequest, "invalid offset %q", v))
			return
		}
	}
	arch := q.Get("arch")
	infos := make([]ModelInfo, 0)
	for _, m := range uarch.All() {
		if arch != "" && arch != m.Key && arch != dialectName(m) {
			continue
		}
		infos = append(infos, ModelInfo{
			Key:           m.Key,
			Name:          m.Name,
			CPU:           m.CPU,
			Vendor:        m.Vendor,
			Dialect:       dialectName(m),
			Ports:         m.Ports,
			IssueWidth:    m.IssueWidth,
			Fingerprint:   m.Fingerprint(),
			CacheKey:      m.CacheKey(),
			HasNodeParams: m.Node != nil,
		})
	}
	total := len(infos)
	if offset > len(infos) {
		offset = len(infos)
	}
	infos = infos[offset:]
	if limit >= 0 && limit < len(infos) {
		infos = infos[:limit]
	}
	writeJSON(w, http.StatusOK, ModelList{Models: infos, Total: total})
}

// handleRegisterModel registers the machine file in the request body.
// Registration is idempotent on content; a key collision with different
// content is a 409 so a client can never silently repoint a key (and
// with it the result caches other clients rely on).
func (s *Server) handleRegisterModel(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	m, err := uarch.ReadJSON(body)
	if err != nil {
		writeError(w, r, err)
		return
	}
	// Approximate cap check (racy against concurrent registrations, but
	// the bound is a resource guard, not an exact quota): only refuse
	// keys that would grow the registry — re-registrations of known
	// keys still resolve below so idempotent posts keep working.
	if len(uarch.Keys()) >= maxRegisteredModels {
		if _, err := uarch.Get(m.Key); err != nil {
			writeError(w, r, apiErrorf(CodeRegistryFull, http.StatusInsufficientStorage,
				"model registry is full (%d models); re-register an existing key or use an inline \"machine\" object", maxRegisteredModels))
			return
		}
	}
	// Register decides created-vs-idempotent-vs-conflict under one lock,
	// so concurrent registrations of a key see one consistent outcome.
	created, err := uarch.Register(m)
	if err != nil {
		writeError(w, r, wrapAPIError(CodeModelConflict, http.StatusConflict, err))
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, ModelRegistered{
		Key: m.Key, Fingerprint: m.Fingerprint(), CacheKey: m.CacheKey(), Created: created,
	})
}

// handleExportModel writes the machine file of one registered model —
// the round-trip counterpart of POST /v1/models and cmd/modelinfo
// -export; re-registering the exported bytes is a no-op.
func (s *Server) handleExportModel(w http.ResponseWriter, r *http.Request) {
	m, err := uarch.Get(r.PathValue("key"))
	if err != nil {
		writeError(w, r, wrapAPIError(CodeModelNotFound, http.StatusNotFound, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	m.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:   "ok",
		Models:   len(uarch.Keys()),
		Cache:    pipeline.Shared().Stats(),
		Jobs:     s.jobs.Stats(),
		Compiled: pipeline.CompiledArtifacts().Stats(),
	}
	if st := pipeline.PersistentStore(); st != nil {
		stats := st.Stats()
		resp.Store = &stats
		if rc, ok := st.Remote().(*remotestore.Client); ok {
			rs := rc.Stats()
			resp.Remote = &rs
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
