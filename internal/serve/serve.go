// Package serve exposes the in-core analyzer as an HTTP JSON API — the
// interactive, OSACA-style "analyze this block on this uarch" service the
// paper's tooling offers, grown to production shape: requests route
// through the same pipeline memo cache and persistent result store as
// batch reproduction (cmd/repro), so served traffic and reproduction
// share one cache and one determinism contract. Analyzing a block over
// HTTP returns exactly what cmd/osaca prints for the same input.
//
// Endpoints:
//
//	POST /v1/analyze  one assembly block        → AnalyzeResponse
//	POST /v1/batch    many blocks in one call   → BatchResponse
//	GET  /v1/models   registered machine models → []ModelInfo
//	GET  /healthz     liveness + cache stats    → HealthResponse
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/pipeline"
	"incore/internal/store"
	"incore/internal/uarch"
)

// maxRequestBytes bounds a request body; an assembly listing is small,
// and a bound keeps a malformed client from holding memory hostage.
const maxRequestBytes = 4 << 20

// AnalyzeRequest asks for an in-core analysis of one assembly block.
type AnalyzeRequest struct {
	// Arch selects a registered machine model key (GET /v1/models).
	Arch string `json:"arch"`
	// Asm is the assembly listing, in the model's dialect.
	// OSACA/LLVM-MCA/IACA region markers are honored when present.
	Asm string `json:"asm"`
	// Name labels the block in the rendered report. Optional; it does
	// not affect the analysis or its cache key.
	Name string `json:"name,omitempty"`
}

// AnalyzeResponse is the analysis outcome for one block.
type AnalyzeResponse struct {
	Name string `json:"name"`
	Arch string `json:"arch"`
	// Prediction is the lower-bound cycles per block iteration;
	// Bound names the binding constraint ("port", "issue", "lcd").
	Prediction    float64 `json:"prediction"`
	Bound         string  `json:"bound"`
	TPBound       float64 `json:"tp_bound"`
	GreedyTPBound float64 `json:"greedy_tp_bound"`
	IssueBound    float64 `json:"issue_bound"`
	CriticalPath  float64 `json:"critical_path"`
	LCDCycles     float64 `json:"lcd_cycles"`
	LCDPath       []int   `json:"lcd_path,omitempty"`
	TotalUops     int     `json:"total_uops"`
	// Report is the OSACA-style text report, identical to cmd/osaca's
	// output for the same block and model.
	Report string `json:"report"`
}

// BatchRequest carries many analyze requests; results come back in
// request order, each independently succeeding or failing.
type BatchRequest struct {
	Requests []AnalyzeRequest `json:"requests"`
}

// BatchItem is one batch result: exactly one of Result or Error is set.
type BatchItem struct {
	Result *AnalyzeResponse `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// BatchResponse is the ordered outcome of a batch call.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// ModelInfo describes one registered machine model.
type ModelInfo struct {
	Key        string   `json:"key"`
	Name       string   `json:"name"`
	CPU        string   `json:"cpu"`
	Vendor     string   `json:"vendor"`
	Dialect    string   `json:"dialect"`
	Ports      []string `json:"ports"`
	IssueWidth int      `json:"issue_width"`
}

// HealthResponse reports liveness plus the cache accounting that serves
// as the performance observable (hit counts, not wall-clock).
type HealthResponse struct {
	Status string         `json:"status"`
	Models int            `json:"models"`
	Cache  pipeline.Stats `json:"cache"`
	Store  *store.Stats   `json:"store,omitempty"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

// Server handles analysis requests with one analyzer configuration.
type Server struct {
	an *core.Analyzer
}

// New returns a server with OSACA-like analyzer defaults — the same
// configuration cmd/osaca and the experiment runners use, so all three
// share cache entries.
func New() *Server { return &Server{an: core.New()} }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// analyze runs one request through the memoized pipeline path. Memo
// misses compute on pooled core.Scratch arenas (core.Analyze draws from
// an internal sync.Pool), so any number of concurrent requests share
// scratch safely without per-request allocation storms.
func (s *Server) analyze(req AnalyzeRequest) (*AnalyzeResponse, error) {
	if req.Arch == "" {
		return nil, errors.New("missing arch")
	}
	if req.Asm == "" {
		return nil, errors.New("missing asm")
	}
	m, err := uarch.Get(req.Arch)
	if err != nil {
		return nil, err
	}
	name := req.Name
	if name == "" {
		name = "block"
	}
	b, err := isa.ParseMarkedBlock(name, m.Key, m.Dialect, req.Asm)
	if err != nil {
		return nil, err
	}
	res, err := pipeline.Analyze(s.an, b, m)
	if err != nil {
		return nil, err
	}
	// The memoized Result may carry the block of an earlier requester
	// with identical content but a different name; render the report
	// against a shallow copy holding this request's block so the label
	// always matches the request.
	labeled := *res
	labeled.Block = b
	return &AnalyzeResponse{
		Name:          name,
		Arch:          m.Key,
		Prediction:    res.Prediction,
		Bound:         res.Bound,
		TPBound:       res.TPBound,
		GreedyTPBound: res.GreedyTPBound,
		IssueBound:    res.IssueBound,
		CriticalPath:  res.CriticalPath,
		LCDCycles:     res.LCD.Cycles,
		LCDPath:       res.LCD.Path,
		TotalUops:     res.TotalUops,
		Report:        labeled.Report(),
	}, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	resp, err := s.analyze(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// One pipeline map over the shared pool: batch items parallelize
	// exactly like experiment jobs, deduplicate through the same memo
	// tier, and come back in request order. Item failures are data, not
	// a map error, so one bad block cannot veto its neighbors.
	items, _ := pipeline.Map(pipeline.Default(), req.Requests, func(ar AnalyzeRequest) (BatchItem, error) {
		resp, err := s.analyze(ar)
		if err != nil {
			return BatchItem{Error: err.Error()}, nil
		}
		return BatchItem{Result: resp}, nil
	})
	writeJSON(w, http.StatusOK, BatchResponse{Results: items})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	keys := uarch.Keys()
	infos := make([]ModelInfo, 0, len(keys))
	for _, k := range keys {
		m := uarch.MustGet(k)
		dialect := "x86"
		if m.Dialect == isa.DialectAArch64 {
			dialect = "aarch64"
		}
		infos = append(infos, ModelInfo{
			Key:        m.Key,
			Name:       m.Name,
			CPU:        m.CPU,
			Vendor:     m.Vendor,
			Dialect:    dialect,
			Ports:      m.Ports,
			IssueWidth: m.IssueWidth,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Models: len(uarch.Keys()), Cache: pipeline.Shared().Stats()}
	if st := pipeline.PersistentStore(); st != nil {
		stats := st.Stats()
		resp.Store = &stats
	}
	writeJSON(w, http.StatusOK, resp)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
