package serve

import (
	"errors"
	"fmt"
	"net/http"
)

// The redesigned error contract: every non-2xx response from every
// /v1/* handler carries one envelope —
//
//	{"error": {"code": "<machine_code>", "message": "...", "request_id": "..."}}
//
// The code is a stable machine-readable discriminator (clients switch
// on it; the message is for humans and may change wording), and the
// request ID ties the failure to the access log line and the client's
// own tracing. HTTP statuses are unchanged from the pre-envelope API;
// the code⇄status table below is pinned by TestErrorEnvelopeTable so
// the contract cannot drift silently.

// ErrorCode enumerates the machine-readable error discriminators.
type ErrorCode string

const (
	// CodeInvalidRequest covers malformed bodies, missing fields, bad
	// query parameters, and unparseable assembly — client errors with
	// nothing more specific to say. Status 400.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeModelNotFound marks an unknown machine-model key. Status 400
	// on analyze/batch/jobs items (the request is malformed), 404 on
	// GET /v1/models/{key} (the resource is absent).
	CodeModelNotFound ErrorCode = "model_not_found"
	// CodeBodyTooLarge marks a request body over the configured cap,
	// rejected before parsing. Status 413.
	CodeBodyTooLarge ErrorCode = "body_too_large"
	// CodeBlockTooLarge marks a parsed block over the instruction cap,
	// rejected before analysis. Status 413.
	CodeBlockTooLarge ErrorCode = "block_too_large"
	// CodeSweepTooLarge marks a sweep whose declared cross-product
	// exceeds the variant cap, rejected before any model is built.
	// Status 413.
	CodeSweepTooLarge ErrorCode = "sweep_too_large"
	// CodeAnalysisTimeout marks an analysis that exceeded the deadline;
	// the worker was released. Status 503.
	CodeAnalysisTimeout ErrorCode = "analysis_timeout"
	// CodeModelConflict marks a registration whose key is already bound
	// to different content. Status 409.
	CodeModelConflict ErrorCode = "model_conflict"
	// CodeJobNotFound marks an unknown job ID. Status 404.
	CodeJobNotFound ErrorCode = "job_not_found"
	// CodeRegistryFull marks a refused registration beyond the model
	// cap. Status 507.
	CodeRegistryFull ErrorCode = "registry_full"
	// CodeQueueFull marks a refused job submission beyond the retained
	// job cap. Status 507.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeStoreUnavailable marks a peer-store request against a server
	// running without a persistent store. Status 503.
	CodeStoreUnavailable ErrorCode = "store_unavailable"
	// CodeStoreEntryNotFound marks a peer-store GET whose hash names no
	// entry — the authoritative healthy miss peers rely on to stay off
	// the retry path. Status 404.
	CodeStoreEntryNotFound ErrorCode = "store_entry_not_found"
	// CodeInternal marks a handler panic caught by the recover
	// middleware; the stack goes to the log, the client gets the
	// envelope. Status 500.
	CodeInternal ErrorCode = "internal"
)

// apiError pins a machine code and HTTP status to an error. It is the
// one typed error the handlers produce; everything that reaches a
// response writer is either an apiError or classified into one.
type apiError struct {
	code   ErrorCode
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// Code satisfies the jobqueue's optional coded-error interface, so a
// failed job item persists its machine code next to its message.
func (e *apiError) Code() string { return string(e.code) }

// apiErrorf builds an apiError in one line.
func apiErrorf(code ErrorCode, status int, format string, args ...any) *apiError {
	return &apiError{code: code, status: status, err: fmt.Errorf(format, args...)}
}

// wrapAPIError attaches code and status to an existing error, keeping
// it unwrappable.
func wrapAPIError(code ErrorCode, status int, err error) *apiError {
	return &apiError{code: code, status: status, err: err}
}

// classify maps any handler error to its response status and machine
// code: explicit apiErrors keep theirs, body-limit violations from
// http.MaxBytesReader are 413/body_too_large, everything else is a
// generic client error.
func classify(err error) (int, ErrorCode) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status, ae.code
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge, CodeBodyTooLarge
	}
	return http.StatusBadRequest, CodeInvalidRequest
}

// errorDetail is the inner error object of the envelope.
type errorDetail struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	RequestID string    `json:"request_id"`
}

// errorEnvelope is the unified JSON error body for every non-2xx
// response.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

// writeError renders err as the unified envelope, echoing the request's
// ID (set by the middleware before any handler runs).
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := classify(err)
	writeJSON(w, status, errorEnvelope{Error: errorDetail{
		Code:      code,
		Message:   err.Error(),
		RequestID: requestIDFrom(r.Context()),
	}})
}
