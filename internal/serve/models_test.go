package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"incore/internal/uarch"
)

// machineJSON renders a model's machine file.
func machineJSON(t *testing.T, m *uarch.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// customModel clones zen4 under a fresh key with an extra store-data
// port, so it is distinguishable from every built-in by both key and
// content.
func customModel(t *testing.T, key string) *uarch.Model {
	t.Helper()
	m, err := uarch.ReadJSON(bytes.NewReader(machineJSON(t, uarch.MustGet("zen4"))))
	if err != nil {
		t.Fatal(err)
	}
	m.Key = key
	m.Ports = append(m.Ports, "SD2")
	m.StoreDataPorts |= 1 << uint(len(m.Ports)-1)
	m.StoreAGUPorts |= m.PortsByName("AGU1")
	if err := m.Reindex(); err != nil {
		t.Fatal(err)
	}
	return m
}

func postRaw(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestRegisterExportRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	m := customModel(t, "serve-custom-rt")
	wire := machineJSON(t, m)

	resp, body := postRaw(t, ts, "/v1/models", wire)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var reg ModelRegistered
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Key != m.Key || reg.Fingerprint != m.Fingerprint() || !reg.Created {
		t.Errorf("registration = %+v, want key %s fp %s created", reg, m.Key, m.Fingerprint())
	}
	if reg.CacheKey != m.Key+"@"+m.Fingerprint() {
		t.Errorf("cache key = %q", reg.CacheKey)
	}

	// Re-posting identical content is idempotent (200, created=false).
	resp, body = postRaw(t, ts, "/v1/models", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Created {
		t.Error("re-registration must report created=false")
	}

	// A different model under the same key is a conflict.
	conflict := customModel(t, "serve-custom-rt")
	conflict.ROBSize++
	if err := conflict.Reindex(); err != nil {
		t.Fatal(err)
	}
	resp, body = postRaw(t, ts, "/v1/models", machineJSON(t, conflict))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflict status = %d, body %s", resp.StatusCode, body)
	}

	// Shadowing a built-in with different content is a conflict too.
	shadow := customModel(t, "zen4")
	resp, _ = postRaw(t, ts, "/v1/models", machineJSON(t, shadow))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("built-in shadow status = %d", resp.StatusCode)
	}

	// Export returns the canonical machine file: re-reading it yields
	// the same fingerprint, and the bytes match WriteJSON exactly.
	resp2, err := http.Get(ts.URL + "/v1/models/serve-custom-rt")
	if err != nil {
		t.Fatal(err)
	}
	exported, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp2.StatusCode)
	}
	if !bytes.Equal(exported, wire) {
		t.Error("exported machine file differs from canonical form")
	}
	resp2, err = http.Get(ts.URL + "/v1/models/no-such-model")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing model export status = %d", resp2.StatusCode)
	}

	// The registered model shows up in the listing with its fingerprint.
	resp2, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var list ModelList
	if err := json.Unmarshal(listing, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range list.Models {
		if info.Key == "serve-custom-rt" {
			found = true
			if info.Fingerprint != m.Fingerprint() || !info.HasNodeParams {
				t.Errorf("listing entry = %+v", info)
			}
		}
	}
	if !found {
		t.Error("registered model missing from GET /v1/models")
	}
}

// TestAnalyzeWithRegisteredAndInlineMachine: a custom machine analyzed by
// key (after registration) and inline must agree with analyzing the model
// directly, and must differ from the built-in it was derived from where
// the edit matters.
func TestAnalyzeWithRegisteredAndInlineMachine(t *testing.T) {
	ts := newTestServer(t)
	m := customModel(t, "serve-custom-inline")
	wire := machineJSON(t, m)

	asm := "\tvmovupd %ymm0, (%rdi)\n\tvmovupd %ymm1, 32(%rdi)\n\taddq $64, %rdi\n\tcmpq %rsi, %rdi\n\tjb .L0\n"

	// Inline, without registration.
	req := AnalyzeRequest{Machine: json.RawMessage(wire), Asm: asm, Name: "stores"}
	data, _ := json.Marshal(req)
	resp, body := postRaw(t, ts, "/v1/analyze", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline status = %d, body %s", resp.StatusCode, body)
	}
	var inline AnalyzeResponse
	if err := json.Unmarshal(body, &inline); err != nil {
		t.Fatal(err)
	}
	if inline.Arch != "serve-custom-inline" {
		t.Errorf("inline arch = %q", inline.Arch)
	}

	// Same machine again: must hit the server's inline-model cache and
	// return the identical answer.
	resp, body2 := postRaw(t, ts, "/v1/analyze", data)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Error("repeated inline analysis must be byte-identical")
	}

	// Mismatched arch/machine pair is rejected.
	bad, _ := json.Marshal(AnalyzeRequest{Arch: "zen4", Machine: json.RawMessage(wire), Asm: asm})
	resp, _ = postRaw(t, ts, "/v1/analyze", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("arch/machine mismatch status = %d", resp.StatusCode)
	}

	// Register, then analyze by key: same result as inline.
	if resp, body := postRaw(t, ts, "/v1/models", wire); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d, body %s", resp.StatusCode, body)
	}
	byKey, _ := json.Marshal(AnalyzeRequest{Arch: "serve-custom-inline", Asm: asm, Name: "stores"})
	resp, body = postRaw(t, ts, "/v1/analyze", byKey)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("by-key status = %d, body %s", resp.StatusCode, body)
	}
	var keyed AnalyzeResponse
	if err := json.Unmarshal(body, &keyed); err != nil {
		t.Fatal(err)
	}
	if keyed.Prediction != inline.Prediction || keyed.Report != inline.Report {
		t.Error("by-key and inline analyses disagree")
	}

	// The custom machine (extra store port) must beat the built-in on a
	// pure store stream — proof the variant, not zen4's cache entry,
	// answered.
	zen, _ := json.Marshal(AnalyzeRequest{Arch: "zen4", Asm: asm, Name: "stores"})
	resp, body = postRaw(t, ts, "/v1/analyze", zen)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zen4 status = %d, body %s", resp.StatusCode, body)
	}
	var builtin AnalyzeResponse
	if err := json.Unmarshal(body, &builtin); err != nil {
		t.Fatal(err)
	}
	if !(inline.Prediction < builtin.Prediction) {
		t.Errorf("extra store port must lower the bound: %f vs %f", inline.Prediction, builtin.Prediction)
	}
}

// TestConcurrentModelRegistration hammers POST /v1/models from many
// goroutines — identical content, fresh keys, and conflicting content —
// under -race via the CI test job. Exactly one fingerprint may ever win
// a key.
func TestConcurrentModelRegistration(t *testing.T) {
	ts := newTestServer(t)
	const workers = 8
	const iters = 12

	// All machine files are rendered up front: goroutines must not call
	// t.Fatal, and the registrations should race on the server, not on
	// local JSON rendering.
	shared := machineJSON(t, customModel(t, "serve-conc-shared"))
	conflict := machineJSON(t, func() *uarch.Model {
		m := customModel(t, "serve-conc-shared")
		m.ROBSize++
		if err := m.Reindex(); err != nil {
			t.Fatal(err)
		}
		return m
	}())
	fresh := make([][]byte, workers*iters)
	for i := range fresh {
		fresh[i] = machineJSON(t, customModel(t, fmt.Sprintf("serve-conc-%d", i)))
	}

	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("post: %v", err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					// Identical content: every racer wins (201 or 200).
					if code := post(shared); code != http.StatusCreated && code != http.StatusOK {
						t.Errorf("shared registration status = %d", code)
					}
				case 1:
					// Conflicting content on the shared key: either it
					// lost the race (409) or — if it somehow arrived
					// before any identical registration — it won and the
					// identical posts above would conflict instead; the
					// invariant checked after the loop is that exactly
					// one fingerprint holds the key.
					if code := post(conflict); code != http.StatusConflict && code != http.StatusCreated {
						t.Errorf("conflict registration status = %d", code)
					}
				case 2:
					if code := post(fresh[w*iters+i]); code != http.StatusCreated {
						t.Errorf("fresh key status = %d", code)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := uarch.Get("serve-conc-shared"); err != nil {
		t.Errorf("shared key not registered: %v", err)
	}
}

// TestAnalyzeRejectsBadInlineMachine: malformed inline machines fail with
// a 400 and a uarch error, not a panic or a silent fallback to Arch.
func TestAnalyzeRejectsBadInlineMachine(t *testing.T) {
	ts := newTestServer(t)
	req, _ := json.Marshal(AnalyzeRequest{
		Machine: json.RawMessage(`{"key":"broken"}`),
		Asm:     "\taddq $8, %rax\n",
	})
	resp, body := postRaw(t, ts, "/v1/analyze", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "uarch") {
		t.Errorf("error should come from the machine-file loader: %s", body)
	}
}
