package isa

import (
	"strings"
	"testing"
)

const markedSrc = `
	pushq %rbp
	movq %rsp, %rbp
	# OSACA-BEGIN
.L0:
	vaddpd %ymm1, %ymm2, %ymm3
	jne .L0
	# OSACA-END
	popq %rbp
	ret
`

func TestExtractMarkedRegion(t *testing.T) {
	region, err := ExtractMarkedRegion(markedSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(region, "vaddpd") {
		t.Errorf("region missing kernel: %q", region)
	}
	if strings.Contains(region, "pushq") || strings.Contains(region, "ret") {
		t.Errorf("region contains surrounding code: %q", region)
	}
}

func TestExtractWithoutMarkersPassesThrough(t *testing.T) {
	src := "\tvaddpd %ymm1, %ymm2, %ymm3\n"
	region, err := ExtractMarkedRegion(src)
	if err != nil {
		t.Fatal(err)
	}
	if region != src {
		t.Error("marker-free input must pass through unchanged")
	}
}

func TestExtractMarkerErrors(t *testing.T) {
	cases := []string{
		"# OSACA-BEGIN\n\tnop\n",                      // missing end
		"\tnop\n# OSACA-END\n",                        // missing begin
		"# OSACA-END\n\tnop\n# OSACA-BEGIN\n",         // reversed
		"# OSACA-BEGIN\n# OSACA-BEGIN\n# OSACA-END\n", // duplicate begin
		"# OSACA-BEGIN\n# OSACA-END\n# OSACA-END\n",   // duplicate end
	}
	for _, src := range cases {
		if _, err := ExtractMarkedRegion(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestLLVMMCAMarkers(t *testing.T) {
	src := "# LLVM-MCA-BEGIN kernel\n\tfadd d0, d1, d2\n# LLVM-MCA-END\n"
	region, err := ExtractMarkedRegion(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(region, "fadd") {
		t.Errorf("region = %q", region)
	}
}

func TestIACAByteMarkers(t *testing.T) {
	src := "\tmovl $111, %ebx\n\tvaddpd %ymm1, %ymm2, %ymm3\n\tmovl $222, %ebx\n"
	region, err := ExtractMarkedRegion(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(region, "vaddpd") || strings.Contains(region, "movl") {
		t.Errorf("region = %q", region)
	}
}

func TestParseMarkedBlock(t *testing.T) {
	b, err := ParseMarkedBlock("t", "goldencove", DialectX86, markedSrc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("marked block length = %d, want 2", b.Len())
	}
	// Surrounding code (pushq/ret) must not appear.
	for _, in := range b.Instrs {
		if in.Mnemonic == "pushq" || in.Mnemonic == "ret" {
			t.Error("surrounding code leaked into the block")
		}
	}
}
