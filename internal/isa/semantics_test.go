package isa

import (
	"testing"
)

func effectsOf(t *testing.T, d Dialect, src string) Effects {
	t.Helper()
	b := mustParse(t, d, src)
	return InstrEffects(&b.Instrs[0], d)
}

func hasRead(e Effects, k RegKey) bool {
	for _, r := range e.Reads {
		if r == k {
			return true
		}
	}
	return false
}

func hasWrite(e Effects, k RegKey) bool {
	for _, w := range e.Writes {
		if w == k {
			return true
		}
	}
	return false
}

func vecKey(id int) RegKey { return RegKey{Class: ClassVec, ID: id} }
func gprKey(id int) RegKey { return RegKey{Class: ClassGPR, ID: id} }
func flagsKey() RegKey     { return RegKey{Class: ClassFlags, ID: 0} }

func TestX86ALUReadsDest(t *testing.T) {
	// addq $4, %rax: rax read and written, flags written.
	e := effectsOf(t, DialectX86, "\taddq $4, %rax\n")
	if !hasRead(e, gprKey(0)) || !hasWrite(e, gprKey(0)) {
		t.Errorf("addq effects: %+v", e)
	}
	if !hasWrite(e, flagsKey()) {
		t.Error("addq must write flags")
	}
}

func TestX86MoveDoesNotReadDest(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tmovq %rbx, %rax\n")
	if hasRead(e, gprKey(0)) {
		t.Error("movq must not read its destination")
	}
	if !hasRead(e, gprKey(3)) || !hasWrite(e, gprKey(0)) {
		t.Errorf("movq effects: %+v", e)
	}
}

func TestX86ThreeOperandVEXDoesNotReadDest(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tvaddpd %ymm1, %ymm2, %ymm3\n")
	if hasRead(e, vecKey(3)) {
		t.Error("vaddpd must not read its destination")
	}
	if !hasRead(e, vecKey(1)) || !hasRead(e, vecKey(2)) {
		t.Errorf("vaddpd must read both sources: %+v", e)
	}
}

func TestX86FMAReadsDest(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tvfmadd231pd %ymm1, %ymm2, %ymm3\n")
	if !hasRead(e, vecKey(3)) {
		t.Error("vfmadd231pd must read its destination (accumulator)")
	}
}

func TestX86TwoOperandSSEReadsDest(t *testing.T) {
	e := effectsOf(t, DialectX86, "\taddpd %xmm1, %xmm2\n")
	if !hasRead(e, vecKey(2)) || !hasWrite(e, vecKey(2)) {
		t.Errorf("addpd must read+write dest: %+v", e)
	}
}

func TestX86CmpWritesOnlyFlags(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tcmpq %rbx, %rax\n")
	if !hasWrite(e, flagsKey()) {
		t.Error("cmp must write flags")
	}
	if hasWrite(e, gprKey(0)) || hasWrite(e, gprKey(3)) {
		t.Error("cmp must not write GPRs")
	}
}

func TestX86BranchReadsFlags(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tjne .L0\n")
	if !hasRead(e, flagsKey()) {
		t.Error("jne must read flags")
	}
	e = effectsOf(t, DialectX86, "\tjmp .L0\n")
	if hasRead(e, flagsKey()) {
		t.Error("jmp must not read flags")
	}
}

func TestX86LoadStore(t *testing.T) {
	ld := effectsOf(t, DialectX86, "\tvmovupd (%rsi,%rax,8), %ymm0\n")
	if !ld.ReadsMem() || ld.WritesMem() {
		t.Errorf("load mem effects: %+v", ld)
	}
	if !hasRead(ld, gprKey(6)) || !hasRead(ld, gprKey(0)) {
		t.Error("load must read base and index registers")
	}
	st := effectsOf(t, DialectX86, "\tvmovupd %ymm0, (%rdi,%rax,8)\n")
	if st.ReadsMem() || !st.WritesMem() {
		t.Errorf("store mem effects: %+v", st)
	}
	if !hasRead(st, vecKey(0)) {
		t.Error("store must read its data register")
	}
}

func TestX86ZeroIdiom(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tvxorpd %ymm0, %ymm0, %ymm0\n")
	if hasRead(e, vecKey(0)) {
		t.Error("vxorpd x,x,x is a zero idiom: no reads")
	}
	if !hasWrite(e, vecKey(0)) {
		t.Error("zero idiom must still write")
	}
	e = effectsOf(t, DialectX86, "\txorq %rax, %rax\n")
	if hasRead(e, gprKey(0)) {
		t.Error("xor r,r is a zero idiom: no reads")
	}
}

func TestX86GatherEffects(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tvgatherqpd %ymm2, (%rsi,%ymm1,8), %ymm0\n")
	if !e.ReadsMem() {
		t.Error("gather must read memory")
	}
	if !hasRead(e, vecKey(1)) {
		t.Error("gather must read its index vector")
	}
	if !hasWrite(e, vecKey(0)) {
		t.Error("gather must write its destination")
	}
}

func TestAArch64ALU(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tadd x0, x1, x2\n")
	if hasRead(e, gprKey(0)) {
		t.Error("add must not read dest (3-operand)")
	}
	if !hasRead(e, gprKey(1)) || !hasRead(e, gprKey(2)) || !hasWrite(e, gprKey(0)) {
		t.Errorf("add effects: %+v", e)
	}
}

func TestAArch64FMLAReadsDest(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tfmla v0.2d, v1.2d, v2.2d\n")
	if !hasRead(e, vecKey(0)) {
		t.Error("fmla must read its destination (destructive accumulate)")
	}
}

func TestAArch64FmaddDoesNotReadDest(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tfmadd d0, d1, d2, d3\n")
	if hasRead(e, vecKey(0)) {
		t.Error("fmadd dest is write-only (addend is operand 3)")
	}
	if !hasRead(e, vecKey(3)) {
		t.Error("fmadd must read its addend d3")
	}
}

func TestAArch64LoadStore(t *testing.T) {
	ld := effectsOf(t, DialectAArch64, "\tldr q0, [x1, x3]\n")
	if !ld.ReadsMem() || !hasWrite(ld, vecKey(0)) {
		t.Errorf("ldr effects: %+v", ld)
	}
	if !hasRead(ld, gprKey(1)) || !hasRead(ld, gprKey(3)) {
		t.Error("ldr must read address registers")
	}
	st := effectsOf(t, DialectAArch64, "\tstr q0, [x0]\n")
	if !st.WritesMem() || !hasRead(st, vecKey(0)) {
		t.Errorf("str effects: %+v", st)
	}
	ldp := effectsOf(t, DialectAArch64, "\tldp d0, d1, [x1]\n")
	if !hasWrite(ldp, vecKey(0)) || !hasWrite(ldp, vecKey(1)) {
		t.Errorf("ldp must write both destinations: %+v", ldp)
	}
}

func TestAArch64PostIndexWritesBase(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tldr d0, [x1], #8\n")
	if !hasWrite(e, gprKey(1)) {
		t.Error("post-index load must write its base register")
	}
}

func TestAArch64CmpBranch(t *testing.T) {
	cmp := effectsOf(t, DialectAArch64, "\tcmp x3, x4\n")
	if !hasWrite(cmp, flagsKey()) {
		t.Error("cmp must write flags")
	}
	bne := effectsOf(t, DialectAArch64, "\tb.ne .L0\n")
	if !hasRead(bne, flagsKey()) {
		t.Error("b.ne must read flags")
	}
	cbnz := effectsOf(t, DialectAArch64, "\tcbnz x3, .L0\n")
	if !hasRead(cbnz, gprKey(3)) {
		t.Error("cbnz must read its register")
	}
}

func TestAArch64SubsWritesFlags(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tsubs x4, x4, #1\n")
	if !hasWrite(e, flagsKey()) || !hasWrite(e, gprKey(4)) || !hasRead(e, gprKey(4)) {
		t.Errorf("subs effects: %+v", e)
	}
}

func TestAArch64WhileloWritesPredicateAndFlags(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\twhilelo p0.d, x3, x4\n")
	if !hasWrite(e, RegKey{Class: ClassPred, ID: 0}) {
		t.Error("whilelo must write its predicate")
	}
	if !hasWrite(e, flagsKey()) {
		t.Error("whilelo must write flags")
	}
	if !hasRead(e, gprKey(3)) || !hasRead(e, gprKey(4)) {
		t.Error("whilelo must read both bounds")
	}
}

func TestAArch64SVEGather(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tld1d { z0.d }, p0/z, [x1, z1.d]\n")
	if !e.ReadsMem() {
		t.Error("SVE gather must read memory")
	}
	if !hasRead(e, vecKey(1)) {
		t.Error("SVE gather must read its vector index")
	}
	if !hasWrite(e, vecKey(0)) {
		t.Error("SVE gather must write its destination")
	}
}

func TestZeroRegisterCarriesNoDeps(t *testing.T) {
	e := effectsOf(t, DialectAArch64, "\tadd x0, xzr, x2\n")
	if hasRead(e, gprKey(32)) {
		t.Error("xzr reads must not appear as dependencies")
	}
}

func TestStoreAddressRegsAreReads(t *testing.T) {
	e := effectsOf(t, DialectX86, "\tvmovntpd %zmm0, (%rdi,%rax,8)\n")
	if !hasRead(e, gprKey(7)) || !hasRead(e, gprKey(0)) {
		t.Errorf("NT store must read address registers: %+v", e)
	}
	if !e.WritesMem() {
		t.Error("NT store must write memory")
	}
}
