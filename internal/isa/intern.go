package isa

// RegInterner assigns dense small-integer IDs to RegKeys so hot loops can
// replace map[RegKey] lookups with slice indexing. A block touches a few
// dozen architectural storage locations at most, so consumers (the
// simulator's compiled programs, depgraph construction) size per-register
// state as flat slices of Len() entries.
//
// The zero value is ready to use. IDs are assigned in first-Intern order
// starting at 0, so two interners fed the same key sequence agree — which
// keeps anything derived from IDs deterministic.
type RegInterner struct {
	ids  map[RegKey]int32
	keys []RegKey
}

// Intern returns the dense ID for k, assigning the next free one on first
// sight.
func (ri *RegInterner) Intern(k RegKey) int32 {
	if id, ok := ri.ids[k]; ok {
		return id
	}
	if ri.ids == nil {
		ri.ids = make(map[RegKey]int32, 16)
	}
	id := int32(len(ri.keys))
	ri.ids[k] = id
	ri.keys = append(ri.keys, k)
	return id
}

// Lookup returns the ID previously assigned to k, or (-1, false).
func (ri *RegInterner) Lookup(k RegKey) (int32, bool) {
	id, ok := ri.ids[k]
	if !ok {
		return -1, false
	}
	return id, true
}

// Key returns the RegKey behind a dense ID.
func (ri *RegInterner) Key(id int32) RegKey { return ri.keys[id] }

// Len returns the number of interned registers (IDs are 0..Len()-1).
func (ri *RegInterner) Len() int { return len(ri.keys) }

// InternAll interns every key in ks and returns their IDs appended to dst
// (avoiding an allocation when dst has capacity).
func (ri *RegInterner) InternAll(dst []int32, ks []RegKey) []int32 {
	for _, k := range ks {
		dst = append(dst, ri.Intern(k))
	}
	return dst
}

// Reset forgets all assignments while keeping the allocated capacity, so
// a pooled interner can be reused across blocks without reallocating its
// table. IDs restart at 0.
func (ri *RegInterner) Reset() {
	clear(ri.ids)
	ri.keys = ri.keys[:0]
}
