package isa

import "testing"

func TestRegInternerDenseIDs(t *testing.T) {
	var ri RegInterner
	a := RegKey{Class: ClassGPR, ID: 3}
	b := RegKey{Class: ClassVec, ID: 3}
	c := RegKey{Class: ClassFlags, ID: 0}
	if got := ri.Intern(a); got != 0 {
		t.Errorf("first key id = %d, want 0", got)
	}
	if got := ri.Intern(b); got != 1 {
		t.Errorf("second key id = %d, want 1", got)
	}
	if got := ri.Intern(a); got != 0 {
		t.Errorf("re-intern changed id: %d", got)
	}
	if got := ri.Intern(c); got != 2 {
		t.Errorf("third key id = %d, want 2", got)
	}
	if ri.Len() != 3 {
		t.Errorf("Len = %d, want 3", ri.Len())
	}
	for id, want := range []RegKey{a, b, c} {
		if got := ri.Key(int32(id)); got != want {
			t.Errorf("Key(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestRegInternerLookup(t *testing.T) {
	var ri RegInterner
	k := RegKey{Class: ClassGPR, ID: 7}
	if id, ok := ri.Lookup(k); ok || id != -1 {
		t.Errorf("Lookup on empty interner = (%d, %t), want (-1, false)", id, ok)
	}
	ri.Intern(k)
	if id, ok := ri.Lookup(k); !ok || id != 0 {
		t.Errorf("Lookup = (%d, %t), want (0, true)", id, ok)
	}
}

func TestRegInternerDeterministic(t *testing.T) {
	keys := []RegKey{
		{Class: ClassVec, ID: 0}, {Class: ClassGPR, ID: 5},
		{Class: ClassVec, ID: 0}, {Class: ClassPred, ID: 1},
	}
	var a, b RegInterner
	ia := a.InternAll(nil, keys)
	ib := b.InternAll(make([]int32, 0, len(keys)), keys)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("interner not deterministic at %d: %d vs %d", i, ia[i], ib[i])
		}
	}
	if a.Len() != 3 {
		t.Errorf("unique keys = %d, want 3", a.Len())
	}
}
