package isa

import (
	"strconv"
	"strings"
)

// Register ID spaces. GPRs use IDs 0..31, vector registers 0..31, predicate
// registers 0..15. Flags and IP use ID 0 in their own class. x86 and
// AArch64 registers share ID spaces because a Block never mixes dialects.

var x86GPRNames = map[string]int{
	"rax": 0, "rcx": 1, "rdx": 2, "rbx": 3, "rsp": 4, "rbp": 5,
	"rsi": 6, "rdi": 7, "r8": 8, "r9": 9, "r10": 10, "r11": 11,
	"r12": 12, "r13": 13, "r14": 14, "r15": 15,
}

var x86GPR32Names = map[string]int{
	"eax": 0, "ecx": 1, "edx": 2, "ebx": 3, "esp": 4, "ebp": 5,
	"esi": 6, "edi": 7, "r8d": 8, "r9d": 9, "r10d": 10, "r11d": 11,
	"r12d": 12, "r13d": 13, "r14d": 14, "r15d": 15,
}

// ParseX86Register resolves an x86-64 register name (without the AT&T "%"
// sigil) to a Register. Unknown names return an invalid register.
func ParseX86Register(name string) Register {
	name = strings.ToLower(name)
	if id, ok := x86GPRNames[name]; ok {
		return Register{Name: name, Class: ClassGPR, ID: id, Width: 64}
	}
	if id, ok := x86GPR32Names[name]; ok {
		return Register{Name: name, Class: ClassGPR, ID: id, Width: 32}
	}
	switch {
	case strings.HasPrefix(name, "xmm"):
		if id, err := strconv.Atoi(name[3:]); err == nil && id >= 0 && id < 32 {
			return Register{Name: name, Class: ClassVec, ID: id, Width: 128}
		}
	case strings.HasPrefix(name, "ymm"):
		if id, err := strconv.Atoi(name[3:]); err == nil && id >= 0 && id < 32 {
			return Register{Name: name, Class: ClassVec, ID: id, Width: 256}
		}
	case strings.HasPrefix(name, "zmm"):
		if id, err := strconv.Atoi(name[3:]); err == nil && id >= 0 && id < 32 {
			return Register{Name: name, Class: ClassVec, ID: id, Width: 512}
		}
	case name == "rip":
		return Register{Name: name, Class: ClassIP, ID: 0, Width: 64}
	case name == "rflags" || name == "eflags":
		return Register{Name: name, Class: ClassFlags, ID: 0, Width: 64}
	case len(name) == 2 && name[0] == 'k' && name[1] >= '0' && name[1] <= '7':
		return Register{Name: name, Class: ClassPred, ID: int(name[1] - '0'), Width: 64}
	}
	return Register{}
}

// ParseAArch64Register resolves an AArch64 register name to a Register.
// Supported spellings: x0..x30, w0..w30, sp, xzr/wzr, d0..d31 (scalar FP),
// s0..s31, v0..v31 (NEON, optionally with ".2d"-style arrangement),
// z0..z31 (SVE), p0..p15 (SVE predicate).
func ParseAArch64Register(name string) Register {
	name = strings.ToLower(name)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[:i] // strip arrangement suffix like v3.2d, z1.d, p0.d
	}
	switch name {
	case "sp":
		return Register{Name: name, Class: ClassGPR, ID: 31, Width: 64}
	case "xzr", "wzr":
		// The zero register never carries dependencies; model it as a
		// distinct ID that writes are discarded to.
		return Register{Name: name, Class: ClassGPR, ID: 32, Width: 64}
	case "nzcv":
		return Register{Name: name, Class: ClassFlags, ID: 0, Width: 32}
	}
	if len(name) < 2 {
		return Register{}
	}
	num, err := strconv.Atoi(name[1:])
	if err != nil || num < 0 {
		return Register{}
	}
	switch name[0] {
	case 'x':
		if num <= 30 {
			return Register{Name: name, Class: ClassGPR, ID: num, Width: 64}
		}
	case 'w':
		if num <= 30 {
			return Register{Name: name, Class: ClassGPR, ID: num, Width: 32}
		}
	case 'v':
		if num <= 31 {
			return Register{Name: name, Class: ClassVec, ID: num, Width: 128}
		}
	case 'q':
		if num <= 31 {
			return Register{Name: name, Class: ClassVec, ID: num, Width: 128}
		}
	case 'd':
		if num <= 31 {
			return Register{Name: name, Class: ClassVec, ID: num, Width: 64}
		}
	case 's':
		if num <= 31 {
			return Register{Name: name, Class: ClassVec, ID: num, Width: 32}
		}
	case 'z':
		if num <= 31 {
			return Register{Name: name, Class: ClassVec, ID: num, Width: 128}
		}
	case 'p':
		if num <= 15 {
			return Register{Name: name, Class: ClassPred, ID: num, Width: 16}
		}
	}
	return Register{}
}

// GPR returns a 64-bit general-purpose register for the given dialect and
// index; convenient for programmatic block construction.
func GPR(d Dialect, id int) Register {
	if d == DialectAArch64 {
		return Register{Name: "x" + strconv.Itoa(id), Class: ClassGPR, ID: id, Width: 64}
	}
	for n, i := range x86GPRNames {
		if i == id {
			return Register{Name: n, Class: ClassGPR, ID: id, Width: 64}
		}
	}
	return Register{}
}

// Vec returns a vector register of the given width for the dialect.
func Vec(d Dialect, id, width int) Register {
	if d == DialectAArch64 {
		prefix := "v"
		if width == 128 {
			// On Neoverse V2 both NEON and SVE are 128 bit; callers pick
			// SVE via VecSVE.
			prefix = "v"
		}
		return Register{Name: prefix + strconv.Itoa(id), Class: ClassVec, ID: id, Width: width}
	}
	var prefix string
	switch width {
	case 128:
		prefix = "xmm"
	case 256:
		prefix = "ymm"
	case 512:
		prefix = "zmm"
	default:
		prefix = "xmm"
	}
	return Register{Name: prefix + strconv.Itoa(id), Class: ClassVec, ID: id, Width: width}
}

// VecSVE returns an SVE z-register (AArch64 only).
func VecSVE(id int) Register {
	return Register{Name: "z" + strconv.Itoa(id), Class: ClassVec, ID: id, Width: 128}
}

// Pred returns a predicate/mask register for the dialect.
func Pred(d Dialect, id int) Register {
	if d == DialectAArch64 {
		return Register{Name: "p" + strconv.Itoa(id), Class: ClassPred, ID: id, Width: 16}
	}
	return Register{Name: "k" + strconv.Itoa(id), Class: ClassPred, ID: id, Width: 64}
}

// ScalarFP returns a scalar double-precision FP register: xmmN on x86,
// dN on AArch64. Scalar FP shares the vector register file on both.
func ScalarFP(d Dialect, id int) Register {
	if d == DialectAArch64 {
		return Register{Name: "d" + strconv.Itoa(id), Class: ClassVec, ID: id, Width: 64}
	}
	return Register{Name: "xmm" + strconv.Itoa(id), Class: ClassVec, ID: id, Width: 128}
}

// FlagsReg returns the condition-flags register for the dialect.
func FlagsReg(d Dialect) Register {
	if d == DialectAArch64 {
		return Register{Name: "nzcv", Class: ClassFlags, ID: 0, Width: 32}
	}
	return Register{Name: "rflags", Class: ClassFlags, ID: 0, Width: 64}
}

// IsZeroReg reports whether the register is an architectural zero register
// (writes discarded, reads yield zero, never a dependency).
func IsZeroReg(r Register) bool {
	return r.Class == ClassGPR && r.ID == 32
}
