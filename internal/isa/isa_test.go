package isa

import (
	"strings"
	"testing"
)

func TestDialectString(t *testing.T) {
	if DialectX86.String() != "x86" {
		t.Errorf("DialectX86.String() = %q", DialectX86.String())
	}
	if DialectAArch64.String() != "aarch64" {
		t.Errorf("DialectAArch64.String() = %q", DialectAArch64.String())
	}
	if !strings.Contains(Dialect(99).String(), "99") {
		t.Errorf("unknown dialect should include its number")
	}
}

func TestRegClassString(t *testing.T) {
	cases := map[RegClass]string{
		ClassNone: "none", ClassGPR: "gpr", ClassVec: "vec",
		ClassPred: "pred", ClassFlags: "flags", ClassIP: "ip",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestRegisterValidAndKey(t *testing.T) {
	var zero Register
	if zero.Valid() {
		t.Error("zero register must be invalid")
	}
	r := Register{Name: "rax", Class: ClassGPR, ID: 0, Width: 64}
	if !r.Valid() {
		t.Error("rax must be valid")
	}
	r32 := Register{Name: "eax", Class: ClassGPR, ID: 0, Width: 32}
	if r.Key() != r32.Key() {
		t.Error("rax and eax must alias (same key)")
	}
	v := Register{Name: "xmm0", Class: ClassVec, ID: 0, Width: 128}
	if r.Key() == v.Key() {
		t.Error("rax and xmm0 must not alias")
	}
}

func TestExtVectorBits(t *testing.T) {
	cases := map[Ext]int{
		ExtScalar: 64, ExtSSE: 128, ExtNEON: 128, ExtSVE: 128,
		ExtAVX: 256, ExtAVX512: 512,
	}
	for e, want := range cases {
		if got := e.VectorBits(); got != want {
			t.Errorf("%s.VectorBits() = %d, want %d", e, got, want)
		}
	}
}

func TestExtString(t *testing.T) {
	for _, e := range []Ext{ExtScalar, ExtSSE, ExtAVX, ExtAVX512, ExtNEON, ExtSVE} {
		if e.String() == "" || strings.Contains(e.String(), "Ext(") {
			t.Errorf("Ext %d has no proper name", e)
		}
	}
}

func TestInstructionIsBranch(t *testing.T) {
	branch := []string{"jne", "jmp", "je", "b", "b.ne", "cbz", "cbnz", "tbz", "tbnz", "ret"}
	for _, m := range branch {
		in := Instruction{Mnemonic: m}
		if !in.IsBranch() {
			t.Errorf("%s must be a branch", m)
		}
	}
	notBranch := []string{"add", "vaddpd", "fadd", "mov", "ldr", "str", "cmp"}
	for _, m := range notBranch {
		in := Instruction{Mnemonic: m}
		if in.IsBranch() {
			t.Errorf("%s must not be a branch", m)
		}
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{
		Mnemonic: "vaddpd",
		Operands: []Operand{
			NewRegOperand(ParseX86Register("zmm1")),
			NewRegOperand(ParseX86Register("zmm2")),
			NewRegOperand(ParseX86Register("zmm3")),
		},
	}
	s := in.String()
	if !strings.Contains(s, "vaddpd") || !strings.Contains(s, "zmm3") {
		t.Errorf("String() = %q", s)
	}
	in.Raw = "raw text"
	if in.String() != "raw text" {
		t.Error("Raw must take precedence in String()")
	}
}

func TestBlockCloneIsDeep(t *testing.T) {
	b, err := ParseBlock("t", "goldencove", DialectX86, "\tvmovupd (%rsi), %ymm0\n")
	if err != nil {
		t.Fatal(err)
	}
	c := b.Clone()
	c.Instrs[0].Operands[0].Mem.Disp = 1234
	if b.Instrs[0].Operands[0].Mem.Disp == 1234 {
		t.Error("Clone must copy memory operands deeply")
	}
	c.Instrs[0].Mnemonic = "changed"
	if b.Instrs[0].Mnemonic == "changed" {
		t.Error("Clone must copy instructions")
	}
}

func TestBlockValidate(t *testing.T) {
	empty := &Block{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty block must not validate")
	}
	bad := &Block{Name: "b", Instrs: []Instruction{{Mnemonic: ""}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty mnemonic must not validate")
	}
	badReg := &Block{Name: "r", Instrs: []Instruction{{
		Mnemonic: "add", Operands: []Operand{NewRegOperand(Register{})},
	}}}
	if err := badReg.Validate(); err == nil {
		t.Error("invalid register must not validate")
	}
	nilMem := &Block{Name: "m", Instrs: []Instruction{{
		Mnemonic: "mov", Operands: []Operand{{Kind: OpMem}},
	}}}
	if err := nilMem.Validate(); err == nil {
		t.Error("nil memory operand must not validate")
	}
}

func TestBlockText(t *testing.T) {
	src := ".L0:\n\tvaddpd %ymm1, %ymm2, %ymm3\n\tjne .L0\n"
	b, err := ParseBlock("t", "zen4", DialectX86, src)
	if err != nil {
		t.Fatal(err)
	}
	text := b.Text()
	if !strings.Contains(text, ".L0:") {
		t.Errorf("Text() must render labels, got %q", text)
	}
	if !strings.Contains(text, "vaddpd") {
		t.Errorf("Text() must render instructions, got %q", text)
	}
}

func TestMemOperandConstructor(t *testing.T) {
	m := NewMemOperand(MemOp{Base: ParseX86Register("rsi"), Disp: 8})
	if m.Kind != OpMem || m.Mem == nil || m.Mem.Disp != 8 {
		t.Errorf("NewMemOperand broken: %+v", m)
	}
	i := NewImmOperand(-5)
	if i.Kind != OpImm || i.Imm != -5 {
		t.Errorf("NewImmOperand broken: %+v", i)
	}
	l := NewLabelOperand(".L0")
	if l.Kind != OpLabel || l.Label != ".L0" {
		t.Errorf("NewLabelOperand broken: %+v", l)
	}
}

func TestOperandKindString(t *testing.T) {
	for k, want := range map[OperandKind]string{OpReg: "reg", OpImm: "imm", OpMem: "mem", OpLabel: "label"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
