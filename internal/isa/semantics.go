package isa

import "strings"

// Effects lists the architectural reads and writes of one instruction.
// Memory dependence is tracked at the level of "reads memory"/"writes
// memory" plus the address registers consumed by each memory operand.
type Effects struct {
	Reads  []RegKey
	Writes []RegKey
	// LoadOps and StoreOps point into the instruction's operands.
	LoadOps  []*MemOp
	StoreOps []*MemOp
}

// ReadsMem reports whether the instruction loads from memory.
func (e *Effects) ReadsMem() bool { return len(e.LoadOps) > 0 }

// WritesMem reports whether the instruction stores to memory.
func (e *Effects) WritesMem() bool { return len(e.StoreOps) > 0 }

// semCat is the coarse semantic category of a mnemonic.
type semCat int

const (
	catALU     semCat = iota // dst = dst OP src (x86) / dst = src1 OP src2 (aarch64)
	catMove                  // dst = src (no read of dst)
	catFMA                   // dst = dst +/- src1*src2 (dst read and written)
	catCompare               // reads all operands, writes flags only
	catBranch                // conditional/unconditional control transfer
	catLoad                  // register <- memory
	catStore                 // memory <- register
	catGather                // vector gather load (mask read/written)
	catZero                  // zero idiom (xor r,r): writes only
	catNop
)

// x86Cats maps mnemonics (with common width suffixes already present) to
// categories. Mnemonics not listed fall back to suffix-based heuristics in
// categorizeX86.
var x86Cats = map[string]semCat{
	"mov": catMove, "movq": catMove, "movl": catMove, "movabs": catMove,
	"lea": catMove, "leaq": catMove,
	"add": catALU, "addq": catALU, "addl": catALU,
	"sub": catALU, "subq": catALU, "subl": catALU,
	"imul": catALU, "imulq": catALU,
	"and": catALU, "andq": catALU, "or": catALU, "orq": catALU,
	"xor": catALU, "xorq": catALU,
	"shl": catALU, "shlq": catALU, "shr": catALU, "shrq": catALU,
	"sal": catALU, "salq": catALU, "sar": catALU, "sarq": catALU,
	"inc": catALU, "incq": catALU, "dec": catALU, "decq": catALU,
	"neg": catALU, "negq": catALU,
	"cmp": catCompare, "cmpq": catCompare, "cmpl": catCompare,
	"test": catCompare, "testq": catCompare,
	"vucomisd": catCompare, "ucomisd": catCompare,
	"nop": catNop,

	// SSE/AVX/AVX-512 moves: load or store depending on operand shape.
	"movupd": catMove, "movapd": catMove, "movsd": catMove,
	"vmovupd": catMove, "vmovapd": catMove, "vmovsd": catMove,
	"vmovq": catMove, "vmovdqu": catMove, "vmovdqa": catMove,
	"vmovntpd": catMove, "movntpd": catMove, "movntdq": catMove,
	"vbroadcastsd": catMove, "vpbroadcastq": catMove,

	// Packed arithmetic. In AT&T AVX these are three-operand
	// (src2, src1, dst): dst is write-only.
	"vaddpd": catMove, "vsubpd": catMove, "vmulpd": catMove, "vdivpd": catMove,
	"vmaxpd": catMove, "vminpd": catMove, "vsqrtpd": catMove,
	"vaddsd": catMove, "vsubsd": catMove, "vmulsd": catMove, "vdivsd": catMove,
	"vsqrtsd": catMove, "vmaxsd": catMove, "vminsd": catMove,
	"vcvtsi2sd": catMove, "vcvtsi2sdq": catMove,
	"vextractf128": catMove, "vextractf64x4": catMove,
	"vpermilpd": catMove, "vunpckhpd": catMove, "vshufpd": catMove,
	"vinsertf128": catMove,

	// Two-operand SSE arithmetic: dst = dst OP src.
	"addpd": catALU, "subpd": catALU, "mulpd": catALU, "divpd": catALU,
	"addsd": catALU, "subsd": catALU, "mulsd": catALU, "divsd": catALU,
	"sqrtsd": catMove, "sqrtpd": catMove,
	"maxpd": catALU, "minpd": catALU, "unpckhpd": catALU,

	// FMA family: destination is read.
	"vfmadd231pd": catFMA, "vfmadd213pd": catFMA, "vfmadd132pd": catFMA,
	"vfmadd231sd": catFMA, "vfmadd213sd": catFMA, "vfmadd132sd": catFMA,
	"vfnmadd231pd": catFMA, "vfmsub231pd": catFMA, "vfnmadd231sd": catFMA,

	"vgatherqpd": catGather, "vgatherdpd": catGather,

	"jmp": catBranch, "jne": catBranch, "je": catBranch, "jb": catBranch,
	"jae": catBranch, "jl": catBranch, "jle": catBranch, "jg": catBranch,
	"jge": catBranch, "ja": catBranch, "jnz": catBranch, "jz": catBranch,
}

var aarch64Cats = map[string]semCat{
	"mov": catMove, "movz": catMove, "movk": catMove, "fmov": catMove,
	"dup": catMove, "adrp": catMove, "adr": catMove,
	"add": catALU, "sub": catALU, "mul": catALU, "lsl": catALU, "lsr": catALU,
	"asr": catALU, "and": catALU, "orr": catALU, "eor": catALU,
	"madd": catFMA, "msub": catFMA,
	"adds": catALU, "subs": catALU,
	"cmp": catCompare, "cmn": catCompare, "fcmp": catCompare, "tst": catCompare,
	"fadd": catALU, "fsub": catALU, "fmul": catALU, "fdiv": catALU,
	"fneg": catMove, "fabs": catMove, "fsqrt": catMove, "fmax": catALU,
	"fmin": catALU, "faddp": catALU, "fmaxp": catALU,
	"fmla": catFMA, "fmls": catFMA, "fmadd": catFMA, "fmsub": catFMA,
	"fnmadd": catFMA, "fnmsub": catFMA,
	"fadda": catFMA, "faddv": catMove,
	"scvtf": catMove, "fcvt": catMove,
	"ldr": catLoad, "ldp": catLoad, "ld1": catLoad, "ld1d": catGather,
	"ld1rd": catLoad, "ldur": catLoad,
	"str": catStore, "stp": catStore, "st1": catStore, "st1d": catStore,
	"stur": catStore, "stnp": catStore,
	"b": catBranch, "b.ne": catBranch, "b.eq": catBranch, "b.lt": catBranch,
	"b.le": catBranch, "b.gt": catBranch, "b.ge": catBranch, "b.cc": catBranch,
	"b.cs": catBranch, "b.mi": catBranch, "b.first": catBranch, "b.any": catBranch,
	"cbz": catBranch, "cbnz": catBranch, "tbz": catBranch, "tbnz": catBranch,
	"ret":   catBranch,
	"ptrue": catMove, "pfalse": catMove,
	"whilelo": catCompare, "whilelt": catCompare,
	"incd": catALU, "incw": catALU, "cntd": catMove, "cntw": catMove,
	"index": catMove,
	"nop":   catNop,
}

func categorizeX86(m string) semCat {
	if c, ok := x86Cats[m]; ok {
		return c
	}
	if strings.HasPrefix(m, "j") {
		return catBranch
	}
	if strings.HasPrefix(m, "vfma") || strings.HasPrefix(m, "vfms") ||
		strings.HasPrefix(m, "vfnma") || strings.HasPrefix(m, "vfnms") {
		return catFMA
	}
	if strings.HasPrefix(m, "vgather") {
		return catGather
	}
	if strings.HasPrefix(m, "v") {
		return catMove // three-operand VEX default: dst write-only
	}
	return catALU
}

func categorizeAArch64(m string) semCat {
	if c, ok := aarch64Cats[m]; ok {
		return c
	}
	if strings.HasPrefix(m, "b.") {
		return catBranch
	}
	if strings.HasPrefix(m, "ld") {
		return catLoad
	}
	if strings.HasPrefix(m, "st") {
		return catStore
	}
	return catALU
}

// flagWritersX86 lists x86 mnemonic prefixes that set RFLAGS.
func x86WritesFlags(m string) bool {
	switch strings.TrimSuffix(strings.TrimSuffix(m, "q"), "l") {
	case "add", "sub", "inc", "dec", "neg", "and", "or", "xor", "cmp",
		"test", "imul", "shl", "shr", "sal", "sar":
		return true
	}
	return m == "vucomisd" || m == "ucomisd"
}

// InstrEffects computes the architectural reads and writes of an
// instruction under the block's dialect. The result is deterministic and
// does not alias the instruction's operand slice (except for MemOp
// pointers, which identify the operands).
func InstrEffects(in *Instruction, d Dialect) Effects {
	if d == DialectAArch64 {
		return effectsAArch64(in, Effects{})
	}
	return effectsX86(in, Effects{})
}

// EffectsArena backs InstrEffectsArena results with reusable flat
// buffers, so repeated effect computation does O(1) heap work after
// warmup. The zero value is ready; an arena must not be shared between
// goroutines. Effects returned against an arena stay valid until its
// next Reset.
type EffectsArena struct {
	tmp           Effects
	reads, writes []RegKey
	loads, stores []*MemOp
}

// Reset recycles all effects handed out since the last Reset, keeping
// the allocated capacity.
func (a *EffectsArena) Reset() {
	a.reads, a.writes = a.reads[:0], a.writes[:0]
	a.loads, a.stores = a.loads[:0], a.stores[:0]
}

// InstrEffectsArena is InstrEffects with the result slices carved out of
// a's buffers. A nil arena falls back to fresh allocations.
func InstrEffectsArena(in *Instruction, d Dialect, a *EffectsArena) Effects {
	if a == nil {
		return InstrEffects(in, d)
	}
	seed := Effects{
		Reads:    a.tmp.Reads[:0],
		Writes:   a.tmp.Writes[:0],
		LoadOps:  a.tmp.LoadOps[:0],
		StoreOps: a.tmp.StoreOps[:0],
	}
	var e Effects
	if d == DialectAArch64 {
		e = effectsAArch64(in, seed)
	} else {
		e = effectsX86(in, seed)
	}
	a.tmp = e
	var out Effects
	if len(e.Reads) > 0 {
		n := len(a.reads)
		a.reads = append(a.reads, e.Reads...)
		out.Reads = a.reads[n:len(a.reads):len(a.reads)]
	}
	if len(e.Writes) > 0 {
		n := len(a.writes)
		a.writes = append(a.writes, e.Writes...)
		out.Writes = a.writes[n:len(a.writes):len(a.writes)]
	}
	if len(e.LoadOps) > 0 {
		n := len(a.loads)
		a.loads = append(a.loads, e.LoadOps...)
		out.LoadOps = a.loads[n:len(a.loads):len(a.loads)]
	}
	if len(e.StoreOps) > 0 {
		n := len(a.stores)
		a.stores = append(a.stores, e.StoreOps...)
		out.StoreOps = a.stores[n:len(a.stores):len(a.stores)]
	}
	return out
}

func addrReads(e *Effects, m *MemOp) {
	if m.Base.Valid() && !IsZeroReg(m.Base) {
		e.Reads = append(e.Reads, m.Base.Key())
	}
	if m.Index.Valid() && !IsZeroReg(m.Index) {
		e.Reads = append(e.Reads, m.Index.Key())
	}
}

// effectsX86 builds the effect sets by appending to e's (possibly
// capacity-carrying, length-zero) slices.
func effectsX86(in *Instruction, e Effects) Effects {
	cat := categorizeX86(in.Mnemonic)
	ops := in.Operands
	n := len(ops)

	switch cat {
	case catNop:
		return e
	case catBranch:
		if in.Mnemonic != "jmp" {
			e.Reads = append(e.Reads, RegKey{Class: ClassFlags, ID: 0})
		}
		return e
	case catCompare:
		for i := range ops {
			collectRead(&e, &ops[i])
		}
		e.Writes = append(e.Writes, RegKey{Class: ClassFlags, ID: 0})
		return e
	case catGather:
		// vgatherqpd mem, mask, dst (AVX2) or mem, dst{k} (AVX-512):
		// memory read through vector index; mask read and written.
		for i := 0; i < n-1; i++ {
			collectRead(&e, &ops[i])
		}
		if n >= 2 && ops[n-2].Kind == OpReg {
			e.Writes = append(e.Writes, ops[n-2].Reg.Key()) // mask cleared
		}
		if n >= 1 && ops[n-1].Kind == OpReg {
			e.Writes = append(e.Writes, ops[n-1].Reg.Key())
		}
		for i := range ops {
			if ops[i].Kind == OpMem {
				e.LoadOps = append(e.LoadOps, ops[i].Mem)
			}
		}
		return e
	}

	if n == 0 {
		return e
	}

	// AT&T order: sources first, destination last.
	dst := &ops[n-1]
	zeroIdiom := false
	if (strings.HasPrefix(in.Mnemonic, "xor") || strings.HasPrefix(in.Mnemonic, "vxorpd") ||
		strings.HasPrefix(in.Mnemonic, "vpxor")) && n >= 2 {
		// xor r,r / vxorpd x,x,x zeroes the destination without reading.
		same := true
		for i := 0; i < n-1; i++ {
			if ops[i].Kind != OpReg || ops[0].Kind != OpReg || ops[i].Reg.Key() != ops[0].Reg.Key() {
				same = false
				break
			}
		}
		if same && dst.Kind == OpReg && ops[0].Kind == OpReg {
			zeroIdiom = true
		}
	}

	if !zeroIdiom {
		for i := 0; i < n-1; i++ {
			collectRead(&e, &ops[i])
		}
	}

	switch dst.Kind {
	case OpReg:
		if cat == catALU && n >= 2 && !zeroIdiom {
			e.Reads = append(e.Reads, dst.Reg.Key())
		}
		if cat == catFMA {
			e.Reads = append(e.Reads, dst.Reg.Key())
		}
		if (cat == catALU) && n == 1 { // inc/dec/neg style
			e.Reads = append(e.Reads, dst.Reg.Key())
		}
		if !IsZeroReg(dst.Reg) {
			e.Writes = append(e.Writes, dst.Reg.Key())
		}
	case OpMem:
		addrReads(&e, dst.Mem)
		if cat == catALU { // read-modify-write to memory
			e.LoadOps = append(e.LoadOps, dst.Mem)
		}
		e.StoreOps = append(e.StoreOps, dst.Mem)
	}

	if x86WritesFlags(in.Mnemonic) {
		e.Writes = append(e.Writes, RegKey{Class: ClassFlags, ID: 0})
	}
	return e
}

// effectsAArch64 builds the effect sets by appending to e's (possibly
// capacity-carrying, length-zero) slices.
func effectsAArch64(in *Instruction, e Effects) Effects {
	cat := categorizeAArch64(in.Mnemonic)
	ops := in.Operands
	n := len(ops)

	switch cat {
	case catNop:
		return e
	case catBranch:
		switch {
		case strings.HasPrefix(in.Mnemonic, "b."):
			e.Reads = append(e.Reads, RegKey{Class: ClassFlags, ID: 0})
		case in.Mnemonic == "cbz" || in.Mnemonic == "cbnz" ||
			in.Mnemonic == "tbz" || in.Mnemonic == "tbnz":
			if n > 0 && ops[0].Kind == OpReg {
				collectRead(&e, &ops[0])
			}
		}
		return e
	case catCompare:
		for i := range ops {
			collectRead(&e, &ops[i])
		}
		if strings.HasPrefix(in.Mnemonic, "while") {
			// whilelo pd, xn, xm writes a predicate, not flags... it
			// writes both (predicate destination + NZCV).
			if n > 0 && ops[0].Kind == OpReg {
				e.Writes = append(e.Writes, ops[0].Reg.Key())
				// first operand is destination, remove from reads
				e.Reads = e.Reads[1:]
			}
		}
		e.Writes = append(e.Writes, RegKey{Class: ClassFlags, ID: 0})
		return e
	case catLoad:
		// ldr dst, [mem] / ldp d1, d2, [mem]
		for i := range ops {
			switch ops[i].Kind {
			case OpReg:
				if !IsZeroReg(ops[i].Reg) {
					e.Writes = append(e.Writes, ops[i].Reg.Key())
				}
			case OpMem:
				addrReads(&e, ops[i].Mem)
				e.LoadOps = append(e.LoadOps, ops[i].Mem)
				if ops[i].Mem.PreIndex || ops[i].Mem.PostIndex {
					e.Writes = append(e.Writes, ops[i].Mem.Base.Key())
				}
			}
		}
		return e
	case catGather:
		// SVE ld1d { zt }, pg/z, [base, zindex]: zt written, pg read,
		// base+index read.
		for i := range ops {
			switch ops[i].Kind {
			case OpReg:
				if i == 0 {
					e.Writes = append(e.Writes, ops[i].Reg.Key())
				} else {
					collectRead(&e, &ops[i])
				}
			case OpMem:
				addrReads(&e, ops[i].Mem)
				if ops[i].Mem.Index.Valid() {
					e.Reads = append(e.Reads, ops[i].Mem.Index.Key())
				}
				e.LoadOps = append(e.LoadOps, ops[i].Mem)
			}
		}
		return e
	case catStore:
		for i := range ops {
			switch ops[i].Kind {
			case OpReg:
				collectRead(&e, &ops[i])
			case OpMem:
				addrReads(&e, ops[i].Mem)
				e.StoreOps = append(e.StoreOps, ops[i].Mem)
				if ops[i].Mem.PreIndex || ops[i].Mem.PostIndex {
					e.Writes = append(e.Writes, ops[i].Mem.Base.Key())
				}
			}
		}
		return e
	}

	if n == 0 {
		return e
	}

	// Destination-first order.
	dst := &ops[0]
	for i := 1; i < n; i++ {
		collectRead(&e, &ops[i])
	}
	// Only destructive accumulate forms read their destination; the
	// four-operand fmadd/madd family carries its addend in operand 3.
	destructive := in.Mnemonic == "fmla" || in.Mnemonic == "fmls" || in.Mnemonic == "fadda"
	switch dst.Kind {
	case OpReg:
		if cat == catFMA && destructive {
			e.Reads = append(e.Reads, dst.Reg.Key())
		}
		if !IsZeroReg(dst.Reg) {
			e.Writes = append(e.Writes, dst.Reg.Key())
		}
	case OpMem:
		addrReads(&e, dst.Mem)
		e.StoreOps = append(e.StoreOps, dst.Mem)
	}
	if in.Mnemonic == "adds" || in.Mnemonic == "subs" {
		e.Writes = append(e.Writes, RegKey{Class: ClassFlags, ID: 0})
	}
	return e
}

func collectRead(e *Effects, op *Operand) {
	switch op.Kind {
	case OpReg:
		if !IsZeroReg(op.Reg) {
			e.Reads = append(e.Reads, op.Reg.Key())
		}
	case OpMem:
		addrReads(e, op.Mem)
		e.LoadOps = append(e.LoadOps, op.Mem)
	}
}
