package isa

import (
	"testing"
)

// Fuzz targets: the parsers must never panic on arbitrary input, and any
// block they accept must validate and survive a Text() -> re-parse round
// trip without changing length.

func FuzzParseX86(f *testing.F) {
	seeds := []string{
		"\tvmovupd (%rsi,%rax,8), %zmm0\n",
		"\tvfmadd231pd 64(%rdx,%rax,8), %zmm15, %zmm0\n",
		"\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjne .L0\n",
		".L0:\n\tvaddpd %ymm1, %ymm2, %ymm3\n",
		"\tvgatherqpd (%rsi,%zmm1,8), %zmm0 {%k1}\n",
		"\tvmovntpd %zmm0, (%rdi)\n",
		"# comment\n\txorq %rax, %rax\n",
		"\tvdivsd %xmm1, %xmm11, %xmm1\n",
		"garbage input (((",
		"\tmov %, %\n",
		"\tvaddpd 0x40(%rsi), %ymm0, %ymm1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := ParseBlock("fuzz", "goldencove", DialectX86, src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("accepted block does not validate: %v", err)
		}
		for i := range b.Instrs {
			_ = InstrEffects(&b.Instrs[i], DialectX86)
		}
		b2, err := ParseBlock("fuzz2", "goldencove", DialectX86, b.Text())
		if err != nil {
			t.Fatalf("rendered block does not re-parse: %v\n%s", err, b.Text())
		}
		if b2.Len() != b.Len() {
			t.Fatalf("round trip changed length %d -> %d", b.Len(), b2.Len())
		}
	})
}

func FuzzParseAArch64(f *testing.F) {
	seeds := []string{
		"\tldr q0, [x1, x3]\n",
		"\tld1d { z0.d }, p0/z, [x1, x3, lsl #3]\n",
		"\tld1d { z0.d }, p0/z, [x1, z1.d]\n",
		"\tfmla v0.2d, v1.2d, v2.2d\n",
		"\tfmadd d0, d1, d2, d3\n",
		"\tstr q0, [x0], #16\n",
		"\tldr d0, [x1, #8]!\n",
		"\twhilelo p0.d, x3, x4\n\tb.first .L0\n",
		"\tsubs x4, x4, #1\n\tb.ne .L0\n",
		"junk [[[",
		"\tldur d0, [x1, #-8]\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := ParseBlock("fuzz", "neoversev2", DialectAArch64, src)
		if err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("accepted block does not validate: %v", err)
		}
		for i := range b.Instrs {
			_ = InstrEffects(&b.Instrs[i], DialectAArch64)
		}
		b2, err := ParseBlock("fuzz2", "neoversev2", DialectAArch64, b.Text())
		if err != nil {
			t.Fatalf("rendered block does not re-parse: %v\n%s", err, b.Text())
		}
		if b2.Len() != b.Len() {
			t.Fatalf("round trip changed length %d -> %d", b.Len(), b2.Len())
		}
	})
}

func FuzzExtractMarkedRegion(f *testing.F) {
	f.Add("# OSACA-BEGIN\n\tnop\n# OSACA-END\n")
	f.Add("no markers at all")
	f.Add("# IACA START\nx\n# IACA END\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic; errors are fine.
		_, _ = ExtractMarkedRegion(src)
	})
}
