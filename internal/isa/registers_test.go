package isa

import "testing"

func TestParseX86Register(t *testing.T) {
	cases := []struct {
		name  string
		class RegClass
		id    int
		width int
	}{
		{"rax", ClassGPR, 0, 64},
		{"rsp", ClassGPR, 4, 64},
		{"r15", ClassGPR, 15, 64},
		{"eax", ClassGPR, 0, 32},
		{"r10d", ClassGPR, 10, 32},
		{"xmm0", ClassVec, 0, 128},
		{"xmm31", ClassVec, 31, 128},
		{"ymm7", ClassVec, 7, 256},
		{"zmm15", ClassVec, 15, 512},
		{"zmm31", ClassVec, 31, 512},
		{"k1", ClassPred, 1, 64},
		{"rip", ClassIP, 0, 64},
		{"rflags", ClassFlags, 0, 64},
	}
	for _, c := range cases {
		r := ParseX86Register(c.name)
		if !r.Valid() {
			t.Errorf("ParseX86Register(%q) invalid", c.name)
			continue
		}
		if r.Class != c.class || r.ID != c.id || r.Width != c.width {
			t.Errorf("ParseX86Register(%q) = %+v, want class=%v id=%d width=%d", c.name, r, c.class, c.id, c.width)
		}
	}
	for _, bad := range []string{"", "xmm32", "zmm99", "foo", "k9", "ymmx"} {
		if ParseX86Register(bad).Valid() {
			t.Errorf("ParseX86Register(%q) should be invalid", bad)
		}
	}
}

func TestParseAArch64Register(t *testing.T) {
	cases := []struct {
		name  string
		class RegClass
		id    int
		width int
	}{
		{"x0", ClassGPR, 0, 64},
		{"x30", ClassGPR, 30, 64},
		{"w5", ClassGPR, 5, 32},
		{"sp", ClassGPR, 31, 64},
		{"xzr", ClassGPR, 32, 64},
		{"d7", ClassVec, 7, 64},
		{"s3", ClassVec, 3, 32},
		{"q2", ClassVec, 2, 128},
		{"v31", ClassVec, 31, 128},
		{"v3.2d", ClassVec, 3, 128},
		{"z9", ClassVec, 9, 128},
		{"z1.d", ClassVec, 1, 128},
		{"p0", ClassPred, 0, 16},
		{"p15", ClassPred, 15, 16},
		{"p0.d", ClassPred, 0, 16},
		{"nzcv", ClassFlags, 0, 32},
	}
	for _, c := range cases {
		r := ParseAArch64Register(c.name)
		if !r.Valid() {
			t.Errorf("ParseAArch64Register(%q) invalid", c.name)
			continue
		}
		if r.Class != c.class || r.ID != c.id || r.Width != c.width {
			t.Errorf("ParseAArch64Register(%q) = %+v, want class=%v id=%d width=%d", c.name, r, c.class, c.id, c.width)
		}
	}
	for _, bad := range []string{"", "x31", "w31", "v32", "p16", "y0", "z32"} {
		if ParseAArch64Register(bad).Valid() {
			t.Errorf("ParseAArch64Register(%q) should be invalid", bad)
		}
	}
}

func TestXAndWAlias(t *testing.T) {
	x := ParseAArch64Register("x5")
	w := ParseAArch64Register("w5")
	if x.Key() != w.Key() {
		t.Error("x5 and w5 must alias")
	}
}

func TestVectorAliasAcrossWidths(t *testing.T) {
	d := ParseAArch64Register("d3")
	v := ParseAArch64Register("v3.2d")
	z := ParseAArch64Register("z3.d")
	if d.Key() != v.Key() || v.Key() != z.Key() {
		t.Error("d3/v3/z3 must alias (shared register file)")
	}
	x86x := ParseX86Register("xmm3")
	x86z := ParseX86Register("zmm3")
	if x86x.Key() != x86z.Key() {
		t.Error("xmm3 and zmm3 must alias")
	}
}

func TestZeroRegister(t *testing.T) {
	if !IsZeroReg(ParseAArch64Register("xzr")) {
		t.Error("xzr must be the zero register")
	}
	if !IsZeroReg(ParseAArch64Register("wzr")) {
		t.Error("wzr must be the zero register")
	}
	if IsZeroReg(ParseAArch64Register("x0")) {
		t.Error("x0 must not be the zero register")
	}
	if IsZeroReg(ParseX86Register("rax")) {
		t.Error("rax must not be the zero register")
	}
}

func TestConstructorHelpers(t *testing.T) {
	if g := GPR(DialectAArch64, 7); g.Name != "x7" || g.ID != 7 {
		t.Errorf("GPR aarch64: %+v", g)
	}
	if g := GPR(DialectX86, 0); g.Name != "rax" {
		t.Errorf("GPR x86 id 0: %+v", g)
	}
	if v := Vec(DialectX86, 3, 512); v.Name != "zmm3" || v.Width != 512 {
		t.Errorf("Vec 512: %+v", v)
	}
	if v := Vec(DialectX86, 3, 256); v.Name != "ymm3" {
		t.Errorf("Vec 256: %+v", v)
	}
	if v := Vec(DialectAArch64, 4, 128); v.Name != "v4" {
		t.Errorf("Vec aarch64: %+v", v)
	}
	if z := VecSVE(2); z.Name != "z2" || z.Class != ClassVec {
		t.Errorf("VecSVE: %+v", z)
	}
	if p := Pred(DialectAArch64, 0); p.Name != "p0" {
		t.Errorf("Pred aarch64: %+v", p)
	}
	if p := Pred(DialectX86, 1); p.Name != "k1" {
		t.Errorf("Pred x86: %+v", p)
	}
	if s := ScalarFP(DialectAArch64, 9); s.Name != "d9" {
		t.Errorf("ScalarFP aarch64: %+v", s)
	}
	if s := ScalarFP(DialectX86, 9); s.Name != "xmm9" {
		t.Errorf("ScalarFP x86: %+v", s)
	}
	if f := FlagsReg(DialectAArch64); f.Class != ClassFlags {
		t.Errorf("FlagsReg aarch64: %+v", f)
	}
	if f := FlagsReg(DialectX86); f.Class != ClassFlags {
		t.Errorf("FlagsReg x86: %+v", f)
	}
}
