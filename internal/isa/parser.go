package isa

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseBlock parses assembly source text in the given dialect into a Block.
// Empty lines, comment lines (#, //, ;) and directives (leading '.') other
// than labels are ignored. Labels attach to the following instruction.
//
// Source must be valid UTF-8: accepted blocks flow into JSON wire forms
// (reports, the persistent store), where encoding/json silently rewrites
// invalid bytes to U+FFFD — a block that cannot round-trip byte-identically
// must be rejected here, not mangled there.
func ParseBlock(name, arch string, d Dialect, src string) (*Block, error) {
	if !utf8.ValidString(src) {
		return nil, fmt.Errorf("isa: %s: source is not valid UTF-8", name)
	}
	b := &Block{Name: name, Arch: arch, Dialect: d}
	pendingLabel := ""
	for lineNo, line := range strings.Split(src, "\n") {
		line = stripComment(line, d)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			pendingLabel = strings.TrimSuffix(line, ":")
			continue
		}
		if strings.HasPrefix(line, ".") {
			continue // assembler directive
		}
		in, err := parseInstr(line, d)
		if err != nil {
			return nil, fmt.Errorf("isa: %s line %d: %w", name, lineNo+1, err)
		}
		in.Label = pendingLabel
		pendingLabel = ""
		b.Instrs = append(b.Instrs, in)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func stripComment(line string, d Dialect) string {
	markers := []string{"#", "//", ";"}
	if d == DialectAArch64 {
		// '#' introduces immediates on AArch64, not comments.
		markers = []string{"//", ";"}
	}
	for _, marker := range markers {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func parseInstr(line string, d Dialect) (Instruction, error) {
	mnemonic, rest := splitMnemonic(line)
	if mnemonic == "" {
		return Instruction{}, fmt.Errorf("empty instruction %q", line)
	}
	var (
		ops []Operand
		err error
	)
	if rest != "" {
		if d == DialectAArch64 {
			ops, err = parseAArch64Operands(rest)
		} else {
			ops, err = parseX86Operands(rest)
		}
		if err != nil {
			return Instruction{}, fmt.Errorf("%q: %w", line, err)
		}
	}
	in := Instruction{Mnemonic: strings.ToLower(mnemonic), Operands: ops, Raw: line}
	in.Ext = classifyExt(&in, d)
	markNonTemporal(&in)
	return in, nil
}

func splitMnemonic(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i+1:])
}

// splitOperands splits on top-level commas, respecting (), [] and {}.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

// ---------------------------------------------------------------------------
// x86 AT&T operands

func parseX86Operands(s string) ([]Operand, error) {
	parts := splitOperands(s)
	ops := make([]Operand, 0, len(parts))
	for _, p := range parts {
		op, err := parseX86Operand(p)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func parseX86Operand(p string) (Operand, error) {
	switch {
	case strings.HasPrefix(p, "$"):
		v, err := parseInt(p[1:])
		if err != nil {
			return Operand{}, fmt.Errorf("bad immediate %q: %w", p, err)
		}
		return NewImmOperand(v), nil
	case strings.HasPrefix(p, "%"):
		// Register, possibly with AVX-512 mask suffix "{%k1}" handled by
		// the caller splitting on '{'.
		name := strings.TrimPrefix(p, "%")
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		name = strings.TrimSpace(name)
		r := ParseX86Register(name)
		if !r.Valid() {
			return Operand{}, fmt.Errorf("unknown register %q", p)
		}
		return NewRegOperand(r), nil
	case strings.Contains(p, "("):
		return parseX86Mem(p)
	default:
		// Bare displacement or label.
		if v, err := parseInt(p); err == nil {
			return NewMemOperand(MemOp{Disp: v}), nil
		}
		return NewLabelOperand(p), nil
	}
}

// parseX86Mem parses disp(base,index,scale).
func parseX86Mem(p string) (Operand, error) {
	open := strings.IndexByte(p, '(')
	closing := strings.LastIndexByte(p, ')')
	if closing < open {
		return Operand{}, fmt.Errorf("bad memory operand %q", p)
	}
	var m MemOp
	if dispStr := strings.TrimSpace(p[:open]); dispStr != "" {
		v, err := parseInt(dispStr)
		if err != nil {
			return Operand{}, fmt.Errorf("bad displacement in %q: %w", p, err)
		}
		m.Disp = v
	}
	inner := p[open+1 : closing]
	fields := strings.Split(inner, ",")
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	if len(fields) >= 1 && fields[0] != "" {
		r := ParseX86Register(strings.TrimPrefix(fields[0], "%"))
		if !r.Valid() {
			return Operand{}, fmt.Errorf("bad base register in %q", p)
		}
		m.Base = r
	}
	if len(fields) >= 2 && fields[1] != "" {
		r := ParseX86Register(strings.TrimPrefix(fields[1], "%"))
		if !r.Valid() {
			return Operand{}, fmt.Errorf("bad index register in %q", p)
		}
		m.Index = r
	}
	m.Scale = 1
	if len(fields) >= 3 && fields[2] != "" {
		sc, err := strconv.Atoi(fields[2])
		if err != nil {
			return Operand{}, fmt.Errorf("bad scale in %q: %w", p, err)
		}
		m.Scale = sc
	}
	return NewMemOperand(m), nil
}

// ---------------------------------------------------------------------------
// AArch64 operands

func parseAArch64Operands(s string) ([]Operand, error) {
	// Post-index writes look like "[x0], #16": merge the immediate into
	// the preceding memory operand.
	parts := splitOperands(s)
	ops := make([]Operand, 0, len(parts))
	for i := 0; i < len(parts); i++ {
		p := parts[i]
		switch {
		case strings.HasPrefix(p, "["):
			op, err := parseAArch64Mem(p)
			if err != nil {
				return nil, err
			}
			// Post-index: "[x0], #16"
			if i+1 < len(parts) && strings.HasPrefix(parts[i+1], "#") {
				v, err := parseInt(strings.TrimPrefix(parts[i+1], "#"))
				if err == nil {
					op.Mem.PostIndex = true
					op.Mem.Disp = v
					i++
				}
			}
			ops = append(ops, op)
		case strings.HasPrefix(p, "{"):
			// Register list "{ v0.2d }" or "{ z0.d }": single register.
			inner := strings.Trim(p, "{} ")
			r := ParseAArch64Register(inner)
			if !r.Valid() {
				return nil, fmt.Errorf("bad register list %q", p)
			}
			ops = append(ops, NewRegOperand(r))
		case strings.HasPrefix(p, "#"):
			v, err := parseInt(strings.TrimPrefix(p, "#"))
			if err != nil {
				return nil, fmt.Errorf("bad immediate %q: %w", p, err)
			}
			ops = append(ops, NewImmOperand(v))
		default:
			// Predicate with qualifier "p0/z" or "p0/m".
			name := p
			if i := strings.IndexByte(name, '/'); i >= 0 {
				name = name[:i]
			}
			if r := ParseAArch64Register(name); r.Valid() {
				ops = append(ops, NewRegOperand(r))
				continue
			}
			// "lsl #3" shift modifiers attached to the previous register
			// operand are ignored for dependency purposes.
			if strings.HasPrefix(p, "lsl") || strings.HasPrefix(p, "lsr") ||
				strings.HasPrefix(p, "asr") || strings.HasPrefix(p, "sxtw") ||
				strings.HasPrefix(p, "uxtw") || strings.HasPrefix(p, "mul vl") {
				continue
			}
			if v, err := parseInt(p); err == nil {
				ops = append(ops, NewImmOperand(v))
				continue
			}
			ops = append(ops, NewLabelOperand(p))
		}
	}
	return ops, nil
}

// parseAArch64Mem parses [base], [base, #disp], [base, #disp]!,
// [base, xIndex], [base, xIndex, lsl #3], [base, zIndex.d] (SVE gather),
// and [base, #imm, mul vl].
func parseAArch64Mem(p string) (Operand, error) {
	pre := strings.HasSuffix(p, "!")
	p = strings.TrimSuffix(p, "!")
	if !strings.HasPrefix(p, "[") || !strings.HasSuffix(p, "]") {
		return Operand{}, fmt.Errorf("bad memory operand %q", p)
	}
	inner := p[1 : len(p)-1]
	fields := splitOperands(inner)
	var m MemOp
	m.PreIndex = pre
	m.Scale = 1
	for i, f := range fields {
		f = strings.TrimSpace(f)
		switch {
		case i == 0:
			r := ParseAArch64Register(f)
			if !r.Valid() {
				return Operand{}, fmt.Errorf("bad base register in %q", p)
			}
			m.Base = r
		case strings.HasPrefix(f, "#"):
			v, err := parseInt(strings.TrimPrefix(f, "#"))
			if err != nil {
				return Operand{}, fmt.Errorf("bad displacement in %q: %w", p, err)
			}
			m.Disp = v
		case strings.HasPrefix(f, "lsl"):
			sh := strings.TrimSpace(strings.TrimPrefix(f, "lsl"))
			sh = strings.TrimPrefix(sh, "#")
			if n, err := strconv.Atoi(sh); err == nil {
				m.Scale = 1 << n
			}
		case f == "mul vl":
			// SVE vector-length-scaled displacement; scale is irrelevant
			// for dependency analysis.
		default:
			r := ParseAArch64Register(f)
			if !r.Valid() {
				return Operand{}, fmt.Errorf("bad index register in %q", p)
			}
			m.Index = r
		}
	}
	return NewMemOperand(m), nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// Extension classification

func classifyExt(in *Instruction, d Dialect) Ext {
	if d == DialectAArch64 {
		return classifyExtAArch64(in)
	}
	return classifyExtX86(in)
}

func classifyExtX86(in *Instruction) Ext {
	maxW := 0
	for _, op := range in.Operands {
		if op.Kind == OpReg && op.Reg.Class == ClassVec && op.Reg.Width > maxW {
			maxW = op.Reg.Width
		}
	}
	m := in.Mnemonic
	scalarFP := strings.HasSuffix(m, "sd") && m != "movabsd"
	switch {
	case maxW == 512:
		return ExtAVX512
	case maxW == 256:
		return ExtAVX
	case maxW == 128 && !scalarFP && strings.HasPrefix(m, "v"):
		// 128-bit VEX-encoded packed ops count as AVX for licensing.
		if strings.HasSuffix(m, "pd") || strings.HasSuffix(m, "ps") ||
			strings.HasPrefix(m, "vmovdq") {
			return ExtAVX
		}
		return ExtScalar
	case maxW == 128 && !scalarFP && !strings.HasPrefix(m, "v"):
		if strings.HasSuffix(m, "pd") || strings.HasSuffix(m, "ps") {
			return ExtSSE
		}
		return ExtScalar
	default:
		return ExtScalar
	}
}

func classifyExtAArch64(in *Instruction) Ext {
	for _, op := range in.Operands {
		if op.Kind != OpReg || op.Reg.Class != ClassVec {
			continue
		}
		switch op.Reg.Name[0] {
		case 'z':
			return ExtSVE
		case 'v', 'q':
			return ExtNEON
		}
	}
	for _, op := range in.Operands {
		if op.Kind == OpReg && op.Reg.Class == ClassPred {
			return ExtSVE
		}
	}
	return ExtScalar
}

func markNonTemporal(in *Instruction) {
	nt := strings.HasPrefix(in.Mnemonic, "vmovnt") ||
		strings.HasPrefix(in.Mnemonic, "movnt") ||
		in.Mnemonic == "stnp"
	if !nt {
		return
	}
	for i := range in.Operands {
		if in.Operands[i].Kind == OpMem {
			in.Operands[i].Mem.NonTemporal = true
		}
	}
}
