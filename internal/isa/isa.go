// Package isa provides an ISA-neutral intermediate representation for
// assembly instruction streams, together with parsers for AT&T-style x86
// and AArch64 assembly and per-mnemonic read/write semantics.
//
// The IR is deliberately small: an Instruction is a mnemonic plus operands,
// annotated with an ISA extension class and load/store/branch flags. All
// microarchitectural knowledge (latency, port usage, µ-op decomposition)
// lives in package uarch; all dependency reasoning lives in package
// depgraph. This package only answers "what does this instruction read and
// write, architecturally?".
package isa

import (
	"fmt"
	"strings"
)

// Dialect selects the assembly syntax family of a block.
type Dialect int

const (
	// DialectX86 is AT&T-syntax x86-64 (source operands first,
	// destination last).
	DialectX86 Dialect = iota
	// DialectAArch64 is ARM 64-bit syntax (destination first).
	DialectAArch64
)

// String returns the conventional name of the dialect.
func (d Dialect) String() string {
	switch d {
	case DialectX86:
		return "x86"
	case DialectAArch64:
		return "aarch64"
	default:
		return fmt.Sprintf("Dialect(%d)", int(d))
	}
}

// RegClass classifies architectural registers for dependency tracking.
type RegClass int

const (
	// ClassNone marks an invalid or absent register.
	ClassNone RegClass = iota
	// ClassGPR is a general-purpose integer register.
	ClassGPR
	// ClassVec is a SIMD/FP vector register (xmm/ymm/zmm, v, z).
	ClassVec
	// ClassPred is an SVE/AVX-512 predicate (mask) register.
	ClassPred
	// ClassFlags is the condition-flags register (RFLAGS, NZCV).
	ClassFlags
	// ClassIP is the instruction pointer (used by branches).
	ClassIP
)

// String returns a short class name.
func (c RegClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassGPR:
		return "gpr"
	case ClassVec:
		return "vec"
	case ClassPred:
		return "pred"
	case ClassFlags:
		return "flags"
	case ClassIP:
		return "ip"
	default:
		return fmt.Sprintf("RegClass(%d)", int(c))
	}
}

// Register is an architectural register. Two registers alias (for
// dependency purposes) iff their Class and ID are equal; Width records the
// access width in bits and Name the spelling found in the source.
type Register struct {
	Name  string
	Class RegClass
	ID    int
	Width int
}

// Valid reports whether r denotes an actual register.
func (r Register) Valid() bool { return r.Class != ClassNone }

// Key returns a map key identifying the renamable storage location.
func (r Register) Key() RegKey { return RegKey{Class: r.Class, ID: r.ID} }

// RegKey identifies an architectural storage location independent of the
// spelling or access width used by a particular operand.
type RegKey struct {
	Class RegClass
	ID    int
}

// String formats the key for debugging.
func (k RegKey) String() string { return fmt.Sprintf("%s%d", k.Class, k.ID) }

// OperandKind discriminates Operand variants.
type OperandKind int

const (
	// OpReg is a register operand.
	OpReg OperandKind = iota
	// OpImm is an immediate operand.
	OpImm
	// OpMem is a memory operand.
	OpMem
	// OpLabel is a code label (branch target).
	OpLabel
)

// String returns a short kind name.
func (k OperandKind) String() string {
	switch k {
	case OpReg:
		return "reg"
	case OpImm:
		return "imm"
	case OpMem:
		return "mem"
	case OpLabel:
		return "label"
	default:
		return fmt.Sprintf("OperandKind(%d)", int(k))
	}
}

// MemOp describes a memory reference: base + index*scale + disp.
type MemOp struct {
	Base  Register
	Index Register
	Scale int
	Disp  int64
	// Width is the access width in bits (elements x element size for
	// vector accesses).
	Width int
	// NonTemporal marks streaming (write-combining) accesses.
	NonTemporal bool
	// PreIndex / PostIndex mark AArch64 addressing modes that write the
	// base register back.
	PreIndex  bool
	PostIndex bool
}

// Operand is one instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   Register
	Imm   int64
	Mem   *MemOp
	Label string
}

// NewRegOperand builds a register operand.
func NewRegOperand(r Register) Operand { return Operand{Kind: OpReg, Reg: r} }

// NewImmOperand builds an immediate operand.
func NewImmOperand(v int64) Operand { return Operand{Kind: OpImm, Imm: v} }

// NewMemOperand builds a memory operand.
func NewMemOperand(m MemOp) Operand { return Operand{Kind: OpMem, Mem: &m} }

// NewLabelOperand builds a label operand.
func NewLabelOperand(l string) Operand { return Operand{Kind: OpLabel, Label: l} }

// Ext is the ISA extension class of an instruction; it matters for the
// frequency governor (license-based throttling) and for model lookup.
type Ext int

const (
	// ExtScalar covers scalar integer and scalar FP instructions.
	ExtScalar Ext = iota
	// ExtSSE is 128-bit x86 SIMD.
	ExtSSE
	// ExtAVX is 256-bit x86 SIMD (AVX/AVX2).
	ExtAVX
	// ExtAVX512 is 512-bit x86 SIMD.
	ExtAVX512
	// ExtNEON is 128-bit AArch64 Advanced SIMD.
	ExtNEON
	// ExtSVE is scalable-vector AArch64 SIMD (128-bit on Neoverse V2).
	ExtSVE
)

// String returns the conventional extension name.
func (e Ext) String() string {
	switch e {
	case ExtScalar:
		return "scalar"
	case ExtSSE:
		return "sse"
	case ExtAVX:
		return "avx"
	case ExtAVX512:
		return "avx512"
	case ExtNEON:
		return "neon"
	case ExtSVE:
		return "sve"
	default:
		return fmt.Sprintf("Ext(%d)", int(e))
	}
}

// ParseExt resolves an extension name as produced by Ext.String — the
// spelling machine files use for frequency-governor tables.
func ParseExt(s string) (Ext, error) {
	switch s {
	case "scalar":
		return ExtScalar, nil
	case "sse":
		return ExtSSE, nil
	case "avx":
		return ExtAVX, nil
	case "avx512":
		return ExtAVX512, nil
	case "neon":
		return ExtNEON, nil
	case "sve":
		return ExtSVE, nil
	default:
		return 0, fmt.Errorf("isa: unknown ISA extension %q", s)
	}
}

// VectorBits returns the register width implied by the extension class,
// or 64 for scalar code.
func (e Ext) VectorBits() int {
	switch e {
	case ExtSSE, ExtNEON, ExtSVE:
		return 128
	case ExtAVX:
		return 256
	case ExtAVX512:
		return 512
	default:
		return 64
	}
}

// Instruction is one assembly instruction in IR form.
type Instruction struct {
	// Mnemonic is the lower-case opcode without width suffixes removed;
	// e.g. "vfmadd231pd", "fmla", "addq".
	Mnemonic string
	Operands []Operand
	Ext      Ext
	// Raw preserves the source text when the instruction was parsed.
	Raw string
	// Label is a non-empty code label attached to this instruction.
	Label string
}

// IsBranch reports whether the instruction redirects control flow.
func (in *Instruction) IsBranch() bool {
	m := in.Mnemonic
	if strings.HasPrefix(m, "j") && m != "jrcxz" {
		return true
	}
	if m == "b" || strings.HasPrefix(m, "b.") || m == "cbz" || m == "cbnz" ||
		m == "tbz" || m == "tbnz" || m == "ret" || m == "jmp" {
		return true
	}
	return false
}

// MemOperands returns all memory operands of the instruction.
func (in *Instruction) MemOperands() []*MemOp {
	var out []*MemOp
	for i := range in.Operands {
		if in.Operands[i].Kind == OpMem {
			out = append(out, in.Operands[i].Mem)
		}
	}
	return out
}

// String formats the instruction roughly as source text.
func (in *Instruction) String() string {
	if in.Raw != "" {
		return in.Raw
	}
	var sb strings.Builder
	sb.WriteString(in.Mnemonic)
	for i, op := range in.Operands {
		if i == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteString(", ")
		}
		switch op.Kind {
		case OpReg:
			sb.WriteString(op.Reg.Name)
		case OpImm:
			fmt.Fprintf(&sb, "$%d", op.Imm)
		case OpLabel:
			sb.WriteString(op.Label)
		case OpMem:
			m := op.Mem
			if m.Base.Valid() {
				fmt.Fprintf(&sb, "%d(%s)", m.Disp, m.Base.Name)
			} else {
				fmt.Fprintf(&sb, "%d", m.Disp)
			}
		}
	}
	return sb.String()
}

// Block is a straight-line instruction sequence representing one loop body
// (the innermost-loop kernel the in-core model analyses).
type Block struct {
	// Name identifies the block (kernel/compiler/flags).
	Name string
	// Arch is the target microarchitecture key ("goldencove", ...).
	Arch string
	// Dialect is the assembly syntax the block was written in.
	Dialect Dialect
	Instrs  []Instruction
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return len(b.Instrs) }

// Clone returns a deep copy of the block (operand slices and memory
// operands are duplicated so mutations do not alias).
func (b *Block) Clone() *Block {
	nb := &Block{Name: b.Name, Arch: b.Arch, Dialect: b.Dialect}
	nb.Instrs = make([]Instruction, len(b.Instrs))
	for i := range b.Instrs {
		in := b.Instrs[i]
		ops := make([]Operand, len(in.Operands))
		copy(ops, in.Operands)
		for j := range ops {
			if ops[j].Kind == OpMem && ops[j].Mem != nil {
				m := *ops[j].Mem
				ops[j].Mem = &m
			}
		}
		in.Operands = ops
		nb.Instrs[i] = in
	}
	return nb
}

// Text renders the block as assembly source in its dialect.
func (b *Block) Text() string {
	var sb strings.Builder
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Label != "" {
			sb.WriteString(in.Label)
			sb.WriteString(":\n")
		}
		sb.WriteString("\t")
		sb.WriteString(in.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil.
func (b *Block) Validate() error {
	if len(b.Instrs) == 0 {
		return fmt.Errorf("isa: block %q has no instructions", b.Name)
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Mnemonic == "" {
			return fmt.Errorf("isa: block %q instr %d has empty mnemonic", b.Name, i)
		}
		for j, op := range in.Operands {
			switch op.Kind {
			case OpReg:
				if !op.Reg.Valid() {
					return fmt.Errorf("isa: block %q instr %d (%s) operand %d: invalid register", b.Name, i, in.Mnemonic, j)
				}
			case OpMem:
				if op.Mem == nil {
					return fmt.Errorf("isa: block %q instr %d (%s) operand %d: nil memory operand", b.Name, i, in.Mnemonic, j)
				}
			}
		}
	}
	return nil
}
