package isa

import (
	"fmt"
	"strings"
)

// Marker conventions recognized by ExtractMarkedRegion. OSACA and
// kerncraft mark the kernel loop in a larger listing with comment
// markers; IACA uses magic byte sequences that compilers emit as the
// moves below.
var (
	beginMarkers = []string{
		"OSACA-BEGIN",
		"LLVM-MCA-BEGIN",
		"IACA START",
	}
	endMarkers = []string{
		"OSACA-END",
		"LLVM-MCA-END",
		"IACA END",
	}
	// IACA's byte-level markers appear as these instructions.
	iacaBeginInstr = "movl $111, %ebx"
	iacaEndInstr   = "movl $222, %ebx"
)

// ExtractMarkedRegion returns the lines between a begin and an end marker
// if the source contains any recognized marker pair, or the input
// unchanged when no markers are present. An unmatched begin or end marker
// is an error.
func ExtractMarkedRegion(src string) (string, error) {
	lines := strings.Split(src, "\n")
	begin, end := -1, -1
	for i, line := range lines {
		if isMarkerLine(line, beginMarkers, iacaBeginInstr) {
			if begin >= 0 {
				return "", fmt.Errorf("isa: duplicate begin marker at line %d", i+1)
			}
			begin = i
		}
		if isMarkerLine(line, endMarkers, iacaEndInstr) {
			if end >= 0 {
				return "", fmt.Errorf("isa: duplicate end marker at line %d", i+1)
			}
			end = i
		}
	}
	switch {
	case begin < 0 && end < 0:
		return src, nil
	case begin < 0:
		return "", fmt.Errorf("isa: end marker without begin marker")
	case end < 0:
		return "", fmt.Errorf("isa: begin marker without end marker")
	case end <= begin:
		return "", fmt.Errorf("isa: end marker before begin marker")
	}
	return strings.Join(lines[begin+1:end], "\n"), nil
}

func isMarkerLine(line string, comments []string, instr string) bool {
	trimmed := strings.TrimSpace(line)
	for _, c := range comments {
		if strings.Contains(trimmed, c) {
			return true
		}
	}
	return strings.HasPrefix(trimmed, instr)
}

// ParseMarkedBlock extracts the marked region (if any) and parses it.
func ParseMarkedBlock(name, arch string, d Dialect, src string) (*Block, error) {
	region, err := ExtractMarkedRegion(src)
	if err != nil {
		return nil, err
	}
	return ParseBlock(name, arch, d, region)
}
