package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, d Dialect, src string) *Block {
	t.Helper()
	b, err := ParseBlock("test", "arch", d, src)
	if err != nil {
		t.Fatalf("ParseBlock: %v", err)
	}
	return b
}

func TestParseX86Basic(t *testing.T) {
	b := mustParse(t, DialectX86, `
.L0:
	vmovupd (%rsi,%rax,8), %zmm0
	vaddpd 64(%rdx,%rax,8), %zmm0, %zmm1
	vmovupd %zmm1, (%rdi,%rax,8)
	addq $16, %rax
	cmpq %rcx, %rax
	jne .L0
`)
	if b.Len() != 6 {
		t.Fatalf("want 6 instructions, got %d", b.Len())
	}
	if b.Instrs[0].Label != ".L0" {
		t.Errorf("first instruction label = %q", b.Instrs[0].Label)
	}
	ld := b.Instrs[0]
	if ld.Mnemonic != "vmovupd" || ld.Operands[0].Kind != OpMem {
		t.Errorf("load parse wrong: %+v", ld)
	}
	mem := ld.Operands[0].Mem
	if mem.Base.Name != "rsi" || mem.Index.Name != "rax" || mem.Scale != 8 {
		t.Errorf("mem operand wrong: %+v", mem)
	}
	add := b.Instrs[1]
	if add.Operands[0].Mem.Disp != 64 {
		t.Errorf("displacement = %d, want 64", add.Operands[0].Mem.Disp)
	}
	if b.Instrs[3].Operands[0].Imm != 16 {
		t.Errorf("immediate = %d, want 16", b.Instrs[3].Operands[0].Imm)
	}
	if b.Instrs[5].Operands[0].Kind != OpLabel {
		t.Errorf("branch target should be a label")
	}
}

func TestParseX86Comments(t *testing.T) {
	b := mustParse(t, DialectX86, `
	# full-line comment
	addq $1, %rax  # trailing comment
	subq $1, %rax  // another style
`)
	if b.Len() != 2 {
		t.Fatalf("want 2 instructions, got %d", b.Len())
	}
}

func TestParseX86Negative(t *testing.T) {
	b := mustParse(t, DialectX86, "\tvmovsd -8(%rsi,%rax,8), %xmm0\n")
	if b.Instrs[0].Operands[0].Mem.Disp != -8 {
		t.Errorf("negative displacement parse failed: %+v", b.Instrs[0].Operands[0].Mem)
	}
}

func TestParseX86Hex(t *testing.T) {
	b := mustParse(t, DialectX86, "\taddq $0x40, %rax\n")
	if b.Instrs[0].Operands[0].Imm != 64 {
		t.Errorf("hex immediate = %d", b.Instrs[0].Operands[0].Imm)
	}
}

func TestParseX86Gather(t *testing.T) {
	b := mustParse(t, DialectX86, "\tvgatherqpd (%rsi,%zmm1,8), %zmm0\n")
	in := b.Instrs[0]
	if in.Operands[0].Mem.Index.Class != ClassVec {
		t.Errorf("gather index must be a vector register: %+v", in.Operands[0].Mem)
	}
	// Mask-annotated form.
	b2 := mustParse(t, DialectX86, "\tvgatherqpd (%rsi,%zmm1,8), %zmm0 {%k1}\n")
	if b2.Instrs[0].Operands[1].Reg.Name != "zmm0" {
		t.Errorf("masked gather dest parse failed: %+v", b2.Instrs[0].Operands[1])
	}
}

func TestParseX86Errors(t *testing.T) {
	for _, src := range []string{
		"\tvaddpd %badreg, %ymm0, %ymm1\n",
		"\tmovq $zzz, %rax\n",
		"\tvmovupd (%nope), %ymm0\n",
	} {
		if _, err := ParseBlock("bad", "a", DialectX86, src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseAArch64Basic(t *testing.T) {
	b := mustParse(t, DialectAArch64, `
.L0:
	ldr q0, [x1, x3]
	fadd v0.2d, v0.2d, v1.2d
	str q0, [x0, x3]
	add x3, x3, #16
	cmp x3, x4
	b.ne .L0
`)
	if b.Len() != 6 {
		t.Fatalf("want 6 instructions, got %d", b.Len())
	}
	ld := b.Instrs[0]
	if ld.Operands[1].Kind != OpMem || ld.Operands[1].Mem.Base.Name != "x1" || ld.Operands[1].Mem.Index.Name != "x3" {
		t.Errorf("ldr mem operand: %+v", ld.Operands[1])
	}
	if b.Instrs[3].Operands[2].Imm != 16 {
		t.Errorf("aarch64 immediate = %d", b.Instrs[3].Operands[2].Imm)
	}
}

func TestParseAArch64HashNotComment(t *testing.T) {
	b := mustParse(t, DialectAArch64, "\tldr d0, [x1, x3, lsl #3]\n")
	if b.Instrs[0].Operands[1].Mem.Scale != 8 {
		t.Errorf("lsl #3 must scale by 8: %+v", b.Instrs[0].Operands[1].Mem)
	}
}

func TestParseAArch64SVE(t *testing.T) {
	b := mustParse(t, DialectAArch64, `
	ld1d { z0.d }, p0/z, [x1, x3, lsl #3]
	fmla z2.d, p0/m, z0.d, z1.d
	st1d { z2.d }, p0, [x0, x3, lsl #3]
	incd x3
	whilelo p0.d, x3, x4
	b.first .L0
`)
	ld := b.Instrs[0]
	if ld.Operands[0].Reg.Name != "z0" {
		t.Errorf("register list parse: %+v", ld.Operands[0])
	}
	if ld.Operands[1].Reg.Class != ClassPred {
		t.Errorf("predicate parse: %+v", ld.Operands[1])
	}
	if ld.Ext != ExtSVE {
		t.Errorf("ld1d ext = %v, want sve", ld.Ext)
	}
}

func TestParseAArch64Gather(t *testing.T) {
	b := mustParse(t, DialectAArch64, "\tld1d { z0.d }, p0/z, [x1, z1.d]\n")
	mem := b.Instrs[0].Operands[2].Mem
	if mem.Index.Class != ClassVec {
		t.Errorf("gather index must be a vector: %+v", mem)
	}
}

func TestParseAArch64PrePostIndex(t *testing.T) {
	pre := mustParse(t, DialectAArch64, "\tldr d0, [x1, #8]!\n")
	if !pre.Instrs[0].Operands[1].Mem.PreIndex {
		t.Error("pre-index not detected")
	}
	post := mustParse(t, DialectAArch64, "\tldr d0, [x1], #8\n")
	m := post.Instrs[0].Operands[1].Mem
	if !m.PostIndex || m.Disp != 8 {
		t.Errorf("post-index not detected: %+v", m)
	}
}

func TestParseAArch64Negative(t *testing.T) {
	b := mustParse(t, DialectAArch64, "\tldur d0, [x1, #-8]\n")
	if b.Instrs[0].Operands[1].Mem.Disp != -8 {
		t.Errorf("ldur disp = %d", b.Instrs[0].Operands[1].Mem.Disp)
	}
}

func TestExtClassificationX86(t *testing.T) {
	cases := map[string]Ext{
		"\tvaddpd %zmm1, %zmm2, %zmm3\n":      ExtAVX512,
		"\tvaddpd %ymm1, %ymm2, %ymm3\n":      ExtAVX,
		"\tvaddpd %xmm1, %xmm2, %xmm3\n":      ExtAVX,
		"\taddpd %xmm1, %xmm2\n":              ExtSSE,
		"\tvaddsd %xmm1, %xmm2, %xmm3\n":      ExtScalar,
		"\taddq $1, %rax\n":                   ExtScalar,
		"\tvmovntpd %zmm0, (%rdi)\n":          ExtAVX512,
		"\tvmovupd %ymm0, (%rdi)\n":           ExtAVX,
		"\tvfmadd231sd %xmm0, %xmm1, %xmm2\n": ExtScalar,
	}
	for src, want := range cases {
		b := mustParse(t, DialectX86, src)
		if got := b.Instrs[0].Ext; got != want {
			t.Errorf("%q ext = %v, want %v", strings.TrimSpace(src), got, want)
		}
	}
}

func TestExtClassificationAArch64(t *testing.T) {
	cases := map[string]Ext{
		"\tfadd v0.2d, v1.2d, v2.2d\n": ExtNEON,
		"\tfadd z0.d, z1.d, z2.d\n":    ExtSVE,
		"\tfadd d0, d1, d2\n":          ExtScalar,
		"\tadd x0, x1, x2\n":           ExtScalar,
		"\tptrue p0.d\n":               ExtSVE,
		"\tldr q0, [x0]\n":             ExtNEON,
	}
	for src, want := range cases {
		b := mustParse(t, DialectAArch64, src)
		if got := b.Instrs[0].Ext; got != want {
			t.Errorf("%q ext = %v, want %v", strings.TrimSpace(src), got, want)
		}
	}
}

func TestNonTemporalDetection(t *testing.T) {
	nt := mustParse(t, DialectX86, "\tvmovntpd %zmm0, (%rdi)\n")
	if !nt.Instrs[0].Operands[1].Mem.NonTemporal {
		t.Error("vmovntpd must be non-temporal")
	}
	std := mustParse(t, DialectX86, "\tvmovupd %zmm0, (%rdi)\n")
	if std.Instrs[0].Operands[1].Mem.NonTemporal {
		t.Error("vmovupd must not be non-temporal")
	}
	stnp := mustParse(t, DialectAArch64, "\tstnp q0, q1, [x0]\n")
	if !stnp.Instrs[0].Operands[2].Mem.NonTemporal {
		t.Error("stnp must be non-temporal")
	}
}

// TestRoundTripX86 checks that rendering a parsed block and re-parsing it
// yields the same structure.
func TestRoundTripX86(t *testing.T) {
	src := `
.L0:
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd 64(%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`
	b1 := mustParse(t, DialectX86, src)
	b2, err := ParseBlock("rt", "a", DialectX86, b1.Text())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if b1.Len() != b2.Len() {
		t.Fatalf("round trip changed length: %d -> %d", b1.Len(), b2.Len())
	}
	for i := range b1.Instrs {
		if b1.Instrs[i].Mnemonic != b2.Instrs[i].Mnemonic {
			t.Errorf("instr %d mnemonic %q -> %q", i, b1.Instrs[i].Mnemonic, b2.Instrs[i].Mnemonic)
		}
		if len(b1.Instrs[i].Operands) != len(b2.Instrs[i].Operands) {
			t.Errorf("instr %d operand count changed", i)
		}
	}
}

// TestParseIntQuick property-tests the integer scanner against Go's
// formatting.
func TestParseIntQuick(t *testing.T) {
	f := func(v int64) bool {
		if v == -9223372036854775808 {
			return true // -v overflows; out of scope for assembly immediates
		}
		got, err := parseInt(formatInt(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func formatInt(v int64) string {
	if v < 0 {
		return "-" + formatUint(uint64(-v))
	}
	return formatUint(uint64(v))
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestSplitOperandsRespectsBrackets(t *testing.T) {
	got := splitOperands("d0, [x1, x3, lsl #3], #8")
	if len(got) != 3 {
		t.Fatalf("splitOperands = %v", got)
	}
	if got[1] != "[x1, x3, lsl #3]" {
		t.Errorf("bracketed operand split: %q", got[1])
	}
	got = splitOperands("(%rsi,%rax,8), %zmm0")
	if len(got) != 2 {
		t.Fatalf("splitOperands paren = %v", got)
	}
}
