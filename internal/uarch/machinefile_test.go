package uarch

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"incore/internal/isa"
)

// TestMachineFileRoundTrip exports every built-in model and reloads it,
// checking that lookups behave identically.
func TestMachineFileRoundTrip(t *testing.T) {
	for _, orig := range All() {
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: write: %v", orig.Key, err)
		}
		loaded, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", orig.Key, err)
		}
		if loaded.Key != orig.Key || len(loaded.Ports) != len(orig.Ports) {
			t.Errorf("%s: identity fields lost", orig.Key)
		}
		if len(loaded.Entries) != len(orig.Entries) {
			t.Fatalf("%s: entries %d -> %d", orig.Key, len(orig.Entries), len(loaded.Entries))
		}
		if loaded.LoadPorts != orig.LoadPorts ||
			loaded.StoreAGUPorts != orig.StoreAGUPorts ||
			loaded.StoreDataPorts != orig.StoreDataPorts ||
			loaded.WideLoadPorts != orig.WideLoadPorts {
			t.Errorf("%s: port masks changed", orig.Key)
		}
		// The content fingerprint survives the round trip, which is what
		// keeps a re-loaded built-in on the bare (warm-store-compatible)
		// cache key.
		if loaded.Fingerprint() != orig.Fingerprint() {
			t.Errorf("%s: fingerprint changed across round trip", orig.Key)
		}
		if loaded.CacheKey() != orig.Key {
			t.Errorf("%s: round-tripped built-in CacheKey = %q", orig.Key, loaded.CacheKey())
		}
		// The node-level section (ECM, governor, roofline calibration)
		// round-trips exactly.
		if !reflect.DeepEqual(loaded.Node, orig.Node) {
			t.Errorf("%s: node-level parameters changed: %+v vs %+v", orig.Key, loaded.Node, orig.Node)
		}
		// A lookup through the reloaded model matches the original.
		var src string
		if orig.Dialect == isa.DialectX86 {
			src = "\tvaddpd %ymm1, %ymm2, %ymm3\n"
		} else {
			src = "\tfadd v0.2d, v1.2d, v2.2d\n"
		}
		b, err := isa.ParseBlock("t", orig.Key, orig.Dialect, src)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := orig.Lookup(&b.Instrs[0])
		if err != nil {
			t.Fatal(err)
		}
		d2, err := loaded.Lookup(&b.Instrs[0])
		if err != nil {
			t.Fatalf("%s: reloaded lookup: %v", orig.Key, err)
		}
		if d1.Lat != d2.Lat || len(d1.Uops) != len(d2.Uops) ||
			d1.Uops[0].Ports != d2.Uops[0].Ports {
			t.Errorf("%s: lookup semantics changed after round trip", orig.Key)
		}
	}
}

func TestMachineFileRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"key":"x","dialect":"mips","ports":["0"]}`,
		`{"key":"x","name":"X","dialect":"x86","ports":["0"],
		  "issue_width":4,"decode_width":4,"retire_width":4,"rob_size":64,
		  "scheduler_size":16,"load_latency":4,"vec_width":128,
		  "load_ports":["NOPE"],"store_agu_ports":["0"],"store_data_ports":["0"],
		  "load_width_bits":128,"store_width_bits":128,
		  "cores_per_chip":1,"base_freq_ghz":1,"max_freq_ghz":1,
		  "fp_vector_units":1,"int_units":1,"instructions":[]}`,
		`{"unknown_field": 1}`,
	}
	for i, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestMachineFileRejectsTrailingData: a machine file is exactly one JSON
// document; concatenated or truncated-then-appended files must fail
// loudly instead of silently dropping the tail.
func TestMachineFileRejectsTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if err := MustGet("zen4").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()
	for _, tail := range []string{"garbage", "{}", `{"key":"x"}`, "[1,2]", "null"} {
		if _, err := ReadJSON(strings.NewReader(valid + tail)); err == nil {
			t.Errorf("trailing %q must be rejected", tail)
		} else if !strings.Contains(err.Error(), "trailing data") {
			t.Errorf("trailing %q: unexpected error: %v", tail, err)
		}
	}
	// Trailing whitespace is not data; the canonical form itself ends in
	// a newline.
	if _, err := ReadJSON(strings.NewReader(valid + "\n\t \n")); err != nil {
		t.Errorf("trailing whitespace must be accepted: %v", err)
	}
}

func TestMachineFileValidatesSemantics(t *testing.T) {
	// A structurally valid file with an impossible latency must be
	// rejected by the embedded Validate.
	src := `{"key":"x","name":"X","cpu":"c","vendor":"v","dialect":"x86",
	  "ports":["0","1"],
	  "issue_width":4,"decode_width":4,"retire_width":4,"rob_size":64,
	  "scheduler_size":16,
	  "load_ports":["0"],"store_agu_ports":["0"],"store_data_ports":["1"],
	  "load_latency":0,"load_width_bits":128,"store_width_bits":128,
	  "vec_width":128,"cores_per_chip":1,"base_freq_ghz":1,"max_freq_ghz":1,
	  "fp_vector_units":1,"int_units":1,
	  "instructions":[]}`
	if _, err := ReadJSON(strings.NewReader(src)); err == nil {
		t.Error("zero load latency must be rejected")
	}
}

func TestMachineFileHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := MustGet("zen4").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"vaddpd"`, `"FP2"`, `"load_ports"`, `"aarch64"`} {
		if want == `"aarch64"` {
			continue // zen4 is x86
		}
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	if !strings.Contains(out, `"x86"`) {
		t.Error("dialect missing")
	}
}
