package uarch

import (
	"math"
	"testing"
	"testing/quick"

	"incore/internal/isa"
)

func TestPortMaskBasics(t *testing.T) {
	var m PortMask = 0b1011
	if !m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Errorf("Has wrong for %b", m)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	idx := m.Indices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 3 {
		t.Errorf("Indices = %v", idx)
	}
	if PortMask(0).Count() != 0 {
		t.Error("empty mask count")
	}
}

func TestPortMaskCountQuick(t *testing.T) {
	f := func(v uint32) bool {
		m := PortMask(v)
		n := 0
		for i := 0; i < 32; i++ {
			if m.Has(i) {
				n++
			}
		}
		return n == m.Count() && len(m.Indices()) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	// The registry is mutable (other tests may have registered models),
	// but the three compiled-in microarchitectures are always present.
	for _, k := range []string{"goldencove", "neoversev2", "zen4"} {
		m, err := Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if m.Key != k {
			t.Errorf("model key mismatch: %q", m.Key)
		}
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("unknown key must error")
	}
	keys := Keys()
	if len(keys) < 3 || len(All()) != len(keys) {
		t.Errorf("inconsistent registry views: %d keys, %d models", len(keys), len(All()))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("Keys() not sorted: %v", keys)
		}
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m.Key, err)
		}
	}
}

func TestPortCounts(t *testing.T) {
	// Paper Table II.
	want := map[string]int{"neoversev2": 17, "goldencove": 12, "zen4": 13}
	for k, n := range want {
		m := MustGet(k)
		if len(m.Ports) != n {
			t.Errorf("%s: %d ports, want %d", k, len(m.Ports), n)
		}
	}
}

func TestVectorWidths(t *testing.T) {
	want := map[string]int{"neoversev2": 128, "goldencove": 512, "zen4": 256}
	for k, w := range want {
		if m := MustGet(k); m.VecWidth != w {
			t.Errorf("%s: VecWidth %d, want %d", k, m.VecWidth, w)
		}
	}
}

func TestUnitCounts(t *testing.T) {
	type c struct{ intU, fpU int }
	want := map[string]c{
		"neoversev2": {6, 4}, "goldencove": {5, 3}, "zen4": {4, 4},
	}
	for k, v := range want {
		m := MustGet(k)
		if m.IntUnits != v.intU || m.FPVectorUnits != v.fpU {
			t.Errorf("%s: int=%d fp=%d, want %+v", k, m.IntUnits, m.FPVectorUnits, v)
		}
	}
}

func parse1(t *testing.T, m *Model, src string) *isa.Instruction {
	t.Helper()
	b, err := isa.ParseBlock("t", m.Key, m.Dialect, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &b.Instrs[0]
}

func TestLookupExactAndFallback(t *testing.T) {
	m := MustGet("goldencove")
	// Width-specific entry: 512-bit add on ports 0/5.
	in := parse1(t, m, "\tvaddpd %zmm1, %zmm2, %zmm3\n")
	d, err := m.Lookup(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lat != 2 || len(d.Uops) != 1 {
		t.Errorf("512 vaddpd: %+v", d)
	}
	if d.Uops[0].Ports.Count() != 2 {
		t.Errorf("512 vaddpd should use 2 ports, got %d", d.Uops[0].Ports.Count())
	}
	// Fallback to width-any entry for 256-bit.
	in256 := parse1(t, m, "\tvaddpd %ymm1, %ymm2, %ymm3\n")
	d256, err := m.Lookup(in256)
	if err != nil {
		t.Fatal(err)
	}
	if d256.Entry.Width != 0 {
		t.Errorf("256-bit add should match the width-any entry, got width %d", d256.Entry.Width)
	}
}

func TestLookupUnknownMnemonic(t *testing.T) {
	m := MustGet("zen4")
	in := &isa.Instruction{Mnemonic: "frobnicate"}
	if _, err := m.Lookup(in); err == nil {
		t.Error("unknown mnemonic must error")
	} else if _, ok := err.(*ErrNoEntry); !ok {
		t.Errorf("want *ErrNoEntry, got %T", err)
	}
}

func TestLoadFoldingX86(t *testing.T) {
	m := MustGet("goldencove")
	in := parse1(t, m, "\tvaddpd (%rsi,%rax,8), %zmm1, %zmm0\n")
	d, err := m.Lookup(in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsLoad {
		t.Error("memory-source add must be a load")
	}
	if d.LoadLat != m.LoadLat {
		t.Errorf("LoadLat = %d, want %d", d.LoadLat, m.LoadLat)
	}
	if d.TotalLat != d.Lat+m.LoadLat {
		t.Errorf("TotalLat = %d", d.TotalLat)
	}
	nLoads := 0
	for _, u := range d.Uops {
		if u.Kind == UopLoad {
			nLoads++
			// 512-bit load restricted to the wide load ports.
			if u.Ports != m.WideLoadPorts {
				t.Errorf("512-bit load must use wide load ports")
			}
		}
	}
	if nLoads != 1 {
		t.Errorf("want 1 load µ-op, got %d", nLoads)
	}
}

func TestNarrowLoadUsesAllLoadPorts(t *testing.T) {
	m := MustGet("goldencove")
	in := parse1(t, m, "\tvmovsd (%rsi), %xmm0\n")
	d, err := m.Lookup(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range d.Uops {
		if u.Kind == UopLoad && u.Ports != m.LoadPorts {
			t.Errorf("scalar load must use all load ports")
		}
	}
}

func TestStoreFoldingSplitsWideStores(t *testing.T) {
	m := MustGet("goldencove") // StoreWidthBits 256
	in := parse1(t, m, "\tvmovupd %zmm0, (%rdi)\n")
	d, err := m.Lookup(in)
	if err != nil {
		t.Fatal(err)
	}
	var agu, sd int
	for _, u := range d.Uops {
		switch u.Kind {
		case UopStoreAddr:
			agu++
		case UopStoreData:
			sd++
		}
	}
	if agu != 2 || sd != 2 {
		t.Errorf("512-bit store must split into 2 AGU + 2 data µ-ops, got %d/%d", agu, sd)
	}
	if !d.IsStore {
		t.Error("store must be classified as store")
	}
	if d.TotalLat != 0 {
		t.Errorf("stores produce no register result; TotalLat = %d", d.TotalLat)
	}
}

func TestZen4DoublePumping(t *testing.T) {
	m := MustGet("zen4")
	in512 := parse1(t, m, "\tvfmadd231pd %zmm1, %zmm2, %zmm3\n")
	d512, err := m.Lookup(in512)
	if err != nil {
		t.Fatal(err)
	}
	if len(d512.Uops) != 2 {
		t.Errorf("zen4 512-bit FMA must be 2 µ-ops, got %d", len(d512.Uops))
	}
	in256 := parse1(t, m, "\tvfmadd231pd %ymm1, %ymm2, %ymm3\n")
	d256, err := m.Lookup(in256)
	if err != nil {
		t.Fatal(err)
	}
	if len(d256.Uops) != 1 {
		t.Errorf("zen4 256-bit FMA must be 1 µ-op, got %d", len(d256.Uops))
	}
}

func TestGatherDiscrimination(t *testing.T) {
	m := MustGet("neoversev2")
	// Contiguous SVE load.
	cont := parse1(t, m, "\tld1d { z0.d }, p0/z, [x1, x3, lsl #3]\n")
	dc, err := m.Lookup(cont)
	if err != nil {
		t.Fatal(err)
	}
	if len(dc.Uops) != 1 || dc.Lat != 6 {
		t.Errorf("contiguous ld1d: %+v", dc)
	}
	// Gather form (vector index).
	gat := parse1(t, m, "\tld1d { z0.d }, p0/z, [x1, z1.d]\n")
	dg, err := m.Lookup(gat)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Lat != 9 {
		t.Errorf("gather ld1d latency = %d, want 9", dg.Lat)
	}
	if len(dg.Uops) != 2 {
		t.Errorf("gather ld1d should have 2 load µ-ops, got %d", len(dg.Uops))
	}
}

func TestAArch64LoadLatencyInclusive(t *testing.T) {
	m := MustGet("neoversev2")
	in := parse1(t, m, "\tldr q0, [x1, x3]\n")
	d, err := m.Lookup(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.LoadLat != 0 {
		t.Error("aarch64 loads must not get extra LoadLat (entry latency is inclusive)")
	}
	if d.TotalLat != 4 {
		t.Errorf("ldr TotalLat = %d, want 4", d.TotalLat)
	}
}

func TestOperandSig(t *testing.T) {
	m := MustGet("goldencove")
	cases := map[string]string{
		"\tvaddpd %zmm1, %zmm2, %zmm3\n": "v,v,v",
		"\tvmovupd (%rsi), %zmm0\n":      "m,v",
		"\tvmovupd %zmm0, (%rdi)\n":      "v,m",
		"\taddq $8, %rax\n":              "i,r",
		"\tcmpq %rbx, %rax\n":            "r,r",
		"\tjne .L0\n":                    "l",
	}
	for src, want := range cases {
		in := parse1(t, m, src)
		if got := OperandSig(in); got != want {
			t.Errorf("sig(%q) = %q, want %q", src, got, want)
		}
	}
}

// TestTableIIIThroughputFromEntries checks that the machine-model entries
// imply the paper's Table III reciprocal throughputs.
func TestTableIIIThroughputFromEntries(t *testing.T) {
	check := func(key, src string, wantElemsPerCy float64, lanes int) {
		m := MustGet(key)
		in := parse1(t, m, src)
		d, err := m.Lookup(in)
		if err != nil {
			t.Fatalf("%s %s: %v", key, src, err)
		}
		rtp := d.ThroughputCycles()
		got := float64(lanes) / rtp
		if math.Abs(got-wantElemsPerCy) > 0.05*wantElemsPerCy {
			t.Errorf("%s %q: %.2f elem/cy, want %.2f", key, src, got, wantElemsPerCy)
		}
	}
	// VEC ADD: 8 / 16 / 8 elements per cycle.
	check("neoversev2", "\tfadd v0.2d, v1.2d, v2.2d\n", 8, 2)
	check("goldencove", "\tvaddpd %zmm1, %zmm2, %zmm0\n", 16, 8)
	check("zen4", "\tvaddpd %ymm1, %ymm2, %ymm0\n", 8, 4)
	// Scalar ADD: 4 / 2 / 2.
	check("neoversev2", "\tfadd d0, d1, d2\n", 4, 1)
	check("goldencove", "\tvaddsd %xmm1, %xmm2, %xmm0\n", 2, 1)
	check("zen4", "\tvaddsd %xmm1, %xmm2, %xmm0\n", 2, 1)
	// Divide: 0.4 / 0.25 / 0.2 scalar.
	check("neoversev2", "\tfdiv d0, d1, d2\n", 0.4, 1)
	check("goldencove", "\tvdivsd %xmm1, %xmm2, %xmm0\n", 0.25, 1)
	check("zen4", "\tvdivsd %xmm1, %xmm2, %xmm0\n", 0.2, 1)
}

// TestTableIIILatencies checks the latency column of Table III.
func TestTableIIILatencies(t *testing.T) {
	check := func(key, src string, want int) {
		m := MustGet(key)
		in := parse1(t, m, src)
		d, err := m.Lookup(in)
		if err != nil {
			t.Fatalf("%s %s: %v", key, src, err)
		}
		if d.Lat != want {
			t.Errorf("%s %q: lat %d, want %d", key, src, d.Lat, want)
		}
	}
	check("neoversev2", "\tfadd v0.2d, v1.2d, v2.2d\n", 2)
	check("neoversev2", "\tfmul v0.2d, v1.2d, v2.2d\n", 3)
	check("neoversev2", "\tfmla v0.2d, v1.2d, v2.2d\n", 4)
	check("goldencove", "\tvaddpd %zmm1, %zmm2, %zmm0\n", 2)
	check("goldencove", "\tvmulpd %zmm1, %zmm2, %zmm0\n", 4)
	check("goldencove", "\tvfmadd231sd %xmm1, %xmm2, %xmm0\n", 5)
	check("zen4", "\tvaddpd %ymm1, %ymm2, %ymm0\n", 3)
	check("zen4", "\tvfmadd231pd %ymm1, %ymm2, %ymm0\n", 4)
	check("zen4", "\tvdivsd %xmm1, %xmm2, %xmm0\n", 13)
}

func TestValidateCatchesBrokenModels(t *testing.T) {
	m := &Model{Key: "x", Name: "X", Ports: []string{"0"},
		IssueWidth: 4, DecodeWidth: 4, RetireWidth: 4, ROBSize: 64,
		SchedSize: 16, LoadLat: 4, VecWidth: 128,
		LoadPorts: 1, StoreAGUPorts: 1, StoreDataPorts: 1,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("minimal model should validate: %v", err)
	}
	bad := *m
	bad.LoadLat = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero LoadLat must fail validation")
	}
	bad2 := *m
	bad2.Entries = []Entry{{Mnemonic: "op", Uops: []Uop{{Ports: 0b10, Cycles: 1}}}}
	if err := bad2.Validate(); err == nil {
		t.Error("µ-op referencing missing port must fail validation")
	}
	bad3 := *m
	bad3.Entries = []Entry{
		{Mnemonic: "op", Uops: []Uop{{Ports: 1, Cycles: 1}}},
		{Mnemonic: "op", Uops: []Uop{{Ports: 1, Cycles: 1}}},
	}
	if err := bad3.Validate(); err == nil {
		t.Error("duplicate entries must fail validation")
	}
	bad4 := *m
	bad4.Entries = []Entry{{Mnemonic: "op", Uops: []Uop{{Ports: 1, Cycles: -1}}}}
	if err := bad4.Validate(); err == nil {
		t.Error("negative cycles must fail validation")
	}
}

func TestUopKindString(t *testing.T) {
	for k, want := range map[UopKind]string{
		UopCompute: "compute", UopLoad: "load", UopStoreAddr: "staddr",
		UopStoreData: "stdata", UopBranch: "branch",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestHasEntry(t *testing.T) {
	m := MustGet("goldencove")
	if !m.HasEntry("vaddpd") {
		t.Error("goldencove must know vaddpd")
	}
	if m.HasEntry("fmla") {
		t.Error("goldencove must not know fmla")
	}
}

func TestPortsByNamePanicsOnUnknown(t *testing.T) {
	m := MustGet("zen4")
	defer func() {
		if recover() == nil {
			t.Error("PortsByName with unknown port must panic")
		}
	}()
	m.PortsByName("NOPE")
}
