package uarch

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// tinyModel builds a minimal valid x86 model under the given key; each
// call returns identical content, so fingerprints of two tinyModels with
// the same key are equal.
func tinyModel(key string) *Model {
	m := &Model{
		Key: key, Name: "Tiny " + key, CPU: "testbed", Vendor: "test",
		Ports:      []string{"p0", "p1", "ld", "sa", "sd"},
		IssueWidth: 2, DecodeWidth: 2, RetireWidth: 2,
		ROBSize: 16, SchedSize: 8,
		LoadLat: 4, LoadWidthBits: 128, StoreWidthBits: 128,
		VecWidth: 128, CoresPerChip: 4, BaseFreqGHz: 1.0, MaxFreqGHz: 2.0,
		FPVectorUnits: 1, IntUnits: 2,
	}
	m.LoadPorts = m.PortsByName("ld")
	m.StoreAGUPorts = m.PortsByName("sa")
	m.StoreDataPorts = m.PortsByName("sd")
	m.Entries = []Entry{
		{Mnemonic: "addq", Lat: 1, Uops: []Uop{{Ports: m.PortsByName("p0", "p1"), Cycles: 1}}},
	}
	return m
}

// roundTrip clones a model through its machine file.
func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterGetAndCacheKey(t *testing.T) {
	m := tinyModel("tiny-register")
	created, err := Register(m)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first registration must report created")
	}
	got, err := Get("tiny-register")
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Error("Get must return the registered model")
	}
	// A runtime model's cache identity carries its fingerprint.
	wantCK := "tiny-register@" + m.Fingerprint()
	if m.CacheKey() != wantCK {
		t.Errorf("CacheKey = %q, want %q", m.CacheKey(), wantCK)
	}
	// Re-registering identical content (same or equal model) is a
	// created=false no-op.
	if created, err := Register(m); err != nil || created {
		t.Errorf("idempotent re-register: created=%t err=%v", created, err)
	}
	if created, err := Register(tinyModel("tiny-register")); err != nil || created {
		t.Errorf("re-register of equal content: created=%t err=%v", created, err)
	}
	// Different content under a taken key must be rejected.
	variant := tinyModel("tiny-register")
	variant.ROBSize = 32
	if _, err := Register(variant); err == nil {
		t.Error("conflicting content under a taken key must be rejected")
	}
	// The registry still resolves to the original.
	if got2, _ := Get("tiny-register"); got2 != m {
		t.Error("rejected registration must not replace the model")
	}
}

func TestRegisterCannotShadowBuiltin(t *testing.T) {
	variant := roundTrip(t, MustGet("zen4"))
	variant.StoreDataPorts |= variant.PortsByName("AGU1")
	if err := variant.Reindex(); err != nil {
		t.Fatal(err)
	}
	if _, err := Register(variant); err == nil {
		t.Fatal("a mutated model must not register under a built-in key")
	}
	if got := MustGet("zen4"); got.CacheKey() != "zen4" {
		t.Errorf("built-in cache key changed: %q", got.CacheKey())
	}
}

func TestCacheKeyRules(t *testing.T) {
	for _, m := range []*Model{MustGet("goldencove"), MustGet("neoversev2"), MustGet("zen4")} {
		if m.CacheKey() != m.Key {
			t.Errorf("unmodified built-in %s: CacheKey = %q, want bare key", m.Key, m.CacheKey())
		}
		// A byte-identical runtime copy shares the built-in's content,
		// so it may (and should) share its cache identity too.
		clone := roundTrip(t, m)
		if clone.Fingerprint() != m.Fingerprint() {
			t.Errorf("%s: round-trip fingerprint changed", m.Key)
		}
		if clone.CacheKey() != m.Key {
			t.Errorf("%s: identical clone CacheKey = %q", m.Key, clone.CacheKey())
		}
		// Any mutation (after Reindex) switches to a fingerprinted key.
		mutated := roundTrip(t, m)
		mutated.ROBSize++
		if err := mutated.Reindex(); err != nil {
			t.Fatal(err)
		}
		want := m.Key + "@" + mutated.Fingerprint()
		if mutated.CacheKey() != want {
			t.Errorf("%s mutated: CacheKey = %q, want %q", m.Key, mutated.CacheKey(), want)
		}
		if mutated.Fingerprint() == m.Fingerprint() {
			t.Errorf("%s: mutation did not change the fingerprint", m.Key)
		}
	}
}

func TestLoadFileAndLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, m *Model) string {
		t.Helper()
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	path := write("a.json", tinyModel("tiny-file-a"))
	write("b.json", tinyModel("tiny-file-b"))
	write("ignored.txt", tinyModel("tiny-file-c"))

	m, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := MustGet("tiny-file-a"); got != m {
		t.Error("LoadFile must register the model")
	}
	models, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("LoadDir loaded %d models, want 2 (*.json only)", len(models))
	}
	if _, err := Get("tiny-file-b"); err != nil {
		t.Errorf("tiny-file-b not registered: %v", err)
	}
	if _, err := Get("tiny-file-c"); err == nil {
		t.Error("non-.json files must be ignored")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir must error")
	}
	// A directory carrying a conflicting variant of a loaded key fails.
	conflict := tinyModel("tiny-file-a")
	conflict.ROBSize = 64
	write("conflict.json", conflict)
	if _, err := LoadDir(dir); err == nil {
		t.Error("LoadDir must surface registration conflicts")
	} else if !strings.Contains(err.Error(), "conflict.json") {
		t.Errorf("conflict error should name the file: %v", err)
	}
}

// TestConcurrentRegisterGet hammers the registry from many goroutines —
// registrations (fresh keys, duplicate content, conflicting content)
// interleaved with lookups and enumerations — and must be race-clean
// (CI runs this under -race).
func TestConcurrentRegisterGet(t *testing.T) {
	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					// Distinct key per (worker, iter): must register.
					if created, err := Register(tinyModel(fmt.Sprintf("tiny-conc-%d-%d", w, i))); err != nil || !created {
						t.Errorf("register: created=%t err=%v", created, err)
					}
				case 1:
					// Shared key, identical content: every racer wins.
					if _, err := Register(tinyModel("tiny-conc-shared")); err != nil {
						t.Errorf("shared register: %v", err)
					}
				case 2:
					if _, err := Get("zen4"); err != nil {
						t.Errorf("get: %v", err)
					}
					_ = Keys()
				case 3:
					// Conflicting content on a contended key: whichever
					// racer lands first wins, everyone else gets the
					// collision error; no outcome may corrupt the map.
					m := tinyModel("tiny-conc-contended")
					m.ROBSize = 16 + w
					_, _ = Register(m)
					if _, err := Get("tiny-conc-contended"); err != nil {
						t.Errorf("contended key vanished: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := MustGet("tiny-conc-shared"); got.Key != "tiny-conc-shared" {
		t.Error("shared key lost")
	}
}

func TestValidateRejectsDuplicatePortNames(t *testing.T) {
	m := tinyModel("tiny-dup-ports")
	m.Ports = []string{"p0", "p1", "ld", "sa", "p0"}
	if err := m.Validate(); err == nil {
		t.Error("duplicate port names must be rejected")
	} else if !strings.Contains(err.Error(), "duplicate port name") {
		t.Errorf("unexpected error: %v", err)
	}
	m.Ports = []string{"p0", "", "ld", "sa", "sd"}
	if err := m.Validate(); err == nil {
		t.Error("empty port names must be rejected")
	}
	// The same rejection must fire on machine-file load: names resolve
	// by first match, so a duplicate would silently alias two ports.
	dup := tinyModel("tiny-dup-ports2")
	var buf bytes.Buffer
	if err := dup.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	src := strings.Replace(buf.String(), `"p1"`, `"p0"`, 1)
	if src == buf.String() {
		t.Fatal("replacement did not apply")
	}
	if _, err := ReadJSON(strings.NewReader(src)); err == nil {
		t.Error("machine file with duplicate port names must be rejected")
	}
}
