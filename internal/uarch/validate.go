package uarch

import "fmt"

// Validate checks structural consistency of a model: port references in
// range, positive cycle counts, sane frontend parameters. It returns the
// first problem found, or nil.
func (m *Model) Validate() error {
	if m.Key == "" || m.Name == "" {
		return fmt.Errorf("uarch: model missing key/name")
	}
	if len(m.Ports) == 0 || len(m.Ports) > 32 {
		return fmt.Errorf("uarch: model %s: %d ports out of range", m.Key, len(m.Ports))
	}
	// Port names must be unique: machine files reference ports by name,
	// and a duplicate would make that resolution ambiguous (the first
	// occurrence would silently win).
	seenName := make(map[string]bool, len(m.Ports))
	for _, p := range m.Ports {
		if p == "" {
			return fmt.Errorf("uarch: model %s: empty port name", m.Key)
		}
		if seenName[p] {
			return fmt.Errorf("uarch: model %s: duplicate port name %q", m.Key, p)
		}
		seenName[p] = true
	}
	allPorts := PortMask(1<<uint(len(m.Ports))) - 1
	checkMask := func(what string, mask PortMask) error {
		if mask == 0 {
			return fmt.Errorf("uarch: model %s: %s mask empty", m.Key, what)
		}
		if mask&^allPorts != 0 {
			return fmt.Errorf("uarch: model %s: %s mask references missing ports", m.Key, what)
		}
		return nil
	}
	if err := checkMask("load", m.LoadPorts); err != nil {
		return err
	}
	if err := checkMask("store-AGU", m.StoreAGUPorts); err != nil {
		return err
	}
	if err := checkMask("store-data", m.StoreDataPorts); err != nil {
		return err
	}
	if m.IssueWidth <= 0 || m.RetireWidth <= 0 || m.DecodeWidth <= 0 {
		return fmt.Errorf("uarch: model %s: non-positive frontend width", m.Key)
	}
	if m.ROBSize < m.IssueWidth || m.SchedSize <= 0 {
		return fmt.Errorf("uarch: model %s: implausible ROB/scheduler sizes", m.Key)
	}
	if m.LoadLat <= 0 {
		return fmt.Errorf("uarch: model %s: load latency must be positive", m.Key)
	}
	if m.VecWidth != 128 && m.VecWidth != 256 && m.VecWidth != 512 {
		return fmt.Errorf("uarch: model %s: unexpected vector width %d", m.Key, m.VecWidth)
	}
	if err := m.validateNode(); err != nil {
		return err
	}
	if u := m.Unknown; u != nil {
		// Zero fields mean "default", so only set fields are checked.
		if u.Ports&^allPorts != 0 {
			return fmt.Errorf("uarch: model %s: unknown-instruction policy references missing ports", m.Key)
		}
		if u.Lat < 0 {
			return fmt.Errorf("uarch: model %s: unknown-instruction policy has negative latency", m.Key)
		}
		if u.Cycles < 0 {
			return fmt.Errorf("uarch: model %s: unknown-instruction policy has negative cycles", m.Key)
		}
	}
	seen := map[entryKey]bool{}
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.Mnemonic == "" {
			return fmt.Errorf("uarch: model %s: entry %d has empty mnemonic", m.Key, i)
		}
		k := entryKey{e.Mnemonic, e.Sig, e.Width}
		if seen[k] {
			return fmt.Errorf("uarch: model %s: duplicate entry %v", m.Key, k)
		}
		seen[k] = true
		if e.Lat < 0 {
			return fmt.Errorf("uarch: model %s: %s: negative latency", m.Key, e.Mnemonic)
		}
		for j, u := range e.Uops {
			if u.Ports == 0 {
				return fmt.Errorf("uarch: model %s: %s µ-op %d has empty port mask", m.Key, e.Mnemonic, j)
			}
			if u.Ports&^allPorts != 0 {
				return fmt.Errorf("uarch: model %s: %s µ-op %d references missing ports", m.Key, e.Mnemonic, j)
			}
			if u.Cycles <= 0 {
				return fmt.Errorf("uarch: model %s: %s µ-op %d has non-positive cycles", m.Key, e.Mnemonic, j)
			}
		}
	}
	return nil
}
