// Package uarch defines microarchitectural machine models: execution ports,
// µ-op decomposition, instruction latencies and port assignments for the
// three microarchitectures studied in the paper — Intel Golden Cove
// (Sapphire Rapids), Arm Neoverse V2 (Grace CPU Superchip), and AMD Zen 4
// (Genoa).
//
// A Model is consumed by three clients with different needs:
//
//   - internal/core (the OSACA-style analyzer) uses port masks and µ-op
//     cycle counts to compute an optimal port-pressure lower bound;
//   - internal/mca (the LLVM-MCA-style baseline) uses the same tables with
//     a greedy scheduler;
//   - internal/sim (the "hardware" stand-in) executes blocks cycle by cycle
//     against the port model with renaming and a finite ROB.
package uarch

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"incore/internal/isa"
)

// PortMask is a bit set of execution-port indices (bit i = Model.Ports[i]).
type PortMask uint32

// Has reports whether port index i is in the mask.
func (m PortMask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Count returns the number of ports in the mask.
func (m PortMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Indices returns the port indices in the mask in ascending order.
// Allocation-sensitive callers should prefer AppendIndices or the
// precompiled Model.PortIndices tables.
func (m PortMask) Indices() []int {
	return m.AppendIndices(nil)
}

// AppendIndices appends the mask's port indices in ascending order to dst
// and returns the extended slice; with sufficient capacity it does not
// allocate.
func (m PortMask) AppendIndices(dst []int) []int {
	for v := m; v != 0; v &= v - 1 {
		dst = append(dst, bits.TrailingZeros32(uint32(v)))
	}
	return dst
}

// Uop is one micro-operation: it occupies one of the candidate Ports for
// Cycles scheduler slots. Cycles is fractional to express shared resources
// (e.g. a gather spreading 3 cycles of work over 2 load ports).
type Uop struct {
	Ports  PortMask
	Cycles float64
	// Kind tags the µ-op for the simulator's structural hazards.
	Kind UopKind
}

// UopKind classifies µ-ops for structural modeling.
type UopKind int

const (
	// UopCompute is a generic ALU/FP µ-op.
	UopCompute UopKind = iota
	// UopLoad is a load (address generation + data return).
	UopLoad
	// UopStoreAddr is the store address-generation µ-op.
	UopStoreAddr
	// UopStoreData is the store data µ-op.
	UopStoreData
	// UopBranch is a branch µ-op.
	UopBranch
)

// String names the kind.
func (k UopKind) String() string {
	switch k {
	case UopCompute:
		return "compute"
	case UopLoad:
		return "load"
	case UopStoreAddr:
		return "staddr"
	case UopStoreData:
		return "stdata"
	case UopBranch:
		return "branch"
	default:
		return fmt.Sprintf("UopKind(%d)", int(k))
	}
}

// Entry describes one instruction form in the machine model.
type Entry struct {
	// Mnemonic in lower case ("vfmadd231pd").
	Mnemonic string
	// Sig is the operand signature ("v,v,v"; empty matches any).
	// Letters: r=gpr, v=vector, p=predicate, i=immediate, m=memory,
	// l=label.
	Sig string
	// Width is the vector access width in bits (0 matches any width).
	Width int
	// Lat is the register-to-register result latency in cycles.
	Lat int
	// Uops is the µ-op decomposition; nil means one single-cycle µ-op on
	// DefaultPorts (model fallback).
	Uops []Uop
	// Notes documents data provenance or modeling decisions.
	Notes string
}

// rtpCycles returns the reciprocal throughput implied by the µ-op list if
// the entry were the only instruction executing (best case, perfect
// balancing).
func (e *Entry) rtpCycles() float64 {
	var load [32]float64
	for _, u := range e.Uops {
		// Distribute each µ-op evenly over its candidate ports.
		n := u.Ports.Count()
		if n == 0 {
			continue
		}
		share := u.Cycles / float64(n)
		for v := u.Ports; v != 0; v &= v - 1 {
			load[bits.TrailingZeros32(uint32(v))] += share
		}
	}
	maxLoad := 0.0
	for _, v := range load {
		maxLoad = math.Max(maxLoad, v)
	}
	return maxLoad
}

// Model is a complete machine model for one microarchitecture.
type Model struct {
	// Key is the registry key ("goldencove", "neoversev2", "zen4").
	Key string
	// Name is the microarchitecture name; CPU the paper's testbed chip.
	Name, CPU string
	// Vendor label used in reports ("Intel", "Nvidia/Arm", "AMD").
	Vendor  string
	Dialect isa.Dialect

	// Ports lists execution-port names; index = bit in PortMask.
	Ports []string

	// Frontend / backend structural parameters used by the simulator.
	IssueWidth  int // µ-ops issued (dispatched to schedulers) per cycle
	DecodeWidth int // instructions decoded per cycle
	RetireWidth int // µ-ops retired per cycle
	ROBSize     int
	SchedSize   int // unified or summed scheduler capacity
	PhysVecRegs int
	PhysGPRegs  int

	// Memory pipeline.
	LoadPorts      PortMask
	StoreAGUPorts  PortMask
	StoreDataPorts PortMask
	LoadLat        int // L1 load-to-use latency
	LoadWidthBits  int // max bits per load µ-op
	StoreWidthBits int // max bits per store-data µ-op
	// WideLoadPorts restricts loads of at least WideLoadBits to a port
	// subset (Golden Cove: 512-bit loads run on ports 2/3 only, while
	// port 11 handles narrower accesses). Zero masks disable the
	// restriction.
	WideLoadPorts PortMask
	WideLoadBits  int

	// VecWidth is the native SIMD register width in bits.
	VecWidth int
	// CoresPerChip and frequencies mirror Table I.
	CoresPerChip  int
	BaseFreqGHz   float64
	MaxFreqGHz    float64
	FPVectorUnits int
	IntUnits      int

	// Node optionally carries node-level calibration (ECM transfer
	// parameters, frequency governor, Roofline ceilings); see node.go.
	Node *NodeParams

	// Unknown optionally overrides the synthesized descriptor used by the
	// degraded lookup path for mnemonics the table cannot describe; nil
	// uses the conservative defaults (one single-cycle µ-op that may run
	// on any port, latency 1). See UnknownPolicy.
	Unknown *UnknownPolicy

	Entries []Entry

	index map[entryKey]*Entry
	// portIdx precompiles mask→ascending-indices for every mask a Lookup
	// can emit (entry µ-ops plus the synthesized memory-µ-op masks), so
	// hot paths resolve candidate ports without allocating.
	portIdx map[PortMask][]int
	// fingerprint is the sha256 hex of the canonical machine-file wire
	// form, computed at buildIndex time; see Fingerprint.
	fingerprint string
	// portsig is the sha256 hex of the port/descriptor-relevant model
	// subset only, computed at buildIndex time; see PortSignature.
	portsig string
	// unknown is the descriptor template degraded lookups hand out for
	// mnemonics outside the table, precomputed at buildIndex time from
	// the Unknown policy so every degraded lookup of this model returns
	// the identical (deterministic, shared, read-only) µ-op list.
	unknown Entry
}

// UnknownPolicy configures the descriptor synthesized for instructions a
// model's table cannot describe (llvm-mca's "unsupported instruction"
// handling, degraded to a conservative guess instead of an error). Zero
// fields select the defaults: one µ-op that may execute on any model
// port, occupying it for one cycle, with a result latency of one cycle —
// the weakest assumption that keeps every bound finite without inventing
// pressure on a specific port.
type UnknownPolicy struct {
	// Ports is the candidate port mask of the synthesized µ-op; zero
	// means all model ports.
	Ports PortMask
	// Lat is the synthesized result latency in cycles; zero means 1.
	Lat int
	// Cycles is the synthesized per-port occupancy; zero means 1.0.
	Cycles float64
}

type entryKey struct {
	mnemonic string
	sig      string
	width    int
}

// PortIndex resolves a port name to its index, panicking on unknown names;
// intended for model-construction time only.
func (m *Model) PortIndex(name string) int {
	for i, p := range m.Ports {
		if p == name {
			return i
		}
	}
	panic(fmt.Sprintf("uarch: model %s has no port %q", m.Key, name))
}

// PortsByName builds a PortMask from port names; construction-time helper.
func (m *Model) PortsByName(names ...string) PortMask {
	var mask PortMask
	for _, n := range names {
		mask |= 1 << uint(m.PortIndex(n))
	}
	return mask
}

// buildIndex populates the lookup index and the precompiled port tables;
// called by the registry.
func (m *Model) buildIndex() {
	m.index = make(map[entryKey]*Entry, len(m.Entries))
	for i := range m.Entries {
		e := &m.Entries[i]
		k := entryKey{e.Mnemonic, e.Sig, e.Width}
		if _, dup := m.index[k]; dup {
			panic(fmt.Sprintf("uarch: model %s: duplicate entry %s/%s/%d", m.Key, e.Mnemonic, e.Sig, e.Width))
		}
		m.index[k] = e
	}
	m.portIdx = make(map[PortMask][]int)
	addMask := func(mask PortMask) {
		if mask == 0 {
			return
		}
		if _, ok := m.portIdx[mask]; !ok {
			m.portIdx[mask] = mask.Indices()
		}
	}
	for i := range m.Entries {
		for _, u := range m.Entries[i].Uops {
			addMask(u.Ports)
		}
	}
	addMask(m.LoadPorts)
	addMask(m.WideLoadPorts)
	addMask(m.StoreAGUPorts)
	addMask(m.StoreDataPorts)
	ports, lat, cycles := m.unknownPolicy()
	m.unknown = Entry{
		Mnemonic: "?",
		Lat:      lat,
		Uops:     []Uop{{Ports: ports, Cycles: cycles}},
		Notes:    "synthesized unknown-instruction descriptor",
	}
	addMask(ports)
	m.fingerprint = m.computeFingerprint()
	m.portsig = m.computePortSignature()
}

// unknownPolicy resolves the unknown-instruction policy with defaults
// applied: all ports, latency 1, occupancy 1.
func (m *Model) unknownPolicy() (PortMask, int, float64) {
	ports := PortMask(1<<uint(len(m.Ports))) - 1
	lat, cycles := 1, 1.0
	if p := m.Unknown; p != nil {
		if p.Ports != 0 {
			ports = p.Ports
		}
		if p.Lat > 0 {
			lat = p.Lat
		}
		if p.Cycles > 0 {
			cycles = p.Cycles
		}
	}
	return ports, lat, cycles
}

// Reindex revalidates the model and rebuilds its lookup index, port
// tables, and content fingerprint. Call it after mutating a model in
// place (what-if studies), so lookups and CacheKey reflect the mutation.
func (m *Model) Reindex() error {
	if err := m.Validate(); err != nil {
		return err
	}
	m.buildIndex()
	return nil
}

// Fingerprint returns the model's content fingerprint: the sha256 hex
// digest of its canonical machine-file wire form (WriteJSON bytes). Two
// models have equal fingerprints exactly when their machine files are
// byte-identical, so a fingerprint names the full modeled scenario —
// port tables, latencies, frontend, and node-level parameters alike.
//
// Models that went through buildIndex (registry construction, Register,
// ReadJSON, Reindex) carry a precomputed fingerprint; for a hand-built
// model the first call computes and caches it, which is not safe to race
// with concurrent use — index such models first.
func (m *Model) Fingerprint() string {
	if m.fingerprint == "" {
		m.fingerprint = m.computeFingerprint()
	}
	return m.fingerprint
}

// PortSignature returns the model's in-core sub-fingerprint: the sha256
// hex digest of a canonical encoding of only the port/descriptor-relevant
// model subset — dialect, port list, structural frontend/backend
// parameters (issue/decode/retire width, ROB, scheduler, physical
// registers), the memory pipeline, the unknown-instruction policy, and
// the instruction table. Node-level parameters (bandwidth, ECM, TDP,
// frequencies), clocking, core counts, and labels (key, name, CPU,
// vendor, entry notes) are excluded: two models that differ only in those
// produce identical descriptor tables, port analyses, mca schedules, and
// sim programs, and equal signatures let the compiled-artifact tier share
// those artifacts across a design-space sweep's variants.
//
// Like Fingerprint, models that went through buildIndex carry a
// precomputed signature; for a hand-built model the first call computes
// and caches it, which is not safe to race with concurrent use.
func (m *Model) PortSignature() string {
	if m.portsig == "" {
		m.portsig = m.computePortSignature()
	}
	return m.portsig
}

// CacheKey returns the identity under which pipeline and store entries
// for this model are filed. For a model whose content is byte-identical
// to the compiled-in model of the same key it is the bare key — so
// warm stores written by earlier builds stay valid — and
// "key@fingerprint" for everything else, so a runtime-loaded or mutated
// model can never poison cached results of a different scenario sharing
// its key.
func (m *Model) CacheKey() string {
	if fp, ok := builtinFingerprint(m.Key); ok && fp == m.Fingerprint() {
		return m.Key
	}
	return m.Key + "@" + m.Fingerprint()
}

// PortIndices returns the ascending port indices of mask from the model's
// precompiled tables, computing (and allocating) only for masks no Lookup
// of this model ever emits. The returned slice is shared and must not be
// mutated.
func (m *Model) PortIndices(mask PortMask) []int {
	if idx, ok := m.portIdx[mask]; ok {
		return idx
	}
	return mask.Indices()
}

// OperandSig derives the signature string of an instruction ("v,v,v").
func OperandSig(in *isa.Instruction) string {
	if len(in.Operands) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, op := range in.Operands {
		if i > 0 {
			sb.WriteByte(',')
		}
		switch op.Kind {
		case isa.OpReg:
			switch op.Reg.Class {
			case isa.ClassGPR:
				sb.WriteByte('r')
			case isa.ClassVec:
				sb.WriteByte('v')
			case isa.ClassPred:
				sb.WriteByte('p')
			default:
				sb.WriteByte('r')
			}
		case isa.OpImm:
			sb.WriteByte('i')
		case isa.OpMem:
			sb.WriteByte('m')
		case isa.OpLabel:
			sb.WriteByte('l')
		}
	}
	return sb.String()
}

// vecWidthOf returns the maximum vector register width used by an
// instruction, or 0 when it uses none.
func vecWidthOf(in *isa.Instruction) int {
	w := 0
	for _, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Reg.Class == isa.ClassVec && op.Reg.Width > w {
			w = op.Reg.Width
		}
	}
	return w
}

// MatchKind classifies how a Desc was resolved against the model's
// tables; coverage accounting (core.Result.Coverage) aggregates it.
type MatchKind int

const (
	// MatchExact means the (mnemonic, signature, width) triple hit a
	// table entry directly.
	MatchExact MatchKind = iota
	// MatchFallback means the instruction resolved through the folded
	// operand-signature/width fallback chain (see find): the mnemonic is
	// in the table, but not under this exact operand shape.
	MatchFallback
	// MatchUnknown means the mnemonic is not in the table at all and the
	// descriptor was synthesized from the model's unknown-instruction
	// policy (degraded lookup only; strict lookup errors instead).
	MatchUnknown
)

// String names the match kind as coverage reports spell it.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchFallback:
		return "fallback"
	case MatchUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("MatchKind(%d)", int(k))
	}
}

// Desc is the resolved microarchitectural description of one instruction:
// its µ-op list (including folded memory µ-ops on x86), latencies, and
// classification flags.
type Desc struct {
	// Uops includes folded load/store µ-ops. The slice may alias the
	// model's entry table and must be treated as read-only.
	Uops []Uop
	// Lat is the reg-to-reg latency of the compute part.
	Lat int
	// LoadLat is the additional load-to-use latency when the instruction
	// reads memory (0 otherwise).
	LoadLat int
	// TotalLat = Lat + LoadLat: producer-to-consumer latency through this
	// instruction for register dataflow.
	TotalLat int
	// IsLoad / IsStore / IsBranch classify the instruction.
	IsLoad, IsStore, IsBranch bool
	// Match records how the instruction resolved against the table
	// (exact entry, fallback chain, or synthesized unknown descriptor).
	Match MatchKind
	// Entry points at the matched table entry (nil if the default was
	// synthesised).
	Entry *Entry
}

// UopCount returns the number of µ-ops.
func (d *Desc) UopCount() int { return len(d.Uops) }

// ThroughputCycles returns the idealised reciprocal throughput of the
// instruction in isolation (cycles per instruction, perfect balancing).
func (d *Desc) ThroughputCycles() float64 {
	e := Entry{Uops: d.Uops}
	return e.rtpCycles()
}

// ErrNoEntry is returned when a model cannot describe an instruction.
type ErrNoEntry struct {
	Model    string
	Mnemonic string
	Sig      string
	Width    int
}

// Error implements error.
func (e *ErrNoEntry) Error() string {
	return fmt.Sprintf("uarch: model %s: no entry for %s (%s, width %d)", e.Model, e.Mnemonic, e.Sig, e.Width)
}

// Lookup resolves an instruction against the model, folding x86 memory
// operands into extra load/store µ-ops, and returns its Desc.
func (m *Model) Lookup(in *isa.Instruction) (Desc, error) {
	eff := isa.InstrEffects(in, m.Dialect)
	return m.LookupEff(in, &eff)
}

// LookupEff is Lookup for callers that already computed the instruction's
// architectural effects (depgraph builds them anyway); it avoids deriving
// them a second time. eff must describe in under this model's dialect.
func (m *Model) LookupEff(in *isa.Instruction, eff *isa.Effects) (Desc, error) {
	d, ok := m.lookupEff(in, eff, false)
	if !ok {
		return Desc{}, &ErrNoEntry{Model: m.Key, Mnemonic: in.Mnemonic, Sig: OperandSig(in), Width: vecWidthOf(in)}
	}
	return d, nil
}

// LookupDegraded resolves an instruction like Lookup, but never fails:
// mnemonics outside the table receive the model's synthesized
// unknown-instruction descriptor (Desc.Match == MatchUnknown) instead of
// an error, so one unmodeled instruction degrades the analysis of its
// block rather than rejecting it. The synthesized descriptor is
// deterministic for a given model content.
func (m *Model) LookupDegraded(in *isa.Instruction) Desc {
	eff := isa.InstrEffects(in, m.Dialect)
	return m.LookupEffDegraded(in, &eff)
}

// LookupEffDegraded is LookupDegraded for callers that already computed
// the instruction's architectural effects.
func (m *Model) LookupEffDegraded(in *isa.Instruction, eff *isa.Effects) Desc {
	d, _ := m.lookupEff(in, eff, true)
	return d
}

// lookupEff resolves in against the table. With degrade set it
// synthesizes the unknown-instruction descriptor for table misses and
// always succeeds; otherwise a miss reports ok == false.
func (m *Model) lookupEff(in *isa.Instruction, eff *isa.Effects, degrade bool) (Desc, bool) {
	sig := OperandSig(in)
	width := vecWidthOf(in)
	e, exact := m.find(in.Mnemonic, sig, width)
	match := MatchExact
	switch {
	case e == nil && !degrade:
		return Desc{}, false
	case e == nil:
		e = &m.unknown
		match = MatchUnknown
	case !exact:
		match = MatchFallback
	}

	if isGather(in) {
		if g, _ := m.find(in.Mnemonic+"@gather", sig, width); g != nil {
			e = g
		}
	}
	d := Desc{Lat: e.Lat, Entry: e, IsBranch: in.IsBranch(), Match: match}
	if match == MatchUnknown {
		// The synthesized descriptor has no table entry behind it.
		d.Entry = nil
	}
	// The common case folds no memory µ-ops and shares the entry's list;
	// consumers treat Desc.Uops as read-only.
	d.Uops = e.Uops

	// Fold memory operands. AArch64 entries always model their own
	// memory µ-ops (loads/stores are dedicated instructions); x86 tables
	// describe the register form, so synthesize the memory µ-ops here.
	// A synthesized unknown descriptor models no memory µ-ops on either
	// dialect, so folding applies to it unconditionally: an unknown
	// load/store still charges the memory pipeline conservatively.
	if m.Dialect == isa.DialectX86 || match == MatchUnknown {
		foldLoad := eff.ReadsMem() && !hasKind(e.Uops, UopLoad)
		foldStore := eff.WritesMem() && !hasKind(e.Uops, UopStoreData)
		if foldLoad || foldStore {
			d.Uops = append(make([]Uop, 0, len(e.Uops)+4), e.Uops...)
		}
		if foldLoad {
			for _, mem := range eff.LoadOps {
				w := memWidth(mem, width)
				ports := m.LoadPorts
				if m.WideLoadBits > 0 && w >= m.WideLoadBits && m.WideLoadPorts != 0 {
					ports = m.WideLoadPorts
				}
				for i := 0; i < m.loadUopsFor(w); i++ {
					d.Uops = append(d.Uops, Uop{Ports: ports, Cycles: 1, Kind: UopLoad})
				}
			}
			d.LoadLat = m.LoadLat
		}
		if foldStore {
			for _, mem := range eff.StoreOps {
				n := m.storeUopsFor(memWidth(mem, width))
				for i := 0; i < n; i++ {
					d.Uops = append(d.Uops, Uop{Ports: m.StoreAGUPorts, Cycles: 1, Kind: UopStoreAddr})
					d.Uops = append(d.Uops, Uop{Ports: m.StoreDataPorts, Cycles: 1, Kind: UopStoreData})
				}
			}
		}
	}
	// AArch64 load entries carry load-to-use latency in Entry.Lat, so no
	// extra LoadLat is added for them.
	d.IsLoad = eff.ReadsMem()
	d.IsStore = eff.WritesMem()
	d.TotalLat = d.Lat + d.LoadLat
	if d.TotalLat == 0 && !d.IsStore && !d.IsBranch {
		// Every value-producing instruction takes at least one cycle.
		d.TotalLat = 1
	}
	return d, true
}

func memWidth(mem *isa.MemOp, vecWidth int) int {
	if mem.Width > 0 {
		return mem.Width
	}
	if vecWidth > 0 {
		return vecWidth
	}
	return 64
}

// loadUopsFor returns how many load µ-ops an access of the given width
// needs on this model.
func (m *Model) loadUopsFor(bits int) int {
	if m.LoadWidthBits <= 0 || bits <= m.LoadWidthBits {
		return 1
	}
	return (bits + m.LoadWidthBits - 1) / m.LoadWidthBits
}

// storeUopsFor returns how many store µ-op pairs an access needs.
func (m *Model) storeUopsFor(bits int) int {
	if m.StoreWidthBits <= 0 || bits <= m.StoreWidthBits {
		return 1
	}
	return (bits + m.StoreWidthBits - 1) / m.StoreWidthBits
}

func hasKind(uops []Uop, k UopKind) bool {
	for _, u := range uops {
		if u.Kind == k {
			return true
		}
	}
	return false
}

// find locates the best-matching entry with fallbacks:
// exact (mn,sig,width) → (mn,sig,0) → (mn,"",width) → (mn,"",0).
// exact reports whether the first (full-triple) key hit.
func (m *Model) find(mn, sig string, width int) (e *Entry, exact bool) {
	if e, ok := m.index[entryKey{mn, sig, width}]; ok {
		return e, true
	}
	if e, ok := m.index[entryKey{mn, sig, 0}]; ok {
		return e, false
	}
	if e, ok := m.index[entryKey{mn, "", width}]; ok {
		return e, false
	}
	if e, ok := m.index[entryKey{mn, "", 0}]; ok {
		return e, false
	}
	return nil, false
}

// isGather reports whether an instruction indexes memory through a vector
// register (gather/scatter addressing).
func isGather(in *isa.Instruction) bool {
	for _, op := range in.Operands {
		if op.Kind == isa.OpMem && op.Mem.Index.Valid() && op.Mem.Index.Class == isa.ClassVec {
			return true
		}
	}
	return false
}

// HasEntry reports whether the model can describe the mnemonic at all.
func (m *Model) HasEntry(mn string) bool {
	for k := range m.index {
		if k.mnemonic == mn {
			return true
		}
	}
	return false
}
