package uarch

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"incore/internal/isa"
)

// Machine-file serialization: models can be exported to and loaded from a
// JSON format analogous to OSACA's YAML machine files, so users can supply
// their own microarchitectures to the tools without recompiling.
//
// Port masks are serialized as port-name lists for readability.

type machineFile struct {
	Key     string `json:"key"`
	Name    string `json:"name"`
	CPU     string `json:"cpu"`
	Vendor  string `json:"vendor"`
	Dialect string `json:"dialect"`

	Ports []string `json:"ports"`

	IssueWidth  int `json:"issue_width"`
	DecodeWidth int `json:"decode_width"`
	RetireWidth int `json:"retire_width"`
	ROBSize     int `json:"rob_size"`
	SchedSize   int `json:"scheduler_size"`
	PhysVecRegs int `json:"phys_vec_regs,omitempty"`
	PhysGPRegs  int `json:"phys_gp_regs,omitempty"`

	LoadPorts      []string `json:"load_ports"`
	StoreAGUPorts  []string `json:"store_agu_ports"`
	StoreDataPorts []string `json:"store_data_ports"`
	LoadLat        int      `json:"load_latency"`
	LoadWidthBits  int      `json:"load_width_bits"`
	StoreWidthBits int      `json:"store_width_bits"`
	WideLoadPorts  []string `json:"wide_load_ports,omitempty"`
	WideLoadBits   int      `json:"wide_load_bits,omitempty"`

	VecWidth      int     `json:"vec_width"`
	CoresPerChip  int     `json:"cores_per_chip"`
	BaseFreqGHz   float64 `json:"base_freq_ghz"`
	MaxFreqGHz    float64 `json:"max_freq_ghz"`
	FPVectorUnits int     `json:"fp_vector_units"`
	IntUnits      int     `json:"int_units"`

	Node *machineNode `json:"node,omitempty"`

	Unknown *machineUnknown `json:"unknown,omitempty"`

	Entries []machineEntry `json:"instructions"`
}

// machineUnknown is the optional unknown-instruction policy: the
// conservative descriptor degraded lookups synthesize for mnemonics the
// instruction table cannot describe. Omitted fields keep the defaults
// (all ports, latency 1, occupancy 1).
type machineUnknown struct {
	Ports  []string `json:"ports,omitempty"`
	Lat    int      `json:"latency,omitempty"`
	Cycles float64  `json:"cycles,omitempty"`
}

// machineNode is the optional node-level section: the calibration the
// ECM model, the frequency governor, and the Roofline ceilings need
// beyond the in-core tables (see NodeParams).
type machineNode struct {
	MemBWGBs      float64      `json:"mem_bandwidth_gbs,omitempty"`
	FlopsPerCycle int          `json:"flops_per_cycle,omitempty"`
	ECM           *machineECM  `json:"ecm,omitempty"`
	Freq          *machineFreq `json:"freq,omitempty"`
}

type machineECM struct {
	L1L2BytesPerCycle float64 `json:"l1_l2_bytes_per_cycle"`
	L2L3BytesPerCycle float64 `json:"l2_l3_bytes_per_cycle"`
	// Overlap lists the transfer levels that overlap with the rest of
	// the data chain; any subset of "l1l2", "l2l3", "l3mem".
	Overlap []string `json:"overlap,omitempty"`
}

type machineFreq struct {
	TDPWatts           float64            `json:"tdp_watts"`
	UncoreWatts        float64            `json:"uncore_watts"`
	StaticWattsPerCore float64            `json:"static_watts_per_core"`
	MinFreqGHz         float64            `json:"min_freq_ghz"`
	ActivityFactor     map[string]float64 `json:"activity_factor"`
	MaxFreqGHz         map[string]float64 `json:"max_freq_ghz"`
	WidestVectorExt    string             `json:"widest_vector_ext,omitempty"`
}

// overlapLevelNames is the canonical writer order of machineECM.Overlap;
// ReadJSON accepts any order.
var overlapLevelNames = [3]string{"l1l2", "l2l3", "l3mem"}

func nodeToWire(np *NodeParams) *machineNode {
	if np == nil {
		return nil
	}
	mn := &machineNode{MemBWGBs: np.MemBWGBs, FlopsPerCycle: np.FlopsPerCycle}
	if e := np.ECM; e != nil {
		me := &machineECM{
			L1L2BytesPerCycle: e.L1L2BytesPerCycle,
			L2L3BytesPerCycle: e.L2L3BytesPerCycle,
		}
		for i, on := range [3]bool{e.OverlapL1L2, e.OverlapL2L3, e.OverlapL3Mem} {
			if on {
				me.Overlap = append(me.Overlap, overlapLevelNames[i])
			}
		}
		mn.ECM = me
	}
	if f := np.Freq; f != nil {
		mn.Freq = &machineFreq{
			TDPWatts: f.TDPWatts, UncoreWatts: f.UncoreWatts,
			StaticWattsPerCore: f.StaticWattsPerCore, MinFreqGHz: f.MinFreqGHz,
			ActivityFactor: f.ActivityFactor, MaxFreqGHz: f.MaxFreqGHz,
			WidestVectorExt: f.WidestVectorExt,
		}
	}
	return mn
}

func nodeFromWire(mn *machineNode) (*NodeParams, error) {
	if mn == nil {
		return nil, nil
	}
	np := &NodeParams{MemBWGBs: mn.MemBWGBs, FlopsPerCycle: mn.FlopsPerCycle}
	if me := mn.ECM; me != nil {
		e := &ECMParams{
			L1L2BytesPerCycle: me.L1L2BytesPerCycle,
			L2L3BytesPerCycle: me.L2L3BytesPerCycle,
		}
		for _, name := range me.Overlap {
			switch name {
			case "l1l2":
				e.OverlapL1L2 = true
			case "l2l3":
				e.OverlapL2L3 = true
			case "l3mem":
				e.OverlapL3Mem = true
			default:
				return nil, fmt.Errorf("uarch: machine file: unknown ECM overlap level %q", name)
			}
		}
		np.ECM = e
	}
	if mf := mn.Freq; mf != nil {
		np.Freq = &FreqParams{
			TDPWatts: mf.TDPWatts, UncoreWatts: mf.UncoreWatts,
			StaticWattsPerCore: mf.StaticWattsPerCore, MinFreqGHz: mf.MinFreqGHz,
			ActivityFactor: mf.ActivityFactor, MaxFreqGHz: mf.MaxFreqGHz,
			WidestVectorExt: mf.WidestVectorExt,
		}
	}
	return np, nil
}

type machineEntry struct {
	Mnemonic string       `json:"mnemonic"`
	Sig      string       `json:"sig,omitempty"`
	Width    int          `json:"width,omitempty"`
	Lat      int          `json:"latency"`
	Uops     []machineUop `json:"uops"`
	Notes    string       `json:"notes,omitempty"`
}

type machineUop struct {
	Ports  []string `json:"ports"`
	Cycles float64  `json:"cycles"`
	Kind   string   `json:"kind,omitempty"`
}

func kindName(k UopKind) string {
	if k == UopCompute {
		return ""
	}
	return k.String()
}

func kindFromName(s string) (UopKind, error) {
	switch s {
	case "", "compute":
		return UopCompute, nil
	case "load":
		return UopLoad, nil
	case "staddr":
		return UopStoreAddr, nil
	case "stdata":
		return UopStoreData, nil
	case "branch":
		return UopBranch, nil
	default:
		return 0, fmt.Errorf("uarch: unknown µ-op kind %q", s)
	}
}

// WriteJSON serializes the model as a machine file.
func (m *Model) WriteJSON(w io.Writer) error {
	mf := machineFile{
		Key: m.Key, Name: m.Name, CPU: m.CPU, Vendor: m.Vendor,
		Dialect: m.Dialect.String(), Ports: m.Ports,
		IssueWidth: m.IssueWidth, DecodeWidth: m.DecodeWidth,
		RetireWidth: m.RetireWidth, ROBSize: m.ROBSize, SchedSize: m.SchedSize,
		PhysVecRegs: m.PhysVecRegs, PhysGPRegs: m.PhysGPRegs,
		LoadPorts:      m.maskNames(m.LoadPorts),
		StoreAGUPorts:  m.maskNames(m.StoreAGUPorts),
		StoreDataPorts: m.maskNames(m.StoreDataPorts),
		LoadLat:        m.LoadLat, LoadWidthBits: m.LoadWidthBits,
		StoreWidthBits: m.StoreWidthBits,
		WideLoadPorts:  m.maskNames(m.WideLoadPorts), WideLoadBits: m.WideLoadBits,
		VecWidth: m.VecWidth, CoresPerChip: m.CoresPerChip,
		BaseFreqGHz: m.BaseFreqGHz, MaxFreqGHz: m.MaxFreqGHz,
		FPVectorUnits: m.FPVectorUnits, IntUnits: m.IntUnits,
		Node: nodeToWire(m.Node),
	}
	if u := m.Unknown; u != nil {
		mf.Unknown = &machineUnknown{Ports: m.maskNames(u.Ports), Lat: u.Lat, Cycles: u.Cycles}
	}
	for _, e := range m.Entries {
		me := machineEntry{Mnemonic: e.Mnemonic, Sig: e.Sig, Width: e.Width, Lat: e.Lat, Notes: e.Notes}
		for _, u := range e.Uops {
			me.Uops = append(me.Uops, machineUop{
				Ports: m.maskNames(u.Ports), Cycles: u.Cycles, Kind: kindName(u.Kind),
			})
		}
		if me.Uops == nil {
			me.Uops = []machineUop{}
		}
		mf.Entries = append(mf.Entries, me)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mf)
}

func (m *Model) maskNames(mask PortMask) []string {
	var out []string
	for _, i := range mask.Indices() {
		out = append(out, m.Ports[i])
	}
	return out
}

// ReadJSON loads a machine file, validates it, and builds its lookup
// index and content fingerprint; the returned model is ready for use
// with all tools (Register it to make it resolvable by key).
func ReadJSON(r io.Reader) (*Model, error) {
	var mf machineFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("uarch: machine file: %w", err)
	}
	// A machine file is exactly one JSON document: trailing data is a
	// malformed (possibly truncated-then-concatenated) file, not noise
	// to ignore. A non-syntax error here is the reader failing, not
	// trailing content — surface it as itself.
	switch _, err := dec.Token(); {
	case err == io.EOF:
	case err == nil:
		return nil, fmt.Errorf("uarch: machine file: trailing data after JSON document")
	default:
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("uarch: machine file: trailing data after JSON document")
		}
		return nil, fmt.Errorf("uarch: machine file: %w", err)
	}
	m := &Model{
		Key: mf.Key, Name: mf.Name, CPU: mf.CPU, Vendor: mf.Vendor,
		Ports:      mf.Ports,
		IssueWidth: mf.IssueWidth, DecodeWidth: mf.DecodeWidth,
		RetireWidth: mf.RetireWidth, ROBSize: mf.ROBSize, SchedSize: mf.SchedSize,
		PhysVecRegs: mf.PhysVecRegs, PhysGPRegs: mf.PhysGPRegs,
		LoadLat: mf.LoadLat, LoadWidthBits: mf.LoadWidthBits,
		StoreWidthBits: mf.StoreWidthBits, WideLoadBits: mf.WideLoadBits,
		VecWidth: mf.VecWidth, CoresPerChip: mf.CoresPerChip,
		BaseFreqGHz: mf.BaseFreqGHz, MaxFreqGHz: mf.MaxFreqGHz,
		FPVectorUnits: mf.FPVectorUnits, IntUnits: mf.IntUnits,
	}
	switch mf.Dialect {
	case "x86":
		m.Dialect = isa.DialectX86
	case "aarch64":
		m.Dialect = isa.DialectAArch64
	default:
		return nil, fmt.Errorf("uarch: machine file: unknown dialect %q", mf.Dialect)
	}
	var err error
	if m.LoadPorts, err = m.namesMask(mf.LoadPorts); err != nil {
		return nil, err
	}
	if m.StoreAGUPorts, err = m.namesMask(mf.StoreAGUPorts); err != nil {
		return nil, err
	}
	if m.StoreDataPorts, err = m.namesMask(mf.StoreDataPorts); err != nil {
		return nil, err
	}
	if m.WideLoadPorts, err = m.namesMask(mf.WideLoadPorts); err != nil {
		return nil, err
	}
	if m.Node, err = nodeFromWire(mf.Node); err != nil {
		return nil, err
	}
	if mu := mf.Unknown; mu != nil {
		mask, err := m.namesMask(mu.Ports)
		if err != nil {
			return nil, fmt.Errorf("uarch: machine file: unknown section: %w", err)
		}
		m.Unknown = &UnknownPolicy{Ports: mask, Lat: mu.Lat, Cycles: mu.Cycles}
	}
	for _, me := range mf.Entries {
		e := Entry{Mnemonic: me.Mnemonic, Sig: me.Sig, Width: me.Width, Lat: me.Lat, Notes: me.Notes}
		e.Uops = []Uop{}
		for _, mu := range me.Uops {
			mask, err := m.namesMask(mu.Ports)
			if err != nil {
				return nil, fmt.Errorf("uarch: machine file: entry %s: %w", me.Mnemonic, err)
			}
			kind, err := kindFromName(mu.Kind)
			if err != nil {
				return nil, err
			}
			e.Uops = append(e.Uops, Uop{Ports: mask, Cycles: mu.Cycles, Kind: kind})
		}
		m.Entries = append(m.Entries, e)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m.buildIndex()
	return m, nil
}

// computeFingerprint hashes the canonical machine-file wire form. The
// form is deterministic — struct fields encode in declaration order,
// maps sort by key, floats use the shortest round-trippable
// representation — so equal model content always yields equal bytes and
// therefore equal fingerprints, across processes and builds.
func (m *Model) computeFingerprint() string {
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		// WriteJSON only fails on writer errors; a bytes.Buffer has none.
		panic(fmt.Sprintf("uarch: fingerprint %s: %v", m.Key, err))
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// portFile is the canonical wire subset behind Model.PortSignature: every
// field the in-core stages read — descriptor resolution (entries, unknown
// policy, memory pipeline, port count), port-pressure analysis and mca
// lowering (port masks via the descriptors), and sim compilation/execution
// (dialect, lookup tables, and the structural frontend/backend parameters
// the engine reads from its retained model pointer) — and nothing else.
// Key, labels, clocking, core counts, and the node section are deliberately
// absent: varying them must not change the signature.
type portFile struct {
	Dialect string   `json:"dialect"`
	Ports   []string `json:"ports"`

	IssueWidth  int `json:"issue_width"`
	DecodeWidth int `json:"decode_width"`
	RetireWidth int `json:"retire_width"`
	ROBSize     int `json:"rob_size"`
	SchedSize   int `json:"scheduler_size"`
	PhysVecRegs int `json:"phys_vec_regs,omitempty"`
	PhysGPRegs  int `json:"phys_gp_regs,omitempty"`

	LoadPorts      []string `json:"load_ports"`
	StoreAGUPorts  []string `json:"store_agu_ports"`
	StoreDataPorts []string `json:"store_data_ports"`
	LoadLat        int      `json:"load_latency"`
	LoadWidthBits  int      `json:"load_width_bits"`
	StoreWidthBits int      `json:"store_width_bits"`
	WideLoadPorts  []string `json:"wide_load_ports,omitempty"`
	WideLoadBits   int      `json:"wide_load_bits,omitempty"`

	Unknown *machineUnknown `json:"unknown,omitempty"`

	Entries []machineEntry `json:"instructions"`
}

// computePortSignature hashes the canonical encoding of the port-relevant
// model subset (see portFile). Like computeFingerprint, the encoding is
// deterministic, so equal in-core content always yields equal signatures
// across processes and builds.
func (m *Model) computePortSignature() string {
	pf := portFile{
		Dialect: m.Dialect.String(), Ports: m.Ports,
		IssueWidth: m.IssueWidth, DecodeWidth: m.DecodeWidth,
		RetireWidth: m.RetireWidth, ROBSize: m.ROBSize, SchedSize: m.SchedSize,
		PhysVecRegs: m.PhysVecRegs, PhysGPRegs: m.PhysGPRegs,
		LoadPorts:      m.maskNames(m.LoadPorts),
		StoreAGUPorts:  m.maskNames(m.StoreAGUPorts),
		StoreDataPorts: m.maskNames(m.StoreDataPorts),
		LoadLat:        m.LoadLat, LoadWidthBits: m.LoadWidthBits,
		StoreWidthBits: m.StoreWidthBits,
		WideLoadPorts:  m.maskNames(m.WideLoadPorts), WideLoadBits: m.WideLoadBits,
	}
	if u := m.Unknown; u != nil {
		pf.Unknown = &machineUnknown{Ports: m.maskNames(u.Ports), Lat: u.Lat, Cycles: u.Cycles}
	}
	for _, e := range m.Entries {
		// Notes are provenance documentation, not modeling content: a
		// comment edit must not invalidate shared artifacts.
		me := machineEntry{Mnemonic: e.Mnemonic, Sig: e.Sig, Width: e.Width, Lat: e.Lat}
		for _, u := range e.Uops {
			me.Uops = append(me.Uops, machineUop{
				Ports: m.maskNames(u.Ports), Cycles: u.Cycles, Kind: kindName(u.Kind),
			})
		}
		if me.Uops == nil {
			me.Uops = []machineUop{}
		}
		pf.Entries = append(pf.Entries, me)
	}
	data, err := json.Marshal(pf)
	if err != nil {
		panic(fmt.Sprintf("uarch: port signature %s: %v", m.Key, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (m *Model) namesMask(names []string) (PortMask, error) {
	var mask PortMask
	for _, n := range names {
		found := false
		for i, p := range m.Ports {
			if p == n {
				mask |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("uarch: machine file references unknown port %q", n)
		}
	}
	return mask, nil
}
