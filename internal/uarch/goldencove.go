package uarch

import (
	"incore/internal/isa"
	"incore/internal/nodes"
)

// NewGoldenCove builds the machine model for Intel Golden Cove as shipped
// in the Xeon Platinum 8470 (Sapphire Rapids). Port topology after the
// Intel optimization manual and uops.info; simplifications:
//
//   - 512-bit FP operations execute on ports 0 and 5 (port 0 stands for
//     the fused 0+1 pair), 256-bit adds on 1/5, 256-bit mul/FMA on 0/1;
//   - macro-fusion of cmp+jcc is not modeled;
//   - load ports 2/3 carry 512-bit accesses, port 11 handles accesses up
//     to 256 bits.
func NewGoldenCove() *Model {
	m := &Model{
		Key:     "goldencove",
		Name:    "Golden Cove",
		CPU:     "Intel Xeon Platinum 8470",
		Vendor:  "Intel",
		Dialect: isa.DialectX86,
		Ports:   []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11"},

		IssueWidth:  6,
		DecodeWidth: 6,
		RetireWidth: 8,
		ROBSize:     512,
		SchedSize:   160,
		PhysVecRegs: 332,
		PhysGPRegs:  280,

		LoadLat:        7,
		LoadWidthBits:  512,
		StoreWidthBits: 256,

		VecWidth:      512,
		CoresPerChip:  52,
		BaseFreqGHz:   2.0,
		MaxFreqGHz:    3.8,
		FPVectorUnits: 3,
		IntUnits:      5,
	}

	// Node-level calibration (machine-file "node" section): sustained
	// bandwidth and vendor-counted flops derive from the Table I system
	// description; the ECM transfer chain and the frequency governor
	// carry the values the ecm/freq packages used to hardcode.
	tbl := nodes.MustGet("goldencove")
	m.Node = &NodeParams{
		MemBWGBs:      tbl.TheoreticalBandwidthGBs() * tbl.StreamEfficiency,
		FlopsPerCycle: tbl.FlopsPerCycle(),
		// Classic Intel ECM: fully non-overlapping transfer chain.
		ECM: &ECMParams{L1L2BytesPerCycle: 64, L2L3BytesPerCycle: 16},
		// Xeon Platinum 8470: single-core turbo 3.8 GHz; AVX-512
		// license caps at 3.5 GHz and decays to 2.0 GHz at 52 cores;
		// SSE/AVX decay to 3.0 GHz (Fig. 2).
		Freq: &FreqParams{
			TDPWatts: 350, UncoreWatts: 90, StaticWattsPerCore: 0.5,
			MinFreqGHz: 0.8,
			ActivityFactor: map[string]float64{
				"scalar": 0.155, "sse": 0.1667, "avx": 0.1667,
				"avx512": 0.5625,
			},
			MaxFreqGHz: map[string]float64{
				"scalar": 3.8, "sse": 3.8, "avx": 3.8, "avx512": 3.5,
			},
			WidestVectorExt: "avx512",
		},
	}

	p := m.PortsByName
	intALU := p("0", "1", "5", "6", "10")
	fpAdd256 := p("1", "5")
	fpMul256 := p("0", "1")
	fp512 := p("0", "5")
	fpAll := p("0", "1", "5")
	shuffle := p("1", "5")
	branch := p("6")
	div := p("0")

	m.LoadPorts = p("2", "3", "11")
	m.WideLoadPorts = p("2", "3")
	m.WideLoadBits = 512
	m.StoreAGUPorts = p("7", "8")
	m.StoreDataPorts = p("4", "9")

	one := func(mask PortMask) []Uop { return []Uop{{Ports: mask, Cycles: 1, Kind: UopCompute}} }
	cyc := func(mask PortMask, c float64) []Uop { return []Uop{{Ports: mask, Cycles: c, Kind: UopCompute}} }
	none := []Uop{} // pure memory ops: µ-ops synthesised by folding

	m.Entries = []Entry{
		// --- scalar integer -------------------------------------------------
		{Mnemonic: "mov", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "movq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "movl", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "movabs", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "add", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "addq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "addl", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "sub", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "subq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "and", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "andq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "or", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "orq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "xor", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "xorq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "inc", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "incq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "dec", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "decq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "neg", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "negq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "shl", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "shlq", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "shr", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "shrq", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "sal", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "salq", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "sar", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "sarq", Lat: 1, Uops: one(p("0", "6"))},
		{Mnemonic: "imul", Lat: 3, Uops: one(p("1"))},
		{Mnemonic: "imulq", Lat: 3, Uops: one(p("1"))},
		{Mnemonic: "lea", Lat: 1, Uops: one(p("1", "5"))},
		{Mnemonic: "leaq", Lat: 1, Uops: one(p("1", "5"))},
		{Mnemonic: "cmp", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "cmpq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "cmpl", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "test", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "testq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "nop", Lat: 0, Uops: none},

		// --- branches --------------------------------------------------------
		{Mnemonic: "jmp", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jne", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "je", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jb", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jae", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jl", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jle", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jg", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jge", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jnz", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},

		// --- SIMD moves (memory forms folded automatically) ------------------
		{Mnemonic: "vmovupd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovupd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovupd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vmovapd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovapd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovapd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vmovsd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovsd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovsd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "movupd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "movupd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "movapd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "movapd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "movsd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "movsd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "movsd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vmovntpd", Lat: 0, Uops: none, Notes: "NT store; WC buffer modeled in memsim"},
		{Mnemonic: "movntpd", Lat: 0, Uops: none},
		{Mnemonic: "vbroadcastsd", Sig: "m,v", Lat: 0, Uops: none, Notes: "broadcast folded into load"},
		{Mnemonic: "vbroadcastsd", Sig: "v,v", Lat: 3, Uops: one(p("5"))},

		// --- packed FP arithmetic --------------------------------------------
		// 512-bit forms: two native 512-bit units behind ports 0 and 5.
		{Mnemonic: "vaddpd", Width: 512, Lat: 2, Uops: one(fp512)},
		{Mnemonic: "vsubpd", Width: 512, Lat: 2, Uops: one(fp512)},
		{Mnemonic: "vmulpd", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vfmadd231pd", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vfmadd213pd", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vfmadd132pd", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vfnmadd231pd", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vmaxpd", Width: 512, Lat: 2, Uops: one(fp512)},
		{Mnemonic: "vminpd", Width: 512, Lat: 2, Uops: one(fp512)},
		{Mnemonic: "vdivpd", Width: 512, Lat: 14, Uops: cyc(div, 16), Notes: "Table III: 0.5 elem/cy"},
		{Mnemonic: "vsqrtpd", Width: 512, Lat: 19, Uops: cyc(div, 18)},
		{Mnemonic: "vxorpd", Width: 512, Lat: 1, Uops: one(fp512)},

		// 256-bit and 128-bit forms.
		{Mnemonic: "vaddpd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vsubpd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vmulpd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vfmadd231pd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vfmadd213pd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vfmadd132pd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vfnmadd231pd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vmaxpd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vminpd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vdivpd", Width: 256, Lat: 14, Uops: cyc(div, 10)},
		{Mnemonic: "vdivpd", Lat: 14, Uops: cyc(div, 8)},
		{Mnemonic: "vsqrtpd", Lat: 18, Uops: cyc(div, 9)},
		{Mnemonic: "vxorpd", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "addpd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "subpd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "mulpd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "divpd", Lat: 14, Uops: cyc(div, 8)},

		// Shuffles / lane ops used by reductions.
		{Mnemonic: "vextractf128", Lat: 3, Uops: one(p("5"))},
		{Mnemonic: "vextractf64x4", Lat: 3, Uops: one(p("5"))},
		{Mnemonic: "vpermilpd", Lat: 1, Uops: one(shuffle)},
		{Mnemonic: "vunpckhpd", Lat: 1, Uops: one(shuffle)},
		{Mnemonic: "unpckhpd", Lat: 1, Uops: one(shuffle)},
		{Mnemonic: "vshufpd", Lat: 1, Uops: one(shuffle)},
		{Mnemonic: "vinsertf128", Lat: 3, Uops: one(p("5"))},

		// --- scalar FP --------------------------------------------------------
		{Mnemonic: "vaddsd", Lat: 2, Uops: one(fpAdd256), Notes: "Table III: 2/cy, lat 2 (halved vs Ice Lake)"},
		{Mnemonic: "vsubsd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vmulsd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vfmadd231sd", Lat: 5, Uops: one(fpMul256), Notes: "Table III scalar FMA lat 5"},
		{Mnemonic: "vfmadd213sd", Lat: 5, Uops: one(fpMul256)},
		{Mnemonic: "vfnmadd231sd", Lat: 5, Uops: one(fpMul256)},
		{Mnemonic: "vdivsd", Lat: 14, Uops: cyc(div, 4), Notes: "Table III: 0.25/cy"},
		{Mnemonic: "vsqrtsd", Lat: 18, Uops: cyc(div, 4.5)},
		{Mnemonic: "addsd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "subsd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "mulsd", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "divsd", Lat: 14, Uops: cyc(div, 4)},
		{Mnemonic: "sqrtsd", Lat: 18, Uops: cyc(div, 4.5)},
		{Mnemonic: "vcvtsi2sd", Lat: 7, Uops: []Uop{{Ports: p("0", "1"), Cycles: 1}, {Ports: p("5"), Cycles: 1}}},
		{Mnemonic: "vcvtsi2sdq", Lat: 7, Uops: []Uop{{Ports: p("0", "1"), Cycles: 1}, {Ports: p("5"), Cycles: 1}}},
		{Mnemonic: "vucomisd", Lat: 3, Uops: one(p("0"))},
		{Mnemonic: "ucomisd", Lat: 3, Uops: one(p("0"))},
		{Mnemonic: "vmaxsd", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vminsd", Lat: 2, Uops: one(fpAdd256)},

		// --- gather -----------------------------------------------------------
		// AVX-512 form: vgatherqpd (mem), %zmm {k}: Table III 1/3 CL/cy,
		// lat 20. One 512-bit gather touches a full cache line of
		// doubles; 3 cy/instr via two 3-cycle load µ-ops on ports 2/3.
		{Mnemonic: "vgatherqpd", Sig: "m,v", Width: 512, Lat: 20, Uops: []Uop{
			{Ports: p("2", "3"), Cycles: 3, Kind: UopLoad},
			{Ports: p("2", "3"), Cycles: 3, Kind: UopLoad},
			{Ports: fp512, Cycles: 1, Kind: UopCompute},
		}},
		{Mnemonic: "vgatherqpd", Sig: "v,m,v", Lat: 20, Uops: []Uop{
			{Ports: p("2", "3"), Cycles: 1.5, Kind: UopLoad},
			{Ports: p("2", "3"), Cycles: 1.5, Kind: UopLoad},
			{Ports: fpAll, Cycles: 1, Kind: UopCompute},
		}},

		// --- single precision -------------------------------------------------
		{Mnemonic: "vaddps", Width: 512, Lat: 2, Uops: one(fp512)},
		{Mnemonic: "vaddps", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vsubps", Width: 512, Lat: 2, Uops: one(fp512)},
		{Mnemonic: "vsubps", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vmulps", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vmulps", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vfmadd231ps", Width: 512, Lat: 4, Uops: one(fp512)},
		{Mnemonic: "vfmadd231ps", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vdivps", Width: 512, Lat: 11, Uops: cyc(div, 10)},
		{Mnemonic: "vdivps", Lat: 11, Uops: cyc(div, 5)},
		{Mnemonic: "vaddss", Lat: 2, Uops: one(fpAdd256)},
		{Mnemonic: "vmulss", Lat: 4, Uops: one(fpMul256)},
		{Mnemonic: "vdivss", Lat: 11, Uops: cyc(div, 3)},
		{Mnemonic: "vfmadd231ss", Lat: 5, Uops: one(fpMul256)},
		{Mnemonic: "vmovups", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovups", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovups", Sig: "v,v", Lat: 1, Uops: one(fpAll)},

		// --- integer SIMD -----------------------------------------------------
		{Mnemonic: "vpaddq", Width: 512, Lat: 1, Uops: one(fp512)},
		{Mnemonic: "vpaddq", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpaddd", Width: 512, Lat: 1, Uops: one(fp512)},
		{Mnemonic: "vpaddd", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpsubq", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpmulld", Lat: 10, Uops: []Uop{{Ports: fpMul256, Cycles: 1}, {Ports: fpMul256, Cycles: 1}}},
		{Mnemonic: "vpand", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpor", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpxor", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpsllq", Lat: 1, Uops: one(fpMul256)},
		{Mnemonic: "vpsrlq", Lat: 1, Uops: one(fpMul256)},
		{Mnemonic: "vpcmpeqd", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpbroadcastd", Sig: "v,v", Lat: 3, Uops: one(p("5"))},

		// --- converts / permutes ----------------------------------------------
		{Mnemonic: "vcvtpd2ps", Lat: 5, Uops: []Uop{{Ports: fpMul256, Cycles: 1}, {Ports: p("5"), Cycles: 1}}},
		{Mnemonic: "vcvtps2pd", Lat: 5, Uops: []Uop{{Ports: fpMul256, Cycles: 1}, {Ports: p("5"), Cycles: 1}}},
		{Mnemonic: "vcvtdq2pd", Lat: 5, Uops: []Uop{{Ports: fpMul256, Cycles: 1}, {Ports: p("5"), Cycles: 1}}},
		{Mnemonic: "vcvttpd2dq", Lat: 5, Uops: []Uop{{Ports: fpMul256, Cycles: 1}, {Ports: p("5"), Cycles: 1}}},
		{Mnemonic: "vpermpd", Lat: 3, Uops: one(p("5"))},
		{Mnemonic: "vperm2f128", Lat: 3, Uops: one(p("5"))},
		{Mnemonic: "vblendvpd", Lat: 2, Uops: []Uop{{Ports: fpAll, Cycles: 1}, {Ports: fpAll, Cycles: 1}}},

		// --- AVX-512 mask registers ---------------------------------------------
		{Mnemonic: "kmovw", Lat: 1, Uops: one(p("0"))},
		{Mnemonic: "kandw", Lat: 1, Uops: one(p("0"))},
		{Mnemonic: "korw", Lat: 1, Uops: one(p("0"))},
	}
	return m
}
