package uarch

import (
	"incore/internal/isa"
	"incore/internal/nodes"
)

// NewNeoverseV2 builds the machine model for the Arm Neoverse V2 core as
// shipped in the Nvidia Grace CPU Superchip. Port topology after Arm's
// Software Optimization Guide (compare paper Fig. 1): 17 ports total —
// 2 branch (B0/B1), 4 single-cycle integer (I0..I3), 2 multi-cycle integer
// (M0/M1), 4 FP/SIMD (V0..V3), 3 load (L0..L2), 2 store (S0/S1).
// SVE vector length is 128 bits, so NEON and SVE forms have identical
// element throughput.
func NewNeoverseV2() *Model {
	m := &Model{
		Key:     "neoversev2",
		Name:    "Neoverse V2",
		CPU:     "Nvidia Grace CPU Superchip",
		Vendor:  "Nvidia/Arm",
		Dialect: isa.DialectAArch64,
		Ports: []string{
			"B0", "B1",
			"I0", "I1", "I2", "I3",
			"M0", "M1",
			"V0", "V1", "V2", "V3",
			"L0", "L1", "L2",
			"S0", "S1",
		},

		IssueWidth:  8,
		DecodeWidth: 8,
		RetireWidth: 8,
		ROBSize:     320,
		SchedSize:   120,
		PhysVecRegs: 260,
		PhysGPRegs:  220,

		LoadLat:        4,
		LoadWidthBits:  128,
		StoreWidthBits: 128,

		VecWidth:      128,
		CoresPerChip:  72,
		BaseFreqGHz:   3.4,
		MaxFreqGHz:    3.4,
		FPVectorUnits: 4,
		IntUnits:      6,
	}

	// Node-level calibration (machine-file "node" section); see the
	// Golden Cove definition for provenance.
	tbl := nodes.MustGet("neoversev2")
	m.Node = &NodeParams{
		MemBWGBs:      tbl.TheoreticalBandwidthGBs() * tbl.StreamEfficiency,
		FlopsPerCycle: tbl.FlopsPerCycle(),
		// Arm-style: transfers overlap with each other except the
		// memory level.
		ECM: &ECMParams{
			L1L2BytesPerCycle: 32, L2L3BytesPerCycle: 32,
			OverlapL1L2: true, OverlapL2L3: true,
		},
		// Grace CPU Superchip: no frequency fixing available, but the
		// chip sustains its 3.4 GHz base for any ISA mix on all 72
		// cores — the power budget never binds.
		Freq: &FreqParams{
			TDPWatts: 250, UncoreWatts: 50, StaticWattsPerCore: 0.2,
			MinFreqGHz: 1.0,
			ActivityFactor: map[string]float64{
				"scalar": 0.06, "neon": 0.06, "sve": 0.06,
			},
			MaxFreqGHz: map[string]float64{
				"scalar": 3.4, "neon": 3.4, "sve": 3.4,
			},
			WidestVectorExt: "sve",
		},
	}

	p := m.PortsByName
	branch := p("B0", "B1")
	intAll := p("I0", "I1", "I2", "I3", "M0", "M1")
	intMulti := p("M0", "M1")
	vAll := p("V0", "V1", "V2", "V3")
	vDiv := p("V0")
	vShuf := p("V0", "V1")
	loads := p("L0", "L1", "L2")
	stores := p("S0", "S1")
	m.LoadPorts = loads
	m.StoreAGUPorts = stores
	m.StoreDataPorts = stores

	one := func(mask PortMask) []Uop { return []Uop{{Ports: mask, Cycles: 1, Kind: UopCompute}} }
	cyc := func(mask PortMask, c float64) []Uop { return []Uop{{Ports: mask, Cycles: c, Kind: UopCompute}} }
	ld1 := []Uop{{Ports: loads, Cycles: 1, Kind: UopLoad}}
	ld2 := []Uop{{Ports: loads, Cycles: 1, Kind: UopLoad}, {Ports: loads, Cycles: 1, Kind: UopLoad}}
	st1 := []Uop{{Ports: stores, Cycles: 1, Kind: UopStoreData}}
	st2 := []Uop{{Ports: stores, Cycles: 1, Kind: UopStoreData}, {Ports: stores, Cycles: 1, Kind: UopStoreData}}

	m.Entries = []Entry{
		// --- scalar integer --------------------------------------------------
		// The 6 integer ports (4 single-cycle + 2 multi-cycle) fully
		// decouple address arithmetic from FP work (paper Table II:
		// "Int units 6").
		{Mnemonic: "mov", Sig: "r,r", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "mov", Sig: "r,i", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "movz", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "movk", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "add", Sig: "r,r,r", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "add", Sig: "r,r,i", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "sub", Sig: "r,r,r", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "sub", Sig: "r,r,i", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "adds", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "subs", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "and", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "orr", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "eor", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "lsl", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "lsr", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "asr", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "cmp", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "cmn", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "tst", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "mul", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "madd", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "msub", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "adrp", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "adr", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "nop", Lat: 0, Uops: []Uop{}},

		// --- branches ---------------------------------------------------------
		{Mnemonic: "b", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.ne", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.eq", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.lt", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.le", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.gt", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.ge", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.cc", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.first", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "b.any", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "cbz", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "cbnz", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "ret", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},

		// --- loads ------------------------------------------------------------
		// Entry latencies are load-to-use inclusive; Lookup does not add
		// Model.LoadLat for AArch64 forms.
		{Mnemonic: "ldr", Lat: 4, Uops: ld1},
		{Mnemonic: "ldur", Lat: 4, Uops: ld1},
		{Mnemonic: "ldp", Lat: 4, Uops: ld2, Notes: "two 64/128-bit destinations, two load µ-ops"},
		{Mnemonic: "ld1", Lat: 4, Uops: ld1},
		{Mnemonic: "ld1rd", Lat: 6, Uops: ld1, Notes: "load + broadcast"},
		// SVE contiguous load; SVE memory latency is 6 on V2.
		{Mnemonic: "ld1d", Sig: "v,p,m", Lat: 6, Uops: ld1},

		// SVE gather (mem operand carries a vector index): Table III
		// 1/4 CL/cy, lat 9. A 128-bit gather fetches 2 doubles; two
		// 1.5-cycle load µ-ops over three load ports yield 1 instr/cy.
		{Mnemonic: "ld1d@gather", Sig: "v,p,m", Lat: 9, Uops: []Uop{
			{Ports: loads, Cycles: 1.5, Kind: UopLoad},
			{Ports: loads, Cycles: 1.5, Kind: UopLoad},
		}, Notes: "gather form; selected when the address index is a vector register"},

		// --- stores -----------------------------------------------------------
		{Mnemonic: "str", Lat: 0, Uops: st1},
		{Mnemonic: "stur", Lat: 0, Uops: st1},
		{Mnemonic: "stp", Lat: 0, Uops: st2},
		{Mnemonic: "stnp", Lat: 0, Uops: st1, Notes: "non-temporal pair hint"},
		{Mnemonic: "st1", Lat: 0, Uops: st1},
		{Mnemonic: "st1d", Lat: 0, Uops: st1},

		// --- NEON FP (128-bit, .2d) -------------------------------------------
		// All four V ports execute FADD/FMUL/FMLA: 4 instr/cy x 2 lanes
		// = 8 DP elem/cy (Table III), and 4 scalar instr/cy.
		{Mnemonic: "fadd", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "fsub", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "fmul", Lat: 3, Uops: one(vAll)},
		{Mnemonic: "fmla", Lat: 4, Uops: one(vAll)},
		{Mnemonic: "fmls", Lat: 4, Uops: one(vAll)},
		{Mnemonic: "fmadd", Lat: 4, Uops: one(vAll)},
		{Mnemonic: "fmsub", Lat: 4, Uops: one(vAll)},
		{Mnemonic: "fnmadd", Lat: 4, Uops: one(vAll)},
		{Mnemonic: "fnmsub", Lat: 4, Uops: one(vAll)},
		{Mnemonic: "fneg", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "fabs", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "fmax", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "fmin", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "faddp", Lat: 3, Uops: one(vShuf)},
		{Mnemonic: "fmaxp", Lat: 3, Uops: one(vShuf)},
		{Mnemonic: "faddv", Lat: 5, Uops: []Uop{{Ports: vShuf, Cycles: 1}, {Ports: vAll, Cycles: 1}}},
		{Mnemonic: "fadda", Lat: 4, Uops: cyc(vDiv, 4), Notes: "SVE strictly-ordered reduction: serial"},

		// Divide/sqrt: one iterative unit behind V0.
		// Vector: 0.4 elem/cy = 2 elem per 5 cycles, lat 5 (Table III).
		// Scalar: 0.4 instr/cy = 2.5 cycles reciprocal, lat 12.
		{Mnemonic: "fdiv", Sig: "v,v,v", Width: 128, Lat: 5, Uops: cyc(vDiv, 5)},
		{Mnemonic: "fdiv", Lat: 12, Uops: cyc(vDiv, 2.5)},
		// SVE predicated (reverse) divide, same iterative unit.
		{Mnemonic: "fdivr", Sig: "v,p,v,v", Width: 128, Lat: 5, Uops: cyc(vDiv, 5)},
		{Mnemonic: "fdiv", Sig: "v,p,v,v", Width: 128, Lat: 5, Uops: cyc(vDiv, 5)},
		{Mnemonic: "fsqrt", Sig: "v,v", Width: 128, Lat: 9, Uops: cyc(vDiv, 5)},
		{Mnemonic: "fsqrt", Lat: 13, Uops: cyc(vDiv, 3)},

		// --- moves / converts ---------------------------------------------------
		{Mnemonic: "fmov", Sig: "v,i", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "fmov", Sig: "v,r", Lat: 3, Uops: one(p("M0"))},
		{Mnemonic: "fmov", Sig: "r,v", Lat: 2, Uops: one(p("V1"))},
		{Mnemonic: "fmov", Sig: "v,v", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "dup", Lat: 3, Uops: one(p("M0"))},
		{Mnemonic: "scvtf", Lat: 3, Uops: one(vAll)},
		{Mnemonic: "fcvt", Lat: 3, Uops: one(vAll)},
		{Mnemonic: "fcmp", Lat: 2, Uops: one(p("V0"))},

		// --- SVE housekeeping ---------------------------------------------------
		{Mnemonic: "ptrue", Lat: 2, Uops: one(p("M0"))},
		{Mnemonic: "pfalse", Lat: 2, Uops: one(p("M0"))},
		{Mnemonic: "whilelo", Lat: 2, Uops: one(p("M0", "M1"))},
		{Mnemonic: "whilelt", Lat: 2, Uops: one(p("M0", "M1"))},
		{Mnemonic: "incd", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "incw", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "cntd", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "cntw", Lat: 2, Uops: one(intMulti)},
		{Mnemonic: "index", Lat: 4, Uops: one(vShuf)},

		// --- vector integer (NEON/SVE; "v,v,v" forms run on the V pipes,
		// unlike their GPR counterparts above) ---------------------------------
		{Mnemonic: "add", Sig: "v,v,v", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "sub", Sig: "v,v,v", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "mul", Sig: "v,v,v", Lat: 4, Uops: one(vShuf)},
		{Mnemonic: "and", Sig: "v,v,v", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "orr", Sig: "v,v,v", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "eor", Sig: "v,v,v", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "shl", Lat: 2, Uops: one(p("V1", "V3"))},
		{Mnemonic: "sshr", Lat: 2, Uops: one(p("V1", "V3"))},
		{Mnemonic: "cmeq", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "cmgt", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "bsl", Lat: 2, Uops: one(vAll)},
		{Mnemonic: "rev64", Lat: 2, Uops: one(vShuf)},
		{Mnemonic: "zip1", Lat: 2, Uops: one(vShuf)},
		{Mnemonic: "uzp1", Lat: 2, Uops: one(vShuf)},
		{Mnemonic: "trn1", Lat: 2, Uops: one(vShuf)},
		{Mnemonic: "tbl", Lat: 2, Uops: one(vShuf)},

		// --- converts -----------------------------------------------------------
		{Mnemonic: "fcvtzs", Lat: 3, Uops: one(vAll)},
		{Mnemonic: "ucvtf", Lat: 3, Uops: one(vAll)},
		{Mnemonic: "fcvtn", Lat: 3, Uops: one(vShuf)},
		{Mnemonic: "fcvtl", Lat: 3, Uops: one(vShuf)},

		// --- scalar integer division and selects --------------------------------
		{Mnemonic: "udiv", Lat: 12, Uops: cyc(p("M0"), 11)},
		{Mnemonic: "sdiv", Lat: 12, Uops: cyc(p("M0"), 11)},
		{Mnemonic: "csel", Lat: 1, Uops: one(intAll)},
		{Mnemonic: "csinc", Lat: 1, Uops: one(intAll)},
	}
	return m
}
