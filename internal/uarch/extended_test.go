package uarch

import (
	"testing"

	"incore/internal/isa"
)

// TestExtendedCoverageX86 spot-checks the single-precision, integer-SIMD,
// and convert/permute entries on both x86 models.
func TestExtendedCoverageX86(t *testing.T) {
	srcs := []string{
		"\tvaddps %ymm1, %ymm2, %ymm3\n",
		"\tvmulps %ymm1, %ymm2, %ymm3\n",
		"\tvfmadd231ps %ymm1, %ymm2, %ymm3\n",
		"\tvdivps %ymm1, %ymm2, %ymm3\n",
		"\tvaddss %xmm1, %xmm2, %xmm3\n",
		"\tvdivss %xmm1, %xmm2, %xmm3\n",
		"\tvmovups (%rsi), %ymm0\n",
		"\tvmovups %ymm0, (%rdi)\n",
		"\tvpaddq %ymm1, %ymm2, %ymm3\n",
		"\tvpaddd %ymm1, %ymm2, %ymm3\n",
		"\tvpmulld %ymm1, %ymm2, %ymm3\n",
		"\tvpand %ymm1, %ymm2, %ymm3\n",
		"\tvpxor %ymm1, %ymm2, %ymm3\n",
		"\tvpsllq %ymm1, %ymm2, %ymm3\n",
		"\tvpcmpeqd %ymm1, %ymm2, %ymm3\n",
		"\tvcvtpd2ps %ymm1, %xmm3\n",
		"\tvcvtps2pd %xmm1, %ymm3\n",
		"\tvpermpd %ymm1, %ymm2, %ymm3\n",
		"\tvblendvpd %ymm1, %ymm2, %ymm3, %ymm4\n",
	}
	for _, key := range []string{"goldencove", "zen4"} {
		m := MustGet(key)
		for _, src := range srcs {
			b, err := isa.ParseBlock("t", key, m.Dialect, src)
			if err != nil {
				t.Fatalf("%s parse %q: %v", key, src, err)
			}
			d, err := m.Lookup(&b.Instrs[0])
			if err != nil {
				t.Errorf("%s: %v", key, err)
				continue
			}
			if len(d.Uops) == 0 && !d.IsStore {
				t.Errorf("%s %q: no µ-ops", key, src)
			}
		}
	}
}

// TestExtendedCoverageAArch64 spot-checks the vector-integer, convert,
// and scalar-division entries on Neoverse V2.
func TestExtendedCoverageAArch64(t *testing.T) {
	m := MustGet("neoversev2")
	srcs := []string{
		"\tadd v0.2d, v1.2d, v2.2d\n",
		"\tsub v0.2d, v1.2d, v2.2d\n",
		"\tmul v0.4s, v1.4s, v2.4s\n",
		"\tand v0.16b, v1.16b, v2.16b\n",
		"\teor v0.16b, v1.16b, v2.16b\n",
		"\tcmeq v0.2d, v1.2d, v2.2d\n",
		"\tzip1 v0.2d, v1.2d, v2.2d\n",
		"\tfcvtzs v0.2d, v1.2d\n",
		"\tucvtf v0.2d, v1.2d\n",
		"\tudiv x0, x1, x2\n",
		"\tcsel x0, x1, x2\n",
	}
	for _, src := range srcs {
		b, err := isa.ParseBlock("t", "neoversev2", m.Dialect, src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := m.Lookup(&b.Instrs[0]); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestVectorIntUsesVPorts: the "v,v,v" integer forms must run on the V
// pipes, not the scalar integer ports.
func TestVectorIntUsesVPorts(t *testing.T) {
	m := MustGet("neoversev2")
	vPorts := m.PortsByName("V0", "V1", "V2", "V3")
	b, err := isa.ParseBlock("t", "neoversev2", m.Dialect, "\tadd v0.2d, v1.2d, v2.2d\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Lookup(&b.Instrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Uops[0].Ports&^vPorts != 0 {
		t.Errorf("vector add must use V ports, got mask %b", d.Uops[0].Ports)
	}
	// The GPR form stays on the integer ports.
	b2, err := isa.ParseBlock("t", "neoversev2", m.Dialect, "\tadd x0, x1, x2\n")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.Lookup(&b2.Instrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if d2.Uops[0].Ports&vPorts != 0 {
		t.Errorf("GPR add must not use V ports")
	}
}

// TestZen4SinglePrecision512DoublePumps mirrors the DP behaviour for PS.
func TestZen4SinglePrecision512DoublePumps(t *testing.T) {
	m := MustGet("zen4")
	b, err := isa.ParseBlock("t", "zen4", m.Dialect, "\tvaddps %zmm1, %zmm2, %zmm3\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Lookup(&b.Instrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Uops) != 2 {
		t.Errorf("zen4 512-bit PS add must double-pump, got %d µ-ops", len(d.Uops))
	}
}
