package uarch

import (
	"fmt"

	"incore/internal/isa"
)

// NodeParams is the optional node-level section of a machine model: the
// calibration the Execution-Cache-Memory model (internal/ecm), the
// frequency governor (internal/freq), and the Roofline ceilings
// (internal/roofline) need beyond the in-core port tables. Built-in
// models derive these values from the Table I system descriptions
// (internal/nodes); a machine file supplies them literally under its
// "node" key, so a runtime-loaded microarchitecture gets full node-level
// predictions, not just in-core analysis.
//
// The whole section and each subsection are optional: a model without
// them still supports the analyzer, the MCA baseline, and the simulator;
// ecm.ForModel / freq.ForModel / roofline.ForModel report a descriptive
// error instead.
type NodeParams struct {
	// MemBWGBs is the sustained socket memory bandwidth in GB/s — the
	// measured/calibrated streaming ceiling, not the pin limit. It is
	// the ECM saturation ceiling and the Roofline memory roof.
	MemBWGBs float64
	// FlopsPerCycle is double-precision flops per cycle per core counted
	// the way vendors do (FMA pipes × lanes × 2, plus concurrent ADD
	// pipes); the Roofline compute ceilings scale with it.
	FlopsPerCycle int

	// ECM carries the inter-level transfer parameters of the ECM model.
	ECM *ECMParams
	// Freq carries the TDP power-budget model of the frequency governor.
	Freq *FreqParams
}

// ECMParams calibrates the ECM transfer chain for one machine.
type ECMParams struct {
	// L1L2BytesPerCycle / L2L3BytesPerCycle are the per-core inter-level
	// bandwidths in bytes per core-clock cycle.
	L1L2BytesPerCycle float64
	L2L3BytesPerCycle float64
	// OverlapL1L2 / OverlapL2L3 / OverlapL3Mem report whether the
	// respective transfer level overlaps with the rest of the data chain
	// (contributes max-wise rather than additively — the Arm/AMD-style
	// machine models of Hofmann et al. 2020).
	OverlapL1L2  bool
	OverlapL2L3  bool
	OverlapL3Mem bool
}

// FreqParams calibrates the TDP power-budget frequency governor: each
// active core dissipates P_static + c(isa)·f³ against the package budget
// TDP − P_uncore, clamped to the per-ISA license ceiling.
type FreqParams struct {
	// TDPWatts is the package power budget; UncoreWatts the fixed
	// non-core draw; StaticWattsPerCore per-core leakage.
	TDPWatts           float64
	UncoreWatts        float64
	StaticWattsPerCore float64
	// MinFreqGHz is the governor floor.
	MinFreqGHz float64
	// ActivityFactor maps ISA extension names (isa.Ext.String spelling:
	// "scalar", "sse", "avx", "avx512", "neon", "sve") to the cubic
	// dynamic-power coefficient c in W/GHz³.
	ActivityFactor map[string]float64
	// MaxFreqGHz maps the same extension names to license/turbo
	// frequency ceilings.
	MaxFreqGHz map[string]float64
	// WidestVectorExt names the widest vector extension the machine
	// executes; sustained-peak ceilings (Roofline, Table I) evaluate the
	// governor at this class.
	WidestVectorExt string
}

// validateNode checks the node-level section when present; called from
// Model.Validate.
func (m *Model) validateNode() error {
	np := m.Node
	if np == nil {
		return nil
	}
	if np.MemBWGBs < 0 {
		return fmt.Errorf("uarch: model %s: negative node memory bandwidth", m.Key)
	}
	if np.FlopsPerCycle < 0 {
		return fmt.Errorf("uarch: model %s: negative node flops/cycle", m.Key)
	}
	if e := np.ECM; e != nil {
		if e.L1L2BytesPerCycle <= 0 || e.L2L3BytesPerCycle <= 0 {
			return fmt.Errorf("uarch: model %s: ECM inter-level bandwidths must be positive", m.Key)
		}
		if np.MemBWGBs <= 0 {
			return fmt.Errorf("uarch: model %s: ECM section requires a positive node memory bandwidth", m.Key)
		}
		// ecm.ForModel expresses the memory ceiling in bytes per
		// core-clock cycle; a missing base frequency would make it
		// infinite.
		if m.BaseFreqGHz <= 0 {
			return fmt.Errorf("uarch: model %s: ECM section requires a positive base_freq_ghz", m.Key)
		}
	}
	if f := np.Freq; f != nil {
		if f.TDPWatts <= 0 {
			return fmt.Errorf("uarch: model %s: governor TDP must be positive", m.Key)
		}
		// The governor solves for n in 1..CoresPerChip, and the roofline
		// peak scales with cores × max frequency.
		if m.CoresPerChip <= 0 {
			return fmt.Errorf("uarch: model %s: governor requires a positive cores_per_chip", m.Key)
		}
		if m.MaxFreqGHz <= 0 {
			return fmt.Errorf("uarch: model %s: governor requires a positive max_freq_ghz", m.Key)
		}
		if f.UncoreWatts < 0 || f.StaticWattsPerCore < 0 || f.MinFreqGHz < 0 {
			return fmt.Errorf("uarch: model %s: negative governor parameter", m.Key)
		}
		if len(f.ActivityFactor) == 0 || len(f.MaxFreqGHz) == 0 {
			return fmt.Errorf("uarch: model %s: governor needs activity factors and frequency ceilings", m.Key)
		}
		for name, c := range f.ActivityFactor {
			if _, err := isa.ParseExt(name); err != nil {
				return fmt.Errorf("uarch: model %s: governor activity factor: %w", m.Key, err)
			}
			if c <= 0 {
				return fmt.Errorf("uarch: model %s: governor activity factor for %q must be positive", m.Key, name)
			}
		}
		for name, fmax := range f.MaxFreqGHz {
			if _, err := isa.ParseExt(name); err != nil {
				return fmt.Errorf("uarch: model %s: governor frequency ceiling: %w", m.Key, err)
			}
			if fmax <= 0 {
				return fmt.Errorf("uarch: model %s: governor frequency ceiling for %q must be positive", m.Key, name)
			}
		}
		if f.WidestVectorExt != "" {
			if _, err := isa.ParseExt(f.WidestVectorExt); err != nil {
				return fmt.Errorf("uarch: model %s: widest vector extension: %w", m.Key, err)
			}
			if _, ok := f.ActivityFactor[f.WidestVectorExt]; !ok {
				return fmt.Errorf("uarch: model %s: widest vector extension %q has no activity factor", m.Key, f.WidestVectorExt)
			}
		}
	}
	return nil
}
