package uarch

import (
	"incore/internal/isa"
	"incore/internal/nodes"
)

// NewZen4 builds the machine model for AMD Zen 4 as shipped in the EPYC
// 9684X (Genoa-X). Port topology: 4 integer ALUs, 3 AGUs (2 usable for
// loads per cycle, 1 for stores), 1 store-data pipe, 4 FP pipes (FP0/FP1:
// MUL/FMA + divider on FP1; FP2/FP3: ADD), 1 branch port — 13 ports.
// Native datapath is 256 bits; AVX-512 instructions are double-pumped into
// two 256-bit µ-ops (paper Sec. II).
func NewZen4() *Model {
	m := &Model{
		Key:     "zen4",
		Name:    "Zen 4",
		CPU:     "AMD EPYC 9684X",
		Vendor:  "AMD",
		Dialect: isa.DialectX86,
		Ports: []string{
			"ALU0", "ALU1", "ALU2", "ALU3",
			"AGU0", "AGU1", "AGU2",
			"SD",
			"FP0", "FP1", "FP2", "FP3",
			"BR0",
		},

		IssueWidth:  6,
		DecodeWidth: 6,
		RetireWidth: 6,
		ROBSize:     320,
		SchedSize:   96,
		PhysVecRegs: 192,
		PhysGPRegs:  224,

		LoadLat:        7,
		LoadWidthBits:  256,
		StoreWidthBits: 256,

		VecWidth:      256,
		CoresPerChip:  96,
		BaseFreqGHz:   2.55,
		MaxFreqGHz:    3.7,
		FPVectorUnits: 4,
		IntUnits:      4,
	}

	// Node-level calibration (machine-file "node" section); see the
	// Golden Cove definition for provenance.
	tbl := nodes.MustGet("zen4")
	m.Node = &NodeParams{
		MemBWGBs:      tbl.TheoreticalBandwidthGBs() * tbl.StreamEfficiency,
		FlopsPerCycle: tbl.FlopsPerCycle(),
		// Zen-style: L2<->L3 overlaps with the rest (victim cache).
		ECM: &ECMParams{
			L1L2BytesPerCycle: 32, L2L3BytesPerCycle: 32,
			OverlapL2L3: true,
		},
		// EPYC 9684X: 3.7 GHz boost, identical behaviour across ISA
		// extensions, decaying to 3.1 GHz at 96 cores (84% of turbo).
		Freq: &FreqParams{
			TDPWatts: 400, UncoreWatts: 100, StaticWattsPerCore: 0.3,
			MinFreqGHz: 0.8,
			ActivityFactor: map[string]float64{
				"scalar": 0.0948, "sse": 0.0948, "avx": 0.0948,
				"avx512": 0.0948,
			},
			MaxFreqGHz: map[string]float64{
				"scalar": 3.7, "sse": 3.7, "avx": 3.7, "avx512": 3.7,
			},
			WidestVectorExt: "avx512",
		},
	}

	p := m.PortsByName
	intALU := p("ALU0", "ALU1", "ALU2", "ALU3")
	branch := p("BR0")
	fpAdd := p("FP2", "FP3")
	fpMul := p("FP0", "FP1")
	fpAll := p("FP0", "FP1", "FP2", "FP3")
	fpShuf := p("FP1", "FP2")
	div := p("FP1")

	m.LoadPorts = p("AGU0", "AGU1")
	m.StoreAGUPorts = p("AGU2")
	m.StoreDataPorts = p("SD")

	one := func(mask PortMask) []Uop { return []Uop{{Ports: mask, Cycles: 1, Kind: UopCompute}} }
	cyc := func(mask PortMask, c float64) []Uop { return []Uop{{Ports: mask, Cycles: c, Kind: UopCompute}} }
	two := func(mask PortMask) []Uop {
		return []Uop{{Ports: mask, Cycles: 1, Kind: UopCompute}, {Ports: mask, Cycles: 1, Kind: UopCompute}}
	}
	none := []Uop{}

	m.Entries = []Entry{
		// --- scalar integer --------------------------------------------------
		{Mnemonic: "mov", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "movq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "movl", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "movabs", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "add", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "addq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "addl", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "sub", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "subq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "and", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "andq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "or", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "orq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "xor", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "xorq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "inc", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "incq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "dec", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "decq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "neg", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "negq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "shl", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "shlq", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "shr", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "shrq", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "sal", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "salq", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "sar", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "sarq", Lat: 1, Uops: one(p("ALU1", "ALU2"))},
		{Mnemonic: "imul", Lat: 3, Uops: one(p("ALU1"))},
		{Mnemonic: "imulq", Lat: 3, Uops: one(p("ALU1"))},
		{Mnemonic: "lea", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "leaq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "cmp", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "cmpq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "cmpl", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "test", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "testq", Lat: 1, Uops: one(intALU)},
		{Mnemonic: "nop", Lat: 0, Uops: none},

		// --- branches ----------------------------------------------------------
		{Mnemonic: "jmp", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jne", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "je", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jb", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jae", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jl", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jle", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jg", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jge", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},
		{Mnemonic: "jnz", Lat: 0, Uops: []Uop{{Ports: branch, Cycles: 1, Kind: UopBranch}}},

		// --- SIMD moves ----------------------------------------------------------
		{Mnemonic: "vmovupd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovupd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovupd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vmovapd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovapd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovapd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vmovsd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovsd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovsd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "movupd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "movupd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "movapd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "movapd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "movsd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "movsd", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "movsd", Sig: "v,v", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vmovntpd", Lat: 0, Uops: none, Notes: "NT store: perfect WA evasion on Zen 4 (paper Fig. 4)"},
		{Mnemonic: "movntpd", Lat: 0, Uops: none},
		{Mnemonic: "vbroadcastsd", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vbroadcastsd", Sig: "v,v", Lat: 1, Uops: one(fpShuf)},

		// --- packed FP arithmetic (256-bit native) -------------------------------
		{Mnemonic: "vaddpd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vsubpd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vmulpd", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "vfmadd231pd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vfmadd213pd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vfmadd132pd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vfnmadd231pd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vmaxpd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vminpd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vdivpd", Lat: 13, Uops: cyc(div, 5), Notes: "Table III: 0.8 elem/cy (256-bit)"},
		{Mnemonic: "vsqrtpd", Lat: 21, Uops: cyc(div, 9)},
		{Mnemonic: "vxorpd", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "addpd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "subpd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "mulpd", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "divpd", Lat: 13, Uops: cyc(div, 2.5)},

		// AVX-512 forms: double-pumped into 2 x 256-bit µ-ops.
		{Mnemonic: "vaddpd", Width: 512, Lat: 3, Uops: two(fpAdd)},
		{Mnemonic: "vsubpd", Width: 512, Lat: 3, Uops: two(fpAdd)},
		{Mnemonic: "vmulpd", Width: 512, Lat: 3, Uops: two(fpMul)},
		{Mnemonic: "vfmadd231pd", Width: 512, Lat: 4, Uops: two(fpMul)},
		{Mnemonic: "vfmadd213pd", Width: 512, Lat: 4, Uops: two(fpMul)},
		{Mnemonic: "vfmadd132pd", Width: 512, Lat: 4, Uops: two(fpMul)},
		{Mnemonic: "vfnmadd231pd", Width: 512, Lat: 4, Uops: two(fpMul)},
		{Mnemonic: "vdivpd", Width: 512, Lat: 13, Uops: cyc(div, 10)},
		{Mnemonic: "vxorpd", Width: 512, Lat: 1, Uops: two(fpAll)},

		// Shuffles / lane ops.
		{Mnemonic: "vextractf128", Lat: 4, Uops: one(fpShuf)},
		{Mnemonic: "vextractf64x4", Lat: 4, Uops: one(fpShuf)},
		{Mnemonic: "vpermilpd", Lat: 1, Uops: one(fpShuf)},
		{Mnemonic: "vunpckhpd", Lat: 1, Uops: one(fpShuf)},
		{Mnemonic: "unpckhpd", Lat: 1, Uops: one(fpShuf)},
		{Mnemonic: "vshufpd", Lat: 1, Uops: one(fpShuf)},
		{Mnemonic: "vinsertf128", Lat: 1, Uops: one(fpShuf)},

		// --- scalar FP -------------------------------------------------------------
		{Mnemonic: "vaddsd", Lat: 3, Uops: one(fpAdd), Notes: "Table III: 2/cy, lat 3"},
		{Mnemonic: "vsubsd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vmulsd", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "vfmadd231sd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vfmadd213sd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vfnmadd231sd", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vdivsd", Lat: 13, Uops: cyc(div, 5), Notes: "Table III: 0.2/cy; hardware early-exit modeled in sim"},
		{Mnemonic: "vsqrtsd", Lat: 14, Uops: cyc(div, 4.5)},
		{Mnemonic: "addsd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "subsd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "mulsd", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "divsd", Lat: 13, Uops: cyc(div, 5)},
		{Mnemonic: "sqrtsd", Lat: 14, Uops: cyc(div, 4.5)},
		{Mnemonic: "vcvtsi2sd", Lat: 7, Uops: one(fpShuf)},
		{Mnemonic: "vcvtsi2sdq", Lat: 7, Uops: one(fpShuf)},
		{Mnemonic: "vucomisd", Lat: 3, Uops: one(p("FP0"))},
		{Mnemonic: "ucomisd", Lat: 3, Uops: one(p("FP0"))},
		{Mnemonic: "vmaxsd", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vminsd", Lat: 3, Uops: one(fpAdd)},

		// --- gather ------------------------------------------------------------------
		// AVX2 form (mask in a ymm register): Table III 1/8 CL/cy,
		// lat 13. One 256-bit gather fetches 4 doubles = half a cache
		// line -> 4 cycles reciprocal throughput.
		{Mnemonic: "vgatherqpd", Sig: "v,m,v", Lat: 13, Uops: []Uop{
			{Ports: p("AGU0", "AGU1"), Cycles: 4, Kind: UopLoad},
			{Ports: p("AGU0", "AGU1"), Cycles: 4, Kind: UopLoad},
			{Ports: fpShuf, Cycles: 1, Kind: UopCompute},
		}},
		{Mnemonic: "vgatherqpd", Sig: "m,v", Lat: 13, Uops: []Uop{
			{Ports: p("AGU0", "AGU1"), Cycles: 4, Kind: UopLoad},
			{Ports: p("AGU0", "AGU1"), Cycles: 4, Kind: UopLoad},
			{Ports: fpShuf, Cycles: 1, Kind: UopCompute},
		}},

		// --- single precision -------------------------------------------------
		{Mnemonic: "vaddps", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vaddps", Width: 512, Lat: 3, Uops: two(fpAdd)},
		{Mnemonic: "vsubps", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vmulps", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "vmulps", Width: 512, Lat: 3, Uops: two(fpMul)},
		{Mnemonic: "vfmadd231ps", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vfmadd231ps", Width: 512, Lat: 4, Uops: two(fpMul)},
		{Mnemonic: "vdivps", Lat: 10, Uops: cyc(div, 3.5)},
		{Mnemonic: "vaddss", Lat: 3, Uops: one(fpAdd)},
		{Mnemonic: "vmulss", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "vdivss", Lat: 10, Uops: cyc(div, 3.5)},
		{Mnemonic: "vfmadd231ss", Lat: 4, Uops: one(fpMul)},
		{Mnemonic: "vmovups", Sig: "m,v", Lat: 0, Uops: none},
		{Mnemonic: "vmovups", Sig: "v,m", Lat: 0, Uops: none},
		{Mnemonic: "vmovups", Sig: "v,v", Lat: 1, Uops: one(fpAll)},

		// --- integer SIMD -----------------------------------------------------
		{Mnemonic: "vpaddq", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpaddq", Width: 512, Lat: 1, Uops: two(fpAll)},
		{Mnemonic: "vpaddd", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpsubq", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpmulld", Lat: 3, Uops: one(fpMul)},
		{Mnemonic: "vpand", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpor", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpxor", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpsllq", Lat: 1, Uops: one(fpShuf)},
		{Mnemonic: "vpsrlq", Lat: 1, Uops: one(fpShuf)},
		{Mnemonic: "vpcmpeqd", Lat: 1, Uops: one(fpAll)},
		{Mnemonic: "vpbroadcastd", Sig: "v,v", Lat: 1, Uops: one(fpShuf)},

		// --- converts / permutes ----------------------------------------------
		{Mnemonic: "vcvtpd2ps", Lat: 6, Uops: one(fpShuf)},
		{Mnemonic: "vcvtps2pd", Lat: 4, Uops: one(fpShuf)},
		{Mnemonic: "vcvtdq2pd", Lat: 4, Uops: one(fpShuf)},
		{Mnemonic: "vcvttpd2dq", Lat: 6, Uops: one(fpShuf)},
		{Mnemonic: "vpermpd", Lat: 4, Uops: one(fpShuf)},
		{Mnemonic: "vperm2f128", Lat: 3, Uops: one(fpShuf)},
		{Mnemonic: "vblendvpd", Lat: 1, Uops: one(fpAll)},
	}
	return m
}
