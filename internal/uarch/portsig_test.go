package uarch

import (
	"bytes"
	"testing"
)

// clone returns a deep-enough copy for the mutations these tests apply.
func clone(t *testing.T, m *Model) *Model {
	t.Helper()
	c := *m
	c.Ports = append([]string(nil), m.Ports...)
	c.Entries = append([]Entry(nil), m.Entries...)
	if m.Node != nil {
		nc := *m.Node
		if m.Node.ECM != nil {
			ec := *m.Node.ECM
			nc.ECM = &ec
		}
		if m.Node.Freq != nil {
			fc := *m.Node.Freq
			nc.Freq = &fc
		}
		c.Node = &nc
	}
	if err := c.Reindex(); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestPortSignatureShape(t *testing.T) {
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		m := MustGet(key)
		sig := m.PortSignature()
		if len(sig) != 64 {
			t.Fatalf("%s: signature length %d, want 64 hex chars", key, len(sig))
		}
		if sig == m.Fingerprint() {
			t.Fatalf("%s: port signature equals full fingerprint — the node section is not being excluded", key)
		}
	}
}

// TestPortSignatureNodeInvariance pins the sharing contract: edits to
// node-level, clocking, labeling, and documentation fields leave the
// port signature unchanged (artifacts stay shared) while the full
// fingerprint — the result cache identity — changes.
func TestPortSignatureNodeInvariance(t *testing.T) {
	base := MustGet("goldencove")
	mutations := []struct {
		name string
		mut  func(m *Model)
	}{
		{"mem bandwidth", func(m *Model) { m.Node.MemBWGBs *= 2 }},
		{"tdp", func(m *Model) { m.Node.Freq.TDPWatts -= 100 }},
		{"base freq", func(m *Model) { m.BaseFreqGHz += 0.5 }},
		{"max freq", func(m *Model) { m.MaxFreqGHz -= 0.5 }},
		{"cores", func(m *Model) { m.CoresPerChip = 8 }},
		{"name", func(m *Model) { m.Name = "What-If Cove" }},
		{"cpu label", func(m *Model) { m.CPU = "Xeon w9-0000X" }},
		{"entry notes", func(m *Model) { m.Entries[0].Notes = "edited provenance comment" }},
	}
	for _, tc := range mutations {
		c := clone(t, base)
		tc.mut(c)
		if err := c.Reindex(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if c.PortSignature() != base.PortSignature() {
			t.Errorf("%s: port signature changed — node-only variants would recompile artifacts", tc.name)
		}
		if tc.name != "entry notes" && c.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint unchanged — results of a different scenario would collide", tc.name)
		}
	}
}

// TestPortSignatureInCoreSensitivity: edits to anything descriptor
// resolution, port analysis, or the simulator reads must change the
// signature, or a variant would be served another variant's artifacts.
func TestPortSignatureInCoreSensitivity(t *testing.T) {
	base := MustGet("goldencove")
	mutations := []struct {
		name string
		mut  func(m *Model)
	}{
		{"issue width", func(m *Model) { m.IssueWidth++ }},
		{"rob size", func(m *Model) { m.ROBSize /= 2 }},
		{"scheduler size", func(m *Model) { m.SchedSize += 16 }},
		{"load latency", func(m *Model) { m.LoadLat++ }},
		{"load ports", func(m *Model) { m.LoadPorts &^= 1 << uint(m.LoadPorts.Indices()[0]) }},
		{"port list", func(m *Model) { m.Ports = append(m.Ports, "extra") }},
		{"entry latency", func(m *Model) { m.Entries[0].Lat++ }},
		{"unknown policy", func(m *Model) { m.Unknown = &UnknownPolicy{Lat: 7} }},
	}
	for _, tc := range mutations {
		c := clone(t, base)
		tc.mut(c)
		if err := c.Reindex(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if c.PortSignature() == base.PortSignature() {
			t.Errorf("%s: port signature unchanged — mis-parameterized artifacts would be shared", tc.name)
		}
		if c.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint unchanged", tc.name)
		}
	}
}

// TestPortSignatureRoundTrip: a machine file read back from its wire
// form carries the same signature — the signature is content, not
// process identity.
func TestPortSignatureRoundTrip(t *testing.T) {
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		m := MustGet(key)
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if rt.PortSignature() != m.PortSignature() {
			t.Fatalf("%s: signature changed across serialization round trip", key)
		}
	}
}
