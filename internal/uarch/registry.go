package uarch

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The model registry maps keys to machine models. It starts with the
// three compiled-in microarchitectures and is mutable at runtime:
// Register (and the LoadFile/LoadDir conveniences) add machine-file
// models, after which every tool that resolves models by key — the
// analyzer CLIs, the experiment runners, ecm.For/freq.For/roofline.For,
// and the HTTP service — sees them.
//
// Identity is content-based: a key maps to exactly one fingerprint
// (Model.Fingerprint, the sha256 of the canonical machine-file wire
// form). Registering the same content twice is an idempotent no-op;
// registering different content under a taken key is an error, so a
// runtime model can never shadow a built-in — or another runtime model —
// and silently change what a key means mid-process. What-if variants of
// an existing machine therefore register under their own key, while
// unregistered models remain fully usable by passing the *Model
// directly (every analysis entry point takes one).
var (
	regOnce sync.Once
	regMu   sync.RWMutex
	regMap  map[string]*Model
	// builtinFPs pins the content fingerprint of each compiled-in model;
	// CacheKey compares against it to keep bare cache keys stable for
	// unmodified built-ins. Written once under regOnce, read-only after.
	builtinFPs map[string]string
)

func initRegistry() {
	regOnce.Do(func() {
		regMap = make(map[string]*Model)
		builtinFPs = make(map[string]string)
		for _, m := range []*Model{NewGoldenCove(), NewNeoverseV2(), NewZen4()} {
			m.buildIndex()
			regMap[m.Key] = m
			builtinFPs[m.Key] = m.Fingerprint()
		}
	})
}

// builtinFingerprint returns the fingerprint of the compiled-in model
// with the given key, if there is one.
func builtinFingerprint(key string) (string, bool) {
	initRegistry()
	fp, ok := builtinFPs[key]
	return fp, ok
}

// Get returns the machine model registered under key, or an error listing
// the available keys.
func Get(key string) (*Model, error) {
	initRegistry()
	regMu.RLock()
	m, ok := regMap[key]
	regMu.RUnlock()
	if ok {
		return m, nil
	}
	return nil, fmt.Errorf("uarch: unknown microarchitecture %q (available: %v)", key, Keys())
}

// MustGet is Get that panics on unknown keys; for tests and table-driven
// experiment code where the key set is static.
func MustGet(key string) *Model {
	m, err := Get(key)
	if err != nil {
		panic(err)
	}
	return m
}

// Register adds a model to the registry under its key. The model is
// validated and indexed first, so a registered model is always ready
// for use. Registering content identical to what the key already maps
// to is a no-op (created=false); a key collision with differing content
// is an error. The check and the insert happen under one lock, so of
// all racing registrations of a key exactly one reports created=true
// and exactly one fingerprint ever holds the key.
// Safe for concurrent use with Get/Keys/All and other Registers.
func Register(m *Model) (created bool, err error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	// Index on first registration only: re-registering an already-indexed
	// (possibly in-use) model must not rebuild its live lookup tables.
	// Models mutated in place refresh via Reindex before registering.
	if m.index == nil {
		m.buildIndex()
	}
	initRegistry()
	regMu.Lock()
	defer regMu.Unlock()
	if old, ok := regMap[m.Key]; ok {
		if old.Fingerprint() == m.Fingerprint() {
			return false, nil
		}
		return false, fmt.Errorf("uarch: key %q is already registered with different content (fingerprint %s vs %s); pick a distinct key for the variant",
			m.Key, old.Fingerprint()[:12], m.Fingerprint()[:12])
	}
	regMap[m.Key] = m
	return true, nil
}

// LoadFile reads a JSON machine file and registers the model, returning
// it. The key inside the file decides the registry slot; loading a file
// whose key is taken by different content fails (see Register).
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("uarch: %w", err)
	}
	defer f.Close()
	m, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("uarch: %s: %w", path, err)
	}
	created, err := Register(m)
	if err != nil {
		return nil, fmt.Errorf("uarch: %s: %w", path, err)
	}
	if !created {
		// The key already held identical content: return the registered
		// instance so repeated loads share one model (and one pointer
		// identity) instead of keeping duplicate instruction tables
		// alive.
		return Get(m.Key)
	}
	return m, nil
}

// LoadDir registers every *.json machine file directly inside dir (in
// lexical order, so collision errors are deterministic) and returns the
// loaded models.
func LoadDir(dir string) ([]*Model, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("uarch: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() || e.Type()&fs.ModeSymlink != 0 {
			if strings.HasSuffix(e.Name(), ".json") {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	models := make([]*Model, 0, len(names))
	for _, name := range names {
		m, err := LoadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return models, nil
}

// Keys returns the registered model keys in sorted order.
func Keys() []string {
	initRegistry()
	regMu.RLock()
	out := make([]string, 0, len(regMap))
	for k := range regMap {
		out = append(out, k)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// All returns all registered models sorted by key.
func All() []*Model {
	initRegistry()
	regMu.RLock()
	out := make([]*Model, 0, len(regMap))
	for _, m := range regMap {
		out = append(out, m)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
