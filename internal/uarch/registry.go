package uarch

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regOnce sync.Once
	regMap  map[string]*Model
)

func registry() map[string]*Model {
	regOnce.Do(func() {
		regMap = make(map[string]*Model)
		for _, m := range []*Model{NewGoldenCove(), NewNeoverseV2(), NewZen4()} {
			m.buildIndex()
			regMap[m.Key] = m
		}
	})
	return regMap
}

// Get returns the machine model registered under key, or an error listing
// the available keys.
func Get(key string) (*Model, error) {
	if m, ok := registry()[key]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("uarch: unknown microarchitecture %q (available: %v)", key, Keys())
}

// MustGet is Get that panics on unknown keys; for tests and table-driven
// experiment code where the key set is static.
func MustGet(key string) *Model {
	m, err := Get(key)
	if err != nil {
		panic(err)
	}
	return m
}

// Keys returns the registered model keys in sorted order.
func Keys() []string {
	r := registry()
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// All returns all registered models sorted by key.
func All() []*Model {
	keys := Keys()
	out := make([]*Model, 0, len(keys))
	for _, k := range keys {
		out = append(out, registry()[k])
	}
	return out
}
