package uarch

import (
	"bytes"
	"reflect"
	"testing"

	"incore/internal/isa"
)

// Table-driven coverage of the whole Lookup → LookupEff resolution chain
// across all three built-in models: exact (mnemonic, signature, width)
// hits, the folded signature/width fallback chain, and the synthesized
// unknown-instruction path that strict lookup rejects and degraded
// lookup serves.
func TestLookupChainAcrossModels(t *testing.T) {
	cases := []struct {
		model string
		src   string
		want  MatchKind
	}{
		// neoversev2 carries fully keyed (mn, sig, width) entries.
		{"neoversev2", "\tfdiv v0.2d, v1.2d, v2.2d\n", MatchExact},
		{"neoversev2", "\tfadd d0, d0, d1\n", MatchFallback},
		{"neoversev2", "\tsha256h q0, q1, v2.4s\n", MatchUnknown},
		// goldencove keys entries by signature or width, never both, so
		// real instructions (which always carry both) resolve by fallback.
		{"goldencove", "\tvaddpd %zmm1, %zmm2, %zmm3\n", MatchFallback},
		{"goldencove", "\tvmovupd (%rsi,%rax,8), %zmm0\n", MatchFallback},
		{"goldencove", "\tvpmaddubsw %ymm1, %ymm2, %ymm3\n", MatchUnknown},
		{"zen4", "\tvfmadd231pd %ymm2, %ymm15, %ymm0\n", MatchFallback},
		{"zen4", "\taddq $8, %rax\n", MatchFallback},
		{"zen4", "\tcrc32q %rax, %rbx\n", MatchUnknown},
	}
	for _, tc := range cases {
		t.Run(tc.model+"/"+tc.want.String(), func(t *testing.T) {
			m := MustGet(tc.model)
			in := parse1(t, m, tc.src)

			d := m.LookupDegraded(in)
			if d.Match != tc.want {
				t.Fatalf("LookupDegraded(%q).Match = %s, want %s", in.Mnemonic, d.Match, tc.want)
			}
			assertDescValid(t, m, &d)

			// Strict lookup must agree on everything but existence:
			// matched kinds return the same descriptor, unknown errors.
			ds, err := m.Lookup(in)
			if tc.want == MatchUnknown {
				if err == nil {
					t.Fatalf("strict Lookup(%q) succeeded, want ErrNoEntry", in.Mnemonic)
				}
				if _, ok := err.(*ErrNoEntry); !ok {
					t.Fatalf("strict Lookup(%q) error = %T, want *ErrNoEntry", in.Mnemonic, err)
				}
				if d.Entry != nil {
					t.Fatalf("unknown descriptor points at a table entry")
				}
				if len(d.Uops) != 1 {
					t.Fatalf("unknown descriptor has %d µ-ops, want the conservative single µ-op", len(d.Uops))
				}
			} else {
				if err != nil {
					t.Fatalf("strict Lookup(%q): %v", in.Mnemonic, err)
				}
				if !reflect.DeepEqual(d, ds) {
					t.Fatalf("strict and degraded descriptors disagree on a table hit:\n%+v\n%+v", ds, d)
				}
				if d.Entry == nil {
					t.Fatalf("table hit carries no entry pointer")
				}
			}

			// Determinism: repeated lookups are bit-identical.
			if d2 := m.LookupDegraded(in); !reflect.DeepEqual(d, d2) {
				t.Fatalf("repeated LookupDegraded(%q) differs:\n%+v\n%+v", in.Mnemonic, d, d2)
			}
		})
	}
}

// assertDescValid pins the structural invariants every resolved
// descriptor must satisfy: at least one µ-op, every µ-op's port mask
// non-empty and within the model's port set, positive occupancy, and
// non-negative latency.
func assertDescValid(t *testing.T, m *Model, d *Desc) {
	t.Helper()
	if len(d.Uops) == 0 {
		t.Fatalf("descriptor has no µ-ops")
	}
	all := PortMask(1<<uint(len(m.Ports))) - 1
	for i, u := range d.Uops {
		if u.Ports == 0 {
			t.Fatalf("µ-op %d has an empty port mask", i)
		}
		if u.Ports&^all != 0 {
			t.Fatalf("µ-op %d port mask %b exceeds the model's %d ports", i, u.Ports, len(m.Ports))
		}
		if u.Cycles <= 0 {
			t.Fatalf("µ-op %d has non-positive occupancy %v", i, u.Cycles)
		}
	}
	if d.Lat < 0 || d.TotalLat < d.Lat {
		t.Fatalf("inconsistent latency lat=%d total=%d", d.Lat, d.TotalLat)
	}
}

// The synthesized descriptor must follow the model's unknown policy:
// all ports / lat 1 / one cycle by default, and the machine file's
// "unknown" section when present.
func TestUnknownPolicyDefaultsAndOverride(t *testing.T) {
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		m := MustGet(key)
		var in *isa.Instruction
		if m.Dialect == isa.DialectX86 {
			in = parse1(t, m, "\ttotallymadeup %xmm0, %xmm1\n")
		} else {
			in = parse1(t, m, "\ttotallymadeup v0.2d, v1.2d\n")
		}
		d := m.LookupDegraded(in)
		if d.Match != MatchUnknown {
			t.Fatalf("%s: match = %s, want unknown", key, d.Match)
		}
		all := PortMask(1<<uint(len(m.Ports))) - 1
		if len(d.Uops) != 1 || d.Uops[0].Ports != all || d.Uops[0].Cycles != 1.0 {
			t.Fatalf("%s: default unknown descriptor = %+v, want 1 µ-op on all ports for 1 cycle", key, d.Uops)
		}
		if d.Lat != 1 {
			t.Fatalf("%s: default unknown latency = %d, want 1", key, d.Lat)
		}
	}

	// Override: restrict unknowns to two ports with higher latency.
	m := MustGet("goldencove")
	clone := *m
	clone.Entries = append([]Entry(nil), m.Entries...)
	clone.Unknown = &UnknownPolicy{Ports: clone.PortsByName("0", "1"), Lat: 3, Cycles: 2}
	if err := clone.Reindex(); err != nil {
		t.Fatal(err)
	}
	in := parse1(t, &clone, "\ttotallymadeup %xmm0, %xmm1\n")
	d := clone.LookupEffDegraded(in, &isa.Effects{})
	if d.Match != MatchUnknown {
		t.Fatalf("match = %s, want unknown", d.Match)
	}
	if want := clone.PortsByName("0", "1"); len(d.Uops) != 1 || d.Uops[0].Ports != want || d.Uops[0].Cycles != 2 || d.Lat != 3 {
		t.Fatalf("policy override ignored: %+v (lat %d)", d.Uops, d.Lat)
	}
	// The policy is part of the model's content identity.
	if clone.Fingerprint() == m.Fingerprint() {
		t.Fatalf("unknown policy did not change the fingerprint")
	}
}

// The machine-file "unknown" section must survive a WriteJSON →
// ReadJSON round trip with the policy (and hence fingerprint) intact —
// and built-ins, which carry no section, must keep emitting byte-stable
// files so their bare cache keys survive.
func TestMachineFileUnknownSectionRoundTrip(t *testing.T) {
	m := MustGet("zen4")
	clone := *m
	clone.Entries = append([]Entry(nil), m.Entries...)
	clone.Unknown = &UnknownPolicy{Ports: clone.PortsByName("ALU0", "FP0"), Lat: 2, Cycles: 1.5}
	if err := clone.Reindex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clone.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Unknown == nil {
		t.Fatalf("unknown section lost in round trip")
	}
	if got.Fingerprint() != clone.Fingerprint() {
		t.Fatalf("round trip changed fingerprint: %s != %s", got.Fingerprint(), clone.Fingerprint())
	}
	gp, gl, gc := got.unknownPolicy()
	cp, cl, cc := clone.unknownPolicy()
	if gp != cp || gl != cl || gc != cc {
		t.Fatalf("round trip changed unknown policy: (%v,%d,%v) != (%v,%d,%v)", gp, gl, gc, cp, cl, cc)
	}
}

// Degraded lookup of an unknown load/store must still charge the memory
// pipeline so the port model keeps its load/store structure.
func TestUnknownMemoryChargesPipeline(t *testing.T) {
	m := MustGet("goldencove")
	in := parse1(t, m, "\tmadeupload (%rsi), %xmm7\n")
	d := m.LookupDegraded(in)
	if d.Match != MatchUnknown {
		t.Fatalf("match = %s, want unknown", d.Match)
	}
	if !d.IsLoad {
		t.Fatalf("unknown instruction with a memory source not classified as load")
	}
	if len(d.Uops) < 2 {
		t.Fatalf("unknown load got %d µ-ops, want compute + load µ-op", len(d.Uops))
	}
}
