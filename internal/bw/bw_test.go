package bw

import (
	"testing"

	"incore/internal/nodes"
)

func TestMeasuredBandwidthMatchesTableI(t *testing.T) {
	// Paper Table I measured values: 467 / 273 / 360 GB/s.
	want := map[string]float64{"neoversev2": 467, "goldencove": 273, "zen4": 360}
	for key, w := range want {
		res, err := MeasureNode(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if res.PeakGBs < 0.95*w || res.PeakGBs > 1.05*w {
			t.Errorf("%s measured %.0f GB/s, want ~%.0f", key, res.PeakGBs, w)
		}
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	// Paper: SPR 90% > GCS 87% > Genoa 78%.
	eff := map[string]float64{}
	for _, key := range []string{"neoversev2", "goldencove", "zen4"} {
		res, err := MeasureNode(key)
		if err != nil {
			t.Fatal(err)
		}
		eff[key] = res.Efficiency()
	}
	if !(eff["zen4"] < eff["neoversev2"]) || !(eff["zen4"] < eff["goldencove"]) {
		t.Errorf("Genoa must have the lowest BW efficiency: %+v", eff)
	}
	if eff["zen4"] < 0.74 || eff["zen4"] > 0.82 {
		t.Errorf("Genoa efficiency = %.2f, want ~0.78", eff["zen4"])
	}
}

func TestScalingSaturates(t *testing.T) {
	res, err := MeasureTriad("zen4", []int{1, 4, 16, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// More cores must never give (much) less useful bandwidth.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].UsefulGBs < res.Points[i-1].UsefulGBs*0.95 {
			t.Errorf("scaling regressed at %d cores: %.1f after %.1f",
				res.Points[i].Cores, res.Points[i].UsefulGBs, res.Points[i-1].UsefulGBs)
		}
	}
	// Single core is nowhere near saturation.
	full := res.Points[len(res.Points)-1].UsefulGBs
	if res.Points[0].UsefulGBs > full/3 {
		t.Errorf("single core too fast: %.1f of %.1f", res.Points[0].UsefulGBs, full)
	}
}

func TestUnknownNode(t *testing.T) {
	if _, err := MeasureNode("unknown"); err == nil {
		t.Error("unknown node must error")
	}
}

func TestTheoreticalMatchesNodes(t *testing.T) {
	res, err := MeasureNode("goldencove")
	if err != nil {
		t.Fatal(err)
	}
	n := nodes.MustGet("goldencove")
	if res.TheoreticalGBs != n.TheoreticalBandwidthGBs() {
		t.Error("theoretical bandwidth mismatch")
	}
}
