// Package bw implements the node-level memory bandwidth benchmark used
// for Table I's "measured bandwidth" row: a STREAM-triad-shaped workload
// swept across core counts on the memsim substrate, reporting the
// saturated useful bandwidth.
package bw

import (
	"fmt"

	"incore/internal/memsim"
	"incore/internal/nodes"
	"incore/internal/pipeline"
)

// Point is one core-count sample of the scaling curve.
type Point struct {
	Cores     int
	UsefulGBs float64
	// TrafficGBs includes write-allocate overhead.
	TrafficGBs float64
}

// Result is a full scaling run for one node.
type Result struct {
	Key    string
	Points []Point
	// PeakGBs is the maximum useful bandwidth over the sweep.
	PeakGBs float64
	// TheoreticalGBs is the pin-limit bandwidth.
	TheoreticalGBs float64
}

// Efficiency is measured/theoretical.
func (r *Result) Efficiency() float64 {
	if r.TheoreticalGBs == 0 {
		return 0
	}
	return r.PeakGBs / r.TheoreticalGBs
}

// linesPerCore keeps the run fast while staying far above the scaled
// cache capacity.
const linesPerCore = 8192

// MeasureTriad sweeps the triad benchmark over core counts. NT stores are
// used on the x86 systems (the STREAM convention with streaming stores);
// Grace's automatic claim achieves the same with standard stores.
//
// Samples are submitted through the shared pipeline: they run on the
// default pool (serial unless the caller widened it) and each (node,
// cores) point is memoized process-wide, so repeated sweeps — Table I
// after the bandwidth tests, say — cost one simulation each.
func MeasureTriad(key string, counts []int) (*Result, error) {
	n, err := nodes.Get(key)
	if err != nil {
		return nil, err
	}
	if _, err := memsim.ConfigFor(key); err != nil {
		return nil, err
	}
	nt := key != "neoversev2"
	res := &Result{Key: key, TheoreticalGBs: n.TheoreticalBandwidthGBs()}
	points, err := pipeline.Map(pipeline.Default(), counts, func(c int) (Point, error) {
		tr, err := pipeline.Triad(key, c, linesPerCore, nt)
		if err != nil {
			return Point{}, fmt.Errorf("bw: %s at %d cores: %w", key, c, err)
		}
		return Point{Cores: c, UsefulGBs: tr.UsefulGBs(), TrafficGBs: tr.TrafficGBs()}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	for _, p := range points {
		if p.UsefulGBs > res.PeakGBs {
			res.PeakGBs = p.UsefulGBs
		}
	}
	return res, nil
}

// MeasureNode runs the default sweep for a node.
func MeasureNode(key string) (*Result, error) {
	n, err := nodes.Get(key)
	if err != nil {
		return nil, err
	}
	return MeasureTriad(key, memsim.DefaultCounts(n.Cores))
}
