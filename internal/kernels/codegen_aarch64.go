package kernels

import (
	"fmt"
	"sort"
	"strings"
)

// aarch64Emitter generates AArch64 loop bodies (NEON, SVE, scalar).
//
// Register conventions:
//
//	x3  loop index (elements)        x4  loop bound / end pointer
//	x0  destination base             x1, x2, x14  source bases
//	x5..x13  stencil row bases (pre-offset where needed)
//	v/z/d 0..8  work registers and accumulators
//	   11: 4.0   12: 1.0   13: 0.5   14: dx   15: s / coefficient
//	   9: iota vector, 10: iota step (vectorized π)
//	p0  governing SVE predicate
//
// Addressing styles: scalar gcc code indexes with [base, x3, lsl #3];
// NEON code uses pointer-bumped bases with immediate offsets; SVE code
// (armclang) uses element-indexed [base, x3, lsl #3] with a whilelo
// predicated loop. armclang emits NEON for the stencil kernels (fixed
// vector length favors immediate-offset addressing) and SVE for the
// streaming kernels.
type aarch64Emitter struct {
	sb   strings.Builder
	p    genParams
	mode aMode
	used map[string]bool
}

type aMode int

const (
	aScalarIndexed aMode = iota // gcc -O1 style
	aScalarPointer              // armclang scalar
	aNEON                       // pointer-bumped NEON
	aSVE                        // whilelo-predicated SVE
)

func (e *aarch64Emitter) f(format string, args ...interface{}) {
	fmt.Fprintf(&e.sb, format, args...)
	e.sb.WriteByte('\n')
}

// vreg names vector/scalar register i in the current mode.
func (e *aarch64Emitter) vreg(i int) string {
	switch e.mode {
	case aSVE:
		return fmt.Sprintf("z%d.d", i)
	case aNEON:
		return fmt.Sprintf("v%d.2d", i)
	default:
		return fmt.Sprintf("d%d", i)
	}
}

// lanes per register in the current mode.
func (e *aarch64Emitter) lanes() int {
	if e.mode == aNEON || e.mode == aSVE {
		return 2 // 128-bit vectors on Neoverse V2
	}
	return 1
}

// mem renders an address for unroll lane u plus a byte offset.
func (e *aarch64Emitter) mem(base string, u, extra int) string {
	e.used[base] = true
	switch e.mode {
	case aScalarIndexed, aSVE:
		// Indexed by x3 (elements). Byte offsets must be baked into
		// pre-offset base registers by the caller.
		if extra != 0 {
			panic("aarch64: indexed mode cannot take immediate offsets")
		}
		_ = u
		return fmt.Sprintf("[%s, x3, lsl #3]", base)
	default:
		disp := u*e.vecBytes() + extra
		if disp == 0 {
			return fmt.Sprintf("[%s]", base)
		}
		return fmt.Sprintf("[%s, #%d]", base, disp)
	}
}

func (e *aarch64Emitter) vecBytes() int {
	return e.lanes() * 8
}

// load emits a load of lane u.
func (e *aarch64Emitter) load(base string, u, extra int, dst int) {
	switch e.mode {
	case aSVE:
		e.f("\tld1d { %s }, p0/z, %s", e.vreg(dst), e.mem(base, u, extra))
	case aNEON:
		mn := "ldr"
		if extra < 0 {
			mn = "ldur"
		}
		e.f("\t%s q%d, %s", mn, dst, e.mem(base, u, extra))
	default:
		mn := "ldr"
		if extra < 0 && e.mode == aScalarPointer {
			mn = "ldur"
		}
		e.f("\t%s d%d, %s", mn, dst, e.mem(base, u, extra))
	}
}

// store emits a store of register src.
func (e *aarch64Emitter) store(src int, base string, u, extra int) {
	switch e.mode {
	case aSVE:
		e.f("\tst1d { %s }, p0, %s", e.vreg(src), e.mem(base, u, extra))
	case aNEON:
		mn := "str"
		if extra < 0 {
			mn = "stur"
		}
		e.f("\t%s q%d, %s", mn, src, e.mem(base, u, extra))
	default:
		mn := "str"
		if extra < 0 {
			mn = "stur"
		}
		e.f("\t%s d%d, %s", mn, src, e.mem(base, u, extra))
	}
}

// op3 emits "mn dst, a, b".
func (e *aarch64Emitter) op3(mn string, dst, a, b int) {
	e.f("\t%s %s, %s, %s", mn, e.vreg(dst), e.vreg(a), e.vreg(b))
}

// close emits the induction update and the loop branch.
func (e *aarch64Emitter) close() {
	if e.used["__closed"] {
		return
	}
	elems := e.lanes() * e.p.unroll
	switch e.mode {
	case aScalarIndexed:
		e.f("\tadd x3, x3, #%d", elems)
		e.f("\tcmp x3, x4")
		e.f("\tb.ne .L0")
	case aSVE:
		e.f("\tincd x3")
		e.f("\twhilelo p0.d, x3, x4")
		e.f("\tb.first .L0")
	default:
		bases := make([]string, 0, len(e.used))
		for b := range e.used {
			bases = append(bases, b)
		}
		sort.Strings(bases)
		if len(bases) == 0 {
			// No memory streams (π): plain counter loop.
			e.f("\tadd x3, x3, #%d", elems)
			e.f("\tcmp x3, x4")
			e.f("\tb.ne .L0")
			return
		}
		for _, b := range bases {
			e.f("\tadd %s, %s, #%d", b, b, elems*8)
		}
		cmpBase := "x1"
		if !e.used["x1"] {
			cmpBase = "x0"
		}
		e.f("\tcmp %s, x4", cmpBase)
		e.f("\tb.ne .L0")
	}
}

// stencilKind reports whether a kernel is a stencil (armclang emits NEON
// rather than SVE for these).
func stencilKind(k Kind) bool {
	switch k {
	case KindJ2D5, KindJ3D7, KindJ3D11, KindJ3D27, KindGS2D5:
		return true
	}
	return false
}

// emitAArch64 dispatches on kernel kind.
func emitAArch64(k *Kernel, p genParams) (string, error) {
	e := &aarch64Emitter{p: p, used: map[string]bool{}}
	switch {
	case p.scalar && p.sve:
		e.mode = aScalarPointer
	case p.scalar:
		e.mode = aScalarIndexed
	case p.sve && !stencilKind(k.Kind):
		e.mode = aSVE
		e.p.unroll = 1 // whilelo loops stay rolled
	default:
		e.mode = aNEON
	}
	if k.Kind == KindGS2D5 {
		// The Gauss-Seidel chain needs immediate offsets off the store
		// base for its memory round trip; use pointer addressing.
		e.mode = aScalarPointer
	}
	if stencilKind(k.Kind) && e.mode == aScalarIndexed {
		// Stencil neighbor offsets along the contiguous dimension need
		// immediate displacements; indexed addressing would require a
		// pre-offset base per (plane, offset) pair. Compilers emit
		// pointer-bumped code here.
		e.mode = aScalarPointer
	}
	e.f(".L0:")
	U := e.p.unroll
	switch k.Kind {
	case KindCopy:
		for u := 0; u < U; u++ {
			e.load("x1", u, 0, u)
		}
		for u := 0; u < U; u++ {
			e.store(u, "x0", u, 0)
		}

	case KindInit:
		for u := 0; u < U; u++ {
			e.store(15, "x0", u, 0)
		}

	case KindUpdate:
		for u := 0; u < U; u++ {
			e.load("x1", u, 0, u)
			e.op3("fmul", u, u, 15)
			e.store(u, "x1", u, 0)
		}

	case KindAdd:
		for u := 0; u < U; u++ {
			e.load("x1", u, 0, u)
			e.load("x2", u, 0, u+U)
			e.op3("fadd", u, u, u+U)
			e.store(u, "x0", u, 0)
		}

	case KindStriad:
		// a = b + s*c
		for u := 0; u < U; u++ {
			e.load("x1", u, 0, u)   // b
			e.load("x2", u, 0, u+U) // c
			if e.p.fma {
				e.fmla(u, u+U, 15)
			} else {
				e.op3("fmul", u+U, u+U, 15)
				e.op3("fadd", u, u, u+U)
			}
			e.store(u, "x0", u, 0)
		}

	case KindSchTriad:
		// a = b + c*d
		for u := 0; u < U; u++ {
			e.load("x1", u, 0, u)
			e.load("x2", u, 0, u+U)
			e.load("x14", u, 0, u+2*U)
			if e.p.fma {
				e.fmla(u, u+U, u+2*U)
			} else {
				e.op3("fmul", u+U, u+U, u+2*U)
				e.op3("fadd", u, u, u+U)
			}
			e.store(u, "x0", u, 0)
		}

	case KindSum:
		for u := 0; u < U; u++ {
			e.load("x1", u, 0, e.p.accs+u)
			acc := u % e.p.accs
			e.op3("fadd", acc, acc, e.p.accs+u)
		}

	case KindPi:
		emitPiAArch64(e)

	case KindJ2D5:
		emitStencilAArch64(e, []rowRef{{"x1", -8}, {"x1", 8}, {"x5", 0}, {"x6", 0}}, U)

	case KindJ3D7:
		emitStencilAArch64(e, []rowRef{
			{"x1", -8}, {"x1", 8}, {"x5", 0}, {"x6", 0}, {"x7", 0}, {"x8", 0},
		}, U)

	case KindJ3D11:
		emitStencilAArch64(e, []rowRef{
			{"x1", -16}, {"x1", -8}, {"x1", 0}, {"x1", 8}, {"x1", 16},
			{"x5", 0}, {"x6", 0}, {"x7", 0}, {"x8", 0}, {"x9", 0}, {"x10", 0},
		}, U)

	case KindJ3D27:
		var rows []rowRef
		for _, b := range []string{"x1", "x2", "x5", "x6", "x7", "x8", "x9", "x10", "x11"} {
			for _, off := range []int{-8, 0, 8} {
				rows = append(rows, rowRef{b, off})
			}
		}
		emitStencilAArch64(e, rows, U)

	case KindGS2D5:
		emitGSAArch64(e)

	default:
		return "", fmt.Errorf("emitAArch64: unhandled kernel kind %d", k.Kind)
	}
	e.close()
	return e.sb.String(), nil
}

type rowRef struct {
	base  string
	extra int
}

// fmla emits a fused multiply-accumulate acc += a*b in the current mode.
func (e *aarch64Emitter) fmla(acc, a, b int) {
	switch e.mode {
	case aSVE:
		e.f("\tfmla %s, p0/m, %s, %s", e.vreg(acc), e.vreg(a), e.vreg(b))
	case aNEON:
		e.f("\tfmla %s, %s, %s", e.vreg(acc), e.vreg(a), e.vreg(b))
	default:
		// fmadd dd, dn, dm, da : dd = dn*dm + da
		e.f("\tfmadd %s, %s, %s, %s", e.vreg(acc), e.vreg(a), e.vreg(b), e.vreg(acc))
	}
}

// emitStencilAArch64 generates a neighbor-sum stencil. In indexed/SVE
// modes immediate offsets are not available, so neighbor offsets along
// the contiguous dimension use pre-offset base registers x12/x13 (±8) and
// x15/x16 (±16), set up outside the loop.
func emitStencilAArch64(e *aarch64Emitter, rows []rowRef, U int) {
	resolve := func(r rowRef) (string, int) {
		if e.mode != aScalarIndexed && e.mode != aSVE {
			return r.base, r.extra
		}
		switch r.extra {
		case 0:
			return r.base, 0
		case -8:
			return "x12", 0
		case 8:
			return "x13", 0
		case -16:
			return "x15", 0
		case 16:
			return "x16", 0
		default:
			return r.base, 0
		}
	}
	for u := 0; u < U; u++ {
		b0, x0 := resolve(rows[0])
		e.load(b0, u, x0, u)
		for _, r := range rows[1:] {
			b, x := resolve(r)
			e.load(b, u, x, u+U)
			e.op3("fadd", u, u, u+U)
		}
		e.op3("fmul", u, u, 15)
		e.store(u, "x0", u, 0)
	}
}

// emitPiAArch64 generates the π-by-integration body.
func emitPiAArch64(e *aarch64Emitter) {
	if e.mode == aScalarIndexed || e.mode == aScalarPointer {
		e.f("\tscvtf d1, x3")
		e.f("\tfadd d1, d1, d13")
		e.f("\tfmul d1, d1, d14")
		if e.p.fma {
			e.f("\tfmadd d1, d1, d1, d12")
		} else {
			e.f("\tfmul d1, d1, d1")
			e.f("\tfadd d1, d1, d12")
		}
		e.f("\tfdiv d1, d11, d1")
		e.f("\tfadd d0, d0, d1")
		if e.mode == aScalarPointer {
			// π touches no arrays; index in x3 regardless.
			e.f("\tadd x3, x3, #1")
			e.f("\tcmp x3, x4")
			e.f("\tb.ne .L0")
			e.trim()
		}
		return
	}
	U := e.p.unroll
	for u := 0; u < U; u++ {
		t := 4 + u%4
		e.op3("fmul", t, 9, 14) // x = iota*dx
		e.op3("fmul", t, t, t)  // x*x
		e.op3("fadd", t, t, 12) // +1
		if e.mode == aSVE {
			// Reverse divide: t = 4.0 / t.
			e.f("\tfdivr %s, p0/m, %s, %s", e.vreg(t), e.vreg(t), e.vreg(11))
		} else {
			e.f("\tfdiv %s, %s, %s", e.vreg(t), e.vreg(11), e.vreg(t))
		}
		acc := u % e.p.accs
		e.op3("fadd", acc, acc, t)
		e.op3("fadd", 9, 9, 10) // iota += lanes
	}
}

// trim marks that the emitter already closed the loop (π scalar-pointer
// special case emits its own induction); close() becomes a no-op via a
// sentinel in used.
func (e *aarch64Emitter) trim() { e.used["__closed"] = true }

// emitGSAArch64 generates the Gauss-Seidel shapes (see emitGSX86 for the
// three-variant rationale). Always pointer-addressed: the memory round
// trip needs immediate offsets off the store base.
func emitGSAArch64(e *aarch64Emitter) {
	switch {
	case e.p.gsMemRoundTrip:
		e.f("\tldur d1, [x1, #-8]")
		e.f("\tldr d2, [x1, #8]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tldr d2, [x5]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tldr d2, [x6]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tfmul d1, d1, d15")
		e.f("\tstr d1, [x1]")
		e.used["x1"] = true
		e.used["x5"] = true
		e.used["x6"] = true
	case e.p.gsFMA:
		e.f("\tldr d1, [x5]")
		e.f("\tldr d2, [x6]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tldr d2, [x1, #8]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tfmul d1, d1, d15")      // t = 0.25*sum3
		e.f("\tfmadd d1, d0, d15, d1") // d1 = prev*0.25 + t
		e.f("\tstr d1, [x1]")
		e.f("\tfmov d0, d1")
		e.used["x1"] = true
		e.used["x5"] = true
		e.used["x6"] = true
	default:
		e.f("\tldr d1, [x5]")
		e.f("\tldr d2, [x6]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tldr d2, [x1, #8]")
		e.f("\tfadd d1, d1, d2")
		e.f("\tfadd d1, d1, d0")
		e.f("\tfmul d0, d1, d15")
		e.f("\tstr d0, [x1]")
		e.used["x1"] = true
		e.used["x5"] = true
		e.used["x6"] = true
	}
}
