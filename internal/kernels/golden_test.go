package kernels

import (
	"strings"
	"testing"
)

// Golden snapshots of representative generated variants. These pin the
// compiler personalities: a change to the code generators that alters any
// of these bodies must be deliberate (update the snapshot alongside the
// generator change).

var goldens = []struct {
	kernel string
	cfg    Config
	want   string
}{
	{
		kernel: "striad",
		cfg:    Config{Arch: "goldencove", Compiler: GCC, Opt: O3},
		want: `.L0:
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	vmovupd 64(%rsi,%rax,8), %zmm1
	vfmadd231pd 64(%rdx,%rax,8), %zmm15, %zmm1
	vmovupd %zmm1, 64(%rdi,%rax,8)
	addq $16, %rax
	cmpq %rbx, %rax
	jne .L0
`,
	},
	{
		kernel: "add",
		cfg:    Config{Arch: "neoversev2", Compiler: ArmClang, Opt: O2},
		want: `.L0:
	ld1d { z0.d }, p0/z, [x1, x3, lsl #3]
	ld1d { z1.d }, p0/z, [x2, x3, lsl #3]
	fadd z0.d, z0.d, z1.d
	st1d { z0.d }, p0, [x0, x3, lsl #3]
	incd x3
	whilelo p0.d, x3, x4
	b.first .L0
`,
	},
	{
		kernel: "gs2d5",
		cfg:    Config{Arch: "zen4", Compiler: GCC, Opt: O1},
		want: `.L0:
	vmovsd -8(%rsi,%rax,8), %xmm1
	vaddsd 8(%rsi,%rax,8), %xmm1, %xmm1
	vaddsd (%r8,%rax,8), %xmm1, %xmm1
	vaddsd (%r9,%rax,8), %xmm1, %xmm1
	vmulsd %xmm15, %xmm1, %xmm1
	vmovsd %xmm1, (%rsi,%rax,8)
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`,
	},
	{
		kernel: "sum",
		cfg:    Config{Arch: "goldencove", Compiler: Clang, Opt: Ofast},
		want: `.L0:
	vmovupd (%rsi), %ymm4
	vaddpd %ymm4, %ymm0, %ymm0
	vmovupd 32(%rsi), %ymm5
	vaddpd %ymm5, %ymm1, %ymm1
	vmovupd 64(%rsi), %ymm6
	vaddpd %ymm6, %ymm2, %ymm2
	vmovupd 96(%rsi), %ymm7
	vaddpd %ymm7, %ymm3, %ymm3
	addq $128, %rsi
	cmpq %rbx, %rsi
	jne .L0
`,
	},
	{
		kernel: "pi",
		cfg:    Config{Arch: "neoversev2", Compiler: GCC, Opt: O2},
		want: `.L0:
	scvtf d1, x3
	fadd d1, d1, d13
	fmul d1, d1, d14
	fmadd d1, d1, d1, d12
	fdiv d1, d11, d1
	fadd d0, d0, d1
	add x3, x3, #1
	cmp x3, x4
	b.ne .L0
`,
	},
}

func TestGoldenBodies(t *testing.T) {
	for _, g := range goldens {
		k, err := ByName(g.kernel)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(k, g.cfg)
		if err != nil {
			t.Fatalf("%s %v: %v", g.kernel, g.cfg, err)
		}
		got := b.Text()
		if got != g.want {
			t.Errorf("%s-%s-%s-%s body changed.\n--- want:\n%s--- got:\n%s",
				g.kernel, g.cfg.Compiler, g.cfg.Opt, g.cfg.Arch, g.want, got)
		}
	}
}

// TestClangSumWaitNote: clang's sum reduction at Ofast carries a subtle
// detail — the load is folded on gcc/icx but split on clang. The golden
// above uses folds because arith2Mem folds only for gcc/icx; verify the
// distinction explicitly.
func TestFoldingDistinction(t *testing.T) {
	k, _ := ByName("sum")
	gcc, err := Generate(k, Config{Arch: "goldencove", Compiler: GCC, Opt: Ofast})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gcc.Text(), "vaddpd (%rsi,%rax,8)") {
		t.Errorf("gcc must fold the load into the add:\n%s", gcc.Text())
	}
}
