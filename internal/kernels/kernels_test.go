package kernels

import (
	"strings"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/sim"
	"incore/internal/uarch"
)

func TestKernelCount(t *testing.T) {
	if len(Kernels) != 13 {
		t.Fatalf("the paper uses 13 kernels, got %d", len(Kernels))
	}
	names := map[string]bool{}
	for _, k := range Kernels {
		if names[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		names[k.Name] = true
	}
	for _, want := range []string{"copy", "init", "update", "add", "striad",
		"schtriad", "sum", "pi", "j2d5", "j3d7", "j3d11", "j3d27", "gs2d5"} {
		if !names[want] {
			t.Errorf("missing kernel %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("striad")
	if err != nil || k.Name != "striad" {
		t.Errorf("ByName: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel must error")
	}
}

func TestCompilersFor(t *testing.T) {
	if got := CompilersFor("neoversev2"); len(got) != 2 {
		t.Errorf("neoversev2 compilers: %v", got)
	}
	if got := CompilersFor("goldencove"); len(got) != 3 {
		t.Errorf("goldencove compilers: %v", got)
	}
}

func TestOptLevelString(t *testing.T) {
	for o, want := range map[OptLevel]string{O1: "O1", O2: "O2", O3: "O3", Ofast: "Ofast"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	// 13 x 2 x 4 = 104 on Grace, 13 x 3 x 4 = 156 on each x86 system.
	for arch, want := range map[string]int{"neoversev2": 104, "goldencove": 156, "zen4": 156} {
		s, err := Suite(arch)
		if err != nil {
			t.Fatalf("Suite(%s): %v", arch, err)
		}
		if len(s) != want {
			t.Errorf("Suite(%s) = %d blocks, want %d", arch, len(s), want)
		}
	}
	full, err := FullSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 416 {
		t.Errorf("full suite = %d blocks, want 416 (the paper's count)", len(full))
	}
	uniq := UniqueBlocks(full)
	if uniq < 180 || uniq > 350 {
		t.Errorf("unique blocks = %d, expected a few hundred (paper: 290)", uniq)
	}
	if s := SuiteSummary(full); !strings.Contains(s, "416") {
		t.Errorf("summary missing count: %s", s)
	}
}

// TestEveryBlockResolvesAgainstItsModel is the model-coverage integration
// test: every generated instruction must have a machine-model entry.
func TestEveryBlockResolvesAgainstItsModel(t *testing.T) {
	full, err := FullSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range full {
		m := uarch.MustGet(tb.Config.Arch)
		for i := range tb.Block.Instrs {
			if _, err := m.Lookup(&tb.Block.Instrs[i]); err != nil {
				t.Errorf("%s: instr %d: %v", tb.Block.Name, i, err)
			}
		}
	}
}

// TestLowerBoundProperty is the central correctness property of the whole
// reproduction: the analyzer's prediction must be a lower bound on the
// simulated measurement for every block — except for the two documented
// hardware quirks the paper itself discusses (Gauss-Seidel on V2, π on
// Zen 4).
func TestLowerBoundProperty(t *testing.T) {
	full, err := FullSuite()
	if err != nil {
		t.Fatal(err)
	}
	an := core.New()
	for _, tb := range full {
		quirk := (tb.Kernel.Name == "gs2d5" && tb.Config.Arch == "neoversev2") ||
			(tb.Kernel.Name == "pi" && tb.Config.Arch == "zen4")
		if quirk {
			continue
		}
		m := uarch.MustGet(tb.Config.Arch)
		pred, err := an.Predict(tb.Block, m)
		if err != nil {
			t.Fatalf("%s: %v", tb.Block.Name, err)
		}
		meas, err := sim.Run(tb.Block, m, sim.DefaultConfig(m))
		if err != nil {
			t.Fatalf("%s: %v", tb.Block.Name, err)
		}
		if pred > meas.CyclesPerIter*1.02+0.05 {
			t.Errorf("%s: prediction %.2f exceeds measurement %.2f",
				tb.Block.Name, pred, meas.CyclesPerIter)
		}
	}
}

func TestElemsPerIter(t *testing.T) {
	k, _ := ByName("add")
	// gcc O1: scalar rolled.
	if n := ElemsPerIter(k, Config{Arch: "goldencove", Compiler: GCC, Opt: O1}); n != 1 {
		t.Errorf("gcc O1 elems = %d, want 1", n)
	}
	// gcc O3 on GLC: 512-bit x unroll 2 = 16.
	if n := ElemsPerIter(k, Config{Arch: "goldencove", Compiler: GCC, Opt: O3}); n != 16 {
		t.Errorf("gcc O3 elems = %d, want 16", n)
	}
	// clang O3 on GLC: 256-bit x unroll 4 = 16.
	if n := ElemsPerIter(k, Config{Arch: "goldencove", Compiler: Clang, Opt: O3}); n != 16 {
		t.Errorf("clang O3 elems = %d, want 16", n)
	}
	// armclang O2 (SVE rolled): 2.
	if n := ElemsPerIter(k, Config{Arch: "neoversev2", Compiler: ArmClang, Opt: O2}); n != 2 {
		t.Errorf("armclang O2 elems = %d, want 2", n)
	}
}

func TestVectorizationPolicy(t *testing.T) {
	sum, _ := ByName("sum")
	// Reductions need -Ofast to vectorize.
	b3, err := Generate(sum, Config{Arch: "goldencove", Compiler: GCC, Opt: O3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b3.Text(), "zmm") {
		t.Error("sum at O3 must stay scalar (strict FP)")
	}
	bf, err := Generate(sum, Config{Arch: "goldencove", Compiler: GCC, Opt: Ofast})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bf.Text(), "zmm") {
		t.Error("sum at Ofast must vectorize")
	}
	// Gauss-Seidel never vectorizes.
	gs, _ := ByName("gs2d5")
	bgs, err := Generate(gs, Config{Arch: "goldencove", Compiler: GCC, Opt: Ofast})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(bgs.Text(), "zmm") || strings.Contains(bgs.Text(), "ymm0,") {
		t.Error("gs2d5 must never vectorize")
	}
}

func TestGSShapes(t *testing.T) {
	gs, _ := ByName("gs2d5")
	// O1: memory round trip (negative-displacement reload).
	o1, err := Generate(gs, Config{Arch: "goldencove", Compiler: GCC, Opt: O1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(o1.Text(), "-8(%rsi") {
		t.Errorf("GS O1 must reload phi[i-1] from memory:\n%s", o1.Text())
	}
	// O2: register-carried chain, no reload.
	o2, err := Generate(gs, Config{Arch: "goldencove", Compiler: GCC, Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(o2.Text(), "-8(%rsi") {
		t.Errorf("GS O2 must carry phi in a register:\n%s", o2.Text())
	}
	// Ofast: FMA-contracted.
	of, err := Generate(gs, Config{Arch: "goldencove", Compiler: GCC, Opt: Ofast})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(of.Text(), "vfmadd") {
		t.Errorf("GS Ofast must contract to FMA:\n%s", of.Text())
	}
}

func TestCompilerIdioms(t *testing.T) {
	add, _ := ByName("add")
	// gcc uses indexed addressing, clang pointer bumps.
	gcc, err := Generate(add, Config{Arch: "zen4", Compiler: GCC, Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gcc.Text(), "%rax,8)") {
		t.Errorf("gcc must use indexed addressing:\n%s", gcc.Text())
	}
	clang, err := Generate(add, Config{Arch: "zen4", Compiler: Clang, Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clang.Text(), "%rax,8)") {
		t.Errorf("clang must use pointer bumps:\n%s", clang.Text())
	}
	// armclang uses SVE with whilelo for streams.
	arm, err := Generate(add, Config{Arch: "neoversev2", Compiler: ArmClang, Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(arm.Text(), "whilelo") {
		t.Errorf("armclang streams must use whilelo SVE loops:\n%s", arm.Text())
	}
	// armclang stencils fall back to NEON.
	j, _ := ByName("j2d5")
	armj, err := Generate(j, Config{Arch: "neoversev2", Compiler: ArmClang, Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(armj.Text(), "whilelo") {
		t.Errorf("armclang stencils must use NEON:\n%s", armj.Text())
	}
}

func TestStencilLoadCounts(t *testing.T) {
	counts := map[string]int{"j2d5": 4, "j3d7": 6, "j3d11": 11, "j3d27": 27}
	for name, want := range counts {
		k, _ := ByName(name)
		b, err := Generate(k, Config{Arch: "goldencove", Compiler: GCC, Opt: O1})
		if err != nil {
			t.Fatal(err)
		}
		m := uarch.MustGet("goldencove")
		loads := 0
		for i := range b.Instrs {
			eff := isa.InstrEffects(&b.Instrs[i], m.Dialect)
			loads += len(eff.LoadOps)
		}
		if loads != want {
			t.Errorf("%s scalar loads = %d, want %d:\n%s", name, loads, want, b.Text())
		}
	}
}

func TestGenerateUnknownArch(t *testing.T) {
	k, _ := ByName("add")
	if _, err := Generate(k, Config{Arch: "mips", Compiler: GCC, Opt: O2}); err == nil {
		t.Error("unknown arch must error")
	}
	if _, err := Generate(nil, Config{}); err == nil {
		t.Error("nil kernel must error")
	}
}

func TestAllBlocksValidate(t *testing.T) {
	full, err := FullSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range full {
		if err := tb.Block.Validate(); err != nil {
			t.Errorf("%s: %v", tb.Block.Name, err)
		}
		if tb.ElemsPerIter <= 0 {
			t.Errorf("%s: ElemsPerIter = %d", tb.Block.Name, tb.ElemsPerIter)
		}
	}
}

func TestPiHasDivide(t *testing.T) {
	pi, _ := ByName("pi")
	for _, arch := range []string{"goldencove", "zen4", "neoversev2"} {
		for _, comp := range CompilersFor(arch) {
			b, err := Generate(pi, Config{Arch: arch, Compiler: comp, Opt: O2})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.Text(), "div") {
				t.Errorf("pi %s/%s has no divide:\n%s", arch, comp, b.Text())
			}
		}
	}
}
