package kernels

import (
	"fmt"
	"sort"
	"strings"
)

// x86Emitter generates AT&T-syntax loop bodies.
//
// Register conventions (fixed across all kernels):
//
//	%rax  loop index (elements)      %rbx  loop bound / end pointer
//	%rdi  destination base           %rsi, %rdx, %rcx  source bases
//	%r8..%r14  stencil row bases
//	%xmm/ymm/zmm0..9   work registers and accumulators
//	   11: 4.0   12: 1.0   13: 0.5   14: dx   15: s / stencil coefficient
//	   9: iota vector, 10: iota step (vectorized π)
//
// Constants are loaded outside the measured loop body, as compilers do.
type x86Emitter struct {
	sb    strings.Builder
	p     genParams
	bytes int // bytes per vector register access
	used  map[string]bool
}

func newX86Emitter(p genParams) *x86Emitter {
	b := 8
	if !p.scalar {
		b = p.vecBits / 8
	}
	return &x86Emitter{p: p, bytes: b, used: map[string]bool{}}
}

func (e *x86Emitter) f(format string, args ...interface{}) {
	fmt.Fprintf(&e.sb, format, args...)
	e.sb.WriteByte('\n')
}

// vr names work register i at the current width.
func (e *x86Emitter) vr(i int) string {
	pfx := "xmm"
	if !e.p.scalar {
		switch e.p.vecBits {
		case 256:
			pfx = "ymm"
		case 512:
			pfx = "zmm"
		}
	}
	return fmt.Sprintf("%%%s%d", pfx, i)
}

// op returns the packed or scalar form of an arithmetic mnemonic.
func (e *x86Emitter) op(base string) string {
	if e.p.scalar {
		return "v" + base + "sd"
	}
	return "v" + base + "pd"
}

func (e *x86Emitter) movOp() string {
	if e.p.scalar {
		return "vmovsd"
	}
	return "vmovupd"
}

// mem renders an address for unroll lane u with an extra byte offset.
func (e *x86Emitter) mem(base string, u int, extra int) string {
	e.used[base] = true
	disp := u*e.bytes + extra
	if e.p.indexed {
		if disp == 0 {
			return fmt.Sprintf("(%%%s,%%rax,8)", base)
		}
		return fmt.Sprintf("%d(%%%s,%%rax,8)", disp, base)
	}
	if disp == 0 {
		return fmt.Sprintf("(%%%s)", base)
	}
	return fmt.Sprintf("%d(%%%s)", disp, base)
}

// load emits a plain load into a register.
func (e *x86Emitter) load(base string, u, extra int, dst string) {
	e.f("\t%s %s, %s", e.movOp(), e.mem(base, u, extra), dst)
}

// store emits a store.
func (e *x86Emitter) store(src, base string, u, extra int) {
	e.f("\t%s %s, %s", e.movOp(), src, e.mem(base, u, extra))
}

// arith2 emits "op src2, src1, dst" with src2 a memory ref when folding is
// enabled, otherwise via a scratch load.
func (e *x86Emitter) arith2Mem(op, base string, u, extra int, src1, dst, scratch string) {
	if e.p.foldMem {
		e.f("\t%s %s, %s, %s", op, e.mem(base, u, extra), src1, dst)
		return
	}
	e.load(base, u, extra, scratch)
	e.f("\t%s %s, %s, %s", op, scratch, src1, dst)
}

// close emits the induction update and backward branch.
func (e *x86Emitter) close(k *Kernel) {
	lanes := 1
	if !e.p.scalar {
		lanes = e.p.vecBits / 64
	}
	elems := lanes * e.p.unroll
	if e.p.indexed {
		if elems == 1 {
			e.f("\tincq %%rax")
		} else {
			e.f("\taddq $%d, %%rax", elems)
		}
		e.f("\tcmpq %%rbx, %%rax")
	} else {
		bases := make([]string, 0, len(e.used))
		for b := range e.used {
			bases = append(bases, b)
		}
		sort.Strings(bases)
		if len(bases) == 0 {
			// No memory streams (π): plain counter loop.
			e.f("\taddq $%d, %%rax", elems)
			e.f("\tcmpq %%rbx, %%rax")
			e.f("\tjne .L0")
			return
		}
		for _, b := range bases {
			e.f("\taddq $%d, %%%s", elems*8, b)
		}
		cmpBase := "rsi"
		if !e.used["rsi"] {
			cmpBase = "rdi"
		}
		e.f("\tcmpq %%rbx, %%%s", cmpBase)
	}
	e.f("\tjne .L0")
}

func (e *x86Emitter) header() { e.f(".L0:") }

// emitX86 dispatches on kernel kind.
func emitX86(k *Kernel, p genParams) (string, error) {
	e := newX86Emitter(p)
	e.header()
	U := p.unroll
	switch k.Kind {
	case KindCopy:
		for u := 0; u < U; u++ {
			e.load("rsi", u, 0, e.vr(u))
		}
		for u := 0; u < U; u++ {
			e.store(e.vr(u), "rdi", u, 0)
		}

	case KindInit:
		// Source register only; no loads. The stored value lives in
		// reg 15 (set up outside the loop).
		for u := 0; u < U; u++ {
			e.store(e.vr(15), "rdi", u, 0)
		}

	case KindUpdate:
		for u := 0; u < U; u++ {
			e.arith2Mem(e.op("mul"), "rsi", u, 0, e.vr(15), e.vr(u), e.vr(u+U))
		}
		for u := 0; u < U; u++ {
			e.store(e.vr(u), "rsi", u, 0)
		}

	case KindAdd:
		for u := 0; u < U; u++ {
			e.load("rsi", u, 0, e.vr(u))
			e.arith2Mem(e.op("add"), "rdx", u, 0, e.vr(u), e.vr(u), e.vr(u+U))
			e.store(e.vr(u), "rdi", u, 0)
		}

	case KindStriad:
		// a = b + s*c
		for u := 0; u < U; u++ {
			e.load("rsi", u, 0, e.vr(u)) // b
			if p.fma {
				if p.foldMem {
					e.f("\t%s %s, %s, %s", e.fmaOp("vfmadd231"), e.mem("rdx", u, 0), e.vr(15), e.vr(u))
				} else {
					e.load("rdx", u, 0, e.vr(u+U))
					e.f("\t%s %s, %s, %s", e.fmaOp("vfmadd231"), e.vr(u+U), e.vr(15), e.vr(u))
				}
			} else {
				e.arith2Mem(e.op("mul"), "rdx", u, 0, e.vr(15), e.vr(u+U), e.vr(u+2*U))
				e.f("\t%s %s, %s, %s", e.op("add"), e.vr(u+U), e.vr(u), e.vr(u))
			}
			e.store(e.vr(u), "rdi", u, 0)
		}

	case KindSchTriad:
		// a = b + c*d
		for u := 0; u < U; u++ {
			e.load("rsi", u, 0, e.vr(u))   // b
			e.load("rdx", u, 0, e.vr(u+U)) // c
			if p.fma {
				if p.foldMem {
					e.f("\t%s %s, %s, %s", e.fmaOp("vfmadd231"), e.mem("rcx", u, 0), e.vr(u+U), e.vr(u))
				} else {
					e.load("rcx", u, 0, e.vr(u+2*U))
					e.f("\t%s %s, %s, %s", e.fmaOp("vfmadd231"), e.vr(u+2*U), e.vr(u+U), e.vr(u))
				}
			} else {
				e.arith2Mem(e.op("mul"), "rcx", u, 0, e.vr(u+U), e.vr(u+U), e.vr(u+2*U))
				e.f("\t%s %s, %s, %s", e.op("add"), e.vr(u+U), e.vr(u), e.vr(u))
			}
			e.store(e.vr(u), "rdi", u, 0)
		}

	case KindSum:
		// s += a[i]; accumulators rotate over vr(0..accs-1).
		for u := 0; u < U; u++ {
			acc := e.vr(u % p.accs)
			e.arith2Mem(e.op("add"), "rsi", u, 0, acc, acc, e.vr(p.accs+u))
		}

	case KindPi:
		emitPiX86(e, k)

	case KindJ2D5:
		for u := 0; u < U; u++ {
			e.load("rsi", u, -8, e.vr(u))
			e.arith2Mem(e.op("add"), "rsi", u, 8, e.vr(u), e.vr(u), e.vr(u+U))
			e.arith2Mem(e.op("add"), "r8", u, 0, e.vr(u), e.vr(u), e.vr(u+U))
			e.arith2Mem(e.op("add"), "r9", u, 0, e.vr(u), e.vr(u), e.vr(u+U))
			e.f("\t%s %s, %s, %s", e.op("mul"), e.vr(15), e.vr(u), e.vr(u))
			e.store(e.vr(u), "rdi", u, 0)
		}

	case KindJ3D7:
		rows := []struct {
			base  string
			extra int
		}{
			{"rsi", -8}, {"rsi", 8}, {"r8", 0}, {"r9", 0}, {"r10", 0}, {"r11", 0},
		}
		emitStencilX86(e, rows, U)

	case KindJ3D11:
		rows := []struct {
			base  string
			extra int
		}{
			{"rsi", -16}, {"rsi", -8}, {"rsi", 0}, {"rsi", 8}, {"rsi", 16},
			{"r8", 0}, {"r9", 0}, {"r12", 0}, {"r13", 0}, {"r10", 0}, {"r11", 0},
		}
		emitStencilX86(e, rows, U)

	case KindJ3D27:
		var rows []struct {
			base  string
			extra int
		}
		for _, b := range []string{"rsi", "rdx", "rcx", "r8", "r9", "r10", "r11", "r12", "r13"} {
			for _, off := range []int{-8, 0, 8} {
				rows = append(rows, struct {
					base  string
					extra int
				}{b, off})
			}
		}
		emitStencilX86(e, rows, U)

	case KindGS2D5:
		emitGSX86(e)

	default:
		return "", fmt.Errorf("emitX86: unhandled kernel kind %d", k.Kind)
	}
	e.close(k)
	return e.sb.String(), nil
}

// fmaOp renders an FMA mnemonic at the current width.
func (e *x86Emitter) fmaOp(base string) string {
	if e.p.scalar {
		return base + "sd"
	}
	return base + "pd"
}

// emitStencilX86 generates a neighbor-sum stencil: load first point, add
// the rest, scale, store.
func emitStencilX86(e *x86Emitter, rows []struct {
	base  string
	extra int
}, U int) {
	for u := 0; u < U; u++ {
		e.load(rows[0].base, u, rows[0].extra, e.vr(u))
		for _, r := range rows[1:] {
			e.arith2Mem(e.op("add"), r.base, u, r.extra, e.vr(u), e.vr(u), e.vr(u+U))
		}
		e.f("\t%s %s, %s, %s", e.op("mul"), e.vr(15), e.vr(u), e.vr(u))
		e.store(e.vr(u), "rdi", u, 0)
	}
}

// emitPiX86 generates the π-by-integration body. Scalar variants convert
// the loop index; vectorized variants (Ofast) keep an iota vector.
func emitPiX86(e *x86Emitter, k *Kernel) {
	if e.p.scalar {
		e.f("\tvcvtsi2sdq %%rax, %%xmm7, %%xmm1")
		e.f("\tvaddsd %%xmm13, %%xmm1, %%xmm1") // + 0.5
		e.f("\tvmulsd %%xmm14, %%xmm1, %%xmm1") // * dx
		if e.p.fma {
			e.f("\tvfmadd213sd %%xmm12, %%xmm1, %%xmm1") // x*x + 1
		} else {
			e.f("\tvmulsd %%xmm1, %%xmm1, %%xmm1")
			e.f("\tvaddsd %%xmm12, %%xmm1, %%xmm1")
		}
		e.f("\tvdivsd %%xmm1, %%xmm11, %%xmm1") // 4.0 / t
		e.f("\tvaddsd %%xmm1, %%xmm0, %%xmm0")
		return
	}
	U := e.p.unroll
	for u := 0; u < U; u++ {
		t := e.vr(4 + u%4)
		e.f("\t%s %s, %s, %s", e.op("mul"), e.vr(14), e.vr(9), t) // x = iota*dx
		if e.p.fma {
			e.f("\t%s %s, %s, %s", e.fmaOp("vfmadd213"), e.vr(12), t, t)
		} else {
			e.f("\t%s %s, %s, %s", e.op("mul"), t, t, t)
			e.f("\t%s %s, %s, %s", e.op("add"), e.vr(12), t, t)
		}
		e.f("\t%s %s, %s, %s", e.op("div"), t, e.vr(11), t)
		acc := e.vr(u % e.p.accs)
		e.f("\t%s %s, %s, %s", e.op("add"), t, acc, acc)
		e.f("\t%s %s, %s, %s", e.op("add"), e.vr(10), e.vr(9), e.vr(9)) // iota += lanes
	}
}

// emitGSX86 generates the Gauss-Seidel sweep. Three shapes, matching what
// real compilers emit:
//
//	O1:    the previous element is re-loaded from memory (store→load
//	       round trip carries the dependency),
//	O2/O3: the previous element stays in %xmm0 (register-carried
//	       add+mul chain),
//	Ofast: FMA contraction of the carried update.
func emitGSX86(e *x86Emitter) {
	switch {
	case e.p.gsFMA && !e.p.gsMemRoundTrip:
		e.load("r8", 0, 0, "%xmm1")
		e.arith2Mem("vaddsd", "r9", 0, 0, "%xmm1", "%xmm1", "%xmm2")
		e.arith2Mem("vaddsd", "rsi", 0, 8, "%xmm1", "%xmm1", "%xmm2")
		e.f("\tvmulsd %%xmm15, %%xmm1, %%xmm1")      // t = 0.25*sum3
		e.f("\tvfmadd231sd %%xmm15, %%xmm0, %%xmm1") // t += 0.25*prev
		e.store("%xmm1", "rsi", 0, 0)
		e.f("\tvmovsd %%xmm1, %%xmm0")
	case e.p.gsMemRoundTrip:
		e.load("rsi", 0, -8, "%xmm1")
		e.arith2Mem("vaddsd", "rsi", 0, 8, "%xmm1", "%xmm1", "%xmm2")
		e.arith2Mem("vaddsd", "r8", 0, 0, "%xmm1", "%xmm1", "%xmm2")
		e.arith2Mem("vaddsd", "r9", 0, 0, "%xmm1", "%xmm1", "%xmm2")
		e.f("\tvmulsd %%xmm15, %%xmm1, %%xmm1")
		e.store("%xmm1", "rsi", 0, 0)
	default:
		e.load("r8", 0, 0, "%xmm1")
		e.arith2Mem("vaddsd", "r9", 0, 0, "%xmm1", "%xmm1", "%xmm2")
		e.arith2Mem("vaddsd", "rsi", 0, 8, "%xmm1", "%xmm1", "%xmm2")
		e.f("\tvaddsd %%xmm0, %%xmm1, %%xmm1")
		e.f("\tvmulsd %%xmm15, %%xmm1, %%xmm0")
		e.store("%xmm0", "rsi", 0, 0)
	}
}
