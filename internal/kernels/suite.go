package kernels

import (
	"fmt"
	"sort"

	"incore/internal/isa"
)

// TestBlock is one generated validation block with its provenance.
type TestBlock struct {
	Kernel *Kernel
	Config Config
	Block  *isa.Block
	// ElemsPerIter is the number of scalar elements one loop iteration
	// processes.
	ElemsPerIter int
}

// Suite generates the full validation suite for one architecture:
// 13 kernels x compilers(arch) x 4 optimization levels.
func Suite(arch string) ([]TestBlock, error) {
	var out []TestBlock
	for ki := range Kernels {
		k := &Kernels[ki]
		for _, c := range CompilersFor(arch) {
			for _, o := range AllOptLevels() {
				cfg := Config{Arch: arch, Compiler: c, Opt: o}
				b, err := Generate(k, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, TestBlock{
					Kernel:       k,
					Config:       cfg,
					Block:        b,
					ElemsPerIter: ElemsPerIter(k, cfg),
				})
			}
		}
	}
	return out, nil
}

// FullSuite generates the paper's complete 416-block study across all
// three architectures.
func FullSuite() ([]TestBlock, error) {
	var out []TestBlock
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		s, err := Suite(arch)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	return out, nil
}

// UniqueBlocks counts distinct assembly bodies in a suite (the paper
// reports 290 unique representations out of 416 tests; duplicates arise
// when optimization levels produce identical code).
func UniqueBlocks(blocks []TestBlock) int {
	seen := map[string]bool{}
	for _, tb := range blocks {
		seen[tb.Block.Arch+"\n"+tb.Block.Text()] = true
	}
	return len(seen)
}

// SuiteSummary describes a suite for reports.
func SuiteSummary(blocks []TestBlock) string {
	perArch := map[string]int{}
	for _, tb := range blocks {
		perArch[tb.Config.Arch]++
	}
	keys := make([]string, 0, len(perArch))
	for k := range perArch {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("%d test blocks (%d unique):", len(blocks), UniqueBlocks(blocks))
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%d", k, perArch[k])
	}
	return s
}
