// Package kernels defines the paper's 13 streaming/stencil validation
// kernels and generates their assembly loop bodies for every combination
// of microarchitecture, compiler, and optimization level used in the
// paper's Fig. 3 study:
//
//	13 kernels x {gcc, armclang} x {O1,O2,O3,Ofast}            on Grace
//	13 kernels x {gcc, clang, icx} x {O1,O2,O3,Ofast}          on SPR
//	13 kernels x {gcc, clang, icx} x {O1,O2,O3,Ofast}          on Genoa
//
// = 416 test blocks, matching the paper's count. The "compilers" are code
// generators that reproduce each compiler's characteristic idioms:
// vectorization policy, unrolling, FMA contraction, addressing style, and
// reduction accumulator counts. Blocks are emitted as assembly text and
// parsed through package isa, so the generator also exercises the parsers.
package kernels

import (
	"fmt"

	"incore/internal/isa"
)

// Compiler identifies a code-generation personality.
type Compiler string

// Supported compilers per the paper's methodology section.
const (
	GCC      Compiler = "gcc"
	Clang    Compiler = "clang"
	ICX      Compiler = "icx"
	ArmClang Compiler = "armclang"
)

// CompilersFor returns the compilers used on an architecture in the paper.
func CompilersFor(arch string) []Compiler {
	if arch == "neoversev2" {
		return []Compiler{GCC, ArmClang}
	}
	return []Compiler{GCC, Clang, ICX}
}

// OptLevel is a compiler optimization level.
type OptLevel int

// Optimization levels used in the paper.
const (
	O1 OptLevel = iota + 1
	O2
	O3
	Ofast
)

// String returns the flag spelling.
func (o OptLevel) String() string {
	switch o {
	case O1:
		return "O1"
	case O2:
		return "O2"
	case O3:
		return "O3"
	case Ofast:
		return "Ofast"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// AllOptLevels lists the four levels of the study.
func AllOptLevels() []OptLevel { return []OptLevel{O1, O2, O3, Ofast} }

// Kind discriminates kernel code shapes.
type Kind int

// Kernel kinds.
const (
	KindCopy Kind = iota
	KindInit
	KindUpdate
	KindAdd
	KindStriad
	KindSchTriad
	KindSum
	KindPi
	KindJ2D5
	KindJ3D7
	KindJ3D11
	KindJ3D27
	KindGS2D5
)

// Kernel describes one validation kernel.
type Kernel struct {
	Name string
	// Doc is the C-level loop body.
	Doc  string
	Kind Kind
	// LoadStreams / StoreStreams count distinct array streams.
	LoadStreams, StoreStreams int
	// FlopsPerElem counts adds+muls (divs listed separately).
	AddsPerElem, MulsPerElem, DivsPerElem int
	// Vectorizable marks kernels compilers can vectorize at all.
	Vectorizable bool
	// NeedsFastMath marks kernels that vectorize only under -Ofast
	// (reductions: FP reassociation required).
	NeedsFastMath bool
}

// Kernels is the paper's 13-kernel validation set (Sec. II).
var Kernels = []Kernel{
	{Name: "copy", Doc: "a[i] = b[i]", Kind: KindCopy,
		LoadStreams: 1, StoreStreams: 1, Vectorizable: true},
	{Name: "init", Doc: "a[i] = s", Kind: KindInit,
		StoreStreams: 1, Vectorizable: true},
	{Name: "update", Doc: "a[i] = s*a[i]", Kind: KindUpdate,
		LoadStreams: 1, StoreStreams: 1, MulsPerElem: 1, Vectorizable: true},
	{Name: "add", Doc: "a[i] = b[i] + c[i]", Kind: KindAdd,
		LoadStreams: 2, StoreStreams: 1, AddsPerElem: 1, Vectorizable: true},
	{Name: "striad", Doc: "a[i] = b[i] + s*c[i]", Kind: KindStriad,
		LoadStreams: 2, StoreStreams: 1, AddsPerElem: 1, MulsPerElem: 1, Vectorizable: true},
	{Name: "schtriad", Doc: "a[i] = b[i] + c[i]*d[i]", Kind: KindSchTriad,
		LoadStreams: 3, StoreStreams: 1, AddsPerElem: 1, MulsPerElem: 1, Vectorizable: true},
	{Name: "sum", Doc: "s += a[i]", Kind: KindSum,
		LoadStreams: 1, AddsPerElem: 1, Vectorizable: true, NeedsFastMath: true},
	{Name: "pi", Doc: "x = (i+0.5)*dx; s += 4.0/(1.0 + x*x)", Kind: KindPi,
		AddsPerElem: 3, MulsPerElem: 2, DivsPerElem: 1, Vectorizable: true, NeedsFastMath: true},
	{Name: "j2d5", Doc: "b[j][i] = 0.25*(a[j][i-1]+a[j][i+1]+a[j-1][i]+a[j+1][i])", Kind: KindJ2D5,
		LoadStreams: 3, StoreStreams: 1, AddsPerElem: 3, MulsPerElem: 1, Vectorizable: true},
	{Name: "j3d7", Doc: "b[k][j][i] = c*(a[k][j][i-1]+a[k][j][i+1]+a[k][j-1][i]+a[k][j+1][i]+a[k-1][j][i]+a[k+1][j][i])", Kind: KindJ3D7,
		LoadStreams: 5, StoreStreams: 1, AddsPerElem: 5, MulsPerElem: 1, Vectorizable: true},
	{Name: "j3d11", Doc: "11-point star stencil (center, i±1, i±2, j±1, j±2, k±1, k±2)", Kind: KindJ3D11,
		LoadStreams: 7, StoreStreams: 1, AddsPerElem: 10, MulsPerElem: 1, Vectorizable: true},
	{Name: "j3d27", Doc: "27-point box stencil", Kind: KindJ3D27,
		LoadStreams: 9, StoreStreams: 1, AddsPerElem: 26, MulsPerElem: 1, Vectorizable: true},
	{Name: "gs2d5", Doc: "phi[j][i] = 0.25*(phi[j][i-1]+phi[j][i+1]+phi[j-1][i]+phi[j+1][i]) (in place)", Kind: KindGS2D5,
		LoadStreams: 3, StoreStreams: 1, AddsPerElem: 3, MulsPerElem: 1, Vectorizable: false},
}

// ByName returns the kernel with the given name.
func ByName(name string) (*Kernel, error) {
	for i := range Kernels {
		if Kernels[i].Name == name {
			return &Kernels[i], nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Config selects one generated variant.
type Config struct {
	Arch     string
	Compiler Compiler
	Opt      OptLevel
}

// String names the variant ("striad-gcc-O3-goldencove").
func (c Config) String() string {
	return fmt.Sprintf("%s-%s", c.Compiler, c.Opt)
}

// genParams are the derived code-generation knobs.
type genParams struct {
	scalar  bool
	vecBits int // vector register width when !scalar
	unroll  int
	fma     bool
	accs    int  // reduction accumulators
	indexed bool // indexed vs pointer-bump addressing
	sve     bool
	foldMem bool // fold memory operands into arithmetic (x86)
	// Gauss-Seidel shape selectors (see emitGSX86/emitGSAArch64).
	gsMemRoundTrip bool // O1: carried value reloaded from memory
	gsFMA          bool // Ofast: FMA-contracted carried update
}

// vecWidthFor returns the vector width a compiler targets on an arch.
func vecWidthFor(arch string, c Compiler) int {
	switch arch {
	case "neoversev2":
		return 128
	case "goldencove", "zen4":
		if c == Clang {
			return 256
		}
		return 512
	default:
		return 128
	}
}

// deriveParams reproduces each compiler's code-generation policy.
func deriveParams(k *Kernel, cfg Config) genParams {
	p := genParams{scalar: true, unroll: 1, indexed: true}
	switch cfg.Compiler {
	case Clang:
		p.indexed = false
	case ArmClang:
		p.sve = true
	}
	p.foldMem = cfg.Compiler == GCC || cfg.Compiler == ICX

	vectorize := k.Vectorizable && cfg.Opt >= O2
	if k.NeedsFastMath && cfg.Opt < Ofast {
		vectorize = false
	}
	if vectorize {
		p.scalar = false
		p.vecBits = vecWidthFor(cfg.Arch, cfg.Compiler)
	}

	// Unrolling policy (vector loops; scalar loops stay rolled except
	// for clang/icx at O3+ on simple streams).
	switch cfg.Compiler {
	case GCC:
		if cfg.Opt >= O3 && !p.scalar {
			p.unroll = 2
		}
	case Clang:
		if !p.scalar {
			if cfg.Opt >= O3 {
				p.unroll = 4
			} else {
				p.unroll = 2
			}
		}
	case ICX:
		if !p.scalar && cfg.Opt >= O2 {
			p.unroll = 2
			if cfg.Opt >= O3 {
				p.unroll = 4
			}
		}
	case ArmClang:
		// whilelo-predicated SVE loops stay rolled.
		p.unroll = 1
	}
	// Loop-carried kernels cannot be unrolled profitably.
	if k.Kind == KindGS2D5 {
		p.unroll = 1
		p.gsMemRoundTrip = cfg.Opt == O1
		p.gsFMA = cfg.Opt == Ofast
	}

	// FMA contraction.
	switch cfg.Compiler {
	case ICX:
		p.fma = true
	default:
		p.fma = cfg.Opt >= O2
	}

	// Reduction accumulators.
	p.accs = 1
	if (k.Kind == KindSum || k.Kind == KindPi) && !p.scalar {
		switch cfg.Compiler {
		case Clang:
			p.accs = 4
			p.unroll = 4
		case GCC:
			p.accs = 2
			p.unroll = 2
		case ICX:
			p.accs = 2
			p.unroll = 2
		case ArmClang:
			// whilelo-predicated SVE reductions stay rolled with a
			// single vector accumulator.
			p.accs = 1
			p.unroll = 1
		}
	}
	if p.unroll < p.accs {
		p.unroll = p.accs
	}
	return p
}

// Generate emits the loop-body block for kernel k under cfg.
func Generate(k *Kernel, cfg Config) (*isa.Block, error) {
	if k == nil {
		return nil, fmt.Errorf("kernels: nil kernel")
	}
	p := deriveParams(k, cfg)
	name := fmt.Sprintf("%s-%s-%s-%s", k.Name, cfg.Compiler, cfg.Opt, cfg.Arch)
	var (
		text string
		err  error
	)
	switch cfg.Arch {
	case "goldencove", "zen4":
		text, err = emitX86(k, p)
	case "neoversev2":
		text, err = emitAArch64(k, p)
	default:
		return nil, fmt.Errorf("kernels: unsupported arch %q", cfg.Arch)
	}
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", name, err)
	}
	dialect := isa.DialectX86
	if cfg.Arch == "neoversev2" {
		dialect = isa.DialectAArch64
	}
	b, err := isa.ParseBlock(name, cfg.Arch, dialect, text)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: generated assembly does not parse: %w", name, err)
	}
	return b, nil
}

// ElemsPerIter returns how many scalar elements one generated loop
// iteration processes (for cycles-per-element normalization).
func ElemsPerIter(k *Kernel, cfg Config) int {
	p := deriveParams(k, cfg)
	lanes := 1
	if !p.scalar {
		lanes = p.vecBits / 64
	}
	return lanes * p.unroll
}
