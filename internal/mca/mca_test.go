package mca

import (
	"testing"

	"incore/internal/isa"
	"incore/internal/sim"
	"incore/internal/uarch"
)

func predict(t *testing.T, arch, src string) *Result {
	t.Helper()
	m := uarch.MustGet(arch)
	b, err := isa.ParseBlock("t", arch, m.Dialect, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := PredictDefault(b, m)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	return r
}

func TestParamsForKnownArchs(t *testing.T) {
	v2 := ParamsFor("neoversev2")
	if v2.DispatchWidth != 4 || !v2.RoundRobin || !v2.CeilOccupancy {
		t.Errorf("neoversev2 params: %+v", v2)
	}
	z := ParamsFor("zen4")
	if z.RoundRobin {
		t.Error("zen4 baseline uses availability-based port selection (mature model)")
	}
	if z.DispatchWidth <= v2.DispatchWidth {
		t.Error("zen4 baseline dispatch must exceed the immature V2 model's")
	}
	unk := ParamsFor("unknown")
	if unk.DispatchWidth <= 0 {
		t.Error("unknown arch must get defaults")
	}
}

func TestPredictSimpleLoop(t *testing.T) {
	r := predict(t, "goldencove", `
	vaddpd %zmm1, %zmm2, %zmm3
	decq %rcx
	jne .L0
`)
	if r.CyclesPerIter <= 0 {
		t.Errorf("prediction = %f", r.CyclesPerIter)
	}
	if r.Iters != 100 {
		t.Errorf("mca must replay 100 iterations like the llvm-mca CLI, got %d", r.Iters)
	}
}

// TestBaselineOverPredictsNarrowDispatch: many-µ-op scalar blocks exceed
// the baseline's dispatch width and come out slower than the simulated
// measurement — the paper's core observation about LLVM-MCA on V2.
func TestBaselineOverPredictsNarrowDispatch(t *testing.T) {
	src := `
	ldr d16, [x1, x3, lsl #3]
	ldr d17, [x2, x3, lsl #3]
	fadd d18, d16, d17
	ldr d19, [x5, x3, lsl #3]
	fadd d20, d18, d19
	str d20, [x0, x3, lsl #3]
	add x3, x3, #1
	cmp x3, x4
	b.ne .L0
`
	m := uarch.MustGet("neoversev2")
	b, err := isa.ParseBlock("t", "neoversev2", m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	mcaRes, err := PredictDefault(b, m)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(b, m, sim.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if !(mcaRes.CyclesPerIter > simRes.CyclesPerIter) {
		t.Errorf("baseline should over-predict scalar V2 code: mca=%f sim=%f",
			mcaRes.CyclesPerIter, simRes.CyclesPerIter)
	}
}

func TestCeilOccupancyPenalizesFractionalOps(t *testing.T) {
	// V2 scalar divide has reciprocal throughput 2.5; the baseline
	// rounds to 3.
	src := `
	fdiv d16, d8, d9
	fdiv d17, d8, d9
	subs x4, x4, #1
	b.ne .L0
`
	m := uarch.MustGet("neoversev2")
	b, err := isa.ParseBlock("t", "neoversev2", m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	withCeil, err := Predict(b, m, Params{DispatchWidth: 8, CeilOccupancy: true})
	if err != nil {
		t.Fatal(err)
	}
	noCeil, err := Predict(b, m, Params{DispatchWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(withCeil.CyclesPerIter > noCeil.CyclesPerIter) {
		t.Errorf("ceil occupancy must slow fractional-throughput ops: %f vs %f",
			withCeil.CyclesPerIter, noCeil.CyclesPerIter)
	}
}

func TestRoundRobinWorseThanLeastLoaded(t *testing.T) {
	// Asymmetric port masks: round-robin rotation stacks work.
	src := `
	vaddsd %xmm1, %xmm2, %xmm16
	vmulsd %xmm1, %xmm2, %xmm17
	vmulsd %xmm3, %xmm4, %xmm18
	decq %rcx
	jne .L0
`
	m := uarch.MustGet("goldencove")
	b, err := isa.ParseBlock("t", "goldencove", m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Predict(b, m, Params{DispatchWidth: 6, RoundRobin: true})
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Predict(b, m, Params{DispatchWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rr.CyclesPerIter < ll.CyclesPerIter-1e-9 {
		t.Errorf("round robin should not beat least-loaded: %f vs %f",
			rr.CyclesPerIter, ll.CyclesPerIter)
	}
}

func TestGroupBreakAddsPerIterationCost(t *testing.T) {
	src := `
	vaddpd %ymm1, %ymm2, %ymm16
	jne .L0
`
	m := uarch.MustGet("zen4")
	b, err := isa.ParseBlock("t", "zen4", m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Predict(b, m, Params{DispatchWidth: 6, GroupBreak: true})
	if err != nil {
		t.Fatal(err)
	}
	// ~1 cy/iter; the llvm-mca-style total/iters convention loses one
	// iteration's fencepost.
	if with.CyclesPerIter < 0.98 {
		t.Errorf("group break must enforce ~1 cy/iter: %f", with.CyclesPerIter)
	}
}

func TestPredictErrors(t *testing.T) {
	m := uarch.MustGet("zen4")
	if _, err := Predict(&isa.Block{Name: "empty"}, m, ParamsFor("zen4")); err == nil {
		t.Error("empty block must fail")
	}
	bad := &isa.Block{Name: "bad", Arch: "zen4", Dialect: m.Dialect,
		Instrs: []isa.Instruction{{Mnemonic: "bogus"}}}
	if _, err := Predict(bad, m, ParamsFor("zen4")); err == nil {
		t.Error("unknown mnemonic must fail")
	}
}

func TestDeterminism(t *testing.T) {
	a := predict(t, "zen4", "\tvaddpd %ymm1, %ymm2, %ymm3\n\tjne .L0\n")
	b := predict(t, "zen4", "\tvaddpd %ymm1, %ymm2, %ymm3\n\tjne .L0\n")
	if a.CyclesPerIter != b.CyclesPerIter {
		t.Error("baseline not deterministic")
	}
}
