// Package mca implements the baseline comparator of the paper's Fig. 3: an
// LLVM-MCA-style timeline predictor. Like LLVM-MCA it replays the block
// through a dispatch/issue/writeback pipeline driven by a scheduler model —
// and, like LLVM-MCA's models for these (then) brand-new server cores, that
// scheduler model is deliberately less faithful than the hand-built OSACA
// port model in internal/core:
//
//   - dispatch width defaults that lag the real frontends (the Neoverse V2
//     model is the least mature, matching the paper's observation that
//     LLVM-MCA's V2 predictions are off by 52% on average);
//   - static round-robin port selection inside resource groups instead of
//     pressure-aware balancing;
//   - integer-rounded resource occupancy (fractional reciprocal
//     throughputs are rounded up);
//   - no store-to-load forwarding, no FMA accumulator forwarding, no
//     divider early exit.
//
// The combination reproduces the paper's qualitative finding: roughly
// three quarters of the 416 validation kernels are predicted *slower* than
// the measurement, with a heavy far-left tail, while per-architecture
// fidelity differs (Zen 4 best, Neoverse V2 worst).
package mca

import (
	"fmt"
	"math"
	"sync"

	"incore/internal/isa"
	"incore/internal/portsched"
	"incore/internal/uarch"
)

// Params captures the per-architecture maturity of the baseline scheduler
// model.
type Params struct {
	// DispatchWidth is the µ-ops dispatched per cycle by the baseline
	// model (not necessarily the real frontend width).
	DispatchWidth int
	// VecLatBias is added to vector FP latencies (immature models often
	// carry worst-case latencies).
	VecLatBias int
	// CeilOccupancy rounds fractional port occupancies up to integers.
	CeilOccupancy bool
	// RoundRobin selects ports statically (round-robin per mask) instead
	// of by current availability.
	RoundRobin bool
	// LoadLat overrides the model's load-to-use latency (generic default
	// in immature models); 0 keeps the model value.
	LoadLat int
	// GroupBreak starts a fresh dispatch group after every taken branch
	// (LLVM-MCA's per-cycle dispatch grouping).
	GroupBreak bool
}

// ParamsFor returns the baseline model parameters for a microarchitecture,
// mirroring the relative maturity of LLVM's scheduler models in 2024.
func ParamsFor(key string) Params {
	switch key {
	case "neoversev2":
		return Params{DispatchWidth: 4, VecLatBias: 1, CeilOccupancy: true, RoundRobin: true, LoadLat: 6, GroupBreak: true}
	case "goldencove":
		return Params{DispatchWidth: 4, VecLatBias: 1, CeilOccupancy: true, RoundRobin: true, GroupBreak: true}
	case "zen4":
		return Params{DispatchWidth: 5, VecLatBias: 0, CeilOccupancy: true, RoundRobin: false, GroupBreak: true}
	default:
		return Params{DispatchWidth: 4, VecLatBias: 1, CeilOccupancy: true, RoundRobin: true, GroupBreak: true}
	}
}

// Result is the baseline prediction for one block.
type Result struct {
	CyclesPerIter float64
	Iters         int
}

// sInstr is the static per-instruction schedule state: registers lowered
// to dense interned IDs so the replay loop tracks producers with slice
// indexing instead of map lookups.
type sInstr struct {
	desc     uarch.Desc
	dataIDs  []int32 // interned data-read registers (address regs excluded)
	writeIDs []int32
	lat      float64
}

// scratch holds the reusable replay arenas one prediction needs; a
// sync.Pool makes a steady stream of predictions do O(1) heap work after
// warmup and concurrent callers safe. The static front-end lives in
// Compiled, not here, so one compile can serve any number of replays.
type scratch struct {
	producer []int32 // by reg ID: dynamic index of last writer, -1 none
	ready    []float64
	finish   []float64
	dispatch []float64
	ports    portsched.Group
	// Round-robin rotation counters per distinct port mask (the former
	// rrCounter map); realistic models carry ~10 distinct masks.
	rrMasks  []uarch.PortMask
	rrCounts []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grow returns s resized to length n, preserving existing contents (and
// backing capacity) wherever possible; callers reinitialize the prefix
// they use. Same contract as depgraph's growOuter and core's grow.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]T, n-cap(s))...)
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// rrNext returns the rotation counter for mask and advances it.
func (s *scratch) rrNext(mask uarch.PortMask) int {
	for i, m := range s.rrMasks {
		if m == mask {
			c := s.rrCounts[i]
			s.rrCounts[i]++
			return c
		}
	}
	s.rrMasks = append(s.rrMasks, mask)
	s.rrCounts = append(s.rrCounts, 1)
	return 0
}

// Compiled is the static front-end of one baseline prediction: the
// block's instructions resolved against one model and lowered to the
// interned-ID tables the replay loop reads. A Compiled is immutable after
// Compile, safe for concurrent Predict calls, and cacheable per
// (block content, model) — the replay itself draws its dynamic state from
// a pooled scratch.
type Compiled struct {
	model  *uarch.Model
	params Params
	static []sInstr
	nRegs  int
}

// Compile lowers block b against model m under scheduler parameters p —
// the cacheable half of Predict. The error surface matches Predict's.
func Compile(b *isa.Block, m *uarch.Model, p Params) (*Compiled, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if p.DispatchWidth <= 0 {
		p.DispatchWidth = 4
	}
	c := &Compiled{model: m, params: p, static: make([]sInstr, len(b.Instrs))}
	var interner isa.RegInterner
	var addrIDs []int32
	static := c.static
	for i := range b.Instrs {
		in := &b.Instrs[i]
		eff := isa.InstrEffects(in, m.Dialect)
		d, err := m.LookupEff(in, &eff)
		if err != nil {
			return nil, fmt.Errorf("mca: block %s instr %d (%s): %w", b.Name, i, in.Mnemonic, err)
		}
		// Like LLVM-MCA, addresses are assumed ready (L1 hit model):
		// producer chains run through register data only.
		var lat float64
		switch {
		case d.Lat > 0:
			lat = float64(d.Lat)
		case d.IsLoad:
			lat = float64(d.TotalLat)
			if p.LoadLat > 0 {
				lat = float64(p.LoadLat)
			}
		default:
			lat = float64(d.TotalLat)
		}
		if p.VecLatBias > 0 && isVecFP(in) {
			lat += float64(p.VecLatBias)
		}
		addrIDs = addrIDs[:0]
		for _, ops := range [][]*isa.MemOp{eff.LoadOps, eff.StoreOps} {
			for _, mo := range ops {
				if mo.Base.Valid() {
					addrIDs = append(addrIDs, interner.Intern(mo.Base.Key()))
				}
				if mo.Index.Valid() && mo.Index.Class != isa.ClassVec {
					addrIDs = append(addrIDs, interner.Intern(mo.Index.Key()))
				}
			}
		}
		si := &static[i]
		si.desc = d
		si.lat = lat
		si.writeIDs = interner.InternAll(si.writeIDs[:0], eff.Writes)
		si.dataIDs = si.dataIDs[:0]
		for _, r := range eff.Reads {
			if id := interner.Intern(r); !containsID(addrIDs, id) {
				si.dataIDs = append(si.dataIDs, id)
			}
		}
	}
	c.nRegs = interner.Len()
	return c, nil
}

// SizeEstimate approximates the compiled tables' retained heap bytes for
// cache accounting (an estimate, not an exact account; descriptor µ-op
// slices are usually shared with the model's tables and counted anyway as
// an upper bound).
func (c *Compiled) SizeEstimate() int {
	size := 64 + len(c.static)*176 // sInstr incl. embedded desc
	for i := range c.static {
		si := &c.static[i]
		size += 4*(len(si.dataIDs)+len(si.writeIDs)) + 24*len(si.desc.Uops)
	}
	return size
}

// Predict replays the compiled block through the dispatch/issue/writeback
// timeline and returns the predicted steady-state cycles per iteration.
func (c *Compiled) Predict() (*Result, error) {
	m, p := c.model, c.params
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	s.rrMasks, s.rrCounts = s.rrMasks[:0], s.rrCounts[:0]
	static := c.static

	// Like the llvm-mca CLI, the prediction is total cycles over 100
	// iterations divided by 100 — including pipeline ramp-up, which
	// biases every prediction slightly above steady state.
	const meas = 100
	nStatic := len(static)
	nDyn := nStatic * meas

	s.producer = grow(s.producer, c.nRegs)
	producer := s.producer
	for i := range producer {
		producer[i] = -1
	}
	s.ready = grow(s.ready, nDyn)
	s.finish = grow(s.finish, nDyn)
	ready, finish := s.ready, s.finish
	s.ports.ResetTo(len(m.Ports))
	ports := &s.ports
	dispatched := s.dispatch[:0]

	for dyn := 0; dyn < nDyn; dyn++ {
		si := dyn % nStatic
		st := &static[si]

		disp := 0.0
		slot := len(dispatched)
		if slot >= p.DispatchWidth {
			disp = dispatched[slot-p.DispatchWidth] + 1
		}
		if p.GroupBreak && dyn > 0 && static[(dyn-1)%nStatic].desc.IsBranch && slot > 0 {
			if t := dispatched[slot-1] + 1; t > disp {
				disp = t
			}
		}

		opReady := disp
		for _, r := range st.dataIDs {
			if pd := producer[r]; pd >= 0 && ready[pd] > opReady {
				opReady = ready[pd]
			}
		}

		startMax := opReady
		for _, u := range st.desc.Uops {
			occ := u.Cycles
			if p.CeilOccupancy {
				occ = math.Ceil(occ)
			}
			var t float64
			if p.RoundRobin {
				// Static resource-group rotation: the port is chosen by
				// counter, not by availability (an immature scheduler
				// model's behaviour).
				idx := m.PortIndices(u.Ports)
				port := idx[s.rrNext(u.Ports)%len(idx)]
				t = ports.ScheduleOn(port, opReady, occ)
			} else {
				_, t = ports.ScheduleBest(m.PortIndices(u.Ports), opReady, occ)
			}
			if t > startMax {
				startMax = t
			}
			dispatched = append(dispatched, disp)
		}
		if len(st.desc.Uops) == 0 {
			dispatched = append(dispatched, disp)
		}
		ready[dyn] = startMax + st.lat
		fin := ready[dyn]
		if dyn > 0 && finish[dyn-1] > fin {
			fin = finish[dyn-1]
		}
		finish[dyn] = fin

		for _, w := range st.writeIDs {
			producer[w] = int32(dyn)
		}
	}
	s.dispatch = dispatched

	total := finish[nDyn-1]
	if total <= 0 {
		total = 1
	}
	return &Result{CyclesPerIter: total / meas, Iters: meas}, nil
}

// Predict runs the baseline timeline model for the block and returns the
// predicted steady-state cycles per iteration: Compile followed by one
// replay. Callers issuing repeated predictions of one (block, model)
// should compile once and replay the Compiled form (internal/pipeline
// caches it).
func Predict(b *isa.Block, m *uarch.Model, p Params) (*Result, error) {
	c, err := Compile(b, m, p)
	if err != nil {
		return nil, err
	}
	return c.Predict()
}

// PredictDefault runs Predict with the per-architecture default parameters.
func PredictDefault(b *isa.Block, m *uarch.Model) (*Result, error) {
	return Predict(b, m, ParamsFor(m.Key))
}

func isVecFP(in *isa.Instruction) bool {
	for _, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Reg.Class == isa.ClassVec && op.Reg.Width >= 128 {
			return true
		}
	}
	return false
}
