// Package mca implements the baseline comparator of the paper's Fig. 3: an
// LLVM-MCA-style timeline predictor. Like LLVM-MCA it replays the block
// through a dispatch/issue/writeback pipeline driven by a scheduler model —
// and, like LLVM-MCA's models for these (then) brand-new server cores, that
// scheduler model is deliberately less faithful than the hand-built OSACA
// port model in internal/core:
//
//   - dispatch width defaults that lag the real frontends (the Neoverse V2
//     model is the least mature, matching the paper's observation that
//     LLVM-MCA's V2 predictions are off by 52% on average);
//   - static round-robin port selection inside resource groups instead of
//     pressure-aware balancing;
//   - integer-rounded resource occupancy (fractional reciprocal
//     throughputs are rounded up);
//   - no store-to-load forwarding, no FMA accumulator forwarding, no
//     divider early exit.
//
// The combination reproduces the paper's qualitative finding: roughly
// three quarters of the 416 validation kernels are predicted *slower* than
// the measurement, with a heavy far-left tail, while per-architecture
// fidelity differs (Zen 4 best, Neoverse V2 worst).
package mca

import (
	"fmt"
	"math"

	"incore/internal/isa"
	"incore/internal/portsched"
	"incore/internal/uarch"
)

// Params captures the per-architecture maturity of the baseline scheduler
// model.
type Params struct {
	// DispatchWidth is the µ-ops dispatched per cycle by the baseline
	// model (not necessarily the real frontend width).
	DispatchWidth int
	// VecLatBias is added to vector FP latencies (immature models often
	// carry worst-case latencies).
	VecLatBias int
	// CeilOccupancy rounds fractional port occupancies up to integers.
	CeilOccupancy bool
	// RoundRobin selects ports statically (round-robin per mask) instead
	// of by current availability.
	RoundRobin bool
	// LoadLat overrides the model's load-to-use latency (generic default
	// in immature models); 0 keeps the model value.
	LoadLat int
	// GroupBreak starts a fresh dispatch group after every taken branch
	// (LLVM-MCA's per-cycle dispatch grouping).
	GroupBreak bool
}

// ParamsFor returns the baseline model parameters for a microarchitecture,
// mirroring the relative maturity of LLVM's scheduler models in 2024.
func ParamsFor(key string) Params {
	switch key {
	case "neoversev2":
		return Params{DispatchWidth: 4, VecLatBias: 1, CeilOccupancy: true, RoundRobin: true, LoadLat: 6, GroupBreak: true}
	case "goldencove":
		return Params{DispatchWidth: 4, VecLatBias: 1, CeilOccupancy: true, RoundRobin: true, GroupBreak: true}
	case "zen4":
		return Params{DispatchWidth: 5, VecLatBias: 0, CeilOccupancy: true, RoundRobin: false, GroupBreak: true}
	default:
		return Params{DispatchWidth: 4, VecLatBias: 1, CeilOccupancy: true, RoundRobin: true, GroupBreak: true}
	}
}

// Result is the baseline prediction for one block.
type Result struct {
	CyclesPerIter float64
	Iters         int
}

// Predict runs the baseline timeline model for the block and returns the
// predicted steady-state cycles per iteration.
func Predict(b *isa.Block, m *uarch.Model, p Params) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if p.DispatchWidth <= 0 {
		p.DispatchWidth = 4
	}
	type sInstr struct {
		desc      uarch.Desc
		dataReads []isa.RegKey
		writes    []isa.RegKey
		lat       float64
	}
	static := make([]sInstr, len(b.Instrs))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		d, err := m.Lookup(in)
		if err != nil {
			return nil, fmt.Errorf("mca: block %s instr %d (%s): %w", b.Name, i, in.Mnemonic, err)
		}
		eff := isa.InstrEffects(in, m.Dialect)
		// Like LLVM-MCA, addresses are assumed ready (L1 hit model):
		// producer chains run through register data only.
		var lat float64
		switch {
		case d.Lat > 0:
			lat = float64(d.Lat)
		case d.IsLoad:
			lat = float64(d.TotalLat)
			if p.LoadLat > 0 {
				lat = float64(p.LoadLat)
			}
		default:
			lat = float64(d.TotalLat)
		}
		if p.VecLatBias > 0 && isVecFP(in) {
			lat += float64(p.VecLatBias)
		}
		addr := map[isa.RegKey]bool{}
		for _, ops := range [][]*isa.MemOp{eff.LoadOps, eff.StoreOps} {
			for _, mo := range ops {
				if mo.Base.Valid() {
					addr[mo.Base.Key()] = true
				}
				if mo.Index.Valid() && mo.Index.Class != isa.ClassVec {
					addr[mo.Index.Key()] = true
				}
			}
		}
		si := sInstr{desc: d, writes: eff.Writes, lat: lat}
		for _, r := range eff.Reads {
			if !addr[r] {
				si.dataReads = append(si.dataReads, r)
			}
		}
		static[i] = si
	}

	// Like the llvm-mca CLI, the prediction is total cycles over 100
	// iterations divided by 100 — including pipeline ramp-up, which
	// biases every prediction slightly above steady state.
	const meas = 100
	nStatic := len(static)
	nDyn := nStatic * meas

	producer := map[isa.RegKey]int{}
	ready := make([]float64, nDyn)
	finish := make([]float64, nDyn)
	ports := portsched.NewGroup(len(m.Ports))
	rrCounter := map[uarch.PortMask]int{}
	dispatched := make([]float64, 0, nDyn*2)

	for dyn := 0; dyn < nDyn; dyn++ {
		si := dyn % nStatic
		st := &static[si]

		disp := 0.0
		slot := len(dispatched)
		if slot >= p.DispatchWidth {
			disp = dispatched[slot-p.DispatchWidth] + 1
		}
		if p.GroupBreak && dyn > 0 && static[(dyn-1)%nStatic].desc.IsBranch && slot > 0 {
			if t := dispatched[slot-1] + 1; t > disp {
				disp = t
			}
		}

		opReady := disp
		for _, r := range st.dataReads {
			if pd, ok := producer[r]; ok && ready[pd] > opReady {
				opReady = ready[pd]
			}
		}

		startMax := opReady
		for _, u := range st.desc.Uops {
			occ := u.Cycles
			if p.CeilOccupancy {
				occ = math.Ceil(occ)
			}
			var t float64
			if p.RoundRobin {
				// Static resource-group rotation: the port is chosen by
				// counter, not by availability (an immature scheduler
				// model's behaviour).
				idx := u.Ports.Indices()
				port := idx[rrCounter[u.Ports]%len(idx)]
				rrCounter[u.Ports]++
				t = ports.ScheduleOn(port, opReady, occ)
			} else {
				_, t = ports.ScheduleBest(u.Ports.Indices(), opReady, occ)
			}
			if t > startMax {
				startMax = t
			}
			dispatched = append(dispatched, disp)
		}
		if len(st.desc.Uops) == 0 {
			dispatched = append(dispatched, disp)
		}
		ready[dyn] = startMax + st.lat
		fin := ready[dyn]
		if dyn > 0 && finish[dyn-1] > fin {
			fin = finish[dyn-1]
		}
		finish[dyn] = fin

		for _, w := range st.writes {
			producer[w] = dyn
		}
	}

	total := finish[nDyn-1]
	if total <= 0 {
		total = 1
	}
	return &Result{CyclesPerIter: total / meas, Iters: meas}, nil
}

// PredictDefault runs Predict with the per-architecture default parameters.
func PredictDefault(b *isa.Block, m *uarch.Model) (*Result, error) {
	return Predict(b, m, ParamsFor(m.Key))
}

func isVecFP(in *isa.Instruction) bool {
	for _, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Reg.Class == isa.ClassVec && op.Reg.Width >= 128 {
			return true
		}
	}
	return false
}
