// Package freq models sustained CPU clock frequency for arithmetic-heavy
// code as a function of active core count and vector ISA class (paper
// Fig. 2).
//
// The model is a TDP power budget: each active core dissipates
//
//	P_core(f) = P_static + c(isa) * f^3
//
// (dynamic power scales with f*V^2 and V roughly with f), the uncore
// draws a fixed P_uncore, and the governor solves for the highest
// frequency such that
//
//	P_uncore + n * P_core(f) <= TDP,
//
// clamped to the per-ISA maximum license frequency. Wider vectors have a
// larger activity factor c, which is why AVX-512-heavy code throttles
// first on Sapphire Rapids. Grace's Neoverse V2 cores are efficient
// enough that the budget never binds: the chip holds its 3.4 GHz base
// frequency across the whole socket, matching the paper's observation of
// a 1.7x sustained-frequency advantage over SPR for AVX-512 code.
package freq

import (
	"fmt"
	"math"

	"incore/internal/isa"
	"incore/internal/uarch"
)

// Governor solves sustained frequency for one chip.
type Governor struct {
	Key   string
	Cores int
	// TDPWatts is the package power budget.
	TDPWatts float64
	// UncoreWatts is the fixed non-core power draw.
	UncoreWatts float64
	// StaticWattsPerCore is per-core leakage.
	StaticWattsPerCore float64
	// ActivityFactor maps ISA class to the cubic dynamic-power
	// coefficient c (W/GHz^3).
	ActivityFactor map[isa.Ext]float64
	// MaxFreqGHz maps ISA class to the license/turbo ceiling.
	MaxFreqGHz map[isa.Ext]float64
	// MinFreqGHz is the governor floor.
	MinFreqGHz float64
}

// For returns the calibrated governor for a registered microarchitecture
// key. The calibration comes from the machine model's node-level section
// (uarch.NodeParams.Freq), so runtime-registered machine files get
// frequency curves exactly like the built-ins.
func For(key string) (*Governor, error) {
	m, err := uarch.Get(key)
	if err != nil {
		return nil, err
	}
	return ForModel(m)
}

// ForModel builds the governor from a machine model directly — for
// models loaded from a file and not (or not registrably) registered,
// e.g. what-if variants sharing a built-in key.
func ForModel(m *uarch.Model) (*Governor, error) {
	if m.Node == nil || m.Node.Freq == nil {
		return nil, fmt.Errorf("freq: model %q carries no node-level governor parameters (machine-file \"node.freq\" section)", m.Key)
	}
	fp := m.Node.Freq
	g := &Governor{
		Key: m.Key, Cores: m.CoresPerChip, TDPWatts: fp.TDPWatts,
		UncoreWatts: fp.UncoreWatts, StaticWattsPerCore: fp.StaticWattsPerCore,
		ActivityFactor: make(map[isa.Ext]float64, len(fp.ActivityFactor)),
		MaxFreqGHz:     make(map[isa.Ext]float64, len(fp.MaxFreqGHz)),
		MinFreqGHz:     fp.MinFreqGHz,
	}
	for name, c := range fp.ActivityFactor {
		ext, err := isa.ParseExt(name)
		if err != nil {
			return nil, fmt.Errorf("freq: model %q: %w", m.Key, err)
		}
		g.ActivityFactor[ext] = c
	}
	for name, f := range fp.MaxFreqGHz {
		ext, err := isa.ParseExt(name)
		if err != nil {
			return nil, fmt.Errorf("freq: model %q: %w", m.Key, err)
		}
		g.MaxFreqGHz[ext] = f
	}
	return g, nil
}

// MustFor panics on unknown keys.
func MustFor(key string) *Governor {
	g, err := For(key)
	if err != nil {
		panic(err)
	}
	return g
}

// Sustained returns the sustained all-active-core frequency in GHz for n
// active cores running code of the given ISA class.
func (g *Governor) Sustained(n int, ext isa.Ext) (float64, error) {
	if n <= 0 || n > g.Cores {
		return 0, fmt.Errorf("freq: %s: core count %d out of range 1..%d", g.Key, n, g.Cores)
	}
	c, ok := g.ActivityFactor[ext]
	if !ok {
		return 0, fmt.Errorf("freq: %s: no activity factor for ISA %s", g.Key, ext)
	}
	fmax, ok := g.MaxFreqGHz[ext]
	if !ok {
		return 0, fmt.Errorf("freq: %s: no frequency ceiling for ISA %s", g.Key, ext)
	}
	budget := (g.TDPWatts-g.UncoreWatts)/float64(n) - g.StaticWattsPerCore
	if budget <= 0 {
		return g.MinFreqGHz, nil
	}
	f := math.Cbrt(budget / c)
	if f > fmax {
		f = fmax
	}
	if f < g.MinFreqGHz {
		f = g.MinFreqGHz
	}
	return f, nil
}

// Curve returns sustained frequency for 1..Cores active cores.
func (g *Governor) Curve(ext isa.Ext) ([]float64, error) {
	out := make([]float64, g.Cores)
	for n := 1; n <= g.Cores; n++ {
		f, err := g.Sustained(n, ext)
		if err != nil {
			return nil, err
		}
		out[n-1] = f
	}
	return out, nil
}

// PackagePower returns the package power draw at n active cores and
// frequency f for the ISA class (for tests and the power ablation).
func (g *Governor) PackagePower(n int, f float64, ext isa.Ext) float64 {
	c := g.ActivityFactor[ext]
	return g.UncoreWatts + float64(n)*(g.StaticWattsPerCore+c*f*f*f)
}
