// Package freq models sustained CPU clock frequency for arithmetic-heavy
// code as a function of active core count and vector ISA class (paper
// Fig. 2).
//
// The model is a TDP power budget: each active core dissipates
//
//	P_core(f) = P_static + c(isa) * f^3
//
// (dynamic power scales with f*V^2 and V roughly with f), the uncore
// draws a fixed P_uncore, and the governor solves for the highest
// frequency such that
//
//	P_uncore + n * P_core(f) <= TDP,
//
// clamped to the per-ISA maximum license frequency. Wider vectors have a
// larger activity factor c, which is why AVX-512-heavy code throttles
// first on Sapphire Rapids. Grace's Neoverse V2 cores are efficient
// enough that the budget never binds: the chip holds its 3.4 GHz base
// frequency across the whole socket, matching the paper's observation of
// a 1.7x sustained-frequency advantage over SPR for AVX-512 code.
package freq

import (
	"fmt"
	"math"

	"incore/internal/isa"
)

// Governor solves sustained frequency for one chip.
type Governor struct {
	Key   string
	Cores int
	// TDPWatts is the package power budget.
	TDPWatts float64
	// UncoreWatts is the fixed non-core power draw.
	UncoreWatts float64
	// StaticWattsPerCore is per-core leakage.
	StaticWattsPerCore float64
	// ActivityFactor maps ISA class to the cubic dynamic-power
	// coefficient c (W/GHz^3).
	ActivityFactor map[isa.Ext]float64
	// MaxFreqGHz maps ISA class to the license/turbo ceiling.
	MaxFreqGHz map[isa.Ext]float64
	// MinFreqGHz is the governor floor.
	MinFreqGHz float64
}

// For returns the calibrated governor for a microarchitecture key.
func For(key string) (*Governor, error) {
	switch key {
	case "goldencove":
		// Xeon Platinum 8470: single-core turbo 3.8 GHz; AVX-512
		// license caps at 3.5 GHz and decays to 2.0 GHz at 52 cores;
		// SSE/AVX decay to 3.0 GHz (Fig. 2).
		return &Governor{
			Key: key, Cores: 52, TDPWatts: 350,
			UncoreWatts: 90, StaticWattsPerCore: 0.5,
			ActivityFactor: map[isa.Ext]float64{
				isa.ExtScalar: 0.155, isa.ExtSSE: 0.1667, isa.ExtAVX: 0.1667,
				isa.ExtAVX512: 0.5625,
			},
			MaxFreqGHz: map[isa.Ext]float64{
				isa.ExtScalar: 3.8, isa.ExtSSE: 3.8, isa.ExtAVX: 3.8,
				isa.ExtAVX512: 3.5,
			},
			MinFreqGHz: 0.8,
		}, nil
	case "zen4":
		// EPYC 9684X: 3.7 GHz boost, identical behaviour across ISA
		// extensions, decaying to 3.1 GHz at 96 cores (84% of turbo).
		af := 0.0948
		return &Governor{
			Key: key, Cores: 96, TDPWatts: 400,
			UncoreWatts: 100, StaticWattsPerCore: 0.3,
			ActivityFactor: map[isa.Ext]float64{
				isa.ExtScalar: af, isa.ExtSSE: af, isa.ExtAVX: af,
				isa.ExtAVX512: af,
			},
			MaxFreqGHz: map[isa.Ext]float64{
				isa.ExtScalar: 3.7, isa.ExtSSE: 3.7, isa.ExtAVX: 3.7,
				isa.ExtAVX512: 3.7,
			},
			MinFreqGHz: 0.8,
		}, nil
	case "neoversev2":
		// Grace CPU Superchip: no frequency fixing available, but the
		// chip sustains its 3.4 GHz base for any ISA mix on all 72
		// cores — the power budget never binds.
		af := 0.06
		return &Governor{
			Key: key, Cores: 72, TDPWatts: 250,
			UncoreWatts: 50, StaticWattsPerCore: 0.2,
			ActivityFactor: map[isa.Ext]float64{
				isa.ExtScalar: af, isa.ExtNEON: af, isa.ExtSVE: af,
			},
			MaxFreqGHz: map[isa.Ext]float64{
				isa.ExtScalar: 3.4, isa.ExtNEON: 3.4, isa.ExtSVE: 3.4,
			},
			MinFreqGHz: 1.0,
		}, nil
	default:
		return nil, fmt.Errorf("freq: no governor for %q", key)
	}
}

// MustFor panics on unknown keys.
func MustFor(key string) *Governor {
	g, err := For(key)
	if err != nil {
		panic(err)
	}
	return g
}

// Sustained returns the sustained all-active-core frequency in GHz for n
// active cores running code of the given ISA class.
func (g *Governor) Sustained(n int, ext isa.Ext) (float64, error) {
	if n <= 0 || n > g.Cores {
		return 0, fmt.Errorf("freq: %s: core count %d out of range 1..%d", g.Key, n, g.Cores)
	}
	c, ok := g.ActivityFactor[ext]
	if !ok {
		return 0, fmt.Errorf("freq: %s: no activity factor for ISA %s", g.Key, ext)
	}
	fmax, ok := g.MaxFreqGHz[ext]
	if !ok {
		return 0, fmt.Errorf("freq: %s: no frequency ceiling for ISA %s", g.Key, ext)
	}
	budget := (g.TDPWatts-g.UncoreWatts)/float64(n) - g.StaticWattsPerCore
	if budget <= 0 {
		return g.MinFreqGHz, nil
	}
	f := math.Cbrt(budget / c)
	if f > fmax {
		f = fmax
	}
	if f < g.MinFreqGHz {
		f = g.MinFreqGHz
	}
	return f, nil
}

// Curve returns sustained frequency for 1..Cores active cores.
func (g *Governor) Curve(ext isa.Ext) ([]float64, error) {
	out := make([]float64, g.Cores)
	for n := 1; n <= g.Cores; n++ {
		f, err := g.Sustained(n, ext)
		if err != nil {
			return nil, err
		}
		out[n-1] = f
	}
	return out, nil
}

// PackagePower returns the package power draw at n active cores and
// frequency f for the ISA class (for tests and the power ablation).
func (g *Governor) PackagePower(n int, f float64, ext isa.Ext) float64 {
	c := g.ActivityFactor[ext]
	return g.UncoreWatts + float64(n)*(g.StaticWattsPerCore+c*f*f*f)
}
