package freq

import (
	"math"
	"testing"

	"incore/internal/isa"
)

func TestPaperEndpoints(t *testing.T) {
	// The headline numbers of Fig. 2.
	cases := []struct {
		key   string
		ext   isa.Ext
		cores int
		want  float64
		tol   float64
	}{
		{"goldencove", isa.ExtAVX512, 52, 2.0, 0.05},
		{"goldencove", isa.ExtAVX, 52, 3.0, 0.05},
		{"goldencove", isa.ExtSSE, 52, 3.0, 0.05},
		{"zen4", isa.ExtAVX512, 96, 3.1, 0.05},
		{"neoversev2", isa.ExtSVE, 72, 3.4, 0.001},
		{"neoversev2", isa.ExtNEON, 72, 3.4, 0.001},
		{"neoversev2", isa.ExtScalar, 1, 3.4, 0.001},
	}
	for _, c := range cases {
		g := MustFor(c.key)
		f, err := g.Sustained(c.cores, c.ext)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		if math.Abs(f-c.want) > c.tol {
			t.Errorf("%s %s @%d cores = %.3f GHz, want %.2f", c.key, c.ext, c.cores, f, c.want)
		}
	}
}

func TestSPRAVX512LicenseCap(t *testing.T) {
	g := MustFor("goldencove")
	f512, _ := g.Sustained(1, isa.ExtAVX512)
	favx, _ := g.Sustained(1, isa.ExtAVX)
	if !(f512 < favx) {
		t.Errorf("AVX-512 license must cap single-core frequency: %f vs %f", f512, favx)
	}
}

func TestGraceFlatAcrossSocket(t *testing.T) {
	g := MustFor("neoversev2")
	curve, err := g.Curve(isa.ExtSVE)
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range curve {
		if f != 3.4 {
			t.Fatalf("Grace must hold 3.4 GHz at %d cores, got %f", n+1, f)
		}
	}
}

func TestMonotonicNonIncreasing(t *testing.T) {
	for _, key := range []string{"goldencove", "zen4", "neoversev2"} {
		g := MustFor(key)
		for ext := range g.ActivityFactor {
			curve, err := g.Curve(ext)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(curve); i++ {
				if curve[i] > curve[i-1]+1e-12 {
					t.Errorf("%s/%s: frequency increased from %d to %d cores", key, ext, i, i+1)
				}
			}
		}
	}
}

func TestPowerBudgetRespected(t *testing.T) {
	for _, key := range []string{"goldencove", "zen4"} {
		g := MustFor(key)
		for ext := range g.ActivityFactor {
			for _, n := range []int{1, g.Cores / 2, g.Cores} {
				f, err := g.Sustained(n, ext)
				if err != nil {
					t.Fatal(err)
				}
				p := g.PackagePower(n, f, ext)
				if p > g.TDPWatts*1.001 && f > g.MinFreqGHz {
					t.Errorf("%s/%s @%d cores: %.1f W exceeds TDP %.0f", key, ext, n, p, g.TDPWatts)
				}
			}
		}
	}
}

func TestGCSvsSPRAdvantage(t *testing.T) {
	// Paper: 1.7x sustained-frequency advantage for AVX-512-heavy code.
	gcs := MustFor("neoversev2")
	spr := MustFor("goldencove")
	fg, _ := gcs.Sustained(72, isa.ExtSVE)
	fs, _ := spr.Sustained(52, isa.ExtAVX512)
	ratio := fg / fs
	if math.Abs(ratio-1.7) > 0.05 {
		t.Errorf("GCS/SPR advantage = %.2fx, want 1.7x", ratio)
	}
}

func TestErrors(t *testing.T) {
	if _, err := For("unknown"); err == nil {
		t.Error("unknown arch must error")
	}
	g := MustFor("zen4")
	if _, err := g.Sustained(0, isa.ExtAVX); err == nil {
		t.Error("zero cores must error")
	}
	if _, err := g.Sustained(1000, isa.ExtAVX); err == nil {
		t.Error("too many cores must error")
	}
	if _, err := g.Sustained(1, isa.ExtSVE); err == nil {
		t.Error("x86 governor must reject SVE")
	}
}

func TestSPRThrottleShape(t *testing.T) {
	// AVX-512 stays at the license cap for small counts, then decays.
	g := MustFor("goldencove")
	f4, _ := g.Sustained(4, isa.ExtAVX512)
	if f4 != 3.5 {
		t.Errorf("SPR AVX-512 at 4 cores = %f, want license cap 3.5", f4)
	}
	f26, _ := g.Sustained(26, isa.ExtAVX512)
	if !(f26 < 3.0) {
		t.Errorf("SPR AVX-512 at 26 cores = %f, want below 3.0", f26)
	}
}
