// Package stats provides the statistics used in the paper's evaluation:
// relative prediction error (RPE), signed-bucket histograms (Fig. 3), and
// summary aggregates.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RPE computes the paper's relative prediction error for a lower-bound
// runtime model:
//
//	RPE = (measured - predicted) / measured
//
// Positive values (prediction faster than measurement) plot right of zero
// in Fig. 3 and are the desired direction for a lower bound; values below
// -1 mean the prediction was slower than the measurement by more than a
// factor of two.
func RPE(measured, predicted float64) float64 {
	if measured == 0 {
		return 0
	}
	return (measured - predicted) / measured
}

// Histogram is a fixed-bucket histogram over RPE values, bucket width 0.1,
// clamped to [-1.0, +1.0] with overflow buckets at both ends (the paper's
// far-left bucket collects everything below -1.0).
type Histogram struct {
	// Counts[i] covers [Lo+i*Width, Lo+(i+1)*Width).
	Counts []int
	Lo     float64
	Width  float64
	// UnderflowCount collects values < Lo; OverflowCount values >= Hi.
	UnderflowCount int
	OverflowCount  int
	N              int
}

// NewHistogram builds an RPE histogram with the paper's binning.
func NewHistogram() *Histogram {
	return &Histogram{Counts: make([]int, 20), Lo: -1.0, Width: 0.1}
}

// Add inserts a value.
func (h *Histogram) Add(v float64) {
	h.N++
	idx := int(math.Floor((v - h.Lo) / h.Width))
	switch {
	case idx < 0:
		h.UnderflowCount++
	case idx >= len(h.Counts):
		h.OverflowCount++
	default:
		h.Counts[idx]++
	}
}

// AddAll inserts all values.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// BucketLabel names bucket i ("[-0.3,-0.2)").
func (h *Histogram) BucketLabel(i int) string {
	lo := h.Lo + float64(i)*h.Width
	return fmt.Sprintf("[%+.1f,%+.1f)", lo, lo+h.Width)
}

// Render draws an ASCII histogram, marking the zero line.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	max := h.UnderflowCount
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if h.OverflowCount > max {
		max = h.OverflowCount
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	bar := func(label string, c int) {
		n := c * width / max
		fmt.Fprintf(&sb, "%14s |%-*s| %d\n", label, width, strings.Repeat("#", n), c)
	}
	bar("< -1.0", h.UnderflowCount)
	for i := range h.Counts {
		if i == len(h.Counts)/2 {
			fmt.Fprintf(&sb, "%14s +%s+ (prediction faster than measurement ->)\n", "zero", strings.Repeat("-", width))
		}
		bar(h.BucketLabel(i), h.Counts[i])
	}
	bar(">= +1.0", h.OverflowCount)
	return sb.String()
}

// Summary aggregates an RPE sample the way the paper reports it.
type Summary struct {
	N int
	// RightFrac is the fraction of under-predictions (RPE >= 0).
	RightFrac float64
	// Within10 / Within20 are fractions with 0 <= RPE <= 0.1 / 0.2.
	Within10, Within20 float64
	// FarLeft counts predictions off by more than 2x (RPE < -1).
	FarLeft int
	// MeanAbs is the global (absolute) mean RPE.
	MeanAbs float64
	// MeanRight is the mean RPE over under-predictions only.
	MeanRight float64
	Median    float64
}

// Summarize computes the paper's aggregates. A small tolerance treats
// numerically-zero errors as under-predictions.
func Summarize(rpes []float64) Summary {
	const tol = 5e-3
	s := Summary{N: len(rpes)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), rpes...)
	sort.Float64s(sorted)
	s.Median = sorted[s.N/2]
	var right, w10, w20 int
	var sumAbs, sumRight float64
	var nRight int
	for _, v := range rpes {
		sumAbs += math.Abs(v)
		if v >= -tol {
			right++
			sumRight += math.Max(v, 0)
			nRight++
			if v <= 0.10 {
				w10++
			}
			if v <= 0.20 {
				w20++
			}
		}
		if v < -1 {
			s.FarLeft++
		}
	}
	s.RightFrac = float64(right) / float64(s.N)
	s.Within10 = float64(w10) / float64(s.N)
	s.Within20 = float64(w20) / float64(s.N)
	s.MeanAbs = sumAbs / float64(s.N)
	if nRight > 0 {
		s.MeanRight = sumRight / float64(nRight)
	}
	return s
}

// String formats the summary as one report line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d right=%.0f%% within+10%%=%.0f%% within+20%%=%.0f%% far-left=%d mean|RPE|=%.0f%% meanRight=%.0f%% median=%+.2f",
		s.N, 100*s.RightFrac, 100*s.Within10, 100*s.Within20, s.FarLeft, 100*s.MeanAbs, 100*s.MeanRight, s.Median)
}

// Mean returns the arithmetic mean.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(v)))
}
