package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRPESign(t *testing.T) {
	// Prediction faster than measurement (lower bound doing its job):
	// positive RPE, right of zero.
	if rpe := RPE(10, 8); rpe != 0.2 {
		t.Errorf("RPE(10,8) = %f, want 0.2", rpe)
	}
	// Over-prediction: negative.
	if rpe := RPE(10, 12); math.Abs(rpe+0.2) > 1e-12 {
		t.Errorf("RPE(10,12) = %f, want -0.2", rpe)
	}
	// Off by more than 2x: below -1.
	if rpe := RPE(10, 25); rpe >= -1 {
		t.Errorf("RPE(10,25) = %f, want < -1", rpe)
	}
	if RPE(0, 5) != 0 {
		t.Error("zero measurement must not divide by zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(-1.5) // underflow
	h.Add(-0.95)
	h.Add(-0.05)
	h.Add(0.05)
	h.Add(0.95)
	h.Add(1.5) // overflow
	if h.UnderflowCount != 1 || h.OverflowCount != 1 {
		t.Errorf("under=%d over=%d", h.UnderflowCount, h.OverflowCount)
	}
	if h.N != 6 {
		t.Errorf("N = %d", h.N)
	}
	if h.Counts[0] != 1 { // [-1.0,-0.9)
		t.Errorf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 1 { // [-0.1,0.0)
		t.Errorf("bucket 9 = %d", h.Counts[9])
	}
	if h.Counts[10] != 1 { // [0.0,0.1)
		t.Errorf("bucket 10 = %d", h.Counts[10])
	}
	if h.Counts[19] != 1 { // [0.9,1.0)
		t.Errorf("bucket 19 = %d", h.Counts[19])
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
		}
		sum := h.UnderflowCount + h.OverflowCount
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	h.AddAll([]float64{0.05, 0.05, 0.15, -0.3})
	out := h.Render(20)
	if !strings.Contains(out, "zero") {
		t.Error("render must mark the zero line")
	}
	if !strings.Contains(out, "#") {
		t.Error("render must draw bars")
	}
	if h.BucketLabel(10) != "[+0.0,+0.1)" {
		t.Errorf("BucketLabel(10) = %q", h.BucketLabel(10))
	}
}

func TestSummarize(t *testing.T) {
	// 3 right (one within 10%, two within 20%), 1 left, 1 far left.
	s := Summarize([]float64{0.05, 0.15, 0.18, -0.4, -1.3})
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.RightFrac-0.6) > 1e-9 {
		t.Errorf("RightFrac = %f, want 0.6", s.RightFrac)
	}
	if math.Abs(s.Within10-0.2) > 1e-9 {
		t.Errorf("Within10 = %f, want 0.2", s.Within10)
	}
	if math.Abs(s.Within20-0.6) > 1e-9 {
		t.Errorf("Within20 = %f, want 0.6", s.Within20)
	}
	if s.FarLeft != 1 {
		t.Errorf("FarLeft = %d, want 1", s.FarLeft)
	}
	if s.String() == "" {
		t.Error("summary string empty")
	}
}

func TestSummarizeToleratesNumericZero(t *testing.T) {
	s := Summarize([]float64{-1e-9, -0.004})
	if s.RightFrac != 1.0 {
		t.Errorf("numerically-zero errors must count as under-predictions: %f", s.RightFrac)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %f", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with nonpositive input must be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.Median != 3 {
		t.Errorf("median = %f", s.Median)
	}
}
