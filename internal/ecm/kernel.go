package ecm

import "incore/internal/kernels"

// TrafficForKernel derives per-cache-line traffic volumes from a kernel
// descriptor: each distinct load/store stream moves one 64-byte line per
// line of output (stencil neighbor accesses within a stream hit the
// cache). waFactor is 2 for write-allocate stores, 1 for NT stores or
// automatic cache-line claim.
func TrafficForKernel(k *kernels.Kernel, waFactor float64) Traffic {
	return Traffic{
		LoadBytes:  64 * float64(k.LoadStreams),
		StoreBytes: 64 * float64(k.StoreStreams),
		WAFactor:   waFactor,
	}
}

// WAFactorFor returns the write-allocate traffic factor of an
// architecture for standard stores, consistent with the Fig. 4 study:
// Grace claims lines automatically (1.0), SPR reduces RFOs by at most 25%
// near saturation (1.75 effective at scale), Genoa always allocates (2.0).
func WAFactorFor(arch string, saturated bool) float64 {
	switch arch {
	case "neoversev2":
		return 1.0
	case "goldencove":
		if saturated {
			return 1.75
		}
		return 2.0
	default:
		return 2.0
	}
}
