package ecm

import (
	"incore/internal/isa"
)

// TrafficForBlock derives per-cache-line traffic from an assembly block by
// counting its distinct memory streams: memory operands sharing base and
// index registers belong to one stream (stencil neighbor offsets hit the
// cache and cost no extra traffic). Each load stream moves one 64-byte
// line per line of work; stores are scaled by waFactor.
//
// elemsPerIter converts the per-iteration stream counts to per-cache-line
// volumes; in-place update streams (load+store on the same base) count
// once for each direction.
func TrafficForBlock(b *isa.Block, d isa.Dialect, waFactor float64) Traffic {
	type streamKey struct {
		base, index isa.RegKey
	}
	loadStreams := map[streamKey]bool{}
	storeStreams := map[streamKey]bool{}
	keyOf := func(m *isa.MemOp) streamKey {
		var k streamKey
		if m.Base.Valid() {
			k.base = m.Base.Key()
		}
		if m.Index.Valid() {
			k.index = m.Index.Key()
		}
		return k
	}
	for i := range b.Instrs {
		eff := isa.InstrEffects(&b.Instrs[i], d)
		for _, m := range eff.LoadOps {
			loadStreams[keyOf(m)] = true
		}
		for _, m := range eff.StoreOps {
			storeStreams[keyOf(m)] = true
		}
	}
	return Traffic{
		LoadBytes:  64 * float64(len(loadStreams)),
		StoreBytes: 64 * float64(len(storeStreams)),
		WAFactor:   waFactor,
	}
}
