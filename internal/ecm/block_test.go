package ecm

import (
	"testing"

	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

func TestTrafficForBlockTriad(t *testing.T) {
	m := uarch.MustGet("goldencove")
	src := `
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`
	b, err := isa.ParseBlock("triad", "goldencove", m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	tr := TrafficForBlock(b, m.Dialect, 2)
	if tr.LoadBytes != 128 {
		t.Errorf("triad load streams: %f B, want 128 (2 streams)", tr.LoadBytes)
	}
	if tr.StoreBytes != 64 {
		t.Errorf("triad store streams: %f B, want 64", tr.StoreBytes)
	}
}

func TestTrafficForBlockStencilNeighborsShareStream(t *testing.T) {
	// A 2D 5-point stencil has 4 loads but only 3 distinct streams
	// (i±1 share the center row's base/index).
	m := uarch.MustGet("goldencove")
	k, err := kernels.ByName("j2d5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.Generate(k, kernels.Config{Arch: "goldencove", Compiler: kernels.GCC, Opt: kernels.O2})
	if err != nil {
		t.Fatal(err)
	}
	tr := TrafficForBlock(b, m.Dialect, 2)
	if tr.LoadBytes != 3*64 {
		t.Errorf("j2d5 load streams: %f B, want 192 (3 streams)", tr.LoadBytes)
	}
}

func TestTrafficForBlockMatchesKernelDescriptors(t *testing.T) {
	// For every generated variant, the block-derived stream counts must
	// equal the kernel's declared stream counts (they are two routes to
	// the same quantity).
	full, err := kernels.FullSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range full {
		m := uarch.MustGet(tb.Config.Arch)
		tr := TrafficForBlock(tb.Block, m.Dialect, 2)
		wantLoads := float64(64 * tb.Kernel.LoadStreams)
		wantStores := float64(64 * tb.Kernel.StoreStreams)
		if tr.LoadBytes != wantLoads || tr.StoreBytes != wantStores {
			t.Errorf("%s: streams loads=%.0f stores=%.0f, descriptor wants %.0f/%.0f",
				tb.Block.Name, tr.LoadBytes/64, tr.StoreBytes/64, wantLoads/64, wantStores/64)
		}
	}
}
