// Package ecm implements the Execution-Cache-Memory performance model —
// the paper's stated future work ("we plan to continue these
// investigations by applying our in-core model to a node-wide performance
// model such as the Execution-Cache-Memory (ECM) model").
//
// The ECM model predicts the runtime of a steady-state streaming loop per
// unit of work (one cache line, i.e. 8 doubles) from
//
//   - T_OL:  in-core "overlapping" time — cycles the core's compute ports
//     are busy (everything that can overlap with data transfers),
//   - T_nOL: in-core "non-overlapping" time — cycles the L1 cache is
//     blocked by loads and stores,
//   - T_L1L2, T_L2L3, T_L3Mem: data-transfer times between adjacent
//     memory levels, from the traffic volume per cache line and the
//     per-level bandwidths.
//
// For the Intel-style machine model, transfers do not overlap with each
// other or with T_nOL:
//
//	T_data = T_nOL + T_L1L2 + T_L2L3 + T_L3Mem
//	T_ECM  = max(T_OL, T_data)
//
// Other microarchitectures overlap part of the transfer chain (Hofmann et
// al., "Bridging the architecture gap", 2020); this is expressed with a
// per-level overlap factor: an overlapping level contributes
// max-wise rather than additively.
//
// Multicore scaling follows the standard ECM saturation assumption:
// performance scales linearly with cores until the memory-level transfer
// time alone saturates the shared bandwidth:
//
//	n_sat = ceil(T_ECM / T_L3Mem)
//
// The in-core inputs T_OL/T_nOL are extracted from the port-pressure
// analysis of package core, wiring the paper's contribution into the
// node-level model.
package ecm

import (
	"fmt"
	"math"
	"strings"

	"incore/internal/core"
	"incore/internal/uarch"
)

// MemLevel identifies where a kernel's working set resides.
type MemLevel int

// Memory hierarchy levels.
const (
	L1 MemLevel = iota
	L2
	L3
	MEM
)

// String names the level.
func (l MemLevel) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case MEM:
		return "MEM"
	default:
		return fmt.Sprintf("MemLevel(%d)", int(l))
	}
}

// Levels holds per-core inter-level bandwidths in bytes per cycle.
type Levels struct {
	// L1L2 is the L1<->L2 bandwidth (bytes/cy).
	L1L2 float64
	// L2L3 is the L2<->L3 bandwidth (bytes/cy).
	L2L3 float64
	// L3Mem is the full-socket memory bandwidth expressed in bytes per
	// core-clock cycle (the ECM convention: a single core cannot move
	// data faster than the socket; saturation is reached when n cores'
	// combined demand hits this ceiling).
	L3Mem float64
}

// Model is a calibrated ECM machine model for one microarchitecture.
type Model struct {
	Key  string
	Core *uarch.Model
	BW   Levels
	// Overlap[i] reports whether transfer level i (0=L1L2, 1=L2L3,
	// 2=L3Mem) overlaps with the rest of the data chain (true for the
	// Arm/AMD-style machine models on some levels).
	Overlap [3]bool
	// FreqGHz is the clock the cycle counts refer to.
	FreqGHz float64
}

// For returns the ECM machine model for a registered microarchitecture
// key. The transfer-chain calibration comes from the machine model's
// node-level section (uarch.NodeParams), so runtime-registered machine
// files get node-level predictions exactly like the built-ins.
func For(key string) (*Model, error) {
	cm, err := uarch.Get(key)
	if err != nil {
		return nil, err
	}
	return ForModel(cm)
}

// ForModel builds the ECM model from a machine model directly — for
// models loaded from a file and not (or not registrably) registered,
// e.g. what-if variants sharing a built-in key.
func ForModel(cm *uarch.Model) (*Model, error) {
	np := cm.Node
	if np == nil || np.ECM == nil {
		return nil, fmt.Errorf("ecm: model %q carries no node-level ECM parameters (machine-file \"node.ecm\" section)", cm.Key)
	}
	m := &Model{Key: cm.Key, Core: cm}
	// Cycle counts refer to the guaranteed sustained (base) clock, the
	// ECM literature's convention for saturation estimates.
	m.FreqGHz = cm.BaseFreqGHz
	m.BW = Levels{L1L2: np.ECM.L1L2BytesPerCycle, L2L3: np.ECM.L2L3BytesPerCycle}
	m.Overlap = [3]bool{np.ECM.OverlapL1L2, np.ECM.OverlapL2L3, np.ECM.OverlapL3Mem}
	// The socket-bandwidth ceiling expressed in bytes per core-clock
	// cycle: a single core cannot move data faster than the socket;
	// saturation is reached when n cores' combined demand hits this.
	m.BW.L3Mem = np.MemBWGBs / m.FreqGHz
	return m, nil
}

// MustFor panics on unknown keys.
func MustFor(key string) *Model {
	m, err := For(key)
	if err != nil {
		panic(err)
	}
	return m
}

// Traffic describes per-cache-line data volumes of one kernel (64-byte
// unit of work): bytes moved between adjacent levels when the working set
// resides in the given level.
type Traffic struct {
	// LoadBytes / StoreBytes per cache line of work at the *source*
	// level (e.g. a triad moves 2 load lines + 1 store line = 192 B
	// loads, 64 B stores per line of output).
	LoadBytes, StoreBytes float64
	// WAFactor multiplies store traffic below L1 (2 = write-allocate,
	// 1 = NT stores or automatic claim).
	WAFactor float64
}

// bytesBetweenLevels returns the traffic crossing one boundary.
func (tr Traffic) bytesBetweenLevels() float64 {
	wa := tr.WAFactor
	if wa == 0 {
		wa = 2
	}
	return tr.LoadBytes + wa*tr.StoreBytes
}

// Result is one single-core ECM prediction.
type Result struct {
	Model *Model
	Level MemLevel
	// All times in cycles per cache line of work.
	TOL, TnOL            float64
	TL1L2, TL2L3, TL3Mem float64
	// TECM is the combined single-core prediction.
	TECM float64
	// NSat is the core count at which shared memory bandwidth saturates
	// (only meaningful for MEM-resident working sets).
	NSat int
}

// CyclesPerIt converts the per-cache-line prediction into cycles per loop
// iteration given elements per iteration (8 elements = 1 line).
func (r *Result) CyclesPerIt(elemsPerIter int) float64 {
	return r.TECM * float64(elemsPerIter) / 8
}

// InCoreInputs extracts T_OL and T_nOL from an in-core analysis: T_nOL is
// the maximum pressure on load/store ports, T_OL the maximum pressure on
// all other ports, both scaled to one cache line of work.
func InCoreInputs(res *core.Result, elemsPerIter int) (tOL, tnOL float64, err error) {
	if elemsPerIter <= 0 {
		return 0, 0, fmt.Errorf("ecm: elemsPerIter must be positive")
	}
	m := res.Model
	memMask := m.LoadPorts | m.StoreAGUPorts | m.StoreDataPorts | m.WideLoadPorts
	for p, load := range res.PortPressure {
		if memMask.Has(p) {
			tnOL = math.Max(tnOL, load)
		} else {
			tOL = math.Max(tOL, load)
		}
	}
	// LCD-bound kernels: the dependency chain is core time.
	tOL = math.Max(tOL, res.LCD.Cycles)
	scale := 8.0 / float64(elemsPerIter)
	return tOL * scale, tnOL * scale, nil
}

// Predict computes the ECM prediction for a kernel whose in-core times are
// tOL/tnOL (cycles per cache line) with the given traffic, for a working
// set resident in level.
func (m *Model) Predict(tOL, tnOL float64, tr Traffic, level MemLevel) *Result {
	r := &Result{Model: m, Level: level, TOL: tOL, TnOL: tnOL}
	vol := tr.bytesBetweenLevels()
	if level >= L2 {
		r.TL1L2 = vol / m.BW.L1L2
	}
	if level >= L3 {
		r.TL2L3 = vol / m.BW.L2L3
	}
	if level >= MEM {
		r.TL3Mem = vol / m.BW.L3Mem
	}
	// Combine: non-overlapping levels add to the data chain; overlapping
	// levels contribute max-wise.
	data := r.TnOL
	overlapMax := 0.0
	parts := []struct {
		t       float64
		overlap bool
	}{
		{r.TL1L2, m.Overlap[0]}, {r.TL2L3, m.Overlap[1]}, {r.TL3Mem, m.Overlap[2]},
	}
	for _, p := range parts {
		if p.overlap {
			overlapMax = math.Max(overlapMax, p.t)
		} else {
			data += p.t
		}
	}
	r.TECM = math.Max(math.Max(r.TOL, data), overlapMax)
	if level == MEM && r.TL3Mem > 0 {
		r.NSat = int(math.Ceil(r.TECM / r.TL3Mem))
	}
	return r
}

// ScalingCurve predicts node-level performance (cache lines of work per
// cycle) for 1..maxCores active cores: linear scaling until the shared
// memory bandwidth ceiling 1/T_L3Mem is reached.
func (r *Result) ScalingCurve(maxCores int) []float64 {
	out := make([]float64, maxCores)
	single := 1.0 / r.TECM
	for n := 1; n <= maxCores; n++ {
		perf := single * float64(n)
		if r.Level == MEM && r.TL3Mem > 0 {
			if ceiling := 1.0 / r.TL3Mem; perf > ceiling {
				perf = ceiling
			}
		}
		out[n-1] = perf
	}
	return out
}

// Report renders the prediction in the ECM literature's notation.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ECM %s (%s), working set in %s\n", r.Model.Key, r.Model.Core.Name, r.Level)
	fmt.Fprintf(&sb, "  { T_OL | T_nOL | T_L1L2 | T_L2L3 | T_L3Mem } = { %.1f | %.1f | %.1f | %.1f | %.1f } cy/CL\n",
		r.TOL, r.TnOL, r.TL1L2, r.TL2L3, r.TL3Mem)
	fmt.Fprintf(&sb, "  T_ECM = %.1f cy/CL", r.TECM)
	if r.NSat > 0 {
		fmt.Fprintf(&sb, ", saturates at ~%d cores", r.NSat)
	}
	sb.WriteByte('\n')
	return sb.String()
}
