package ecm

import (
	"math"
	"strings"
	"testing"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

func TestForAllArchs(t *testing.T) {
	for _, key := range []string{"goldencove", "zen4", "neoversev2"} {
		m, err := For(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if m.BW.L1L2 <= 0 || m.BW.L2L3 <= 0 || m.BW.L3Mem <= 0 {
			t.Errorf("%s: incomplete bandwidths: %+v", key, m.BW)
		}
	}
	if _, err := For("unknown"); err == nil {
		t.Error("unknown arch must error")
	}
}

func TestMemLevelString(t *testing.T) {
	for l, want := range map[MemLevel]string{L1: "L1", L2: "L2", L3: "L3", MEM: "MEM"} {
		if l.String() != want {
			t.Errorf("%d.String() = %q", l, l.String())
		}
	}
}

func TestL1ResidentIsCoreBound(t *testing.T) {
	m := MustFor("goldencove")
	tr := Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 2}
	r := m.Predict(2, 3, tr, L1)
	if r.TL1L2 != 0 || r.TL2L3 != 0 || r.TL3Mem != 0 {
		t.Error("L1-resident data must incur no transfers")
	}
	if r.TECM != 3 {
		t.Errorf("TECM = %f, want max(TOL, TnOL) = 3", r.TECM)
	}
}

func TestLevelsAddMonotonically(t *testing.T) {
	m := MustFor("goldencove")
	tr := Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 2}
	prev := 0.0
	for _, lvl := range []MemLevel{L1, L2, L3, MEM} {
		r := m.Predict(2, 3, tr, lvl)
		if r.TECM < prev {
			t.Errorf("TECM must not decrease with deeper levels: %s", lvl)
		}
		prev = r.TECM
	}
}

func TestIntelNonOverlappingChain(t *testing.T) {
	m := MustFor("goldencove")
	tr := Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 2} // 256 B
	r := m.Predict(1, 2, tr, MEM)
	wantData := 2 + 256.0/m.BW.L1L2 + 256.0/m.BW.L2L3 + 256.0/m.BW.L3Mem
	if math.Abs(r.TECM-wantData) > 1e-9 {
		t.Errorf("Intel chain TECM = %f, want %f (additive)", r.TECM, wantData)
	}
}

func TestArmOverlappingChain(t *testing.T) {
	m := MustFor("neoversev2")
	tr := Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 1}
	r := m.Predict(1, 2, tr, L3)
	// L1L2 and L2L3 overlap on V2: contribution is max-wise, so TECM is
	// well below the additive Intel-style combination.
	additive := r.TnOL + r.TL1L2 + r.TL2L3
	if !(r.TECM < additive) {
		t.Errorf("V2 transfers must overlap: TECM %f vs additive %f", r.TECM, additive)
	}
}

func TestSaturationPoint(t *testing.T) {
	m := MustFor("goldencove")
	// STREAM-triad-shaped traffic with WA: 2 load lines + 2x1 store.
	tr := Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 2}
	r := m.Predict(1, 2, tr, MEM)
	if r.NSat < 8 || r.NSat > 20 {
		t.Errorf("SPR triad saturation at %d cores, expected ~a dozen", r.NSat)
	}
	curve := r.ScalingCurve(m.Core.CoresPerChip)
	// The curve must flatten at the bandwidth ceiling.
	last := curve[len(curve)-1]
	ceiling := 1.0 / r.TL3Mem
	if math.Abs(last-ceiling) > 1e-9 {
		t.Errorf("saturated performance %f, want ceiling %f", last, ceiling)
	}
	// And must be monotone non-decreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-12 {
			t.Error("scaling curve decreased")
		}
	}
}

func TestNTStoresReduceTraffic(t *testing.T) {
	m := MustFor("zen4")
	wa := m.Predict(1, 2, Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 2}, MEM)
	nt := m.Predict(1, 2, Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 1}, MEM)
	if !(nt.TECM < wa.TECM) {
		t.Errorf("NT stores must shorten the memory time: %f vs %f", nt.TECM, wa.TECM)
	}
}

func TestInCoreInputs(t *testing.T) {
	marr := uarch.MustGet("goldencove")
	k, err := kernels.ByName("striad")
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernels.Config{Arch: "goldencove", Compiler: kernels.GCC, Opt: kernels.O3}
	b, err := kernels.Generate(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New().Analyze(b, marr)
	if err != nil {
		t.Fatal(err)
	}
	elems := kernels.ElemsPerIter(k, cfg)
	tOL, tnOL, err := InCoreInputs(res, elems)
	if err != nil {
		t.Fatal(err)
	}
	if tnOL <= 0 {
		t.Error("a streaming kernel must have non-zero L1 time")
	}
	if tOL < 0 {
		t.Error("negative core time")
	}
	// Triad at 8 elems/CL: 2 loads + 1 store per 8 elements; the store
	// dominates the L1 time on GLC (2 store-data µ-ops per zmm store).
	if tnOL > 6 || tnOL < 0.5 {
		t.Errorf("tnOL = %f cy/CL out of plausible range", tnOL)
	}
	if _, _, err := InCoreInputs(res, 0); err == nil {
		t.Error("zero elems must error")
	}
}

func TestTrafficForKernel(t *testing.T) {
	k, _ := kernels.ByName("striad")
	tr := TrafficForKernel(k, 2)
	if tr.LoadBytes != 128 || tr.StoreBytes != 64 || tr.WAFactor != 2 {
		t.Errorf("striad traffic: %+v", tr)
	}
	pi, _ := kernels.ByName("pi")
	trPi := TrafficForKernel(pi, 2)
	if trPi.LoadBytes != 0 || trPi.StoreBytes != 0 {
		t.Errorf("pi must move no data: %+v", trPi)
	}
}

func TestWAFactorFor(t *testing.T) {
	if WAFactorFor("neoversev2", true) != 1.0 {
		t.Error("Grace claims lines: factor 1")
	}
	if WAFactorFor("goldencove", true) != 1.75 {
		t.Error("saturated SPR: factor 1.75")
	}
	if WAFactorFor("goldencove", false) != 2.0 {
		t.Error("unsaturated SPR: factor 2")
	}
	if WAFactorFor("zen4", true) != 2.0 {
		t.Error("Genoa always allocates")
	}
}

func TestCyclesPerIt(t *testing.T) {
	m := MustFor("zen4")
	r := m.Predict(4, 2, Traffic{LoadBytes: 64, WAFactor: 1}, L1)
	// 4 cy/CL at 8 elems/CL -> 2 cy for a 4-element iteration.
	if got := r.CyclesPerIt(4); math.Abs(got-2) > 1e-12 {
		t.Errorf("CyclesPerIt = %f, want 2", got)
	}
}

func TestReport(t *testing.T) {
	m := MustFor("neoversev2")
	r := m.Predict(2, 1, Traffic{LoadBytes: 128, StoreBytes: 64, WAFactor: 1}, MEM)
	out := r.Report()
	for _, want := range []string{"T_OL", "T_ECM", "MEM", "saturates"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestGraceVsGenoaStoreKernels: with standard stores, Grace's WA evasion
// halves the memory traffic of a store-dominated kernel relative to
// Genoa — the node-level consequence of Fig. 4 expressed in ECM terms.
func TestGraceVsGenoaStoreKernels(t *testing.T) {
	init, _ := kernels.ByName("init")
	gcs := MustFor("neoversev2")
	gen := MustFor("zen4")
	rG := gcs.Predict(0.5, 1, TrafficForKernel(init, WAFactorFor("neoversev2", true)), MEM)
	rZ := gen.Predict(0.5, 1, TrafficForKernel(init, WAFactorFor("zen4", true)), MEM)
	if !(rG.TL3Mem < rZ.TL3Mem) {
		t.Errorf("Grace store traffic must be lower: %f vs %f", rG.TL3Mem, rZ.TL3Mem)
	}
	ratio := (rZ.TL3Mem / gen.BW.L3Mem * gen.BW.L3Mem) / (rG.TL3Mem / gcs.BW.L3Mem * gcs.BW.L3Mem)
	_ = ratio
	// Traffic volumes: 128 B vs 64 B per line.
	if rZ.TL3Mem*gen.BW.L3Mem != 128 || rG.TL3Mem*gcs.BW.L3Mem != 64 {
		t.Errorf("volumes: genoa %f B, grace %f B", rZ.TL3Mem*gen.BW.L3Mem, rG.TL3Mem*gcs.BW.L3Mem)
	}
}
