// Package profiling wires the -cpuprofile/-memprofile flags of the
// command-line tools (cmd/repro, cmd/serve) to runtime/pprof, so perf
// work on the analysis pipeline can show where cycles and allocations go:
//
//	repro -exp fig3 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes an allocation (heap)
// profile to memPath (when non-empty). The stop function is idempotent
// and safe to call on error paths; profile-write failures are reported on
// stderr rather than masking the command's own exit status.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	done := false
	stop := func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: close cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			runtime.GC() // materialize a settled heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: write heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: close heap profile: %v\n", err)
			}
		}
	}
	return stop, nil
}
