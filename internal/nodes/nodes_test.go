package nodes

import (
	"math"
	"testing"
)

func TestThreeNodes(t *testing.T) {
	if len(Nodes) != 3 {
		t.Fatalf("want 3 nodes, got %d", len(Nodes))
	}
	for _, key := range []string{"neoversev2", "goldencove", "zen4"} {
		n, err := Get(key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if n.Key != key {
			t.Errorf("key mismatch: %q", n.Key)
		}
	}
	if _, err := Get("unknown"); err == nil {
		t.Error("unknown node must error")
	}
}

func TestTableIValues(t *testing.T) {
	// Core counts, frequencies, TDP — Table I verbatim.
	cases := []struct {
		key       string
		cores     int
		base, max float64
		tdp       float64
		l3MB      int64
		memGB     int
		numa      int
	}{
		{"neoversev2", 72, 3.4, 3.4, 250, 114, 240, 1},
		{"goldencove", 52, 2.0, 3.8, 350, 105, 512, 4},
		{"zen4", 96, 2.55, 3.7, 400, 1152, 384, 1},
	}
	for _, c := range cases {
		n := MustGet(c.key)
		if n.Cores != c.cores || n.BaseFreqGHz != c.base || n.MaxFreqGHz != c.max ||
			n.TDPWatts != c.tdp || n.L3Bytes != c.l3MB<<20 || n.MemGB != c.memGB ||
			n.CCNUMADomains != c.numa {
			t.Errorf("%s Table I mismatch: %+v", c.key, n)
		}
	}
}

func TestTheoreticalBandwidth(t *testing.T) {
	// Paper: 546 / 307 / 461 GB/s.
	want := map[string]float64{"neoversev2": 546, "goldencove": 307, "zen4": 461}
	for key, w := range want {
		n := MustGet(key)
		if got := n.TheoreticalBandwidthGBs(); math.Abs(got-w) > 0.01*w {
			t.Errorf("%s theoretical BW = %.1f, want %.0f", key, got, w)
		}
	}
}

func TestTheoreticalPeak(t *testing.T) {
	// Paper: 3.92 / 6.32 / 8.52 TFlop/s.
	want := map[string]float64{"neoversev2": 3.92, "goldencove": 6.32, "zen4": 8.52}
	for key, w := range want {
		n := MustGet(key)
		if got := n.TheoreticalPeakTFs(); math.Abs(got-w) > 0.02*w {
			t.Errorf("%s theoretical peak = %.2f TF, want %.2f", key, got, w)
		}
	}
}

func TestFlopsPerCycle(t *testing.T) {
	// GCS: 4 FMA x 2 lanes x 2 = 16; SPR: 2 x 8 x 2 = 32;
	// Genoa: 1 x 8 x 2 + 8 (ADD pipes) = 24.
	want := map[string]int{"neoversev2": 16, "goldencove": 32, "zen4": 24}
	for key, w := range want {
		if got := MustGet(key).FlopsPerCycle(); got != w {
			t.Errorf("%s flops/cycle = %d, want %d", key, got, w)
		}
	}
}

func TestAchievablePeak(t *testing.T) {
	n := MustGet("goldencove")
	// At the sustained AVX-512 frequency of 2.0 GHz.
	got := n.AchievablePeakTFs(2.0)
	if math.Abs(got-3.33) > 0.05 {
		t.Errorf("SPR achievable peak at 2.0 GHz = %.2f, want ~3.33", got)
	}
}

func TestStreamEfficiencyRanges(t *testing.T) {
	// Genoa has the worst efficiency (paper: 78%), SPR the best (90%).
	gcs := MustGet("neoversev2").StreamEfficiency
	spr := MustGet("goldencove").StreamEfficiency
	gen := MustGet("zen4").StreamEfficiency
	if !(gen < gcs && gen < spr) {
		t.Errorf("Genoa must have the lowest efficiency: %f %f %f", gcs, spr, gen)
	}
}

func TestString(t *testing.T) {
	s := MustGet("zen4").String()
	if s == "" {
		t.Error("String must not be empty")
	}
}
