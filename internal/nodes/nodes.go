// Package nodes describes the paper's three test systems at node level
// (Table I): socket/core counts, frequencies, cache sizes, memory
// configuration, and derived peak numbers.
package nodes

import "fmt"

// Node describes one test system.
type Node struct {
	// Key matches the uarch model key.
	Key string
	// Marketing and microarchitecture names.
	Name, Uarch, Vendor string

	Cores          int     // per chip
	BaseFreqGHz    float64 // guaranteed sustained
	MaxFreqGHz     float64 // single-core turbo
	SIMDBits       int
	FMAUnitsPerCyc int // FMA instructions per cycle per core
	// ExtraAddFlopsPerCyc counts additional flops/cycle from dedicated
	// FP-ADD pipes that can run concurrently with the FMA pipes (Zen 4:
	// two 256-bit FADD pipes = 8 DP flops/cycle; vendors include these
	// in their theoretical peak).
	ExtraAddFlopsPerCyc int
	TDPWatts            float64

	// Cache sizes in bytes (L1D/L2 per core, L3 per chip).
	L1Bytes, L2Bytes, L3Bytes int64
	CacheLineBytes            int

	// Memory system.
	MemType            string
	MemGB              int
	MemChannels        int
	MemFreqMTs         float64 // transfers/s per channel (millions)
	MemBusBytes        int     // bytes per channel per transfer
	CCNUMADomains      int
	CoresPerNUMADomain int

	// StreamEfficiency is the fraction of theoretical bandwidth the
	// memory subsystem sustains for streaming access (controller,
	// refresh, and page-policy losses); calibrated against Table I.
	StreamEfficiency float64
}

// TheoreticalBandwidthGBs returns channels x rate x width in GB/s.
func (n *Node) TheoreticalBandwidthGBs() float64 {
	return float64(n.MemChannels) * n.MemFreqMTs * 1e6 * float64(n.MemBusBytes) / 1e9
}

// FlopsPerCycle returns DP flops per cycle per core counted the way the
// vendors do (FMA pipes x lanes x 2, plus concurrent ADD pipes).
func (n *Node) FlopsPerCycle() int {
	lanes := n.SIMDBits / 64
	return lanes*n.FMAUnitsPerCyc*2 + n.ExtraAddFlopsPerCyc
}

// TheoreticalPeakTFs returns the chip's theoretical double-precision peak
// in TFlop/s at maximum frequency.
func (n *Node) TheoreticalPeakTFs() float64 {
	return float64(n.Cores) * float64(n.FlopsPerCycle()) * n.MaxFreqGHz * 1e9 / 1e12
}

// AchievablePeakTFs returns the peak at the sustained all-core frequency
// for the widest vector ISA (see internal/freq for the governor model).
func (n *Node) AchievablePeakTFs(sustainedGHz float64) float64 {
	lanes := n.SIMDBits / 64
	return float64(n.Cores) * float64(lanes*n.FMAUnitsPerCyc*2) * sustainedGHz * 1e9 / 1e12
}

// String is a short identifier.
func (n *Node) String() string { return fmt.Sprintf("%s (%s)", n.Name, n.Uarch) }

// Nodes lists the paper's three systems, Table I.
var Nodes = []Node{
	{
		Key: "neoversev2", Name: "Nvidia Grace CPU Superchip", Uarch: "Neoverse V2", Vendor: "Nvidia",
		Cores: 72, BaseFreqGHz: 3.4, MaxFreqGHz: 3.4,
		SIMDBits: 128, FMAUnitsPerCyc: 4, TDPWatts: 250,
		L1Bytes: 64 << 10, L2Bytes: 1 << 20, L3Bytes: 114 << 20, CacheLineBytes: 64,
		MemType: "LPDDR5X", MemGB: 240, MemChannels: 32, MemFreqMTs: 8532 / 4, MemBusBytes: 8,
		CCNUMADomains: 1, CoresPerNUMADomain: 72,
		StreamEfficiency: 0.855,
	},
	{
		Key: "goldencove", Name: "Intel Xeon Platinum 8470", Uarch: "Golden Cove", Vendor: "Intel",
		Cores: 52, BaseFreqGHz: 2.0, MaxFreqGHz: 3.8,
		SIMDBits: 512, FMAUnitsPerCyc: 2, TDPWatts: 350,
		L1Bytes: 48 << 10, L2Bytes: 2 << 20, L3Bytes: 105 << 20, CacheLineBytes: 64,
		MemType: "DDR5", MemGB: 512, MemChannels: 8, MemFreqMTs: 4800, MemBusBytes: 8,
		CCNUMADomains: 4, CoresPerNUMADomain: 13,
		// Raw controller efficiency; the ~10% residual NT-store RFO
		// traffic (see memsim) brings the useful triad bandwidth to the
		// paper's 273 GB/s (89% of pin limit).
		StreamEfficiency: 0.92,
	},
	{
		Key: "zen4", Name: "AMD EPYC 9684X", Uarch: "Zen 4", Vendor: "AMD",
		Cores: 96, BaseFreqGHz: 2.55, MaxFreqGHz: 3.7,
		SIMDBits: 512, FMAUnitsPerCyc: 1, ExtraAddFlopsPerCyc: 8, TDPWatts: 400,
		L1Bytes: 32 << 10, L2Bytes: 1 << 20, L3Bytes: 1152 << 20, CacheLineBytes: 64,
		MemType: "DDR5", MemGB: 384, MemChannels: 12, MemFreqMTs: 4800, MemBusBytes: 8,
		CCNUMADomains: 1, CoresPerNUMADomain: 96,
		StreamEfficiency: 0.781,
	},
}

// Get returns the node for a uarch key.
func Get(key string) (*Node, error) {
	for i := range Nodes {
		if Nodes[i].Key == key {
			return &Nodes[i], nil
		}
	}
	return nil, fmt.Errorf("nodes: unknown node %q", key)
}

// MustGet panics on unknown keys.
func MustGet(key string) *Node {
	n, err := Get(key)
	if err != nil {
		panic(err)
	}
	return n
}
