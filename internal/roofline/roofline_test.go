package roofline

import (
	"math"
	"strings"
	"testing"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

func TestForAllArchs(t *testing.T) {
	for _, key := range []string{"goldencove", "zen4", "neoversev2"} {
		m, err := For(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if m.BWGBs <= 0 || len(m.Ceilings) < 2 {
			t.Errorf("%s roofline incomplete", key)
		}
		// Sustained ceiling must not exceed nominal.
		if m.Ceilings[1].GFlops > m.Ceilings[0].GFlops {
			t.Errorf("%s: sustained ceiling above nominal", key)
		}
	}
	if _, err := For("unknown"); err == nil {
		t.Error("unknown arch must error")
	}
}

func TestSPRSustainedDrop(t *testing.T) {
	// SPR loses ~47% of its nominal peak to AVX-512 throttling; Grace
	// loses nothing.
	spr := MustFor("goldencove")
	drop := spr.Ceilings[1].GFlops / spr.Ceilings[0].GFlops
	if drop > 0.60 || drop < 0.45 {
		t.Errorf("SPR sustained/nominal = %.2f, want ~0.53", drop)
	}
	gcs := MustFor("neoversev2")
	if math.Abs(gcs.Ceilings[1].GFlops-gcs.Ceilings[0].GFlops) > 1 {
		t.Error("Grace must sustain its nominal peak")
	}
}

func TestBound(t *testing.T) {
	m := MustFor("zen4")
	c := m.Ceilings[1]
	// Very low intensity: memory-bound.
	g, memBound := m.Bound(0.01, c)
	if !memBound {
		t.Error("low intensity must be memory-bound")
	}
	if math.Abs(g-0.01*m.BWGBs) > 1e-9 {
		t.Errorf("memory-bound perf = %f", g)
	}
	// Very high intensity: compute-bound at the ceiling.
	g, memBound = m.Bound(1000, c)
	if memBound || g != c.GFlops {
		t.Errorf("high intensity must hit the ceiling: %f", g)
	}
}

func TestKneeConsistency(t *testing.T) {
	m := MustFor("goldencove")
	c := m.Ceilings[1]
	knee := m.Knee(c)
	// At the knee both roofs agree.
	gMem, _ := m.Bound(knee*0.999, c)
	gCpu, _ := m.Bound(knee*1.001, c)
	if math.Abs(gMem-gCpu) > 0.01*c.GFlops {
		t.Errorf("roofs disagree at the knee: %f vs %f", gMem, gCpu)
	}
}

func TestInCoreCeiling(t *testing.T) {
	m := MustFor("goldencove")
	um := uarch.MustGet("goldencove")
	k, _ := kernels.ByName("striad")
	cfg := kernels.Config{Arch: "goldencove", Compiler: kernels.GCC, Opt: kernels.O3}
	b, err := kernels.Generate(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New().Analyze(b, um)
	if err != nil {
		t.Fatal(err)
	}
	elems := kernels.ElemsPerIter(k, cfg)
	flopsPerIter := 2 * elems // one FMA per element
	c := m.AddInCoreCeiling("striad", res, flopsPerIter, 2.0)
	if c.GFlops <= 0 {
		t.Error("in-core ceiling must be positive")
	}
	// A triad cannot beat the nominal peak.
	if c.GFlops > m.Ceilings[0].GFlops {
		t.Errorf("in-core ceiling %f above nominal %f", c.GFlops, m.Ceilings[0].GFlops)
	}
	if len(m.Ceilings) != 3 {
		t.Error("ceiling not appended")
	}
}

func TestRender(t *testing.T) {
	m := MustFor("neoversev2")
	out := m.Render()
	if !strings.Contains(out, "knee") || !strings.Contains(out, "GFlop/s") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
