// Package roofline implements the Roofline model (Williams et al., 2009)
// on top of the repository's machine models, as motivated in the paper's
// introduction: the in-core model provides a "more realistic horizontal
// ceiling" than the nominal peak.
//
// Performance bound for a kernel with arithmetic intensity I (flops per
// byte of memory traffic):
//
//	P(I) = min(P_ceiling, I * BW)
//
// where P_ceiling is either the nominal peak at the sustained frequency
// (package freq) or an in-core ceiling derived from the analyzer's
// throughput bound for the actual loop body.
package roofline

import (
	"fmt"
	"strings"

	"incore/internal/core"
	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/uarch"
)

// Ceiling is one horizontal line of the Roofline plot.
type Ceiling struct {
	Label     string
	GFlops    float64
	PerCore   bool
	Sustained bool
}

// Model is a calibrated Roofline for one node.
type Model struct {
	Key      string
	Core     *uarch.Model
	BWGBs    float64 // measured socket bandwidth
	Ceilings []Ceiling
}

// For builds the node Roofline for a registered microarchitecture key,
// using the sustained frequency of the widest vector ISA for the
// "realistic" ceiling. The calibration comes from the machine model's
// node-level section, so runtime-registered machine files get rooflines
// exactly like the built-ins.
func For(key string) (*Model, error) {
	cm, err := uarch.Get(key)
	if err != nil {
		return nil, err
	}
	return ForModel(cm)
}

// ForModel builds the Roofline from a machine model directly — for
// models loaded from a file and not (or not registrably) registered,
// e.g. what-if variants sharing a built-in key.
func ForModel(cm *uarch.Model) (*Model, error) {
	np := cm.Node
	if np == nil || np.MemBWGBs <= 0 || np.FlopsPerCycle <= 0 {
		return nil, fmt.Errorf("roofline: model %q carries no node-level bandwidth/flops parameters (machine-file \"node\" section)", cm.Key)
	}
	g, err := freq.ForModel(cm)
	if err != nil {
		return nil, err
	}
	ext, err := widestExt(np.Freq)
	if err != nil {
		return nil, fmt.Errorf("roofline: model %q: %w", cm.Key, err)
	}
	cores := cm.CoresPerChip
	fSust, err := g.Sustained(cores, ext)
	if err != nil {
		return nil, err
	}
	m := &Model{Key: cm.Key, Core: cm, BWGBs: np.MemBWGBs}
	nominal := float64(cores) * float64(np.FlopsPerCycle) * cm.MaxFreqGHz * 1e9 / 1e12 * 1e3
	sustained := float64(cores) * float64(np.FlopsPerCycle) * fSust
	if sustained > nominal {
		sustained = nominal
	}
	m.Ceilings = []Ceiling{
		{Label: "nominal peak (turbo)", GFlops: nominal},
		{Label: fmt.Sprintf("sustained peak (%.2f GHz under vector load)", fSust), GFlops: sustained, Sustained: true},
	}
	return m, nil
}

// widestExt resolves the ISA class the sustained ceiling is evaluated
// at: the machine file's widest_vector_ext when named, else the widest
// (by vector width, then name for determinism) extension the governor
// carries an activity factor for — so machine files that skip the
// optional field still get a roofline.
func widestExt(fp *uarch.FreqParams) (isa.Ext, error) {
	if fp.WidestVectorExt != "" {
		return isa.ParseExt(fp.WidestVectorExt)
	}
	best, bestName := isa.Ext(0), ""
	for name := range fp.ActivityFactor {
		ext, err := isa.ParseExt(name)
		if err != nil {
			return 0, err
		}
		if bestName == "" || ext.VectorBits() > best.VectorBits() ||
			(ext.VectorBits() == best.VectorBits() && name < bestName) {
			best, bestName = ext, name
		}
	}
	if bestName == "" {
		return 0, fmt.Errorf("governor names no ISA extensions")
	}
	return best, nil
}

// MustFor panics on unknown keys.
func MustFor(key string) *Model {
	m, err := For(key)
	if err != nil {
		panic(err)
	}
	return m
}

// AddInCoreCeiling derives a kernel-specific ceiling from an in-core
// analysis: the analyzer's cycle-per-iteration bound, the kernel's flops
// per iteration, and the sustained frequency give the maximum achievable
// GFlop/s for that loop body.
func (m *Model) AddInCoreCeiling(label string, res *core.Result, flopsPerIter int, sustainedGHz float64) Ceiling {
	perCore := float64(flopsPerIter) / res.Prediction * sustainedGHz
	c := Ceiling{
		Label:   fmt.Sprintf("in-core ceiling: %s", label),
		GFlops:  perCore * float64(m.Core.CoresPerChip),
		PerCore: false,
	}
	m.Ceilings = append(m.Ceilings, c)
	return c
}

// Bound evaluates the Roofline at arithmetic intensity I (flops/byte)
// against a given ceiling, returning the predicted GFlop/s and whether
// the kernel is memory-bound.
func (m *Model) Bound(intensity float64, ceiling Ceiling) (gflops float64, memBound bool) {
	memRoof := intensity * m.BWGBs
	if memRoof < ceiling.GFlops {
		return memRoof, true
	}
	return ceiling.GFlops, false
}

// Knee returns the arithmetic intensity at which a ceiling meets the
// bandwidth roof (the machine-balance point).
func (m *Model) Knee(ceiling Ceiling) float64 {
	if m.BWGBs == 0 {
		return 0
	}
	return ceiling.GFlops / m.BWGBs
}

// Render draws the rooflines and knees as text.
func (m *Model) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Roofline %s: memory roof %.0f GB/s\n", m.Key, m.BWGBs)
	for _, c := range m.Ceilings {
		fmt.Fprintf(&sb, "  %-55s %8.0f GFlop/s (knee at %.2f flop/B)\n",
			c.Label, c.GFlops, m.Knee(c))
	}
	return sb.String()
}
