// Package roofline implements the Roofline model (Williams et al., 2009)
// on top of the repository's machine models, as motivated in the paper's
// introduction: the in-core model provides a "more realistic horizontal
// ceiling" than the nominal peak.
//
// Performance bound for a kernel with arithmetic intensity I (flops per
// byte of memory traffic):
//
//	P(I) = min(P_ceiling, I * BW)
//
// where P_ceiling is either the nominal peak at the sustained frequency
// (package freq) or an in-core ceiling derived from the analyzer's
// throughput bound for the actual loop body.
package roofline

import (
	"fmt"
	"strings"

	"incore/internal/core"
	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/nodes"
)

// Ceiling is one horizontal line of the Roofline plot.
type Ceiling struct {
	Label     string
	GFlops    float64
	PerCore   bool
	Sustained bool
}

// Model is a calibrated Roofline for one node.
type Model struct {
	Key      string
	Node     *nodes.Node
	BWGBs    float64 // measured socket bandwidth
	Ceilings []Ceiling
}

// For builds the node Roofline using the sustained frequency of the
// widest vector ISA for the "realistic" ceiling.
func For(key string) (*Model, error) {
	n, err := nodes.Get(key)
	if err != nil {
		return nil, err
	}
	g, err := freq.For(key)
	if err != nil {
		return nil, err
	}
	ext := isa.ExtAVX512
	if key == "neoversev2" {
		ext = isa.ExtSVE
	}
	fSust, err := g.Sustained(n.Cores, ext)
	if err != nil {
		return nil, err
	}
	m := &Model{Key: key, Node: n, BWGBs: n.TheoreticalBandwidthGBs() * n.StreamEfficiency}
	nominal := n.TheoreticalPeakTFs() * 1e3
	sustained := float64(n.Cores) * float64(n.FlopsPerCycle()) * fSust
	if sustained > nominal {
		sustained = nominal
	}
	m.Ceilings = []Ceiling{
		{Label: "nominal peak (turbo)", GFlops: nominal},
		{Label: fmt.Sprintf("sustained peak (%.2f GHz under vector load)", fSust), GFlops: sustained, Sustained: true},
	}
	return m, nil
}

// MustFor panics on unknown keys.
func MustFor(key string) *Model {
	m, err := For(key)
	if err != nil {
		panic(err)
	}
	return m
}

// AddInCoreCeiling derives a kernel-specific ceiling from an in-core
// analysis: the analyzer's cycle-per-iteration bound, the kernel's flops
// per iteration, and the sustained frequency give the maximum achievable
// GFlop/s for that loop body.
func (m *Model) AddInCoreCeiling(label string, res *core.Result, flopsPerIter int, sustainedGHz float64) Ceiling {
	perCore := float64(flopsPerIter) / res.Prediction * sustainedGHz
	c := Ceiling{
		Label:   fmt.Sprintf("in-core ceiling: %s", label),
		GFlops:  perCore * float64(m.Node.Cores),
		PerCore: false,
	}
	m.Ceilings = append(m.Ceilings, c)
	return c
}

// Bound evaluates the Roofline at arithmetic intensity I (flops/byte)
// against a given ceiling, returning the predicted GFlop/s and whether
// the kernel is memory-bound.
func (m *Model) Bound(intensity float64, ceiling Ceiling) (gflops float64, memBound bool) {
	memRoof := intensity * m.BWGBs
	if memRoof < ceiling.GFlops {
		return memRoof, true
	}
	return ceiling.GFlops, false
}

// Knee returns the arithmetic intensity at which a ceiling meets the
// bandwidth roof (the machine-balance point).
func (m *Model) Knee(ceiling Ceiling) float64 {
	if m.BWGBs == 0 {
		return 0
	}
	return ceiling.GFlops / m.BWGBs
}

// Render draws the rooflines and knees as text.
func (m *Model) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Roofline %s: memory roof %.0f GB/s\n", m.Key, m.BWGBs)
	for _, c := range m.Ceilings {
		fmt.Fprintf(&sb, "  %-55s %8.0f GFlop/s (knee at %.2f flop/B)\n",
			c.Label, c.GFlops, m.Knee(c))
	}
	return sb.String()
}
