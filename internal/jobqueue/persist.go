package jobqueue

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// The durable layer: one file per job, <dir>/<id>.json, written
// atomically (same-directory temp file + rename, like store entries) so
// a reader — including a restarted process — never observes a partial
// record. Records are wrapped in a version- and schema-stamped envelope;
// anything that fails the stamp, the ID cross-check, or decoding
// self-evicts on load exactly like a damaged store entry.

// jobEnvelopeVersion identifies the on-disk record layout itself,
// independent of the caller's payload schema.
const jobEnvelopeVersion = 1

// jobEnvelope is the on-disk record format. ID is stored redundantly
// with the filename so a renamed or copied record cannot impersonate a
// different job.
type jobEnvelope struct {
	V      int    `json:"v"`
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Job    *job   `json:"job"`
}

// persistRetries and persistBackoff bound the checkpoint retry loop: a
// transient write failure (ENOSPC burst, a slow filesystem hiccup) gets
// a few quick re-attempts before the checkpoint is surrendered.
const (
	persistRetries = 2
	persistBackoff = 5 * time.Millisecond
)

// persistLocked checkpoints one job; q.mu must be held. Running items
// are recorded as pending — a checkpoint never claims unfinished work.
// Failed writes are retried with a short backoff (the lock is held, but
// the slow path runs only when the disk is already failing); a
// checkpoint that still cannot land is counted and recorded as the last
// persist error (surfaced on /healthz), not returned: a queue that
// cannot persist degrades to a memory-only queue, it does not stop
// serving.
func (q *Queue) persistLocked(j *job) {
	if q.dir == "" {
		return
	}
	disk := *j
	disk.Items = make([]item, len(j.Items))
	copy(disk.Items, j.Items)
	for i := range disk.Items {
		if disk.Items[i].State == ItemRunning {
			disk.Items[i].State = ItemPending
		}
	}
	data, err := json.Marshal(jobEnvelope{V: jobEnvelopeVersion, Schema: q.schema, ID: j.ID, Job: &disk})
	if err != nil {
		q.recordPersistFailure(err)
		return
	}
	path := filepath.Join(q.dir, j.ID+".json")
	for attempt := 0; ; attempt++ {
		err = writeAtomic(path, data)
		if err == nil {
			return
		}
		if attempt >= persistRetries {
			break
		}
		q.persistRetried++
		time.Sleep(persistBackoff << uint(attempt))
	}
	q.recordPersistFailure(err)
}

// recordPersistFailure counts one surrendered checkpoint and pins its
// message and time for /healthz; q.mu must be held.
func (q *Queue) recordPersistFailure(err error) {
	q.persistErrors++
	q.lastPersistErr = err.Error()
	q.lastPersistAt = time.Now()
}

// load restores every record under q.dir, evicting damaged or stale
// files, and rebuilds submission order from the persisted sequence
// numbers. Only called from Open, before workers exist.
func (q *Queue) load() error {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return err
	}
	var jobs []*job
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		// A leftover temp file marks a write torn by a kill between
		// CreateTemp and rename; the rename never happened, so the
		// record it was replacing is intact. Remove the debris.
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(q.dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(q.dir, name)
		j, ok := q.decodeRecord(path, strings.TrimSuffix(name, ".json"))
		if !ok {
			os.Remove(path)
			q.evicted++
			continue
		}
		jobs = append(jobs, j)
	}
	sortJobsBySeq(jobs)
	for _, j := range jobs {
		// Items persisted mid-execution come back pending; the envelope
		// never stores "running", but a defensive reset keeps a
		// hand-edited record from wedging an item forever.
		for i := range j.Items {
			if j.Items[i].State == ItemRunning {
				j.Items[i].State = ItemPending
			}
		}
		q.jobs[j.ID] = j
		q.order = append(q.order, j.ID)
		if j.Seq >= q.nextSeq {
			q.nextSeq = j.Seq + 1
		}
	}
	return nil
}

// decodeRecord reads and validates one record file. A record is usable
// only if the envelope stamp, schema, and ID (envelope, filename, and
// recomputed content hash) all agree — the recomputed hash check means
// a record whose item payloads were tampered with or truncated cannot
// resurface under its original identity.
func (q *Queue) decodeRecord(path, wantID string) (*job, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e jobEnvelope
	if err := json.Unmarshal(data, &e); err != nil ||
		e.V != jobEnvelopeVersion || e.Schema != q.schema ||
		e.Job == nil || e.ID != wantID || e.Job.ID != wantID {
		return nil, false
	}
	reqs := make([]json.RawMessage, len(e.Job.Items))
	for i := range e.Job.Items {
		if len(e.Job.Items[i].Request) == 0 || !validItemState(e.Job.Items[i].State) {
			return nil, false
		}
		reqs[i] = e.Job.Items[i].Request
	}
	if IDFor(reqs) != wantID {
		return nil, false
	}
	return e.Job, true
}

func validItemState(s ItemState) bool {
	switch s {
	case ItemPending, ItemRunning, ItemDone, ItemError, ItemCancelled:
		return true
	}
	return false
}

// writeAtomic writes data to path via a same-directory temp file and
// rename (the same discipline as store.writeAtomic).
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
