// Package jobqueue is the durable submit→poll batch queue behind the
// serve tier's /v1/jobs API: a submitted job is a list of opaque request
// payloads drained item by item through a caller-supplied Runner by N
// workers, with every item outcome checkpointed to disk as it lands —
// the fetch→process→persist→dequeue loop, made restartable.
//
// Durability contract:
//
//   - One JSON file per job under the queue directory, wrapped in the
//     same schema-stamped envelope discipline as internal/store entries:
//     a record whose stamp, ID, or shape does not check out self-evicts
//     on load (deleted and counted), so a damaged queue directory
//     degrades to lost jobs, never to wrong results or a crash loop.
//   - Item completions are checkpointed eagerly (one atomic rewrite per
//     completion), so a SIGKILL loses at most the items in flight at
//     that instant. On reopen, completed items keep their results and
//     only unfinished items re-enter the pending pool.
//   - Items the queue re-runs after a restart route through whatever
//     caching the Runner sits on (the serve tier routes through the
//     pipeline memo + persistent store), so a resumed job's recomputed
//     items are warm hits, not recomputes — the per-job Warm/Cold
//     accounting is the test observable for that contract.
//
// Job identity is content-derived: the ID is the SHA-256 of the
// length-prefixed item payloads, so resubmitting the same batch (same
// canonical bytes) dedupes onto the existing job instead of queueing
// duplicate work.
package jobqueue

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// ItemState is the lifecycle of one job item.
type ItemState string

const (
	// ItemPending items await a worker (running items revert to pending
	// on restart or graceful shutdown — a checkpoint never claims work
	// that has not finished).
	ItemPending ItemState = "pending"
	// ItemRunning items are executing in a worker right now. The state
	// is in-memory only; on disk a running item is recorded as pending.
	ItemRunning ItemState = "running"
	// ItemDone items completed with a result.
	ItemDone ItemState = "done"
	// ItemError items completed with an error; one failed item never
	// vetoes its siblings (per-item isolation, as in /v1/batch).
	ItemError ItemState = "error"
	// ItemCancelled items were pending when their job was cancelled.
	ItemCancelled ItemState = "cancelled"
)

// JobState is the derived lifecycle of a whole job.
type JobState string

const (
	StatePending   JobState = "pending"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateCancelled JobState = "cancelled"
)

// Runner executes one item. It returns the result payload to persist,
// whether the result was served warm (from a cache tier, without fresh
// computation — the resume observable), and an error for a failed item.
// If the error implements interface{ Code() string }, the machine code
// is persisted alongside the message.
type Runner func(request json.RawMessage) (result json.RawMessage, warm bool, err error)

// Options configures Open.
type Options struct {
	// Dir is the durable root; empty selects a memory-only queue (jobs
	// die with the process — the API still works, nothing persists).
	Dir string
	// Schema stamps every record; records with any other stamp
	// self-evict on load. Bump it when the item request or result
	// payload encoding changes shape or meaning.
	Schema int
	// MaxJobs bounds the retained job count (0 selects 4096). Submit
	// refuses new jobs beyond the cap with ErrQueueFull: records are
	// durable, so unlike a cache nothing can be silently evicted to
	// make room.
	MaxJobs int
}

// ErrQueueFull is returned by Submit when MaxJobs records are retained.
var ErrQueueFull = errors.New("jobqueue: queue is full")

// ErrClosed is returned by Submit and Cancel after Close.
var ErrClosed = errors.New("jobqueue: queue is closed")

// ErrNotFound is returned by Cancel for an unknown job ID.
var ErrNotFound = errors.New("jobqueue: no such job")

// item is the internal per-item record.
type item struct {
	Request json.RawMessage `json:"request"`
	State   ItemState       `json:"state"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	Code    string          `json:"code,omitempty"`
	Warm    bool            `json:"warm,omitempty"`
}

// job is the internal record; the persisted form is wrapped in envelope.
type job struct {
	ID        string `json:"id"`
	Seq       uint64 `json:"seq"`
	Cancelled bool   `json:"cancelled"`
	Warm      int    `json:"warm"`
	Cold      int    `json:"cold"`
	Items     []item `json:"items"`
}

// state derives the job lifecycle from its items.
func (j *job) state() JobState {
	var pending, running, done, failed, cancelled int
	for i := range j.Items {
		switch j.Items[i].State {
		case ItemPending:
			pending++
		case ItemRunning:
			running++
		case ItemDone:
			done++
		case ItemError:
			failed++
		case ItemCancelled:
			cancelled++
		}
	}
	if pending == 0 && running == 0 {
		if cancelled > 0 {
			return StateCancelled
		}
		return StateCompleted
	}
	if running > 0 || done > 0 || failed > 0 {
		return StateRunning
	}
	return StatePending
}

// ItemView is the exported snapshot of one item.
type ItemView struct {
	Index  int             `json:"index"`
	State  ItemState       `json:"state"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Code   string          `json:"code,omitempty"`
	Warm   bool            `json:"warm,omitempty"`
}

// JobView is the exported snapshot of one job. Items is populated by Get
// and left nil by List.
type JobView struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
	Failed    int      `json:"failed"`
	Cancelled int      `json:"cancelled"`
	// Warm counts completed items served from a cache tier without
	// recomputation; Cold counts fresh computations. After a
	// kill-and-restart resume over a populated store, re-run items land
	// warm — Cold stays at what genuinely new work cost.
	Warm  int        `json:"warm"`
	Cold  int        `json:"cold"`
	Items []ItemView `json:"items,omitempty"`
}

// Stats is a point-in-time accounting snapshot for /healthz.
type Stats struct {
	// Jobs is the retained record count; Depth is the number of items
	// still awaiting a worker across all jobs (the queue backlog).
	Jobs  int `json:"jobs"`
	Depth int `json:"depth"`
	// Per-state job counts.
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Cancelled int `json:"cancelled"`
	// Evicted counts records self-evicted on load (stale stamp, damaged
	// file, ID mismatch); PersistErrors counts surrendered checkpoints —
	// writes that failed even after PersistRetried extra attempts (the
	// queue stays usable; a failed write costs durability, not
	// correctness).
	Evicted        uint64 `json:"evicted"`
	PersistErrors  uint64 `json:"persist_errors"`
	PersistRetried uint64 `json:"persist_retried,omitempty"`
	// LastPersistError and LastPersistAt pin the most recent surrendered
	// checkpoint — message and wall-clock time (RFC 3339) — so /healthz
	// shows not just that durability degraded but when and why. Empty
	// until a checkpoint fails.
	LastPersistError string `json:"last_persist_error,omitempty"`
	LastPersistAt    string `json:"last_persist_at,omitempty"`
}

// Queue is a durable batch job queue. All methods are safe for
// concurrent use.
type Queue struct {
	dir    string
	schema int
	maxJob int

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	order   []string // job IDs in submission order
	nextSeq uint64
	closed  bool

	run Runner
	wg  sync.WaitGroup

	evicted        uint64
	persistErrors  uint64
	persistRetried uint64
	lastPersistErr string
	lastPersistAt  time.Time
}

// Open loads every durable record under o.Dir (creating the directory
// if needed) and returns a queue ready for Start. Damaged or stale
// records are deleted and counted, never surfaced as errors.
func Open(o Options) (*Queue, error) {
	q := &Queue{
		dir:    o.Dir,
		schema: o.Schema,
		maxJob: o.MaxJobs,
		jobs:   map[string]*job{},
	}
	if q.maxJob <= 0 {
		q.maxJob = 4096
	}
	q.cond = sync.NewCond(&q.mu)
	if q.dir == "" {
		return q, nil
	}
	if err := os.MkdirAll(q.dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobqueue: %w", err)
	}
	if err := q.load(); err != nil {
		return nil, err
	}
	return q, nil
}

// Dir returns the durable root ("" for a memory-only queue).
func (q *Queue) Dir() string { return q.dir }

// Start launches workers draining pending items through run. Call it
// once, after Open; items loaded from disk resume immediately.
func (q *Queue) Start(workers int, run Runner) {
	if workers <= 0 {
		return
	}
	q.mu.Lock()
	q.run = run
	q.mu.Unlock()
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
}

// Close stops accepting work, waits for in-flight items to finish, and
// checkpoints every job (running items revert to pending so a later
// Open resumes them). Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, id := range q.order {
		q.persistLocked(q.jobs[id])
	}
}

// IDFor returns the content-derived job ID for a batch of item
// payloads: the hex SHA-256 of the length-prefixed payload sequence.
// Identical canonical payloads in identical order always map to the
// same ID — that is the dedupe contract of Submit.
func IDFor(items []json.RawMessage) string {
	h := sha256.New()
	var n [8]byte
	for _, it := range items {
		binary.BigEndian.PutUint64(n[:], uint64(len(it)))
		h.Write(n[:])
		h.Write(it)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Submit enqueues a batch and returns its snapshot. Each payload is
// canonicalized (validated, compacted, HTML-escaped — exactly what
// encoding/json emits) before hashing and persisting, so the ID, the
// in-memory form, and the on-disk form always agree byte for byte and
// whitespace variants of one batch dedupe onto one job. Resubmitting
// identical content returns the existing job (created=false) — whatever
// its state — so duplicate submissions cannot queue duplicate work.
func (q *Queue) Submit(items []json.RawMessage) (JobView, bool, error) {
	if len(items) == 0 {
		return JobView{}, false, errors.New("jobqueue: empty job")
	}
	canon := make([]json.RawMessage, len(items))
	for i, raw := range items {
		c, err := json.Marshal(raw)
		if err != nil {
			return JobView{}, false, fmt.Errorf("jobqueue: item %d is not valid JSON: %w", i, err)
		}
		canon[i] = c
	}
	items = canon
	id := IDFor(items)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return JobView{}, false, ErrClosed
	}
	if j, ok := q.jobs[id]; ok {
		return q.viewLocked(j, true), false, nil
	}
	if len(q.jobs) >= q.maxJob {
		return JobView{}, false, ErrQueueFull
	}
	j := &job{ID: id, Seq: q.nextSeq, Items: make([]item, len(items))}
	q.nextSeq++
	for i, raw := range items {
		j.Items[i] = item{Request: raw, State: ItemPending}
	}
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.persistLocked(j)
	q.cond.Broadcast()
	return q.viewLocked(j, true), true, nil
}

// Get returns a deep snapshot of one job, items included.
func (q *Queue) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return q.viewLocked(j, true), true
}

// List returns job summaries (no items) in submission order, optionally
// filtered to one derived state ("" matches all).
func (q *Queue) List(state JobState) []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		j := q.jobs[id]
		if state != "" && j.state() != state {
			continue
		}
		out = append(out, q.viewLocked(j, false))
	}
	return out
}

// Cancel marks a job cancelled: pending items move to cancelled and
// never run; items already running finish and record their outcome (the
// computation happened — discarding it would falsify the accounting).
// Cancelling a finished job is a no-op returning its current state.
func (q *Queue) Cancel(id string) (JobView, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return JobView{}, ErrClosed
	}
	j, ok := q.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	changed := false
	for i := range j.Items {
		if j.Items[i].State == ItemPending {
			j.Items[i].State = ItemCancelled
			changed = true
		}
	}
	if changed || !j.Cancelled {
		j.Cancelled = true
		q.persistLocked(j)
	}
	return q.viewLocked(j, true), nil
}

// Stats returns the current accounting.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Jobs: len(q.jobs), Evicted: q.evicted,
		PersistErrors: q.persistErrors, PersistRetried: q.persistRetried,
		LastPersistError: q.lastPersistErr,
	}
	if !q.lastPersistAt.IsZero() {
		st.LastPersistAt = q.lastPersistAt.UTC().Format(time.RFC3339Nano)
	}
	for _, j := range q.jobs {
		switch j.state() {
		case StatePending:
			st.Pending++
		case StateRunning:
			st.Running++
		case StateCompleted:
			st.Completed++
		case StateCancelled:
			st.Cancelled++
		}
		for i := range j.Items {
			if j.Items[i].State == ItemPending {
				st.Depth++
			}
		}
	}
	return st
}

// worker drains pending items until Close: fetch one, run it outside
// the lock, persist the outcome, repeat.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		var j *job
		idx := -1
		for {
			if q.closed {
				q.mu.Unlock()
				return
			}
			j, idx = q.nextPendingLocked()
			if j != nil {
				break
			}
			q.cond.Wait()
		}
		j.Items[idx].State = ItemRunning
		req := j.Items[idx].Request
		run := q.run
		q.mu.Unlock()

		res, warm, err := run(req)

		q.mu.Lock()
		it := &j.Items[idx]
		if err != nil {
			it.State = ItemError
			it.Error = err.Error()
			var coded interface{ Code() string }
			if errors.As(err, &coded) {
				it.Code = coded.Code()
			}
		} else {
			it.State = ItemDone
			it.Result = res
			it.Warm = warm
			// Warm/cold accounting covers successful items only: a
			// failed item computed nothing worth counting either way.
			if warm {
				j.Warm++
			} else {
				j.Cold++
			}
		}
		q.persistLocked(j)
		q.mu.Unlock()
	}
}

// nextPendingLocked scans jobs in submission order for the first
// pending item. Linear in total items; the queue targets thousands of
// items, not millions, and the scan runs only between item executions.
func (q *Queue) nextPendingLocked() (*job, int) {
	for _, id := range q.order {
		j := q.jobs[id]
		if j.Cancelled {
			continue
		}
		for i := range j.Items {
			if j.Items[i].State == ItemPending {
				return j, i
			}
		}
	}
	return nil, -1
}

// viewLocked snapshots a job. Result payloads are shared, not copied:
// once written they are immutable, exactly like store payloads.
func (q *Queue) viewLocked(j *job, withItems bool) JobView {
	v := JobView{ID: j.ID, State: j.state(), Total: len(j.Items), Warm: j.Warm, Cold: j.Cold}
	for i := range j.Items {
		switch j.Items[i].State {
		case ItemDone:
			v.Completed++
		case ItemError:
			v.Failed++
		case ItemCancelled:
			v.Cancelled++
		}
	}
	if withItems {
		v.Items = make([]ItemView, len(j.Items))
		for i := range j.Items {
			it := &j.Items[i]
			v.Items[i] = ItemView{
				Index: i, State: it.State, Result: it.Result,
				Error: it.Error, Code: it.Code, Warm: it.Warm,
			}
		}
	}
	return v
}

// sortJobsBySeq keeps List deterministic after reload, where directory
// iteration would otherwise scramble submission order.
func sortJobsBySeq(js []*job) {
	sort.Slice(js, func(a, b int) bool { return js[a].Seq < js[b].Seq })
}
