package jobqueue

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestPersistFailureSurfacedAndRetried: a checkpoint that cannot land —
// forced here by planting a directory where the record file must go, so
// the atomic rename fails — is retried with backoff, then surrendered,
// counted, and pinned (message + time) in Stats. The queue keeps
// serving as a memory-only queue throughout.
func TestPersistFailureSurfacedAndRetried(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Options{Dir: dir, Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	its := items(2)
	// Occupy the record's path with a directory: CreateTemp succeeds,
	// rename onto a directory cannot.
	if err := os.Mkdir(filepath.Join(dir, IDFor(its)+".json"), 0o755); err != nil {
		t.Fatal(err)
	}

	before := time.Now().Add(-time.Second)
	v, created, err := q.Submit(its)
	if err != nil || !created {
		t.Fatalf("Submit = %+v, %v, %v", v, created, err)
	}
	st := q.Stats()
	if st.PersistErrors != 1 {
		t.Fatalf("PersistErrors = %d, want 1 (one surrendered checkpoint)", st.PersistErrors)
	}
	if st.PersistRetried != persistRetries {
		t.Fatalf("PersistRetried = %d, want %d", st.PersistRetried, persistRetries)
	}
	if st.LastPersistError == "" {
		t.Fatal("LastPersistError empty after a surrendered checkpoint")
	}
	at, err := time.Parse(time.RFC3339Nano, st.LastPersistAt)
	if err != nil || at.Before(before) || at.After(time.Now().Add(time.Second)) {
		t.Fatalf("LastPersistAt = %q (%v)", st.LastPersistAt, err)
	}

	// Degraded, not broken: the job still runs to completion in memory.
	q.Start(1, echoRunner)
	done := waitState(t, q, v.ID, StateCompleted)
	if done.Completed != len(its) {
		t.Fatalf("completed = %d of %d", done.Completed, len(its))
	}
	// No temp-file debris left behind by the failed renames.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("failed checkpoint leaked temp file %s", e.Name())
		}
	}
}

// TestPersistRecoversAfterFailure: once the obstruction clears, the next
// checkpoint lands; the last-error fields keep pointing at the historical
// failure (they record the most recent surrender, not current health —
// PersistErrors staying flat is the "healthy again" signal).
func TestPersistRecoversAfterFailure(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Options{Dir: dir, Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	its := items(1)
	blocked := filepath.Join(dir, IDFor(its)+".json")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(its); err != nil {
		t.Fatal(err)
	}
	failures := q.Stats().PersistErrors
	if failures == 0 {
		t.Fatal("no persist failure recorded while blocked")
	}

	// Clear the obstruction; the next checkpoint (driven by running the
	// job) writes the record.
	if err := os.Remove(blocked); err != nil {
		t.Fatal(err)
	}
	q.Start(1, echoRunner)
	v := waitState(t, q, IDFor(its), StateCompleted)
	if st := q.Stats(); st.PersistErrors != failures {
		t.Fatalf("PersistErrors grew after recovery: %d → %d", failures, st.PersistErrors)
	}
	data, err := os.ReadFile(blocked)
	if err != nil {
		t.Fatalf("record not written after recovery: %v", err)
	}
	var e jobEnvelope
	if err := json.Unmarshal(data, &e); err != nil || e.ID != v.ID {
		t.Fatalf("recovered record damaged: %v (%s)", err, data)
	}
}

// TestLoadCleansStaleTempFiles: temp files from a checkpoint torn by a
// kill are removed on Open and never parsed as records.
func TestLoadCleansStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Options{Dir: dir, Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	its := items(1)
	if _, _, err := q.Submit(its); err != nil {
		t.Fatal(err)
	}
	q.Close()

	// Simulate a torn checkpoint: partial envelope bytes under a temp
	// name, exactly what CreateTemp+kill leaves.
	record, err := os.ReadFile(filepath.Join(dir, IDFor(its)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".tmp-1234", ".tmp-torn"} {
		if err := os.WriteFile(filepath.Join(dir, name), record[:len(record)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	q2, err := Open(Options{Dir: dir, Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file %s survived Open", e.Name())
		}
	}
	// The real record loaded; the debris was not counted as an eviction
	// (it was never a record).
	st := q2.Stats()
	if st.Jobs != 1 || st.Evicted != 0 {
		t.Fatalf("stats after cleanup = %+v; want the one real job, zero evictions", st)
	}
}
