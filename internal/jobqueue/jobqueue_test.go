package jobqueue

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoRunner returns {"echo":<request>} cold for every item.
func echoRunner(req json.RawMessage) (json.RawMessage, bool, error) {
	return json.RawMessage(`{"echo":` + string(req) + `}`), false, nil
}

// storeRunner simulates the serve tier's cached path: a shared
// content-keyed map stands in for the persistent store, so re-running an
// item whose answer is already stored reports warm — the observable a
// resumed job is judged by.
type storeRunner struct {
	mu       sync.Mutex
	store    map[string]json.RawMessage
	computed int
}

func (sr *storeRunner) run(req json.RawMessage) (json.RawMessage, bool, error) {
	key := string(req)
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if res, ok := sr.store[key]; ok {
		return res, true, nil
	}
	sr.computed++
	res := json.RawMessage(`{"computed":` + string(req) + `}`)
	sr.store[key] = res
	return res, false, nil
}

func items(n int) []json.RawMessage {
	out := make([]json.RawMessage, n)
	for i := range out {
		out[i] = json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))
	}
	return out
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, q *Queue, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s: %+v", id, v.State, want, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunDedupe(t *testing.T) {
	q, err := Open(Options{}) // memory-only
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start(2, echoRunner)

	v, created, err := q.Submit(items(3))
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if v.Total != 3 {
		t.Fatalf("total = %d, want 3", v.Total)
	}
	done := waitState(t, q, v.ID, StateCompleted)
	if done.Completed != 3 || done.Failed != 0 || done.Cold != 3 || done.Warm != 0 {
		t.Fatalf("completed job = %+v", done)
	}
	for i, it := range done.Items {
		if it.State != ItemDone || it.Index != i {
			t.Fatalf("item %d = %+v", i, it)
		}
		want := fmt.Sprintf(`{"echo":{"i":%d}}`, i)
		if string(it.Result) != want {
			t.Fatalf("item %d result = %s, want %s", i, it.Result, want)
		}
	}

	// Whitespace variants of the same batch dedupe onto the same job:
	// Submit canonicalizes before hashing.
	loose := make([]json.RawMessage, 3)
	for i := range loose {
		loose[i] = json.RawMessage(fmt.Sprintf(" {\n  \"i\": %d\n} ", i))
	}
	v2, created2, err := q.Submit(loose)
	if err != nil || created2 {
		t.Fatalf("dedupe submit: created=%v err=%v", created2, err)
	}
	if v2.ID != v.ID {
		t.Fatalf("whitespace variant got a new job: %s vs %s", v2.ID, v.ID)
	}

	// The ID is the documented content hash of the canonical payloads.
	if want := IDFor(items(3)); v.ID != want {
		t.Fatalf("job ID = %s, want IDFor = %s", v.ID, want)
	}
}

func TestSubmitRejectsBadInput(t *testing.T) {
	q, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, _, err := q.Submit(nil); err == nil {
		t.Error("empty submit must fail")
	}
	if _, _, err := q.Submit([]json.RawMessage{json.RawMessage(`{broken`)}); err == nil {
		t.Error("invalid JSON item must fail")
	}
}

func TestQueueFull(t *testing.T) {
	q, err := Open(Options{MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, _, err := q.Submit(items(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(items(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Resubmitting the retained job still dedupes — the cap guards new
	// records, not lookups.
	if _, created, err := q.Submit(items(1)); err != nil || created {
		t.Fatalf("dedupe at cap: created=%v err=%v", created, err)
	}
}

func TestPersistLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Submit with no workers: everything persists as pending.
	q1, err := Open(Options{Dir: dir, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := q1.Submit(items(2))
	if err != nil {
		t.Fatal(err)
	}
	q1.Close()

	// Reopen: the job is back, pending, and drains to completion.
	q2, err := Open(Options{Dir: dir, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := q2.Get(v.ID)
	if !ok || got.State != StatePending || got.Total != 2 {
		t.Fatalf("reloaded job = %+v (ok=%v)", got, ok)
	}
	if st := q2.Stats(); st.Jobs != 1 || st.Depth != 2 || st.Evicted != 0 {
		t.Fatalf("reloaded stats = %+v", st)
	}
	q2.Start(2, echoRunner)
	waitState(t, q2, v.ID, StateCompleted)
	q2.Close()

	// Third open: results survive, nothing is pending.
	q3, err := Open(Options{Dir: dir, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	final, ok := q3.Get(v.ID)
	if !ok || final.State != StateCompleted || final.Completed != 2 {
		t.Fatalf("final job = %+v (ok=%v)", final, ok)
	}
	for i, it := range final.Items {
		if it.State != ItemDone || len(it.Result) == 0 {
			t.Fatalf("item %d lost its result: %+v", i, it)
		}
	}
	if st := q3.Stats(); st.Depth != 0 || st.Completed != 1 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestCorruptRecordsSelfEvict(t *testing.T) {
	dir := t.TempDir()
	q1, err := Open(Options{Dir: dir, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := q1.Submit(items(2))
	if err != nil {
		t.Fatal(err)
	}
	q1.Close()

	valid, err := os.ReadFile(filepath.Join(dir, v.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	// Damage 1: not JSON at all.
	os.WriteFile(filepath.Join(dir, strings.Repeat("a", 64)+".json"), []byte("{garbage"), 0o644)
	// Damage 2: a valid record renamed — filename/ID cross-check fails.
	os.WriteFile(filepath.Join(dir, strings.Repeat("b", 64)+".json"), valid, 0o644)
	// Damage 3: tampered item payload — the recomputed content hash no
	// longer matches the ID.
	tampered := []byte(strings.Replace(string(valid), `{"i":0}`, `{"i":9}`, 1))
	os.WriteFile(filepath.Join(dir, strings.Repeat("c", 64)+".json"), tampered, 0o644)

	q2, err := Open(Options{Dir: dir, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	st := q2.Stats()
	if st.Jobs != 1 || st.Evicted != 3 {
		t.Fatalf("stats after damaged load = %+v, want 1 job / 3 evicted", st)
	}
	if _, ok := q2.Get(v.ID); !ok {
		t.Error("healthy record evicted alongside the damaged ones")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("damaged files not removed: %d entries remain", len(entries))
	}
}

func TestSchemaBumpEvicts(t *testing.T) {
	dir := t.TempDir()
	q1, err := Open(Options{Dir: dir, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q1.Submit(items(1)); err != nil {
		t.Fatal(err)
	}
	q1.Close()
	q2, err := Open(Options{Dir: dir, Schema: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if st := q2.Stats(); st.Jobs != 0 || st.Evicted != 1 {
		t.Fatalf("stats after schema bump = %+v, want 0 jobs / 1 evicted", st)
	}
}

func TestCancel(t *testing.T) {
	q, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// No workers yet: the job stays pending and cancel hits every item.
	v, _, err := q.Submit(items(3))
	if err != nil {
		t.Fatal(err)
	}
	cv, err := q.Cancel(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cv.State != StateCancelled || cv.Cancelled != 3 || cv.Completed != 0 {
		t.Fatalf("cancelled job = %+v", cv)
	}
	// Cancelling again is a no-op, not an error.
	if cv2, err := q.Cancel(v.ID); err != nil || cv2.State != StateCancelled {
		t.Fatalf("re-cancel = %+v err=%v", cv2, err)
	}
	if _, err := q.Cancel("no-such-job"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown cancel err = %v, want ErrNotFound", err)
	}

	// Workers never touch a cancelled job: a later job completes while
	// the cancelled one keeps zero completed items.
	q.Start(2, echoRunner)
	v2, _, err := q.Submit(items(5)[3:])
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, v2.ID, StateCompleted)
	if got, _ := q.Get(v.ID); got.Completed != 0 || got.State != StateCancelled {
		t.Fatalf("cancelled job ran anyway: %+v", got)
	}
}

func TestItemErrorIsolationAndCode(t *testing.T) {
	q, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start(1, func(req json.RawMessage) (json.RawMessage, bool, error) {
		if strings.Contains(string(req), `"i":1`) {
			return nil, false, codedErr{}
		}
		return echoRunner(req)
	})
	v, _, err := q.Submit(items(3))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, q, v.ID, StateCompleted)
	if done.Completed != 2 || done.Failed != 1 {
		t.Fatalf("job = %+v, want 2 done / 1 failed", done)
	}
	bad := done.Items[1]
	if bad.State != ItemError || bad.Error != "boom" || bad.Code != "test_code" {
		t.Fatalf("failed item = %+v", bad)
	}
	// A failed item counts neither warm nor cold.
	if done.Warm+done.Cold != 2 {
		t.Fatalf("warm/cold = %d/%d, want 2 total", done.Warm, done.Cold)
	}
}

type codedErr struct{}

func (codedErr) Error() string { return "boom" }
func (codedErr) Code() string  { return "test_code" }

// TestResumeWarmAccounting is the restart-resume contract at queue
// level: items checkpointed as pending re-run through the runner's cache
// and land warm, so a resumed job costs zero fresh computations.
func TestResumeWarmAccounting(t *testing.T) {
	sr := &storeRunner{store: map[string]json.RawMessage{}}

	// Run the batch to completion once — this is "before the kill", and
	// populates the store.
	dir1 := t.TempDir()
	q1, err := Open(Options{Dir: dir1, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := q1.Submit(items(4))
	if err != nil {
		t.Fatal(err)
	}
	q1.Start(2, sr.run)
	first := waitState(t, q1, v.ID, StateCompleted)
	q1.Close()
	if first.Cold != 4 || first.Warm != 0 || sr.computed != 4 {
		t.Fatalf("first run = warm %d cold %d computed %d, want 0/4/4", first.Warm, first.Cold, sr.computed)
	}

	// "After the kill": a queue whose record says all items are still
	// pending (submitted, never run), over the now-populated store.
	dir2 := t.TempDir()
	q2, err := Open(Options{Dir: dir2, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q2.Submit(items(4)); err != nil {
		t.Fatal(err)
	}
	q2.Close() // checkpoint: all pending

	q3, err := Open(Options{Dir: dir2, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	q3.Start(2, sr.run)
	resumed := waitState(t, q3, v.ID, StateCompleted)
	if resumed.Warm != 4 || resumed.Cold != 0 {
		t.Fatalf("resumed run = warm %d cold %d, want 4/0", resumed.Warm, resumed.Cold)
	}
	if sr.computed != 4 {
		t.Fatalf("resume recomputed stored items: computed = %d, want 4", sr.computed)
	}

	// Items already done at the checkpoint never reach the runner again:
	// reopening the completed dir1 queue with workers invokes nothing.
	q4, err := Open(Options{Dir: dir1, Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer q4.Close()
	q4.Start(2, func(req json.RawMessage) (json.RawMessage, bool, error) {
		t.Errorf("completed item re-ran: %s", req)
		return echoRunner(req)
	})
	kept, ok := q4.Get(v.ID)
	if !ok || kept.State != StateCompleted || kept.Warm != 0 || kept.Cold != 4 {
		t.Fatalf("completed job after reopen = %+v (ok=%v)", kept, ok)
	}
	time.Sleep(20 * time.Millisecond) // give a buggy re-run a chance to fire
}

func TestConcurrentSubmitPollCancel(t *testing.T) {
	q, err := Open(Options{Dir: t.TempDir(), Schema: 7})
	if err != nil {
		t.Fatal(err)
	}
	q.Start(4, echoRunner)

	const workers = 8
	var wg sync.WaitGroup
	ids := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := []json.RawMessage{json.RawMessage(fmt.Sprintf(`{"w":%d}`, w))}
			for i := 0; i < 20; i++ {
				v, _, err := q.Submit(batch)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids[w] = v.ID
				q.Get(v.ID)
				q.List("")
				q.Stats()
				if w%3 == 0 {
					q.Cancel(v.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	q.Close()

	// Post-close invariant: Close waits for in-flight items, so nothing
	// is left mid-run — every item is pending (checkpointed backlog for
	// the next open), done, failed, or cancelled.
	for w, id := range ids {
		v, ok := q.Get(id)
		if !ok {
			t.Errorf("worker %d job missing", w)
			continue
		}
		for _, it := range v.Items {
			if it.State == ItemRunning {
				t.Errorf("worker %d job item still running after Close: %+v", w, v)
			}
		}
	}
}

func TestListFilterAndOrder(t *testing.T) {
	q, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	a, _, _ := q.Submit(items(1))
	b, _, _ := q.Submit(items(2))
	q.Cancel(b.ID)

	all := q.List("")
	if len(all) != 2 || all[0].ID != a.ID || all[1].ID != b.ID {
		t.Fatalf("list order wrong: %+v", all)
	}
	if all[0].Items != nil {
		t.Error("List must not carry items")
	}
	pend := q.List(StatePending)
	if len(pend) != 1 || pend[0].ID != a.ID {
		t.Fatalf("pending filter = %+v", pend)
	}
	canc := q.List(StateCancelled)
	if len(canc) != 1 || canc[0].ID != b.ID {
		t.Fatalf("cancelled filter = %+v", canc)
	}
}

func TestClosedQueueRefusesWork(t *testing.T) {
	q, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := q.Submit(items(1))
	q.Close()
	if _, _, err := q.Submit(items(2)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := q.Cancel(v.ID); !errors.Is(err, ErrClosed) {
		t.Errorf("cancel after close: %v, want ErrClosed", err)
	}
	// Reads still work.
	if _, ok := q.Get(v.ID); !ok {
		t.Error("get after close lost the job")
	}
	q.Close() // idempotent
}
