package remotestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// The peer wire format. Entries travel as a self-verifying envelope: the
// content key verbatim (so the receiver can check it hashes to the
// addressed entry), the payload, and the payload's own SHA-256. A
// truncated, corrupted, or substituted entry fails one of the three
// checks and is discarded — a hostile or broken peer can cost a cache
// miss, never a wrong byte.

// WireVersion identifies the peer envelope layout itself, independent of
// the payload schema both peers stamp entries with.
const WireVersion = 1

// wireEntry is the body of GET and PUT /v1/store/{key}.
type wireEntry struct {
	V      int    `json:"v"`
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	// Sum is the hex SHA-256 of Payload — the verify-on-fetch hash.
	Sum     string `json:"sum"`
	Payload []byte `json:"payload"`
}

// KeyHash returns the hex SHA-256 of a content key — the address both
// the on-disk store layout and the peer protocol use for the entry.
func KeyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// ValidHash reports whether h is a well-formed entry address (64 lowercase
// hex chars). Peer handlers reject anything else before touching disk.
func ValidHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EncodeEntry renders one entry in the peer wire form.
func EncodeEntry(schema int, key string, payload []byte) ([]byte, error) {
	sum := sha256.Sum256(payload)
	return json.Marshal(wireEntry{
		V:       WireVersion,
		Schema:  schema,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
}

// DecodeVerify parses a wire entry and runs the full verification chain:
// envelope version, schema stamp, key→address agreement, and payload
// hash. Any mismatch is an error; the caller must treat it exactly like
// a miss (plus accounting), never surface the payload.
func DecodeVerify(data []byte, wantHash string, schema int) (key string, payload []byte, err error) {
	var e wireEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return "", nil, fmt.Errorf("remotestore: undecodable entry: %w", err)
	}
	if e.V != WireVersion {
		return "", nil, fmt.Errorf("remotestore: wire version %d, want %d", e.V, WireVersion)
	}
	if e.Schema != schema {
		return "", nil, fmt.Errorf("remotestore: schema %d, want %d", e.Schema, schema)
	}
	if KeyHash(e.Key) != wantHash {
		return "", nil, fmt.Errorf("remotestore: entry key does not hash to %s", wantHash)
	}
	sum := sha256.Sum256(e.Payload)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return "", nil, fmt.Errorf("remotestore: payload hash mismatch (truncated or corrupted entry)")
	}
	return e.Key, e.Payload, nil
}
