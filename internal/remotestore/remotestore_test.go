package remotestore

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"incore/internal/faultinject"
)

// fakePeer is a minimal in-memory /v1/store peer: GET serves stored wire
// bodies verbatim (so tests can plant damaged ones), PUT stores them.
type fakePeer struct {
	mu      sync.Mutex
	entries map[string][]byte // hash → wire body
	gets    int
	puts    int
	// failNext forces the next N GETs to 500 (transient-failure tests).
	failNext int
}

func newFakePeer() *fakePeer {
	return &fakePeer{entries: map[string][]byte{}}
}

func (p *fakePeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/v1/store/")
	p.mu.Lock()
	defer p.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		p.gets++
		if p.failNext > 0 {
			p.failNext--
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		body, ok := p.entries[hash]
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Write(body)
	case http.MethodPut:
		p.puts++
		body, _ := io.ReadAll(r.Body)
		p.entries[hash] = body
		w.WriteHeader(http.StatusNoContent)
	}
}

func (p *fakePeer) plant(t *testing.T, schema int, key string, payload []byte) {
	t.Helper()
	body, err := EncodeEntry(schema, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.entries[KeyHash(key)] = body
	p.mu.Unlock()
}

func (p *fakePeer) getCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets
}

func newClient(t *testing.T, url string, o Options) *Client {
	t.Helper()
	o.BaseURL = url
	if o.Schema == 0 {
		o.Schema = 7
	}
	if o.Timeout == 0 {
		o.Timeout = time.Second
	}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestGetPutRoundTrip(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{})

	key, payload := "analyze\x00deadbeef\x00block", []byte("result bytes")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty peer")
	}
	c.Put(key, payload)
	if !c.Flush(2 * time.Second) {
		t.Fatal("put queue never drained")
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Breaker != BreakerClosed {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissIsNotAFailure(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{Retries: 3, BreakerThreshold: 2})

	// Many misses in a row: the peer answers healthily, so no retries
	// fire and the breaker stays closed.
	for i := 0; i < 10; i++ {
		if _, ok := c.Get("missing"); ok {
			t.Fatal("phantom hit")
		}
	}
	st := c.Stats()
	if st.Retries != 0 || st.Breaker != BreakerClosed || st.Errors != 0 {
		t.Fatalf("stats after clean misses = %+v", st)
	}
	if peer.getCount() != 10 {
		t.Fatalf("peer saw %d gets, want 10 (no retries on 404)", peer.getCount())
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{Retries: 2, BackoffBase: time.Millisecond})

	key, payload := "k", []byte("v")
	peer.plant(t, 7, key, payload)
	peer.mu.Lock()
	peer.failNext = 2
	peer.mu.Unlock()

	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("retried get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Hits != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v; want 2 retries then a hit", st)
	}
}

func TestVerifyRejectsDamage(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{Retries: -1})

	key, payload := "damaged", []byte("the true payload")
	good, err := EncodeEntry(7, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the base64 payload field.
	corrupted := bytes.Clone(good)
	at := bytes.Index(corrupted, []byte(`"payload":"`)) + len(`"payload":"`)
	corrupted[at] ^= 0x01
	cases := map[string][]byte{
		"truncated":     good[:len(good)/2],
		"corrupted":     corrupted,
		"not json":      []byte("garbage"),
		"wrong version": mustEncodeV(t, 99, 7, key, payload),
		"wrong schema":  mustEncode(t, 8, key, payload),
		"wrong key":     mustEncode(t, 7, "other", payload),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			peer.mu.Lock()
			peer.entries[KeyHash(key)] = body
			peer.mu.Unlock()
			if got, ok := c.Get(key); ok {
				t.Fatalf("damaged entry surfaced: %q", got)
			}
		})
	}
	if st := c.Stats(); st.VerifyFailures == 0 || st.Hits != 0 {
		t.Fatalf("stats = %+v; want verify failures, zero hits", st)
	}
}

func mustEncode(t *testing.T, schema int, key string, payload []byte) []byte {
	t.Helper()
	b, err := EncodeEntry(schema, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustEncodeV(t *testing.T, v, schema int, key string, payload []byte) []byte {
	t.Helper()
	b := mustEncode(t, schema, key, payload)
	return bytes.Replace(b, []byte(`"v":1`), []byte(`"v":99`), 1)
}

// TestBreakerOpensAndRecovers pins the breaker lifecycle end to end:
// consecutive failures open it within the threshold, open short-circuits
// without network traffic, a half-open probe after the cooldown closes
// it again once the peer recovers.
func TestBreakerOpensAndRecovers(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Timeout:          200 * time.Millisecond,
	})
	key, payload := "k", []byte("v")
	peer.plant(t, 7, key, payload)

	// Kill the peer abruptly: close the listener so connections refuse.
	ts.CloseClientConnections()
	ts.Close()
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(key); ok {
			t.Fatal("hit from a dead peer")
		}
	}
	st := c.Stats()
	if st.Breaker != BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("breaker after %d failures = %+v; want open after threshold 3", 3, st)
	}

	// Open: lookups short-circuit without touching the network.
	before := st.Errors
	for i := 0; i < 5; i++ {
		c.Get(key)
	}
	st = c.Stats()
	if st.Errors != before || st.ShortCircuits < 5 {
		t.Fatalf("open breaker still hit the network: %+v", st)
	}

	// Resurrect the peer on the same address space (new server, repoint
	// is not possible — so verify half-open against a fresh server).
	ts2 := httptest.NewServer(peer)
	defer ts2.Close()
	c2 := newClient(t, ts2.URL, Options{
		Retries: -1, BreakerThreshold: 1, BreakerCooldown: 30 * time.Millisecond,
		Timeout: 200 * time.Millisecond,
	})
	// One forced transient failure trips the threshold-1 breaker.
	peer.mu.Lock()
	peer.failNext = 1
	peer.mu.Unlock()
	if _, ok := c2.Get(key); ok {
		t.Fatal("expected transient failure")
	}
	if st := c2.Stats(); st.Breaker != BreakerOpen {
		t.Fatalf("threshold-1 breaker not open: %+v", st)
	}
	time.Sleep(40 * time.Millisecond)
	// Cooldown elapsed: the next get is the half-open probe and the peer
	// is healthy again, so it closes the breaker with a hit.
	got, ok := c2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("half-open probe = %q, %v", got, ok)
	}
	if st := c2.Stats(); st.Breaker != BreakerClosed {
		t.Fatalf("breaker after successful probe = %+v; want closed", st)
	}
}

// TestNeverCorrupt is the verify-on-fetch contract under full chaos:
// at 100% fault rate across every fault kind, Get either returns the
// exact planted payload or a miss — never a wrong byte.
func TestNeverCorrupt(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()

	key, payload := "chaos-key", bytes.Repeat([]byte("precise bytes "), 64)
	peer.plant(t, 7, key, payload)

	for _, rate := range []float64{0.3, 1.0} {
		fi := faultinject.New(nil, faultinject.Config{Rate: rate, Seed: 1234, MaxDelay: 2 * time.Millisecond})
		c := newClient(t, ts.URL, Options{
			Transport: fi, Retries: 1, BackoffBase: time.Millisecond,
			BreakerThreshold: 5, BreakerCooldown: 10 * time.Millisecond,
			Timeout: 500 * time.Millisecond,
		})
		hits := 0
		for i := 0; i < 150; i++ {
			got, ok := c.Get(key)
			if ok {
				hits++
				if !bytes.Equal(got, payload) {
					t.Fatalf("rate %.1f: corrupted payload surfaced at lookup %d", rate, i)
				}
			}
		}
		st := c.Stats()
		t.Logf("rate %.1f: %d/150 verified hits, stats %+v, faults %+v", rate, hits, st, fi.Stats())
		if rate < 1 && hits == 0 {
			t.Errorf("rate %.1f: no lookup ever succeeded", rate)
		}
		c.Close()
	}
}

// TestPutQueueOverflowDrops: a jammed write-behind queue sheds load
// instead of blocking the caller.
func TestPutQueueOverflowDrops(t *testing.T) {
	// A peer that never answers, so queued puts wedge in workers.
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	defer close(stall)
	c := newClient(t, ts.URL, Options{PutQueue: 2, PutWorkers: 1, Timeout: 5 * time.Second})

	start := time.Now()
	for i := 0; i < 50; i++ {
		c.Put("k", []byte("v"))
	}
	if time.Since(start) > time.Second {
		t.Fatal("Put blocked on a stalled peer")
	}
	if st := c.Stats(); st.PutsDropped == 0 {
		t.Fatalf("no drops recorded on an overflowing queue: %+v", st)
	}
}

func TestValidHash(t *testing.T) {
	if !ValidHash(KeyHash("anything")) {
		t.Fatal("KeyHash output rejected")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64),
		strings.Repeat("a", 63), strings.Repeat("a", 65), "../" + strings.Repeat("a", 61)} {
		if ValidHash(bad) {
			t.Errorf("ValidHash(%q) accepted", bad)
		}
	}
}
