package remotestore

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's lifecycle. The breaker exists so
// a dead or drowning peer costs one bounded burst of failures and then
// nothing: while open, every remote lookup short-circuits to a local
// miss without touching the network.
type BreakerState string

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: requests short-circuit. After the cooldown the next
	// request is admitted as a half-open probe.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one probe is in flight; its outcome closes or
	// re-opens the breaker. Other requests keep short-circuiting.
	BreakerHalfOpen BreakerState = "half-open"
)

// breaker is a consecutive-failure circuit breaker with half-open
// probing. Failures are counted per request (after retries), not per
// attempt, so the trip threshold reads as "N remote operations in a row
// gave the peer up for lost".
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	trips    uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, state: BreakerClosed}
}

// allow reports whether a request may proceed; it must be paired with
// exactly one record call when it returns true. In the open state it
// transitions to half-open (admitting the caller as the probe) once the
// cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports one allowed request's outcome.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	if b.state == BreakerHalfOpen {
		// The probe failed: back to open, cooldown restarts.
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.trips++
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.trips++
	}
}

// snapshot returns the current state and trip count.
func (b *breaker) snapshot() (BreakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
