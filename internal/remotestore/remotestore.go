// Package remotestore is the third store tier: an HTTP client for a
// peer replica's /v1/store/{key} endpoints, wrapped in the fault
// tolerance that makes a shared remote cache safe to depend on — which
// is to say, safe to lose. The peer is strictly an optimization: every
// failure mode (slow, flaky, dead, lying) degrades to a local cache
// miss, never to an error, a stall on the request path, or a wrong byte.
//
// The layers, outermost first:
//
//   - Circuit breaker (breaker.go): after Threshold consecutive failed
//     operations the breaker opens and lookups short-circuit to local
//     misses without touching the network; after Cooldown one probe is
//     admitted half-open, and its outcome closes or re-opens the
//     breaker. A SIGKILLed peer costs one bounded burst of timeouts,
//     then zero added latency.
//   - Bounded retries with exponential backoff + jitter — on GETs only.
//     GET of a content-addressed immutable entry is idempotent by
//     construction; PUTs are best-effort write-behind and never retried
//     (losing one costs a future cold lookup on the peer, nothing else).
//   - Per-attempt timeouts, so one hung connection cannot wedge a
//     worker.
//   - Verify-on-fetch (wire.go): every fetched entry must carry the
//     addressed key and a payload matching its SHA-256, so truncation
//     and corruption are discarded and counted, exactly like damaged
//     disk entries.
//   - Async write-behind: Put enqueues to a bounded queue drained by
//     background workers; when the queue is full the entry is dropped
//     and counted. Remote latency never sits on a request path.
package remotestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults; see Options.
const (
	DefaultTimeout          = 2 * time.Second
	DefaultRetries          = 2
	DefaultBackoffBase      = 25 * time.Millisecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultPutQueue         = 256
	DefaultPutWorkers       = 2
	// maxEntryBytes bounds one fetched entry; a peer advertising more is
	// treated as hostile (the verify chain would reject it anyway, this
	// just refuses to buffer it).
	maxEntryBytes = 64 << 20
)

// Options configures New.
type Options struct {
	// BaseURL locates the peer, e.g. "http://replica-2:8080"; the client
	// appends /v1/store/{hash}.
	BaseURL string
	// Schema is the payload schema both peers stamp entries with
	// (pipeline.StoreSchema() in the serving stack); entries with any
	// other stamp are rejected on fetch.
	Schema int
	// Timeout bounds each attempt (0 selects 2s).
	Timeout time.Duration
	// Retries is the number of re-attempts after a failed GET
	// (0 selects 2; negative disables retries).
	Retries int
	// BackoffBase scales the exponential backoff between GET attempts
	// (0 selects 25ms); attempt n waits ~BackoffBase·2ⁿ, jittered ±50%.
	BackoffBase time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (0 selects 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a half-open probe (0 selects 5s).
	BreakerCooldown time.Duration
	// PutQueue bounds the write-behind queue (0 selects 256); Puts
	// beyond it are dropped and counted.
	PutQueue int
	// PutWorkers drains the write-behind queue (0 selects 2).
	PutWorkers int
	// Transport overrides the HTTP transport (nil selects
	// http.DefaultTransport). The fault-injection harness hooks in here.
	Transport http.RoundTripper
}

// Stats is a point-in-time snapshot of the remote tier's accounting,
// including the breaker state — the /healthz observable for the
// degradation contract.
type Stats struct {
	// Gets counts lookups reaching this client; Hits were fetched and
	// verified, Misses are healthy peer 404s, Errors are lookups that
	// exhausted retries (network, 5xx, or verification failures).
	Gets   uint64 `json:"gets"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Errors uint64 `json:"errors"`
	// VerifyFailures counts fetched entries discarded by the
	// verification chain (subset of attempts; a lookup may retry past
	// one and still hit).
	VerifyFailures uint64 `json:"verify_failures"`
	// Retries counts extra GET attempts beyond the first.
	Retries uint64 `json:"retries"`
	// ShortCircuits counts operations answered locally because the
	// breaker was open.
	ShortCircuits uint64 `json:"short_circuits"`
	// Puts counts write-behind successes; PutErrors failed attempts;
	// PutsDropped entries discarded because the queue was full or the
	// breaker open.
	Puts        uint64 `json:"puts"`
	PutErrors   uint64 `json:"put_errors"`
	PutsDropped uint64 `json:"puts_dropped"`
	// Breaker is the current state; BreakerTrips counts closed→open and
	// half-open→open transitions.
	Breaker      BreakerState `json:"breaker"`
	BreakerTrips uint64       `json:"breaker_trips"`
}

// Client is a fault-tolerant peer store client. It satisfies
// store.Remote. Safe for concurrent use.
type Client struct {
	base    string
	schema  int
	timeout time.Duration
	retries int
	backoff time.Duration
	http    *http.Client
	br      *breaker

	gets, hits, misses, errs  atomic.Uint64
	verifyFails, retriesCount atomic.Uint64
	shortCircuits             atomic.Uint64
	puts, putErrs, putDropped atomic.Uint64

	putMu  sync.Mutex
	putCh  chan putEntry
	closed bool
	wg     sync.WaitGroup
}

type putEntry struct {
	key     string
	payload []byte
}

// New validates the peer URL and starts the write-behind workers.
func New(o Options) (*Client, error) {
	u, err := url.Parse(o.BaseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("remotestore: invalid peer URL %q", o.BaseURL)
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.PutQueue <= 0 {
		o.PutQueue = DefaultPutQueue
	}
	if o.PutWorkers <= 0 {
		o.PutWorkers = DefaultPutWorkers
	}
	transport := o.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		schema:  o.Schema,
		timeout: o.Timeout,
		retries: o.Retries,
		backoff: o.BackoffBase,
		http:    &http.Client{Transport: transport},
		br:      newBreaker(o.BreakerThreshold, o.BreakerCooldown),
		putCh:   make(chan putEntry, o.PutQueue),
	}
	for i := 0; i < o.PutWorkers; i++ {
		c.wg.Add(1)
		go c.putWorker()
	}
	return c, nil
}

// BaseURL returns the peer endpoint this client talks to.
func (c *Client) BaseURL() string { return c.base }

// Get fetches and verifies one entry from the peer. Every failure mode —
// breaker open, timeouts, retries exhausted, verification failure —
// reports a miss; the caller computes locally and the accounting records
// why.
func (c *Client) Get(key string) ([]byte, bool) {
	c.gets.Add(1)
	if !c.br.allow() {
		c.shortCircuits.Add(1)
		return nil, false
	}
	hash := KeyHash(key)
	for attempt := 0; ; attempt++ {
		payload, found, retryable := c.get1(hash, key)
		if found {
			c.br.record(true)
			c.hits.Add(1)
			return payload, true
		}
		if !retryable {
			// A clean 404: the peer answered authoritatively, the entry
			// does not exist. That is a healthy outcome.
			c.br.record(true)
			c.misses.Add(1)
			return nil, false
		}
		if attempt >= c.retries {
			break
		}
		c.retriesCount.Add(1)
		c.sleepBackoff(attempt)
	}
	c.br.record(false)
	c.errs.Add(1)
	return nil, false
}

// sleepBackoff waits ~backoff·2ᵃᵗᵗᵉᵐᵖᵗ jittered to [50%,150%], so a herd
// of replicas retrying against one struggling peer decorrelates.
func (c *Client) sleepBackoff(attempt int) {
	d := c.backoff << uint(attempt)
	jitter := 0.5 + rand.Float64()
	time.Sleep(time.Duration(float64(d) * jitter))
}

// get1 is one GET attempt: (payload, found, retryable). found=false with
// retryable=false is an authoritative miss; retryable=true covers
// transport errors, non-404 statuses, and verification failures.
func (c *Client) get1(hash, key string) ([]byte, bool, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/store/"+hash, nil)
	if err != nil {
		return nil, false, true
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, true
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, false
	case resp.StatusCode != http.StatusOK:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, true
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || len(data) > maxEntryBytes {
		return nil, false, true
	}
	gotKey, payload, err := DecodeVerify(data, hash, c.schema)
	if err != nil || gotKey != key {
		// Truncated, corrupted, stale-schema, or substituted entry:
		// discarded and counted, exactly like a damaged disk entry.
		c.verifyFails.Add(1)
		return nil, false, true
	}
	return payload, true, false
}

// Put enqueues one entry for best-effort write-behind; it never blocks.
// A full queue or a closed client drops the entry (counted) — the peer
// misses a warm entry, nothing else happens.
func (c *Client) Put(key string, payload []byte) {
	c.putMu.Lock()
	defer c.putMu.Unlock()
	if c.closed {
		c.putDropped.Add(1)
		return
	}
	select {
	case c.putCh <- putEntry{key: key, payload: payload}:
	default:
		c.putDropped.Add(1)
	}
}

// putWorker drains the write-behind queue. Each PUT is breaker-gated and
// single-attempt: write-behind to a struggling peer should shed load,
// not add retries to it.
func (c *Client) putWorker() {
	defer c.wg.Done()
	for e := range c.putCh {
		if !c.br.allow() {
			c.shortCircuits.Add(1)
			c.putDropped.Add(1)
			continue
		}
		err := c.put1(e)
		c.br.record(err == nil)
		if err != nil {
			c.putErrs.Add(1)
		} else {
			c.puts.Add(1)
		}
	}
}

func (c *Client) put1(e putEntry) error {
	body, err := EncodeEntry(c.schema, e.key, e.payload)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v1/store/"+KeyHash(e.key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return errors.New("remotestore: put rejected: " + resp.Status)
	}
	return nil
}

// Flush blocks until the write-behind queue has drained (best-effort,
// bounded by timeout). Tests use it to make async PUTs observable.
func (c *Client) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(c.putCh) == 0 {
			// Queue empty; in-flight workers may still be writing — give
			// them one settling pass.
			time.Sleep(5 * time.Millisecond)
			if len(c.putCh) == 0 {
				return true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Close stops the write-behind workers after draining queued entries.
// Later Puts are dropped and counted; Get keeps working (a closing
// server may still serve a last request). Idempotent.
func (c *Client) Close() {
	c.putMu.Lock()
	if c.closed {
		c.putMu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	close(c.putCh)
	c.putMu.Unlock()
	c.wg.Wait()
}

// Stats returns the current accounting plus breaker state.
func (c *Client) Stats() Stats {
	state, trips := c.br.snapshot()
	return Stats{
		Gets:           c.gets.Load(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Errors:         c.errs.Load(),
		VerifyFailures: c.verifyFails.Load(),
		Retries:        c.retriesCount.Load(),
		ShortCircuits:  c.shortCircuits.Load(),
		Puts:           c.puts.Load(),
		PutErrors:      c.putErrs.Load(),
		PutsDropped:    c.putDropped.Load(),
		Breaker:        state,
		BreakerTrips:   trips,
	}
}
