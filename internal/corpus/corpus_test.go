package corpus

import (
	"path/filepath"
	"strings"
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

func fixturePaths(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*.s"))
}

const nestedX86 = `	.text
	.globl	sum2d
sum2d:
	xorl	%ecx, %ecx
.L2:
	xorl	%eax, %eax
.L3:
	vaddsd	(%rsi,%rax,8), %xmm0, %xmm0
	incq	%rax
	cmpq	%rbx, %rax
	jne	.L3
	incq	%rcx
	cmpq	%rdx, %rcx
	jne	.L2
	ret
`

func TestExtractLoopsInnermost(t *testing.T) {
	loops := ExtractLoops(nestedX86, isa.DialectX86)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1 (innermost only): %+v", len(loops), loops)
	}
	l := loops[0]
	if l.Label != ".L3" {
		t.Fatalf("kept loop %q, want inner .L3", l.Label)
	}
	if !strings.Contains(l.Source, "vaddsd") || !strings.Contains(l.Source, "jne\t.L3") {
		t.Fatalf("loop source missing body or branch:\n%s", l.Source)
	}
	if strings.Contains(l.Source, ".L2") {
		t.Fatalf("inner loop source leaked outer-loop lines:\n%s", l.Source)
	}
}

func TestExtractLoopsSiblings(t *testing.T) {
	src := `.LA:
	addq	$1, %rax
	cmpq	%rbx, %rax
	jne	.LA
	xorl	%eax, %eax
.LB:
	addq	$1, %rax
	cmpq	%rcx, %rax
	jne	.LB
`
	loops := ExtractLoops(src, isa.DialectX86)
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2 siblings: %+v", len(loops), loops)
	}
	if loops[0].Label != ".LA" || loops[1].Label != ".LB" {
		t.Fatalf("loops out of source order: %q, %q", loops[0].Label, loops[1].Label)
	}
}

func TestExtractLoopsIgnoresForwardAndIndirect(t *testing.T) {
	src := `	jle	.L9
	jmp	*%rax
	ret
.L9:
	ret
`
	if loops := ExtractLoops(src, isa.DialectX86); len(loops) != 0 {
		t.Fatalf("forward/indirect branches produced loops: %+v", loops)
	}
}

func TestExtractLoopsAArch64(t *testing.T) {
	src := `.L0:
	ldr	d1, [x1]
	fadd	d0, d0, d1
	add	x1, x1, #8
	cmp	x1, x4
	b.ne	.L0
`
	loops := ExtractLoops(src, isa.DialectAArch64)
	if len(loops) != 1 || loops[0].Label != ".L0" {
		t.Fatalf("got %+v, want one .L0 loop", loops)
	}
}

func mustModel(t *testing.T, key string) *uarch.Model {
	t.Helper()
	m, err := uarch.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIngestSourceDegradesUnknown(t *testing.T) {
	m := mustModel(t, "goldencove")
	ig := &Ingester{Model: m}
	src := `.L5:
	vmovupd	(%rsi,%rax,8), %ymm1
	vpmaddubsw	(%rdx,%rax,8), %ymm1, %ymm2
	addq	$4, %rax
	cmpq	%rcx, %rax
	jb	.L5
`
	res := ig.IngestSource("dotint.s", src)
	if res.Failures() != 0 {
		t.Fatalf("unexpected failures: %+v", res.Blocks)
	}
	if len(res.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(res.Blocks))
	}
	b := res.Blocks[0]
	if b.Instrs != 5 {
		t.Fatalf("got %d instrs, want 5", b.Instrs)
	}
	if b.Coverage.Unknown != 1 {
		t.Fatalf("coverage = %+v, want exactly 1 unknown", b.Coverage)
	}
	if got := b.Coverage.UnknownMnemonics; len(got) != 1 || got[0] != "vpmaddubsw" {
		t.Fatalf("unknown mnemonics = %v, want [vpmaddubsw]", got)
	}
	if b.Prediction <= 0 {
		t.Fatalf("degraded block got non-positive prediction %v", b.Prediction)
	}
}

func TestIngestSourceMarkedRegionWins(t *testing.T) {
	m := mustModel(t, "neoversev2")
	ig := &Ingester{Model: m}
	// The marked region covers only two instructions; the loop outside
	// the markers must be ignored.
	src := `	// OSACA-BEGIN
	fadd	d0, d0, d1
	fadd	d2, d2, d3
	// OSACA-END
.L0:
	add	x1, x1, #8
	cmp	x1, x4
	b.ne	.L0
`
	res := ig.IngestSource("marked.s", src)
	if res.Failures() != 0 || len(res.Blocks) != 1 {
		t.Fatalf("got %+v, want one clean block", res.Blocks)
	}
	if res.Blocks[0].Instrs != 2 {
		t.Fatalf("got %d instrs, want the 2 marked ones", res.Blocks[0].Instrs)
	}
}

func TestIngestSourceWholeFileFallback(t *testing.T) {
	m := mustModel(t, "zen4")
	ig := &Ingester{Model: m}
	res := ig.IngestSource("straight.s", "\taddq $1, %rax\n\taddq $2, %rbx\n")
	if res.Failures() != 0 || len(res.Blocks) != 1 || res.Blocks[0].Instrs != 2 {
		t.Fatalf("whole-file fallback failed: %+v", res.Blocks)
	}
}

func TestIngestSourceParseErrorIsPerBlock(t *testing.T) {
	m := mustModel(t, "goldencove")
	ig := &Ingester{Model: m}
	src := `.LA:
	addq	$1, %rax
	jne	.LA
.LB:
	addq	$1, %%%garbage
	jne	.LB
`
	res := ig.IngestSource("mixed.s", src)
	if len(res.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(res.Blocks))
	}
	if res.Blocks[0].Err != nil {
		t.Fatalf("good loop failed: %v", res.Blocks[0].Err)
	}
	if res.Blocks[1].Err == nil {
		t.Fatalf("bad loop did not fail")
	}
	if res.Failures() != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures())
	}
}

func TestIngestFixtures(t *testing.T) {
	cases := []struct {
		arch, dir   string
		wantUnknown bool
	}{
		{"goldencove", "testdata/x86", true},
		{"zen4", "testdata/x86", true},
		{"neoversev2", "testdata/aarch64", false},
	}
	for _, tc := range cases {
		t.Run(tc.arch, func(t *testing.T) {
			m := mustModel(t, tc.arch)
			ig := &Ingester{Model: m}
			paths, err := fixturePaths(tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) == 0 {
				t.Fatalf("no fixtures in %s", tc.dir)
			}
			var files []FileResult
			for _, p := range paths {
				files = append(files, ig.IngestFile(p))
			}
			sum := Summarize(files)
			if sum.Failures != 0 {
				t.Fatalf("fixture ingestion had %d failures: %+v", sum.Failures, files)
			}
			if sum.Blocks == 0 || sum.Coverage.Total() == 0 {
				t.Fatalf("fixture ingestion produced no work: %+v", sum)
			}
			if got := sum.Coverage.Unknown > 0; got != tc.wantUnknown {
				t.Fatalf("unknown instructions present = %v, want %v (%+v)", got, tc.wantUnknown, sum.Coverage)
			}
			if sum.Fraction() < 0.5 {
				t.Fatalf("aggregate coverage %.2f unreasonably low", sum.Fraction())
			}
		})
	}
}
