// Package corpus ingests real-world assembly listings — compiler output
// from `gcc -S`, `go build -gcflags=-S`, objdump, or hand-written
// kernels — into the suite's block format and batch-analyzes them with
// per-block coverage accounting.
//
// A real listing is not a curated suite block: it mixes directives,
// prologue/epilogue code, several functions, and mnemonics outside the
// machine model's tables. The ingester handles that by
//
//  1. honoring explicit OSACA/LLVM-MCA/IACA region markers when present,
//  2. otherwise extracting every innermost backward-branch loop (a label
//     later reached by a branch back to it) as its own block, and
//  3. analyzing each block in degraded mode, so unknown mnemonics are
//     accounted in the coverage report instead of rejecting the block.
//
// The result per block is the same lower-bound analysis cmd/osaca
// prints, plus the coverage triple (exact / fallback / unknown) that
// tells the caller how much of the prediction rests on measured tables.
package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

// Loop is one extracted backward-branch region of a source listing.
type Loop struct {
	// Label names the loop head (the backward branch's target).
	Label string
	// Start and End are 1-based source line numbers of the label line
	// and the backward branch, inclusive.
	Start, End int
	// Source is the region's text (label line through branch line).
	Source string
}

// ExtractLoops finds the innermost backward-branch loops in an assembly
// listing: regions from a label line to a later branch instruction
// targeting that label, keeping only regions that do not contain another
// such region (the innermost loops are the throughput-relevant ones; an
// outer loop's body is dominated by its inner loop anyway). Loops come
// back in source order.
func ExtractLoops(src string, d isa.Dialect) []Loop {
	lines := strings.Split(src, "\n")
	labelLine := map[string]int{}
	var cands []Loop
	for i, raw := range lines {
		line := strings.TrimSpace(stripListingComment(raw, d))
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			labelLine[strings.TrimSuffix(line, ":")] = i
			continue
		}
		mn, target := branchTarget(line)
		if mn == "" || target == "" {
			continue
		}
		if at, ok := labelLine[target]; ok {
			cands = append(cands, Loop{Label: target, Start: at + 1, End: i + 1})
		}
	}
	// Keep innermost regions only: drop any candidate strictly containing
	// another candidate.
	var out []Loop
	for _, c := range cands {
		inner := false
		for _, o := range cands {
			if o != c && c.Start <= o.Start && o.End <= c.End {
				inner = true
				break
			}
		}
		if !inner {
			c.Source = strings.Join(lines[c.Start-1:c.End], "\n")
			out = append(out, c)
		}
	}
	return out
}

// stripListingComment removes trailing comments for loop scanning only;
// block parsing re-applies the isa parser's own comment handling.
func stripListingComment(line string, d isa.Dialect) string {
	markers := []string{"#", "//", ";"}
	if d == isa.DialectAArch64 {
		markers = []string{"//", ";"}
	}
	for _, m := range markers {
		if i := strings.Index(line, m); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

// branchTarget reports a line's branch mnemonic and label target, or
// empty strings when the line is not a direct branch.
func branchTarget(line string) (mn, target string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", ""
	}
	in := isa.Instruction{Mnemonic: strings.ToLower(fields[0])}
	if !in.IsBranch() {
		return "", ""
	}
	ops := strings.Join(fields[1:], " ")
	if i := strings.LastIndex(ops, ","); i >= 0 {
		ops = ops[i+1:]
	}
	target = strings.TrimSpace(ops)
	// Indirect targets (*%rax, x30) and no-operand returns are not loops.
	if target == "" || strings.HasPrefix(target, "*") {
		return "", ""
	}
	return in.Mnemonic, target
}

// BlockResult is the analysis outcome of one extracted block. Exactly
// one of Err or the analysis fields is meaningful.
type BlockResult struct {
	// Name labels the block: "file#label" for extracted loops,
	// "file" for whole-file and marked-region blocks.
	Name string
	// Label and Lines locate the block in its source file; Label is
	// empty for whole-file and marked-region blocks.
	Label      string
	Start, End int
	// Instrs counts the block's parsed instructions.
	Instrs int
	// Err is the parse or analysis failure, nil on success.
	Err error

	Coverage   core.Coverage
	Prediction float64
	Bound      string
}

// MarshalJSON renders the error as its message (an error interface
// would otherwise encode as an empty object).
func (b BlockResult) MarshalJSON() ([]byte, error) {
	w := struct {
		Name       string        `json:"name"`
		Label      string        `json:"label,omitempty"`
		Start      int           `json:"start,omitempty"`
		End        int           `json:"end,omitempty"`
		Instrs     int           `json:"instrs"`
		Error      string        `json:"error,omitempty"`
		Coverage   core.Coverage `json:"coverage"`
		Prediction float64       `json:"prediction"`
		Bound      string        `json:"bound,omitempty"`
	}{
		Name: b.Name, Label: b.Label, Start: b.Start, End: b.End,
		Instrs: b.Instrs, Coverage: b.Coverage,
		Prediction: b.Prediction, Bound: b.Bound,
	}
	if b.Err != nil {
		w.Error = b.Err.Error()
	}
	return json.Marshal(w)
}

// FileResult is the ingestion outcome of one source file.
type FileResult struct {
	Path string
	// Blocks holds one result per extracted block, in source order.
	Blocks []BlockResult
}

// Failures counts blocks that failed to parse or analyze.
func (f FileResult) Failures() int {
	n := 0
	for _, b := range f.Blocks {
		if b.Err != nil {
			n++
		}
	}
	return n
}

// Ingester turns source listings into analyzed blocks against one model.
type Ingester struct {
	Model *uarch.Model
	// An is the analyzer; nil means core.New() (degraded mode, the
	// right default for real-world input).
	An *core.Analyzer
}

func (ig *Ingester) analyzer() *core.Analyzer {
	if ig.An != nil {
		return ig.An
	}
	return core.New()
}

// IngestSource ingests one listing already in memory. Marker pairs take
// precedence; otherwise every innermost backward-branch loop becomes a
// block; a listing with neither is analyzed whole.
func (ig *Ingester) IngestSource(name, src string) FileResult {
	res := FileResult{Path: name}
	m := ig.Model
	an := ig.analyzer()

	marked, err := isa.ExtractMarkedRegion(src)
	if err != nil {
		res.Blocks = append(res.Blocks, BlockResult{Name: name, Err: err})
		return res
	}
	if marked != src {
		res.Blocks = append(res.Blocks, ig.analyzeOne(an, BlockResult{Name: name}, marked))
		return res
	}
	loops := ExtractLoops(src, m.Dialect)
	if len(loops) == 0 {
		res.Blocks = append(res.Blocks, ig.analyzeOne(an, BlockResult{Name: name}, src))
		return res
	}
	for _, l := range loops {
		br := BlockResult{
			Name:  fmt.Sprintf("%s#%s", name, l.Label),
			Label: l.Label, Start: l.Start, End: l.End,
		}
		res.Blocks = append(res.Blocks, ig.analyzeOne(an, br, l.Source))
	}
	return res
}

// IngestFile reads and ingests one .s file.
func (ig *Ingester) IngestFile(path string) FileResult {
	src, err := os.ReadFile(path)
	if err != nil {
		return FileResult{Path: path, Blocks: []BlockResult{{Name: path, Err: err}}}
	}
	return ig.IngestSource(path, string(src))
}

// analyzeOne parses and analyzes one block's source through the shared
// pipeline memo (identical blocks across files compute once, and an
// attached persistent store serves warm results across runs).
func (ig *Ingester) analyzeOne(an *core.Analyzer, br BlockResult, src string) BlockResult {
	b, err := isa.ParseBlock(br.Name, ig.Model.Key, ig.Model.Dialect, src)
	if err != nil {
		br.Err = err
		return br
	}
	br.Instrs = len(b.Instrs)
	r, err := pipeline.Analyze(an, b, ig.Model)
	if err != nil {
		br.Err = err
		return br
	}
	br.Coverage = r.Coverage
	br.Prediction = r.Prediction
	br.Bound = r.Bound
	return br
}

// Summary aggregates coverage over many file results.
type Summary struct {
	Files    int           `json:"files"`
	Blocks   int           `json:"blocks"`
	Failures int           `json:"failures"`
	Coverage core.Coverage `json:"coverage"`
}

// Fraction returns the aggregate covered share across all instructions.
func (s Summary) Fraction() float64 { return s.Coverage.Fraction() }

// Summarize folds per-file results into one aggregate.
func Summarize(files []FileResult) Summary {
	var s Summary
	s.Files = len(files)
	for _, f := range files {
		s.Blocks += len(f.Blocks)
		s.Failures += f.Failures()
		for _, b := range f.Blocks {
			s.Coverage.Exact += b.Coverage.Exact
			s.Coverage.Fallback += b.Coverage.Fallback
			s.Coverage.Unknown += b.Coverage.Unknown
			for _, mn := range b.Coverage.UnknownMnemonics {
				s.Coverage.AddUnknownMnemonic(mn)
			}
		}
	}
	return s
}
