	.arch	armv9-a
	.text
	.global	sum
	.type	sum, %function
sum:
	mov	x3, #0
	// OSACA-BEGIN
.L0:
	ldr	d1, [x1, x3, lsl #3]
	fadd	d0, d0, d1
	add	x3, x3, #1
	cmp	x3, x4
	b.ne	.L0
	// OSACA-END
	ret
	.size	sum, .-sum
