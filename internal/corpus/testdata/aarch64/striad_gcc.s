	.arch	armv9-a
	.file	"striad.c"
	.text
	.align	2
	.global	striad
	.type	striad, %function
striad:
.LFB0:
	.cfi_startproc
	cmp	x3, #0
	b.le	.L1
	mov	x4, x3
.L0:
	ldr	q0, [x1]
	ldr	q1, [x2]
	fmla	v0.2d, v1.2d, v15.2d
	str	q0, [x0]
	add	x0, x0, #16
	add	x1, x1, #16
	add	x2, x2, #16
	cmp	x1, x4
	b.ne	.L0
.L1:
	ret
	.cfi_endproc
	.size	striad, .-striad
