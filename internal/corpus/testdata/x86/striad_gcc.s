	.file	"striad.c"
	.text
	.p2align 4
	.globl	striad
	.type	striad, @function
striad:
.LFB0:
	.cfi_startproc
	testq	%rcx, %rcx
	jle	.L4
	xorl	%eax, %eax
	.p2align 4,,10
.L0:
	vmovupd	(%rsi,%rax,8), %zmm0
	vfmadd231pd	(%rdx,%rax,8), %zmm15, %zmm0
	vmovupd	%zmm0, (%rdi,%rax,8)
	addq	$8, %rax
	cmpq	%rcx, %rax
	jne	.L0
.L4:
	ret
	.cfi_endproc
	.size	striad, .-striad
	.ident	"GCC: 13.2.0"
