	.file	"sum2d.c"
	.text
	.globl	sum2d
	.type	sum2d, @function
sum2d:
	.cfi_startproc
	xorl	%ecx, %ecx
	vxorpd	%xmm0, %xmm0, %xmm0
.L2:
	xorl	%eax, %eax
.L3:
	vaddsd	(%rsi,%rax,8), %xmm0, %xmm0
	incq	%rax
	cmpq	%rbx, %rax
	jne	.L3
	addq	%r8, %rsi
	incq	%rcx
	cmpq	%rdx, %rcx
	jne	.L2
	ret
	.cfi_endproc
	.size	sum2d, .-sum2d
