	.file	"dotint.c"
	.text
	.globl	dotint
	.type	dotint, @function
dotint:
	.cfi_startproc
	xorl	%eax, %eax
	vpxor	%ymm0, %ymm0, %ymm0
.L5:
	vmovupd	(%rsi,%rax,8), %ymm1
	vpmaddubsw	(%rdx,%rax,8), %ymm1, %ymm2
	vpmaddwd	%ymm2, %ymm3, %ymm2
	vpaddd	%ymm2, %ymm0, %ymm0
	addq	$4, %rax
	cmpq	%rcx, %rax
	jb	.L5
	ret
	.cfi_endproc
	.size	dotint, .-dotint
