package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"incore/internal/core"
	"incore/internal/ibench"
	"incore/internal/isa"
	"incore/internal/mca"
	"incore/internal/memsim"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// This file defines the memoized entry points the experiment runners
// share. Keys are built from *content*, not identity: a block is keyed by
// its architecture, dialect, and rendered assembly text — not its name —
// so the suite's duplicate code bodies (416 test blocks, 290 unique)
// collapse onto single computations, and so do identical analyses issued
// by different experiments (fig3, ECM, node-perf all analyze the same
// Ofast variants).
//
// Cached values are shared: callers must treat returned pointers, slices,
// and maps as immutable.
//
// With a persistent store attached (AttachStore), every wrapper here
// reads through and writes back to it on memo misses, so results also
// survive across processes; see persist.go for the tiering contract.

// BlockKey returns the content key of a block: everything that determines
// an analysis or simulation outcome, excluding the display name.
func BlockKey(b *isa.Block) string {
	return b.Arch + "\x00" + strconv.Itoa(int(b.Dialect)) + "\x00" + b.Text()
}

// simConfigKey folds every outcome-affecting Config field into the key.
// Trace is deliberately excluded — traced runs bypass the cache entirely —
// and so is DisableSteadyState: extrapolated and full-length runs are
// bit-identical by contract (sim/steady.go), so both may share entries.
func simConfigKey(cfg sim.Config) string {
	return fmt.Sprintf("%d|%d|%d|%d|%g|%t|%d",
		cfg.WarmupIters, cfg.MeasureIters, cfg.FMAAccForwardLat,
		cfg.CrossOpForwardSave, cfg.DivEarlyExitFactor,
		cfg.DisableRenaming, cfg.IssueWidthOverride)
}

// Analyze memoizes core.Analyzer.Analyze by (analyzer options, machine
// model, block content). With a store attached, results persist across
// processes in core.Result's stable wire form; a warm decode reattaches
// the requesting block and model, whose content the key already pins.
//
// Models are identified by CacheKey, not bare key: an unmodified
// built-in keeps its bare key (so stores written by earlier builds stay
// warm), while a runtime-loaded or what-if-mutated model carries its
// content fingerprint in the key and can never collide with a different
// scenario that happens to share its name. The same rule applies to
// Simulate, MCAPredict, and MeasureInstr below.
//
// Cold computations draw analysis scratch from core's internal
// sync.Pool, so concurrent pipeline jobs (and the serve tier routing
// through this function) share arenas safely; the memoized Result never
// aliases pooled memory.
func Analyze(an *core.Analyzer, b *isa.Block, m *uarch.Model) (*core.Result, error) {
	res, _, err := AnalyzeWarm(an, b, m)
	return res, err
}

// AnalyzeWarm is Analyze reporting provenance: warm is true when this
// call was served without a fresh computation — a memo hit, a
// singleflight attach to another requester's in-flight computation, or
// a store read. It is the per-item resume-accounting hook the job queue
// uses: after a kill-and-restart, a resumed job's already-stored items
// come back warm, and the cold count exposes exactly what was truly
// recomputed.
//
// The flag is race-free by construction: the computed variable is
// written only inside the compute closure, which the memo tier runs
// under sync.Once — callers that did not execute it never observe a
// write.
func AnalyzeWarm(an *core.Analyzer, b *isa.Block, m *uarch.Model) (*core.Result, bool, error) {
	key := "analyze\x00" + an.Fingerprint() + "\x00" + m.CacheKey() + "\x00" + BlockKey(b)
	computed := false
	res, err := doStored(shared, key,
		(*core.Result).MarshalStable,
		func(data []byte) (*core.Result, error) { return core.UnmarshalStable(data, b, m) },
		func() (*core.Result, error) { computed = true; return analyzeCold(an, b, m) })
	return res, err == nil && !computed, err
}

// Cell is the compact, persistable projection of one analysis that a
// design-space sweep stores per (model variant, block): the scalar
// outcomes downstream projections (ECM, Roofline, frequency) and Pareto
// fronts consume, without the per-instruction reports a full core.Result
// carries. Small cells keep a hundreds-of-variants sweep's store
// footprint proportional to its information content.
type Cell struct {
	// Prediction is the lower-bound cycles per iteration; Bound names
	// the binding constraint ("port", "issue", "lcd").
	Prediction float64 `json:"prediction"`
	Bound      string  `json:"bound"`
	// TPBound / IssueBound / CriticalPath / LCDCycles are the individual
	// bounds behind the prediction.
	TPBound      float64 `json:"tp_bound"`
	IssueBound   float64 `json:"issue_bound"`
	CriticalPath float64 `json:"critical_path"`
	LCDCycles    float64 `json:"lcd_cycles"`
	// TotalUops counts µ-ops per iteration; Unknown counts instructions
	// resolved through the degraded unknown-descriptor path.
	TotalUops int `json:"total_uops"`
	Unknown   int `json:"unknown,omitempty"`
	// TOLIt / TnOLIt are the per-iteration ECM in-core inputs: the
	// maximum port pressure off (with the LCD folded in) and on the
	// model's memory ports, in cycles per iteration. Scaling by
	// 8/elemsPerIter yields ecm.InCoreInputs' cache-line units. They are
	// stored because the split depends on the analyzing model's port
	// masks, which the cell (unlike a full result) no longer carries.
	TOLIt  float64 `json:"t_ol_it"`
	TnOLIt float64 `json:"t_nol_it"`
}

// CellOf projects an analysis result to its sweep cell.
func CellOf(res *core.Result) Cell {
	c := Cell{
		Prediction:   res.Prediction,
		Bound:        res.Bound,
		TPBound:      res.TPBound,
		IssueBound:   res.IssueBound,
		CriticalPath: res.CriticalPath,
		LCDCycles:    res.LCD.Cycles,
		TotalUops:    res.TotalUops,
		Unknown:      res.Coverage.Unknown,
	}
	m := res.Model
	memMask := m.LoadPorts | m.StoreAGUPorts | m.StoreDataPorts | m.WideLoadPorts
	for p, load := range res.PortPressure {
		if memMask.Has(p) {
			c.TnOLIt = max(c.TnOLIt, load)
		} else {
			c.TOLIt = max(c.TOLIt, load)
		}
	}
	c.TOLIt = max(c.TOLIt, res.LCD.Cycles)
	return c
}

// AnalyzeCellWarm is the design-space sweep's analysis entry point: it
// memoizes (and, with a store attached, persists) the Cell projection of
// one analysis, keyed like AnalyzeWarm by (analyzer options, model cache
// key, block content) — the full Model.CacheKey, never the port
// signature, so a sweep is warm-resumable per variant and a variant's
// cells can never collide with the built-in scenario sharing its key.
// Cold cells compute through the zero-allocation AnalyzeInternal arena
// path: the arena-owned Result is projected to a value Cell before the
// compute closure returns, so no arena memory escapes into the memo
// tier. ar is bound to the calling goroutine like any InternalArena.
// warm reports provenance exactly as AnalyzeWarm does.
func AnalyzeCellWarm(an *core.Analyzer, b *isa.Block, m *uarch.Model, ar *InternalArena) (Cell, bool, error) {
	key := "sweepcell\x00" + an.Fingerprint() + "\x00" + m.CacheKey() + "\x00" + BlockKey(b)
	computed := false
	cell, err := doStoredJSON(shared, key, func() (Cell, error) {
		computed = true
		res, err := AnalyzeInternal(an, b, m, ar)
		if err != nil {
			return Cell{}, err
		}
		return CellOf(res), nil
	})
	return cell, err == nil && !computed, err
}

// Simulate memoizes sim.Run by (machine model, simulator config, block
// content). Runs carrying a trace callback execute directly — a trace is a
// side effect the result cache must not swallow — but still draw their
// compiled Program from the artifact tier: tracing changes what Run
// reports, never what Compile produces, so traced and untraced runs of
// one (block, model) share a single compile.
func Simulate(b *isa.Block, m *uarch.Model, cfg sim.Config) (*sim.Result, error) {
	if cfg.Trace != nil {
		p, err := CompileProgram(b, m)
		if err != nil {
			return nil, err
		}
		return p.Run(cfg)
	}
	key := "sim\x00" + m.CacheKey() + "\x00" + simConfigKey(cfg) + "\x00" + BlockKey(b)
	return doStoredJSON(shared, key, func() (*sim.Result, error) {
		p, err := CompileProgram(b, m)
		if err != nil {
			return nil, err
		}
		return p.Run(cfg)
	})
}

// MCAPredict memoizes mca.PredictDefault by (machine model, block content).
// The memo miss replays a cached static schedule (compiledMCA), so
// distinct sim-config sweeps and post-restart recomputations share the
// lowering work.
func MCAPredict(b *isa.Block, m *uarch.Model) (*mca.Result, error) {
	key := "mca\x00" + m.CacheKey() + "\x00" + BlockKey(b)
	return doStoredJSON(shared, key, func() (*mca.Result, error) {
		c, err := compiledMCA(b, m)
		if err != nil {
			return nil, err
		}
		return c.Predict()
	})
}

// MeasureInstr memoizes ibench.Measure by (machine model, instruction
// kind, simulator config).
func MeasureInstr(m *uarch.Model, kind ibench.Kind, cfg sim.Config) (*ibench.Result, error) {
	if cfg.Trace != nil {
		return ibench.Measure(m, kind, cfg)
	}
	key := "ibench\x00" + m.CacheKey() + "\x00" + strconv.Itoa(int(kind)) + "\x00" + simConfigKey(cfg)
	return doStoredJSON(shared, key, func() (*ibench.Result, error) { return ibench.Measure(m, kind, cfg) })
}

// WACurve memoizes memsim.WACurve by (node key, store flavour, sweep).
func WACurve(key string, nt bool, counts []int) (map[int]float64, error) {
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = strconv.Itoa(c)
	}
	ck := fmt.Sprintf("wacurve\x00%s\x00%t\x00%s", key, nt, strings.Join(parts, ","))
	return doStoredJSON(shared, ck, func() (map[int]float64, error) { return memsim.WACurve(key, nt, counts) })
}

// Triad memoizes one triad sample — (node, active cores, lines per core,
// store flavour) — on a fresh memsim system. memsim.System.run resets all
// state per run, so a fresh system per sample is equivalent to a shared
// system swept serially.
func Triad(key string, cores, linesPerCore int, nt bool) (memsim.TrafficResult, error) {
	ck := fmt.Sprintf("triad\x00%s\x00%d\x00%d\x00%t", key, cores, linesPerCore, nt)
	return doStoredJSON(shared, ck, func() (memsim.TrafficResult, error) {
		cfg, err := memsim.ConfigFor(key)
		if err != nil {
			return memsim.TrafficResult{}, err
		}
		sys, err := memsim.NewSystem(cfg)
		if err != nil {
			return memsim.TrafficResult{}, err
		}
		return sys.RunTriad(cores, linesPerCore, nt)
	})
}
