package pipeline

import (
	"encoding/json"

	"incore/internal/core"
	"incore/internal/store"
)

// This file layers the persistent content-addressed store (internal/store)
// under the process-lifetime memo cache, forming a two-tier read path for
// every memoized entry point in memo.go:
//
//	memo cache (per process, singleflight)
//	  → store   (per machine: sharded in-memory LRU over on-disk entries)
//	    → compute
//
// The memo cache keeps singleflight semantics and pointer sharing within
// a process; the store makes results survive across processes. Both tiers
// use the same content keys, so anything the memo layer would share, the
// persistent layer shares too. Only successful computations persist:
// errors stay process-local (cached by the memo tier) so a transient
// failure never becomes a durable wrong answer.

// persistSchemaVersion stamps stored payloads. It covers the JSON
// encodings used by doStoredJSON below; core.Result's encoding is
// versioned separately by core.ResultSchemaVersion, and StoreSchema folds
// both in so a bump to either self-evicts stale entries.
const persistSchemaVersion = 1

// StoreSchema is the payload schema version CLIs pass to store.Open.
func StoreSchema() int {
	return persistSchemaVersion*1000 + core.ResultSchemaVersion
}

// persistent is the process-wide store behind the memo cache; nil means
// results live only for the process lifetime. Like shared, it is set once
// at startup (AttachStore) before any pipeline work runs.
var persistent *store.Store

// AttachStore opens (creating if needed) dir as the persistent result
// store behind the memo cache and returns it so callers can report its
// accounting. Call it before submitting pipeline work.
func AttachStore(dir string) (*store.Store, error) {
	st, err := store.Open(dir, store.Options{Schema: StoreSchema()})
	if err != nil {
		return nil, err
	}
	persistent = st
	return st, nil
}

// PersistentStore returns the attached store, or nil when results are
// process-local only.
func PersistentStore() *store.Store { return persistent }

// SwapTiers replaces the memo cache and persistent store, returning the
// previous pair so the caller can restore them. It exists for tests in
// other packages (serve's peer-store suite) that need an isolated store
// behind a live server; production code attaches once at startup and
// never swaps.
func SwapTiers(c *Cache, st *store.Store) (*Cache, *store.Store) {
	oldC, oldSt := shared, persistent
	shared, persistent = c, st
	return oldC, oldSt
}

// doStored is Do with the persistent store layered underneath: on a memo
// miss it tries the store before computing, and persists what it computes.
// dec doubles as the store lookup's validator, so a stored payload that
// fails it (payload drift without a schema bump) is evicted and counted
// as a cold lookup — never a warm hit — then recomputed and overwritten
// rather than surfaced as an error.
func doStored[T any](c *Cache, key string, enc func(T) ([]byte, error), dec func([]byte) (T, error), fn func() (T, error)) (T, error) {
	st := persistent
	if st == nil {
		return Do(c, key, fn)
	}
	return Do(c, key, func() (T, error) {
		var decoded T
		if _, ok := st.GetValidated(key, func(data []byte) error {
			v, err := dec(data)
			if err == nil {
				decoded = v
			}
			return err
		}); ok {
			return decoded, nil
		}
		v, err := fn()
		if err != nil {
			return v, err
		}
		if data, err := enc(v); err == nil {
			st.Put(key, data)
		}
		return v, nil
	})
}

// doStoredJSON is doStored for results that are plain data — every
// exported field, no unexported state, no identity pointers — where
// encoding/json round-trips the value exactly (float64 encodes shortest
// round-trippable, so warm and cold runs render identical bytes).
func doStoredJSON[T any](c *Cache, key string, fn func() (T, error)) (T, error) {
	return doStored(c, key,
		func(v T) ([]byte, error) { return json.Marshal(v) },
		func(data []byte) (T, error) {
			var v T
			err := json.Unmarshal(data, &v)
			return v, err
		},
		fn)
}
