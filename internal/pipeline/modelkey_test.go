package pipeline

import (
	"bytes"
	"testing"

	"incore/internal/sim"
	"incore/internal/uarch"
)

// editedVariant clones a built-in through its machine-file wire form and
// applies the ISSUE-style what-if edit — an extra store-data port — while
// keeping the built-in's key, exactly the exported-then-edited workflow
// of `modelinfo -export` + `osaca -machine`.
func editedVariant(t *testing.T, key string) *uarch.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := uarch.MustGet(key).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := uarch.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v.Ports = append(v.Ports, "SD2")
	v.StoreDataPorts |= 1 << uint(len(v.Ports)-1)
	v.StoreAGUPorts |= v.PortsByName("AGU1")
	if err := v.Reindex(); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestVariantModelsShareStoreWithoutCollisions is the cache-poisoning
// acceptance test: a built-in model and an edited variant reusing its key
// run through pipeline.Analyze against the same persistent store. The
// variant's fingerprinted CacheKey keeps the entries apart — the store
// fills with two distinct results, and a second process warm-reads each
// under its own identity.
func TestVariantModelsShareStoreWithoutCollisions(t *testing.T) {
	dir := t.TempDir()
	base, an, tb := genBlock(t, "zen4", "init")
	variant := editedVariant(t, "zen4")
	if variant.CacheKey() == base.CacheKey() {
		t.Fatalf("edited variant must not share the built-in cache key %q", base.CacheKey())
	}

	st1 := withFreshTiers(t, dir)
	baseRes, err := Analyze(an, tb.Block, base)
	if err != nil {
		t.Fatal(err)
	}
	varRes, err := Analyze(an, tb.Block, variant)
	if err != nil {
		t.Fatal(err)
	}
	if got := st1.Stats(); got.Misses != 2 {
		t.Fatalf("store stats = %+v; want 2 cold entries (one per scenario)", got)
	}
	// The edit widens the store bottleneck, so the store-stream (init)
	// prediction must actually move — proof the variant was analyzed as
	// itself, not served the built-in's cached result.
	if varRes.Prediction >= baseRes.Prediction {
		t.Errorf("extra store-data port did not help: %f vs %f", varRes.Prediction, baseRes.Prediction)
	}

	// A fresh process over the same store: both scenarios warm-hit, and
	// each gets its own result back — the built-in's entry was not
	// poisoned by the variant (or vice versa).
	st2 := withFreshTiers(t, dir)
	baseWarm, err := Analyze(an, tb.Block, base)
	if err != nil {
		t.Fatal(err)
	}
	varWarm, err := Analyze(an, tb.Block, variant)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats(); got.Misses != 0 || got.Warm() != 2 {
		t.Fatalf("warm run store stats = %+v; want 2 warm / 0 cold", got)
	}
	if baseWarm.Prediction != baseRes.Prediction || baseWarm.Report() != baseRes.Report() {
		t.Error("built-in result changed across processes")
	}
	if varWarm.Prediction != varRes.Prediction || varWarm.Report() != varRes.Report() {
		t.Error("variant result changed across processes")
	}
	if baseWarm.Model != base || varWarm.Model != variant {
		t.Error("warm results must reattach the requesting model")
	}
}

// TestSimulateKeysSeparateVariants extends the no-collision rule to the
// simulator path (Simulate keys on CacheKey too).
func TestSimulateKeysSeparateVariants(t *testing.T) {
	dir := t.TempDir()
	base, _, tb := genBlock(t, "zen4", "init")
	variant := editedVariant(t, "zen4")

	st := withFreshTiers(t, dir)
	cfgBase := sim.DefaultConfig(base)
	cfgVar := sim.DefaultConfig(variant)
	baseRes, err := Simulate(tb.Block, base, cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	varRes, err := Simulate(tb.Block, variant, cfgVar)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Misses != 2 {
		t.Fatalf("store stats = %+v; want 2 cold entries", got)
	}
	if varRes.CyclesPerIter >= baseRes.CyclesPerIter {
		t.Errorf("extra store-data port did not help the simulator: %f vs %f",
			varRes.CyclesPerIter, baseRes.CyclesPerIter)
	}
}
