package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		p := NewPool(workers)
		in := make([]int, 100)
		for i := range in {
			in[i] = i
		}
		out, err := Map(p, in, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicError(t *testing.T) {
	in := []int{0, 1, 2, 3, 4, 5, 6, 7}
	fn := func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := Map(NewPool(workers), in, fn)
		if err == nil || err.Error() != "fail 1" {
			t.Errorf("workers=%d: err = %v, want fail 1 (lowest index)", workers, err)
		}
	}
}

func TestMapN(t *testing.T) {
	out, err := MapN(NewPool(4), 5, func(i int) (string, error) {
		return strings.Repeat("x", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[4] != "xxxx" || len(out) != 5 {
		t.Fatalf("out = %v", out)
	}
}

func TestPoolWidths(t *testing.T) {
	if NewPool(0).Workers() < 1 || NewPool(-3).Workers() < 1 {
		t.Error("non-positive widths must clamp to at least 1")
	}
	old := Default().Workers()
	defer SetDefaultWorkers(old)
	if got := SetDefaultWorkers(7); got != 7 || Default().Workers() != 7 {
		t.Errorf("SetDefaultWorkers: got %d / %d", got, Default().Workers())
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache()
	var executions atomic.Int64
	const callers = 64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := Do(c, "k", func() (int, error) {
				executions.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (singleflight)", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits / 1 entry", st, callers-1)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	calls := 0
	fn := func() (int, error) { calls++; return 0, errors.New("boom") }
	for i := 0; i < 3; i++ {
		if _, err := Do(c, "k", fn); err == nil {
			t.Fatal("want error")
		}
	}
	if calls != 1 {
		t.Errorf("failing compute ran %d times, want 1", calls)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache()
	if _, err := Do(c, "k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestGraphRespectsDependencies(t *testing.T) {
	g := NewGraph(NewPool(8))
	var mu sync.Mutex
	var log []string
	step := func(id string) func() (any, error) {
		return func() (any, error) {
			mu.Lock()
			log = append(log, id)
			mu.Unlock()
			return id + "-done", nil
		}
	}
	mustAdd := func(id string, deps ...string) {
		t.Helper()
		if err := g.Add(id, step(id), deps...); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("fetch")
	mustAdd("analyze", "fetch")
	mustAdd("simulate", "fetch")
	mustAdd("report", "analyze", "simulate")
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range log {
		pos[id] = i
	}
	if !(pos["fetch"] < pos["analyze"] && pos["fetch"] < pos["simulate"] && pos["analyze"] < pos["report"] && pos["simulate"] < pos["report"]) {
		t.Errorf("dependency order violated: %v", log)
	}
	v, err := g.Result("report")
	if err != nil || v != "report-done" {
		t.Errorf("Result(report) = %v, %v", v, err)
	}
}

func TestGraphFailurePropagates(t *testing.T) {
	g := NewGraph(NewPool(4))
	boom := errors.New("boom")
	g.Add("a", func() (any, error) { return nil, boom })
	ran := false
	g.Add("b", func() (any, error) { ran = true; return nil, nil }, "a")
	if err := g.Run(); !errors.Is(err, boom) {
		t.Errorf("Run err = %v, want boom", err)
	}
	if ran {
		t.Error("dependent of a failed job must be skipped")
	}
	if _, err := g.Result("b"); !errors.Is(err, boom) {
		t.Errorf("Result(b) err = %v, want wrapped boom", err)
	}
}

func TestGraphRejectsCycleAndUnknownDep(t *testing.T) {
	g := NewGraph(NewPool(1))
	g.Add("a", func() (any, error) { return nil, nil }, "b")
	g.Add("b", func() (any, error) { return nil, nil }, "a")
	if err := g.Run(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
	g2 := NewGraph(NewPool(1))
	g2.Add("a", func() (any, error) { return nil, nil }, "ghost")
	if err := g2.Run(); err == nil || !strings.Contains(err.Error(), "unknown dependency") {
		t.Errorf("unknown dep not detected: %v", err)
	}
	g3 := NewGraph(NewPool(1))
	g3.Add("a", func() (any, error) { return nil, nil })
	if err := g3.Add("a", func() (any, error) { return nil, nil }); err == nil {
		t.Error("duplicate id not rejected")
	}
	if err := g3.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g3.Run(); err == nil {
		t.Error("second Run not rejected")
	}
}

// ExampleMap lowers a serial loop onto the pool: results come back in
// input order no matter how many workers race, so rendered output is
// byte-identical at any -j.
func ExampleMap() {
	pool := NewPool(4)
	kernels := []string{"triad", "daxpy", "sum"}
	rows, err := Map(pool, kernels, func(k string) (string, error) {
		return fmt.Sprintf("%s: ok", k), nil
	})
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// triad: ok
	// daxpy: ok
	// sum: ok
}

// ExampleCache shows content-keyed memoization with singleflight
// semantics and hit/miss accounting.
func ExampleCache() {
	c := NewCache()
	expensive := func() (int, error) {
		fmt.Println("computing once")
		return 416, nil
	}
	for i := 0; i < 3; i++ {
		v, _ := Do(c, "fig3/goldencove/triad", expensive)
		fmt.Println(v)
	}
	st := c.Stats()
	fmt.Printf("hits=%d misses=%d\n", st.Hits, st.Misses)
	// Output:
	// computing once
	// 416
	// 416
	// 416
	// hits=2 misses=1
}
