// Package pipeline is the shared concurrent substrate for every
// experiment runner: a bounded worker pool with an order-preserving
// parallel map, a dependency-aware job graph, and a content-keyed,
// concurrency-safe result cache (see cache.go and memo.go) that
// memoizes in-core analyses and simulator runs.
//
// Design constraints, in order of priority:
//
//  1. Determinism. Map returns results in input order and Graph exposes
//     results by job id, so rendered experiment output is byte-identical
//     regardless of the worker count. Errors are reported deterministically
//     too: the error of the lowest-indexed failing job wins.
//  2. Memoization. Identical work — same kernel block content, same
//     machine model, same parameters — is executed once per process and
//     shared, with singleflight semantics under concurrency (concurrent
//     requesters of a key block for the one executor instead of
//     duplicating work).
//  3. Bounded concurrency. A Pool is a width, not a queue: every Map or
//     Graph run schedules at most Workers() jobs at once. The default
//     pool width is set once at startup (cmd/repro -j N) via
//     SetDefaultWorkers.
//
// Typical use:
//
//	rows, err := pipeline.Map(pipeline.Default(), specs, runOneSpec)
//
// lowers a serial per-spec loop onto the pool while keeping the result
// slice, and therefore everything rendered from it, in spec order.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of concurrently executing jobs. The bound is
// process-wide per pool: every Map and Graph run on the same Pool draws
// worker slots from one shared semaphore, so nested submissions (an
// experiment job whose bandwidth sweep fans out again) cannot multiply
// the requested width. The zero Pool is not usable; construct with
// NewPool.
type Pool struct {
	workers int
	sem     chan struct{}
}

// NewPool returns a pool running at most workers jobs at once. A
// non-positive width selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// defaultPool is the process-wide pool used by the experiment runners.
// It starts serial so library consumers opt in to parallelism explicitly
// (cmd/repro -j N); tests override it per scenario.
var defaultPool atomic.Pointer[Pool]

func init() {
	defaultPool.Store(NewPool(1))
}

// Default returns the process-wide pool.
func Default() *Pool { return defaultPool.Load() }

// SetDefaultWorkers replaces the process-wide pool with one of the given
// width (non-positive: GOMAXPROCS) and returns the resulting width.
func SetDefaultWorkers(n int) int {
	p := NewPool(n)
	defaultPool.Store(p)
	return p.workers
}

// Map applies fn to every item on pool p and returns the results in input
// order. If any application fails, Map returns the error of the
// lowest-indexed failure (deterministic under any schedule) and no
// results; every item still runs — stopping early would make the reported
// failure depend on scheduling. A width-1 pool runs the items inline in
// order — the serial reference path that parallel runs must match byte
// for byte.
//
// Slot acquisition never blocks: when the pool's shared semaphore is
// full, the submitting goroutine runs the item inline instead of
// spawning. That keeps -j an honest process-wide cap under nesting (a
// slot-holding job whose own Map finds no free slots degrades to serial
// on its own goroutine) and makes nested Map calls deadlock-free by
// construction.
func Map[In, Out any](p *Pool, items []In, fn func(In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(items))
	if p.Workers() == 1 || len(items) <= 1 {
		for i := range items {
			r, err := fn(items[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i := range items {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				out[i], errs[i] = fn(items[i])
			}(i)
		default:
			out[i], errs[i] = fn(items[i])
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapN is Map over the index range [0, n): convenient when the "items"
// are (arch, kind) style cross products flattened by arithmetic.
func MapN[Out any](p *Pool, n int, fn func(i int) (Out, error)) ([]Out, error) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return Map(p, idx, fn)
}
