package pipeline

import (
	"testing"

	"incore/internal/uarch"
)

// These tests pin the compiled tier's port-signature keying — the
// sharing contract a design-space sweep's incremental recompute rides.

// TestNodeVariantSharesArtifacts: a variant differing only in node-level
// parameters must be served the base model's skeleton, descriptor table,
// and Program without compiling anything new, while its analysis results
// stay numerically identical to the base (node parameters are invisible
// to the in-core model).
func TestNodeVariantSharesArtifacts(t *testing.T) {
	m, an, tb := genBlock(t, "goldencove", "striad")
	ar := &InternalArena{}
	res, err := AnalyzeInternal(an, tb.Block, m, ar)
	if err != nil {
		t.Fatal(err)
	}
	basePred := res.Prediction

	v := loadedVariant(t, "goldencove")
	v.Node.MemBWGBs *= 2
	v.Node.Freq.TDPWatts -= 100
	if err := v.Reindex(); err != nil {
		t.Fatal(err)
	}
	if v.PortSignature() != m.PortSignature() {
		t.Fatal("node-only variant must keep the base port signature")
	}
	if v.CacheKey() == m.CacheKey() {
		t.Fatal("node-only variant must not keep the base cache key")
	}

	before := CompiledArtifacts().Stats()
	ar2 := &InternalArena{}
	res2, err := AnalyzeInternal(an, tb.Block, v, ar2)
	if err != nil {
		t.Fatal(err)
	}
	after := CompiledArtifacts().Stats()
	if after.Compiles != before.Compiles {
		t.Errorf("node variant compiled %d new artifacts; want 0 (all shared)", after.Compiles-before.Compiles)
	}
	if after.Descs != before.Descs || after.Skeletons != before.Skeletons {
		t.Errorf("node variant grew descs %d→%d / skeletons %d→%d; want no growth",
			before.Descs, after.Descs, before.Skeletons, after.Skeletons)
	}
	if res2.Prediction != basePred {
		t.Errorf("node variant prediction %v != base %v (in-core analysis must not see node params)",
			res2.Prediction, basePred)
	}

	// The simulator Program is shared by pointer.
	p1, err := CompileProgram(tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileProgram(tb.Block, v)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("node-only variant must share the base model's compiled Program")
	}
}

// TestPortVariantRecompilesDescsOnly: a port-count variant changes the
// signature, so descriptor tables recompile — but the model-independent
// skeleton and parsed block stay shared.
func TestPortVariantRecompilesDescsOnly(t *testing.T) {
	m, an, tb := genBlock(t, "goldencove", "striad")
	ar := &InternalArena{}
	if _, err := AnalyzeInternal(an, tb.Block, m, ar); err != nil {
		t.Fatal(err)
	}

	v := loadedVariant(t, "goldencove")
	// Drop the lowest-indexed load port (Golden Cove has several).
	v.LoadPorts &^= 1 << uint(v.LoadPorts.Indices()[0])
	if err := v.Reindex(); err != nil {
		t.Fatal(err)
	}
	if v.PortSignature() == m.PortSignature() {
		t.Fatal("port-count variant must change the port signature")
	}

	before := CompiledArtifacts().Stats()
	ar2 := &InternalArena{}
	if _, err := AnalyzeInternal(an, tb.Block, v, ar2); err != nil {
		t.Fatal(err)
	}
	after := CompiledArtifacts().Stats()
	if grew := after.Descs - before.Descs; grew != 1 {
		t.Errorf("port variant grew descs by %d; want exactly 1 (recompiled table)", grew)
	}
	if after.Skeletons != before.Skeletons {
		t.Errorf("port variant grew skeletons %d→%d; want shared", before.Skeletons, after.Skeletons)
	}
	if after.Blocks != before.Blocks {
		t.Errorf("port variant grew parsed blocks %d→%d; want shared", before.Blocks, after.Blocks)
	}
}

// TestMCAKeyedByModelKey: mca scheduler parameters derive from the model
// *key* (mca.ParamsFor), which the port signature deliberately excludes —
// so two models with identical signatures but different keys must not
// share a static schedule.
func TestMCAKeyedByModelKey(t *testing.T) {
	m, _, tb := genBlock(t, "goldencove", "striad")
	w := loadedVariant(t, "goldencove")
	w.Key = "goldencove-mca-key-test"
	if err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	if w.PortSignature() != m.PortSignature() {
		t.Fatal("key rename must not change the port signature")
	}
	c1, err := compiledMCA(tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compiledMCA(tb.Block, w)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("models with different keys shared an mca schedule despite key-dependent parameters")
	}
	// Whereas a node-only variant of the same key does share it.
	v := loadedVariant(t, "goldencove")
	v.Node.MemBWGBs *= 3
	if err := v.Reindex(); err != nil {
		t.Fatal(err)
	}
	c3, err := compiledMCA(tb.Block, v)
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c1 {
		t.Error("node-only variant must share the base model's mca schedule")
	}
}

// TestSweepCellWarmProvenance: the sweep-cell path is keyed on the full
// cache key (warm-resumable per variant, never colliding with the
// built-in) while riding the shared-artifact analysis underneath.
func TestSweepCellWarmProvenance(t *testing.T) {
	withFreshTiers(t, t.TempDir())
	m, an, tb := genBlock(t, "zen4", "striad")

	ar := &InternalArena{}
	c1, warm, err := AnalyzeCellWarm(an, tb.Block, m, ar)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("first cell must be cold")
	}
	if c1.Prediction <= 0 || c1.Bound == "" {
		t.Fatalf("implausible cell: %+v", c1)
	}
	c2, warm, err := AnalyzeCellWarm(an, tb.Block, m, ar)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("second cell must be warm")
	}
	if c1 != c2 {
		t.Fatalf("warm cell differs from cold: %+v vs %+v", c1, c2)
	}

	// A node variant gets its own (cold) cell even though it shares
	// every compiled artifact: results are keyed by full scenario.
	v := loadedVariant(t, "zen4")
	v.Node.MemBWGBs *= 2
	if err := v.Reindex(); err != nil {
		t.Fatal(err)
	}
	cv, warm, err := AnalyzeCellWarm(an, tb.Block, v, ar)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("variant's first cell must be cold (distinct cache key)")
	}
	if cv.Prediction != c1.Prediction {
		t.Fatalf("variant cell prediction %v != base %v", cv.Prediction, c1.Prediction)
	}

	// The cell agrees with the full analysis path.
	full, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := CellOf(full); got != c1 {
		t.Fatalf("cell %+v disagrees with full analysis projection %+v", c1, got)
	}
}

// TestPortSignatureDistinctAcrossBuiltins guards against an
// over-coarse signature: the three built-ins must not collide.
func TestPortSignatureDistinctAcrossBuiltins(t *testing.T) {
	sigs := map[string]string{}
	for _, key := range []string{"goldencove", "neoversev2", "zen4"} {
		sig := uarch.MustGet(key).PortSignature()
		if prev, ok := sigs[sig]; ok {
			t.Fatalf("%s and %s share a port signature", prev, key)
		}
		sigs[sig] = key
	}
}
