package pipeline

import (
	"bytes"
	"strconv"
	"sync"
	"testing"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// loadedVariant round-trips a built-in through its machine-file wire form
// — a runtime-loaded model keeping the built-in's key and (initially) its
// exact content.
func loadedVariant(t *testing.T, key string) *uarch.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := uarch.MustGet(key).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := uarch.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestProgramCacheInvalidation pins the compiled tier's identity rules:
// mutating a model in place and reindexing must miss the program cache
// (new fingerprint, new key), and a what-if variant must never share a
// Program with the built-in it shadows — even when its Key string is the
// built-in's. Runs under -race in CI like everything else here.
func TestProgramCacheInvalidation(t *testing.T) {
	_, _, tb := genBlock(t, "zen4", "init")
	builtin := uarch.MustGet("zen4")

	pBuiltin, err := CompileProgram(tb.Block, builtin)
	if err != nil {
		t.Fatal(err)
	}

	// A byte-identical loaded model shares the built-in's bare cache key
	// by design (warm-store compatibility), hence also its Program.
	v := loadedVariant(t, "zen4")
	if v.CacheKey() != builtin.CacheKey() {
		t.Fatalf("byte-identical loaded model has key %q, want %q", v.CacheKey(), builtin.CacheKey())
	}
	pSame, err := CompileProgram(tb.Block, v)
	if err != nil {
		t.Fatal(err)
	}
	if pSame != pBuiltin {
		t.Error("byte-identical loaded model must share the built-in's Program")
	}

	// In-place mutation + Reindex: the fingerprint moves, so the next
	// compile must miss and produce a fresh Program.
	v.LoadLat++
	if err := v.Reindex(); err != nil {
		t.Fatal(err)
	}
	if v.CacheKey() == builtin.CacheKey() {
		t.Fatal("mutated model must not keep the built-in cache key")
	}
	pMut, err := CompileProgram(tb.Block, v)
	if err != nil {
		t.Fatal(err)
	}
	if pMut == pBuiltin {
		t.Error("mutated+reindexed model was served the built-in's Program")
	}

	// Same rule through a registered what-if model shadowing the built-in
	// Key (registered under its own key to avoid a registry conflict).
	w := loadedVariant(t, "zen4")
	w.Key = "zen4-whatif-artifact-test"
	w.LoadLat += 2
	if err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	if _, err := uarch.Register(w); err != nil {
		t.Fatal(err)
	}
	pReg, err := CompileProgram(tb.Block, w)
	if err != nil {
		t.Fatal(err)
	}
	if pReg == pBuiltin || pReg == pMut {
		t.Error("registered what-if model must compile its own Program")
	}
}

// TestConcurrentSimulateCompilesOnce is the singleflight observability
// test: N goroutines issue cold Simulate calls with N *distinct* sim
// configs (distinct memo keys, so the memo tier cannot collapse them) for
// one (block, model) — and the program artifact still compiles exactly
// once, with every other requester recorded as a hit or an in-flight
// attach.
func TestConcurrentSimulateCompilesOnce(t *testing.T) {
	withFreshTiers(t, t.TempDir())
	m, _, tb := genBlock(t, "goldencove", "striad")

	// A fresh block copy: the shared artifact cache may already hold this
	// content under (arch, model) from another test, so rename-and-reparse
	// is not enough — vary the content key via a distinct instruction
	// count? No: content is what we must keep. Instead measure deltas.
	before := CompiledArtifacts().Stats()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := sim.DefaultConfig(m)
			cfg.MeasureIters += i // distinct memo key per goroutine
			_, errs[i] = Simulate(tb.Block, m, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}

	after := CompiledArtifacts().Stats()
	// The program entry for this (block, model) existed at most once
	// before; all n requests resolve to one entry regardless.
	if grew := after.Programs - before.Programs; grew > 1 {
		t.Errorf("programs grew by %d; want at most 1 (singleflight)", grew)
	}
	if served := (after.Hits - before.Hits) + (after.Attaches - before.Attaches) +
		(after.Compiles - before.Compiles); served < n {
		t.Errorf("accounted %d artifact requests; want >= %d", served, n)
	}
	// All runs share one Program pointer.
	p1, err := CompileProgram(tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileProgram(tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("repeated CompileProgram returned distinct Programs")
	}
}

// TestTracedSharesCompile pins that a traced run bypasses the result memo
// but not the compile: it draws the same Program the untraced run cached.
func TestTracedSharesCompile(t *testing.T) {
	withFreshTiers(t, t.TempDir())
	m, _, tb := genBlock(t, "zen4", "update")

	cfg := sim.DefaultConfig(m)
	untraced, err := Simulate(tb.Block, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := CompiledArtifacts().Stats()

	traces := 0
	cfg.Trace = func(dyn int, instr string, fetch, dispatch, start, ready, retire float64) { traces++ }
	traced, err := Simulate(tb.Block, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traces == 0 {
		t.Fatal("trace callback never fired")
	}
	if traced.CyclesPerIter != untraced.CyclesPerIter {
		t.Errorf("traced run diverged: %f vs %f", traced.CyclesPerIter, untraced.CyclesPerIter)
	}

	after := CompiledArtifacts().Stats()
	if after.Programs != before.Programs {
		t.Errorf("traced run compiled a new Program (%d -> %d); must reuse the cached one",
			before.Programs, after.Programs)
	}
	if after.Hits+after.Attaches <= before.Hits+before.Attaches {
		t.Error("traced run did not register as a warm artifact request")
	}
}

// TestParseRequestBlockSharesInstrs pins the parse cache's naming rule:
// two requests with identical text under different names share one parsed
// instruction slice, each seeing its own name.
func TestParseRequestBlockSharesInstrs(t *testing.T) {
	asm := ".L0:\n\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjb .L0\n"
	b1, err := ParseRequestBlock("alpha", "zen4", uarch.MustGet("zen4").Dialect, asm)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ParseRequestBlock("beta", "zen4", uarch.MustGet("zen4").Dialect, asm)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Name != "alpha" || b2.Name != "beta" {
		t.Fatalf("names = %q, %q; want alpha, beta", b1.Name, b2.Name)
	}
	if len(b1.Instrs) == 0 || &b1.Instrs[0] != &b2.Instrs[0] {
		t.Error("identical request text must share one parsed instruction slice")
	}
	// Same text, same name: the cached pointer itself comes back.
	b3, err := ParseRequestBlock("alpha", "zen4", uarch.MustGet("zen4").Dialect, asm)
	if err != nil {
		t.Fatal(err)
	}
	if b3 != b1 && &b3.Instrs[0] != &b1.Instrs[0] {
		t.Error("re-request under the original name must hit the cache")
	}
}

// TestAnalyzeInternalMatchesAnalyze pins the internal path's equivalence
// contract (same report bytes as the escaping path) and its headline
// property: zero heap allocations per call once warm.
func TestAnalyzeInternalMatchesAnalyze(t *testing.T) {
	for _, arch := range []string{"goldencove", "zen4", "neoversev2"} {
		for _, kernel := range []string{"striad", "sum", "init"} {
			m, an, tb := genBlock(t, arch, kernel)
			want, err := an.Analyze(tb.Block, m)
			if err != nil {
				t.Fatal(err)
			}
			ar := &InternalArena{}
			got, err := AnalyzeInternal(an, tb.Block, m, ar)
			if err != nil {
				t.Fatal(err)
			}
			if got.Report() != want.Report() {
				t.Errorf("%s/%s: internal path report diverges from Analyze", arch, kernel)
			}
			if got.Prediction != want.Prediction || got.Bound != want.Bound {
				t.Errorf("%s/%s: prediction %f (%s) vs %f (%s)", arch, kernel,
					got.Prediction, got.Bound, want.Prediction, want.Bound)
			}
		}
	}
}

func TestAnalyzeInternalZeroAllocs(t *testing.T) {
	m, an, tb := genBlock(t, "goldencove", "striad")
	ar := &InternalArena{}
	if _, err := AnalyzeInternal(an, tb.Block, m, ar); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AnalyzeInternal(an, tb.Block, m, ar); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm AnalyzeInternal allocates %v/op; want 0", allocs)
	}
}

// TestArtifactErrorsCached pins that failed builds are cached like
// successes (determinism over optimism, matching the memo tier) and do
// not count as cached entries or bytes.
func TestArtifactErrorsCached(t *testing.T) {
	m := uarch.MustGet("zen4")
	asm := "\tmov $notanumber, %rax\n"
	before := CompiledArtifacts().Stats()
	var firstErr error
	for i := 0; i < 3; i++ {
		_, err := ParseRequestBlock("bad"+strconv.Itoa(i), m.Key, m.Dialect, asm)
		if err == nil {
			t.Fatal("hostile text parsed successfully")
		}
		if firstErr == nil {
			firstErr = err
		} else if err.Error() != firstErr.Error() {
			t.Errorf("error changed across cached retries: %v vs %v", err, firstErr)
		}
	}
	after := CompiledArtifacts().Stats()
	if after.Blocks != before.Blocks {
		t.Error("failed parses must not count as cached blocks")
	}
	if after.BytesEstimated != before.BytesEstimated {
		t.Error("failed parses must not count bytes")
	}
}

func BenchmarkAnalyzeInternal(b *testing.B) {
	m := uarch.MustGet("goldencove")
	an := core.New()
	k, err := kernels.ByName("striad")
	if err != nil {
		b.Fatal(err)
	}
	blk, err := kernels.Generate(k, kernels.Config{
		Arch: "goldencove", Compiler: kernels.CompilersFor("goldencove")[0], Opt: kernels.Ofast,
	})
	if err != nil {
		b.Fatal(err)
	}
	ar := &InternalArena{}
	if _, err := AnalyzeInternal(an, blk, m, ar); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeInternal(an, blk, m, ar); err != nil {
			b.Fatal(err)
		}
	}
}
