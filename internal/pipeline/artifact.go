package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"

	"incore/internal/core"
	"incore/internal/depgraph"
	"incore/internal/isa"
	"incore/internal/mca"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// This file is the compiled-artifact tier: a process-lifetime,
// content-keyed cache of the pipeline's expensive front-ends — compiled
// sim.Programs, parsed request blocks, depgraph skeletons, resolved
// descriptor tables, and mca static schedules. Artifacts differ from memo
// results in two ways that give them their own tier:
//
//   - they are pointer-shared and immutable, not serializable values: a
//     *sim.Program full of interned-ID tables has no stable wire form
//     worth inventing, so artifacts never enter the persistent store (and
//     therefore never force a store schema bump);
//   - they are cheap to rebuild relative to a disk round-trip but
//     expensive relative to a warm execute, so the right lifetime is the
//     process, not the store — a restart recompiles in microseconds per
//     block, while a busy server replaying hot blocks across many models
//     (or a model sweep over one block) skips straight to the engine.
//
// Keys are content keys, exactly like the memo tier: block content via
// BlockKey (or a sha256 of raw request text for the parse cache), models
// via Model.PortSignature — the sub-fingerprint over only the
// port/descriptor-relevant model subset (ports, structural parameters,
// memory pipeline, unknown policy, instruction table). Artifacts depend on
// exactly that subset, so two models differing only in node-level
// parameters (bandwidth, ECM, TDP, frequencies) or labels share every
// compiled artifact — the sharing a design-space sweep's node variants
// ride — while an in-place port mutation plus Reindex (new signature)
// still misses, and a what-if model can never share a mis-parameterized
// Program with the built-in it shadows. Memo and store entries, by
// contrast, stay keyed on the full Model.CacheKey: a *result* names the
// whole modeled scenario, an *artifact* only its in-core inputs. Errors
// are cached like successes (determinism over optimism, matching
// Cache.Do). SwapTiers deliberately does not touch this tier: artifacts
// are content-addressed and model-signed, so they stay valid across store
// swaps.

// artifactKind indexes the per-kind entry counters.
type artifactKind int

const (
	kindProgram artifactKind = iota
	kindBlock
	kindSkeleton
	kindDescs
	kindMCA
	numArtifactKinds
)

// Artifacts is a concurrency-safe compiled-artifact cache with
// singleflight semantics and three-way accounting: the executor of a key
// counts one compile, a requester that found the entry already built
// counts a hit, and a requester that arrived while the build was in
// flight counts a singleflight attach (it blocked on the executor instead
// of duplicating the work).
type Artifacts struct {
	mu sync.Mutex
	m  map[string]*aentry

	kinds    [numArtifactKinds]atomic.Int64
	hits     atomic.Uint64
	attaches atomic.Uint64
	compiles atomic.Uint64
	bytes    atomic.Int64
}

type aentry struct {
	once sync.Once
	done atomic.Bool
	val  any
	err  error
}

// NewArtifacts returns an empty artifact cache.
func NewArtifacts() *Artifacts { return &Artifacts{m: map[string]*aentry{}} }

// do returns the cached artifact for key, building it with fn on first
// use. size, when non-nil, estimates the retained bytes of a successful
// build for the accounting.
func (a *Artifacts) do(kind artifactKind, key string, size func(any) int, fn func() (any, error)) (any, error) {
	a.mu.Lock()
	e, ok := a.m[key]
	if !ok {
		e = &aentry{}
		a.m[key] = e
	}
	a.mu.Unlock()
	settled := ok && e.done.Load()
	executed := false
	e.once.Do(func() {
		executed = true
		e.val, e.err = fn()
		if e.err == nil {
			a.kinds[kind].Add(1)
			if size != nil {
				a.bytes.Add(int64(size(e.val)))
			}
		}
		e.done.Store(true)
	})
	switch {
	case executed:
		a.compiles.Add(1)
	case settled:
		a.hits.Add(1)
	default:
		a.attaches.Add(1)
	}
	return e.val, e.err
}

// ArtifactStats is a point-in-time accounting snapshot of the compiled
// tier. Like the memo tier's Stats, the counts depend only on the
// sequence of requested keys, not on scheduling — except the hit/attach
// split, which by definition records whether a requester raced the
// build; Hits+Attaches together are schedule-independent.
type ArtifactStats struct {
	// Per-kind successful-build counts (cached entries, errors excluded).
	Programs  int64 `json:"programs"`
	Blocks    int64 `json:"blocks"`
	Skeletons int64 `json:"skeletons"`
	Descs     int64 `json:"descs"`
	MCA       int64 `json:"mca"`

	Compiles uint64 `json:"compiles"`
	Hits     uint64 `json:"hits"`
	Attaches uint64 `json:"attaches"`
	// BytesEstimated roughly approximates retained artifact bytes; see
	// the SizeEstimate methods for what "estimate" means here.
	BytesEstimated int64 `json:"bytes_estimated"`
}

// Stats returns the current accounting.
func (a *Artifacts) Stats() ArtifactStats {
	return ArtifactStats{
		Programs:       a.kinds[kindProgram].Load(),
		Blocks:         a.kinds[kindBlock].Load(),
		Skeletons:      a.kinds[kindSkeleton].Load(),
		Descs:          a.kinds[kindDescs].Load(),
		MCA:            a.kinds[kindMCA].Load(),
		Compiles:       a.compiles.Load(),
		Hits:           a.hits.Load(),
		Attaches:       a.attaches.Load(),
		BytesEstimated: a.bytes.Load(),
	}
}

// Reset drops all artifacts and zeroes the counters (tests). In-flight
// builds keyed before the reset complete against the old entries.
func (a *Artifacts) Reset() {
	a.mu.Lock()
	a.m = map[string]*aentry{}
	a.mu.Unlock()
	for i := range a.kinds {
		a.kinds[i].Store(0)
	}
	a.hits.Store(0)
	a.attaches.Store(0)
	a.compiles.Store(0)
	a.bytes.Store(0)
}

// doArtifact is the typed wrapper over Artifacts.do.
func doArtifact[T any](a *Artifacts, kind artifactKind, key string, size func(T) int, fn func() (T, error)) (T, error) {
	v, err := a.do(kind, key,
		func(v any) int { return size(v.(T)) },
		func() (any, error) { return fn() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// artifacts is the process-wide compiled-artifact cache.
var artifacts = NewArtifacts()

// CompiledArtifacts returns the process-wide compiled-artifact cache (for
// stats reporting and test resets).
func CompiledArtifacts() *Artifacts { return artifacts }

// CompileProgram returns the process-cached compiled program for (block
// content, model port signature). The program is shared and immutable —
// sim.Program is safe for concurrent Run — and compiles exactly once per
// key under singleflight regardless of how many goroutines request it
// cold. Keying on PortSignature rather than CacheKey is safe because both
// Compile and the engine's Run-time reads of the retained model touch
// only signature-covered fields (lookup tables, ports, structural
// frontend/backend parameters); node-only model variants therefore share
// one Program. Traced and untraced simulations share one entry: a trace
// changes what Run reports, never what Compile produces.
func CompileProgram(b *isa.Block, m *uarch.Model) (*sim.Program, error) {
	key := "prog\x00" + m.PortSignature() + "\x00" + BlockKey(b)
	return doArtifact(artifacts, kindProgram, key, (*sim.Program).SizeEstimate,
		func() (*sim.Program, error) { return sim.Compile(b, m) })
}

// ParseRequestBlock returns the process-cached parse of one request's
// assembly text — the serve tier's analogue of the inline-machine cache,
// applied to block text: repeated requests carrying the same listing for
// the same arch and dialect share one parsed block (and, downstream, one
// skeleton and one set of memoized results). The text is keyed by sha256
// rather than verbatim so the cache does not retain a second copy of
// every listing. Cached blocks are shared and must be treated as
// immutable; when the cached block was first parsed under a different
// name, the returned block is a shallow copy carrying the requested name
// over the shared instruction slice.
func ParseRequestBlock(name, arch string, d isa.Dialect, asm string) (*isa.Block, error) {
	sum := sha256.Sum256([]byte(asm))
	key := "block\x00" + arch + "\x00" + strconv.Itoa(int(d)) + "\x00" + hex.EncodeToString(sum[:])
	b, err := doArtifact(artifacts, kindBlock, key, blockSizeEstimate,
		func() (*isa.Block, error) { return isa.ParseMarkedBlock(name, arch, d, asm) })
	if err != nil {
		return nil, err
	}
	if b.Name != name {
		labeled := *b
		labeled.Name = name
		return &labeled, nil
	}
	return b, nil
}

// blockSizeEstimate roughly approximates a parsed block's retained bytes.
func blockSizeEstimate(b *isa.Block) int {
	size := 96
	for i := range b.Instrs {
		in := &b.Instrs[i]
		size += 160 + len(in.Raw) + len(in.Mnemonic) + len(in.Label) + 56*len(in.Operands)
	}
	return size
}

// analysisSkeleton returns the process-cached dependency-structure
// skeleton for (block content, structural options). The skeleton is
// model-independent: every model of the block's dialect instantiates
// graphs from the same entry.
func analysisSkeleton(b *isa.Block, opt depgraph.Options) (*depgraph.Skeleton, error) {
	key := "skel\x00falsedeps=" + strconv.FormatBool(opt.IncludeFalseDeps) +
		"|memwin=" + strconv.FormatInt(opt.MemCarriedWindow, 10) + "\x00" + BlockKey(b)
	return doArtifact(artifacts, kindSkeleton, key, (*depgraph.Skeleton).SizeEstimate,
		func() (*depgraph.Skeleton, error) { return depgraph.NewSkeleton(b, opt) })
}

// analysisDescs returns the process-cached resolved-descriptor table for
// (block content, model port signature, degrade policy) — the per-model
// half of graph construction. Keyed by Model.PortSignature: descriptor
// resolution reads only the signature-covered subset, so node-only model
// variants share one table while a mutated-and-reindexed port table still
// resolves its own.
func analysisDescs(b *isa.Block, m *uarch.Model, sk *depgraph.Skeleton, opt depgraph.Options) ([]uarch.Desc, error) {
	key := "descs\x00" + m.PortSignature() + "\x00degrade=" + strconv.FormatBool(opt.DegradeUnknown) +
		"\x00" + BlockKey(b)
	return doArtifact(artifacts, kindDescs, key, descsSizeEstimate,
		func() ([]uarch.Desc, error) { return sk.ResolveDescs(m, opt.DegradeUnknown) })
}

// descsSizeEstimate roughly approximates a descriptor table's retained
// bytes (µ-op slices are often shared with the model's tables; counting
// them anyway makes this an upper bound).
func descsSizeEstimate(ds []uarch.Desc) int {
	size := len(ds) * 112
	for i := range ds {
		size += 24 * len(ds[i].Uops)
	}
	return size
}

// compiledMCA returns the process-cached mca static schedule for (block
// content, model key, model port signature). The signature covers the
// tables mca lowering reads; the key must ride alongside because
// scheduler parameters are derived from it (mca.ParamsFor), which the
// signature deliberately excludes.
func compiledMCA(b *isa.Block, m *uarch.Model) (*mca.Compiled, error) {
	key := "mcaprog\x00" + m.Key + "\x00" + m.PortSignature() + "\x00" + BlockKey(b)
	return doArtifact(artifacts, kindMCA, key, (*mca.Compiled).SizeEstimate,
		func() (*mca.Compiled, error) { return mca.Compile(b, m, mca.ParamsFor(m.Key)) })
}

// analyzeCold is the compute path behind AnalyzeWarm's memo entry: it
// assembles the analysis from cached artifacts (skeleton + descriptor
// table) so a memo-cold analysis of a known block skips effect extraction
// and graph structure discovery. Byte-identical to an.Analyze by the
// Skeleton.Instantiate contract (pinned by tests and the repro CI gate);
// the rare dialect-mismatched pairing falls back to the direct path.
func analyzeCold(an *core.Analyzer, b *isa.Block, m *uarch.Model) (*core.Result, error) {
	if b.Dialect != m.Dialect {
		return an.Analyze(b, m)
	}
	sk, err := analysisSkeleton(b, an.Opt)
	if err != nil {
		return nil, err
	}
	descs, err := analysisDescs(b, m, sk, an.Opt)
	if err != nil {
		return nil, err
	}
	return an.AnalyzeCompiled(b, m, sk, descs)
}

// InternalArena is the reusable state behind AnalyzeInternal: a
// core.ResultArena plus the artifact bindings of the last (block, model,
// options) triple, revalidated by pointer and model fingerprint so a
// steady stream of analyses of one pair does zero key construction and
// zero heap work. Single-goroutine, like the ResultArena it embeds.
type InternalArena struct {
	res core.ResultArena

	lastBlock *isa.Block
	lastModel *uarch.Model
	lastFP    string
	lastOpt   depgraph.Options
	sk        *depgraph.Skeleton
	descs     []uarch.Desc
}

// AnalyzeInternal is the zero-allocation analysis path for
// pipeline-internal consumers (suite runners, sweeps, benchmarks): it
// bypasses the memo and store tiers entirely and returns ar's arena-owned
// Result. The Result is valid only until ar's next use and must never be
// retained, shared across goroutines, memoized, or persisted — use
// Analyze for results that escape. Numerically and textually identical to
// Analyze for the same inputs.
func AnalyzeInternal(an *core.Analyzer, b *isa.Block, m *uarch.Model, ar *InternalArena) (*core.Result, error) {
	if b.Dialect != m.Dialect {
		return an.Analyze(b, m)
	}
	opt := an.Opt
	if ar.sk == nil || ar.lastBlock != b || ar.lastModel != m ||
		ar.lastFP != m.Fingerprint() || ar.lastOpt != opt {
		sk, err := analysisSkeleton(b, opt)
		if err != nil {
			return nil, err
		}
		descs, err := analysisDescs(b, m, sk, opt)
		if err != nil {
			return nil, err
		}
		ar.sk, ar.descs = sk, descs
		ar.lastBlock, ar.lastModel, ar.lastFP, ar.lastOpt = b, m, m.Fingerprint(), opt
	}
	return an.AnalyzeArena(b, m, ar.sk, ar.descs, &ar.res)
}
