package pipeline

import (
	"bytes"
	"testing"

	"incore/internal/store"
)

// pr5StoreSchema is the wire schema stamped by processes before the
// coverage fields landed in core.Result (persist 1, result schema 1).
// The coverage change bumped core.ResultSchemaVersion deliberately, so
// entries written under this stamp must self-evict rather than decode
// into a Result that silently lacks coverage accounting.
const pr5StoreSchema = 1*1000 + 1

// TestSchemaBumpSelfEvictsOldEntries proves the documented schema-bump
// contract end to end: an entry written by an old-schema process — even
// one whose payload bytes would decode perfectly well today — is evicted
// from disk by the first current-schema lookup, recomputed cold, and
// served warm thereafter.
func TestSchemaBumpSelfEvictsOldEntries(t *testing.T) {
	if StoreSchema() <= pr5StoreSchema {
		t.Fatalf("StoreSchema() = %d, not bumped past the pre-coverage %d; "+
			"adding wire fields without a bump would serve stale results as warm hits",
			StoreSchema(), pr5StoreSchema)
	}

	dir := t.TempDir()
	m, an, tb := genBlock(t, "goldencove", "striad")
	key := "analyze\x00" + an.Fingerprint() + "\x00" + m.Key + "\x00" + BlockKey(tb.Block)

	// Compute once under the current schema purely to obtain payload
	// bytes that the current decoder accepts.
	st0 := withFreshTiers(t, t.TempDir())
	cold, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	payload, ok := st0.Get(key)
	if !ok {
		t.Fatal("cold analysis did not persist its result")
	}

	// An old-schema process plants that payload in dir and can read it
	// back — the entry is intact, only its schema stamp is old.
	stOld, err := store.Open(dir, store.Options{Schema: pr5StoreSchema})
	if err != nil {
		t.Fatal(err)
	}
	stOld.Put(key, payload)
	if got, ok := stOld.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("old-schema store cannot read its own entry back")
	}

	// A current-schema process over the same directory must treat the
	// entry as stale: evicted and recomputed, never decoded — even
	// though the payload itself would decode.
	st1 := withFreshTiers(t, dir)
	r, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := st1.Stats(); got.Warm() != 0 || got.Misses != 1 || got.Evictions != 1 {
		t.Fatalf("stats over old-schema entry = %+v; want 0 warm, 1 miss, 1 eviction", got)
	}
	if r.Report() != cold.Report() {
		t.Errorf("recomputed report differs from reference:\n%s\nvs\n%s", r.Report(), cold.Report())
	}

	// The eviction rewrote the entry under the current schema: a third
	// process serves it warm with byte-identical rendering.
	st2 := withFreshTiers(t, dir)
	warm, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats(); got.Misses != 0 || got.DiskHits != 1 {
		t.Fatalf("warm stats after schema eviction = %+v; want 0 misses, 1 disk hit", got)
	}
	if warm.Report() != cold.Report() {
		t.Errorf("warm report differs after schema eviction")
	}

	// And the stale file really is gone from disk, not merely skipped:
	// the old-schema handle now misses too.
	if _, ok := stOld.Get(key); ok {
		// The old handle's memory tier may still hold it; a fresh
		// old-schema handle over the same dir must not.
		stOld2, err := store.Open(dir, store.Options{Schema: pr5StoreSchema})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := stOld2.Get(key); ok {
			t.Fatal("old-schema entry still readable from disk after self-eviction")
		}
	}
}
