package pipeline

import (
	"testing"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/store"
	"incore/internal/uarch"
)

// withFreshTiers swaps in an empty memo cache and a store over dir —
// modeling a new process reusing a cache directory — and restores the
// package state on cleanup.
func withFreshTiers(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Schema: StoreSchema()})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	oldShared, oldPersistent := shared, persistent
	shared, persistent = NewCache(), st
	t.Cleanup(func() { shared, persistent = oldShared, oldPersistent })
	return st
}

func genBlock(t *testing.T, arch, kernel string) (*uarch.Model, *core.Analyzer, *kernels.TestBlock) {
	t.Helper()
	m := uarch.MustGet(arch)
	k, err := kernels.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernels.Config{Arch: arch, Compiler: kernels.CompilersFor(arch)[0], Opt: kernels.Ofast}
	b, err := kernels.Generate(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, core.New(), &kernels.TestBlock{Block: b}
}

// TestAnalyzeSurvivesProcesses is the contract the warm-cache CI job
// enforces end to end: a second process over the same cache directory
// serves every analysis from the store (zero cold lookups) and renders
// the same report bytes.
func TestAnalyzeSurvivesProcesses(t *testing.T) {
	dir := t.TempDir()
	m, an, tb := genBlock(t, "goldencove", "striad")

	st1 := withFreshTiers(t, dir)
	cold, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := st1.Stats(); got.Misses != 1 || got.Warm() != 0 {
		t.Fatalf("cold run store stats = %+v; want 1 miss, 0 warm", got)
	}

	st2 := withFreshTiers(t, dir)
	warm, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats(); got.Misses != 0 || got.DiskHits != 1 {
		t.Fatalf("warm run store stats = %+v; want 0 misses, 1 disk hit", got)
	}
	if warm.Report() != cold.Report() {
		t.Errorf("warm report differs from cold:\n%s\nvs\n%s", warm.Report(), cold.Report())
	}
	if warm.Block != tb.Block || warm.Model != m {
		t.Error("warm result must reattach the requester's block and model")
	}
}

func TestSimulateAndWACurveSurviveProcesses(t *testing.T) {
	dir := t.TempDir()
	m, _, tb := genBlock(t, "zen4", "sum")
	cfg := sim.DefaultConfig(m)

	withFreshTiers(t, dir)
	cold, err := Simulate(tb.Block, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldWA, err := WACurve("zen4", false, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}

	st := withFreshTiers(t, dir)
	warm, err := Simulate(tb.Block, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmWA, err := WACurve("zen4", false, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Misses != 0 || got.DiskHits != 2 {
		t.Fatalf("warm run store stats = %+v; want 0 misses, 2 disk hits", got)
	}
	if warm.CyclesPerIter != cold.CyclesPerIter || warm.TotalCycles != cold.TotalCycles {
		t.Errorf("warm sim %.6f/%.6f differs from cold %.6f/%.6f",
			warm.CyclesPerIter, warm.TotalCycles, cold.CyclesPerIter, cold.TotalCycles)
	}
	for c, v := range coldWA {
		if warmWA[c] != v {
			t.Errorf("warm WA ratio at %d cores = %v; want %v", c, warmWA[c], v)
		}
	}
}

// TestStoredDecodeFailureRecomputes plants an undecodable payload at a
// live key: the pipeline must fall through to computing and then repair
// the entry.
func TestStoredDecodeFailureRecomputes(t *testing.T) {
	dir := t.TempDir()
	m, an, tb := genBlock(t, "goldencove", "striad")
	st := withFreshTiers(t, dir)

	key := "analyze\x00" + an.Fingerprint() + "\x00" + m.Key + "\x00" + BlockKey(tb.Block)
	st.Put(key, []byte("{not a result"))

	r, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatalf("Analyze over poisoned entry: %v", err)
	}
	if r.Prediction <= 0 {
		t.Fatalf("implausible prediction %v", r.Prediction)
	}
	// The undecodable payload must count as an evicted cold lookup, not
	// a warm hit — otherwise a payload drift without a schema bump would
	// report 100% warm while recomputing everything.
	if got := st.Stats(); got.Warm() != 0 || got.Misses != 1 || got.Evictions != 1 {
		t.Fatalf("stats after poisoned lookup = %+v; want 0 warm, 1 miss, 1 eviction", got)
	}
	// The poisoned entry was overwritten with a decodable one.
	data, ok := st.Get(key)
	if !ok {
		t.Fatal("entry missing after recompute")
	}
	if _, err := core.UnmarshalStable(data, tb.Block, m); err != nil {
		t.Fatalf("entry still undecodable after recompute: %v", err)
	}
}

// TestNoStoreIsPureMemo pins the nil-store fast path: detached, the
// wrappers behave exactly as the process-local memo cache.
func TestNoStoreIsPureMemo(t *testing.T) {
	m, an, tb := genBlock(t, "goldencove", "striad")
	oldShared, oldPersistent := shared, persistent
	shared, persistent = NewCache(), nil
	t.Cleanup(func() { shared, persistent = oldShared, oldPersistent })

	if PersistentStore() != nil {
		t.Fatal("PersistentStore() non-nil after detach")
	}
	r1, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(an, tb.Block, m)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memo tier must share the identical result pointer")
	}
}
