package pipeline

import (
	"testing"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// TestMemoKeysByContentNotName verifies that two blocks with identical
// bodies but different names share one cached analysis — the property
// that collapses the suite's 416 test blocks onto its 290 unique bodies.
func TestMemoKeysByContentNotName(t *testing.T) {
	m := uarch.MustGet("goldencove")
	k, err := kernels.ByName("striad")
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernels.Config{Arch: "goldencove", Compiler: kernels.CompilersFor("goldencove")[0], Opt: kernels.Ofast}
	b1, err := kernels.Generate(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2 := b1.Clone()
	b2.Name = b1.Name + "-alias"

	c := NewCache()
	old := shared
	shared = c
	defer func() { shared = old }()

	an := core.New()
	r1, err := Analyze(an, b1, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(an, b2, m)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical block content must share one cached analysis")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", st)
	}

	// A different analyzer configuration must not share the entry.
	an2 := core.New()
	an2.Opt.IncludeFalseDeps = true
	if _, err := Analyze(an2, b1, m); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("distinct analyzer options must miss: %+v", st)
	}
}

// TestMemoSimulateMatchesDirect verifies the cached simulator result is
// the direct result, and that a traced run bypasses the cache.
func TestMemoSimulateMatchesDirect(t *testing.T) {
	m := uarch.MustGet("zen4")
	k, err := kernels.ByName("sum")
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernels.Config{Arch: "zen4", Compiler: kernels.CompilersFor("zen4")[0], Opt: kernels.Ofast}
	b, err := kernels.Generate(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(m)
	direct, err := sim.Run(b, m, sc)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	old := shared
	shared = c
	defer func() { shared = old }()

	cached, err := Simulate(b, m, sc)
	if err != nil {
		t.Fatal(err)
	}
	if cached.CyclesPerIter != direct.CyclesPerIter {
		t.Errorf("cached %.4f vs direct %.4f cycles/iter", cached.CyclesPerIter, direct.CyclesPerIter)
	}

	traced := sc
	traces := 0
	traced.Trace = func(int, string, float64, float64, float64, float64, float64) { traces++ }
	if _, err := Simulate(b, m, traced); err != nil {
		t.Fatal(err)
	}
	if traces == 0 {
		t.Error("traced run must execute, not hit the cache")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("traced run must bypass the cache: %+v", st)
	}
}
