package pipeline

import (
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe, content-keyed memoization table with
// singleflight semantics: for each key the compute function runs exactly
// once per process; concurrent requesters block for the single executor's
// result instead of duplicating work. Values are treated as immutable
// after insertion — callers must not mutate what Do returns.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*centry
	hits   atomic.Uint64
	misses atomic.Uint64
}

type centry struct {
	once sync.Once
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[string]*centry{}} }

// Do returns the cached value for key, computing it with fn on first use.
// Errors are cached too: a failed computation is not retried, so the
// outcome for a key is stable for the process lifetime (determinism over
// optimism).
func (c *Cache) Do(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &centry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	executed := false
	e.once.Do(func() {
		executed = true
		e.val, e.err = fn()
	})
	if executed {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e.val, e.err
}

// Stats is a point-in-time cache accounting snapshot. Hits and Misses
// depend only on the sequence of Do keys, not on scheduling: the executor
// of a key counts one miss, every other requester one hit — so the totals
// for a fixed workload are identical at any worker count.
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// Stats returns the current accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset drops all entries and zeroes the counters. In-flight computations
// keyed before the reset complete against the old entries.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = map[string]*centry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Do is the typed wrapper over Cache.Do. The first computation of a key
// fixes the concrete type; all requesters of that key must use the same T.
func Do[T any](c *Cache, key string, fn func() (T, error)) (T, error) {
	v, err := c.Do(key, func() (any, error) { return fn() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// shared is the process-wide memo cache used by the wrappers in memo.go.
var shared = NewCache()

// Shared returns the process-wide memo cache.
func Shared() *Cache { return shared }
