package pipeline

import (
	"fmt"
	"sync"
)

// Graph is a job graph: named jobs with explicit dependencies, executed
// on a Pool with at most Workers() jobs running at once. Results are
// retrieved by job id, so consumers control output order independently of
// execution order.
type Graph struct {
	pool  *Pool
	nodes map[string]*gnode
	order []string
	ran   bool
}

type gnode struct {
	id   string
	fn   func() (any, error)
	deps []string
	done chan struct{}
	val  any
	err  error
}

// NewGraph returns an empty graph scheduled on pool p (nil: Default()).
func NewGraph(p *Pool) *Graph {
	if p == nil {
		p = Default()
	}
	return &Graph{pool: p, nodes: map[string]*gnode{}}
}

// Add registers job id with its dependencies. Dependencies may be added
// in any order but must all exist by the time Run is called.
func (g *Graph) Add(id string, fn func() (any, error), deps ...string) error {
	if _, dup := g.nodes[id]; dup {
		return fmt.Errorf("pipeline: duplicate job %q", id)
	}
	g.nodes[id] = &gnode{id: id, fn: fn, deps: deps, done: make(chan struct{})}
	g.order = append(g.order, id)
	return nil
}

// validate checks that every dependency exists and the graph is acyclic.
func (g *Graph) validate() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(id string) error
	visit = func(id string) error {
		n, ok := g.nodes[id]
		if !ok {
			return fmt.Errorf("pipeline: unknown dependency %q", id)
		}
		switch color[id] {
		case grey:
			return fmt.Errorf("pipeline: dependency cycle through %q", id)
		case black:
			return nil
		}
		color[id] = grey
		for _, d := range n.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for _, id := range g.order {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the whole graph and blocks until every job finished or was
// skipped. A job whose dependency failed is skipped and inherits the
// dependency's error. Run returns the error of the earliest-added failing
// job, or nil. Run may be called once.
func (g *Graph) Run() error {
	if g.ran {
		return fmt.Errorf("pipeline: graph already ran")
	}
	g.ran = true
	if err := g.validate(); err != nil {
		return err
	}
	// Draw from the pool's shared semaphore so graph jobs and any Map
	// calls they make compete for the same -j slots. (Map inside a job
	// is fine — it never blocks on the semaphore; a nested Graph.Run on
	// the same pool is not supported, as blocked slot-holders could
	// starve it.)
	sem := g.pool.sem
	var wg sync.WaitGroup
	for _, id := range g.order {
		n := g.nodes[id]
		wg.Add(1)
		go func(n *gnode) {
			defer func() {
				close(n.done)
				wg.Done()
			}()
			for _, d := range n.deps {
				dn := g.nodes[d]
				<-dn.done
				if dn.err != nil {
					n.err = fmt.Errorf("pipeline: %s: dependency %s: %w", n.id, d, dn.err)
					return
				}
			}
			// Acquire a worker slot only once runnable, so blocked jobs
			// never starve the pool.
			sem <- struct{}{}
			defer func() { <-sem }()
			n.val, n.err = n.fn()
		}(n)
	}
	wg.Wait()
	for _, id := range g.order {
		if err := g.nodes[id].err; err != nil {
			return err
		}
	}
	return nil
}

// Result returns the value and error of job id after Run.
func (g *Graph) Result(id string) (any, error) {
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown job %q", id)
	}
	return n.val, n.err
}
