package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newEchoServer returns a server answering every request with a fixed
// body, plus a client whose transport injects per cfg.
func newEchoServer(t *testing.T, body string, cfg Config) (*httptest.Server, *http.Client, *Transport) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	tr := New(nil, cfg)
	return ts, &http.Client{Transport: tr}, tr
}

// TestRateZeroIsTransparent pins the no-fault fast path: rate 0 never
// touches a request.
func TestRateZeroIsTransparent(t *testing.T) {
	ts, c, tr := newEchoServer(t, "hello", Config{Rate: 0, Seed: 1})
	for i := 0; i < 50; i++ {
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "hello" {
			t.Fatalf("request %d body = %q", i, body)
		}
	}
	if st := tr.Stats(); st.Injected != 0 || st.Requests != 50 {
		t.Fatalf("stats = %+v; want 50 requests, 0 injected", st)
	}
}

// TestRateOneFaultsEverything: at rate 1 every request is faulted, and
// every fault kind eventually appears.
func TestRateOneFaultsEverything(t *testing.T) {
	ts, c, tr := newEchoServer(t, strings.Repeat("payload", 10),
		Config{Rate: 1, Seed: 42, MaxDelay: time.Millisecond})
	for i := 0; i < 120; i++ {
		resp, err := c.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
	}
	st := tr.Stats()
	if st.Injected != 120 {
		t.Fatalf("injected = %d of %d; rate 1 must fault every request", st.Injected, st.Requests)
	}
	for name, n := range map[string]uint64{
		"drops": st.Drops, "delays": st.Delays, "resets": st.Resets,
		"truncations": st.Truncats, "corruptions": st.Corrupts, "error5xx": st.Errors,
	} {
		if n == 0 {
			t.Errorf("no %s in 120 faulted requests (stats %+v)", name, st)
		}
	}
}

// TestDeterministicSequence: same seed + same request sequence = same
// fault sequence, observed through the per-kind counters and the
// per-request outcomes.
func TestDeterministicSequence(t *testing.T) {
	run := func() ([]string, Stats) {
		ts, c, tr := newEchoServer(t, "determinism", Config{Rate: 0.7, Seed: 7, MaxDelay: time.Millisecond})
		var outcomes []string
		for i := 0; i < 60; i++ {
			resp, err := c.Get(ts.URL)
			switch {
			case err != nil:
				outcomes = append(outcomes, "err")
			default:
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode != http.StatusOK:
					outcomes = append(outcomes, "5xx")
				case rerr != nil || string(body) != "determinism":
					outcomes = append(outcomes, "mangled")
				default:
					outcomes = append(outcomes, "ok")
				}
			}
		}
		return outcomes, tr.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats diverge across identical runs:\n%+v\n%+v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverges: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestDropIsInjectedError: drops carry ErrInjected so tests can tell
// fabricated faults from real transport failures.
func TestDropIsInjectedError(t *testing.T) {
	ts, c, _ := newEchoServer(t, "x", Config{Rate: 1, Seed: 3, Kinds: []Kind{KindDrop}})
	_, err := c.Get(ts.URL)
	if err == nil {
		t.Fatal("drop produced no error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped request error %v does not wrap ErrInjected", err)
	}
}

// TestTruncateShortensBody: a truncated response never delivers the full
// payload (the client sees a short read against Content-Length).
func TestTruncateShortensBody(t *testing.T) {
	full := strings.Repeat("0123456789", 20)
	ts, c, _ := newEchoServer(t, full, Config{Rate: 1, Seed: 11, Kinds: []Kind{KindTruncate}})
	sawShort := false
	for i := 0; i < 20; i++ {
		resp, err := c.Get(ts.URL)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(body) < len(full) || rerr != nil {
			sawShort = true
		}
		if len(body) > len(full) {
			t.Fatalf("truncation grew the body: %d > %d", len(body), len(full))
		}
	}
	if !sawShort {
		t.Fatal("20 truncated responses all delivered the full body")
	}
}

// TestCorruptFlipsExactlyOneByte: a corrupted response has the original
// length and differs in exactly one position.
func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	full := strings.Repeat("abcdefgh", 16)
	ts, c, _ := newEchoServer(t, full, Config{Rate: 1, Seed: 13, Kinds: []Kind{KindCorrupt}})
	for i := 0; i < 10; i++ {
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatalf("corrupt request %d failed outright: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(body) != len(full) {
			t.Fatalf("corruption changed length: %d != %d", len(body), len(full))
		}
		diffs := 0
		for j := range body {
			if body[j] != full[j] {
				diffs++
			}
		}
		if diffs != 1 {
			t.Fatalf("corruption flipped %d bytes; want exactly 1", diffs)
		}
	}
}

// TestDelayRespectsContextCancel: a delayed request aborts promptly when
// its context is cancelled instead of sleeping out the full pause.
func TestDelayRespectsContextCancel(t *testing.T) {
	ts, _, tr := newEchoServer(t, "x", Config{Rate: 1, Seed: 5, Kinds: []Kind{KindDelay}, MaxDelay: 10 * time.Second})
	c := &http.Client{Transport: tr, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(ts.URL)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled delay still slept %s", elapsed)
	}
}
