// Package faultinject is the chaos harness behind the remote-store
// robustness contract: a deterministic (seeded) http.RoundTripper wrapper
// that injects network faults — connection drops, delays, mid-body
// resets, response truncation, payload bit corruption, and 5xx error
// bursts — at a configured rate, so a test or a CI chaos gate can prove
// that a flaky, slow, or hostile peer can never fail, slow down
// unboundedly, or corrupt an analysis.
//
// Determinism contract: the fault sequence is a pure function of the
// seed and the request order. Two runs with the same seed and the same
// serialized request sequence inject exactly the same faults, so a chaos
// failure reproduces. (Concurrent requests draw from one locked PRNG, so
// across goroutines only the aggregate rate is deterministic, not the
// per-request assignment — the invariants under test, byte-identical
// output and zero request failures, hold under any assignment.)
//
// The wrapper sits client-side, between the remote-store client and the
// wire, which is where every fault a hostile network can produce is
// visible: a server-side injector could not model a dropped SYN or a
// payload corrupted in transit.
package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// KindDrop fails the request before it reaches the wire, like a
	// refused or timed-out connection.
	KindDrop Kind = iota
	// KindDelay forwards the request after a bounded pause, like a
	// congested or GC-pausing peer. The request otherwise succeeds —
	// a delay must cost latency, never correctness.
	KindDelay
	// KindReset forwards the request, then discards the response and
	// reports a connection-reset error, like a peer dying mid-response.
	KindReset
	// KindTruncate forwards the request and cuts the response body
	// short, like a torn transfer. Headers (including Content-Length)
	// are preserved, so the client sees an unexpected EOF or a
	// short, hash-mismatched payload.
	KindTruncate
	// KindCorrupt forwards the request and flips one byte of the
	// response body, like bit rot on a hostile or broken middlebox.
	KindCorrupt
	// KindError5xx synthesizes a 500/503 response without forwarding,
	// like an overloaded or crashing peer.
	KindError5xx

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindReset:
		return "reset"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	case KindError5xx:
		return "error5xx"
	}
	return "unknown"
}

// ErrInjected marks every failure this package fabricates, so a test can
// tell an injected fault from a real transport failure.
var ErrInjected = errors.New("faultinject: injected fault")

// Config selects what to inject.
type Config struct {
	// Rate is the probability in [0,1] that a request is faulted at
	// all; a faulted request draws one fault kind uniformly from Kinds.
	Rate float64
	// Seed fixes the PRNG; equal seeds + equal request sequences inject
	// equal fault sequences.
	Seed int64
	// Kinds restricts which faults are drawn (empty = all).
	Kinds []Kind
	// MaxDelay bounds a KindDelay pause (0 selects 50ms). Delays are
	// drawn uniformly in (0, MaxDelay].
	MaxDelay time.Duration
}

// Stats counts what was injected, per kind plus a total of requests seen.
type Stats struct {
	Requests uint64 `json:"requests"`
	Injected uint64 `json:"injected"`
	Drops    uint64 `json:"drops"`
	Delays   uint64 `json:"delays"`
	Resets   uint64 `json:"resets"`
	Truncats uint64 `json:"truncations"`
	Corrupts uint64 `json:"corruptions"`
	Errors   uint64 `json:"error5xx"`
}

// Transport is the injecting http.RoundTripper. Safe for concurrent use.
type Transport struct {
	inner http.RoundTripper
	cfg   Config
	kinds []Kind

	mu  sync.Mutex
	rng *rand.Rand

	requests atomic.Uint64
	injected atomic.Uint64
	perKind  [numKinds]atomic.Uint64
}

// New wraps inner (nil selects http.DefaultTransport) with fault
// injection per cfg.
func New(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindDrop, KindDelay, KindReset, KindTruncate, KindCorrupt, KindError5xx}
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	return &Transport{
		inner: inner,
		cfg:   cfg,
		kinds: kinds,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// decision is one request's drawn fault plan; all randomness is drawn up
// front under the lock so the injection itself runs lock-free.
type decision struct {
	inject bool
	kind   Kind
	delay  time.Duration
	// frac in [0,1) positions a truncation cut or a corrupted byte
	// within the response body.
	frac float64
	// flip is XORed into the corrupted byte; drawn in [1,255] so the
	// byte always actually changes.
	flip byte
	// status picks the synthesized 5xx.
	status int
}

func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decision
	if t.rng.Float64() >= t.cfg.Rate {
		return d
	}
	d.inject = true
	d.kind = t.kinds[t.rng.Intn(len(t.kinds))]
	d.delay = time.Duration(1 + t.rng.Int63n(int64(t.cfg.MaxDelay)))
	d.frac = t.rng.Float64()
	d.flip = byte(1 + t.rng.Intn(255))
	if t.rng.Intn(2) == 0 {
		d.status = http.StatusInternalServerError
	} else {
		d.status = http.StatusServiceUnavailable
	}
	return d
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	d := t.decide()
	if !d.inject {
		return t.inner.RoundTrip(req)
	}
	t.injected.Add(1)
	t.perKind[d.kind].Add(1)

	switch d.kind {
	case KindDrop:
		// The request never reaches the wire; the body (if any) must
		// still be closed per the RoundTripper contract.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: connection dropped", ErrInjected)

	case KindDelay:
		timer := time.NewTimer(d.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)

	case KindError5xx:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     strconv.Itoa(d.status) + " " + http.StatusText(d.status),
			StatusCode: d.status,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(bytes.NewReader([]byte("injected error burst"))),
			Request:    req,
		}, nil
	}

	// The remaining faults need a real response to mangle.
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch d.kind {
	case KindReset:
		resp.Body.Close()
		return nil, fmt.Errorf("%w: connection reset by peer", ErrInjected)

	case KindTruncate:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := int(d.frac * float64(len(body)))
		resp.Body = io.NopCloser(bytes.NewReader(body[:cut]))
		// Content-Length still promises the full body: the client sees
		// an unexpected EOF, exactly like a torn transfer.
		return resp, nil

	case KindCorrupt:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			body[int(d.frac*float64(len(body)))] ^= d.flip
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	}
	return resp, nil
}

// Stats returns the injection counts so far.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests: t.requests.Load(),
		Injected: t.injected.Load(),
		Drops:    t.perKind[KindDrop].Load(),
		Delays:   t.perKind[KindDelay].Load(),
		Resets:   t.perKind[KindReset].Load(),
		Truncats: t.perKind[KindTruncate].Load(),
		Corrupts: t.perKind[KindCorrupt].Load(),
		Errors:   t.perKind[KindError5xx].Load(),
	}
}
