package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func entryPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(dir, h[:2], h+".json")
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Schema: 1})
	key := "analyze\x00falsedeps=false\x00zen4\x00\tvmulpd %ymm0, %ymm1, %ymm2\n"
	payload := []byte(`{"prediction":1.5}`)

	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.PutErrors != 0 {
		t.Fatalf("stats = %+v; want 1 mem hit, 1 miss", st)
	}
}

func TestDiskHitAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{Schema: 7})
	s1.Put("k", []byte("42"))

	// A fresh Store over the same directory models a new process: the
	// memory tier is empty, so the hit must come from disk.
	s2 := open(t, dir, Options{Schema: 7})
	got, ok := s2.Get("k")
	if !ok || string(got) != "42" {
		t.Fatalf("Get = %q, %v; want 42, true", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats = %+v; want exactly 1 disk hit", st)
	}
	// The read promoted the entry into memory.
	if _, ok := s2.Get("k"); !ok {
		t.Fatal("second Get missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after promotion = %+v; want 1 mem hit", st)
	}
}

func TestSchemaMismatchEvicts(t *testing.T) {
	dir := t.TempDir()
	open(t, dir, Options{Schema: 1}).Put("k", []byte("old"))

	s := open(t, dir, Options{Schema: 2})
	if _, ok := s.Get("k"); ok {
		t.Fatal("schema-stale entry served as a hit")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 1 eviction, 1 miss", st)
	}
	if _, err := os.Stat(entryPath(dir, "k")); !os.IsNotExist(err) {
		t.Fatalf("stale entry file still present (err=%v)", err)
	}
	// The slot is reusable at the new schema.
	s.Put("k", []byte("new"))
	if got, ok := s.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("Get after rewrite = %q, %v", got, ok)
	}
}

func TestCorruptedEntryEvicts(t *testing.T) {
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":      func([]byte) []byte { return []byte("not json at all{{{") },
		"empty":        func([]byte) []byte { return nil },
		"wrongKey":     func([]byte) []byte { return []byte(`{"v":1,"schema":1,"key":"other","payload":"MQ=="}`) },
		"wrongVersion": func([]byte) []byte { return []byte(`{"v":99,"schema":1,"key":"k","payload":"MQ=="}`) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			open(t, dir, Options{Schema: 1}).Put("k", []byte("1"))
			p := entryPath(dir, "k")
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if err := os.WriteFile(p, mutate(raw), 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}

			s := open(t, dir, Options{Schema: 1})
			if _, ok := s.Get("k"); ok {
				t.Fatal("damaged entry served as a hit")
			}
			if st := s.Stats(); st.Evictions != 1 {
				t.Fatalf("stats = %+v; want 1 eviction", st)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("damaged entry file still present (err=%v)", err)
			}
		})
	}
}

func TestGetValidatedRejectionIsMissAtBothTiers(t *testing.T) {
	reject := func([]byte) error { return fmt.Errorf("undecodable") }

	// Rejection at the memory tier: the entry was just Put, so it is
	// resident in the LRU.
	dir := t.TempDir()
	s := open(t, dir, Options{Schema: 1})
	s.Put("k", []byte("x"))
	if _, ok := s.GetValidated("k", reject); ok {
		t.Fatal("rejected payload served as a hit from memory")
	}
	if st := s.Stats(); st.Warm() != 0 || st.Misses != 1 || st.Evictions != 1 || st.MemEntries != 0 {
		t.Fatalf("stats after mem-tier rejection = %+v; want 0 warm, 1 miss, 1 eviction, empty LRU", st)
	}
	if _, err := os.Stat(entryPath(dir, "k")); !os.IsNotExist(err) {
		t.Fatalf("rejected entry file still present (err=%v)", err)
	}

	// Rejection at the disk tier: a fresh Store has an empty LRU.
	dir2 := t.TempDir()
	open(t, dir2, Options{Schema: 1}).Put("k", []byte("x"))
	s2 := open(t, dir2, Options{Schema: 1})
	if _, ok := s2.GetValidated("k", reject); ok {
		t.Fatal("rejected payload served as a hit from disk")
	}
	if st := s2.Stats(); st.Warm() != 0 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("stats after disk-tier rejection = %+v; want 0 warm, 1 miss, 1 eviction", st)
	}

	// An accepting validator behaves like plain Get.
	dir3 := t.TempDir()
	s3 := open(t, dir3, Options{Schema: 1})
	s3.Put("k", []byte("x"))
	if got, ok := s3.GetValidated("k", func([]byte) error { return nil }); !ok || string(got) != "x" {
		t.Fatalf("GetValidated with accepting validator = %q, %v", got, ok)
	}
	if st := s3.Stats(); st.Warm() != 1 {
		t.Fatalf("accepting validator must count a warm hit: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// One shard of capacity 2 makes eviction order observable.
	s := open(t, dir, Options{Schema: 1, MemEntries: 2, Shards: 1})
	s.Put("a", []byte("A"))
	s.Put("b", []byte("B"))
	s.Get("a") // a is now most recently used
	s.Put("c", []byte("C"))
	if got := s.Stats().MemEntries; got != 2 {
		t.Fatalf("MemEntries = %d; want 2", got)
	}
	base := s.Stats()
	// b was evicted from memory but must still be served from disk.
	if _, ok := s.Get("b"); !ok {
		t.Fatal("evicted entry lost from disk tier")
	}
	if st := s.Stats(); st.DiskHits != base.DiskHits+1 {
		t.Fatalf("Get(b) not served from disk: %+v", st)
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("Get(%q) missed", k)
		}
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Schema: 1, MemEntries: 32})
	const keys = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%d", (i+g)%keys)
				want := fmt.Sprintf("val-%d", (i+g)%keys)
				s.Put(k, []byte(want))
				if got, ok := s.Get(k); ok && string(got) != want {
					t.Errorf("Get(%q) = %q; want %q", k, got, want)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.PutErrors != 0 {
		t.Fatalf("put errors under concurrency: %+v", st)
	}
	// Every key must be durable and correct after the dust settles.
	s2 := open(t, dir, Options{Schema: 1})
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if got, ok := s2.Get(k); !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%q) = %q, %v after concurrent writes", k, got, ok)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "sub"), Options{}); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
}
