// Package store is the persistent, content-addressed result store that
// lets analyzer, simulator, and write-allocate-curve results survive
// across processes. It composes two tiers:
//
//   - a sharded in-memory LRU (lru.go) absorbing repeated reads within a
//     process without touching the filesystem, and
//   - an on-disk layer, one file per entry, addressed by the SHA-256 of
//     the entry's content key and sharded into 256 prefix directories so
//     no single directory grows unboundedly.
//
// Keys are the same content keys the pipeline memo cache uses
// (core.Analyzer.Fingerprint plus model key plus block text, and
// friends): everything that determines the result, nothing that doesn't.
// Payloads are opaque bytes; callers bring their own encoding.
//
// Every disk entry carries a schema-version stamp. An entry whose stamp
// differs from the open store's schema — or that is truncated, corrupted,
// or hash-collided — self-evicts on read: the file is deleted and the
// lookup reports a miss, so a schema bump or a damaged cache directory
// degrades to a cold run instead of an error or, worse, a stale result.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// envelopeVersion identifies the on-disk envelope layout itself,
// independent of the caller's payload schema.
const envelopeVersion = 1

// envelope is the on-disk entry format. Key is stored verbatim so a read
// can reject SHA-256 prefix collisions and detect truncation cheaply.
// Payload is opaque bytes (base64 on disk): the store must not assume its
// callers' encoding.
type envelope struct {
	V       int    `json:"v"`
	Schema  int    `json:"schema"`
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// Options configures Open.
type Options struct {
	// Schema is the caller's payload schema version. Entries stamped
	// with any other value self-evict on read. Bump it whenever the
	// encoding of any stored payload changes shape or meaning.
	Schema int
	// MemEntries caps the in-memory LRU tier (0 selects 4096).
	MemEntries int
	// Shards sets the LRU shard count (0 selects 16).
	Shards int
}

// Stats is a point-in-time accounting snapshot of one store.
type Stats struct {
	// MemHits were served from the in-memory LRU tier.
	MemHits uint64 `json:"mem_hits"`
	// DiskHits were read, verified, and promoted from the disk tier.
	DiskHits uint64 `json:"disk_hits"`
	// Misses found no usable entry in either tier (cold lookups).
	Misses uint64 `json:"misses"`
	// Evictions counts disk entries deleted on read because they were
	// stale (schema mismatch) or damaged (truncated, corrupted,
	// key-collided).
	Evictions uint64 `json:"evictions"`
	// PutErrors counts failed writes (the store stays usable; a failed
	// put only costs a future cold lookup).
	PutErrors uint64 `json:"put_errors"`
	// MemEntries is the current in-memory LRU population.
	MemEntries int `json:"mem_entries"`
}

// Warm returns the lookups served without recomputation.
func (s Stats) Warm() uint64 { return s.MemHits + s.DiskHits }

// Sub returns the accounting accumulated since prev was snapshotted:
// every counter as a delta, MemEntries as the current population. The
// serve tier uses it to attribute warm/cold lookups to one request
// window in its access log (approximate under concurrent traffic —
// deltas from overlapping requests interleave — but exact for the
// serialized CI resume gate).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		MemHits:    s.MemHits - prev.MemHits,
		DiskHits:   s.DiskHits - prev.DiskHits,
		Misses:     s.Misses - prev.Misses,
		Evictions:  s.Evictions - prev.Evictions,
		PutErrors:  s.PutErrors - prev.PutErrors,
		MemEntries: s.MemEntries,
	}
}

// Store is a two-tier persistent result store. It is safe for concurrent
// use; payloads returned by Get are shared and must not be mutated.
type Store struct {
	dir    string
	schema int
	mem    *lru

	memHits   atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	putErrors atomic.Uint64
}

// Open prepares dir (creating it if needed) and returns a store stamping
// entries with o.Schema.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	capacity := o.MemEntries
	if capacity <= 0 {
		capacity = 4096
	}
	shards := o.Shards
	if shards <= 0 {
		shards = 16
	}
	return &Store{dir: dir, schema: o.Schema, mem: newLRU(capacity, shards)}, nil
}

// Dir returns the store's on-disk root.
func (s *Store) Dir() string { return s.dir }

// path maps a content key to its entry file: dir/<hh>/<sha256 hex>.json.
func (s *Store) path(key string) (string, string) {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return h, filepath.Join(s.dir, h[:2], h+".json")
}

// Get returns the payload stored for key, consulting the memory tier
// first and falling back to disk. Damaged or schema-stale disk entries
// are deleted and reported as misses.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetValidated(key, nil)
}

// GetValidated is Get with a caller-supplied payload check: a payload
// validate rejects is treated exactly like a corrupted entry — dropped
// from both tiers, counted as an eviction and a miss — so Warm() counts
// only lookups that truly spared the caller a recomputation, and a
// payload-level decode drift can never report a 100%-warm run that in
// fact recomputed everything.
func (s *Store) GetValidated(key string, validate func([]byte) error) ([]byte, bool) {
	h, p := s.path(key)
	if payload, ok := s.mem.get(h); ok {
		if validate != nil && validate(payload) != nil {
			s.mem.remove(h)
			os.Remove(p)
			s.evictions.Add(1)
			s.misses.Add(1)
			return nil, false
		}
		s.memHits.Add(1)
		return payload, true
	}
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil ||
		e.V != envelopeVersion || e.Schema != s.schema || e.Key != key ||
		(validate != nil && validate(e.Payload) != nil) {
		os.Remove(p)
		s.evictions.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.mem.put(h, e.Payload)
	s.diskHits.Add(1)
	return e.Payload, true
}

// Put stores payload under key in both tiers. Disk writes are atomic
// (temp file + rename), so concurrent writers and readers of one entry
// never observe a partial file; write failures are counted, not returned —
// a store that cannot persist degrades to a per-process cache.
func (s *Store) Put(key string, payload []byte) {
	h, p := s.path(key)
	s.mem.put(h, payload)
	data, err := json.Marshal(envelope{V: envelopeVersion, Schema: s.schema, Key: key, Payload: payload})
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	if err := writeAtomic(p, data); err != nil {
		s.putErrors.Add(1)
	}
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, creating the shard directory on demand.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats returns the current accounting.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:    s.memHits.Load(),
		DiskHits:   s.diskHits.Load(),
		Misses:     s.misses.Load(),
		Evictions:  s.evictions.Load(),
		PutErrors:  s.putErrors.Load(),
		MemEntries: s.mem.len(),
	}
}
