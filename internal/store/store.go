// Package store is the persistent, content-addressed result store that
// lets analyzer, simulator, and write-allocate-curve results survive
// across processes. It composes up to three tiers:
//
//   - a sharded in-memory LRU (lru.go) absorbing repeated reads within a
//     process without touching the filesystem,
//   - an on-disk layer, one file per entry, addressed by the SHA-256 of
//     the entry's content key and sharded into 256 prefix directories so
//     no single directory grows unboundedly, and
//   - optionally a remote peer tier (the Remote interface, implemented
//     by internal/remotestore): a replica's store reached over HTTP,
//     consulted after a disk miss and populated by async write-behind,
//     so a fleet of replicas is cache-coherent for free — entries are
//     immutable values under content keys. The remote tier is strictly
//     best-effort: any failure is a local miss, never an error.
//
// Keys are the same content keys the pipeline memo cache uses
// (core.Analyzer.Fingerprint plus model key plus block text, and
// friends): everything that determines the result, nothing that doesn't.
// Payloads are opaque bytes; callers bring their own encoding.
//
// Every disk entry carries a schema-version stamp. An entry whose stamp
// differs from the open store's schema — or that is truncated, corrupted,
// or hash-collided — self-evicts on read: the file is deleted and the
// lookup reports a miss, so a schema bump or a damaged cache directory
// degrades to a cold run instead of an error or, worse, a stale result.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// envelopeVersion identifies the on-disk envelope layout itself,
// independent of the caller's payload schema.
const envelopeVersion = 1

// envelope is the on-disk entry format. Key is stored verbatim so a read
// can reject SHA-256 prefix collisions and detect truncation cheaply.
// Payload is opaque bytes (base64 on disk): the store must not assume its
// callers' encoding.
type envelope struct {
	V       int    `json:"v"`
	Schema  int    `json:"schema"`
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// Options configures Open.
type Options struct {
	// Schema is the caller's payload schema version. Entries stamped
	// with any other value self-evict on read. Bump it whenever the
	// encoding of any stored payload changes shape or meaning.
	Schema int
	// MemEntries caps the in-memory LRU tier (0 selects 4096).
	MemEntries int
	// Shards sets the LRU shard count (0 selects 16).
	Shards int
}

// Stats is a point-in-time accounting snapshot of one store.
type Stats struct {
	// MemHits were served from the in-memory LRU tier.
	MemHits uint64 `json:"mem_hits"`
	// DiskHits were read, verified, and promoted from the disk tier.
	DiskHits uint64 `json:"disk_hits"`
	// RemoteHits were fetched from the remote peer tier, verified, and
	// promoted into both local tiers.
	RemoteHits uint64 `json:"remote_hits"`
	// RemoteRejects counts remote payloads the caller's validator
	// refused after the transport-level verification passed (payload
	// drift without a schema bump); rejected payloads are treated as
	// misses and never populate the local tiers.
	RemoteRejects uint64 `json:"remote_rejects"`
	// Misses found no usable entry in any tier (cold lookups).
	Misses uint64 `json:"misses"`
	// Evictions counts disk entries deleted on read because they were
	// stale (schema mismatch) or damaged (truncated, corrupted,
	// key-collided).
	Evictions uint64 `json:"evictions"`
	// PutErrors counts failed writes (the store stays usable; a failed
	// put only costs a future cold lookup).
	PutErrors uint64 `json:"put_errors"`
	// MemEntries is the current in-memory LRU population.
	MemEntries int `json:"mem_entries"`
}

// Warm returns the lookups served without recomputation.
func (s Stats) Warm() uint64 { return s.MemHits + s.DiskHits + s.RemoteHits }

// Sub returns the accounting accumulated since prev was snapshotted:
// every counter as a delta, MemEntries as the current population. The
// serve tier uses it to attribute warm/cold lookups to one request
// window in its access log (approximate under concurrent traffic —
// deltas from overlapping requests interleave — but exact for the
// serialized CI resume gate).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		MemHits:       s.MemHits - prev.MemHits,
		DiskHits:      s.DiskHits - prev.DiskHits,
		RemoteHits:    s.RemoteHits - prev.RemoteHits,
		RemoteRejects: s.RemoteRejects - prev.RemoteRejects,
		Misses:        s.Misses - prev.Misses,
		Evictions:     s.Evictions - prev.Evictions,
		PutErrors:     s.PutErrors - prev.PutErrors,
		MemEntries:    s.MemEntries,
	}
}

// Remote is an optional third tier under the disk tier: a peer replica's
// store reached over the network (internal/remotestore). The contract is
// strictly best-effort — Get must degrade to a miss on any failure and
// must verify fetched content before surfacing it, Put must never block
// the caller (write-behind) — so the store's correctness and latency
// never depend on the network.
type Remote interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte)
}

// Store is a persistent result store of up to three tiers: in-memory
// LRU over on-disk entries, optionally backed by a remote peer. It is
// safe for concurrent use; payloads returned by Get are shared and must
// not be mutated.
type Store struct {
	dir    string
	schema int
	mem    *lru
	remote Remote

	memHits       atomic.Uint64
	diskHits      atomic.Uint64
	remoteHits    atomic.Uint64
	remoteRejects atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	putErrors     atomic.Uint64
}

// Open prepares dir (creating it if needed) and returns a store stamping
// entries with o.Schema.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	capacity := o.MemEntries
	if capacity <= 0 {
		capacity = 4096
	}
	shards := o.Shards
	if shards <= 0 {
		shards = 16
	}
	removeStaleTemps(dir)
	return &Store{dir: dir, schema: o.Schema, mem: newLRU(capacity, shards)}, nil
}

// removeStaleTemps deletes leftover write-temp files from a process
// killed mid-write. Atomic writes go through same-directory ".tmp-*"
// files; one that still exists at open was never renamed into place and
// can only be a torn write — loading it is impossible (entries are only
// ever read via their final names), but cleaning it keeps a crash loop
// from accreting garbage.
func removeStaleTemps(dir string) {
	shards, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		sub := filepath.Join(dir, sh.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			continue
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), ".tmp-") {
				os.Remove(filepath.Join(sub, f.Name()))
			}
		}
	}
}

// Dir returns the store's on-disk root.
func (s *Store) Dir() string { return s.dir }

// SetRemote attaches (or detaches, with nil) the remote peer tier. Call
// it at startup, before the store serves traffic.
func (s *Store) SetRemote(r Remote) { s.remote = r }

// Remote returns the attached remote tier, or nil.
func (s *Store) Remote() Remote { return s.remote }

// path maps a content key to its entry file: dir/<hh>/<sha256 hex>.json.
func (s *Store) path(key string) (string, string) {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return h, filepath.Join(s.dir, h[:2], h+".json")
}

// Get returns the payload stored for key, consulting the memory tier
// first and falling back to disk. Damaged or schema-stale disk entries
// are deleted and reported as misses.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetValidated(key, nil)
}

// GetValidated is Get with a caller-supplied payload check: a payload
// validate rejects is treated exactly like a corrupted entry — dropped
// from both tiers, counted as an eviction and a miss — so Warm() counts
// only lookups that truly spared the caller a recomputation, and a
// payload-level decode drift can never report a 100%-warm run that in
// fact recomputed everything.
func (s *Store) GetValidated(key string, validate func([]byte) error) ([]byte, bool) {
	h, p := s.path(key)
	if payload, ok := s.mem.get(h); ok {
		if validate != nil && validate(payload) != nil {
			s.mem.remove(h)
			os.Remove(p)
			s.evictions.Add(1)
			s.misses.Add(1)
			return nil, false
		}
		s.memHits.Add(1)
		return payload, true
	}
	if data, err := os.ReadFile(p); err == nil {
		var e envelope
		if err := json.Unmarshal(data, &e); err != nil ||
			e.V != envelopeVersion || e.Schema != s.schema || e.Key != key ||
			(validate != nil && validate(e.Payload) != nil) {
			os.Remove(p)
			s.evictions.Add(1)
			// A damaged disk entry falls through to the remote tier: the
			// peer may hold an intact copy of exactly this entry.
		} else {
			s.mem.put(h, e.Payload)
			s.diskHits.Add(1)
			return e.Payload, true
		}
	}
	// Remote peer tier. The remote client verifies transport integrity
	// (schema stamp, key address, payload hash) before returning; the
	// caller's validator then applies the same payload-level check disk
	// entries get, so a peer can never make Warm() claim a lookup that
	// would in fact recompute.
	if r := s.remote; r != nil {
		if payload, ok := r.Get(key); ok {
			if validate != nil && validate(payload) != nil {
				s.remoteRejects.Add(1)
			} else {
				// Promote into both local tiers so the next lookup never
				// leaves the process. The disk write is local-only: the
				// peer already holds this entry.
				s.mem.put(h, payload)
				s.writeDisk(key, p, payload)
				s.remoteHits.Add(1)
				return payload, true
			}
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores payload under key in the local tiers and, when a remote
// peer is attached, hands it to the peer's write-behind queue (async
// best-effort: remote latency or death never reaches this caller). Disk
// writes are atomic (temp file + rename), so concurrent writers and
// readers of one entry never observe a partial file; write failures are
// counted, not returned — a store that cannot persist degrades to a
// per-process cache.
func (s *Store) Put(key string, payload []byte) {
	s.PutLocal(key, payload)
	if r := s.remote; r != nil {
		r.Put(key, payload)
	}
}

// PutLocal is Put without remote propagation. The peer PUT handler uses
// it so replicated entries cannot ping-pong between peers.
func (s *Store) PutLocal(key string, payload []byte) {
	h, p := s.path(key)
	s.mem.put(h, payload)
	s.writeDisk(key, p, payload)
}

// writeDisk persists one entry at its final path, counting failures.
func (s *Store) writeDisk(key, path string, payload []byte) {
	data, err := json.Marshal(envelope{V: envelopeVersion, Schema: s.schema, Key: key, Payload: payload})
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	if err := writeAtomic(path, data); err != nil {
		s.putErrors.Add(1)
	}
}

// GetByHash reads one disk entry by its address (the hex SHA-256 of its
// content key) and returns the verbatim key alongside the payload. It is
// the peer-protocol read path — a peer asks for an address, not a key —
// and deliberately skips the memory and remote tiers and the hit/miss
// accounting: peer replication must not inflate this replica's warm
// counts or recurse into its own peer. Damaged entries self-evict
// exactly as in GetValidated.
func (s *Store) GetByHash(hash string) (key string, payload []byte, ok bool) {
	p := filepath.Join(s.dir, hash[:2], hash+".json")
	data, err := os.ReadFile(p)
	if err != nil {
		return "", nil, false
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil ||
		e.V != envelopeVersion || e.Schema != s.schema || hashOf(e.Key) != hash {
		os.Remove(p)
		s.evictions.Add(1)
		return "", nil, false
	}
	return e.Key, e.Payload, true
}

func hashOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, creating the shard directory on demand.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats returns the current accounting.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:       s.memHits.Load(),
		DiskHits:      s.diskHits.Load(),
		RemoteHits:    s.remoteHits.Load(),
		RemoteRejects: s.remoteRejects.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		PutErrors:     s.putErrors.Load(),
		MemEntries:    s.mem.len(),
	}
}
