package store

import (
	"container/list"
	"sync"
)

// lru is a sharded least-recently-used byte cache. Sharding by the first
// byte of the (uniformly distributed) SHA-256 hex key keeps lock
// contention low under concurrent readers without a global lock.
type lru struct {
	shards []*lruShard
}

type lruShard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type lruEntry struct {
	key     string
	payload []byte
}

func newLRU(capacity, shards int) *lru {
	per := (capacity + shards - 1) / shards
	if per < 1 {
		per = 1
	}
	l := &lru{shards: make([]*lruShard, shards)}
	for i := range l.shards {
		l.shards[i] = &lruShard{cap: per, m: map[string]*list.Element{}, ll: list.New()}
	}
	return l
}

func (l *lru) shard(key string) *lruShard {
	if len(key) == 0 {
		return l.shards[0]
	}
	return l.shards[int(key[0])%len(l.shards)]
}

func (l *lru) get(key string) ([]byte, bool) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(e)
	return e.Value.(*lruEntry).payload, true
}

func (l *lru) put(key string, payload []byte) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		s.ll.MoveToFront(e)
		e.Value.(*lruEntry).payload = payload
		return
	}
	s.m[key] = s.ll.PushFront(&lruEntry{key: key, payload: payload})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*lruEntry).key)
	}
}

func (l *lru) remove(key string) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		s.ll.Remove(e)
		delete(s.m, key)
	}
}

func (l *lru) len() int {
	n := 0
	for _, s := range l.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
