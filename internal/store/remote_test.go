package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fakeRemote is an in-memory Remote with scriptable behavior.
type fakeRemote struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int
	// serve overrides Get entirely when non-nil.
	serve func(key string) ([]byte, bool)
}

func newFakeRemote() *fakeRemote { return &fakeRemote{entries: map[string][]byte{}} }

func (f *fakeRemote) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.serve != nil {
		return f.serve(key)
	}
	p, ok := f.entries[key]
	return p, ok
}

func (f *fakeRemote) Put(key string, payload []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.entries[key] = payload
}

func (f *fakeRemote) counts() (gets, puts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets, f.puts
}

// TestRemoteHitPopulatesLocalTiers: a miss in both local tiers that the
// peer answers is promoted to memory and disk, counted as a remote hit
// (warm), and never consulted remotely again.
func TestRemoteHitPopulatesLocalTiers(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Schema: 1})
	r := newFakeRemote()
	r.entries["k"] = []byte("peer payload")
	s.SetRemote(r)

	got, ok := s.Get("k")
	if !ok || string(got) != "peer payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.RemoteHits != 1 || st.Misses != 0 || st.Warm() != 1 {
		t.Fatalf("stats = %+v; want 1 remote hit, 0 misses", st)
	}
	// Promoted: second lookup is a mem hit, no further remote traffic.
	if _, ok := s.Get("k"); !ok {
		t.Fatal("promoted entry missed")
	}
	if gets, _ := r.counts(); gets != 1 {
		t.Fatalf("remote consulted %d times; want 1", gets)
	}
	// Promoted to disk too: a fresh store (empty memory) without the
	// remote serves it from disk.
	s2 := open(t, dir, Options{Schema: 1})
	if _, ok := s2.Get("k"); !ok {
		t.Fatal("remote hit was not persisted to disk")
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("fresh-store stats = %+v; want 1 disk hit", st)
	}
}

// TestRemoteMissIsColdLookup: peer says no → plain miss.
func TestRemoteMissIsColdLookup(t *testing.T) {
	s := open(t, t.TempDir(), Options{Schema: 1})
	r := newFakeRemote()
	s.SetRemote(r)
	if _, ok := s.Get("absent"); ok {
		t.Fatal("phantom hit")
	}
	if st := s.Stats(); st.Misses != 1 || st.RemoteHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPutPropagatesToRemote: Put reaches the peer, PutLocal does not.
func TestPutPropagatesToRemote(t *testing.T) {
	s := open(t, t.TempDir(), Options{Schema: 1})
	r := newFakeRemote()
	s.SetRemote(r)

	s.Put("a", []byte("1"))
	if _, puts := r.counts(); puts != 1 {
		t.Fatalf("remote puts = %d; want 1", puts)
	}
	s.PutLocal("b", []byte("2"))
	if _, puts := r.counts(); puts != 1 {
		t.Fatalf("PutLocal propagated to remote (puts=%d)", puts)
	}
	// Both are locally readable.
	for _, k := range []string{"a", "b"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("Get(%q) missed", k)
		}
	}
}

// TestRemoteRejectedPayloadIsMiss: a peer payload the caller's validator
// refuses must be a cold miss that never contaminates the local tiers.
func TestRemoteRejectedPayloadIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Schema: 1})
	r := newFakeRemote()
	r.entries["k"] = []byte("drifted payload")
	s.SetRemote(r)

	reject := func([]byte) error { return errors.New("undecodable") }
	if _, ok := s.GetValidated("k", reject); ok {
		t.Fatal("rejected remote payload served as a hit")
	}
	st := s.Stats()
	if st.RemoteRejects != 1 || st.Misses != 1 || st.Warm() != 0 {
		t.Fatalf("stats = %+v; want 1 remote reject counted as a miss", st)
	}
	// Not promoted anywhere: with the remote detached, the entry is
	// gone at both local tiers.
	s.SetRemote(nil)
	if _, ok := s.Get("k"); ok {
		t.Fatal("rejected payload was promoted locally")
	}
	if _, err := os.Stat(entryPath(dir, "k")); !os.IsNotExist(err) {
		t.Fatalf("rejected payload written to disk (err=%v)", err)
	}
}

// TestDamagedDiskEntryFallsThroughToRemote: the peer can repair a
// locally corrupted entry.
func TestDamagedDiskEntryFallsThroughToRemote(t *testing.T) {
	dir := t.TempDir()
	open(t, dir, Options{Schema: 1}).Put("k", []byte("good"))
	p := entryPath(dir, "k")
	if err := os.WriteFile(p, []byte("torn{{{"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{Schema: 1})
	r := newFakeRemote()
	r.entries["k"] = []byte("good")
	s.SetRemote(r)
	got, ok := s.Get("k")
	if !ok || string(got) != "good" {
		t.Fatalf("Get over damaged disk entry = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.RemoteHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v; want eviction + remote repair", st)
	}
	// The repaired entry is back on disk.
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("repaired entry not rewritten: %v", err)
	}
}

// TestNilRemoteUnchanged pins that a store without a remote behaves
// exactly as the two-tier store (the repro/wabench path).
func TestNilRemoteUnchanged(t *testing.T) {
	s := open(t, t.TempDir(), Options{Schema: 1})
	if s.Remote() != nil {
		t.Fatal("fresh store has a remote")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("phantom hit")
	}
	s.Put("k", []byte("v"))
	if _, ok := s.Get("k"); !ok {
		t.Fatal("miss after put")
	}
	if st := s.Stats(); st.RemoteHits != 0 || st.RemoteRejects != 0 {
		t.Fatalf("remote counters moved without a remote: %+v", st)
	}
}

// TestOpenCleansStaleTempFiles: write-temp files left by a process
// killed mid-write are removed at open and never loaded as entries.
func TestOpenCleansStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	open(t, dir, Options{Schema: 1}).Put("k", []byte("v"))

	shard := filepath.Dir(entryPath(dir, "k"))
	for _, name := range []string{".tmp-123", ".tmp-torn-write"} {
		if err := os.WriteFile(filepath.Join(shard, name), []byte(`{"v":1,"schema":1,"key":"x","payload":"TQ=="}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := open(t, dir, Options{Schema: 1})
	entries, err := os.ReadDir(shard)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file %s survived Open", e.Name())
		}
	}
	// The real entry is intact.
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("real entry lost in temp cleanup: %q, %v", got, ok)
	}
}

// TestTruncatedAtEveryOffsetSelfEvicts: an envelope cut at any byte
// offset must read as a miss (evicted), never an error or a wrong
// payload — the torn-write worst case, exhaustively.
func TestTruncatedAtEveryOffsetSelfEvicts(t *testing.T) {
	dir := t.TempDir()
	key, payload := "k", []byte(`{"prediction":1.25,"bound":"port"}`)
	open(t, dir, Options{Schema: 1}).Put(key, payload)
	p := entryPath(dir, key)
	full, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := open(t, dir, Options{Schema: 1})
		got, ok := s.Get(key)
		if ok {
			// A truncation that still parses to the full valid envelope
			// is impossible (cut < len); any hit is a corruption escape.
			t.Fatalf("cut at %d/%d served payload %q", cut, len(full), got)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("cut at %d: truncated entry not evicted (err=%v)", cut, err)
		}
		if st := s.Stats(); st.Evictions != 1 || st.Misses != 1 {
			t.Fatalf("cut at %d: stats = %+v", cut, st)
		}
		// Restore for the next offset.
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Sanity: the restored full entry still reads.
	s := open(t, dir, Options{Schema: 1})
	if got, ok := s.Get(key); !ok || string(got) != string(payload) {
		t.Fatalf("restored entry = %q, %v", got, ok)
	}
}
