// Package portsched implements per-port busy-interval schedules with gap
// filling. An out-of-order scheduler picks, every cycle, the oldest ready
// µ-op for each free port; in an event-driven timing model the equivalent
// behaviour is achieved by letting each µ-op occupy the earliest free gap
// at or after its ready time. Without gap filling, program-order
// reservation suffers head-of-line blocking: a dependent µ-op scheduled
// far in the future would block older-but-later-ready work from using the
// idle port time before it, which real hardware happily uses.
package portsched

// Interval is a half-open busy span [Start, End).
type Interval struct {
	Start, End float64
}

// Port is one execution port's schedule: a sorted, non-overlapping list of
// busy intervals. The zero value is an idle port.
type Port struct {
	busy []Interval
}

// Reset clears the schedule.
func (p *Port) Reset() { p.busy = p.busy[:0] }

// BusySpans returns the number of busy intervals (for tests).
func (p *Port) BusySpans() int { return len(p.busy) }

// AppendTail appends the start and end times of every busy interval
// ending after the given time to the two destination slices (schedule
// order, i.e. ascending), with starts clamped up to the given time.
// Consumers compare schedule tails across loop iterations to prove a
// simulation periodic, and the clamp is what makes that comparison both
// sound and able to converge: a saturated port's schedule merges into one
// interval whose start recedes into the transient, but for any µ-op whose
// earliest issue time lies beyond `after`, everything at or before that
// point is unusable — only the interval's end constrains it. (Intervals
// after the first necessarily start beyond `after`, since the list is
// sorted and non-overlapping, so the clamp can only touch the first.)
func (p *Port) AppendTail(starts, ends []float64, after float64) ([]float64, []float64) {
	lo, hi := 0, len(p.busy)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.busy[mid].End > after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for _, iv := range p.busy[lo:] {
		s := iv.Start
		if s < after {
			s = after
		}
		starts = append(starts, s)
		ends = append(ends, iv.End)
	}
	return starts, ends
}

// EarliestSlot returns the earliest start time t >= earliest at which a
// µ-op of duration dur fits, along with the insertion position.
func (p *Port) EarliestSlot(earliest, dur float64) (float64, int) {
	// Binary search: first interval with End > earliest.
	lo, hi := 0, len(p.busy)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.busy[mid].End > earliest {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t := earliest
	i := lo
	for i < len(p.busy) {
		if t+dur <= p.busy[i].Start {
			return t, i
		}
		if p.busy[i].End > t {
			t = p.busy[i].End
		}
		i++
	}
	return t, i
}

// Reserve books [t, t+dur) at insertion position pos (as returned by
// EarliestSlot with the same arguments). Adjacent intervals are merged to
// keep the schedule compact in steady state.
func (p *Port) Reserve(t, dur float64, pos int) {
	const eps = 1e-9
	end := t + dur
	// Merge with predecessor when contiguous.
	if pos > 0 && t-p.busy[pos-1].End <= eps {
		p.busy[pos-1].End = end
		// Merge with successor too if now contiguous.
		if pos < len(p.busy) && p.busy[pos].Start-end <= eps {
			p.busy[pos-1].End = p.busy[pos].End
			p.busy = append(p.busy[:pos], p.busy[pos+1:]...)
		}
		return
	}
	// Merge with successor when contiguous.
	if pos < len(p.busy) && p.busy[pos].Start-end <= eps {
		p.busy[pos].Start = t
		return
	}
	p.busy = append(p.busy, Interval{})
	copy(p.busy[pos+1:], p.busy[pos:])
	p.busy[pos] = Interval{Start: t, End: end}
}

// Schedule books the earliest feasible slot at or after earliest and
// returns its start time.
func (p *Port) Schedule(earliest, dur float64) float64 {
	t, pos := p.EarliestSlot(earliest, dur)
	p.Reserve(t, dur, pos)
	return t
}

// Group is a set of ports addressed by index.
type Group struct {
	Ports []Port
}

// NewGroup returns a group of n idle ports.
func NewGroup(n int) *Group {
	return &Group{Ports: make([]Port, n)}
}

// ResetTo clears the group and resizes it to n ports, reusing each
// retained port's interval capacity so pooled simulator states do not
// reallocate schedules between runs.
func (g *Group) ResetTo(n int) {
	if cap(g.Ports) < n {
		grown := make([]Port, n)
		copy(grown, g.Ports)
		g.Ports = grown
	}
	g.Ports = g.Ports[:n]
	for i := range g.Ports {
		g.Ports[i].Reset()
	}
}

// ScheduleBest books the port (among candidates) with the earliest
// feasible slot and returns (port index, start time). Ties break toward
// the lowest port index. candidates must be non-empty.
func (g *Group) ScheduleBest(candidates []int, earliest, dur float64) (int, float64) {
	bestPort, bestT, bestPos := -1, 0.0, 0
	for _, c := range candidates {
		t, pos := g.Ports[c].EarliestSlot(earliest, dur)
		if bestPort < 0 || t < bestT {
			bestPort, bestT, bestPos = c, t, pos
		}
	}
	g.Ports[bestPort].Reserve(bestT, dur, bestPos)
	return bestPort, bestT
}

// ScheduleOn books the earliest slot on one specific port.
func (g *Group) ScheduleOn(port int, earliest, dur float64) float64 {
	return g.Ports[port].Schedule(earliest, dur)
}
