package portsched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleSequential(t *testing.T) {
	var p Port
	if got := p.Schedule(0, 1); got != 0 {
		t.Errorf("first slot = %f, want 0", got)
	}
	if got := p.Schedule(0, 1); got != 1 {
		t.Errorf("second slot = %f, want 1", got)
	}
	if got := p.Schedule(5, 1); got != 5 {
		t.Errorf("later slot = %f, want 5", got)
	}
}

func TestGapFilling(t *testing.T) {
	var p Port
	p.Schedule(0, 1)  // [0,1)
	p.Schedule(10, 2) // [10,12)
	// A µ-op ready at 2 must use the gap, not queue behind 12.
	if got := p.Schedule(2, 3); got != 2 {
		t.Errorf("gap fill start = %f, want 2", got)
	}
	// A µ-op that does not fit in the remaining gap goes after.
	if got := p.Schedule(2, 6); got != 12 {
		t.Errorf("oversized op start = %f, want 12", got)
	}
}

func TestMergeKeepsScheduleCompact(t *testing.T) {
	var p Port
	for i := 0; i < 100; i++ {
		p.Schedule(0, 1) // all contiguous
	}
	if p.BusySpans() != 1 {
		t.Errorf("contiguous reservations should merge: %d spans", p.BusySpans())
	}
}

func TestReset(t *testing.T) {
	var p Port
	p.Schedule(0, 5)
	p.Reset()
	if got := p.Schedule(0, 1); got != 0 {
		t.Errorf("after reset, slot = %f, want 0", got)
	}
}

// TestNoOverlapProperty schedules random µ-ops and verifies no two
// reservations overlap and each starts at/after its ready time.
func TestNoOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var p Port
		type span struct{ s, e float64 }
		var spans []span
		for i := 0; i < 200; i++ {
			earliest := float64(rng.Intn(300))
			dur := float64(1+rng.Intn(5)) / 2
			start := p.Schedule(earliest, dur)
			if start < earliest {
				t.Fatalf("start %f before ready %f", start, earliest)
			}
			spans = append(spans, span{start, start + dur})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e-1e-9 {
				t.Fatalf("overlap: %+v then %+v", spans[i-1], spans[i])
			}
		}
	}
}

// TestEarliestFitProperty: the returned slot must be the first feasible
// position (no earlier feasible start exists).
func TestEarliestFitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		var p Port
		var booked [][2]float64
		for i := 0; i < 100; i++ {
			earliest := float64(rng.Intn(100))
			dur := float64(1 + rng.Intn(4))
			start, _ := p.EarliestSlot(earliest, dur)
			// Verify no feasible slot in [earliest, start): check a few
			// candidate positions.
			for probe := earliest; probe < start-1e-9; probe += 0.5 {
				if fits(booked, probe, dur) {
					t.Fatalf("missed earlier slot at %f (returned %f)", probe, start)
				}
			}
			p.Reserve(start, dur, reservePos(&p, start, dur))
			booked = append(booked, [2]float64{start, start + dur})
		}
	}
}

// reservePos recomputes the insertion position for a known-feasible start.
func reservePos(p *Port, start, dur float64) int {
	t, pos := p.EarliestSlot(start, dur)
	if t != start {
		panic("slot no longer available")
	}
	return pos
}

func fits(booked [][2]float64, start, dur float64) bool {
	end := start + dur
	for _, b := range booked {
		if start < b[1]-1e-9 && b[0] < end-1e-9 {
			return false
		}
	}
	return true
}

func TestGroupScheduleBest(t *testing.T) {
	g := NewGroup(3)
	g.Ports[0].Schedule(0, 10) // port 0 busy until 10
	port, start := g.ScheduleBest([]int{0, 1, 2}, 0, 1)
	if port == 0 || start != 0 {
		t.Errorf("best port = %d at %f, want a free port at 0", port, start)
	}
}

func TestGroupScheduleOn(t *testing.T) {
	g := NewGroup(2)
	if got := g.ScheduleOn(1, 3, 2); got != 3 {
		t.Errorf("ScheduleOn = %f, want 3", got)
	}
	if got := g.ScheduleOn(1, 3, 2); got != 5 {
		t.Errorf("second ScheduleOn = %f, want 5", got)
	}
}

// TestQuickTotalOccupancy: total booked time equals the sum of durations.
func TestQuickTotalOccupancy(t *testing.T) {
	f := func(durs []uint8) bool {
		var p Port
		var total float64
		for _, d := range durs {
			dur := float64(d%7) + 1
			p.Schedule(0, dur)
			total += dur
		}
		// All reservations are contiguous from 0 (always feasible at the
		// end), so the single merged span must end at total.
		end, _ := p.EarliestSlot(0, 0.5)
		return end == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupResetTo(t *testing.T) {
	g := NewGroup(2)
	g.ScheduleOn(0, 0, 3)
	g.ScheduleOn(1, 1, 2)
	g.ResetTo(3)
	if len(g.Ports) != 3 {
		t.Fatalf("ResetTo(3) left %d ports", len(g.Ports))
	}
	for i := range g.Ports {
		if g.Ports[i].BusySpans() != 0 {
			t.Errorf("port %d not cleared", i)
		}
	}
	// Shrinking reuses the prefix.
	g.ScheduleOn(2, 0, 1)
	g.ResetTo(1)
	if len(g.Ports) != 1 || g.Ports[0].BusySpans() != 0 {
		t.Error("ResetTo(1) did not clear/resize")
	}
}

func TestPortAppendTail(t *testing.T) {
	var p Port
	p.Schedule(0, 2) // [0,2)
	p.Schedule(4, 1) // [4,5)
	p.Schedule(8, 2) // [8,10)
	starts, ends := p.AppendTail(nil, nil, 4.5)
	// [4,5) ends after 4.5 (start clamped to 4.5), [8,10) follows.
	if len(starts) != 2 || len(ends) != 2 {
		t.Fatalf("tail = %v/%v, want 2 intervals", starts, ends)
	}
	if starts[0] != 4.5 || ends[0] != 5 {
		t.Errorf("first tail interval = [%v,%v), want clamped [4.5,5)", starts[0], ends[0])
	}
	if starts[1] != 8 || ends[1] != 10 {
		t.Errorf("second tail interval = [%v,%v), want [8,10)", starts[1], ends[1])
	}
	// A cut beyond every interval yields nothing.
	if s2, _ := p.AppendTail(nil, nil, 10); len(s2) != 0 {
		t.Errorf("tail past end = %v, want empty", s2)
	}
	// Appends to the destination without clobbering.
	s3, e3 := p.AppendTail(starts, ends, 9)
	if len(s3) != 3 || len(e3) != 3 || s3[2] != 9 || e3[2] != 10 {
		t.Errorf("append-to-dst tail = %v/%v", s3, e3)
	}
}
