package portsched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleSequential(t *testing.T) {
	var p Port
	if got := p.Schedule(0, 1); got != 0 {
		t.Errorf("first slot = %f, want 0", got)
	}
	if got := p.Schedule(0, 1); got != 1 {
		t.Errorf("second slot = %f, want 1", got)
	}
	if got := p.Schedule(5, 1); got != 5 {
		t.Errorf("later slot = %f, want 5", got)
	}
}

func TestGapFilling(t *testing.T) {
	var p Port
	p.Schedule(0, 1)  // [0,1)
	p.Schedule(10, 2) // [10,12)
	// A µ-op ready at 2 must use the gap, not queue behind 12.
	if got := p.Schedule(2, 3); got != 2 {
		t.Errorf("gap fill start = %f, want 2", got)
	}
	// A µ-op that does not fit in the remaining gap goes after.
	if got := p.Schedule(2, 6); got != 12 {
		t.Errorf("oversized op start = %f, want 12", got)
	}
}

func TestMergeKeepsScheduleCompact(t *testing.T) {
	var p Port
	for i := 0; i < 100; i++ {
		p.Schedule(0, 1) // all contiguous
	}
	if p.BusySpans() != 1 {
		t.Errorf("contiguous reservations should merge: %d spans", p.BusySpans())
	}
}

func TestReset(t *testing.T) {
	var p Port
	p.Schedule(0, 5)
	p.Reset()
	if got := p.Schedule(0, 1); got != 0 {
		t.Errorf("after reset, slot = %f, want 0", got)
	}
}

// TestNoOverlapProperty schedules random µ-ops and verifies no two
// reservations overlap and each starts at/after its ready time.
func TestNoOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var p Port
		type span struct{ s, e float64 }
		var spans []span
		for i := 0; i < 200; i++ {
			earliest := float64(rng.Intn(300))
			dur := float64(1+rng.Intn(5)) / 2
			start := p.Schedule(earliest, dur)
			if start < earliest {
				t.Fatalf("start %f before ready %f", start, earliest)
			}
			spans = append(spans, span{start, start + dur})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e-1e-9 {
				t.Fatalf("overlap: %+v then %+v", spans[i-1], spans[i])
			}
		}
	}
}

// TestEarliestFitProperty: the returned slot must be the first feasible
// position (no earlier feasible start exists).
func TestEarliestFitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		var p Port
		var booked [][2]float64
		for i := 0; i < 100; i++ {
			earliest := float64(rng.Intn(100))
			dur := float64(1 + rng.Intn(4))
			start, _ := p.EarliestSlot(earliest, dur)
			// Verify no feasible slot in [earliest, start): check a few
			// candidate positions.
			for probe := earliest; probe < start-1e-9; probe += 0.5 {
				if fits(booked, probe, dur) {
					t.Fatalf("missed earlier slot at %f (returned %f)", probe, start)
				}
			}
			p.Reserve(start, dur, reservePos(&p, start, dur))
			booked = append(booked, [2]float64{start, start + dur})
		}
	}
}

// reservePos recomputes the insertion position for a known-feasible start.
func reservePos(p *Port, start, dur float64) int {
	t, pos := p.EarliestSlot(start, dur)
	if t != start {
		panic("slot no longer available")
	}
	return pos
}

func fits(booked [][2]float64, start, dur float64) bool {
	end := start + dur
	for _, b := range booked {
		if start < b[1]-1e-9 && b[0] < end-1e-9 {
			return false
		}
	}
	return true
}

func TestGroupScheduleBest(t *testing.T) {
	g := NewGroup(3)
	g.Ports[0].Schedule(0, 10) // port 0 busy until 10
	port, start := g.ScheduleBest([]int{0, 1, 2}, 0, 1)
	if port == 0 || start != 0 {
		t.Errorf("best port = %d at %f, want a free port at 0", port, start)
	}
}

func TestGroupScheduleOn(t *testing.T) {
	g := NewGroup(2)
	if got := g.ScheduleOn(1, 3, 2); got != 3 {
		t.Errorf("ScheduleOn = %f, want 3", got)
	}
	if got := g.ScheduleOn(1, 3, 2); got != 5 {
		t.Errorf("second ScheduleOn = %f, want 5", got)
	}
}

// TestQuickTotalOccupancy: total booked time equals the sum of durations.
func TestQuickTotalOccupancy(t *testing.T) {
	f := func(durs []uint8) bool {
		var p Port
		var total float64
		for _, d := range durs {
			dur := float64(d%7) + 1
			p.Schedule(0, dur)
			total += dur
		}
		// All reservations are contiguous from 0 (always feasible at the
		// end), so the single merged span must end at total.
		end, _ := p.EarliestSlot(0, 0.5)
		return end == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
