package sim

import "math"

// debugSteady, when set by tests, receives periodicity-check rejection
// diagnostics.
var debugSteady func(format string, args ...any)

// Steady-state convergence detection.
//
// The paper's observation — steady-state loop kernels converge after a
// short transient — means most of a 320-iteration simulation re-derives
// timings that repeat an earlier iteration shifted by a constant. The
// engine exploits that: once the complete live state of the pipeline is
// exactly periodic with period P iterations and shift D cycles, the
// remaining iterations are determined and the run finishes analytically.
//
// Exactness, not approximation: detection only arms when every port-busy
// charge is a dyadic rational with denominator ≤ 64 (integer latencies,
// half/quarter-cycle shared µ-ops; the Zen 4 early-exit divider's 0.7×
// occupancies fail this test and simply run full length). Every quantity
// the engine computes is then a dyadic rational of bounded denominator and
// magnitude far below 2^52, so every add/subtract/max in the engine is
// exact — no rounding anywhere. Exact arithmetic is translation-invariant:
// if the whole live window (instruction timestamps over
// max(ROB, 2·block) slots, µ-op dispatch/issue slots over
// max(scheduler, issue width), and each port's schedule tail) repeats with
// shift D over confirmPeriods consecutive periods, it provably repeats
// forever, and "simulate N more iterations" equals "add D, N/P times" bit
// for bit. The golden and steady-state tests assert that equality against
// full-length runs for every kernel × machine model.
const (
	// maxPeriod is the longest steady-state period considered, in
	// iterations (covers fractional cycles-per-iteration down to 1/8).
	maxPeriod = 8
	// confirmPeriods is how many consecutive periods the live window
	// must repeat exactly before the engine extrapolates.
	confirmPeriods = 2

	bRetireLen  = 2*maxPeriod + 1
	tailRingLen = confirmPeriods*maxPeriod + 1
)

// tailSnap is a per-iteration-boundary snapshot of every port's schedule
// tail (busy intervals that can still interact with future µ-ops).
type tailSnap struct {
	counts []int32 // intervals per port
	starts []float64
	ends   []float64
}

// occsDyadic reports whether every port-busy charge is a dyadic rational
// with denominator ≤ 64 — the precondition for all engine arithmetic
// being exact (see the package comment above).
func occsDyadic(occs []float64) bool {
	for _, o := range occs {
		scaled := o * 64
		if scaled != math.Trunc(scaled) || math.Abs(o) > 1<<20 {
			return false
		}
	}
	return true
}

// futureIssueFloor returns a lower bound on the earliest issue time of
// every µ-op the engine has not yet scheduled: the minimum issue time of
// the last SchedSize slots. Each future instruction dispatches no earlier
// than the issue time of the µ-op SchedSize slots before it (the
// scheduler-capacity constraint), which is either one of these recorded
// slots or, inductively, a later µ-op's issue time bounded the same way;
// and every µ-op issues at or after its dispatch. Being a min over values
// the periodicity sweep checks, the floor shifts by exactly D per period.
func (s *simState) futureIssueFloor() float64 {
	n := s.schedSize
	if n > s.uopCount {
		n = s.uopCount
	}
	if n == 0 {
		return 0
	}
	ref := s.uopIssued[(s.uopCount-1)&s.umask]
	for d := s.uopCount - n; d < s.uopCount-1; d++ {
		if v := s.uopIssued[d&s.umask]; v < ref {
			ref = v
		}
	}
	return ref
}

// snapshotTails records, at an iteration boundary, each port's busy
// intervals that end after ref (the future-issue floor). No future µ-op
// can issue, gap-fill, or merge below ref, so intervals ending at or
// before it are dead — they can neither host nor constrain future work —
// and the live tail is what must repeat for the schedule to be periodic.
func (s *simState) snapshotTails(iter int, ref float64) {
	sn := &s.tails[iter%tailRingLen]
	sn.counts = sn.counts[:0]
	sn.starts = sn.starts[:0]
	sn.ends = sn.ends[:0]
	for pi := range s.ports.Ports {
		before := len(sn.starts)
		sn.starts, sn.ends = s.ports.Ports[pi].AppendTail(sn.starts, sn.ends, ref)
		sn.counts = append(sn.counts, int32(len(sn.starts)-before))
	}
}

// tryDetect looks for the shortest period P whose live state repeats with
// a constant shift. Cheap first: the boundary retire deltas must agree;
// only then is the full window swept.
func (s *simState) tryDetect(p *Program, iter, dyn int) (int, float64, bool) {
	for P := 1; P <= maxPeriod; P++ {
		if iter < 2*P+1 {
			break // longer periods need even more history
		}
		shift := P * p.nStatic
		// The sweep reads confirmPeriods windows plus one shift of
		// history; require it all to exist (and skip iteration 0).
		if dyn < s.liveInstr+(confirmPeriods+1)*shift+p.nStatic {
			break
		}
		d := s.bRetire[iter%bRetireLen] - s.bRetire[(iter-P)%bRetireLen]
		if d <= 0 {
			continue
		}
		if s.bRetire[(iter-P)%bRetireLen]-s.bRetire[(iter-2*P)%bRetireLen] != d {
			continue
		}
		if s.checkPeriodic(p, iter, dyn, P, d) {
			return P, d, true
		}
	}
	return 0, 0, false
}

// checkPeriodic verifies that the complete live state at this boundary is
// a D-shifted copy of the state P iterations ago, over confirmPeriods
// consecutive periods: all four timestamp rings across the live
// instruction window, both µ-op slot rings across the live scheduler
// window, and every port's schedule tail.
func (s *simState) checkPeriodic(p *Program, iter, dyn, P int, D float64) bool {
	shift := P * p.nStatic
	imask := s.imask

	// The frontend has no backpressure in this model, so on backend-bound
	// blocks the fetch stream advances at its own (slower) constant rate.
	// That divergence is inert: fetch enters the engine only through the
	// dispatch max(), where a strictly fetch-bound instruction would make
	// the dispatch slots below shift by Df instead of D and fail their
	// check, while a tied or dominated fetch term keeps losing ground
	// (Df ≤ D) and can never become binding. So fetch must be exactly
	// periodic too, but against its own shift.
	Df := s.fetch[(dyn-1)&imask] - s.fetch[(dyn-1-shift)&imask]
	if Df <= 0 || Df > D {
		return false
	}
	win := s.liveInstr + confirmPeriods*shift
	for d := dyn - win; d < dyn; d++ {
		j, k := d&imask, (d-shift)&imask
		if s.retire[j]-s.retire[k] != D ||
			s.fetch[j]-s.fetch[k] != Df ||
			s.ready[j]-s.ready[k] != D ||
			s.started[j]-s.started[k] != D {
			if debugSteady != nil {
				debugSteady("iter=%d P=%d: timestamp mismatch at dyn=%d (back %d): retΔ=%v fetΔ=%v rdyΔ=%v staΔ=%v want D=%v Df=%v",
					iter, P, d, dyn-d, s.retire[j]-s.retire[k], s.fetch[j]-s.fetch[k], s.ready[j]-s.ready[k], s.started[j]-s.started[k], D, Df)
			}
			return false
		}
	}

	uShift := P * s.slotsPerIter
	uTop := s.uopCount // == iter*slotsPerIter at a boundary
	uWin := s.liveU + confirmPeriods*uShift
	if uTop < uWin+uShift {
		if debugSteady != nil {
			debugSteady("iter=%d P=%d: uop history too short", iter, P)
		}
		return false
	}
	umask := s.umask
	for d := uTop - uWin; d < uTop; d++ {
		j, k := d&umask, (d-uShift)&umask
		if s.uopDispatch[j]-s.uopDispatch[k] != D ||
			s.uopIssued[j]-s.uopIssued[k] != D {
			if debugSteady != nil {
				debugSteady("iter=%d P=%d: uop mismatch at slot=%d (back %d): dispΔ=%v issΔ=%v want %v",
					iter, P, d, uTop-d, s.uopDispatch[j]-s.uopDispatch[k], s.uopIssued[j]-s.uopIssued[k], D)
			}
			return false
		}
	}

	for c := 0; c < confirmPeriods; c++ {
		if !s.tailsShifted(iter-c*P, iter-(c+1)*P, D) {
			if debugSteady != nil {
				debugSteady("iter=%d P=%d: tail mismatch at confirm %d", iter, P, c)
			}
			return false
		}
	}
	return true
}

func (s *simState) tailsShifted(a, b int, D float64) bool {
	sa, sb := &s.tails[a%tailRingLen], &s.tails[b%tailRingLen]
	if len(sa.counts) != len(sb.counts) || len(sa.starts) != len(sb.starts) {
		return false
	}
	for i := range sa.counts {
		if sa.counts[i] != sb.counts[i] {
			return false
		}
	}
	for i := range sa.starts {
		if sa.starts[i]-sb.starts[i] != D || sa.ends[i]-sb.ends[i] != D {
			return false
		}
	}
	return true
}

// extrapolateBoundary returns the retire timestamp the full simulation
// would have produced at iteration boundary T ≥ detIter: the recorded
// value at the phase-matching recent boundary, plus D once per elapsed
// period. The additions are performed one by one — with exact arithmetic
// this is precisely the sequence of values the simulated boundaries would
// have taken.
func (s *simState) extrapolateBoundary(T, detIter, P int, D float64) float64 {
	phase := (T - detIter) % P
	b := detIter
	if phase != 0 {
		b = detIter - P + phase
	}
	v := s.bRetire[b%bRetireLen]
	for k := 0; k < (T-b)/P; k++ {
		v += D
	}
	return v
}

// replayPortBusy accounts the measured-window port busy time of the
// skipped iterations. The per-iteration charge sequence (occSeq) is fixed
// at compile time; the port choices repeat with period P and were
// recorded for the last P simulated iterations. Replaying performs the
// identical additions, in the identical order, that full simulation would
// have performed.
func (s *simState) replayPortBusy(cfg *Config, detIter, P, iters int) {
	for it := detIter; it < iters; it++ {
		if it < cfg.WarmupIters {
			continue
		}
		src := detIter - P + (it-detIter)%P
		rec := s.portRec[(src%maxPeriod)*len(s.occSeq):]
		for k, occ := range s.occSeq {
			s.portBusy[rec[k]] += occ
		}
	}
}
