package sim

import "strings"

// FPClass is a coarse classification of FP operations for the forwarding
// network model.
type FPClass int

// FP operation classes.
const (
	FPNone FPClass = iota
	FPAdd
	FPMul
	FPFMA
	FPDiv
	FPOther
)

// ClassifyFP returns the FP class of a mnemonic.
//
// The clauses are ordered: FMA before add/mul (vfmadd contains "add"),
// div before add (vdivpd would otherwise fall through), and the x86
// scalar/packed "add*pd|sd" clause binds tighter than its "HasPrefix(add)"
// spelling suggests — see TestClassifyFPTable, which pins the precedence.
// Hot paths never call this per dynamic instruction: Compile evaluates it
// once per static instruction and stores the class in the Program.
func ClassifyFP(mn string) FPClass {
	switch {
	case strings.HasPrefix(mn, "vfma") || strings.HasPrefix(mn, "vfnma") ||
		strings.HasPrefix(mn, "vfms") || mn == "fmla" || mn == "fmls" ||
		mn == "fmadd" || mn == "fmsub" || mn == "fnmadd" || mn == "fnmsub" ||
		mn == "fadda":
		return FPFMA
	case strings.Contains(mn, "div"):
		return FPDiv
	case strings.HasPrefix(mn, "vadd") || strings.HasPrefix(mn, "vsub") ||
		strings.HasPrefix(mn, "add") && strings.HasSuffix(mn, "d") && (strings.Contains(mn, "pd") || strings.Contains(mn, "sd")) ||
		mn == "fadd" || mn == "fsub" || mn == "faddp":
		return FPAdd
	case strings.HasPrefix(mn, "vmul") || mn == "fmul" ||
		(strings.HasPrefix(mn, "mul") && (strings.Contains(mn, "pd") || strings.Contains(mn, "sd"))):
		return FPMul
	case strings.Contains(mn, "sqrt"):
		return FPDiv
	}
	return FPNone
}
