package sim_test

// Golden results for the simulator, captured from the pre-ring-buffer,
// pre-steady-state implementation (map-based, O(iterations) arrays). The
// compiled/pooled/extrapolating engine must reproduce every value
// bit-for-bit: floats are serialized in hex ('x') form, so any rounding
// difference — not just a modeling difference — fails the test.
//
// Regenerate (only when the simulator's *intended* semantics change):
//
//	go test ./internal/sim -run TestGoldenKernels -update

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/uarch"
)

var update = flag.Bool("update", false, "rewrite the simulator golden file")

var goldenArchs = []string{"goldencove", "neoversev2", "zen4"}

// goldenCase is one (block, model, config) simulation pinned by the file.
type goldenCase struct {
	name string
	arch string
	blk  *isa.Block
	cfg  sim.Config
}

// cfgVariants are the edge-case configurations of ISSUE 3: warmup
// coercion, a single measured iteration, and an issue width smaller than
// one instruction's µ-op count. The zero-valued fields double as quirk
// ablations (no forwarding, no divider early exit).
func cfgVariants(m *uarch.Model) map[string]sim.Config {
	issue1 := sim.DefaultConfig(m)
	issue1.IssueWidthOverride = 1
	norename := sim.DefaultConfig(m)
	norename.DisableRenaming = true
	return map[string]sim.Config{
		"default":  sim.DefaultConfig(m),
		"warmup0":  {WarmupIters: 0, MeasureIters: 5},
		"measure1": {WarmupIters: 8, MeasureIters: 1},
		"issue1":   issue1,
		"norename": norename,
	}
}

// edgeKernels get the full config-variant treatment; every kernel gets at
// least the default config. pi carries divides (the Zen 4 early-exit
// path), gs2d5 store-forwarding chains.
var edgeKernels = map[string]bool{"striad": true, "pi": true, "j2d5": true, "gs2d5": true}

func goldenBlock(t testing.TB, name, arch string, c kernels.Compiler, o kernels.OptLevel) *isa.Block {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.Generate(k, kernels.Config{Arch: arch, Compiler: c, Opt: o})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// oversizeBlock builds a block with more instructions than any model's ROB
// (and scheduler) by concatenating copies of a kernel body.
func oversizeBlock(t testing.TB, arch string, copies int) *isa.Block {
	t.Helper()
	m := uarch.MustGet(arch)
	base := goldenBlock(t, "striad", arch, kernels.GCC, kernels.O3)
	text := strings.Repeat(base.Text(), copies)
	b, err := isa.ParseBlock(fmt.Sprintf("oversize-%s-x%d", arch, copies), arch, m.Dialect, text)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() <= m.ROBSize {
		t.Fatalf("oversize block has %d instrs, want > ROB %d", b.Len(), m.ROBSize)
	}
	return b
}

func goldenCases(t testing.TB) []goldenCase {
	var cases []goldenCase
	for _, arch := range goldenArchs {
		m := uarch.MustGet(arch)
		second := kernels.Clang
		if arch == "neoversev2" {
			second = kernels.ArmClang
		}
		for i := range kernels.Kernels {
			kn := kernels.Kernels[i].Name
			for _, v := range []struct {
				c kernels.Compiler
				o kernels.OptLevel
			}{{kernels.GCC, kernels.O3}, {second, kernels.Ofast}} {
				blk := goldenBlock(t, kn, arch, v.c, v.o)
				cases = append(cases, goldenCase{
					name: fmt.Sprintf("%s/%s/default", arch, blk.Name),
					arch: arch, blk: blk, cfg: sim.DefaultConfig(m),
				})
			}
			if edgeKernels[kn] {
				blk := goldenBlock(t, kn, arch, kernels.GCC, kernels.O3)
				variants := cfgVariants(m)
				for _, vn := range []string{"warmup0", "measure1", "issue1", "norename"} {
					cases = append(cases, goldenCase{
						name: fmt.Sprintf("%s/%s/%s", arch, blk.Name, vn),
						arch: arch, blk: blk, cfg: variants[vn],
					})
				}
			}
		}
		// Block larger than ROB and scheduler: the live window must wrap
		// correctly even when a single iteration overflows every
		// structural resource.
		big := oversizeBlock(t, arch, 80)
		cases = append(cases, goldenCase{
			name: fmt.Sprintf("%s/%s/bigblock", arch, big.Name),
			arch: arch, blk: big,
			cfg: sim.Config{WarmupIters: 2, MeasureIters: 3},
		})
	}
	return cases
}

// goldenResult is the exact-bits serialization of a sim.Result.
type goldenResult struct {
	CyclesPerIter string   `json:"cycles_per_iter"`
	TotalCycles   string   `json:"total_cycles"`
	Iters         int      `json:"iters"`
	PortCycles    []string `json:"port_cycles"`
}

func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func toGolden(r *sim.Result) goldenResult {
	g := goldenResult{
		CyclesPerIter: hexF(r.CyclesPerIter),
		TotalCycles:   hexF(r.TotalCycles),
		Iters:         r.Iters,
		PortCycles:    make([]string, len(r.PortCycles)),
	}
	for i, c := range r.PortCycles {
		g.PortCycles[i] = hexF(c)
	}
	return g
}

const goldenPath = "testdata/golden_sim.json"

func TestGoldenKernels(t *testing.T) {
	cases := goldenCases(t)
	got := make(map[string]goldenResult, len(cases))
	for _, c := range cases {
		m := uarch.MustGet(c.arch)
		r, err := sim.Run(c.blk, m, c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got[c.name] = toGolden(r)
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden results to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, test generated %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: case no longer generated", name)
			continue
		}
		if g.CyclesPerIter != w.CyclesPerIter || g.TotalCycles != w.TotalCycles || g.Iters != w.Iters {
			t.Errorf("%s: got (%s cy/iter, %s total, %d iters), want (%s, %s, %d)",
				name, g.CyclesPerIter, g.TotalCycles, g.Iters, w.CyclesPerIter, w.TotalCycles, w.Iters)
			continue
		}
		for i := range w.PortCycles {
			if i >= len(g.PortCycles) || g.PortCycles[i] != w.PortCycles[i] {
				t.Errorf("%s: port %d cycles differ from golden", name, i)
				break
			}
		}
	}
}
