package sim_test

// Steady-state extrapolation contract (ISSUE 3): when the engine proves a
// run periodic and stops simulating, the Result must be bit-identical to
// the full-length simulation — same CyclesPerIter, TotalCycles, and
// per-port busy time down to the last float bit — for every kernel of the
// paper's validation set on all three machine models, and the fast path
// must actually engage on a healthy fraction of them (a detector that
// never fires would pass the identity check vacuously).

import (
	"fmt"
	"testing"

	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/uarch"
)

func assertBitIdentical(t *testing.T, name string, fast, full *sim.Result) {
	t.Helper()
	if fast.CyclesPerIter != full.CyclesPerIter || fast.TotalCycles != full.TotalCycles ||
		fast.Iters != full.Iters {
		t.Errorf("%s: extrapolated (%v cy/iter, %v total) != full (%v, %v)",
			name, fast.CyclesPerIter, fast.TotalCycles, full.CyclesPerIter, full.TotalCycles)
		return
	}
	if len(fast.PortCycles) != len(full.PortCycles) {
		t.Errorf("%s: port count %d != %d", name, len(fast.PortCycles), len(full.PortCycles))
		return
	}
	for i := range fast.PortCycles {
		if fast.PortCycles[i] != full.PortCycles[i] {
			t.Errorf("%s: port %d busy %v != %v", name, i, fast.PortCycles[i], full.PortCycles[i])
		}
	}
}

func TestSteadyStateBitIdenticalAllKernels(t *testing.T) {
	engaged, total := 0, 0
	for _, arch := range []string{"goldencove", "neoversev2", "zen4"} {
		m := uarch.MustGet(arch)
		for i := range kernels.Kernels {
			k := &kernels.Kernels[i]
			for _, c := range kernels.CompilersFor(arch) {
				for _, o := range kernels.AllOptLevels() {
					b, err := kernels.Generate(k, kernels.Config{Arch: arch, Compiler: c, Opt: o})
					if err != nil {
						t.Fatal(err)
					}
					name := fmt.Sprintf("%s/%s", arch, b.Name)
					cfg := sim.DefaultConfig(m)
					fast, err := sim.Run(b, m, cfg)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					cfg.DisableSteadyState = true
					full, err := sim.Run(b, m, cfg)
					if err != nil {
						t.Fatalf("%s (full): %v", name, err)
					}
					if full.SteadyStateIter != 0 {
						t.Fatalf("%s: DisableSteadyState run still extrapolated", name)
					}
					assertBitIdentical(t, name, fast, full)
					total++
					if fast.SteadyStateIter > 0 {
						engaged++
						if fast.SteadyStateIter >= cfg.WarmupIters+cfg.MeasureIters {
							t.Errorf("%s: claims convergence at %d of %d iterations",
								name, fast.SteadyStateIter, cfg.WarmupIters+cfg.MeasureIters)
						}
					}
				}
			}
		}
	}
	t.Logf("steady-state extrapolation engaged on %d/%d suite runs", engaged, total)
	if engaged*2 < total {
		t.Errorf("extrapolation engaged on only %d/%d runs; detector is not earning its keep", engaged, total)
	}
}

// TestSteadyStateEdgeConfigs covers the window edge cases with the
// periodicity machinery active: tiny measure windows, issue-width
// starvation, and a block bigger than every structural resource.
func TestSteadyStateEdgeConfigs(t *testing.T) {
	for _, arch := range []string{"goldencove", "neoversev2", "zen4"} {
		m := uarch.MustGet(arch)
		blk := goldenBlock(t, "striad", arch, kernels.GCC, kernels.O3)
		for _, tc := range []struct {
			name string
			cfg  sim.Config
		}{
			{"warmup0", sim.Config{WarmupIters: 0, MeasureIters: 5}},
			{"measure1", sim.Config{WarmupIters: 8, MeasureIters: 1}},
			{"longrun", sim.Config{WarmupIters: 16, MeasureIters: 1024}},
			{"issue1", sim.Config{WarmupIters: 64, MeasureIters: 256, IssueWidthOverride: 1}},
		} {
			fast, err := sim.Run(blk, m, tc.cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch, tc.name, err)
			}
			cfg := tc.cfg
			cfg.DisableSteadyState = true
			full, err := sim.Run(blk, m, cfg)
			if err != nil {
				t.Fatalf("%s/%s (full): %v", arch, tc.name, err)
			}
			assertBitIdentical(t, arch+"/striad/"+tc.name, fast, full)
		}
		big := oversizeBlock(t, arch, 80)
		cfg := sim.Config{WarmupIters: 2, MeasureIters: 3}
		fast, err := sim.Run(big, m, cfg)
		if err != nil {
			t.Fatalf("%s/bigblock: %v", arch, err)
		}
		cfg.DisableSteadyState = true
		full, err := sim.Run(big, m, cfg)
		if err != nil {
			t.Fatalf("%s/bigblock (full): %v", arch, err)
		}
		assertBitIdentical(t, arch+"/bigblock", fast, full)
	}
}

// TestSteadyStateLongRunEngages pins that a long healthy run converges
// early: the whole point of the detector is to make simulation cost
// O(transient), not O(iterations).
func TestSteadyStateLongRunEngages(t *testing.T) {
	m := uarch.MustGet("goldencove")
	blk := goldenBlock(t, "striad", "goldencove", kernels.GCC, kernels.O3)
	cfg := sim.DefaultConfig(m)
	cfg.WarmupIters = 64
	cfg.MeasureIters = 4096
	r, err := sim.Run(blk, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SteadyStateIter == 0 {
		t.Fatal("striad/goldencove never converged in 4160 iterations")
	}
	if r.SteadyStateIter > 1024 {
		t.Errorf("converged only at iteration %d; detector horizon regressed", r.SteadyStateIter)
	}
	if r.Iters != 4096 {
		t.Errorf("Iters = %d, want 4096", r.Iters)
	}
}
