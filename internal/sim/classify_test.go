package sim

import "testing"

// TestClassifyFPTable pins the current classification of every mnemonic
// family the models and kernels emit, including the clause-precedence
// cases: FMA wins over add/mul spellings, div wins over the x86
// "add*pd/sd" clause, and the x86 scalar/packed suffix rules only fire
// for pd/sd forms. ClassifyFP now runs once per static instruction at
// compile time, so a silent reordering of its clauses would otherwise
// only surface as a timing drift deep inside the forwarding model.
func TestClassifyFPTable(t *testing.T) {
	cases := []struct {
		mn   string
		want FPClass
	}{
		// FMA family, both dialects; vfm* prefixes contain "add"/"sub"
		// but must classify as FMA (clause order).
		{"vfmadd231pd", FPFMA},
		{"vfmadd213sd", FPFMA},
		{"vfmsub132pd", FPFMA},
		{"vfnmadd231pd", FPFMA},
		{"fmla", FPFMA},
		{"fmls", FPFMA},
		{"fmadd", FPFMA},
		{"fmsub", FPFMA},
		{"fnmadd", FPFMA},
		{"fnmsub", FPFMA},
		{"fadda", FPFMA}, // SVE ordered reduction: FMA class, not add

		// Divides and square roots, before any add/mul spelling applies.
		{"vdivpd", FPDiv},
		{"vdivsd", FPDiv},
		{"divpd", FPDiv},
		{"fdiv", FPDiv},
		{"fdivr", FPDiv},
		{"vsqrtpd", FPDiv},
		{"fsqrt", FPDiv},

		// x86 adds: the multi-clause precedence cases. "add*" only
		// classifies FP-add for packed/scalar-double forms ending in d.
		{"vaddpd", FPAdd},
		{"vaddsd", FPAdd},
		{"vsubpd", FPAdd},
		{"addpd", FPAdd},
		{"addsd", FPAdd},
		{"addsubpd", FPAdd}, // prefix add + pd + trailing d
		{"addps", FPNone},   // single precision: no trailing d
		{"addss", FPNone},
		{"add", FPNone},  // integer add
		{"addq", FPNone}, // integer add, q suffix
		{"paddd", FPNone},

		// AArch64 adds.
		{"fadd", FPAdd},
		{"fsub", FPAdd},
		{"faddp", FPAdd},

		// Multiplies.
		{"vmulpd", FPMul},
		{"vmulsd", FPMul},
		{"mulpd", FPMul},
		{"mulsd", FPMul},
		{"fmul", FPMul},
		{"mulq", FPNone}, // integer: no pd/sd
		{"imulq", FPNone},

		// Non-FP traffic.
		{"movq", FPNone},
		{"vmovupd", FPNone},
		{"ldr", FPNone},
		{"str", FPNone},
		{"cmpq", FPNone},
		{"jne", FPNone},
		{"subs", FPNone},
	}
	for _, c := range cases {
		if got := ClassifyFP(c.mn); got != c.want {
			t.Errorf("ClassifyFP(%q) = %v, want %v", c.mn, got, c.want)
		}
	}
}

// TestCompileCachesClassification asserts the compiled program carries the
// classification (the engine never re-derives it per dynamic instruction).
func TestCompileCachesClassification(t *testing.T) {
	blk := mustParse(t, "goldencove", `
	vfmadd231pd %zmm1, %zmm2, %zmm3
	vaddpd %zmm1, %zmm2, %zmm4
	vdivsd %xmm1, %xmm2, %xmm5
	decq %rcx
	jne .L0
`)
	p, err := Compile(blk, mustModel(t, "goldencove"))
	if err != nil {
		t.Fatal(err)
	}
	want := []FPClass{FPFMA, FPAdd, FPDiv, FPNone, FPNone}
	for i, cls := range want {
		if p.instrs[i].fpClass != cls {
			t.Errorf("instr %d compiled fpClass = %v, want %v", i, p.instrs[i].fpClass, cls)
		}
	}
	if !p.instrs[0].isFMA || p.instrs[0].accID < 0 {
		t.Error("FMA accumulator not compiled")
	}
	if !p.instrs[2].divScaled {
		t.Error("scalar divide not marked for early-exit scaling")
	}
}
