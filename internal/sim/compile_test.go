package sim

import (
	"sort"
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

func mustModel(t *testing.T, arch string) *uarch.Model {
	t.Helper()
	return uarch.MustGet(arch)
}

func mustParse(t *testing.T, arch, src string) *isa.Block {
	t.Helper()
	m := uarch.MustGet(arch)
	b, err := isa.ParseBlock("t", arch, m.Dialect, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return b
}

// TestCompileAddrIDsSortedUnique: the per-instruction address-register set
// is a sorted, duplicate-free interned-ID slice (the former
// map[isa.RegKey]bool), and data reads exclude exactly the address IDs.
func TestCompileAddrIDsSortedUnique(t *testing.T) {
	// Base and index both appear twice across the two memory operands;
	// %rax additionally feeds a register read (incq).
	blk := mustParse(t, "goldencove", `
	vmovsd (%rsi,%rax,8), %xmm1
	vaddsd 8(%rsi,%rax,8), %xmm1, %xmm1
	vmovsd %xmm1, (%rdi,%rax,8)
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`)
	p, err := Compile(blk, mustModel(t, "goldencove"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.instrs {
		ids := p.instrs[i].addrIDs
		if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
			t.Errorf("instr %d addrIDs not sorted: %v", i, ids)
		}
		seen := map[int32]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Errorf("instr %d addrIDs has duplicate %d", i, id)
			}
			seen[id] = true
		}
		for _, id := range p.instrs[i].dataIDs {
			if seen[id] {
				t.Errorf("instr %d: id %d in both addrIDs and dataIDs", i, id)
			}
		}
	}
	// The folded-load add reads base+index for its address and xmm1 for
	// data.
	if got := len(p.instrs[1].addrIDs); got != 2 {
		t.Errorf("folded load addr regs = %d, want 2 (base+index)", got)
	}
}

// TestAddressReadinessUnchanged pins that the slice representation kept
// the address-readiness semantics: a load's issue time tracks its address
// producer, and the folded-load accumulation chain is still only gated by
// the add latency (the behavioral contract behind markAddr's old map).
func TestAddressReadinessUnchanged(t *testing.T) {
	m := mustModel(t, "goldencove")
	// s += a[i]: the carried chain is the 2-cycle add, not load+add;
	// if address registers leaked into the data set the chain would be
	// load latency bound (~7+ cy/iter).
	r, err := Run(mustParse(t, "goldencove", `
	vaddsd (%rsi,%rax,8), %xmm0, %xmm0
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`), m, DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if r.CyclesPerIter < 1.7 || r.CyclesPerIter > 2.3 {
		t.Errorf("folded-load sum = %f cy/iter, want ~2 (add-latency bound)", r.CyclesPerIter)
	}
	// Pointer-chase shape: the load's address register is produced by a
	// long-latency op; the load must wait for it (address registers must
	// not be dropped either).
	r2, err := Run(mustParse(t, "goldencove", `
	imulq $3, %rax, %rax
	vmovsd (%rsi,%rax,8), %xmm1
	decq %rcx
	jne .L0
`), m, DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if r2.CyclesPerIter < 2.7 {
		t.Errorf("address-dependent load chain = %f cy/iter, want >= imul latency (3)", r2.CyclesPerIter)
	}
}

// TestGatherIndexStaysDataDependency: vector (gather) indices carry data
// dependencies, not address dependencies — compile must keep them out of
// addrIDs, exactly like the old markAddr.
func TestGatherIndexStaysDataDependency(t *testing.T) {
	blk := mustParse(t, "goldencove", `
	vgatherqpd (%rsi,%zmm2,8), %zmm1
	decq %rcx
	jne .L0
`)
	p, err := Compile(blk, mustModel(t, "goldencove"))
	if err != nil {
		t.Fatal(err)
	}
	g := &p.instrs[0]
	if len(g.addrIDs) != 1 {
		t.Fatalf("gather addrIDs = %d entries, want 1 (base only)", len(g.addrIDs))
	}
	// The vector index must appear among data reads.
	var vecID int32 = -1
	for _, id := range g.readIDs {
		if !containsID(g.addrIDs, id) && containsID(g.dataIDs, id) {
			vecID = id
		}
	}
	if vecID < 0 {
		t.Error("gather vector index not tracked as a data dependency")
	}
}

// TestCompileSlotAccounting pins the dispatch-slot bookkeeping the
// steady-state detector's ring arithmetic depends on.
func TestCompileSlotAccounting(t *testing.T) {
	blk := mustParse(t, "goldencove", `
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`)
	p, err := Compile(blk, mustModel(t, "goldencove"))
	if err != nil {
		t.Fatal(err)
	}
	slots := 0
	scheduled := 0
	for i := range p.instrs {
		slots += int(p.instrs[i].nSlots)
	}
	for i := range p.uops {
		if len(p.uops[i].cand) > 0 {
			scheduled++
		}
	}
	if slots != p.slotsPerIter {
		t.Errorf("slotsPerIter = %d, sum of nSlots = %d", p.slotsPerIter, slots)
	}
	if scheduled > p.slotsPerIter {
		t.Errorf("scheduled µ-ops %d > slotsPerIter %d", scheduled, p.slotsPerIter)
	}
	if p.maxUopSlots <= 0 {
		t.Error("maxUopSlots not computed")
	}
}
