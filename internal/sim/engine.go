package sim

import (
	"sync"

	"incore/internal/portsched"
	"incore/internal/uarch"
)

// simState is the pooled per-run scratch state of the execution engine.
// Timestamp histories live in power-of-two ring buffers sized to the live
// microarchitectural window (see reset), so memory is O(window), not
// O(iterations), and a state recycled through statePool runs the hot loop
// without allocating.
type simState struct {
	// Per-dynamic-instruction timestamp rings, indexed dyn & imask.
	fetch, ready, started, retire []float64
	imask                         int
	liveInstr                     int // simulation lookback the instruction rings must hold

	// Per-µ-op-slot rings, indexed slot & umask.
	uopDispatch, uopIssued []float64
	umask                  int
	liveU                  int
	uopCount               int

	// Dense per-register state (interned IDs): last producing / reading
	// dynamic instruction, -1 if none.
	producer, lastReader []int
	// Last and previous store instance per static slot, -1 if none.
	lastStoreDyn, prevStoreDyn []int

	ports    portsched.Group
	portBusy []float64

	// Steady-state detection state; see steady.go.
	canDetect    bool
	slotsPerIter int
	schedSize    int
	occSeq       []float64 // per-iteration port-busy charge sequence
	portRec      []uint8   // ring: chosen port per charge, last maxPeriod iters
	recBase      int
	bRetire      [bRetireLen]float64 // retire value at recent iteration boundaries
	tails        [tailRingLen]tailSnap
}

var statePool = sync.Pool{New: func() any { return new(simState) }}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func fillNeg(s []int) {
	for i := range s {
		s[i] = -1
	}
}

// reset sizes the state for one run of p under cfg and clears everything a
// previous run could have left behind. Ring contents are not cleared: the
// engine only reads slots it has written this run (every lookback is
// guarded by dyn/slot-count comparisons, exactly as the O(iterations)
// implementation guarded its array indices).
func (s *simState) reset(p *Program, cfg *Config, issueWidth int) {
	m := p.model
	n := p.nStatic

	live := m.ROBSize
	if 2*n > live {
		live = 2 * n
	}
	if m.DecodeWidth > live {
		live = m.DecodeWidth
	}
	if m.RetireWidth > live {
		live = m.RetireWidth
	}
	live += 2
	s.liveInstr = live
	ringLen := nextPow2(live + (confirmPeriods+1)*maxPeriod*n + n + 4)
	s.fetch = growF(s.fetch, ringLen)
	s.ready = growF(s.ready, ringLen)
	s.started = growF(s.started, ringLen)
	s.retire = growF(s.retire, ringLen)
	s.imask = ringLen - 1

	liveU := m.SchedSize
	if issueWidth > liveU {
		liveU = issueWidth
	}
	liveU += p.maxUopSlots + 2
	s.liveU = liveU
	uLen := nextPow2(liveU + (confirmPeriods+1)*maxPeriod*p.slotsPerIter + p.slotsPerIter + 4)
	s.uopDispatch = growF(s.uopDispatch, uLen)
	s.uopIssued = growF(s.uopIssued, uLen)
	s.umask = uLen - 1
	s.uopCount = 0

	s.producer = growI(s.producer, p.nRegs)
	fillNeg(s.producer)
	s.lastReader = growI(s.lastReader, p.nRegs)
	fillNeg(s.lastReader)
	s.lastStoreDyn = growI(s.lastStoreDyn, n)
	fillNeg(s.lastStoreDyn)
	s.prevStoreDyn = growI(s.prevStoreDyn, n)
	fillNeg(s.prevStoreDyn)

	s.ports.ResetTo(len(m.Ports))
	s.portBusy = growF(s.portBusy, len(m.Ports))
	for i := range s.portBusy {
		s.portBusy[i] = 0
	}

	s.slotsPerIter = p.slotsPerIter
	s.schedSize = m.SchedSize
	s.buildOccSeq(p, cfg)
	s.canDetect = !cfg.DisableSteadyState && cfg.Trace == nil &&
		p.slotsPerIter > 0 && occsDyadic(s.occSeq)
	if rn := maxPeriod * len(s.occSeq); cap(s.portRec) < rn {
		s.portRec = make([]uint8, rn)
	} else {
		s.portRec = s.portRec[:rn]
	}
	s.recBase = 0
}

// buildOccSeq precomputes the per-iteration sequence of port-busy charges
// in engine issue order (per instruction: load µ-ops first, then the
// rest; µ-ops without candidate ports are never scheduled or charged).
func (s *simState) buildOccSeq(p *Program, cfg *Config) {
	s.occSeq = s.occSeq[:0]
	scaleOn := cfg.DivEarlyExitFactor > 0 && cfg.DivEarlyExitFactor < 1
	for i := range p.instrs {
		pi := &p.instrs[i]
		scale := scaleOn && pi.divScaled
		for pass := 0; pass < 2; pass++ {
			for ui := pi.uopOff; ui < pi.uopEnd; ui++ {
				u := &p.uops[ui]
				if (u.kind == uarch.UopLoad) != (pass == 0) || len(u.cand) == 0 {
					continue
				}
				occ := u.cycles
				if scale {
					occ *= cfg.DivEarlyExitFactor
				}
				s.occSeq = append(s.occSeq, occ)
			}
		}
	}
}

// run is the engine hot loop. It mirrors the original O(iterations)
// implementation statement for statement — every arithmetic operation
// happens in the same order on the same values, so results are
// bit-identical — with ring indexing in place of flat arrays and dense
// interned-ID slices in place of maps.
func (s *simState) run(p *Program, cfg *Config, issueWidth int) (*Result, error) {
	m := p.model
	nStatic := p.nStatic
	iters := cfg.WarmupIters + cfg.MeasureIters
	nDyn := nStatic * iters
	imask, umask := s.imask, s.umask
	accPerIter := len(s.occSeq)

	divScale := 0.0
	if cfg.DivEarlyExitFactor > 0 && cfg.DivEarlyExitFactor < 1 {
		divScale = cfg.DivEarlyExitFactor
	}

	measureStart := 0.0
	measureStartSet := false
	detIter, detP := 0, 0
	var detD float64
	detected := false

	for dyn := 0; dyn < nDyn; dyn++ {
		si := dyn % nStatic
		iter := dyn / nStatic

		if si == 0 {
			// Iteration boundary: open the measurement window, then give
			// the steady-state detector a chance to finish the run early.
			if iter == cfg.WarmupIters && dyn > 0 {
				measureStart = s.retire[(dyn-1)&imask]
				measureStartSet = true
			}
			if s.canDetect && iter >= 1 {
				s.bRetire[iter%bRetireLen] = s.retire[(dyn-1)&imask]
				s.snapshotTails(iter, s.futureIssueFloor())
				if P, D, ok := s.tryDetect(p, iter, dyn); ok {
					detIter, detP, detD, detected = iter, P, D, true
					break
				}
				s.recBase = (iter % maxPeriod) * accPerIter
			}
		}

		st := &p.instrs[si]

		// --- fetch/decode: DecodeWidth instructions per cycle; a taken
		// branch terminates the fetch group, so the loop's first
		// instruction always starts a fresh fetch cycle.
		f := 0.0
		if dyn >= m.DecodeWidth {
			f = s.fetch[(dyn-m.DecodeWidth)&imask] + 1
		}
		if dyn > 0 && s.fetch[(dyn-1)&imask] > f {
			f = s.fetch[(dyn-1)&imask]
		}
		if dyn > 0 && p.instrs[(dyn-1)%nStatic].isBranch {
			if t := s.fetch[(dyn-1)&imask] + 1; t > f {
				f = t
			}
		}
		s.fetch[dyn&imask] = f

		// --- dispatch constraints: issue width, ROB, scheduler.
		disp := f + 1
		if dyn >= m.ROBSize {
			if t := s.retire[(dyn-m.ROBSize)&imask]; t > disp {
				disp = t
			}
		}
		// Issue width applies per µ-op slot: the group dispatches when the
		// slot of its *last* µ-op frees up.
		uopBase := s.uopCount
		if lastSlot := uopBase + int(st.nUopsWidth) - 1; lastSlot >= issueWidth {
			ref := lastSlot - issueWidth
			if ref < uopBase { // previous instructions' slots only
				if t := s.uopDispatch[ref&umask] + 1; t > disp {
					disp = t
				}
			}
		}
		if uopBase >= m.SchedSize {
			if t := s.uopIssued[(uopBase-m.SchedSize)&umask]; t > disp {
				disp = t
			}
		}

		// --- address-stage readiness.
		addrReady := disp
		for _, id := range st.addrIDs {
			if pd := s.producer[id]; pd >= 0 {
				if t := s.ready[pd&imask]; t > addrReady {
					addrReady = t
				}
			}
		}
		// Memory dependencies: loads wait for forwarded stores.
		loadDepReady := addrReady
		if st.isLoad {
			for _, md := range p.loadDeps[si] {
				var sd int
				var ok bool
				switch {
				case md.carried && md.store > md.load:
					// Store later in program order (e.g. Gauss-Seidel:
					// store phi[i], reload phi[i-1] next iteration): the
					// most recent completed store is last iteration's.
					sd = s.lastStoreDyn[md.store]
					ok = sd >= 0
				case md.carried:
					// Store earlier in program order: this iteration's
					// store already ran; the dependency is on the
					// previous iteration's.
					sd = s.prevStoreDyn[md.store]
					ok = sd >= 0
				default:
					sd = s.lastStoreDyn[md.store]
					ok = sd >= 0 && sd/nStatic == iter && md.store < si
				}
				if ok {
					if t := s.started[sd&imask] + fwdIssueDelay; t > loadDepReady {
						loadDepReady = t
					}
				}
			}
		}

		// --- data-stage readiness.
		dataReady := disp
		for _, id := range st.dataIDs {
			if pd := s.producer[id]; pd >= 0 {
				if t := s.readyFor(p, cfg, pd, st, id); t > dataReady {
					dataReady = t
				}
			}
		}
		if cfg.DisableRenaming {
			for _, w := range st.writeIDs {
				if pd := s.producer[w]; pd >= 0 && s.ready[pd&imask] > dataReady {
					dataReady = s.ready[pd&imask]
				}
				if pr := s.lastReader[w]; pr >= 0 && s.started[pr&imask] > dataReady {
					dataReady = s.started[pr&imask]
				}
			}
		}

		accounting := iter >= cfg.WarmupIters
		scale := 0.0
		if st.divScaled {
			scale = divScale
		}

		// --- issue µ-ops: earliest free gap on the best candidate port
		// (equivalent to an oldest-first picker; see portsched). Load
		// µ-ops first, then compute/store once the load stage is known.
		loadDone := 0.0
		haveLoads := false
		computeStart := dataReady
		for ui := st.uopOff; ui < st.uopEnd; ui++ {
			u := &p.uops[ui]
			if u.kind != uarch.UopLoad {
				continue
			}
			t := s.issueUop(u, loadDepReady, disp, scale, accounting)
			haveLoads = true
			var done float64
			if st.hasLoadStage {
				done = t + st.loadLat
			} else {
				// AArch64 loads: entry latency is inclusive.
				done = t
			}
			if done > loadDone {
				loadDone = done
			}
			if !st.hasLoadStage && t > computeStart {
				computeStart = t
			}
		}
		if haveLoads && st.hasLoadStage && loadDone > computeStart {
			computeStart = loadDone
		}
		lastComputeIssue := computeStart
		nCompute := 0
		for ui := st.uopOff; ui < st.uopEnd; ui++ {
			u := &p.uops[ui]
			if u.kind == uarch.UopLoad {
				continue
			}
			earliest := computeStart
			if u.kind == uarch.UopStoreAddr {
				earliest = addrReady
			}
			t := s.issueUop(u, earliest, disp, scale, accounting)
			if t > lastComputeIssue {
				lastComputeIssue = t
			}
			nCompute++
		}
		if st.uopOff == st.uopEnd {
			s.pushSlot(disp, disp)
		}

		// --- result timing.
		var res float64
		switch {
		case nCompute > 0 && haveLoads && st.hasLoadStage:
			res = lastComputeIssue + st.lat
			if st.latZero {
				res = lastComputeIssue + 1
			}
		case haveLoads && nCompute == 0:
			// Pure load.
			if st.hasLoadStage {
				res = loadDone
			} else {
				// AArch64 load: computeStart tracked the load issue time
				// and the entry latency is load-to-use inclusive.
				res = computeStart + st.totalLat
			}
		default:
			res = lastComputeIssue + st.totalLat
		}
		s.started[dyn&imask] = lastComputeIssue
		s.ready[dyn&imask] = res

		// --- retire in order.
		ret := res
		if st.isStore || st.isBranch {
			ret = lastComputeIssue + 1
		}
		if dyn > 0 && s.retire[(dyn-1)&imask] > ret {
			ret = s.retire[(dyn-1)&imask]
		}
		if dyn >= m.RetireWidth {
			if t := s.retire[(dyn-m.RetireWidth)&imask] + 1; t > ret {
				ret = t
			}
		}
		s.retire[dyn&imask] = ret

		// --- architectural state updates.
		for _, id := range st.readIDs {
			s.lastReader[id] = dyn
		}
		for _, id := range st.writeIDs {
			s.producer[id] = dyn
		}
		if st.isStore {
			if prev := s.lastStoreDyn[si]; prev >= 0 {
				s.prevStoreDyn[si] = prev
			}
			s.lastStoreDyn[si] = dyn
		}

		if cfg.Trace != nil {
			cfg.Trace(dyn, p.instrName(si), f, disp, lastComputeIssue, res, ret)
		}
	}

	var lastRetire float64
	ssIter := 0
	if detected {
		lastRetire = s.extrapolateBoundary(iters, detIter, detP, detD)
		if !measureStartSet {
			measureStart = s.extrapolateBoundary(cfg.WarmupIters, detIter, detP, detD)
			measureStartSet = true
		}
		s.replayPortBusy(cfg, detIter, detP, iters)
		ssIter = detIter
	} else {
		lastRetire = s.retire[(nDyn-1)&imask]
	}

	if !measureStartSet {
		return nil, errNoWindow(p.block)
	}
	total := lastRetire - measureStart
	if total <= 0 {
		total = 1
	}
	portCycles := make([]float64, len(s.portBusy))
	copy(portCycles, s.portBusy)
	return &Result{
		CyclesPerIter:   total / float64(cfg.MeasureIters),
		TotalCycles:     total,
		Iters:           cfg.MeasureIters,
		PortCycles:      portCycles,
		SteadyStateIter: ssIter,
	}, nil
}

// readyFor returns when producer pd's result is usable by consumer cur
// through register id, applying the forwarding-network model.
func (s *simState) readyFor(p *Program, cfg *Config, pd int, cur *pInstr, id int32) float64 {
	t := s.ready[pd&s.imask]
	ps := &p.instrs[pd%p.nStatic]
	if cfg.FMAAccForwardLat > 0 && cur.isFMA && id == cur.accID && ps.isFMA {
		if ft := s.started[pd&s.imask] + float64(cfg.FMAAccForwardLat); ft < t {
			t = ft
		}
	}
	if cfg.CrossOpForwardSave > 0 && ps.fpClass != FPNone && cur.fpClass != FPNone &&
		ps.fpClass != cur.fpClass {
		if ft := t - float64(cfg.CrossOpForwardSave); ft > s.started[pd&s.imask] {
			t = ft
		}
	}
	return t
}

// issueUop schedules one µ-op on the earliest-available candidate port,
// charges the measured-window port accounting, and appends its dispatch
// slot. µ-ops with no candidate ports take no slot and issue at their
// earliest time (mirroring the original engine).
func (s *simState) issueUop(u *pUop, earliest, disp, scale float64, accounting bool) float64 {
	occ := u.cycles
	if scale > 0 {
		occ *= scale
	}
	if len(u.cand) == 0 {
		return earliest
	}
	bestPort, bestTime := s.ports.ScheduleBest(u.cand, earliest, occ)
	if accounting {
		s.portBusy[bestPort] += occ
	}
	if s.canDetect {
		s.portRec[s.recBase] = uint8(bestPort)
		s.recBase++
	}
	s.pushSlot(disp, bestTime)
	return bestTime
}

func (s *simState) pushSlot(disp, issued float64) {
	i := s.uopCount & s.umask
	s.uopDispatch[i] = disp
	s.uopIssued[i] = issued
	s.uopCount++
}
