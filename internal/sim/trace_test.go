package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

func TestTraceRecorder(t *testing.T) {
	m := uarch.MustGet("zen4")
	src := "\tvaddpd %ymm1, %ymm2, %ymm3\n\tdecq %rcx\n\tjne .L0\n"
	b, err := isa.ParseBlock("t", "zen4", m.Dialect, src)
	if err != nil {
		t.Fatal(err)
	}
	var rec TraceRecorder
	cfg := DefaultConfig(m)
	cfg.WarmupIters = 2
	cfg.MeasureIters = 4
	cfg.Trace = rec.Hook(b.Len())
	if _, err := Run(b, m, cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != b.Len()*(2+4) {
		t.Errorf("events = %d, want %d", rec.Len(), b.Len()*6)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != rec.Len() {
		t.Error("JSON event count mismatch")
	}
	if !strings.Contains(buf.String(), "vaddpd") {
		t.Error("trace missing instruction names")
	}
}

func TestTraceRecorderCap(t *testing.T) {
	m := uarch.MustGet("zen4")
	b, err := isa.ParseBlock("t", "zen4", m.Dialect, "\tvaddpd %ymm1, %ymm2, %ymm3\n\tjne .L0\n")
	if err != nil {
		t.Fatal(err)
	}
	rec := TraceRecorder{MaxEvents: 10}
	cfg := DefaultConfig(m)
	cfg.Trace = rec.Hook(b.Len())
	if _, err := Run(b, m, cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 10 || !rec.Truncated() {
		t.Errorf("cap not enforced: len=%d truncated=%v", rec.Len(), rec.Truncated())
	}
}
