package sim

import (
	"math"
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

func runSrc(t *testing.T, arch, src string, cfg Config) *Result {
	t.Helper()
	m := uarch.MustGet(arch)
	b, err := isa.ParseBlock("t", arch, m.Dialect, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Run(b, m, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r
}

func defaultRun(t *testing.T, arch, src string) *Result {
	m := uarch.MustGet(arch)
	return runSrc(t, arch, src, DefaultConfig(m))
}

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}

func TestThroughputBoundRespected(t *testing.T) {
	// Two independent 512-bit adds: port bound 1 cy/iter on GLC; the
	// simulator cannot beat that bound.
	r := defaultRun(t, "goldencove", `
	vaddpd %zmm1, %zmm2, %zmm16
	vaddpd %zmm4, %zmm5, %zmm17
	decq %rcx
	jne .L0
`)
	if r.CyclesPerIter < 1.0-1e-9 {
		t.Errorf("simulator beats the port bound: %f", r.CyclesPerIter)
	}
	if r.CyclesPerIter > 1.3 {
		t.Errorf("simple add loop too slow: %f", r.CyclesPerIter)
	}
}

func TestLatencyChain(t *testing.T) {
	// Serial vector adds on V2: 2 cycles per link.
	r := defaultRun(t, "neoversev2", `
	fadd v0.2d, v0.2d, v8.2d
	fadd v0.2d, v0.2d, v8.2d
	fadd v0.2d, v0.2d, v8.2d
	fadd v0.2d, v0.2d, v8.2d
	subs x4, x4, #1
	b.ne .L0
`)
	if !approx(r.CyclesPerIter, 8, 0.5) {
		t.Errorf("4-link fadd chain = %f cy/iter, want ~8", r.CyclesPerIter)
	}
}

func TestDivEarlyExitQuirk(t *testing.T) {
	src := `
	vdivsd %xmm1, %xmm2, %xmm16
	vdivsd %xmm1, %xmm2, %xmm17
	decq %rcx
	jne .L0
`
	m := uarch.MustGet("zen4")
	withQuirk := runSrc(t, "zen4", src, DefaultConfig(m))
	noQuirk := runSrc(t, "zen4", src, Config{DivEarlyExitFactor: 1})
	if !(withQuirk.CyclesPerIter < noQuirk.CyclesPerIter) {
		t.Errorf("early exit must speed up scalar divides: %f vs %f",
			withQuirk.CyclesPerIter, noQuirk.CyclesPerIter)
	}
	// Vector divides are unaffected.
	vsrc := `
	vdivpd %ymm1, %ymm2, %ymm16
	decq %rcx
	jne .L0
`
	v1 := runSrc(t, "zen4", vsrc, DefaultConfig(m))
	v2 := runSrc(t, "zen4", vsrc, Config{DivEarlyExitFactor: 1})
	if !approx(v1.CyclesPerIter, v2.CyclesPerIter, 1e-9) {
		t.Errorf("vector divides must not take the early exit: %f vs %f",
			v1.CyclesPerIter, v2.CyclesPerIter)
	}
}

func TestCrossOpForwardingQuirk(t *testing.T) {
	// The GS-style carried chain fadd -> fmul on V2: with the late
	// forwarding network the chain runs faster than table latencies.
	src := `
	fadd d1, d0, d8
	fmul d0, d1, d9
	subs x4, x4, #1
	b.ne .L0
`
	m := uarch.MustGet("neoversev2")
	with := runSrc(t, "neoversev2", src, DefaultConfig(m))
	without := runSrc(t, "neoversev2", src, Config{DivEarlyExitFactor: 1})
	if !(with.CyclesPerIter < without.CyclesPerIter) {
		t.Errorf("cross-op forwarding must shorten mixed chains: %f vs %f",
			with.CyclesPerIter, without.CyclesPerIter)
	}
	if !approx(with.CyclesPerIter, 3, 0.3) {
		t.Errorf("forwarded GS chain = %f, want ~3", with.CyclesPerIter)
	}
	if !approx(without.CyclesPerIter, 5, 0.3) {
		t.Errorf("unforwarded GS chain = %f, want ~5", without.CyclesPerIter)
	}
}

func TestSameOpChainNotForwarded(t *testing.T) {
	// fadd -> fadd chains (sum reduction) see full latency on V2.
	src := `
	fadd d0, d0, d8
	subs x4, x4, #1
	b.ne .L0
`
	m := uarch.MustGet("neoversev2")
	r := runSrc(t, "neoversev2", src, DefaultConfig(m))
	if !approx(r.CyclesPerIter, 2, 0.2) {
		t.Errorf("same-op chain = %f, want 2 (no forwarding)", r.CyclesPerIter)
	}
}

func TestFMAAccumulatorForwarding(t *testing.T) {
	// fmla self-accumulation: forwarded latency 2 on V2.
	src := `
	fmla v0.2d, v8.2d, v9.2d
	subs x4, x4, #1
	b.ne .L0
`
	m := uarch.MustGet("neoversev2")
	with := runSrc(t, "neoversev2", src, DefaultConfig(m))
	if !approx(with.CyclesPerIter, 2, 0.2) {
		t.Errorf("fmla accumulator chain = %f, want 2 (forwarded)", with.CyclesPerIter)
	}
	without := runSrc(t, "neoversev2", src, Config{DivEarlyExitFactor: 1})
	if !approx(without.CyclesPerIter, 4, 0.2) {
		t.Errorf("fmla chain without forwarding = %f, want 4", without.CyclesPerIter)
	}
}

func TestRenamingBreaksFalseDeps(t *testing.T) {
	// Register reuse creates WAW/WAR on a latency-heavy producer;
	// renaming must hide it.
	src := `
	vmulpd %ymm1, %ymm2, %ymm0
	vmovupd %ymm0, (%rdi)
	vmulpd %ymm3, %ymm4, %ymm0
	vmovupd %ymm0, 32(%rdi)
	decq %rcx
	jne .L0
`
	m := uarch.MustGet("goldencove")
	renamed := runSrc(t, "goldencove", src, DefaultConfig(m))
	cfg := DefaultConfig(m)
	cfg.DisableRenaming = true
	stalled := runSrc(t, "goldencove", src, cfg)
	if !(renamed.CyclesPerIter < stalled.CyclesPerIter) {
		t.Errorf("renaming must help: %f vs %f", renamed.CyclesPerIter, stalled.CyclesPerIter)
	}
}

func TestFoldedLoadDoesNotSerializeChain(t *testing.T) {
	// s += a[i] with a folded load: the carried chain is only the add
	// latency (2 on GLC), not load+add.
	r := defaultRun(t, "goldencove", `
	vaddsd (%rsi,%rax,8), %xmm0, %xmm0
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`)
	if !approx(r.CyclesPerIter, 2, 0.3) {
		t.Errorf("folded-load sum = %f cy/iter, want ~2", r.CyclesPerIter)
	}
}

func TestStoreForwardingChain(t *testing.T) {
	// GS memory round trip: store (%rsi+idx), reload -8: forwarding
	// gates the chain at fwd + compute latencies.
	r := defaultRun(t, "goldencove", `
	vmovsd -8(%rsi,%rax,8), %xmm1
	vmulsd %xmm15, %xmm1, %xmm1
	vmovsd %xmm1, (%rsi,%rax,8)
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`)
	// fwdIssueDelay(2) + LoadLat(7) + mul(4) = 13.
	if !approx(r.CyclesPerIter, 13, 1.0) {
		t.Errorf("store-forward chain = %f cy/iter, want ~13", r.CyclesPerIter)
	}
}

func TestIssueWidthLimits(t *testing.T) {
	// 12 independent single-µ-op int ops on GLC (width 6): >= 2 cy/iter.
	src := `
	movq %rax, %r8
	movq %rax, %r9
	movq %rax, %r10
	movq %rax, %r11
	movq %rax, %r12
	movq %rax, %r13
	movq %rax, %r14
	movq %rax, %r15
	movq %rax, %rbx
	movq %rax, %rcx
	movq %rax, %rdx
	movq %rax, %rsi
`
	m := uarch.MustGet("goldencove")
	r := runSrc(t, "goldencove", src, DefaultConfig(m))
	if r.CyclesPerIter < 2.0-1e-6 {
		t.Errorf("issue width violated: %f cy/iter for 12 µ-ops at width 6", r.CyclesPerIter)
	}
	// Ablation (DESIGN.md #5): a narrower issue width must slow things
	// down (the wide case is port-bound at 12/5 ALU ports = 2.4 cy).
	cfg := DefaultConfig(m)
	cfg.IssueWidthOverride = 3
	narrow := runSrc(t, "goldencove", src, cfg)
	if !(narrow.CyclesPerIter > r.CyclesPerIter+0.5) {
		t.Errorf("issue-width 3 must slow down: %f vs %f", narrow.CyclesPerIter, r.CyclesPerIter)
	}
}

func TestTakenBranchFetchBreak(t *testing.T) {
	// A tiny loop cannot run faster than 1 cycle/iteration because the
	// taken branch ends the fetch group.
	r := defaultRun(t, "zen4", `
	vaddpd %ymm1, %ymm2, %ymm16
	jne .L0
`)
	if r.CyclesPerIter < 1.0-1e-9 {
		t.Errorf("loop faster than 1 cy/iter: %f", r.CyclesPerIter)
	}
}

func TestPortUtilization(t *testing.T) {
	r := defaultRun(t, "goldencove", `
	vaddpd %zmm1, %zmm2, %zmm16
	decq %rcx
	jne .L0
`)
	util := r.PortUtilization()
	if len(util) != 12 {
		t.Fatalf("want 12 port slots, got %d", len(util))
	}
	var any bool
	for _, u := range util {
		if u < 0 || u > 1.01 {
			t.Errorf("utilization out of range: %f", u)
		}
		if u > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no port utilization recorded")
	}
}

func TestTraceCallback(t *testing.T) {
	m := uarch.MustGet("zen4")
	cfg := DefaultConfig(m)
	var calls int
	cfg.Trace = func(dyn int, instr string, f, d, s, r, ret float64) {
		calls++
		if ret < s-1e-9 {
			t.Errorf("retire %f before start %f", ret, s)
		}
	}
	runSrc(t, "zen4", "\tvaddpd %ymm1, %ymm2, %ymm3\n\tjne .L0\n", cfg)
	if calls == 0 {
		t.Error("trace callback never invoked")
	}
}

func TestClassifyFP(t *testing.T) {
	cases := map[string]FPClass{
		"vaddpd": FPAdd, "fadd": FPAdd, "vaddsd": FPAdd,
		"vmulpd": FPMul, "fmul": FPMul,
		"vfmadd231pd": FPFMA, "fmla": FPFMA, "fmadd": FPFMA,
		"vdivsd": FPDiv, "fdiv": FPDiv, "vsqrtpd": FPDiv,
		"movq": FPNone, "cmp": FPNone, "ldr": FPNone,
	}
	for mn, want := range cases {
		if got := ClassifyFP(mn); got != want {
			t.Errorf("ClassifyFP(%q) = %v, want %v", mn, got, want)
		}
	}
}

func TestInvalidBlocks(t *testing.T) {
	m := uarch.MustGet("zen4")
	if _, err := Run(&isa.Block{Name: "empty"}, m, DefaultConfig(m)); err == nil {
		t.Error("empty block must fail")
	}
	bad := &isa.Block{Name: "bad", Arch: "zen4", Dialect: m.Dialect,
		Instrs: []isa.Instruction{{Mnemonic: "bogus"}}}
	if _, err := Run(bad, m, DefaultConfig(m)); err == nil {
		t.Error("unknown mnemonic must fail")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`
	a := defaultRun(t, "goldencove", src)
	b := defaultRun(t, "goldencove", src)
	if a.CyclesPerIter != b.CyclesPerIter {
		t.Errorf("simulation not deterministic: %f vs %f", a.CyclesPerIter, b.CyclesPerIter)
	}
}
