package sim_test

import (
	"sync"
	"testing"

	"incore/internal/isa"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// Two concurrent traced runs over one compiled Program: the lazy trace
// name cache must be race-free (Program documents concurrent-Run safety).
func TestConcurrentTracedRuns(t *testing.T) {
	m := uarch.MustGet("zen4")
	b, err := isa.ParseBlock("t", "zen4", m.Dialect, "\tvaddpd %ymm1, %ymm2, %ymm3\n\tjne .L0\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := sim.Compile(b, m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := sim.DefaultConfig(m)
			cfg.Trace = func(dyn int, instr string, f, d, s, r, ret float64) {
				if instr == "" {
					t.Error("empty trace name")
				}
			}
			if _, err := p.Run(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
