package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceRecorder collects per-dynamic-instruction timestamps from a
// simulation run and exports them in the Chrome trace-event format
// (chrome://tracing, Perfetto). Each instruction appears as a complete
// event on a "row" (thread) equal to its static index, spanning issue to
// retirement, with fetch/dispatch timestamps as arguments.
type TraceRecorder struct {
	// MaxEvents bounds memory use; 0 means DefaultMaxTraceEvents.
	MaxEvents int
	events    []traceEvent
	truncated bool
}

// DefaultMaxTraceEvents bounds recorded events.
const DefaultMaxTraceEvents = 100000

type traceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Hook returns a Config.Trace callback feeding this recorder. nStatic is
// the block length (for row assignment).
func (tr *TraceRecorder) Hook(nStatic int) func(dyn int, instr string, fetch, dispatch, start, ready, retire float64) {
	if tr.MaxEvents <= 0 {
		tr.MaxEvents = DefaultMaxTraceEvents
	}
	return func(dyn int, instr string, fetch, dispatch, start, ready, retire float64) {
		if len(tr.events) >= tr.MaxEvents {
			tr.truncated = true
			return
		}
		dur := retire - start
		if dur <= 0 {
			dur = 0.5
		}
		tr.events = append(tr.events, traceEvent{
			Name: instr,
			Ph:   "X",
			Ts:   start,
			Dur:  dur,
			PID:  0,
			TID:  dyn % nStatic,
			Args: map[string]interface{}{
				"dyn":      dyn,
				"fetch":    fetch,
				"dispatch": dispatch,
				"ready":    ready,
				"retire":   retire,
			},
		})
	}
}

// Len returns the number of recorded events.
func (tr *TraceRecorder) Len() int { return len(tr.events) }

// Truncated reports whether the event cap was hit.
func (tr *TraceRecorder) Truncated() bool { return tr.truncated }

// WriteJSON emits the Chrome trace-event array.
func (tr *TraceRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		Unit        string       `json:"displayTimeUnit"`
	}{TraceEvents: tr.events, Unit: "ns"}); err != nil {
		return fmt.Errorf("sim: trace export: %w", err)
	}
	return nil
}
