// Package sim provides the "measurement" substrate of the reproduction: a
// cycle-level out-of-order core simulator parameterised by the same machine
// models (package uarch) the analytic predictors use.
//
// The paper validates its in-core model against hardware measurements of
// steady-state loop kernels. We have no Grace/SPR/Genoa silicon, so this
// simulator stands in for the machines. It models the mechanisms that make
// real measurements deviate from the analytic lower bound:
//
//   - oldest-first (greedy) port selection instead of optimal balancing,
//   - finite decode/issue/retire widths, ROB and scheduler capacity,
//   - register renaming (false dependencies are harmless, matching real
//     OoO hardware),
//   - pipelined address generation: a folded-load instruction's memory
//     access depends only on its address registers, so load latency does
//     not serialize accumulation chains,
//   - store-to-load forwarding with a real forwarding latency,
//   - the Neoverse V2 late-forwarding network: chained FP operations of
//     different kinds (e.g. FADD feeding FMUL) save a forwarding cycle —
//     the mechanism behind the paper's Gauss-Seidel outliers where OSACA
//     over-predicts on Grace,
//   - FMA accumulator forwarding (dependent FMLA chains see a reduced
//     accumulator latency),
//   - the Zen 4 divider early exit (scalar divides retire faster than the
//     documented worst case) — the mechanism behind the paper's π-kernel
//     outlier on Genoa.
//
// The simulator is an event-driven timing model: each dynamic instruction
// receives fetch, dispatch, issue, and retire timestamps subject to
// resource and dataflow constraints. Within the scheduler window work is
// scheduled greedily in program order, which is equivalent to an
// oldest-first picker.
//
// # Execution strategy
//
// Run executes in two phases. Compile lowers the block into a Program:
// interned dense register IDs, resolved port-candidate slices, cached
// mnemonic classifications, per-load memory-dependency lists. The engine
// then advances dynamic instructions over ring buffers sized to the live
// microarchitectural window — max(ROB, scheduler, decode group, two block
// iterations) — instead of O(iterations) arrays, with all scratch state
// pooled across runs, so the per-run footprint is O(window) and the
// steady-state hot path allocates nothing. Once the timing deltas of
// consecutive iterations become exactly periodic (checked over the whole
// live window, µ-op slots and port schedules included), the engine stops
// simulating and extrapolates the remaining iterations — bit-exactly; see
// steady.go for why the extrapolation is exact, not approximate.
package sim

import (
	"fmt"

	"incore/internal/isa"
	"incore/internal/uarch"
)

// Config controls one simulation run.
type Config struct {
	// WarmupIters are executed before measurement starts (pipeline fill,
	// steady-state convergence).
	WarmupIters int
	// MeasureIters is the number of measured block iterations.
	MeasureIters int

	// FMAAccForwardLat, when positive, is the effective latency of an
	// FMA-to-FMA dependency through the accumulator operand.
	FMAAccForwardLat int
	// CrossOpForwardSave is the number of cycles saved when an FP value
	// forwards between operations of *different* classes (late
	// forwarding network); 0 disables.
	CrossOpForwardSave int
	// DivEarlyExitFactor scales the port occupancy of scalar divide
	// µ-ops (<1 models an early-exit divider); 0 or 1 disables it.
	DivEarlyExitFactor float64

	// DisableRenaming re-introduces WAW/WAR stalls (ablation; DESIGN.md
	// #2). Real Grace/SPR/Genoa cores all rename.
	DisableRenaming bool
	// Trace, when non-nil, receives per-dynamic-instruction timestamps
	// (debugging aid). Traced runs always simulate full length.
	Trace func(dyn int, instr string, fetch, dispatch, start, ready, retire float64)
	// IssueWidthOverride, when positive, replaces the model's issue
	// width (ablation; DESIGN.md #5).
	IssueWidthOverride int

	// DisableSteadyState forces a full-length simulation even when the
	// run reaches an exactly periodic steady state. Results are
	// bit-identical either way — extrapolation only engages when it is
	// provably exact — so this field, like Trace, is outcome-neutral
	// and excluded from pipeline memo keys; it exists for tests and
	// debugging.
	DisableSteadyState bool
}

// DefaultConfig returns the per-microarchitecture hardware quirks used for
// "measurements" in the reproduction.
func DefaultConfig(m *uarch.Model) Config {
	cfg := Config{WarmupIters: 64, MeasureIters: 256, DivEarlyExitFactor: 1}
	switch m.Key {
	case "neoversev2":
		// Late forwarding between heterogeneous FP ops plus accumulator
		// forwarding on FMLA chains.
		cfg.FMAAccForwardLat = 2
		cfg.CrossOpForwardSave = 1
	case "zen4":
		// The Zen 4 divider exits early for typical operands; measured
		// scalar divide throughput beats the documented reciprocal
		// throughput (paper: π kernel over-prediction on Genoa).
		cfg.DivEarlyExitFactor = 0.7
	}
	return cfg
}

// Result reports a simulation outcome.
type Result struct {
	// CyclesPerIter is the steady-state cycle count per block iteration.
	CyclesPerIter float64
	// TotalCycles spans the measured iterations only.
	TotalCycles float64
	// Iters is the number of measured iterations.
	Iters int
	// PortCycles is the per-port busy time accumulated over the measured
	// window (aligned with Model.Ports).
	PortCycles []float64

	// SteadyStateIter is the iteration at which the engine proved the
	// run periodic and stopped simulating (0: ran full length). Pure
	// telemetry — the timing fields are bit-identical either way — and
	// deliberately excluded from the persisted wire form.
	SteadyStateIter int `json:"-"`
}

// PortUtilization returns per-port busy fractions over the measured window.
func (r *Result) PortUtilization() []float64 {
	out := make([]float64, len(r.PortCycles))
	if r.TotalCycles <= 0 {
		return out
	}
	for i, c := range r.PortCycles {
		out[i] = c / r.TotalCycles
	}
	return out
}

// Run simulates cfg.WarmupIters+cfg.MeasureIters iterations of block b on
// model m and returns steady-state timing. It is Compile followed by
// Program.Run; callers simulating one block under several configurations
// can compile once and reuse the program.
func Run(b *isa.Block, m *uarch.Model, cfg Config) (*Result, error) {
	p, err := Compile(b, m)
	if err != nil {
		return nil, err
	}
	return p.Run(cfg)
}

// Store→load forwarding: the forwarded load may *issue* fwdIssueDelay
// cycles after the store's data µ-op issues; its result arrives a
// load latency later, so the total store-to-result delay is
// fwdIssueDelay + LoadLat. The analyzer charges the same total on
// its memory-carried edges.
const fwdIssueDelay = 2.0

// Run executes the compiled program under cfg.
func (p *Program) Run(cfg Config) (*Result, error) {
	if cfg.WarmupIters <= 0 {
		cfg.WarmupIters = 64
	}
	if cfg.MeasureIters <= 0 {
		cfg.MeasureIters = 256
	}
	issueWidth := p.model.IssueWidth
	if cfg.IssueWidthOverride > 0 {
		issueWidth = cfg.IssueWidthOverride
	}

	st := statePool.Get().(*simState)
	defer statePool.Put(st)
	st.reset(p, &cfg, issueWidth)

	r, err := st.run(p, &cfg, issueWidth)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// errNoWindow mirrors the historical failure mode when no measurement
// window opened (unreachable with the coerced iteration counts, kept for
// API stability).
func errNoWindow(b *isa.Block) error {
	return fmt.Errorf("sim: block %s: no measurement window", b.Name)
}
