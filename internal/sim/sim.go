// Package sim provides the "measurement" substrate of the reproduction: a
// cycle-level out-of-order core simulator parameterised by the same machine
// models (package uarch) the analytic predictors use.
//
// The paper validates its in-core model against hardware measurements of
// steady-state loop kernels. We have no Grace/SPR/Genoa silicon, so this
// simulator stands in for the machines. It models the mechanisms that make
// real measurements deviate from the analytic lower bound:
//
//   - oldest-first (greedy) port selection instead of optimal balancing,
//   - finite decode/issue/retire widths, ROB and scheduler capacity,
//   - register renaming (false dependencies are harmless, matching real
//     OoO hardware),
//   - pipelined address generation: a folded-load instruction's memory
//     access depends only on its address registers, so load latency does
//     not serialize accumulation chains,
//   - store-to-load forwarding with a real forwarding latency,
//   - the Neoverse V2 late-forwarding network: chained FP operations of
//     different kinds (e.g. FADD feeding FMUL) save a forwarding cycle —
//     the mechanism behind the paper's Gauss-Seidel outliers where OSACA
//     over-predicts on Grace,
//   - FMA accumulator forwarding (dependent FMLA chains see a reduced
//     accumulator latency),
//   - the Zen 4 divider early exit (scalar divides retire faster than the
//     documented worst case) — the mechanism behind the paper's π-kernel
//     outlier on Genoa.
//
// The simulator is an event-driven timing model: each dynamic instruction
// receives fetch, dispatch, issue, and retire timestamps subject to
// resource and dataflow constraints. Within the scheduler window work is
// scheduled greedily in program order, which is equivalent to an
// oldest-first picker.
package sim

import (
	"fmt"
	"strings"

	"incore/internal/isa"
	"incore/internal/portsched"
	"incore/internal/uarch"
)

// FPClass is a coarse classification of FP operations for the forwarding
// network model.
type FPClass int

// FP operation classes.
const (
	FPNone FPClass = iota
	FPAdd
	FPMul
	FPFMA
	FPDiv
	FPOther
)

// ClassifyFP returns the FP class of a mnemonic.
func ClassifyFP(mn string) FPClass {
	switch {
	case strings.HasPrefix(mn, "vfma") || strings.HasPrefix(mn, "vfnma") ||
		strings.HasPrefix(mn, "vfms") || mn == "fmla" || mn == "fmls" ||
		mn == "fmadd" || mn == "fmsub" || mn == "fnmadd" || mn == "fnmsub" ||
		mn == "fadda":
		return FPFMA
	case strings.Contains(mn, "div"):
		return FPDiv
	case strings.HasPrefix(mn, "vadd") || strings.HasPrefix(mn, "vsub") ||
		strings.HasPrefix(mn, "add") && strings.HasSuffix(mn, "d") && (strings.Contains(mn, "pd") || strings.Contains(mn, "sd")) ||
		mn == "fadd" || mn == "fsub" || mn == "faddp":
		return FPAdd
	case strings.HasPrefix(mn, "vmul") || mn == "fmul" ||
		(strings.HasPrefix(mn, "mul") && (strings.Contains(mn, "pd") || strings.Contains(mn, "sd"))):
		return FPMul
	case strings.Contains(mn, "sqrt"):
		return FPDiv
	}
	return FPNone
}

// Config controls one simulation run.
type Config struct {
	// WarmupIters are executed before measurement starts (pipeline fill,
	// steady-state convergence).
	WarmupIters int
	// MeasureIters is the number of measured block iterations.
	MeasureIters int

	// FMAAccForwardLat, when positive, is the effective latency of an
	// FMA-to-FMA dependency through the accumulator operand.
	FMAAccForwardLat int
	// CrossOpForwardSave is the number of cycles saved when an FP value
	// forwards between operations of *different* classes (late
	// forwarding network); 0 disables.
	CrossOpForwardSave int
	// DivEarlyExitFactor scales the port occupancy of scalar divide
	// µ-ops (<1 models an early-exit divider); 0 or 1 disables it.
	DivEarlyExitFactor float64

	// DisableRenaming re-introduces WAW/WAR stalls (ablation; DESIGN.md
	// #2). Real Grace/SPR/Genoa cores all rename.
	DisableRenaming bool
	// Trace, when non-nil, receives per-dynamic-instruction timestamps
	// (debugging aid).
	Trace func(dyn int, instr string, fetch, dispatch, start, ready, retire float64)
	// IssueWidthOverride, when positive, replaces the model's issue
	// width (ablation; DESIGN.md #5).
	IssueWidthOverride int
}

// DefaultConfig returns the per-microarchitecture hardware quirks used for
// "measurements" in the reproduction.
func DefaultConfig(m *uarch.Model) Config {
	cfg := Config{WarmupIters: 64, MeasureIters: 256, DivEarlyExitFactor: 1}
	switch m.Key {
	case "neoversev2":
		// Late forwarding between heterogeneous FP ops plus accumulator
		// forwarding on FMLA chains.
		cfg.FMAAccForwardLat = 2
		cfg.CrossOpForwardSave = 1
	case "zen4":
		// The Zen 4 divider exits early for typical operands; measured
		// scalar divide throughput beats the documented reciprocal
		// throughput (paper: π kernel over-prediction on Genoa).
		cfg.DivEarlyExitFactor = 0.7
	}
	return cfg
}

// Result reports a simulation outcome.
type Result struct {
	// CyclesPerIter is the steady-state cycle count per block iteration.
	CyclesPerIter float64
	// TotalCycles spans the measured iterations only.
	TotalCycles float64
	// Iters is the number of measured iterations.
	Iters int
	// PortCycles is the per-port busy time accumulated over the measured
	// window (aligned with Model.Ports).
	PortCycles []float64
}

// PortUtilization returns per-port busy fractions over the measured window.
func (r *Result) PortUtilization() []float64 {
	out := make([]float64, len(r.PortCycles))
	if r.TotalCycles <= 0 {
		return out
	}
	for i, c := range r.PortCycles {
		out[i] = c / r.TotalCycles
	}
	return out
}

// staticInstr caches per-block-instruction scheduling info.
type staticInstr struct {
	desc  uarch.Desc
	eff   isa.Effects
	isFMA bool
	// accKey is the FMA accumulator register.
	accKey isa.RegKey
	// fpClass drives the forwarding-network model.
	fpClass FPClass
	isDiv   bool
	isVecOp bool
	// addrKeys are registers used only for address generation.
	addrKeys map[isa.RegKey]bool
	// dataReads are register reads excluding pure address registers.
	dataReads []isa.RegKey
	// hasLoadStage marks x86 folded loads (separate load timing stage).
	hasLoadStage bool
}

// memDep is a static store→load dependency within/across iterations.
type memDep struct {
	store, load int
	carried     bool
}

// Run simulates cfg.WarmupIters+cfg.MeasureIters iterations of block b on
// model m and returns steady-state timing.
func Run(b *isa.Block, m *uarch.Model, cfg Config) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if cfg.WarmupIters <= 0 {
		cfg.WarmupIters = 64
	}
	if cfg.MeasureIters <= 0 {
		cfg.MeasureIters = 256
	}
	static, err := prepare(b, m)
	if err != nil {
		return nil, err
	}
	memDeps := FindMemDeps(blockEffects(static))

	issueWidth := m.IssueWidth
	if cfg.IssueWidthOverride > 0 {
		issueWidth = cfg.IssueWidthOverride
	}

	nStatic := len(static)
	iters := cfg.WarmupIters + cfg.MeasureIters
	nDyn := nStatic * iters

	fetch := make([]float64, nDyn)
	ready := make([]float64, nDyn)   // result available to consumers
	started := make([]float64, nDyn) // compute-stage issue time
	retire := make([]float64, nDyn)

	producer := map[isa.RegKey]int{}
	lastReader := map[isa.RegKey]int{}
	lastStoreDyn := make(map[int]int, nStatic)
	prevStoreDyn := make(map[int]int, nStatic)

	ports := portsched.NewGroup(len(m.Ports))
	portBusy := make([]float64, len(m.Ports))
	var measureStartCycle float64
	measureStartSet := false

	uopDispatch := make([]float64, 0, nDyn*2)
	uopIssued := make([]float64, 0, nDyn*2)

	// Store→load forwarding: the forwarded load may *issue* fwdIssueDelay
	// cycles after the store's data µ-op issues; its result arrives a
	// load latency later, so the total store-to-result delay is
	// fwdIssueDelay + LoadLat. The analyzer charges the same total on
	// its memory-carried edges.
	const fwdIssueDelay = 2.0

	// readyFor returns when producer p's result is usable by consumer st
	// through register r, applying the forwarding-network model.
	readyFor := func(p int, st *staticInstr, r isa.RegKey) float64 {
		t := ready[p]
		ps := &static[p%nStatic]
		if cfg.FMAAccForwardLat > 0 && st.isFMA && r == st.accKey && ps.isFMA {
			if ft := started[p] + float64(cfg.FMAAccForwardLat); ft < t {
				t = ft
			}
		}
		if cfg.CrossOpForwardSave > 0 && ps.fpClass != FPNone && st.fpClass != FPNone &&
			ps.fpClass != st.fpClass {
			if ft := t - float64(cfg.CrossOpForwardSave); ft > started[p] {
				t = ft
			}
		}
		return t
	}

	for dyn := 0; dyn < nDyn; dyn++ {
		si := dyn % nStatic
		iter := dyn / nStatic
		st := &static[si]

		// --- fetch/decode: DecodeWidth instructions per cycle; a taken
		// branch terminates the fetch group, so the loop's first
		// instruction always starts a fresh fetch cycle.
		f := 0.0
		if dyn >= m.DecodeWidth {
			f = fetch[dyn-m.DecodeWidth] + 1
		}
		if dyn > 0 && fetch[dyn-1] > f {
			f = fetch[dyn-1]
		}
		if dyn > 0 && static[(dyn-1)%nStatic].desc.IsBranch {
			if t := fetch[dyn-1] + 1; t > f {
				f = t
			}
		}
		fetch[dyn] = f

		// --- dispatch constraints: issue width, ROB, scheduler.
		disp := f + 1
		if dyn >= m.ROBSize {
			if t := retire[dyn-m.ROBSize]; t > disp {
				disp = t
			}
		}
		// Issue width applies per µ-op slot: the group dispatches when the
		// slot of its *last* µ-op frees up.
		uopBase := len(uopDispatch)
		nUops := len(st.desc.Uops)
		if nUops == 0 {
			nUops = 1
		}
		if lastSlot := uopBase + nUops - 1; lastSlot >= issueWidth {
			ref := lastSlot - issueWidth
			if ref < uopBase { // previous instructions' slots only
				if t := uopDispatch[ref] + 1; t > disp {
					disp = t
				}
			}
		}
		if uopBase >= m.SchedSize {
			if t := uopIssued[uopBase-m.SchedSize]; t > disp {
				disp = t
			}
		}

		// --- address-stage readiness.
		addrReady := disp
		for k := range st.addrKeys {
			if p, ok := producer[k]; ok {
				if t := ready[p]; t > addrReady {
					addrReady = t
				}
			}
		}
		// Memory dependencies: loads wait for forwarded stores.
		loadDepReady := addrReady
		if st.desc.IsLoad {
			for _, md := range memDeps {
				if md.load != si {
					continue
				}
				var sd int
				var ok bool
				switch {
				case md.carried && md.store > md.load:
					// Store later in program order (e.g. Gauss-Seidel:
					// store phi[i], reload phi[i-1] next iteration): the
					// most recent completed store is last iteration's.
					sd, ok = lastStoreDyn[md.store]
				case md.carried:
					// Store earlier in program order: this iteration's
					// store already ran; the dependency is on the
					// previous iteration's.
					sd, ok = prevStoreDyn[md.store]
				default:
					sd, ok = lastStoreDyn[md.store]
					ok = ok && sd/nStatic == iter && md.store < si
				}
				if ok {
					if t := started[sd] + fwdIssueDelay; t > loadDepReady {
						loadDepReady = t
					}
				}
			}
		}

		// --- data-stage readiness.
		dataReady := disp
		for _, r := range st.dataReads {
			if p, ok := producer[r]; ok {
				if t := readyFor(p, st, r); t > dataReady {
					dataReady = t
				}
			}
		}
		if cfg.DisableRenaming {
			for _, w := range st.eff.Writes {
				if p, ok := producer[w]; ok && ready[p] > dataReady {
					dataReady = ready[p]
				}
				if p, ok := lastReader[w]; ok && started[p] > dataReady {
					dataReady = started[p]
				}
			}
		}

		// --- issue µ-ops: earliest free gap on the best candidate port
		// (equivalent to an oldest-first picker; see portsched).
		issueUop := func(u uarch.Uop, earliest float64) float64 {
			occ := u.Cycles
			if st.isDiv && !st.isVecOp && cfg.DivEarlyExitFactor > 0 && cfg.DivEarlyExitFactor < 1 {
				occ *= cfg.DivEarlyExitFactor
			}
			cand := u.Ports.Indices()
			if len(cand) == 0 {
				return earliest
			}
			bestPort, bestTime := ports.ScheduleBest(cand, earliest, occ)
			if iter >= cfg.WarmupIters {
				portBusy[bestPort] += occ
			}
			uopDispatch = append(uopDispatch, disp)
			uopIssued = append(uopIssued, bestTime)
			return bestTime
		}

		loadDone := 0.0
		haveLoads := false
		computeStart := dataReady
		for _, u := range st.desc.Uops {
			switch u.Kind {
			case uarch.UopLoad:
				t := issueUop(u, loadDepReady)
				haveLoads = true
				var done float64
				if st.hasLoadStage {
					done = t + float64(st.desc.LoadLat)
				} else {
					// AArch64 loads: entry latency is inclusive.
					done = t
				}
				if done > loadDone {
					loadDone = done
				}
				if !st.hasLoadStage && t > computeStart {
					computeStart = t
				}
			default:
				// Scheduled below after load stage is known.
			}
		}
		if haveLoads && st.hasLoadStage && loadDone > computeStart {
			computeStart = loadDone
		}
		lastComputeIssue := computeStart
		nCompute := 0
		for _, u := range st.desc.Uops {
			if u.Kind == uarch.UopLoad {
				continue
			}
			earliest := computeStart
			if u.Kind == uarch.UopStoreAddr {
				earliest = addrReady
			}
			t := issueUop(u, earliest)
			if t > lastComputeIssue {
				lastComputeIssue = t
			}
			nCompute++
		}
		if len(st.desc.Uops) == 0 {
			uopDispatch = append(uopDispatch, disp)
			uopIssued = append(uopIssued, disp)
		}

		// --- result timing.
		var res float64
		switch {
		case nCompute > 0 && haveLoads && st.hasLoadStage:
			res = lastComputeIssue + float64(st.desc.Lat)
			if st.desc.Lat == 0 {
				res = lastComputeIssue + 1
			}
		case haveLoads && nCompute == 0:
			// Pure load.
			if st.hasLoadStage {
				res = loadDone
			} else {
				// AArch64 load: computeStart tracked the load issue time
				// and the entry latency is load-to-use inclusive.
				res = computeStart + float64(st.desc.TotalLat)
			}
		default:
			res = lastComputeIssue + float64(st.desc.TotalLat)
		}
		started[dyn] = lastComputeIssue
		ready[dyn] = res

		// --- retire in order.
		ret := res
		if st.desc.IsStore || st.desc.IsBranch {
			ret = lastComputeIssue + 1
		}
		if dyn > 0 && retire[dyn-1] > ret {
			ret = retire[dyn-1]
		}
		if dyn >= m.RetireWidth {
			if t := retire[dyn-m.RetireWidth] + 1; t > ret {
				ret = t
			}
		}
		retire[dyn] = ret

		// --- architectural state updates.
		for _, r := range st.eff.Reads {
			lastReader[r] = dyn
		}
		for _, w := range st.eff.Writes {
			producer[w] = dyn
		}
		if st.desc.IsStore {
			if prev, ok := lastStoreDyn[si]; ok {
				prevStoreDyn[si] = prev
			}
			lastStoreDyn[si] = dyn
		}

		if iter == cfg.WarmupIters && si == 0 {
			// The window opens at the retirement of the last warmup
			// instruction so that it spans exactly MeasureIters
			// iterations of retired work.
			if dyn > 0 {
				measureStartCycle = retire[dyn-1]
			}
			measureStartSet = true
		}
		if cfg.Trace != nil {
			cfg.Trace(dyn, b.Instrs[si].String(), fetch[dyn], disp, started[dyn], ready[dyn], retire[dyn])
		}
	}

	if !measureStartSet {
		return nil, fmt.Errorf("sim: block %s: no measurement window", b.Name)
	}
	total := retire[nDyn-1] - measureStartCycle
	if total <= 0 {
		total = 1
	}
	return &Result{
		CyclesPerIter: total / float64(cfg.MeasureIters),
		TotalCycles:   total,
		Iters:         cfg.MeasureIters,
		PortCycles:    portBusy,
	}, nil
}

func prepare(b *isa.Block, m *uarch.Model) ([]staticInstr, error) {
	static := make([]staticInstr, len(b.Instrs))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		d, err := m.Lookup(in)
		if err != nil {
			return nil, fmt.Errorf("sim: block %s instr %d (%s): %w", b.Name, i, in.Mnemonic, err)
		}
		s := staticInstr{desc: d, eff: isa.InstrEffects(in, m.Dialect)}
		s.accKey, s.isFMA = fmaAccumulator(in, m.Dialect)
		mn := in.Mnemonic
		s.fpClass = ClassifyFP(mn)
		s.isDiv = strings.Contains(mn, "div")
		s.isVecOp = vecWidthOfInstr(in) > 64 && !strings.HasSuffix(mn, "sd")
		s.hasLoadStage = d.LoadLat > 0
		s.addrKeys = map[isa.RegKey]bool{}
		for _, mo := range s.eff.LoadOps {
			markAddr(s.addrKeys, mo)
		}
		for _, mo := range s.eff.StoreOps {
			markAddr(s.addrKeys, mo)
		}
		for _, r := range s.eff.Reads {
			if !s.addrKeys[r] {
				s.dataReads = append(s.dataReads, r)
			}
		}
		static[i] = s
	}
	return static, nil
}

func markAddr(m map[isa.RegKey]bool, mo *isa.MemOp) {
	if mo.Base.Valid() && !isa.IsZeroReg(mo.Base) {
		m[mo.Base.Key()] = true
	}
	// Vector indices (gathers) carry data dependencies, not plain
	// address dependencies; keep them in the data set.
	if mo.Index.Valid() && !isa.IsZeroReg(mo.Index) && mo.Index.Class != isa.ClassVec {
		m[mo.Index.Key()] = true
	}
}

func vecWidthOfInstr(in *isa.Instruction) int {
	w := 0
	for _, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Reg.Class == isa.ClassVec && op.Reg.Width > w {
			w = op.Reg.Width
		}
	}
	return w
}

// fmaAccumulator mirrors depgraph's accumulator detection (kept local to
// avoid a dependency knot).
func fmaAccumulator(in *isa.Instruction, d isa.Dialect) (isa.RegKey, bool) {
	mn := in.Mnemonic
	isFMA := strings.HasPrefix(mn, "vfma") || strings.HasPrefix(mn, "vfnma") ||
		strings.HasPrefix(mn, "vfms") || mn == "fmla" || mn == "fmls" ||
		mn == "fmadd" || mn == "fmsub" || mn == "fnmadd" || mn == "fnmsub"
	if !isFMA || len(in.Operands) == 0 {
		return isa.RegKey{}, false
	}
	if d == isa.DialectX86 {
		op := in.Operands[len(in.Operands)-1]
		if op.Kind == isa.OpReg {
			return op.Reg.Key(), true
		}
		return isa.RegKey{}, false
	}
	if mn == "fmadd" || mn == "fmsub" || mn == "fnmadd" || mn == "fnmsub" {
		if len(in.Operands) >= 4 && in.Operands[3].Kind == isa.OpReg {
			return in.Operands[3].Reg.Key(), true
		}
		return isa.RegKey{}, false
	}
	if in.Operands[0].Kind == isa.OpReg {
		return in.Operands[0].Reg.Key(), true
	}
	return isa.RegKey{}, false
}

// InstrEffectsView is the per-instruction effect summary used for memory
// dependency detection.
type InstrEffectsView struct {
	LoadOps  []*isa.MemOp
	StoreOps []*isa.MemOp
}

func blockEffects(static []staticInstr) []InstrEffectsView {
	out := make([]InstrEffectsView, len(static))
	for i := range static {
		out[i] = InstrEffectsView{LoadOps: static[i].eff.LoadOps, StoreOps: static[i].eff.StoreOps}
	}
	return out
}

// FindMemDeps locates store→load RAW pairs over the same address stream.
// Direction matters for a loop whose index advances monotonically: with
// store displacement S and load displacement L off the same base/index
// registers, the load re-reads a previously stored location only if
// S - L > 0 (the store runs ahead of the load in address space). Equal
// displacements alias within the same iteration when the store precedes
// the load in program order.
func FindMemDeps(effs []InstrEffectsView) []memDep {
	var deps []memDep
	const window = 64
	for si := range effs {
		for _, st := range effs[si].StoreOps {
			for li := range effs {
				for _, ld := range effs[li].LoadOps {
					if !sameAddrStream(st, ld) {
						continue
					}
					delta := st.Disp - ld.Disp
					switch {
					case delta == 0 && si < li:
						deps = append(deps, memDep{store: si, load: li, carried: false})
					case delta > 0 && delta <= window:
						deps = append(deps, memDep{store: si, load: li, carried: true})
					}
				}
			}
		}
	}
	return deps
}

func sameAddrStream(a, b *isa.MemOp) bool {
	if !a.Base.Valid() || !b.Base.Valid() || a.Base.Key() != b.Base.Key() {
		return false
	}
	if a.Index.Valid() != b.Index.Valid() {
		return false
	}
	if a.Index.Valid() && a.Index.Key() != b.Index.Key() {
		return false
	}
	return true
}
