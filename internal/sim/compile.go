package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"incore/internal/isa"
	"incore/internal/uarch"
)

// Program is a block lowered against one machine model into the flat,
// map-free representation the execution engine runs: every architectural
// register touched by the block is interned to a dense small ID, µ-op port
// candidates are resolved to index slices, mnemonic classifications
// (FP class, FMA accumulator, divide/vector flags) are evaluated once, and
// store→load memory dependencies are grouped per consuming load. Compiling
// once and running the numeric kernel on dense state is what makes the
// simulator's hot path allocation-free (see DESIGN.md "Performance").
//
// A Program is immutable after Compile and safe for concurrent Run calls.
type Program struct {
	block *isa.Block
	model *uarch.Model

	nStatic int
	// nRegs is the interner size; per-register engine state (producer,
	// last-reader) is a slice of this length.
	nRegs int

	instrs []pInstr
	uops   []pUop

	// loadDeps groups memory dependencies by consuming load index,
	// preserving FindMemDeps order within each group.
	loadDeps [][]memDep

	// slotsPerIter is the number of µ-op dispatch slots one iteration
	// appends (scheduled µ-ops plus one synthetic slot per µ-op-less
	// instruction).
	slotsPerIter int
	maxUopSlots  int

	// names caches Instruction.String() for trace callbacks (built
	// lazily on the first traced run; namesOnce keeps the lazy build
	// safe under the concurrent-Run guarantee).
	names     []string
	namesOnce sync.Once
}

// pUop is one compiled µ-op: its candidate port indices are precomputed so
// the engine never rebuilds them per dynamic instruction.
type pUop struct {
	cand   []int
	cycles float64
	kind   uarch.UopKind
}

// pInstr is the compiled static instruction record. All register
// references are interned IDs; latencies are pre-widened to float64.
type pInstr struct {
	uopOff, uopEnd int32

	lat      float64 // reg-to-reg compute latency
	loadLat  float64
	totalLat float64
	latZero  bool

	// nUopsWidth is the µ-op count charged against the issue width
	// (len(Uops), or 1 when the instruction decodes to none); nSlots is
	// how many dispatch slots the engine actually appends.
	nUopsWidth int32
	nSlots     int32

	isLoad, isStore, isBranch bool
	hasLoadStage              bool
	isFMA                     bool
	divScaled                 bool // scalar divide: early-exit factor applies
	fpClass                   FPClass

	accID int32 // FMA accumulator register ID, -1 if none

	// addrIDs are registers used only for address generation, as a
	// sorted interned-ID slice (the former per-instruction map).
	addrIDs []int32
	// dataIDs are register reads excluding pure address registers.
	dataIDs []int32
	// readIDs/writeIDs are the full architectural effect sets.
	readIDs  []int32
	writeIDs []int32
}

// Compile lowers block b against model m. Every instruction must resolve
// in the model's tables; the error mirrors what Run reported historically.
func Compile(b *isa.Block, m *uarch.Model) (*Program, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := len(b.Instrs)
	p := &Program{
		block:   b,
		model:   m,
		nStatic: n,
		instrs:  make([]pInstr, n),
	}
	var interner isa.RegInterner
	effs := make([]InstrEffectsView, n)
	for i := range b.Instrs {
		in := &b.Instrs[i]
		eff := isa.InstrEffects(in, m.Dialect)
		d, err := m.LookupEff(in, &eff)
		if err != nil {
			return nil, fmt.Errorf("sim: block %s instr %d (%s): %w", b.Name, i, in.Mnemonic, err)
		}
		effs[i] = InstrEffectsView{LoadOps: eff.LoadOps, StoreOps: eff.StoreOps}

		pi := &p.instrs[i]
		pi.lat = float64(d.Lat)
		pi.latZero = d.Lat == 0
		pi.loadLat = float64(d.LoadLat)
		pi.totalLat = float64(d.TotalLat)
		pi.isLoad, pi.isStore, pi.isBranch = d.IsLoad, d.IsStore, d.IsBranch
		pi.hasLoadStage = d.LoadLat > 0

		mn := in.Mnemonic
		pi.fpClass = ClassifyFP(mn)
		isVecOp := vecWidthOfInstr(in) > 64 && !strings.HasSuffix(mn, "sd")
		pi.divScaled = strings.Contains(mn, "div") && !isVecOp

		pi.accID = -1
		if accKey, isFMA := fmaAccumulator(in, m.Dialect); isFMA {
			pi.isFMA = true
			pi.accID = interner.Intern(accKey)
		}

		pi.addrIDs = compileAddrIDs(&interner, &eff)
		for _, r := range eff.Reads {
			id := interner.Intern(r)
			pi.readIDs = append(pi.readIDs, id)
			if !containsID(pi.addrIDs, id) {
				pi.dataIDs = append(pi.dataIDs, id)
			}
		}
		pi.writeIDs = interner.InternAll(pi.writeIDs, eff.Writes)

		pi.uopOff = int32(len(p.uops))
		slots := 0
		for _, u := range d.Uops {
			cu := pUop{cycles: u.Cycles, kind: u.Kind}
			// The model's precompiled (shared, read-only) index tables
			// replace a per-µ-op allocation.
			if idx := m.PortIndices(u.Ports); len(idx) > 0 {
				cu.cand = idx
				slots++
			}
			p.uops = append(p.uops, cu)
		}
		pi.uopEnd = int32(len(p.uops))
		pi.nUopsWidth = int32(len(d.Uops))
		if pi.nUopsWidth == 0 {
			pi.nUopsWidth = 1
			slots = 1 // synthetic dispatch slot
		}
		pi.nSlots = int32(slots)
		p.slotsPerIter += slots
		if slots > p.maxUopSlots {
			p.maxUopSlots = slots
		}
	}
	p.nRegs = interner.Len()

	deps := FindMemDeps(effs)
	p.loadDeps = make([][]memDep, n)
	for _, md := range deps {
		p.loadDeps[md.load] = append(p.loadDeps[md.load], md)
	}
	return p, nil
}

// SizeEstimate approximates the program's retained heap bytes for cache
// accounting. It is an estimate by design — fixed per-element costs stand
// in for exact allocator sizes, and the retained block and model are
// counted by their own tiers (the model is shared process-wide anyway).
func (p *Program) SizeEstimate() int {
	size := 256 + len(p.instrs)*168 + len(p.uops)*48
	for i := range p.instrs {
		pi := &p.instrs[i]
		size += 4 * (len(pi.addrIDs) + len(pi.dataIDs) + len(pi.readIDs) + len(pi.writeIDs))
	}
	for _, d := range p.loadDeps {
		size += 24 * len(d)
	}
	for _, n := range p.names {
		size += 16 + len(n)
	}
	return size
}

// Block returns the compiled block.
func (p *Program) Block() *isa.Block { return p.block }

// Model returns the machine model the program was compiled against.
func (p *Program) Model() *uarch.Model { return p.model }

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// compileAddrIDs interns the pure address-generation registers of one
// instruction and returns them as a sorted dense-ID slice — the
// replacement for the per-instruction map[isa.RegKey]bool the engine used
// to iterate (address readiness is a max over producers, so order cannot
// change results; sorting just makes the representation canonical).
func compileAddrIDs(ri *isa.RegInterner, eff *isa.Effects) []int32 {
	var ids []int32
	add := func(mo *isa.MemOp) {
		if mo.Base.Valid() && !isa.IsZeroReg(mo.Base) {
			ids = appendUniqueID(ids, ri.Intern(mo.Base.Key()))
		}
		// Vector indices (gathers) carry data dependencies, not plain
		// address dependencies; keep them in the data set.
		if mo.Index.Valid() && !isa.IsZeroReg(mo.Index) && mo.Index.Class != isa.ClassVec {
			ids = appendUniqueID(ids, ri.Intern(mo.Index.Key()))
		}
	}
	for _, mo := range eff.LoadOps {
		add(mo)
	}
	for _, mo := range eff.StoreOps {
		add(mo)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func appendUniqueID(ids []int32, id int32) []int32 {
	if containsID(ids, id) {
		return ids
	}
	return append(ids, id)
}

func vecWidthOfInstr(in *isa.Instruction) int {
	w := 0
	for _, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Reg.Class == isa.ClassVec && op.Reg.Width > w {
			w = op.Reg.Width
		}
	}
	return w
}

// fmaAccumulator mirrors depgraph's accumulator detection (kept local to
// avoid a dependency knot).
func fmaAccumulator(in *isa.Instruction, d isa.Dialect) (isa.RegKey, bool) {
	mn := in.Mnemonic
	isFMA := strings.HasPrefix(mn, "vfma") || strings.HasPrefix(mn, "vfnma") ||
		strings.HasPrefix(mn, "vfms") || mn == "fmla" || mn == "fmls" ||
		mn == "fmadd" || mn == "fmsub" || mn == "fnmadd" || mn == "fnmsub"
	if !isFMA || len(in.Operands) == 0 {
		return isa.RegKey{}, false
	}
	if d == isa.DialectX86 {
		op := in.Operands[len(in.Operands)-1]
		if op.Kind == isa.OpReg {
			return op.Reg.Key(), true
		}
		return isa.RegKey{}, false
	}
	if mn == "fmadd" || mn == "fmsub" || mn == "fnmadd" || mn == "fnmsub" {
		if len(in.Operands) >= 4 && in.Operands[3].Kind == isa.OpReg {
			return in.Operands[3].Reg.Key(), true
		}
		return isa.RegKey{}, false
	}
	if in.Operands[0].Kind == isa.OpReg {
		return in.Operands[0].Reg.Key(), true
	}
	return isa.RegKey{}, false
}

// instrName returns the cached source spelling of static instruction si
// (trace callbacks only; built on first use).
func (p *Program) instrName(si int) string {
	p.namesOnce.Do(func() {
		names := make([]string, p.nStatic)
		for i := range p.block.Instrs {
			names[i] = p.block.Instrs[i].String()
		}
		p.names = names
	})
	return p.names[si]
}

// memDep is a static store→load dependency within/across iterations.
type memDep struct {
	store, load int
	carried     bool
}

// InstrEffectsView is the per-instruction effect summary used for memory
// dependency detection.
type InstrEffectsView struct {
	LoadOps  []*isa.MemOp
	StoreOps []*isa.MemOp
}

// FindMemDeps locates store→load RAW pairs over the same address stream.
// Direction matters for a loop whose index advances monotonically: with
// store displacement S and load displacement L off the same base/index
// registers, the load re-reads a previously stored location only if
// S - L > 0 (the store runs ahead of the load in address space). Equal
// displacements alias within the same iteration when the store precedes
// the load in program order.
func FindMemDeps(effs []InstrEffectsView) []memDep {
	var deps []memDep
	const window = 64
	for si := range effs {
		for _, st := range effs[si].StoreOps {
			for li := range effs {
				for _, ld := range effs[li].LoadOps {
					if !sameAddrStream(st, ld) {
						continue
					}
					delta := st.Disp - ld.Disp
					switch {
					case delta == 0 && si < li:
						deps = append(deps, memDep{store: si, load: li, carried: false})
					case delta > 0 && delta <= window:
						deps = append(deps, memDep{store: si, load: li, carried: true})
					}
				}
			}
		}
	}
	return deps
}

func sameAddrStream(a, b *isa.MemOp) bool {
	if !a.Base.Valid() || !b.Base.Valid() || a.Base.Key() != b.Base.Key() {
		return false
	}
	if a.Index.Valid() != b.Index.Valid() {
		return false
	}
	if a.Index.Valid() && a.Index.Key() != b.Index.Key() {
		return false
	}
	return true
}
